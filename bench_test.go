package fedomd

// Benchmarks regenerating the cost profile of every paper table and figure,
// plus the design-choice ablations DESIGN.md §4 calls out. Each Table/Figure
// bench exercises the exact code path its experiment driver runs, at smoke
// scale so `go test -bench=.` completes quickly; cmd/experiments regenerates
// the full artefacts.

import (
	"fmt"
	"math/rand"
	"testing"

	"fedomd/internal/ad"
	"fedomd/internal/core"
	"fedomd/internal/dataset"
	"fedomd/internal/fed"
	"fedomd/internal/mat"
	"fedomd/internal/moments"
	"fedomd/internal/partition"
	"fedomd/internal/sparse"
)

// benchGraph generates a small standard graph once per benchmark.
func benchGraph(b *testing.B, name string, divisor int) *Graph {
	b.Helper()
	g, err := GenerateDataset(name, divisor, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchParties(b *testing.B, g *Graph, m int) []Party {
	b.Helper()
	parties, err := Partition(g, m, 1.0, 2)
	if err != nil {
		b.Fatal(err)
	}
	return parties
}

// fedOMDClients builds FedOMD clients over parties.
func fedOMDClients(b *testing.B, parties []Party, hidden, hiddenLayers int, useOrtho, useCMD bool) []fed.Client {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.Hidden = hidden
	cfg.HiddenLayers = hiddenLayers
	cfg.UseOrtho = useOrtho
	cfg.UseCMD = useCMD
	var clients []fed.Client
	for i, p := range parties {
		if p.Graph.NumNodes() == 0 {
			continue
		}
		c, err := core.NewClient(fmt.Sprintf("b%d", i), p.Graph, cfg, int64(i+3))
		if err != nil {
			b.Fatal(err)
		}
		clients = append(clients, c)
	}
	return clients
}

// BenchmarkTable2Datasets measures synthetic dataset generation — the input
// to every experiment (paper Table 2).
func BenchmarkTable2Datasets(b *testing.B) {
	for _, name := range Datasets() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := GenerateDataset(name, 16, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable3ClientRound measures one local training round per model —
// the client-time column of paper Table 3.
func BenchmarkTable3ClientRound(b *testing.B) {
	g := benchGraph(b, dataset.Cora, 16)
	parties := benchParties(b, g, 2)
	exp, err := NewExperiments("smoke", 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, model := range Models() {
		b.Run(model, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Fresh clients so optimiser state does not accumulate.
				res := func() error {
					_, err := exp.RunModelPublic(model, parties[:1], int64(i), true)
					return err
				}
				b.StartTimer()
				if err := res(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable4FederatedRound measures one full federated round (broadcast
// + parallel local training + moment exchange + aggregation) for FedOMD —
// the unit of work behind every paper Table 4 cell.
func BenchmarkTable4FederatedRound(b *testing.B) {
	g := benchGraph(b, dataset.Cora, 16)
	for _, m := range []int{3, 5, 9} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			parties := benchParties(b, g, m)
			clients := fedOMDClients(b, parties, 16, 2, true, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fed.Run(fed.Config{Rounds: 1}, clients); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable5ManyParties measures FedOMD with the paper Table 5 party
// counts on the Coauthor-CS stand-in.
func BenchmarkTable5ManyParties(b *testing.B) {
	g := benchGraph(b, dataset.CoauthorCS, 24)
	for _, m := range []int{20, 50} {
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			parties := benchParties(b, g, m)
			clients := fedOMDClients(b, parties, 16, 2, true, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fed.Run(fed.Config{Rounds: 1}, clients); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable6Ablation measures the cost of the paper Table 6 variants:
// the orthogonality penalty and the CMD constraint each add measurable work.
func BenchmarkTable6Ablation(b *testing.B) {
	g := benchGraph(b, dataset.Cora, 16)
	parties := benchParties(b, g, 3)
	for _, v := range []struct {
		name             string
		useOrtho, useCMD bool
	}{
		{"OrthoOnly", true, false},
		{"CMDOnly", false, true},
		{"OrthoAndCMD", true, true},
	} {
		b.Run(v.name, func(b *testing.B) {
			clients := fedOMDClients(b, parties, 16, 2, v.useOrtho, v.useCMD)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fed.Run(fed.Config{Rounds: 1}, clients); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable7Depth measures FedOMD's per-round cost as hidden depth
// grows (paper Table 7).
func BenchmarkTable7Depth(b *testing.B) {
	g := benchGraph(b, dataset.Cora, 16)
	parties := benchParties(b, g, 3)
	for _, depth := range []int{2, 4, 6, 8, 10} {
		b.Run(fmt.Sprintf("hidden=%d", depth), func(b *testing.B) {
			clients := fedOMDClients(b, parties, 16, depth, true, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fed.Run(fed.Config{Rounds: 1}, clients); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4Partition measures the Louvain cut and the non-i.i.d
// statistics behind paper Figure 4.
func BenchmarkFigure4Partition(b *testing.B) {
	g := benchGraph(b, dataset.Cora, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parties, err := Partition(g, 5, 1.0, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		partition.LabelDistribution(parties, g.NumClasses)
		NonIIDScore(parties, g.NumClasses)
	}
}

// BenchmarkFigure5Convergence measures a multi-round FedOMD trajectory — the
// unit behind the paper Figure 5 curves.
func BenchmarkFigure5Convergence(b *testing.B) {
	g := benchGraph(b, dataset.Cora, 16)
	parties := benchParties(b, g, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clients := fedOMDClients(b, parties, 16, 2, true, true)
		if _, err := fed.Run(fed.Config{Rounds: 10}, clients); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6AlphaBeta measures FedOMD rounds across the (α, β) grid of
// paper Figure 6; cost is flat in the hyper-parameters, as the table shows.
func BenchmarkFigure6AlphaBeta(b *testing.B) {
	g := benchGraph(b, dataset.Cora, 16)
	parties := benchParties(b, g, 3)
	for _, beta := range []float64{0.1, 10} {
		b.Run(fmt.Sprintf("beta=%g", beta), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Hidden = 16
			cfg.Beta = beta
			var clients []fed.Client
			for i, p := range parties {
				c, err := core.NewClient(fmt.Sprintf("c%d", i), p.Graph, cfg, int64(i+3))
				if err != nil {
					b.Fatal(err)
				}
				clients = append(clients, c)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fed.Run(fed.Config{Rounds: 1}, clients); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure7Resolution measures the Louvain cut across the resolution
// sweep of paper Figure 7.
func BenchmarkFigure7Resolution(b *testing.B) {
	g := benchGraph(b, dataset.Cora, 8)
	for _, res := range []float64{0.5, 1, 20, 50} {
		b.Run(fmt.Sprintf("res=%g", res), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Partition(g, 3, res, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Design-choice ablation benches (DESIGN.md §4) ---

// BenchmarkMatMul compares the parallel and serial dense kernels.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := mat.RandGaussian(rng, 512, 256, 0, 1)
	w := mat.RandGaussian(rng, 256, 128, 0, 1)
	b.Run("Parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mat.MatMul(x, w)
		}
	})
	b.Run("Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mat.MatMulSerial(x, w)
		}
	})
}

// BenchmarkSpMMVsDense compares CSR propagation against materialising the
// operator densely — the reason the GCN layers run on sparse.CSR.
func BenchmarkSpMMVsDense(b *testing.B) {
	g := benchGraph(b, dataset.Cora, 8)
	s, err := sparse.GCNNormalize(g.Adj)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	z := mat.RandGaussian(rng, g.NumNodes(), 32, 0, 1)
	dense := s.ToDense()
	b.Run("SpMM", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.MulDense(z)
		}
	})
	b.Run("Dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mat.MatMul(dense, z)
		}
	})
}

// BenchmarkOrthoNewtonSchulz compares the three ways to keep an OrthoConv
// weight orthogonal: the hard Newton–Schulz projection, the hard QR
// retraction, and one soft-penalty gradient evaluation.
func BenchmarkOrthoNewtonSchulz(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	w := mat.RandGaussian(rng, 64, 64, 0, 1)
	b.Run("NewtonSchulz", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mat.NewtonSchulz(w, 30); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("QRRetraction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mat.OrthonormalizeQR(w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SoftPenaltyGrad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tp := ad.NewTape()
			n := tp.Param(w)
			loss := tp.OrthoPenalty(n)
			if err := tp.Backward(loss); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCMDPlainVsSquared compares the eq. 11 norm form with the smooth
// squared form the default configuration uses (DESIGN.md §1.1).
func BenchmarkCMDPlainVsSquared(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	z := mat.RandUniform(rng, 1000, 64, 0, 1)
	stats, err := moments.Compute(z, 5)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, f func(tp *ad.Tape, n *ad.Node) (*ad.Node, error)) {
		for i := 0; i < b.N; i++ {
			tp := ad.NewTape()
			n := tp.Param(z)
			loss, err := f(tp, n)
			if err != nil {
				b.Fatal(err)
			}
			if err := tp.Backward(loss); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Plain", func(b *testing.B) {
		run(b, func(tp *ad.Tape, n *ad.Node) (*ad.Node, error) {
			return moments.CMDLoss(tp, n, stats.Mean, stats.Central, 0, 1)
		})
	})
	b.Run("Squared", func(b *testing.B) {
		run(b, func(tp *ad.Tape, n *ad.Node) (*ad.Node, error) {
			return moments.CMDLossSquared(tp, n, stats.Mean, stats.Central, 0, 1)
		})
	})
}

// BenchmarkDPOverhead measures the cost the differential-privacy wrapper
// adds to one statistics upload.
func BenchmarkDPOverhead(b *testing.B) {
	g := benchGraph(b, dataset.Cora, 16)
	cfg := core.DefaultConfig()
	cfg.Hidden = 32
	client, err := core.NewClient("dp", g, cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	dp, err := fed.WithDP(client, fed.DPConfig{Epsilon: 1, Delta: 1e-5, Clip: 1}, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := client.LocalMeans(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := dp.LocalMeans(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCMDOrders measures the CMD loss cost as the moment-series
// truncation K grows (eq. 11; the paper uses K = 5).
func BenchmarkCMDOrders(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	z := mat.RandUniform(rng, 1000, 64, 0, 1)
	for _, k := range []int{2, 3, 5, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			stats, err := moments.Compute(z, k)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tp := ad.NewTape()
				n := tp.Param(z)
				loss, err := moments.CMDLoss(tp, n, stats.Mean, stats.Central, 0, 1)
				if err != nil {
					b.Fatal(err)
				}
				if err := tp.Backward(loss); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainStepAllocs measures the steady-state cost of one FedOMD local
// training step — forward, backward, Adam update — with the full objective
// (CE + orthogonality + CMD) active, comparing the pooled memory-reuse layer
// against the unpooled ablation (mat.SetPooling(false), which restores the
// seed's allocate-per-op behaviour). `make bench` feeds this comparison into
// BENCH_step_allocs.json via cmd/benchstep.
func BenchmarkTrainStepAllocs(b *testing.B) {
	g := benchGraph(b, dataset.Cora, 16)
	for _, pooled := range []bool{true, false} {
		name := "Pooled"
		if !pooled {
			name = "Unpooled"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Hidden = 32
			client, err := core.NewClient("alloc", g, cfg, 1)
			if err != nil {
				b.Fatal(err)
			}
			// Install global moment statistics (self-aggregated: one party)
			// so the CMD branch of eq. 12 is exercised.
			means, _, err := client.LocalMeans()
			if err != nil {
				b.Fatal(err)
			}
			central, _, err := client.CentralAroundGlobal(means)
			if err != nil {
				b.Fatal(err)
			}
			client.SetGlobalStats(means, central)
			mat.SetPooling(pooled)
			defer mat.SetPooling(true)
			// Warm-up: populates pool buckets, tape arena, prop cache and
			// optimizer state so b.N measures the steady state.
			for i := 0; i < 3; i++ {
				if _, err := client.TrainLocal(i); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.TrainLocal(i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFedRoundParallelVsSequential measures the concurrency win of
// training parties in goroutines within a round.
func BenchmarkFedRoundParallelVsSequential(b *testing.B) {
	g := benchGraph(b, dataset.Cora, 8)
	parties := benchParties(b, g, 8)
	for _, seq := range []bool{false, true} {
		name := "Parallel"
		if seq {
			name = "Sequential"
		}
		b.Run(name, func(b *testing.B) {
			clients := fedOMDClients(b, parties, 32, 2, true, true)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fed.Run(fed.Config{Rounds: 1, Sequential: seq}, clients); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
