GO ?= go

.PHONY: build test check fmt vet race bench bench-step

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The gate a PR must pass: formatting, static analysis, and the full test
# suite under the race detector. CI-friendly: every stage runs even if an
# earlier one fails, each reports its own status, and the target exits
# non-zero if any stage failed.
check:
	@fail=0; \
	out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "FAIL gofmt — run gofmt -w on:"; echo "$$out"; fail=1; \
	else echo "ok   gofmt"; fi; \
	if $(GO) vet ./...; then echo "ok   go vet"; \
	else echo "FAIL go vet"; fail=1; fi; \
	if $(GO) test -race ./...; then echo "ok   go test -race"; \
	else echo "FAIL go test -race"; fail=1; fi; \
	exit $$fail

bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/benchstep -out BENCH_step_allocs.json

# Regenerate only the pooled-vs-unpooled training-step artefact.
bench-step:
	$(GO) run ./cmd/benchstep -out BENCH_step_allocs.json
