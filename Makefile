GO ?= go

.PHONY: build test check fmt vet lint lint-fast race bench bench-step bench-comms bench-obs bench-kernels bench-scale bench-serve scale-demo chaos soak-async obslint dash-demo

# Formatting checks skip testdata: it holds deliberately corrupt analyzer
# fixtures that gofmt cannot parse.
FMT_FILES = find . -name '*.go' -not -path '*/testdata/*'

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$($(FMT_FILES) | xargs gofmt -l); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Project-specific static analysis: the full eight-analyzer suite (see
# DESIGN.md §8, §13). Non-zero exit on any diagnostic; -timing shows where
# the lint wall time goes.
lint:
	$(GO) run ./cmd/fedomdvet -timing ./...

# The same suite, sharded per-analyzer across background jobs via -only. The
# binary is built once (go run would race eight compiles of the same main);
# each shard pays the type-checking cost, so this wins on multi-core machines
# where the slowest analyzer, not the sum, bounds wall time.
lint-fast:
	@bin=$$(mktemp -d)/fedomdvet; trap 'rm -rf $$(dirname $$bin)' EXIT; \
	$(GO) build -o $$bin ./cmd/fedomdvet || exit 2; \
	fail=0; pids=""; names=""; \
	for a in $$($$bin -list | awk '{print $$1}'); do \
		$$bin -only $$a ./... & pids="$$pids $$!"; names="$$names $$a"; \
	done; \
	i=0; for pid in $$pids; do \
		i=$$((i+1)); name=$$(echo $$names | cut -d' ' -f$$i); \
		if ! wait $$pid; then echo "FAIL $$name"; fail=1; fi; \
	done; \
	exit $$fail

race:
	$(GO) test -race -count=1 ./...

# Fault-injection suite: the chaos wrappers' unit tests, the transport
# retry-through-severed-links test, and the end-to-end crash soak, all under
# the race detector (the failure paths are where the concurrency lives).
chaos:
	$(GO) test -race -count=1 ./internal/chaos/ ./internal/fed/

# The async robustness soak in isolation: heavy-tail stragglers, transient
# faults, and NaN poisoning against both aggregation topologies, gated at
# ≥3× sync's rounds/sec and ≤0.02 accuracy drift from the fault-free run.
soak-async:
	$(GO) test -race -count=1 -run 'TestSoakAsync' -v ./internal/chaos/

# The gate a PR must pass: formatting, go vet, fedomdvet, and the full test
# suite under the race detector (-count=1 so a cached pass can't mask a
# race). CI-friendly: every stage runs even if an earlier one fails, each
# reports its own status, and the target exits non-zero if any stage failed.
# Each stage reports its own wall time so a slow gate is visible at a glance.
check:
	@fail=0; t0=$$(date +%s); \
	out=$$($(FMT_FILES) | xargs gofmt -l); t1=$$(date +%s); if [ -n "$$out" ]; then \
		echo "FAIL gofmt ($$((t1-t0))s) — run gofmt -w on:"; echo "$$out"; fail=1; \
	else echo "ok   gofmt ($$((t1-t0))s)"; fi; \
	t0=$$(date +%s); if $(GO) vet ./...; then t1=$$(date +%s); echo "ok   go vet ($$((t1-t0))s)"; \
	else t1=$$(date +%s); echo "FAIL go vet ($$((t1-t0))s)"; fail=1; fi; \
	t0=$$(date +%s); if $(GO) run ./cmd/fedomdvet -timing ./...; then t1=$$(date +%s); echo "ok   fedomdvet ($$((t1-t0))s)"; \
	else t1=$$(date +%s); echo "FAIL fedomdvet ($$((t1-t0))s)"; fail=1; fi; \
	t0=$$(date +%s); if $(GO) test -race -count=1 ./...; then t1=$$(date +%s); echo "ok   go test -race ($$((t1-t0))s)"; \
	else t1=$$(date +%s); echo "FAIL go test -race ($$((t1-t0))s)"; fail=1; fi; \
	t0=$$(date +%s); if $(GO) run ./cmd/obslint; then t1=$$(date +%s); echo "ok   obslint ($$((t1-t0))s)"; \
	else t1=$$(date +%s); echo "FAIL obslint ($$((t1-t0))s)"; fail=1; fi; \
	t0=$$(date +%s); if $(GO) run ./cmd/benchkernels -smoke >/dev/null; then t1=$$(date +%s); echo "ok   benchkernels -smoke ($$((t1-t0))s)"; \
	else t1=$$(date +%s); echo "FAIL benchkernels -smoke ($$((t1-t0))s)"; fail=1; fi; \
	t0=$$(date +%s); if $(GO) run ./cmd/benchserve -smoke >/dev/null; then t1=$$(date +%s); echo "ok   benchserve -smoke ($$((t1-t0))s)"; \
	else t1=$$(date +%s); echo "FAIL benchserve -smoke ($$((t1-t0))s)"; fail=1; fi; \
	exit $$fail

# Exposition lint in isolation: run a short chaos-injected round trip and
# validate the resulting Prometheus text exposition.
obslint:
	$(GO) run ./cmd/obslint

# Serve the live run dashboard on a longer seeded run for eyeballing:
# http://localhost:8600/ (SSE round feed) and /metrics on the same mux.
dash-demo:
	$(GO) run ./cmd/fedomd -divisor 8 -rounds 20 -policy drop-round \
		-chaos -chaos-seed 11 -chaos-nan-rate 0.1 -chaos-latency 30ms \
		-dash-addr localhost:8600

bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/benchstep -out BENCH_step_allocs.json
	$(GO) run ./cmd/benchcomms -out BENCH_comms.json
	$(GO) run ./cmd/benchobs -out BENCH_obs.json
	$(GO) run ./cmd/benchkernels -out BENCH_kernels.json -min-speedup 2
	$(GO) run ./cmd/benchscale -out BENCH_scale.json
	$(GO) run ./cmd/benchserve -out BENCH_serve.json -min-speedup 5

# Regenerate only the pooled-vs-unpooled training-step artefact.
bench-step:
	$(GO) run ./cmd/benchstep -out BENCH_step_allocs.json

# Regenerate the per-codec communication artefact: bytes on the wire,
# compression ratios, codec CPU cost, and accuracy drift per tier.
bench-comms:
	$(GO) run ./cmd/benchcomms -out BENCH_comms.json

# Regenerate the observability-overhead artefact: per-round cost with the
# tracing plane armed vs disabled, gated at ≤2% overhead when enabled.
bench-obs:
	$(GO) run ./cmd/benchobs -out BENCH_obs.json

# Regenerate the compute-kernel artefact: dense matmul GFLOP/s (seed ikj vs
# cache-blocked SIMD) across sizes and worker counts, SpMM scaling, and
# streamed-generation / Louvain throughput. Gated at ≥2× over the seed
# kernel on the 512–2048 sizes.
bench-kernels:
	$(GO) run ./cmd/benchkernels -out BENCH_kernels.json -min-speedup 2

# Regenerate the round-topology scaling artefact: rounds/sec and p50/p99
# round latency over party count × straggler rate, barriered sync vs
# buffered async, on synthetic sleep-calibrated parties.
bench-scale:
	$(GO) run ./cmd/benchscale -out BENCH_scale.json

# Regenerate the serving-plane artefact: closed-loop qps and p50/p99 request
# latency for the micro-batched inference service, unbatched vs coalesced vs
# coalesced+LRU, plus the hot-swap soak (zero dropped requests). Gated at
# ≥5× unbatched qps at equal-or-better p99.
bench-serve:
	$(GO) run ./cmd/benchserve -out BENCH_serve.json -min-speedup 5

# The pinned million-node pipeline: stream a 10⁶-node SBM, Louvain-partition
# it into 8 parties, train one full FedOMD round, report stage times and
# peak RSS. No O(N²) state anywhere on this path.
scale-demo:
	$(GO) run ./cmd/scaledemo
