GO ?= go

.PHONY: build test check fmt vet race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The gate a PR must pass: formatting, static analysis, and the full
# test suite under the race detector.
check: fmt vet race

bench:
	$(GO) test -bench=. -benchmem ./...
