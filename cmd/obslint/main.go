// Command obslint validates the Prometheus text exposition end to end: it
// drives a short chaos-injected federated run in process, renders the
// resulting aggregator through the /metrics writer, and runs the format
// linter over the output (metric names, duplicate series, histogram bucket
// invariants). Non-zero exit on any problem — `make check` runs it as the
// exposition-lint stage.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	fedomd "fedomd"
)

func run(divisor, rounds int) (*bytes.Buffer, error) {
	g, err := fedomd.GenerateDataset("cora", divisor, 1)
	if err != nil {
		return nil, err
	}
	parties, err := fedomd.Partition(g, 3, 1.0, 2)
	if err != nil {
		return nil, err
	}
	agg := fedomd.NewTelemetryAggregator()
	health := fedomd.NewHealthMonitor(fedomd.HealthConfig{}, nil, agg)
	opts := fedomd.RunOptions{
		Rounds:   rounds,
		Recorder: agg,
		Policy:   fedomd.DropRound,
		Observer: health,
		Codec:    "q8",
		// NaN poisoning exercises the non-finite screen so the health
		// counters (and their exposition families) are present.
		Chaos: &fedomd.ChaosOptions{Seed: 3, NaNRate: 0.2},
	}
	if _, err := fedomd.TrainFedOMD(parties, fedomd.DefaultConfig(), opts, 4); err != nil {
		return nil, err
	}
	build := fedomd.CollectBuildInfo("q8", "drop-round")
	var buf bytes.Buffer
	fedomd.WriteExposition(&buf, agg, &build)
	return &buf, nil
}

func main() {
	divisor := flag.Int("divisor", 24, "dataset scale divisor (higher = smaller graph)")
	rounds := flag.Int("rounds", 4, "federated rounds to drive")
	dump := flag.Bool("dump", false, "print the exposition before the verdict")
	flag.Parse()

	buf, err := run(*divisor, *rounds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obslint:", err)
		os.Exit(1)
	}
	if *dump {
		os.Stdout.Write(buf.Bytes())
	}
	problems := fedomd.LintExposition(bytes.NewReader(buf.Bytes()))
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "obslint:", p)
		}
		os.Exit(1)
	}
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	fmt.Printf("obslint: exposition clean (%d lines)\n", lines)
}
