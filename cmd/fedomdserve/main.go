// Command fedomdserve serves node-classification queries from a trained
// checkpoint over HTTP: it rebuilds the model from the checkpoint's config
// header, folds the graph into a hot propagated-feature table, and answers
// through the micro-batching service of internal/serve. A new checkpoint
// landing on the watched path hot-swaps the model with zero dropped
// requests.
//
// Usage:
//
//	fedomd -dataset cora -checkpoint run.ckpt -checkpoint-every 10  # training side
//	fedomdserve -checkpoint run.ckpt -serve-addr :8090              # serving side
//
//	curl -s localhost:8090/v1/classify -d '{"nodes":[0,1,2],"logits":true}'
//	curl -s localhost:8090/healthz
//	curl -s localhost:8090/metrics     # Prometheus exposition, serve/* series
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"fedomd"
	"fedomd/internal/fed"
	"fedomd/internal/serve"
)

func main() {
	ckPath := flag.String("checkpoint", "", "checkpoint file to serve (required)")
	addr := flag.String("serve-addr", ":8090", "HTTP listen address")
	maxBatch := flag.Int("max-batch", 64, "max nodes coalesced per forward batch (1 = unbatched)")
	linger := flag.Duration("linger", time.Millisecond, "batch formation wait after the first request")
	cacheSize := flag.Int("cache", 4096, "logit LRU capacity in rows (0 = off)")
	watch := flag.Duration("watch", 500*time.Millisecond, "checkpoint poll interval for hot swap (0 = load once)")
	ds := flag.String("dataset", "", "dataset preset override (default: the checkpoint header's)")
	divisor := flag.Int("divisor", 0, "dataset shrink divisor override")
	seed := flag.Int64("seed", 0, "dataset seed override")
	model := flag.String("model", "fedomd", "architecture fallback for pre-header checkpoints")
	hidden := flag.Int("hidden", 64, "hidden width fallback for pre-header checkpoints")
	layers := flag.Int("layers", 2, "hidden layers fallback for pre-header checkpoints")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fedomdserve:", err)
		os.Exit(1)
	}
	if *ckPath == "" {
		fail(fmt.Errorf("-checkpoint is required"))
	}
	ck, err := fed.LoadCheckpointFile(*ckPath)
	if err != nil {
		fail(err)
	}

	// Dataset identity: explicit flags beat the checkpoint header, which
	// beats nothing (a pre-header checkpoint must be told its dataset).
	name, div, dseed := *ds, *divisor, *seed
	if spec := ck.Spec; spec != nil {
		if name == "" {
			name = spec.Dataset
		}
		if div == 0 {
			div = spec.Divisor
		}
		if dseed == 0 {
			dseed = spec.DataSeed
		}
	}
	if name == "" {
		fail(fmt.Errorf("checkpoint has no dataset header; pass -dataset"))
	}
	if div == 0 {
		div = 8
	}
	if dseed == 0 {
		dseed = 1
	}
	g, err := fedomd.GenerateDataset(name, div, dseed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dataset %s: %s\n", name, g.Summary())

	spec := ck.Spec
	if spec == nil {
		// Pre-header snapshot: reconstruct the architecture from flags.
		spec = &fed.ModelSpec{
			SpecVersion: fed.SpecVersion, Model: *model,
			Features: g.NumFeatures(), Classes: g.NumClasses,
			Hidden: *hidden, HiddenLayers: *layers, SpectralBound: true,
		}
		fmt.Printf("pre-header checkpoint: assuming %s hidden=%d layers=%d\n", *model, *hidden, *layers)
	}

	agg := fedomd.NewTelemetryAggregator()
	svc := serve.New(serve.Config{
		MaxBatch:  *maxBatch,
		Linger:    *linger,
		CacheSize: *cacheSize,
		Recorder:  agg,
	})
	params, err := ck.GlobalParams()
	if err != nil {
		fail(err)
	}
	inf, err := serve.BuildInferencer(spec, params, g)
	if err != nil {
		fail(err)
	}
	svc.Swap(inf, ck.Round)
	fmt.Printf("serving %s model from round %d (%d nodes, %d classes, table dim %d)\n",
		spec.Model, ck.Round, inf.Nodes(), inf.Classes(), inf.TableDim())

	var watcher *serve.Watcher
	if *watch > 0 {
		watcher = serve.WatchCheckpoint(svc, *ckPath, *watch, g, func(err error) {
			fmt.Fprintln(os.Stderr, "fedomdserve: swap:", err)
		})
		fmt.Printf("watching %s every %v for hot swap\n", *ckPath, *watch)
	}

	build := fedomd.CollectBuildInfo("raw", "serve")
	mux := http.NewServeMux()
	mux.Handle("/", serve.Handler(svc))
	mux.Handle("/metrics", fedomd.MetricsHandler(agg, &build))
	srv, err := fedomd.StartHTTPServer(*addr, mux)
	if err != nil {
		fail(err)
	}
	fmt.Printf("serving on http://%s (/v1/classify, /healthz, /metrics)\n", srv.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	<-sigc
	fmt.Println("\nshutting down")
	if watcher != nil {
		watcher.Stop()
	}
	if err := srv.ShutdownTimeout(5 * time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "fedomdserve: shutdown:", err)
	}
	svc.Close()
}
