// Command benchcomms measures the communication codecs end to end: it trains
// the same federated FedOMD configuration once per codec tier (raw, delta,
// float32, q8, q4, q8+top-10%) and reports, per tier, the bytes that would
// cross the wire, the compression ratio against raw float64 payloads, the
// codec CPU cost, and the accuracy drift against the raw run. `make
// bench-comms` runs it to produce BENCH_comms.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	fedomd "fedomd"
	"fedomd/internal/codec"
	"fedomd/internal/dataset"
)

// tierSpec names one codec arm of the sweep.
type tierSpec struct {
	label     string
	codecName string
	quantBits int
	topK      float64
}

// tierResult is one arm's measurement.
type tierResult struct {
	Tier string `json:"tier"`
	// Lossless marks the tiers guaranteed bit-identical to raw (raw itself
	// and delta); the others trade bounded accuracy drift for compression.
	Lossless bool `json:"lossless"`
	// BytesUp/BytesDown are the run's accounted traffic (encoded sizes once
	// a codec is on).
	BytesUp   int64 `json:"bytes_up"`
	BytesDown int64 `json:"bytes_down"`
	// BytesRaw vs BytesEncoded compare every upload's raw float64 size with
	// what the codec produced; Compression is their ratio (1 for raw) — the
	// ≥4× upload-reduction gate reads this pair. The Down pair covers the
	// always-lossless delta broadcasts.
	BytesRaw         int64   `json:"codec_bytes_raw"`
	BytesEncoded     int64   `json:"codec_bytes_encoded"`
	BytesRawDown     int64   `json:"codec_bytes_raw_down"`
	BytesEncodedDown int64   `json:"codec_bytes_encoded_down"`
	Compression      float64 `json:"upload_compression_ratio"`
	EncodeNs         int64   `json:"encode_ns"`
	DecodeNs         int64   `json:"decode_ns"`
	// TestAtBestVal is the headline accuracy; DriftVsRaw is its signed
	// difference from the raw tier's (the lossy tiers' cost).
	TestAtBestVal float64 `json:"test_at_best_val"`
	FinalTestAcc  float64 `json:"final_test_acc"`
	DriftVsRaw    float64 `json:"acc_drift_vs_raw"`
}

type report struct {
	Benchmark string       `json:"benchmark"`
	Dataset   string       `json:"dataset"`
	Divisor   int          `json:"divisor"`
	Parties   int          `json:"parties"`
	Rounds    int          `json:"rounds"`
	Hidden    int          `json:"hidden"`
	Seed      int64        `json:"seed"`
	Tiers     []tierResult `json:"tiers"`
}

func run(spec tierSpec, parties []fedomd.Party, cfg fedomd.Config, rounds int, seed int64) (tierResult, error) {
	agg := fedomd.NewTelemetryAggregator()
	res, err := fedomd.TrainFedOMD(parties, cfg, fedomd.RunOptions{
		Rounds:    rounds,
		Recorder:  agg,
		Codec:     spec.codecName,
		QuantBits: spec.quantBits,
		TopK:      spec.topK,
	}, seed)
	if err != nil {
		return tierResult{}, fmt.Errorf("tier %s: %w", spec.label, err)
	}
	tr := tierResult{
		Tier:             spec.label,
		Lossless:         spec.codecName == "" || spec.codecName == "delta",
		BytesUp:          res.TotalBytesUp,
		BytesDown:        res.TotalBytesDown,
		BytesRaw:         agg.Counter(codec.MetricBytesRaw),
		BytesEncoded:     agg.Counter(codec.MetricBytesEncoded),
		BytesRawDown:     agg.Counter(codec.MetricBytesRawDown),
		BytesEncodedDown: agg.Counter(codec.MetricBytesEncodedDown),
		EncodeNs:         agg.Counter(codec.MetricEncodeNs),
		DecodeNs:         agg.Counter(codec.MetricDecodeNs),
		TestAtBestVal:    res.TestAtBestVal,
		FinalTestAcc:     res.FinalTestAcc,
	}
	if tr.BytesEncoded > 0 {
		tr.Compression = float64(tr.BytesRaw) / float64(tr.BytesEncoded)
	} else {
		tr.Compression = 1
	}
	return tr, nil
}

func main() {
	out := flag.String("out", "BENCH_comms.json", "output JSON path")
	ds := flag.String("dataset", dataset.Cora, "dataset preset")
	divisor := flag.Int("divisor", 12, "dataset scale divisor (higher = smaller graph)")
	nParties := flag.Int("parties", 5, "number of federated parties")
	rounds := flag.Int("rounds", 20, "communication rounds per tier")
	hidden := flag.Int("hidden", 16, "hidden width")
	seed := flag.Int64("seed", 1, "random seed (shared by every tier)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchcomms:", err)
		os.Exit(1)
	}

	g, err := fedomd.GenerateDataset(*ds, *divisor, *seed)
	if err != nil {
		fail(err)
	}
	parties, err := fedomd.Partition(g, *nParties, 1.0, *seed+1)
	if err != nil {
		fail(err)
	}
	cfg := fedomd.DefaultConfig()
	cfg.Hidden = *hidden

	tiers := []tierSpec{
		{label: "raw", codecName: ""},
		{label: "delta", codecName: "delta"},
		{label: "float32", codecName: "float32"},
		{label: "q8", codecName: "q8"},
		{label: "q4", codecName: "q4"},
		{label: "q8_top10", codecName: "q8", topK: 0.1},
	}
	r := report{
		Benchmark: "fedomd_comms_codecs",
		Dataset:   *ds,
		Divisor:   *divisor,
		Parties:   *nParties,
		Rounds:    *rounds,
		Hidden:    *hidden,
		Seed:      *seed,
	}
	for _, spec := range tiers {
		tr, err := run(spec, parties, cfg, *rounds, *seed+2)
		if err != nil {
			fail(err)
		}
		if len(r.Tiers) > 0 {
			tr.DriftVsRaw = tr.TestAtBestVal - r.Tiers[0].TestAtBestVal
		}
		r.Tiers = append(r.Tiers, tr)
		fmt.Printf("benchcomms: %-9s %8d B up, %8d B down, %5.2fx upload compression, acc %.4f (drift %+.4f)\n",
			tr.Tier, tr.BytesUp, tr.BytesDown, tr.Compression, tr.TestAtBestVal, tr.DriftVsRaw)
	}

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("benchcomms: report written to %s\n", *out)
}
