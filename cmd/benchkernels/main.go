// Command benchkernels measures the compute kernels that dominate
// million-node runs and writes BENCH_kernels.json: dense matmul GFLOP/s
// (seed ikj baseline vs the cache-blocked SIMD kernels) across sizes and
// worker counts, SpMM GFLOP/s across worker counts, and end-to-end
// throughput (nodes/sec) for streaming SBM generation and Louvain
// partitioning. `make bench-kernels` runs it at full scale; `make check`
// runs `-smoke`, a seconds-long pass over tiny shapes that exercises every
// code path without writing the artefact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"fedomd/internal/dataset"
	"fedomd/internal/mat"
	"fedomd/internal/partition"
	"fedomd/internal/sparse"
)

type denseResult struct {
	Kernel  string  `json:"kernel"`
	Size    int     `json:"size"`
	Workers int     `json:"workers"`
	GFLOPS  float64 `json:"gflops"`
}

type speedupResult struct {
	Size    int     `json:"size"`
	Speedup float64 `json:"speedup_vs_seed"`
}

type spmmResult struct {
	Kernel  string  `json:"kernel"`
	Rows    int     `json:"rows"`
	NNZ     int     `json:"nnz"`
	Cols    int     `json:"dense_cols"`
	Workers int     `json:"workers"`
	GFLOPS  float64 `json:"gflops"`
}

type throughputResult struct {
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	Seconds     float64 `json:"seconds"`
	NodesPerSec float64 `json:"nodes_per_sec"`
	Communities int     `json:"communities,omitempty"`
}

type report struct {
	Benchmark    string           `json:"benchmark"`
	NumCPU       int              `json:"num_cpu"`
	SIMD         bool             `json:"simd"`
	Dense        []denseResult    `json:"dense"`
	DenseSpeedup []speedupResult  `json:"dense_speedup"`
	SpMM         []spmmResult     `json:"spmm"`
	Generate     throughputResult `json:"generate"`
	Louvain      throughputResult `json:"louvain"`
}

// nsPerOp times f, growing the iteration count until the sample is long
// enough to trust. Callers warm buffers before handing f over.
func nsPerOp(f func()) float64 {
	const minSample = 200 * time.Millisecond
	iters := 1
	for {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		dt := time.Since(t0)
		if dt >= minSample {
			return float64(dt.Nanoseconds()) / float64(iters)
		}
		iters *= 4
	}
}

func randDense(rows, cols int, rng *rand.Rand) *mat.Dense {
	x := mat.New(rows, cols)
	d := x.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return x
}

// workerCounts enumerates 1, 2, 4, ... up to and including NumCPU.
func workerCounts() []int {
	ws := []int{1}
	for w := 2; w < runtime.NumCPU(); w *= 2 {
		ws = append(ws, w)
	}
	if n := runtime.NumCPU(); n > 1 {
		ws = append(ws, n)
	}
	return ws
}

func benchDense(sizes []int, r *report) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range sizes {
		a, b := randDense(n, n, rng), randDense(n, n, rng)
		out := mat.New(n, n)
		flops := 2 * float64(n) * float64(n) * float64(n)

		seedNs := nsPerOp(func() { mat.MatMulSerial(a, b) })
		seedGF := flops / seedNs
		r.Dense = append(r.Dense, denseResult{Kernel: "seed_ikj", Size: n, Workers: 1, GFLOPS: seedGF})

		var bestGF float64
		for _, w := range workerCounts() {
			mat.SetWorkers(w)
			ns := nsPerOp(func() { mat.MatMulInto(out, a, b) })
			gf := flops / ns
			if gf > bestGF {
				bestGF = gf
			}
			r.Dense = append(r.Dense, denseResult{Kernel: "blocked", Size: n, Workers: w, GFLOPS: gf})
		}
		mat.SetWorkers(0)
		r.DenseSpeedup = append(r.DenseSpeedup, speedupResult{Size: n, Speedup: bestGF / seedGF})
		fmt.Printf("benchkernels: dense %4d³  seed %6.2f GF/s  blocked %6.2f GF/s  (%.1fx)\n",
			n, seedGF, bestGF, bestGF/seedGF)
	}

	// Transposed variants at the middle size: the backward-pass kernels.
	n := sizes[len(sizes)/2]
	a, b := randDense(n, n, rng), randDense(n, n, rng)
	out := mat.New(n, n)
	flops := 2 * float64(n) * float64(n) * float64(n)
	mat.SetWorkers(runtime.NumCPU())
	for _, k := range []struct {
		name string
		f    func()
	}{
		{"blocked_t1", func() { mat.MatMulT1Into(out, a, b) }},
		{"blocked_t2", func() { mat.MatMulT2Into(out, a, b) }},
	} {
		gf := flops / nsPerOp(k.f)
		r.Dense = append(r.Dense, denseResult{Kernel: k.name, Size: n, Workers: runtime.NumCPU(), GFLOPS: gf})
		fmt.Printf("benchkernels: dense %4d³  %s %6.2f GF/s\n", n, k.name, gf)
	}
	mat.SetWorkers(0)
}

func benchSpMM(rows, nnz, c int, r *report) {
	rng := rand.New(rand.NewSource(2))
	entries := make([]sparse.Coord, nnz)
	for i := range entries {
		entries[i] = sparse.Coord{Row: rng.Intn(rows), Col: rng.Intn(rows), Val: rng.Float64() + 0.5}
	}
	m, err := sparse.NewCSR(rows, rows, entries)
	if err != nil {
		fatal(err)
	}
	x := randDense(rows, c, rng)
	xt := randDense(rows, c, rng)
	out := mat.New(rows, c)
	flops := 2 * float64(m.NNZ()) * float64(c)
	for _, w := range workerCounts() {
		mat.SetWorkers(w)
		gf := flops / nsPerOp(func() { out.Zero(); m.MulDenseAddInto(out, x) })
		r.SpMM = append(r.SpMM, spmmResult{Kernel: "mul_dense", Rows: rows, NNZ: m.NNZ(), Cols: c, Workers: w, GFLOPS: gf})
		gfT := flops / nsPerOp(func() { out.Zero(); m.TMulDenseAddInto(out, xt) })
		r.SpMM = append(r.SpMM, spmmResult{Kernel: "tmul_dense", Rows: rows, NNZ: m.NNZ(), Cols: c, Workers: w, GFLOPS: gfT})
		fmt.Printf("benchkernels: spmm  %dx%d nnz=%d c=%d w=%d  A·X %5.2f GF/s  Aᵀ·X %5.2f GF/s\n",
			rows, rows, m.NNZ(), c, w, gf, gfT)
	}
	mat.SetWorkers(0)
}

func benchScale(nodes, edges int, r *report) {
	cfg := dataset.Config{
		Name:                "benchkernels",
		Nodes:               nodes,
		Edges:               edges,
		Classes:             8,
		Features:            16,
		CommunitiesPerClass: 4,
		Homophily:           0.85,
		ActiveFeatures:      4,
		SignalRatio:         0.9,
	}
	t0 := time.Now()
	g, err := dataset.GenerateStream(cfg, 1)
	if err != nil {
		fatal(err)
	}
	dt := time.Since(t0).Seconds()
	r.Generate = throughputResult{
		Nodes: g.NumNodes(), Edges: g.NumEdges(), Seconds: dt,
		NodesPerSec: float64(g.NumNodes()) / dt,
	}
	fmt.Printf("benchkernels: generate %d nodes / %d edges in %.2fs (%.0f nodes/sec)\n",
		g.NumNodes(), g.NumEdges(), dt, r.Generate.NodesPerSec)

	rng := rand.New(rand.NewSource(1))
	t0 = time.Now()
	comm, err := partition.Louvain(g, 1.0, rng)
	if err != nil {
		fatal(err)
	}
	dt = time.Since(t0).Seconds()
	k := 0
	for _, c := range comm {
		if c+1 > k {
			k = c + 1
		}
	}
	r.Louvain = throughputResult{
		Nodes: g.NumNodes(), Edges: g.NumEdges(), Seconds: dt,
		NodesPerSec: float64(g.NumNodes()) / dt, Communities: k,
	}
	fmt.Printf("benchkernels: louvain  %d nodes -> %d communities in %.2fs (%.0f nodes/sec)\n",
		g.NumNodes(), k, dt, r.Louvain.NodesPerSec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchkernels:", err)
	os.Exit(1)
}

func main() {
	out := flag.String("out", "BENCH_kernels.json", "output JSON path (empty = print only)")
	smoke := flag.Bool("smoke", false, "tiny shapes, no artefact unless -out is set explicitly")
	minSpeedup := flag.Float64("min-speedup", 0, "fail unless blocked matmul beats seed by this factor at sizes >= 512")
	flag.Parse()
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})

	r := &report{Benchmark: "fedomd_kernels", NumCPU: runtime.NumCPU(), SIMD: mat.SIMDEnabled()}
	if *smoke {
		benchDense([]int{64, 96, 128}, r)
		benchSpMM(4000, 60000, 16, r)
		benchScale(20000, 120000, r)
	} else {
		benchDense([]int{256, 512, 1024, 2048}, r)
		benchSpMM(100000, 2000000, 64, r)
		benchScale(1000000, 8000000, r)
	}

	if *minSpeedup > 0 {
		for _, s := range r.DenseSpeedup {
			if s.Size >= 512 && s.Speedup < *minSpeedup {
				fatal(fmt.Errorf("dense %d speedup %.2fx below gate %.2fx", s.Size, s.Speedup, *minSpeedup))
			}
		}
	}
	if *smoke && !outSet {
		fmt.Println("benchkernels: smoke pass OK (no artefact written)")
		return
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchkernels: wrote %s\n", *out)
}
