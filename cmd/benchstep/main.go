// Command benchstep measures the steady-state cost of one FedOMD local
// training step with the memory-reuse layer on (pooled buffers, tape arena,
// propagated-feature cache) and off (the allocate-per-op ablation), and
// writes the comparison to a JSON artefact. `make bench` runs it to produce
// BENCH_step_allocs.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	fedomd "fedomd"
	"fedomd/internal/core"
	"fedomd/internal/dataset"
	"fedomd/internal/mat"
)

// stepResult is one benchmark arm of the comparison.
type stepResult struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

type report struct {
	Benchmark   string     `json:"benchmark"`
	Dataset     string     `json:"dataset"`
	Divisor     int        `json:"divisor"`
	Hidden      int        `json:"hidden"`
	Workers     int        `json:"workers"`
	SIMD        bool       `json:"simd"`
	Pooled      stepResult `json:"pooled"`
	Unpooled    stepResult `json:"unpooled"`
	BytesRatio  float64    `json:"bytes_ratio"`
	AllocsRatio float64    `json:"allocs_ratio"`
	SpeedupPct  float64    `json:"speedup_pct"`
}

// measure benchmarks TrainLocal steady state with pooling toggled. The full
// eq. 12 objective is active: global moment statistics are installed first so
// the CMD branch runs.
func measure(pooled bool, divisor, hidden int) (stepResult, error) {
	g, err := fedomd.GenerateDataset(dataset.Cora, divisor, 1)
	if err != nil {
		return stepResult{}, err
	}
	cfg := core.DefaultConfig()
	cfg.Hidden = hidden
	client, err := core.NewClient("bench", g, cfg, 1)
	if err != nil {
		return stepResult{}, err
	}
	means, _, err := client.LocalMeans()
	if err != nil {
		return stepResult{}, err
	}
	central, _, err := client.CentralAroundGlobal(means)
	if err != nil {
		return stepResult{}, err
	}
	client.SetGlobalStats(means, central)

	mat.SetPooling(pooled)
	defer mat.SetPooling(true)
	var stepErr error
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < 3; i++ { // warm up pool, arena, caches, Adam state
			if _, err := client.TrainLocal(i); err != nil {
				stepErr = err
				return
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := client.TrainLocal(i); err != nil {
				stepErr = err
				return
			}
		}
	})
	if stepErr != nil {
		return stepResult{}, stepErr
	}
	return stepResult{
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}, nil
}

func main() {
	out := flag.String("out", "BENCH_step_allocs.json", "output JSON path")
	divisor := flag.Int("divisor", 16, "dataset scale divisor (higher = smaller graph)")
	hidden := flag.Int("hidden", 32, "hidden width")
	workers := flag.Int("workers", 0, "kernel worker count (0 = GOMAXPROCS)")
	flag.Parse()

	// Spin up the persistent kernel pool before timing so pool start-up cost
	// never lands inside a benchmark arm, and record the effective count: the
	// pooled-vs-unpooled comparison is only meaningful at a fixed parallelism.
	mat.SetWorkers(*workers)
	mat.ParallelFor(1, 1, func(lo, hi int) {})

	pooled, err := measure(true, *divisor, *hidden)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchstep: pooled run:", err)
		os.Exit(1)
	}
	unpooled, err := measure(false, *divisor, *hidden)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchstep: unpooled run:", err)
		os.Exit(1)
	}
	ratio := func(a, b int64) float64 {
		if b == 0 {
			return 0
		}
		return float64(a) / float64(b)
	}
	r := report{
		Benchmark:   "fedomd_train_step_allocs",
		Dataset:     dataset.Cora,
		Divisor:     *divisor,
		Hidden:      *hidden,
		Workers:     mat.Workers(),
		SIMD:        mat.SIMDEnabled(),
		Pooled:      pooled,
		Unpooled:    unpooled,
		BytesRatio:  ratio(pooled.BytesPerOp, unpooled.BytesPerOp),
		AllocsRatio: ratio(pooled.AllocsPerOp, unpooled.AllocsPerOp),
		SpeedupPct:  100 * (1 - ratio(pooled.NsPerOp, unpooled.NsPerOp)),
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchstep:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchstep:", err)
		os.Exit(1)
	}
	fmt.Printf("benchstep: pooled %d B/op (%d allocs), unpooled %d B/op (%d allocs), bytes ratio %.4f -> %s\n",
		pooled.BytesPerOp, pooled.AllocsPerOp, unpooled.BytesPerOp, unpooled.AllocsPerOp, r.BytesRatio, *out)
}
