// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp table4 -scale quick -seed 1
//	experiments -exp all   -scale quick
//
// Experiments: table2 table3 table4 table5 table6 table7 figure4 figure5
// figure6 figure7 all. Scales: smoke (seconds), quick (minutes, default),
// paper (full Table 2 dataset sizes; hours of CPU).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fedomd"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: table2..table7, figure4..figure7, or all")
	scale := flag.String("scale", "quick", "run scale: smoke, quick or paper")
	seed := flag.Int64("seed", 1, "base random seed")
	jobs := flag.Int("jobs", 0, "max concurrent grid cells (0 = GOMAXPROCS); results are identical at any value")
	flag.Parse()

	runner, err := fedomd.NewExperiments(*scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	runner.Jobs = *jobs

	drivers := map[string]func() error{
		"table2":  func() error { return runner.Table2(os.Stdout) },
		"table3":  func() error { return runner.Table3(os.Stdout, "cora", 3) },
		"table4":  func() error { return runner.Table4(os.Stdout, nil, nil) },
		"table5":  func() error { return runner.Table5(os.Stdout, nil) },
		"table6":  func() error { return runner.Table6(os.Stdout, nil, nil) },
		"table7":  func() error { return runner.Table7(os.Stdout, nil, nil, nil) },
		"figure4": func() error { return runner.Figure4(os.Stdout, "cora", 5) },
		"figure5": func() error { return runner.Figure5(os.Stdout, "cora", 5, nil) },
		"figure6": func() error { return runner.Figure6(os.Stdout, nil, nil, nil) },
		"figure7": func() error { return runner.Figure7(os.Stdout, nil, nil) },
	}
	order := []string{"table2", "table3", "table4", "table5", "table6", "table7",
		"figure4", "figure5", "figure6", "figure7"}

	run := func(id string) error {
		d, ok := drivers[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (want one of %v or all)", id, order)
		}
		start := time.Now()
		if err := d(); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Printf("[%s done in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
		return nil
	}

	if *exp == "all" {
		for _, id := range order {
			if err := run(id); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
