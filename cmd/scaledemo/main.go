// Command scaledemo is the pinned million-node pipeline demo behind
// `make scale-demo`: it streams a ≥10⁶-node SBM (no O(N²) state), splits the
// labels at the paper's rates, Louvain-partitions the graph into federated
// parties, trains one full FedOMD communication round (statistics exchange +
// local step + aggregation + evaluation), and reports per-stage wall time
// plus the process's peak RSS.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	fedomd "fedomd"
	"fedomd/internal/dataset"
	"fedomd/internal/partition"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scaledemo:", err)
	os.Exit(1)
}

// peakRSSMB reads VmHWM (peak resident set) from /proc/self/status; it
// returns 0 on platforms without procfs.
func peakRSSMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

func main() {
	nodes := flag.Int("nodes", 1_000_000, "SBM node count")
	edges := flag.Int("edges", 8_000_000, "SBM edge budget")
	parties := flag.Int("parties", 8, "federated party count M")
	resolution := flag.Float64("resolution", 1.0, "Louvain resolution")
	hidden := flag.Int("hidden", 16, "FedOMD hidden width")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	cfg := dataset.Config{
		Name:                "scale-demo",
		Nodes:               *nodes,
		Edges:               *edges,
		Classes:             8,
		Features:            32,
		CommunitiesPerClass: 4,
		Homophily:           0.85,
		ActiveFeatures:      6,
		SignalRatio:         0.9,
	}

	t0 := time.Now()
	g, err := dataset.GenerateStream(cfg, *seed)
	if err != nil {
		fatal(err)
	}
	tGen := time.Since(t0)
	fmt.Printf("scaledemo: generate  %d nodes / %d edges          %8.2fs\n",
		g.NumNodes(), g.NumEdges(), tGen.Seconds())

	rng := rand.New(rand.NewSource(*seed))
	t0 = time.Now()
	if err := g.Split(rng, 0.01, 0.2, 0.2); err != nil {
		fatal(err)
	}
	tSplit := time.Since(t0)
	fmt.Printf("scaledemo: split     1%%/20%%/20%% stratified masks   %8.2fs\n", tSplit.Seconds())

	t0 = time.Now()
	pts, err := partition.LouvainParties(g, *parties, *resolution, rng)
	if err != nil {
		fatal(err)
	}
	tPart := time.Since(t0)
	fmt.Printf("scaledemo: partition %d parties (louvain + induce)  %8.2fs\n", len(pts), tPart.Seconds())

	mcfg := fedomd.DefaultConfig()
	mcfg.Hidden = *hidden
	t0 = time.Now()
	res, err := fedomd.TrainFedOMD(pts, mcfg, fedomd.RunOptions{Rounds: 1, Sequential: true}, *seed)
	if err != nil {
		fatal(err)
	}
	tTrain := time.Since(t0)
	fmt.Printf("scaledemo: round 1   exchange + train + aggregate   %8.2fs\n", tTrain.Seconds())

	total := tGen + tSplit + tPart + tTrain
	fmt.Printf("scaledemo: test accuracy after one round: %.4f\n", res.FinalTestAcc)
	if rss := peakRSSMB(); rss > 0 {
		fmt.Printf("scaledemo: total %.2fs, peak RSS %.0f MB\n", total.Seconds(), rss)
	} else {
		fmt.Printf("scaledemo: total %.2fs, peak RSS unavailable on this platform\n", total.Seconds())
	}
}
