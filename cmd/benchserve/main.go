// Command benchserve measures the serving plane and writes BENCH_serve.json:
// closed-loop qps and latency percentiles for the micro-batched request path
// against the unbatched baseline (same code path, MaxBatch=1), across batch
// ceilings and core counts, plus a cached row and a hot-swap soak that must
// complete with zero dropped requests.
//
// The load generator drives serve.Service.Classify directly — the exact
// path the HTTP handler calls — so the numbers isolate the serving core
// (batcher + cache + tape-free forward) from kernel HTTP overhead.
// `make bench-serve` runs it at full scale; `make check` runs `-smoke`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/serve"
	"fedomd/internal/telemetry"
)

type runResult struct {
	Mode     string  `json:"mode"` // "unbatched" | "batched" | "batched+cache"
	MaxBatch int     `json:"max_batch"`
	Cores    int     `json:"cores"`
	Workers  int     `json:"workers"`
	Requests int     `json:"requests"`
	QPS      float64 `json:"qps"`
	P50us    float64 `json:"p50_us"`
	P99us    float64 `json:"p99_us"`
	Batches  int64   `json:"batches"`
	AvgBatch float64 `json:"avg_batch"`
	HitRatio float64 `json:"hit_ratio,omitempty"`
}

type soakResult struct {
	Requests int   `json:"requests"`
	Swaps    int64 `json:"swaps"`
	Dropped  int   `json:"dropped"`
}

type gateResult struct {
	MinSpeedup float64 `json:"min_speedup"`
	Speedup    float64 `json:"speedup"`
	P99Ratio   float64 `json:"p99_ratio"` // batched p99 / unbatched p99
	Pass       bool    `json:"pass"`
}

type report struct {
	Benchmark string      `json:"benchmark"`
	NumCPU    int         `json:"num_cpu"`
	Nodes     int         `json:"nodes"`
	HeadDims  []int       `json:"head_dims"`
	Runs      []runResult `json:"runs"`
	Soak      soakResult  `json:"swap_soak"`
	Gate      *gateResult `json:"gate,omitempty"`
}

// buildInferencer folds a dense-head MLP over a random node table — per
// request this is the same matmul chain a propagated GCN head runs, sized so
// one query carries real arithmetic (≈73k MACs).
func buildInferencer(dims []int, nodes int, seed int64) *nn.Inferencer {
	rng := rand.New(rand.NewSource(seed))
	m, err := nn.NewMLP(rng, dims, 0)
	if err != nil {
		panic(err)
	}
	x := mat.RandGaussian(rng, nodes, dims[0], 0, 1)
	inf, err := nn.NewInferencer(m, nn.Input{X: x})
	if err != nil {
		panic(err)
	}
	return inf
}

// drive runs a closed loop of workers issuing single-node classifies for d,
// collecting per-request latencies.
func drive(svc *serve.Service, nodes, workers int, d time.Duration, zipf bool) (lat []float64, n int) {
	var stop atomic.Bool
	var wg sync.WaitGroup
	perWorker := make([][]float64, workers)
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			var zf *rand.Zipf
			if zipf {
				zf = rand.NewZipf(rng, 1.3, 1, uint64(nodes-1))
			}
			buf := make([]float64, 0, 1<<14)
			ids := make([]int, 1)
			for !stop.Load() {
				if zf != nil {
					ids[0] = int(zf.Uint64())
				} else {
					ids[0] = rng.Intn(nodes)
				}
				t0 := time.Now()
				if _, err := svc.Classify(ctx, ids, false); err != nil {
					continue
				}
				buf = append(buf, float64(time.Since(t0).Nanoseconds()))
			}
			perWorker[w] = buf
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	for _, b := range perWorker {
		lat = append(lat, b...)
		n += len(b)
	}
	return lat, n
}

func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

func measure(inf *nn.Inferencer, mode string, maxBatch, cores, workers, nodes int, warm, d time.Duration, cache bool) runResult {
	agg := telemetry.NewAggregator()
	cacheSize := 0
	if cache {
		cacheSize = nodes / 4
	}
	svc := serve.New(serve.Config{
		MaxBatch:   maxBatch,
		Linger:     200 * time.Microsecond,
		CacheSize:  cacheSize,
		QueueDepth: 4096,
		Recorder:   agg,
	})
	defer svc.Close()
	svc.Swap(inf, 1)
	drive(svc, nodes, workers, warm, cache) // warm pools, caches, scheduler
	t0 := time.Now()
	lat, n := drive(svc, nodes, workers, d, cache)
	elapsed := time.Since(t0).Seconds()
	sort.Float64s(lat)
	res := runResult{
		Mode: mode, MaxBatch: maxBatch, Cores: cores, Workers: workers,
		Requests: n,
		QPS:      float64(n) / elapsed,
		P50us:    quantile(lat, 0.50) / 1e3,
		P99us:    quantile(lat, 0.99) / 1e3,
		Batches:  agg.Counter(serve.MetricBatches),
	}
	if res.Batches > 0 {
		res.AvgBatch = float64(n) / float64(res.Batches)
	}
	hits, misses := agg.Counter(serve.MetricCacheHits), agg.Counter(serve.MetricCacheMisses)
	if hits+misses > 0 && cache {
		res.HitRatio = float64(hits) / float64(hits+misses)
	}
	return res
}

// soak hammers the service while the model is swapped every few
// milliseconds; any classify error under pure swap load is a dropped
// request.
func soak(inf, inf2 *nn.Inferencer, nodes, workers int, d time.Duration) soakResult {
	svc := serve.New(serve.Config{MaxBatch: 64, Linger: 200 * time.Microsecond, QueueDepth: 4096})
	svc.Swap(inf, 0)
	var stop atomic.Bool
	var swaps atomic.Int64
	var dropped atomic.Int64
	var total atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		round := 1
		for !stop.Load() {
			time.Sleep(5 * time.Millisecond)
			which := inf
			if round%2 == 1 {
				which = inf2
			}
			svc.Swap(which, round)
			swaps.Add(1)
			round++
		}
	}()
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			ids := make([]int, 1)
			for !stop.Load() {
				ids[0] = rng.Intn(nodes)
				if _, err := svc.Classify(ctx, ids, false); err != nil {
					dropped.Add(1)
				}
				total.Add(1)
			}
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	svc.Close()
	return soakResult{Requests: int(total.Load()), Swaps: swaps.Load(), Dropped: int(dropped.Load())}
}

func coreSweep(max int) []int {
	var out []int
	for c := 1; c < max; c *= 2 {
		out = append(out, c)
	}
	return append(out, max)
}

func main() {
	out := flag.String("out", "BENCH_serve.json", "output JSON path (empty = print only)")
	smoke := flag.Bool("smoke", false, "short pass over every path; no artefact unless -out is set explicitly, no gate")
	minSpeedup := flag.Float64("min-speedup", 0, "fail unless batched qps beats unbatched by this factor at equal-or-better p99 (max cores)")
	workers := flag.Int("workers", 64, "closed-loop load workers")
	nodes := flag.Int("nodes", 4096, "table rows (queryable node IDs)")
	duration := flag.Duration("duration", 500*time.Millisecond, "measure window per configuration")
	flag.Parse()

	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})

	dims := []int{512, 128, 16}
	warm, d, soakD := 100*time.Millisecond, *duration, 400*time.Millisecond
	if *smoke {
		dims = []int{64, 32, 8}
		*nodes = 256
		warm, d, soakD = 10*time.Millisecond, 40*time.Millisecond, 60*time.Millisecond
	}
	inf := buildInferencer(dims, *nodes, 1)
	inf2 := buildInferencer(dims, *nodes, 2)

	rep := report{
		Benchmark: "serve",
		NumCPU:    runtime.NumCPU(),
		Nodes:     *nodes,
		HeadDims:  dims,
	}
	batchCeilings := []int{8, 16, 32, 64}
	if *smoke {
		batchCeilings = []int{8}
	}
	cores := coreSweep(runtime.NumCPU())
	if *smoke {
		cores = []int{runtime.NumCPU()}
	}

	prevProcs := runtime.GOMAXPROCS(0)
	var unbatchedMax, bestBatched runResult
	for _, c := range cores {
		runtime.GOMAXPROCS(c)
		mat.SetWorkers(c)
		ub := measure(inf, "unbatched", 1, c, *workers, *nodes, warm, d, false)
		rep.Runs = append(rep.Runs, ub)
		fmt.Printf("cores=%d unbatched            %8.0f qps  p50 %7.1fµs  p99 %8.1fµs\n", c, ub.QPS, ub.P50us, ub.P99us)
		for _, mb := range batchCeilings {
			r := measure(inf, "batched", mb, c, *workers, *nodes, warm, d, false)
			rep.Runs = append(rep.Runs, r)
			fmt.Printf("cores=%d batched max=%-3d     %8.0f qps  p50 %7.1fµs  p99 %8.1fµs  avg batch %5.1f  (%.1fx)\n",
				c, mb, r.QPS, r.P50us, r.P99us, r.AvgBatch, r.QPS/ub.QPS)
			if c == runtime.NumCPU() && r.QPS > bestBatched.QPS {
				bestBatched = r
			}
		}
		cr := measure(inf, "batched+cache", 64, c, *workers, *nodes, warm, d, true)
		rep.Runs = append(rep.Runs, cr)
		fmt.Printf("cores=%d batched+cache        %8.0f qps  p50 %7.1fµs  p99 %8.1fµs  hit ratio %.2f\n",
			c, cr.QPS, cr.P50us, cr.P99us, cr.HitRatio)
		if c == runtime.NumCPU() {
			unbatchedMax = ub
		}
	}
	runtime.GOMAXPROCS(prevProcs)
	mat.SetWorkers(prevProcs)

	rep.Soak = soak(inf, inf2, *nodes, *workers, soakD)
	fmt.Printf("swap soak: %d requests across %d swaps, %d dropped\n",
		rep.Soak.Requests, rep.Soak.Swaps, rep.Soak.Dropped)
	if rep.Soak.Dropped != 0 {
		fmt.Fprintf(os.Stderr, "benchserve: FAIL: %d requests dropped during hot-swap soak\n", rep.Soak.Dropped)
		os.Exit(1)
	}

	if !*smoke && *minSpeedup > 0 {
		g := &gateResult{
			MinSpeedup: *minSpeedup,
			Speedup:    bestBatched.QPS / unbatchedMax.QPS,
			P99Ratio:   bestBatched.P99us / unbatchedMax.P99us,
		}
		g.Pass = g.Speedup >= *minSpeedup && g.P99Ratio <= 1.0
		rep.Gate = g
		fmt.Printf("gate: batched %.1fx unbatched qps, p99 ratio %.2f (need >= %.1fx at <= 1.00)\n",
			g.Speedup, g.P99Ratio, g.MinSpeedup)
		if !g.Pass {
			fmt.Fprintln(os.Stderr, "benchserve: FAIL: coalescing gate not met")
			writeReport(rep, *out, outSet, *smoke)
			os.Exit(1)
		}
	}
	writeReport(rep, *out, outSet, *smoke)
}

func writeReport(rep report, out string, outSet, smoke bool) {
	if out == "" || (smoke && !outSet) {
		return
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", out)
}
