// Command benchobs measures the observability plane's cost on a federated
// run: wall time per round with tracing and health monitoring fully enabled
// (spans to a JSONL sink, round observations through the rule engine) versus
// disabled (nil tracer, nil observer — the zero-cost path every untraced run
// takes). It writes the comparison to a JSON artefact and exits non-zero if
// the enabled overhead exceeds the pinned bound. `make bench-obs` runs it to
// produce BENCH_obs.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	fedomd "fedomd"
)

type arm struct {
	NsPerRound int64 `json:"ns_per_round"`
	Spans      int64 `json:"spans"`
	Events     int64 `json:"events"`
}

type report struct {
	Benchmark      string  `json:"benchmark"`
	Dataset        string  `json:"dataset"`
	Divisor        int     `json:"divisor"`
	Rounds         int     `json:"rounds"`
	Reps           int     `json:"reps"`
	Disabled       arm     `json:"disabled"`
	Enabled        arm     `json:"enabled"`
	OverheadPct    float64 `json:"overhead_pct"`
	MaxOverheadPct float64 `json:"max_overhead_pct"`
}

// measure runs one federated training at the benchmark scale and returns the
// elapsed wall time plus the tracer's span/event tallies (zero when traced is
// false). Every randomness source is pinned, so the two arms train the exact
// same computation and differ only in the observability plane.
func measure(traced bool, divisor, rounds int) (time.Duration, arm, error) {
	g, err := fedomd.GenerateDataset("cora", divisor, 1)
	if err != nil {
		return 0, arm{}, err
	}
	parties, err := fedomd.Partition(g, 3, 1.0, 2)
	if err != nil {
		return 0, arm{}, err
	}
	opts := fedomd.RunOptions{Rounds: rounds, Sequential: true}
	var tr *fedomd.Tracer
	if traced {
		tr = fedomd.NewTracer(fedomd.NewTraceWriter(io.Discard))
		opts.Tracer = tr
		opts.Observer = fedomd.NewHealthMonitor(fedomd.HealthConfig{}, tr, nil)
	}
	start := time.Now()
	if _, err := fedomd.TrainFedOMD(parties, fedomd.DefaultConfig(), opts, 4); err != nil {
		return 0, arm{}, err
	}
	elapsed := time.Since(start)
	var a arm
	a.NsPerRound = elapsed.Nanoseconds() / int64(rounds)
	if traced {
		a.Spans, a.Events = tr.Counts()
	}
	return elapsed, a, nil
}

func main() {
	out := flag.String("out", "BENCH_obs.json", "output JSON path")
	divisor := flag.Int("divisor", 24, "dataset scale divisor (higher = smaller graph)")
	rounds := flag.Int("rounds", 12, "federated rounds per repetition")
	reps := flag.Int("reps", 3, "repetitions per arm (fastest wins, for noise robustness)")
	maxOverhead := flag.Float64("max-overhead-pct", 2.0, "fail if enabled tracing costs more than this")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchobs:", err)
		os.Exit(1)
	}

	// Interleave the arms so both see the same thermal and scheduling
	// conditions; keep each arm's fastest repetition (wall-clock minima are
	// far more noise-robust than means for a fixed workload).
	best := map[bool]time.Duration{}
	arms := map[bool]arm{}
	for rep := 0; rep < *reps; rep++ {
		for _, traced := range []bool{false, true} {
			elapsed, a, err := measure(traced, *divisor, *rounds)
			if err != nil {
				fail(err)
			}
			if cur, ok := best[traced]; !ok || elapsed < cur {
				best[traced] = elapsed
				arms[traced] = a
			}
		}
	}

	overhead := 100 * (float64(best[true])/float64(best[false]) - 1)
	r := report{
		Benchmark:      "fedomd_obs_overhead",
		Dataset:        "cora",
		Divisor:        *divisor,
		Rounds:         *rounds,
		Reps:           *reps,
		Disabled:       arms[false],
		Enabled:        arms[true],
		OverheadPct:    overhead,
		MaxOverheadPct: *maxOverhead,
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("benchobs: disabled %.2fms/round, enabled %.2fms/round (%d spans, %d events), overhead %+.2f%% -> %s\n",
		float64(arms[false].NsPerRound)/1e6, float64(arms[true].NsPerRound)/1e6,
		arms[true].Spans, arms[true].Events, overhead, *out)
	if overhead > *maxOverhead {
		fail(fmt.Errorf("tracing overhead %.2f%% exceeds the %.2f%% bound", overhead, *maxOverhead))
	}
}
