// Command fedomd trains one federated configuration and reports the
// per-round trajectory and the final accuracy.
//
// Usage:
//
//	fedomd -dataset cora -model FedOMD -parties 3 -rounds 100
//	fedomd -dataset computer -model FedGCN -parties 5 -divisor 8
//
// Observability:
//
//	fedomd -report                  # per-phase timing table + comms totals
//	fedomd -trace out.jsonl         # distributed trace: spans + events, JSONL
//	fedomd -debug-addr :6060        # live pprof + expvar + /metrics (Prometheus)
//	fedomd -dash-addr :8080         # live run dashboard (SSE) + /metrics
//
// Robustness:
//
//	fedomd -policy drop-round -client-timeout 30s     # tolerate party failures
//	fedomd -checkpoint run.ckpt -checkpoint-every 10  # snapshot the server
//	fedomd -resume run.ckpt                           # restart a killed run
//	fedomd -chaos -chaos-crash-frac 0.2 -policy drop-round  # fault-injection soak
//
// Communication:
//
//	fedomd -codec delta                 # lossless delta compression
//	fedomd -codec q8 -report            # 8-bit quantization + error feedback
//	fedomd -codec q8 -topk 0.1          # ... plus top-10% sparsification
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"os/signal"
	"sort"
	"time"

	"fedomd"
)

// servers collects every listener the process opens so one place shuts them
// all down gracefully — at normal exit and on SIGINT.
var servers []*fedomd.HTTPServer

func shutdownServers() {
	for _, s := range servers {
		if err := s.ShutdownTimeout(3 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "fedomd: server shutdown:", err)
		}
	}
}

func main() {
	ds := flag.String("dataset", "cora", "dataset preset: cora, citeseer, computer, photo, coauthor-cs")
	divisor := flag.Int("divisor", 8, "dataset shrink divisor (1 = paper scale)")
	model := flag.String("model", fedomd.FedOMD, "model to train (see -list)")
	parties := flag.Int("parties", 3, "number of federated parties M")
	resolution := flag.Float64("resolution", 0, "Louvain resolution (0 = paper default per dataset)")
	rounds := flag.Int("rounds", 100, "communication rounds")
	patience := flag.Int("patience", 25, "early-stopping patience (0 = off)")
	seed := flag.Int64("seed", 1, "random seed")
	hidden := flag.Int("hidden", 64, "hidden width (FedOMD)")
	layers := flag.Int("layers", 2, "hidden layers (FedOMD)")
	alpha := flag.Float64("alpha", 0.0005, "orthogonality loss weight (FedOMD)")
	beta := flag.Float64("beta", 10, "CMD loss weight (FedOMD)")
	dpEps := flag.Float64("dp-epsilon", 0, "if > 0, apply (ε, δ)-DP to FedOMD statistic uploads")
	dpDelta := flag.Float64("dp-delta", 1e-5, "DP δ (with -dp-epsilon)")
	dpClip := flag.Float64("dp-clip", 1, "DP L2 clip bound (with -dp-epsilon)")
	policy := flag.String("policy", "failfast", "failure policy: failfast, drop-round, or quarantine")
	clientTimeout := flag.Duration("client-timeout", 0, "per-call client timeout (0 = unbounded)")
	minClients := flag.Int("min-clients", 1, "per-round survivor quorum")
	skipQuorum := flag.Bool("skip-on-quorum-loss", false, "skip a round losing quorum instead of aborting")
	maxStrikes := flag.Int("max-strikes", 3, "consecutive failed rounds before quarantine benches a party")
	cooldown := flag.Int("cooldown", 1, "base quarantine bench duration in rounds (doubles per re-bench)")
	checkpoint := flag.String("checkpoint", "", "snapshot the server state to this file during the run")
	checkpointEvery := flag.Int("checkpoint-every", 10, "rounds between checkpoints (with -checkpoint)")
	resume := flag.String("resume", "", "resume from a checkpoint file written by -checkpoint")
	chaosOn := flag.Bool("chaos", false, "wrap every party in a deterministic fault injector (FedOMD in-process runs)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault-injection seed (with -chaos)")
	chaosErrRate := flag.Float64("chaos-err-rate", 0, "per-call transient failure probability (with -chaos)")
	chaosCrashFrac := flag.Float64("chaos-crash-frac", 0, "fraction of parties crashing permanently (with -chaos)")
	chaosCrashRound := flag.Int("chaos-crash-round", 3, "round the chosen parties crash at (with -chaos)")
	chaosNaNRate := flag.Float64("chaos-nan-rate", 0, "per-upload NaN-poisoning probability (with -chaos)")
	chaosLatency := flag.Duration("chaos-latency", 0, "injected per-call latency (with -chaos)")
	chaosSlowFrac := flag.Float64("chaos-slow-frac", 0, "fraction of parties degraded to sustained stragglers (with -chaos)")
	chaosSlowLatency := flag.Duration("chaos-slow-latency", 0, "per-call latency at the sustained-slow parties (with -chaos-slow-frac)")
	aggregation := flag.String("aggregation", "", "round topology: sync (barriered, default) or async (buffered no-barrier)")
	bufferK := flag.Int("buffer-k", 0, "async buffer threshold K (0 = half the fleet, rounded up)")
	maxStaleness := flag.Int("max-staleness", 0, "async staleness eviction bound in rounds (0 = 8)")
	stalenessAlpha := flag.Float64("staleness-alpha", 0, "async staleness discount exponent (0 = 1)")
	bufferTimeout := flag.Duration("buffer-timeout", 0, "async per-round collect deadline (0 = wait for K or exhaustion)")
	codecName := flag.String("codec", "", "parameter-payload codec: raw (default), delta (lossless), float32, quant, q8, q4")
	quantBits := flag.Int("quant-bits", 0, "quantization width with -codec quant (8 or 4; 0 = 8)")
	topK := flag.Float64("topk", 0, "keep only this fraction of delta entries per tensor (0 = off; needs a non-raw -codec)")
	list := flag.Bool("list", false, "list models and datasets, then exit")
	report := flag.Bool("report", false, "print a per-phase timing and comms report after the run")
	trace := flag.String("trace", "", "write machine-readable JSONL telemetry events and trace spans to this file")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof, expvar and /metrics on this address (e.g. :6060) for live profiling")
	dashAddr := flag.String("dash-addr", "", "serve the live run dashboard and /metrics on this address (e.g. :8080)")
	flag.Parse()

	if *list {
		fmt.Println("models: ", fedomd.Models())
		fmt.Println("datasets:", fedomd.Datasets())
		return
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "fedomd:", err)
		os.Exit(1)
	}

	// Telemetry sinks: an in-memory aggregator for -report, -debug-addr and
	// -dash-addr (/metrics renders from it), a JSONL writer for -trace. With
	// none requested the runtime sees the zero-cost no-op recorder.
	var sinks []fedomd.Recorder
	var agg *fedomd.TelemetryAggregator
	if *report || *debugAddr != "" || *dashAddr != "" {
		agg = fedomd.NewTelemetryAggregator()
		sinks = append(sinks, agg)
	}
	var traceFile *fedomd.TraceWriter
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fail(err)
		}
		traceFile = fedomd.NewTraceWriter(f)
		sinks = append(sinks, traceFile)
	}
	recorder := fedomd.MultiRecorder(sinks...)

	// The observability plane: build info for exposition, a Tracer over the
	// JSONL stream, the health rule engine, and (optionally) the dashboard.
	codecLabel := *codecName
	if codecLabel == "" {
		codecLabel = "raw"
	}
	build := fedomd.CollectBuildInfo(codecLabel, *policy)
	tracer := fedomd.NewTracer(traceFile) // nil (inert) without -trace
	var health *fedomd.Health
	observers := []fedomd.RoundObserver{}
	if *report || *trace != "" || *debugAddr != "" || *dashAddr != "" {
		health = fedomd.NewHealthMonitor(fedomd.HealthConfig{}, tracer, recorder)
		observers = append(observers, health)
	}
	var dash *fedomd.Dashboard
	if *dashAddr != "" {
		// Health first: the dashboard attributes freshly raised events to
		// the round it is fed, so it must observe after the rule engine.
		dash = fedomd.NewDashboard(health)
		observers = append(observers, dash)
		mux := http.NewServeMux()
		mux.Handle("/", dash.Handler())
		mux.Handle("/metrics", fedomd.MetricsHandler(agg, &build))
		srv, err := fedomd.StartHTTPServer(*dashAddr, mux)
		if err != nil {
			fail(fmt.Errorf("dashboard server: %w", err))
		}
		servers = append(servers, srv)
		fmt.Printf("dashboard on http://%s/ (/metrics for Prometheus)\n", srv.Addr())
	}

	runID := fedomd.NewRunID()
	if traceFile != nil {
		traceFile.WriteHeader(runID, map[string]string{
			"module":  build.Module,
			"version": build.Version,
			"go":      build.GoVersion,
			"model":   *model,
			"dataset": *ds,
			"codec":   codecLabel,
			"policy":  *policy,
		})
	}

	if *debugAddr != "" {
		// expvar's import (via the facade) registers /debug/vars and the
		// pprof import /debug/pprof on the default mux; publish the live
		// telemetry counters and build info there, add /metrics, and serve.
		fedomd.PublishTelemetryExpvar(agg)
		build.PublishExpvar()
		http.Handle("/metrics", fedomd.MetricsHandler(agg, &build))
		srv, err := fedomd.StartHTTPServer(*debugAddr, http.DefaultServeMux)
		if err != nil {
			fail(fmt.Errorf("debug server: %w", err))
		}
		servers = append(servers, srv)
		fmt.Printf("debug server on %s (/debug/pprof, /debug/vars, /metrics)\n", srv.Addr())
	}

	if len(servers) > 0 {
		// Drain both listeners at exit, and on SIGINT before dying, so
		// in-flight scrapes finish and the ports release immediately.
		defer shutdownServers()
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt)
		go func() {
			<-sigc
			shutdownServers()
			os.Exit(130)
		}()
	}

	g, err := fedomd.GenerateDataset(*ds, *divisor, *seed)
	if err != nil {
		fail(err)
	}
	fmt.Printf("dataset %s: %s\n", *ds, g.Summary())

	res := *resolution
	if res == 0 {
		res = 1.0
		if *ds == "computer" || *ds == "photo" {
			res = 20
		}
	}
	partiesList, err := fedomd.Partition(g, *parties, res, *seed+1)
	if err != nil {
		fail(err)
	}
	fmt.Printf("partitioned into %d parties (non-iid score %.3f)\n",
		len(partiesList), fedomd.NonIIDScore(partiesList, g.NumClasses))

	failPolicy, err := fedomd.ParseFailurePolicy(*policy)
	if err != nil {
		fail(err)
	}
	opts := fedomd.RunOptions{
		Rounds:          *rounds,
		Patience:        *patience,
		Recorder:        recorder,
		Policy:          failPolicy,
		ClientTimeout:   *clientTimeout,
		MinClients:      *minClients,
		MaxStrikes:      *maxStrikes,
		CooldownRounds:  *cooldown,
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *checkpointEvery,
		ResumePath:      *resume,
		Codec:           *codecName,
		QuantBits:       *quantBits,
		TopK:            *topK,
		Aggregation:     *aggregation,
		BufferK:         *bufferK,
		MaxStaleness:    *maxStaleness,
		StalenessAlpha:  *stalenessAlpha,
		BufferTimeout:   *bufferTimeout,
		Tracer:          tracer,
		RunID:           runID,
		// Dataset identity rides into the checkpoint header so a serving
		// process can regenerate the graph the snapshot's node IDs index.
		Spec: &fedomd.ModelSpec{Dataset: *ds, Divisor: *divisor, DataSeed: *seed},
	}
	if len(observers) > 0 {
		opts.Observer = fedomd.MultiObserver(observers...)
	}
	if *codecName != "" {
		fmt.Printf("codec: %s\n", *codecName)
	}
	if *skipQuorum {
		opts.QuorumPolicy = fedomd.QuorumSkip
	}
	if *aggregation != "" {
		fmt.Printf("aggregation: %s\n", *aggregation)
	}
	if *chaosOn {
		opts.Chaos = &fedomd.ChaosOptions{
			Seed:          *chaosSeed,
			ErrRate:       *chaosErrRate,
			CrashFraction: *chaosCrashFrac,
			CrashAtRound:  *chaosCrashRound,
			NaNRate:       *chaosNaNRate,
			Latency:       *chaosLatency,
			SlowFraction:  *chaosSlowFrac,
			SlowLatency:   *chaosSlowLatency,
		}
		fmt.Printf("chaos on: seed=%d err-rate=%g crash=%g%%@round%d nan-rate=%g latency=%v\n",
			*chaosSeed, *chaosErrRate, 100**chaosCrashFrac, *chaosCrashRound, *chaosNaNRate, *chaosLatency)
	}
	var result *fedomd.Result
	if *model == fedomd.FedOMD {
		cfg := fedomd.DefaultConfig()
		cfg.Hidden = *hidden
		cfg.HiddenLayers = *layers
		cfg.Alpha = *alpha
		cfg.Beta = *beta
		if *dpEps > 0 {
			dp := fedomd.DPConfig{Epsilon: *dpEps, Delta: *dpDelta, Clip: *dpClip}
			fmt.Printf("differential privacy on statistic uploads: ε=%g δ=%g clip=%g (σ=%.3f)\n",
				dp.Epsilon, dp.Delta, dp.Clip, dp.NoiseSigma())
			result, err = fedomd.TrainFedOMDPrivate(partiesList, cfg, dp, opts, *seed+2)
		} else {
			result, err = fedomd.TrainFedOMD(partiesList, cfg, opts, *seed+2)
		}
	} else {
		result, err = fedomd.TrainBaseline(*model, partiesList, opts, *seed+2)
	}
	if err != nil {
		fail(err)
	}

	step := len(result.History) / 10
	if step == 0 {
		step = 1
	}
	fmt.Println("\nround  trainLoss  valAcc  testAcc")
	for i := 0; i < len(result.History); i += step {
		h := result.History[i]
		fmt.Printf("%5d  %9.4f  %6.3f  %7.3f\n", h.Round, h.TrainLoss, h.ValAcc, h.TestAcc)
	}
	fmt.Printf("\nbest val %.4f at round %d; test@best %.4f\n",
		result.BestValAcc, result.BestRound, result.TestAtBestVal)
	fmt.Printf("traffic: %d bytes up, %d bytes down over %d rounds\n",
		result.TotalBytesUp, result.TotalBytesDown, len(result.History))

	if len(result.ClientFailures) > 0 {
		degraded := 0
		for _, h := range result.History {
			if h.Degraded {
				degraded++
			}
		}
		names := make([]string, 0, len(result.ClientFailures))
		for name := range result.ClientFailures {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("\nfailures tolerated (%d degraded rounds):\n", degraded)
		for _, name := range names {
			fmt.Printf("  %-12s %d\n", name, result.ClientFailures[name])
		}
	}

	if health != nil {
		if events := health.Events(); len(events) > 0 {
			fmt.Printf("\nhealth events (%d):\n", len(events))
			for _, e := range events {
				fmt.Printf("  %s\n", e)
			}
		}
	}

	if tracer != nil {
		spans, events := tracer.Counts()
		fmt.Printf("\nrun %s traced: %d spans, %d events\n", result.RunID, spans, events)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("trace written to %s\n", *trace)
	}
	if *report {
		fmt.Println("\ntelemetry report")
		fmt.Println(build.String())
		agg.Report(os.Stdout)
	}
}
