// Command benchscale measures how round throughput scales with fleet size
// and straggler pressure under the two aggregation topologies. It drives
// fed.Run directly over synthetic sleep-calibrated clients (no dataset, no
// model — the sleep IS the workload, so the numbers isolate the coordinator's
// round machinery) and sweeps party count × straggler rate × {sync, async},
// reporting rounds/sec and p50/p99 round latency per arm. `make bench-scale`
// runs it to produce BENCH_scale.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"fedomd/internal/fed"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
)

// synthClient is a fed.Client whose local training is a fixed sleep plus a
// tiny parameter nudge: enough work that folds move real numbers, cheap
// enough that 64-party arms finish in seconds.
type synthClient struct {
	name   string
	sleep  time.Duration
	params *nn.Params
	bias   float64
}

func newSynth(name string, sleep time.Duration, bias float64) *synthClient {
	p := nn.NewParams()
	p.Add("w", mat.New(1, 64))
	return &synthClient{name: name, sleep: sleep, params: p, bias: bias}
}

func (s *synthClient) Name() string       { return s.name }
func (s *synthClient) NumSamples() int    { return 100 }
func (s *synthClient) Params() *nn.Params { return s.params }
func (s *synthClient) SetParams(g *nn.Params) error {
	return s.params.CopyFrom(g)
}
func (s *synthClient) TrainLocal(int) (float64, error) {
	time.Sleep(s.sleep)
	w := s.params.Get("w")
	for j := 0; j < w.Cols(); j++ {
		w.Set(0, j, 0.5*w.At(0, j)+s.bias)
	}
	return math.Abs(s.bias - w.At(0, 0)), nil
}
func (s *synthClient) EvalVal() (int, int)  { return 1, 2 }
func (s *synthClient) EvalTest() (int, int) { return 1, 2 }

// armResult is one sweep point's measurement.
type armResult struct {
	Parties       int     `json:"parties"`
	StragglerRate float64 `json:"straggler_rate"`
	Mode          string  `json:"mode"`
	Rounds        int     `json:"rounds"`
	// BufferK is the async fold threshold (0 for sync arms).
	BufferK int `json:"buffer_k,omitempty"`
	// RoundsPerSec is the headline scaling number; the latency quantiles
	// come from per-round Start/End stamps.
	RoundsPerSec float64 `json:"rounds_per_sec"`
	P50LatencyMs float64 `json:"p50_round_latency_ms"`
	P99LatencyMs float64 `json:"p99_round_latency_ms"`
	// SpeedupVsSync is RoundsPerSec over the sync arm with the same parties
	// and straggler rate (1 for the sync arms themselves).
	SpeedupVsSync float64 `json:"speedup_vs_sync"`
}

type report struct {
	Benchmark     string        `json:"benchmark"`
	Rounds        int           `json:"rounds"`
	BaseTrainMs   float64       `json:"base_train_ms"`
	StragglerMs   float64       `json:"straggler_train_ms"`
	EvalEvery     int           `json:"eval_every"`
	BufferTimeout string        `json:"buffer_timeout"`
	Arms          []armResult   `json:"arms"`
	PartiesSwept  []int         `json:"parties_swept"`
	RatesSwept    []float64     `json:"straggler_rates_swept"`
	GeneratedBy   string        `json:"generated_by"`
	WallClock     time.Duration `json:"-"`
}

const (
	baseTrain     = 2 * time.Millisecond
	stragglerTime = 40 * time.Millisecond
	bufferWait    = 60 * time.Millisecond
)

// fleet builds m synthetic parties, the first ⌈rate·m⌉ of them sustained
// stragglers (a deterministic worst case: the same parties are always slow).
func fleet(m int, rate float64) []fed.Client {
	slow := int(math.Ceil(rate * float64(m)))
	clients := make([]fed.Client, m)
	for i := range clients {
		sleep := baseTrain
		if i < slow {
			sleep = stragglerTime
		}
		clients[i] = newSynth(fmt.Sprintf("p%03d", i), sleep, float64(i%7))
	}
	return clients
}

func runArm(m int, rate float64, mode fed.AggregationMode, rounds int) (armResult, error) {
	cfg := fed.Config{
		Rounds:      rounds,
		EvalEvery:   rounds, // one mid-run eval; scoring is not the workload
		Aggregation: mode,
	}
	if mode == fed.AggAsync {
		cfg.BufferK = (m + 1) / 2
		cfg.MaxStaleness = 50 // measure throughput, not eviction policy
		cfg.BufferTimeout = bufferWait
	}
	start := time.Now()
	res, err := fed.Run(cfg, fleet(m, rate))
	if err != nil {
		return armResult{}, err
	}
	elapsed := time.Since(start).Seconds()

	lat := make([]float64, 0, len(res.History))
	for _, h := range res.History {
		lat = append(lat, h.End.Sub(h.Start).Seconds()*1e3)
	}
	sort.Float64s(lat)
	quantile := func(q float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		idx := int(q * float64(len(lat)))
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return lat[idx]
	}
	arm := armResult{
		Parties:       m,
		StragglerRate: rate,
		Mode:          mode.String(),
		Rounds:        len(res.History),
		RoundsPerSec:  float64(len(res.History)) / elapsed,
		P50LatencyMs:  quantile(0.50),
		P99LatencyMs:  quantile(0.99),
	}
	if mode == fed.AggAsync {
		arm.BufferK = cfg.BufferK
	}
	return arm, nil
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	rounds := flag.Int("rounds", 12, "rounds per arm")
	flag.Parse()

	parties := []int{4, 16, 64}
	rates := []float64{0, 0.25}
	rep := report{
		Benchmark:     "scale",
		Rounds:        *rounds,
		BaseTrainMs:   float64(baseTrain) / 1e6,
		StragglerMs:   float64(stragglerTime) / 1e6,
		EvalEvery:     *rounds,
		BufferTimeout: bufferWait.String(),
		PartiesSwept:  parties,
		RatesSwept:    rates,
		GeneratedBy:   "cmd/benchscale",
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchscale:", err)
		os.Exit(1)
	}
	for _, m := range parties {
		for _, rate := range rates {
			syncArm, err := runArm(m, rate, fed.AggSync, *rounds)
			if err != nil {
				fail(err)
			}
			syncArm.SpeedupVsSync = 1
			asyncArm, err := runArm(m, rate, fed.AggAsync, *rounds)
			if err != nil {
				fail(err)
			}
			if syncArm.RoundsPerSec > 0 {
				asyncArm.SpeedupVsSync = asyncArm.RoundsPerSec / syncArm.RoundsPerSec
			}
			rep.Arms = append(rep.Arms, syncArm, asyncArm)
			fmt.Printf("parties=%-3d stragglers=%.0f%%  sync %6.1f r/s (p99 %6.1fms)   async %6.1f r/s (p99 %6.1fms)  speedup %.2fx\n",
				m, 100*rate, syncArm.RoundsPerSec, syncArm.P99LatencyMs,
				asyncArm.RoundsPerSec, asyncArm.P99LatencyMs, asyncArm.SpeedupVsSync)
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("report written to %s\n", *out)
}
