// Command fedomdvet runs the project-specific static analyzers over the
// module: the cfg-dataflow checks poolpair, tapelease, spanend, shardalias
// and residualstate, and the syntactic checks intoalias, telemetrykey and
// parforcapture (see internal/analysis and DESIGN.md §8, §13). Output follows
// go vet's file:line:col: message convention.
//
// Usage:
//
//	fedomdvet [-list] [-only a,b] [-json] [-timing] [packages]
//
// Package patterns are directories relative to the working directory;
// "./..." (the default) walks the whole tree. -only restricts the run to a
// comma-separated subset of analyzers (unknown names are a usage error).
// -json emits one JSON object per diagnostic instead of vet lines, for
// editor and CI integration. -timing prints per-analyzer cumulative wall
// time to stderr so slow checks are visible. Exit status is 0 when clean,
// 1 when any analyzer reported a diagnostic, 2 when a package failed to
// parse or type-check (or on a usage error).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"fedomd/internal/analysis"
)

func main() { os.Exit(run(os.Stdout, os.Stderr, flag.CommandLine, os.Args[1:])) }

// jsonDiag is the -json wire shape: flat, stable field names, one object per
// line (JSONL).
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(stdout, stderr *os.File, fs *flag.FlagSet, args []string) int {
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON objects, one per line")
	timing := fs.Bool("timing", false, "print per-analyzer wall time to stderr")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: fedomdvet [-list] [-only a,b] [-json] [-timing] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.All()
	if *only != "" {
		var names []string
		for _, n := range strings.Split(*only, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		var unknown []string
		analyzers, unknown = analysis.ByName(names)
		if len(unknown) > 0 {
			fmt.Fprintf(stderr, "fedomdvet: unknown analyzer(s): %s (see -list)\n", strings.Join(unknown, ", "))
			return 2
		}
		if len(analyzers) == 0 {
			fmt.Fprintln(stderr, "fedomdvet: -only selected no analyzers")
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "fedomdvet:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "fedomdvet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "fedomdvet:", err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fedomdvet:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "fedomdvet: no packages matched")
		return 2
	}

	enc := json.NewEncoder(stdout)
	totals := map[string]time.Duration{}
	loadFailed, found := false, false
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			loadFailed = true
			continue
		}
		diags, timings := analysis.RunTimed(pkg, analyzers)
		for name, d := range timings {
			totals[name] += d
		}
		for _, d := range diags {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			if *asJSON {
				if err := enc.Encode(jsonDiag{
					File:     d.Pos.Filename,
					Line:     d.Pos.Line,
					Col:      d.Pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				}); err != nil {
					fmt.Fprintln(stderr, "fedomdvet:", err)
					return 2
				}
			} else {
				fmt.Fprintln(stdout, d)
			}
			found = true
		}
	}
	if *timing {
		names := make([]string, 0, len(totals))
		for name := range totals {
			names = append(names, name)
		}
		// Slowest first: the line exists to answer "where does lint time go".
		sort.Slice(names, func(i, j int) bool {
			if totals[names[i]] != totals[names[j]] {
				return totals[names[i]] > totals[names[j]]
			}
			return names[i] < names[j]
		})
		var parts []string
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s %s", name, totals[name].Round(10*time.Microsecond)))
		}
		fmt.Fprintf(stderr, "fedomdvet timing: %s\n", strings.Join(parts, ", "))
	}
	switch {
	case loadFailed:
		return 2
	case found:
		return 1
	}
	return 0
}
