// Command fedomdvet runs the project-specific static analyzers over the
// module: poolpair, tapelease, intoalias and telemetrykey (see
// internal/analysis and DESIGN.md §8). Output follows go vet's
// file:line:col: message convention.
//
// Usage:
//
//	fedomdvet [packages]
//
// Package patterns are directories relative to the working directory;
// "./..." (the default) walks the whole tree. Exit status is 0 when clean,
// 1 when any analyzer reported a diagnostic, 2 when a package failed to
// parse or type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fedomd/internal/analysis"
)

func main() { os.Exit(run(os.Stdout, os.Stderr, flag.CommandLine, os.Args[1:])) }

func run(stdout, stderr *os.File, fs *flag.FlagSet, args []string) int {
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: fedomdvet [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "fedomdvet:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "fedomdvet:", err)
		return 2
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "fedomdvet:", err)
		return 2
	}
	dirs, err := analysis.ExpandPatterns(cwd, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "fedomdvet:", err)
		return 2
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "fedomdvet: no packages matched")
		return 2
	}

	loadFailed, found := false, false
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			loadFailed = true
			continue
		}
		for _, d := range analysis.Run(pkg, analysis.All()) {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
				d.Pos.Filename = rel
			}
			fmt.Fprintln(stdout, d)
			found = true
		}
	}
	switch {
	case loadFailed:
		return 2
	case found:
		return 1
	}
	return 0
}
