// Command datagen generates a synthetic dataset, reports its Table 2
// statistics, and (optionally) the per-party label distribution of a Louvain
// cut — the raw data behind paper Figure 4.
//
// Usage:
//
//	datagen -dataset cora -divisor 1
//	datagen -dataset photo -parties 5
package main

import (
	"flag"
	"fmt"
	"os"

	"fedomd"
)

func main() {
	ds := flag.String("dataset", "cora", "dataset preset")
	divisor := flag.Int("divisor", 1, "shrink divisor (1 = paper scale)")
	parties := flag.Int("parties", 0, "if > 0, also show the Louvain party label distribution")
	resolution := flag.Float64("resolution", 1.0, "Louvain resolution")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "", "write the generated graph (with masks) to this JSON file")
	in := flag.String("in", "", "load the graph from this JSON file instead of generating")
	flag.Parse()

	var (
		g   *fedomd.Graph
		err error
	)
	if *in != "" {
		g, err = fedomd.LoadGraph(*in)
	} else {
		g, err = fedomd.GenerateDataset(*ds, *divisor, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if *out != "" {
		if err := fedomd.SaveGraph(g, *out); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}
	fmt.Printf("%s: %s\n", *ds, g.Summary())
	fmt.Printf("split: %d train / %d val / %d test\n",
		len(g.TrainMask), len(g.ValMask), len(g.TestMask))
	fmt.Printf("label histogram: %v\n", g.LabelHistogram())

	if *parties > 0 {
		ps, err := fedomd.Partition(g, *parties, *resolution, *seed+1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("\nLouvain cut into %d parties (resolution %g, non-iid score %.3f):\n",
			*parties, *resolution, fedomd.NonIIDScore(ps, g.NumClasses))
		for i, p := range ps {
			fmt.Printf("  party %d: %4d nodes, %5d edges, labels %v\n",
				i, p.Graph.NumNodes(), p.Graph.NumEdges(), p.Graph.LabelHistogram())
		}
	}
}
