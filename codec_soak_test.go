package fedomd

// End-to-end codec soaks over the public facade, mirroring the chaos soak's
// scale (cora at 1/12, five Louvain parties, ten rounds): the Delta tier must
// be provably invisible — bit-identical parameters and accuracy history — and
// the 8-bit quantized tier must buy its ≥4× upload reduction for at most one
// test-set quantum of accuracy. At this scale the test split holds ~43 nodes,
// so one node flipping is ~0.023 of accuracy — the drift limit is 0.03, just
// above that quantum. Both runs are fully deterministic, so these are
// regression tests, not statistical ones.

import (
	"math"
	"testing"

	"fedomd/internal/codec"
)

func soakParties(t *testing.T) []Party {
	t.Helper()
	g, err := GenerateDataset("cora", 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := Partition(g, 5, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return parties
}

func TestCodecDeltaParityEndToEnd(t *testing.T) {
	parties := soakParties(t)
	cfg := DefaultConfig()
	cfg.Hidden = 16
	const rounds = 10

	raw, err := TrainFedOMD(parties, cfg, RunOptions{Rounds: rounds}, 3)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := TrainFedOMD(parties, cfg, RunOptions{Rounds: rounds, Codec: "delta"}, 3)
	if err != nil {
		t.Fatal(err)
	}

	if len(raw.History) != len(delta.History) {
		t.Fatalf("history length %d vs %d", len(raw.History), len(delta.History))
	}
	for i := range raw.History {
		r, d := raw.History[i], delta.History[i]
		if r.TrainLoss != d.TrainLoss || r.ValAcc != d.ValAcc || r.TestAcc != d.TestAcc {
			t.Fatalf("round %d diverged: raw %+v delta %+v", i, r, d)
		}
	}
	if raw.BestValAcc != delta.BestValAcc || raw.TestAtBestVal != delta.TestAtBestVal {
		t.Fatal("delta codec changed the accuracy outcome")
	}
	names := raw.FinalParams.Names()
	if len(names) != len(delta.FinalParams.Names()) {
		t.Fatal("delta codec changed the parameter set")
	}
	for _, name := range names {
		if !raw.FinalParams.Get(name).Equal(delta.FinalParams.Get(name)) {
			t.Fatalf("tensor %s is not bit-identical under the delta codec", name)
		}
	}
	if delta.TotalBytesUp >= raw.TotalBytesUp {
		t.Fatalf("delta codec did not shrink uploads: %d vs %d", delta.TotalBytesUp, raw.TotalBytesUp)
	}
}

func TestCodecQuantSoakAccuracyAndReduction(t *testing.T) {
	parties := soakParties(t)
	cfg := DefaultConfig()
	cfg.Hidden = 16
	const rounds = 10

	raw, err := TrainFedOMD(parties, cfg, RunOptions{Rounds: rounds}, 3)
	if err != nil {
		t.Fatal(err)
	}
	agg := NewTelemetryAggregator()
	q8, err := TrainFedOMD(parties, cfg, RunOptions{Rounds: rounds, Codec: "q8", Recorder: agg}, 3)
	if err != nil {
		t.Fatal(err)
	}

	if len(q8.History) != rounds {
		t.Fatalf("quantized run completed %d of %d rounds", len(q8.History), rounds)
	}
	if drift := math.Abs(q8.TestAtBestVal - raw.TestAtBestVal); drift > 0.03 {
		t.Fatalf("q8 test@best drifted %.4f from raw (limit 0.03)", drift)
	}
	if drift := math.Abs(q8.FinalTestAcc - raw.FinalTestAcc); drift > 0.03 {
		t.Fatalf("q8 final test accuracy drifted %.4f from raw (limit 0.03)", drift)
	}
	rawB, encB := agg.Counter(codec.MetricBytesRaw), agg.Counter(codec.MetricBytesEncoded)
	if encB == 0 {
		t.Fatal("upload byte counters missing")
	}
	if ratio := float64(rawB) / float64(encB); ratio < 4 {
		t.Fatalf("q8 upload reduction %.2fx, want >= 4x (%d raw, %d encoded)", ratio, rawB, encB)
	}
}

func TestRunOptionsCodecValidation(t *testing.T) {
	parties := soakParties(t)
	cfg := DefaultConfig()
	cfg.Hidden = 16
	if _, err := TrainFedOMD(parties, cfg, RunOptions{Rounds: 1, Codec: "zstd"}, 3); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := TrainFedOMD(parties, cfg, RunOptions{Rounds: 1, Codec: "delta", QuantBits: 8}, 3); err == nil {
		t.Fatal("quant-bits accepted without the quant codec")
	}
	if _, err := TrainBaseline(FedGCN, parties, RunOptions{Rounds: 1, Codec: "nope"}, 3); err == nil {
		t.Fatal("unknown codec accepted by TrainBaseline")
	}
}
