package fedomd

import (
	"strings"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := GenerateDataset("cora", 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.TrainMask) == 0 || len(g.TestMask) == 0 {
		t.Fatal("split not applied")
	}
	parties, err := Partition(g, 3, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if NonIIDScore(parties, g.NumClasses) <= 0 {
		t.Fatal("Louvain partition should be non-iid")
	}
	cfg := DefaultConfig()
	cfg.Hidden = 16
	res, err := TrainFedOMD(parties, cfg, RunOptions{Rounds: 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 10 {
		t.Fatalf("history %d rounds", len(res.History))
	}
	if res.TestAtBestVal <= 0 {
		t.Fatal("no accuracy recorded")
	}
}

func TestPublicBaselines(t *testing.T) {
	g, err := GenerateDataset("citeseer", 24, 4)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := Partition(g, 2, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{FedGCN, LocGCN} {
		res, err := TrainBaseline(model, parties, RunOptions{Rounds: 8}, 6)
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if res.TestAtBestVal < 0 || res.TestAtBestVal > 1 {
			t.Fatalf("%s: accuracy out of range", model)
		}
	}
	if _, err := TrainBaseline("nope", parties, RunOptions{Rounds: 1}, 6); err == nil {
		t.Fatal("unknown baseline accepted")
	}
}

func TestModelsAndDatasets(t *testing.T) {
	if len(Models()) != 8 {
		t.Fatal("model registry incomplete")
	}
	if len(Datasets()) != 5 {
		t.Fatal("dataset registry incomplete")
	}
}

func TestNewExperimentsScales(t *testing.T) {
	for _, s := range []string{"quick", "paper", "smoke"} {
		if _, err := NewExperiments(s, 1); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	if _, err := NewExperiments("warp", 1); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestExperimentsFacadeRendersTable(t *testing.T) {
	exp, err := NewExperiments("smoke", 1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := exp.Table2(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cora") {
		t.Fatal("table 2 missing datasets")
	}
}

func TestGenerateCustom(t *testing.T) {
	cfg := DatasetConfig{Name: "mini", Nodes: 120, Edges: 300, Classes: 3, Features: 30,
		CommunitiesPerClass: 2, Homophily: 0.8, ActiveFeatures: 5, SignalRatio: 0.8}
	g, err := GenerateCustom(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 120 {
		t.Fatal("custom generation wrong size")
	}
}

func TestEmptyPartiesRejected(t *testing.T) {
	if _, err := TrainFedOMD(nil, DefaultConfig(), RunOptions{Rounds: 1}, 1); err == nil {
		t.Fatal("no parties accepted")
	}
}
