package fedomd

import (
	"path/filepath"
	"testing"
)

func TestSaveLoadGraphFacade(t *testing.T) {
	g, err := GenerateDataset("cora", 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cora.json")
	if err := SaveGraph(g, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatal("graph changed across save/load")
	}
	if len(got.TrainMask) != len(g.TrainMask) {
		t.Fatal("masks lost across save/load")
	}
}

func TestTrainFedOMDPrivate(t *testing.T) {
	g, err := GenerateDataset("cora", 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := Partition(g, 2, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Hidden = 16
	// Generous budget: training must still work end to end.
	res, err := TrainFedOMDPrivate(parties, cfg, DPConfig{Epsilon: 8, Delta: 1e-5, Clip: 5},
		RunOptions{Rounds: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 8 {
		t.Fatalf("history %d rounds", len(res.History))
	}
	// Invalid budget must be rejected.
	if _, err := TrainFedOMDPrivate(parties, cfg, DPConfig{}, RunOptions{Rounds: 1}, 4); err == nil {
		t.Fatal("invalid DP config accepted")
	}
}

func TestPrivateTrafficSameShape(t *testing.T) {
	// DP perturbs values, not shapes: traffic accounting must match the
	// non-private run exactly.
	g, err := GenerateDataset("cora", 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := Partition(g, 2, 1.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Hidden = 16
	plain, err := TrainFedOMD(parties, cfg, RunOptions{Rounds: 2, Sequential: true}, 7)
	if err != nil {
		t.Fatal(err)
	}
	private, err := TrainFedOMDPrivate(parties, cfg, DPConfig{Epsilon: 1, Delta: 1e-5, Clip: 1},
		RunOptions{Rounds: 2, Sequential: true}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalBytesUp != private.TotalBytesUp {
		t.Fatalf("traffic differs: %d vs %d", plain.TotalBytesUp, private.TotalBytesUp)
	}
}
