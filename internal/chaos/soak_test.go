package chaos_test

// The soak test lives in package chaos_test and drives the public fedomd
// facade end to end: a Louvain-partitioned cora federation where 20% of the
// parties crash permanently mid-run must, under the DropRound policy, still
// complete every round without degrading more than two accuracy points below
// the fault-free run. The bound is one-sided: at this scale the trajectories
// are noisy enough that the chaotic run sometimes lands above the baseline,
// which is not a fault-tolerance failure. Both runs are fully deterministic
// (fixed dataset, sampler, and chaos seeds), so this is a regression test,
// not a statistical one.

import (
	"testing"

	"fedomd"
)

func TestSoakDropRoundSurvivesCrashes(t *testing.T) {
	g, err := fedomd.GenerateDataset("cora", 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := fedomd.Partition(g, 5, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fedomd.DefaultConfig()
	cfg.Hidden = 16
	const rounds = 10

	baseline, err := fedomd.TrainFedOMD(parties, cfg, fedomd.RunOptions{Rounds: rounds}, 3)
	if err != nil {
		t.Fatal(err)
	}

	chaotic, err := fedomd.TrainFedOMD(parties, cfg, fedomd.RunOptions{
		Rounds: rounds,
		Policy: fedomd.DropRound,
		Chaos: &fedomd.ChaosOptions{
			Seed:          11,
			CrashFraction: 0.2,
			CrashAtRound:  3,
		},
	}, 3)
	if err != nil {
		t.Fatalf("chaotic run aborted: %v", err)
	}

	if len(chaotic.History) != rounds {
		t.Fatalf("chaotic run completed %d of %d rounds", len(chaotic.History), rounds)
	}
	if len(chaotic.ClientFailures) == 0 {
		t.Fatal("no faults were injected — the soak proves nothing")
	}
	degraded := 0
	for _, h := range chaotic.History {
		degraded += h.Dropped
	}
	if degraded == 0 {
		t.Fatal("crashed party was never dropped")
	}
	if loss := baseline.TestAtBestVal - chaotic.TestAtBestVal; loss > 0.02 {
		t.Fatalf("chaotic TestAtBestVal %v vs fault-free %v: degradation %v exceeds 0.02",
			chaotic.TestAtBestVal, baseline.TestAtBestVal, loss)
	}
}
