package chaos

import (
	"net"
	"testing"
	"time"

	"fedomd/internal/fed"
	"fedomd/internal/telemetry"
)

// TestRetryReconnectsThroughFlakyLinks drives a distributed round over links
// that sever on the coordinator's first write for the first two connections.
// With MaxRetries 3 and a Reconnect hook the run must complete, spending
// exactly two retries — one per severed link.
func TestRetryReconnectsThroughFlakyLinks(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fln := NewFlakyListener(ln, 2)
	addr := ln.Addr().String()

	// The party redials whenever its connection drops, like a real deployment
	// supervisor would, and exits cleanly on the coordinator's Shutdown.
	partyDone := make(chan error, 1)
	go func() {
		stub := newStub("p0")
		var last error
		for attempt := 0; attempt < 10; attempt++ {
			if last = fed.ServeClient(addr, stub); last == nil {
				break
			}
		}
		partyDone <- last
	}()

	agg := telemetry.NewAggregator()
	res, err := fed.RunDistributedOpts(fed.Config{Rounds: 2, Recorder: agg}, fln, 1, fed.TransportOptions{
		Recorder:     agg,
		MaxRetries:   3,
		RetryBackoff: 5 * time.Millisecond,
		Reconnect:    func(string) (net.Conn, error) { return fln.Accept() },
	})
	if err != nil {
		t.Fatalf("run failed despite retry budget: %v", err)
	}
	if len(res.History) != 2 {
		t.Fatalf("completed %d rounds want 2", len(res.History))
	}
	if got := agg.Counter(fed.MetricRPCRetries); got != 2 {
		t.Fatalf("retries = %d want exactly 2 (one per severed link)", got)
	}
	select {
	case perr := <-partyDone:
		if perr != nil {
			t.Fatalf("party never reached a clean shutdown: %v", perr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("party still running after the coordinator finished")
	}
}

// TestNoRetryWithoutReconnect pins the default behavior: a severed link with
// no Reconnect hook fails the call, and under FailFast the run.
func TestNoRetryWithoutReconnect(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fln := NewFlakyListener(ln, 1)
	addr := ln.Addr().String()
	go func() {
		stub := newStub("p0")
		for attempt := 0; attempt < 2; attempt++ {
			if err := fed.ServeClient(addr, stub); err == nil {
				return
			}
		}
	}()
	_, err = fed.RunDistributedOpts(fed.Config{Rounds: 1}, fln, 1, fed.TransportOptions{MaxRetries: 3})
	if err == nil {
		t.Fatal("severed link survived without a Reconnect hook")
	}
}
