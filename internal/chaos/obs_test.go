package chaos

import (
	"bytes"
	"strings"
	"testing"

	"fedomd/internal/fed"
	"fedomd/internal/obs"
	"fedomd/internal/telemetry"
)

// TestFaultsAnnotateTrace drives a fault-injected run with a tracer on the
// fleet config: every injected fault must surface as a "chaos/fault" event
// in the trace stream, parented inside the run's causal timeline, and the
// run itself must still complete under DropRound.
func TestFaultsAnnotateTrace(t *testing.T) {
	var buf bytes.Buffer
	jl := telemetry.NewJSONL(&buf)
	tr := obs.NewTracer(jl)

	clients := WrapFleet([]fed.Client{
		newStub("a"), newStub("b"), newStub("c"), newStub("d"),
	}, FleetConfig{Seed: 7, NaNRate: 0.25, ErrRate: 0.1, Tracer: tr})

	res, err := fed.Run(fed.Config{
		Rounds:     4,
		Sequential: true,
		Policy:     fed.DropRound,
		Tracer:     tr,
	}, clients)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ClientFailures) == 0 {
		t.Fatal("chaos at these rates should have produced failures")
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}

	stream := buf.String()
	if !strings.Contains(stream, `"name":"`+obs.MetricChaosFault+`"`) {
		t.Fatal("no chaos/fault events in the trace stream")
	}
	// The NaN-poison path must be annotated with its own fault kind — it
	// bypasses disturb, so it is easy to lose.
	if !strings.Contains(stream, `"kind":"nan_poison"`) {
		t.Fatal("NaN poisoning left no trace annotation")
	}
	// Fault events carry the party and operation they hit.
	var faultLines int
	for _, line := range strings.Split(stream, "\n") {
		if !strings.Contains(line, `"name":"`+obs.MetricChaosFault+`"`) {
			continue
		}
		faultLines++
		if !strings.Contains(line, `"party":`) || !strings.Contains(line, `"op":`) {
			t.Fatalf("fault event missing party/op attrs: %s", line)
		}
		if !strings.Contains(line, `"trace":`) {
			t.Fatalf("fault event not attached to a trace: %s", line)
		}
	}
	if faultLines == 0 {
		t.Fatal("no fault lines parsed")
	}
}

// TestWrapFleetThreadsTracer checks the tracer reaches every wrapped
// client's config — a per-client Wrap without the fleet path must behave
// identically.
func TestWrapFleetThreadsTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(telemetry.NewJSONL(&buf))
	fleet := WrapFleet([]fed.Client{newStub("a"), newStub("b")}, FleetConfig{Tracer: tr})
	for i, c := range fleet {
		inj, ok := c.(*Client)
		if !ok {
			t.Fatalf("client %d is %T, want *Client", i, c)
		}
		if inj.cfg.Tracer != tr {
			t.Fatalf("client %d did not receive the fleet tracer", i)
		}
	}
}
