package chaos

import (
	"math"
	"net"
	"reflect"
	"testing"
	"time"

	"fedomd/internal/fed"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
)

// stubClient is a minimal healthy fed.Client.
type stubClient struct {
	name   string
	params *nn.Params
}

func newStub(name string) *stubClient {
	p := nn.NewParams()
	p.Add("w", mat.New(1, 1))
	return &stubClient{name: name, params: p}
}

func (s *stubClient) Name() string                    { return s.name }
func (s *stubClient) NumSamples() int                 { return 1 }
func (s *stubClient) Params() *nn.Params              { return s.params }
func (s *stubClient) SetParams(g *nn.Params) error    { return s.params.CopyFrom(g) }
func (s *stubClient) TrainLocal(int) (float64, error) { return 0, nil }
func (s *stubClient) EvalVal() (int, int)             { return 1, 2 }
func (s *stubClient) EvalTest() (int, int)            { return 1, 2 }

// stubMomentAux adds both capability surfaces.
type stubMomentAux struct{ *stubClient }

func (s *stubMomentAux) LocalMeans() ([]*mat.Dense, int, error) {
	return []*mat.Dense{mat.New(1, 1)}, 1, nil
}
func (s *stubMomentAux) CentralAroundGlobal([]*mat.Dense) ([][]*mat.Dense, int, error) {
	return [][]*mat.Dense{{mat.New(1, 1)}}, 1, nil
}
func (s *stubMomentAux) SetGlobalStats([]*mat.Dense, [][]*mat.Dense) {}
func (s *stubMomentAux) UploadAux() *nn.Params                       { return s.params.Clone() }
func (s *stubMomentAux) DownloadAux(*nn.Params) error                { return nil }

func TestCrashClockCountsBroadcasts(t *testing.T) {
	g := newStub("g").params
	c := Wrap(newStub("p"), ClientConfig{Seed: 1, CrashAtRound: 2})
	for round := 0; round < 2; round++ {
		if err := c.SetParams(g); err != nil {
			t.Fatalf("round %d broadcast failed before the crash round: %v", round, err)
		}
		if _, err := c.TrainLocal(round); err != nil {
			t.Fatalf("round %d train failed before the crash round: %v", round, err)
		}
	}
	if err := c.SetParams(g); err == nil {
		t.Fatal("broadcast at the crash round succeeded")
	}
	if _, err := c.TrainLocal(2); err == nil {
		t.Fatal("crash is not permanent")
	}
}

func TestTransientFaultsAreDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		c := Wrap(newStub("p"), ClientConfig{Seed: seed, ErrRate: 0.5})
		out := make([]bool, 64)
		for i := range out {
			_, err := c.TrainLocal(i)
			out[i] = err != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	errs := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule diverged at call %d for the same seed", i)
		}
		if a[i] {
			errs++
		}
	}
	if errs == 0 || errs == len(a) {
		t.Fatalf("ErrRate 0.5 produced %d/%d faults — not a mix", errs, len(a))
	}
}

func TestNaNPoisonLeavesInnerModelClean(t *testing.T) {
	inner := newStub("p")
	c := Wrap(inner, ClientConfig{Seed: 3, NaNRate: 1})
	up := c.Params()
	if !math.IsNaN(up.Get("w").At(0, 0)) {
		t.Fatal("upload not poisoned at NaNRate 1")
	}
	if v := inner.params.Get("w").At(0, 0); math.IsNaN(v) {
		t.Fatal("poison leaked into the inner model")
	}
}

func TestWrapPreservesCapabilities(t *testing.T) {
	full := Wrap(&stubMomentAux{newStub("p")}, ClientConfig{})
	if _, ok := full.(fed.MomentClient); !ok {
		t.Fatal("MomentClient surface lost")
	}
	if _, ok := full.(fed.AuxClient); !ok {
		t.Fatal("AuxClient surface lost")
	}
	plain := Wrap(newStub("q"), ClientConfig{})
	if _, ok := plain.(fed.MomentClient); ok {
		t.Fatal("plain client gained MomentClient")
	}
	if _, ok := plain.(fed.AuxClient); ok {
		t.Fatal("plain client gained AuxClient")
	}
}

func TestWrapFleetCrashFraction(t *testing.T) {
	fleet := make([]fed.Client, 10)
	for i := range fleet {
		fleet[i] = newStub("p")
	}
	wrapped := WrapFleet(fleet, FleetConfig{Seed: 9, CrashFraction: 0.2, CrashAtRound: 1})
	g := newStub("g").params
	crashed := 0
	for _, c := range wrapped {
		if err := c.SetParams(g); err != nil {
			t.Fatalf("crash before the crash round: %v", err)
		}
		if err := c.SetParams(g); err != nil {
			crashed++
		}
	}
	if crashed != 2 {
		t.Fatalf("%d of 10 parties crashed, want ⌈0.2·10⌉ = 2", crashed)
	}
}

func TestConnSeversOnFirstWrite(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	peerErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := b.Read(buf)
		peerErr <- err
	}()
	c := &Conn{Conn: a, SeverOnWrite: true}
	if _, err := c.Write([]byte("x")); err != ErrSevered {
		t.Fatalf("first write err = %v want ErrSevered", err)
	}
	select {
	case err := <-peerErr:
		if err == nil {
			t.Fatal("peer read succeeded over a severed link")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer read never unblocked — underlying conn not closed")
	}
	if _, err := c.Write([]byte("y")); err != ErrSevered {
		t.Fatalf("post-sever write err = %v want ErrSevered", err)
	}
	if _, err := c.Read(make([]byte, 1)); err != ErrSevered {
		t.Fatalf("post-sever read err = %v want ErrSevered", err)
	}
}

func TestFlakyListenerFailsFirstAccepts(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fln := NewFlakyListener(ln, 1)
	for i := 0; i < 2; i++ {
		d, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		conn, err := fln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		_, flaky := conn.(*Conn)
		if want := i == 0; flaky != want {
			t.Fatalf("accept %d flaky = %v want %v", i, flaky, want)
		}
	}
}

func TestReadDelayStalls(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("x"))
		conn.Close()
	}()
	d, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c := &Conn{Conn: d, ReadDelay: 30 * time.Millisecond}
	start := time.Now()
	if _, err := c.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("read returned after %v, want ≥30ms", elapsed)
	}
}

func TestWrapFleetSustainedSlow(t *testing.T) {
	fleet := make([]fed.Client, 10)
	for i := range fleet {
		fleet[i] = newStub("p")
	}
	cfg := FleetConfig{
		Seed:         9,
		Latency:      time.Millisecond,
		HeavyTail:    true,
		SlowFraction: 0.25,
		SlowLatency:  50 * time.Millisecond,
	}
	victims := func(wrapped []fed.Client) []int {
		var idx []int
		for i, c := range wrapped {
			cc := c.(*Client).cfg
			if cc.Latency == cfg.SlowLatency {
				if cc.HeavyTail {
					t.Fatalf("party %d: sustained-slow must be deterministic, not heavy-tail", i)
				}
				idx = append(idx, i)
			} else if cc.Latency != cfg.Latency || !cc.HeavyTail {
				t.Fatalf("party %d: fleet-wide profile clobbered: %+v", i, cc)
			}
		}
		return idx
	}
	first := victims(WrapFleet(fleet, cfg))
	if len(first) != 3 {
		t.Fatalf("%d slow parties, want ⌈0.25·10⌉ = 3", len(first))
	}
	// Same seed, same victims: the draw is deterministic.
	second := victims(WrapFleet(fleet, cfg))
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("slow draw not deterministic: %v vs %v", first, second)
	}
	// The slow draw must not disturb the crash draw of existing configs:
	// adding SlowFraction keeps the same crash victims (drawn first).
	crashVictims := func(c FleetConfig) []int {
		var idx []int
		g := newStub("g").params
		for i, w := range WrapFleet(fleet, c) {
			w.SetParams(g) // advance the round clock past CrashAtRound
			if err := w.SetParams(g); err != nil {
				idx = append(idx, i)
			}
		}
		return idx
	}
	plain := FleetConfig{Seed: 9, CrashFraction: 0.2, CrashAtRound: 1}
	withSlow := plain
	withSlow.SlowFraction = 0.25
	withSlow.SlowLatency = time.Microsecond
	if a, b := crashVictims(plain), crashVictims(withSlow); !reflect.DeepEqual(a, b) {
		t.Fatalf("slow draw perturbed the crash draw: %v vs %v", a, b)
	}
}
