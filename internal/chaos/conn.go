package chaos

// conn.go injects faults at the transport layer: a net.Conn wrapper that
// delays reads/writes or severs the link mid-RPC, and a listener wrapper
// that hands out severing connections for the first K accepts — the shape
// of fault the coordinator's retry/reconnect path has to survive.

import (
	"errors"
	"net"
	"sync/atomic"
	"time"
)

// ErrSevered is returned by a Conn whose link was cut mid-write.
var ErrSevered = errors.New("chaos: link severed mid-write")

// Conn wraps a net.Conn with deterministic link faults.
type Conn struct {
	net.Conn
	// ReadDelay and WriteDelay are slept before each corresponding call.
	ReadDelay  time.Duration
	WriteDelay time.Duration
	// SeverOnWrite cuts the link on the first write: the underlying
	// connection is closed (so the peer sees EOF) and the write reports
	// ErrSevered.
	SeverOnWrite bool

	severed atomic.Bool
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.severed.Load() {
		return 0, ErrSevered
	}
	if c.ReadDelay > 0 {
		time.Sleep(c.ReadDelay)
	}
	return c.Conn.Read(p)
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.WriteDelay > 0 {
		time.Sleep(c.WriteDelay)
	}
	if c.SeverOnWrite && c.severed.CompareAndSwap(false, true) {
		c.Conn.Close()
		return 0, ErrSevered
	}
	if c.severed.Load() {
		return 0, ErrSevered
	}
	return c.Conn.Write(p)
}

// FlakyListener wraps a net.Listener so that the first FailFirst accepted
// connections sever on the accepter's first write. Later accepts pass
// through untouched, so a dialer that reconnects eventually gets a clean
// link.
type FlakyListener struct {
	net.Listener
	failFirst int32
	accepted  atomic.Int32
}

// NewFlakyListener returns a listener whose first failFirst accepted
// connections are replaced by severing Conns.
func NewFlakyListener(ln net.Listener, failFirst int) *FlakyListener {
	return &FlakyListener{Listener: ln, failFirst: int32(failFirst)}
}

func (l *FlakyListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if l.accepted.Add(1) <= l.failFirst {
		return &Conn{Conn: conn, SeverOnWrite: true}, nil
	}
	return conn, nil
}
