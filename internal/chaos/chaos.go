// Package chaos provides seeded, deterministic fault injectors for the
// federated runtime: client wrappers that error transiently, crash
// permanently at a chosen round, stall with fixed or heavy-tailed latency,
// or poison their uploads with NaNs — and connection/listener wrappers that
// delay or sever links mid-RPC (see conn.go). Every fault schedule derives
// from explicit seeds, so a chaotic run is exactly repeatable and can sit in
// a test suite.
package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"fedomd/internal/fed"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/obs"
)

// ClientConfig schedules the faults one wrapped client injects.
type ClientConfig struct {
	// Seed drives the client's private fault stream.
	Seed int64
	// ErrRate is the per-call probability of a transient error on the
	// operations that can report one (broadcast, statistics, training,
	// aux download).
	ErrRate float64
	// CrashAtRound permanently fails every erroring operation from that
	// round on — the round clock is the number of broadcasts received.
	// 0 disables crashing.
	CrashAtRound int
	// NaNRate is the per-upload probability that Params returns a
	// NaN-poisoned copy, exercising the aggregator's non-finite screening.
	NaNRate float64
	// Latency is slept before every operation; with HeavyTail, one call in
	// ten sleeps 10×Latency, modeling a straggler.
	Latency   time.Duration
	HeavyTail bool
	// Tracer, when set, annotates every injected fault as a "chaos/fault"
	// trace event under the tracer's active context (the current round or
	// request span), so chaos shows up inline on the causal timeline.
	Tracer *obs.Tracer
}

// Client wraps a fed.Client with the configured fault schedule. Use Wrap to
// preserve the inner client's MomentClient/AuxClient capabilities.
type Client struct {
	inner fed.Client
	cfg   ClientConfig

	mu    sync.Mutex
	rng   *rand.Rand
	round int // broadcasts received - 1; -1 before the first
}

// New wraps inner as a plain fed.Client (capabilities erased — prefer Wrap).
func New(inner fed.Client, cfg ClientConfig) *Client {
	return &Client{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), round: -1}
}

// Wrap wraps inner with fault injection, preserving its MomentClient and
// AuxClient interfaces so the runtime's capability detection still sees them.
func Wrap(inner fed.Client, cfg ClientConfig) fed.Client {
	c := New(inner, cfg)
	mc, isMoment := inner.(fed.MomentClient)
	ac, isAux := inner.(fed.AuxClient)
	switch {
	case isMoment && isAux:
		return &momentAuxInjector{Client: c, mc: mc, ac: ac}
	case isMoment:
		return &momentInjector{Client: c, mc: mc}
	case isAux:
		return &auxInjector{Client: c, ac: ac}
	default:
		return c
	}
}

// disturb sleeps the scheduled latency and returns the scheduled error (nil
// on a healthy call) for one operation.
func (c *Client) disturb(op string) error {
	c.mu.Lock()
	sleep := c.cfg.Latency
	if sleep > 0 && c.cfg.HeavyTail && c.rng.Float64() < 0.1 {
		sleep *= 10
	}
	var err error
	kind := ""
	switch {
	case c.cfg.CrashAtRound > 0 && c.round >= c.cfg.CrashAtRound:
		err = fmt.Errorf("chaos: %s: party %s crashed at round %d", op, c.inner.Name(), c.cfg.CrashAtRound)
		kind = "crash"
	case c.cfg.ErrRate > 0 && c.rng.Float64() < c.cfg.ErrRate:
		err = fmt.Errorf("chaos: %s: injected transient fault at party %s", op, c.inner.Name())
		kind = "transient"
	}
	c.mu.Unlock()
	if err != nil {
		c.annotate(kind, op, sleep)
	}
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return err
}

// annotate emits one injected fault as a trace event under the tracer's
// active context.
func (c *Client) annotate(kind, op string, sleep time.Duration) {
	tr := c.cfg.Tracer
	if tr == nil {
		return
	}
	tr.Event(tr.Active(), obs.MetricChaosFault, "warn",
		obs.KV(obs.AttrParty, c.inner.Name()),
		obs.KV(obs.AttrKind, kind),
		obs.KV(obs.AttrOp, op),
		obs.KV(obs.AttrDelaySec, sleep.Seconds()),
	)
}

// delay applies only the latency schedule (for operations with no error
// path).
func (c *Client) delay() {
	c.mu.Lock()
	sleep := c.cfg.Latency
	if sleep > 0 && c.cfg.HeavyTail && c.rng.Float64() < 0.1 {
		sleep *= 10
	}
	c.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
}

func (c *Client) Name() string    { return c.inner.Name() }
func (c *Client) NumSamples() int { return c.inner.NumSamples() }

// SetParams advances the round clock (the coordinator broadcasts exactly
// once per round) before consulting the fault schedule.
func (c *Client) SetParams(global *nn.Params) error {
	c.mu.Lock()
	c.round++
	c.mu.Unlock()
	if err := c.disturb("set_params"); err != nil {
		return err
	}
	return c.inner.SetParams(global)
}

func (c *Client) TrainLocal(round int) (float64, error) {
	if err := c.disturb("train_local"); err != nil {
		return 0, err
	}
	return c.inner.TrainLocal(round)
}

// Params applies latency and, with probability NaNRate, returns a poisoned
// copy whose first parameter carries a NaN (the inner model is untouched).
func (c *Client) Params() *nn.Params {
	c.delay()
	c.mu.Lock()
	poison := c.cfg.NaNRate > 0 && c.rng.Float64() < c.cfg.NaNRate
	c.mu.Unlock()
	p := c.inner.Params()
	if poison && p.Len() > 0 {
		p = p.Clone()
		p.At(0).Set(0, 0, math.NaN())
		c.annotate("nan_poison", "get_params", 0)
	}
	return p
}

func (c *Client) EvalVal() (int, int) {
	c.delay()
	return c.inner.EvalVal()
}

func (c *Client) EvalTest() (int, int) {
	c.delay()
	return c.inner.EvalTest()
}

// momentInjector adds the MomentClient surface to a wrapped client.
type momentInjector struct {
	*Client
	mc fed.MomentClient
}

func (m *momentInjector) LocalMeans() ([]*mat.Dense, int, error) {
	if err := m.disturb("local_means"); err != nil {
		return nil, 0, err
	}
	return m.mc.LocalMeans()
}

func (m *momentInjector) CentralAroundGlobal(globalMeans []*mat.Dense) ([][]*mat.Dense, int, error) {
	if err := m.disturb("central_moments"); err != nil {
		return nil, 0, err
	}
	return m.mc.CentralAroundGlobal(globalMeans)
}

func (m *momentInjector) SetGlobalStats(means []*mat.Dense, central [][]*mat.Dense) {
	m.delay()
	m.mc.SetGlobalStats(means, central)
}

// auxInjector adds the AuxClient surface to a wrapped client.
type auxInjector struct {
	*Client
	ac fed.AuxClient
}

func (a *auxInjector) UploadAux() *nn.Params {
	a.delay()
	return a.ac.UploadAux()
}

func (a *auxInjector) DownloadAux(global *nn.Params) error {
	if err := a.disturb("download_aux"); err != nil {
		return err
	}
	return a.ac.DownloadAux(global)
}

// momentAuxInjector carries both capability surfaces.
type momentAuxInjector struct {
	*Client
	mc fed.MomentClient
	ac fed.AuxClient
}

func (m *momentAuxInjector) LocalMeans() ([]*mat.Dense, int, error) {
	if err := m.disturb("local_means"); err != nil {
		return nil, 0, err
	}
	return m.mc.LocalMeans()
}

func (m *momentAuxInjector) CentralAroundGlobal(globalMeans []*mat.Dense) ([][]*mat.Dense, int, error) {
	if err := m.disturb("central_moments"); err != nil {
		return nil, 0, err
	}
	return m.mc.CentralAroundGlobal(globalMeans)
}

func (m *momentAuxInjector) SetGlobalStats(means []*mat.Dense, central [][]*mat.Dense) {
	m.delay()
	m.mc.SetGlobalStats(means, central)
}

func (m *momentAuxInjector) UploadAux() *nn.Params {
	m.delay()
	return m.ac.UploadAux()
}

func (m *momentAuxInjector) DownloadAux(global *nn.Params) error {
	if err := m.disturb("download_aux"); err != nil {
		return err
	}
	return m.ac.DownloadAux(global)
}

// FleetConfig scatters faults over a whole client fleet.
type FleetConfig struct {
	// Seed drives both the crash-victim draw and each client's private
	// fault stream.
	Seed int64
	// CrashFraction of the fleet (rounded up) crashes permanently at
	// CrashAtRound; the victims are drawn by seeded permutation.
	CrashFraction float64
	CrashAtRound  int
	// ErrRate, NaNRate, Latency, and HeavyTail apply to every client.
	ErrRate   float64
	NaNRate   float64
	Latency   time.Duration
	HeavyTail bool
	// SlowFraction of the fleet (rounded up) is permanently degraded: every
	// operation at a slow party sleeps SlowLatency — a deterministic
	// sustained straggler, not heavy-tail jitter, so async soaks exercise
	// the staleness discount rather than the timeout path. Victims are
	// drawn by seeded permutation after the crash draw; their SlowLatency
	// replaces the fleet-wide Latency/HeavyTail profile.
	SlowFraction float64
	SlowLatency  time.Duration
	// Tracer annotates every injected fault on the trace stream (see
	// ClientConfig.Tracer); it is shared by the whole fleet.
	Tracer *obs.Tracer
}

// WrapFleet wraps every client with a fault schedule derived from cfg,
// choosing ⌈CrashFraction·M⌉ crash victims by seeded permutation.
func WrapFleet(clients []fed.Client, cfg FleetConfig) []fed.Client {
	rng := rand.New(rand.NewSource(cfg.Seed))
	crashers := make(map[int]bool)
	if cfg.CrashFraction > 0 && cfg.CrashAtRound > 0 {
		k := int(math.Ceil(cfg.CrashFraction * float64(len(clients))))
		if k > len(clients) {
			k = len(clients)
		}
		for _, i := range rng.Perm(len(clients))[:k] {
			crashers[i] = true
		}
	}
	slow := make(map[int]bool)
	if cfg.SlowFraction > 0 && cfg.SlowLatency > 0 {
		k := int(math.Ceil(cfg.SlowFraction * float64(len(clients))))
		if k > len(clients) {
			k = len(clients)
		}
		for _, i := range rng.Perm(len(clients))[:k] {
			slow[i] = true
		}
	}
	out := make([]fed.Client, len(clients))
	for i, c := range clients {
		cc := ClientConfig{
			Seed:      cfg.Seed + int64(i)*7919,
			ErrRate:   cfg.ErrRate,
			NaNRate:   cfg.NaNRate,
			Latency:   cfg.Latency,
			HeavyTail: cfg.HeavyTail,
			Tracer:    cfg.Tracer,
		}
		if crashers[i] {
			cc.CrashAtRound = cfg.CrashAtRound
		}
		if slow[i] {
			cc.Latency = cfg.SlowLatency
			cc.HeavyTail = false
		}
		out[i] = Wrap(c, cc)
	}
	return out
}
