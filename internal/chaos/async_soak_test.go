package chaos_test

// The async soak drives the buffered no-barrier aggregation mode through the
// public facade under a hostile fault profile — one party degraded to a
// sustained straggler, fleet-wide transient faults, and NaN-poisoned uploads
// — and holds it to both halves of the robustness bargain at once:
//
//   - throughput: the async run must sustain at least 3× the rounds/sec of
//     the barriered sync run under the SAME fault profile (the straggler
//     paces every sync round but only its own async updates);
//   - accuracy: the async run must stay within 0.02 test accuracy of the
//     fault-FREE sync baseline (one-sided, as in the crash soak).
//
// All three runs are fully deterministic in their fault schedules; the
// arrival order inside the async buffer is timing-dependent, but the gates
// are margins, not equalities.

import (
	"testing"
	"time"

	"fedomd"
)

func TestSoakAsyncOutpacesSyncUnderStragglers(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test with injected latency")
	}
	g, err := fedomd.GenerateDataset("cora", 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := fedomd.Partition(g, 5, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fedomd.DefaultConfig()
	cfg.Hidden = 16
	const rounds = 10

	baseline, err := fedomd.TrainFedOMD(parties, cfg, fedomd.RunOptions{Rounds: rounds}, 3)
	if err != nil {
		t.Fatal(err)
	}

	// The shared fault profile: the whole fleet is paced at 20ms per call —
	// injected sleeps, not machine-dependent compute, then dominate both
	// loops, so the schedule (and hence the fold sets and staleness values)
	// is reproducible across hardware. One party is further degraded to a
	// 100ms sustained straggler, with occasional transient faults and NaN
	// uploads fleet-wide. Accuracy is scored only every 5 rounds so both
	// runs pay the same eval tax and the throughput ratio measures the
	// round topology, not the scoring. The async run folds the first 4
	// arrivals or whatever the 250ms round deadline caught — without the
	// deadline a transiently failing fast party would leave the round
	// waiting on the straggler's 600ms job.
	faultOpts := func(agg string, nRounds int) fedomd.RunOptions {
		return fedomd.RunOptions{
			Rounds:        nRounds,
			EvalEvery:     5,
			Policy:        fedomd.DropRound,
			Aggregation:   agg,
			BufferK:       4,
			BufferTimeout: 250 * time.Millisecond,
			Chaos: &fedomd.ChaosOptions{
				Seed:         11,
				ErrRate:      0.02,
				NaNRate:      0.02,
				Latency:      20 * time.Millisecond,
				SlowFraction: 0.2,
				SlowLatency:  100 * time.Millisecond,
			},
		}
	}

	syncStart := time.Now()
	faultySync, err := fedomd.TrainFedOMD(parties, cfg, faultOpts("sync", rounds), 3)
	if err != nil {
		t.Fatalf("faulty sync run aborted: %v", err)
	}
	syncSecs := time.Since(syncStart).Seconds()

	// The async run gets twice the rounds — that is the robustness claim in
	// action: it still finishes in a fraction of the sync run's wall-clock,
	// and the rate gate below compares rounds/sec, not totals.
	asyncStart := time.Now()
	faultyAsync, err := fedomd.TrainFedOMD(parties, cfg, faultOpts("async", 2*rounds), 3)
	if err != nil {
		t.Fatalf("faulty async run aborted: %v", err)
	}
	asyncSecs := time.Since(asyncStart).Seconds()

	if len(faultyAsync.History) != 2*rounds {
		t.Fatalf("async run completed %d of %d rounds", len(faultyAsync.History), 2*rounds)
	}
	if len(faultySync.ClientFailures) == 0 || len(faultyAsync.ClientFailures) == 0 {
		t.Fatalf("no faults tolerated (sync %v, async %v) — the soak proves nothing",
			faultySync.ClientFailures, faultyAsync.ClientFailures)
	}
	syncRate := float64(len(faultySync.History)) / syncSecs
	asyncRate := float64(len(faultyAsync.History)) / asyncSecs
	t.Logf("baseline test@best %.4f | faulty sync %.2f rounds/sec test@best %.4f | faulty async %.2f rounds/sec test@best %.4f",
		baseline.TestAtBestVal, syncRate, faultySync.TestAtBestVal, asyncRate, faultyAsync.TestAtBestVal)
	if asyncRate < 3*syncRate {
		t.Fatalf("async %.1f rounds/sec vs sync %.1f under the same faults: want ≥3×",
			asyncRate, syncRate)
	}

	if loss := baseline.TestAtBestVal - faultyAsync.TestAtBestVal; loss > 0.02 {
		t.Fatalf("async TestAtBestVal %v vs fault-free sync %v: degradation %v exceeds 0.02",
			faultyAsync.TestAtBestVal, baseline.TestAtBestVal, loss)
	}
}
