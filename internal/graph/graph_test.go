package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fedomd/internal/mat"
)

// triangle plus a pendant: 0-1, 1-2, 2-0, 2-3.
func smallGraph(t *testing.T) *Graph {
	t.Helper()
	feats, _ := mat.NewFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}, {0, 0}})
	g, err := New(feats, []int{0, 0, 1, 1}, 2, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewBasics(t *testing.T) {
	g := smallGraph(t)
	if g.NumNodes() != 4 || g.NumEdges() != 4 || g.NumFeatures() != 2 {
		t.Fatalf("counts wrong: %v", g.Summary())
	}
	if g.Degree(2) != 3 || g.Degree(3) != 1 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(2), g.Degree(3))
	}
	nbrs := g.Neighbors(2)
	if len(nbrs) != 3 {
		t.Fatalf("neighbors of 2 = %v", nbrs)
	}
}

func TestNewValidation(t *testing.T) {
	feats := mat.New(3, 1)
	if _, err := New(feats, []int{0, 0}, 1, nil); err == nil {
		t.Fatal("label/node count mismatch accepted")
	}
	if _, err := New(feats, []int{0, 0, 5}, 2, nil); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := New(feats, []int{0, 0, 0}, 1, [][2]int{{1, 1}}); err == nil {
		t.Fatal("self loop accepted")
	}
	if _, err := New(feats, []int{0, 0, 0}, 1, [][2]int{{0, 9}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestDuplicateEdgesClamped(t *testing.T) {
	feats := mat.New(2, 1)
	g, err := New(feats, []int{0, 0}, 1, [][2]int{{0, 1}, {0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("duplicate edges counted: %d", g.NumEdges())
	}
	if g.Adj.At(0, 1) != 1 {
		t.Fatalf("edge weight = %v want 1", g.Adj.At(0, 1))
	}
}

func TestEdgesEachOnce(t *testing.T) {
	g := smallGraph(t)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("Edges() = %v", edges)
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge not canonical: %v", e)
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := smallGraph(t)
	g.TrainMask = []int{0, 2}
	g.TestMask = []int{3}
	sub, ids, err := g.Subgraph([]int{2, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumNodes() != 3 {
		t.Fatal("subgraph node count")
	}
	// Edges kept: 2-3 and 2-0 → in new ids (0,1) and (0,2).
	if sub.NumEdges() != 2 {
		t.Fatalf("subgraph edges = %d want 2", sub.NumEdges())
	}
	if sub.Adj.At(0, 1) != 1 || sub.Adj.At(0, 2) != 1 || sub.Adj.At(1, 2) != 0 {
		t.Fatal("subgraph adjacency wrong")
	}
	if sub.Labels[0] != 1 || sub.Labels[2] != 0 {
		t.Fatal("subgraph labels wrong")
	}
	if sub.Features.At(0, 0) != 1 || sub.Features.At(0, 1) != 1 {
		t.Fatal("subgraph features wrong")
	}
	if len(ids) != 3 || ids[0] != 2 {
		t.Fatal("id mapping wrong")
	}
	// Mask remap: train nodes 0,2 → new ids 2,0; test node 3 → new id 1.
	if len(sub.TrainMask) != 2 || sub.TrainMask[0] != 0 || sub.TrainMask[1] != 2 {
		t.Fatalf("train mask remap = %v", sub.TrainMask)
	}
	if len(sub.TestMask) != 1 || sub.TestMask[0] != 1 {
		t.Fatalf("test mask remap = %v", sub.TestMask)
	}
}

func TestSubgraphErrors(t *testing.T) {
	g := smallGraph(t)
	if _, _, err := g.Subgraph([]int{0, 0}); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, _, err := g.Subgraph([]int{99}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestSplitStratified(t *testing.T) {
	// 3 classes with 100 nodes each.
	n := 300
	feats := mat.New(n, 1)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 3
	}
	g, err := New(feats, labels, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := g.Split(rng, 0.01, 0.2, 0.2); err != nil {
		t.Fatal(err)
	}
	// 1% of 100 per class = 1 train node per class.
	if len(g.TrainMask) != 3 {
		t.Fatalf("train mask size = %d want 3", len(g.TrainMask))
	}
	if len(g.ValMask) != 60 || len(g.TestMask) != 60 {
		t.Fatalf("val/test sizes = %d/%d want 60/60", len(g.ValMask), len(g.TestMask))
	}
	// Per-class coverage in train.
	seen := map[int]bool{}
	for _, i := range g.TrainMask {
		seen[g.Labels[i]] = true
	}
	if len(seen) != 3 {
		t.Fatal("train mask not stratified")
	}
	// Disjointness.
	all := map[int]int{}
	for _, i := range g.TrainMask {
		all[i]++
	}
	for _, i := range g.ValMask {
		all[i]++
	}
	for _, i := range g.TestMask {
		all[i]++
	}
	for id, c := range all {
		if c > 1 {
			t.Fatalf("node %d in %d masks", id, c)
		}
	}
}

func TestSplitForcesMinimumTrainNode(t *testing.T) {
	// A class with 5 nodes at 1% would round to 0 train nodes; Split must
	// still pick one.
	feats := mat.New(10, 1)
	labels := []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	g, _ := New(feats, labels, 2, nil)
	if err := g.Split(rand.New(rand.NewSource(2)), 0.01, 0.2, 0.2); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, i := range g.TrainMask {
		seen[g.Labels[i]] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("classes missing from train mask: %v", g.TrainMask)
	}
}

func TestSplitRejectsBadFractions(t *testing.T) {
	g := smallGraph(t)
	if err := g.Split(rand.New(rand.NewSource(3)), 0.6, 0.5, 0.2); err == nil {
		t.Fatal("fractions summing over 1 accepted")
	}
	if err := g.Split(rand.New(rand.NewSource(3)), -0.1, 0.2, 0.2); err == nil {
		t.Fatal("negative fraction accepted")
	}
}

func TestLabelHistogramAndHomophily(t *testing.T) {
	g := smallGraph(t)
	h := g.LabelHistogram()
	if h[0] != 2 || h[1] != 2 {
		t.Fatalf("histogram = %v", h)
	}
	// Edges: 0-1 same (0,0), 1-2 diff, 2-0 diff, 2-3 same (1,1) → 0.5.
	if got := g.EdgeHomophily(); got != 0.5 {
		t.Fatalf("homophily = %v want 0.5", got)
	}
}

func TestFeatureMeanByClass(t *testing.T) {
	g := smallGraph(t)
	m := g.FeatureMeanByClass()
	// Class 0: nodes 0,1 → mean (0.5, 0.5). Class 1: nodes 2,3 → (0.5, 0.5).
	if m.At(0, 0) != 0.5 || m.At(1, 1) != 0.5 {
		t.Fatalf("class means wrong: %v", m)
	}
}

func TestSubgraphPreservesAdjacencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(20)
		feats := mat.RandGaussian(rng, n, 3, 0, 1)
		labels := make([]int, n)
		var edges [][2]int
		for i := range labels {
			labels[i] = rng.Intn(3)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		g, err := New(feats, labels, 3, edges)
		if err != nil {
			return false
		}
		// Pick a random subset.
		perm := rng.Perm(n)
		k := 2 + rng.Intn(n-2)
		nodes := perm[:k]
		sub, ids, err := g.Subgraph(nodes)
		if err != nil {
			return false
		}
		// Every subgraph edge must exist in the original under the id map,
		// and vice versa for pairs inside the subset.
		for _, e := range sub.Edges() {
			if g.Adj.At(ids[e[0]], ids[e[1]]) != 1 {
				return false
			}
		}
		inSub := map[int]int{}
		for newID, old := range ids {
			inSub[old] = newID
		}
		for _, e := range g.Edges() {
			a, aok := inSub[e[0]]
			b, bok := inSub[e[1]]
			if aok && bok && sub.Adj.At(a, b) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
