// Package graph defines the attributed-graph value type used throughout the
// repository: a symmetric adjacency in CSR form, a dense node-feature matrix,
// integer node labels, and semi-supervised train/validation/test masks.
// It provides subgraph induction (how parties get their local graphs),
// stratified splitting at the paper's 1%/20%/20% label rate, and the
// statistics used for the non-i.i.d visualisation of Figure 4.
package graph

import (
	"fmt"
	"math/rand"
	"sort"

	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

// Graph is an undirected attributed graph. Adj stores each undirected edge in
// both directions; Features is n×f; Labels has one class id per node.
type Graph struct {
	Adj        *sparse.CSR
	Features   *mat.Dense
	Labels     []int
	NumClasses int

	// TrainMask, ValMask and TestMask hold node indices (not booleans).
	// They may be empty before Split is applied.
	TrainMask, ValMask, TestMask []int
}

// New validates and assembles a graph. edges are undirected pairs; both
// directions are inserted. Self loops are rejected (the GCN normalisation
// adds its own).
func New(features *mat.Dense, labels []int, numClasses int, edges [][2]int) (*Graph, error) {
	n := features.Rows()
	if len(labels) != n {
		return nil, fmt.Errorf("graph: %d labels for %d nodes", len(labels), n)
	}
	for i, y := range labels {
		if y < 0 || y >= numClasses {
			return nil, fmt.Errorf("graph: node %d label %d out of range [0,%d)", i, y, numClasses)
		}
	}
	entries := make([]sparse.Coord, 0, 2*len(edges))
	for _, e := range edges {
		if e[0] == e[1] {
			return nil, fmt.Errorf("graph: self loop at node %d", e[0])
		}
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return nil, fmt.Errorf("graph: edge %v out of range for %d nodes", e, n)
		}
		entries = append(entries,
			sparse.Coord{Row: e[0], Col: e[1], Val: 1},
			sparse.Coord{Row: e[1], Col: e[0], Val: 1},
		)
	}
	adj, err := sparse.NewCSR(n, n, entries)
	if err != nil {
		return nil, err
	}
	// Clamp duplicate edges to weight 1 so NumEdges stays meaningful.
	clamped := make([]sparse.Coord, 0, adj.NNZ())
	for i := 0; i < n; i++ {
		adj.RowEntries(i, func(col int, _ float64) {
			clamped = append(clamped, sparse.Coord{Row: i, Col: col, Val: 1})
		})
	}
	adj, err = sparse.NewCSR(n, n, clamped)
	if err != nil {
		return nil, err
	}
	return &Graph{Adj: adj, Features: features, Labels: labels, NumClasses: numClasses}, nil
}

// NewFromCSR assembles a graph around a pre-built symmetric adjacency — the
// streaming constructor for million-node graphs, which never materialises a
// per-edge coordinate list or hash set. Validation is one O(nnz) pass: shape
// agreement, label range, and no self loops (the GCN normalisation adds its
// own). Symmetry is the builder's contract (dataset.GenerateStream inserts
// both directions); it is not re-verified here because the O(nnz log)
// transpose comparison is exactly the cost this path exists to avoid.
func NewFromCSR(adj *sparse.CSR, features *mat.Dense, labels []int, numClasses int) (*Graph, error) {
	n := features.Rows()
	if len(labels) != n {
		return nil, fmt.Errorf("graph: %d labels for %d nodes", len(labels), n)
	}
	if adj.Rows() != n || adj.Cols() != n {
		return nil, fmt.Errorf("graph: adjacency %dx%d for %d nodes", adj.Rows(), adj.Cols(), n)
	}
	for i, y := range labels {
		if y < 0 || y >= numClasses {
			return nil, fmt.Errorf("graph: node %d label %d out of range [0,%d)", i, y, numClasses)
		}
	}
	selfLoop := -1
	for i := 0; i < n && selfLoop < 0; i++ {
		adj.RowEntries(i, func(j int, _ float64) {
			if j == i {
				selfLoop = i
			}
		})
	}
	if selfLoop >= 0 {
		return nil, fmt.Errorf("graph: self loop at node %d", selfLoop)
	}
	return &Graph{Adj: adj, Features: features, Labels: labels, NumClasses: numClasses}, nil
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.Features.Rows() }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.Adj.NNZ() / 2 }

// NumFeatures returns the feature dimensionality.
func (g *Graph) NumFeatures() int { return g.Features.Cols() }

// Degree returns the degree of node i.
func (g *Graph) Degree(i int) int { return g.Adj.RowNNZ(i) }

// Edges returns each undirected edge once, as (u, v) with u < v.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for i := 0; i < g.NumNodes(); i++ {
		g.Adj.RowEntries(i, func(j int, _ float64) {
			if i < j {
				out = append(out, [2]int{i, j})
			}
		})
	}
	return out
}

// Neighbors returns the neighbour ids of node i.
func (g *Graph) Neighbors(i int) []int {
	out := make([]int, 0, g.Adj.RowNNZ(i))
	g.Adj.RowEntries(i, func(j int, _ float64) { out = append(out, j) })
	return out
}

// Subgraph induces the subgraph on the given node ids (in the given order)
// and returns it together with the mapping from new index to original id.
// Masks are re-derived: an original-mask node survives iff it is included.
func (g *Graph) Subgraph(nodes []int) (*Graph, []int, error) {
	remap := make(map[int]int, len(nodes))
	for newID, old := range nodes {
		if old < 0 || old >= g.NumNodes() {
			return nil, nil, fmt.Errorf("graph: subgraph node %d out of range", old)
		}
		if _, dup := remap[old]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate node %d in subgraph", old)
		}
		remap[old] = newID
	}
	feats := g.Features.SelectRows(nodes)
	labels := make([]int, len(nodes))
	for newID, old := range nodes {
		labels[newID] = g.Labels[old]
	}
	var edges [][2]int
	for newID, old := range nodes {
		g.Adj.RowEntries(old, func(j int, _ float64) {
			if nj, ok := remap[j]; ok && newID < nj {
				edges = append(edges, [2]int{newID, nj})
			}
		})
	}
	sub, err := New(feats, labels, g.NumClasses, edges)
	if err != nil {
		return nil, nil, err
	}
	sub.TrainMask = remapMask(g.TrainMask, remap)
	sub.ValMask = remapMask(g.ValMask, remap)
	sub.TestMask = remapMask(g.TestMask, remap)
	ids := append([]int(nil), nodes...)
	return sub, ids, nil
}

func remapMask(mask []int, remap map[int]int) []int {
	var out []int
	for _, old := range mask {
		if n, ok := remap[old]; ok {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// Split assigns stratified train/val/test masks with the given fractions of
// nodes (the paper uses 1%/20%/20%). Stratification is per class so every
// class is represented in the training mask whenever it has enough nodes; at
// least one training node per class is forced when the class is non-empty.
func (g *Graph) Split(rng *rand.Rand, trainFrac, valFrac, testFrac float64) error {
	if trainFrac < 0 || valFrac < 0 || testFrac < 0 || trainFrac+valFrac+testFrac > 1+1e-9 {
		return fmt.Errorf("graph: invalid split fractions %v/%v/%v", trainFrac, valFrac, testFrac)
	}
	byClass := make([][]int, g.NumClasses)
	for i, y := range g.Labels {
		byClass[y] = append(byClass[y], i)
	}
	g.TrainMask, g.ValMask, g.TestMask = nil, nil, nil
	for _, nodes := range byClass {
		if len(nodes) == 0 {
			continue
		}
		perm := rng.Perm(len(nodes))
		nTrain := int(float64(len(nodes)) * trainFrac)
		if nTrain == 0 {
			nTrain = 1
		}
		nVal := int(float64(len(nodes)) * valFrac)
		nTest := int(float64(len(nodes)) * testFrac)
		if nTrain+nVal+nTest > len(nodes) {
			over := nTrain + nVal + nTest - len(nodes)
			if nTest >= over {
				nTest -= over
			} else {
				over -= nTest
				nTest = 0
				if nVal >= over {
					nVal -= over
				} else {
					nVal = 0
				}
			}
		}
		for k, pi := range perm {
			id := nodes[pi]
			switch {
			case k < nTrain:
				g.TrainMask = append(g.TrainMask, id)
			case k < nTrain+nVal:
				g.ValMask = append(g.ValMask, id)
			case k < nTrain+nVal+nTest:
				g.TestMask = append(g.TestMask, id)
			}
		}
	}
	sort.Ints(g.TrainMask)
	sort.Ints(g.ValMask)
	sort.Ints(g.TestMask)
	return nil
}

// LabelHistogram counts nodes per class (the per-party circles of Figure 4).
func (g *Graph) LabelHistogram() []int {
	h := make([]int, g.NumClasses)
	for _, y := range g.Labels {
		h[y]++
	}
	return h
}

// EdgeHomophily returns the fraction of edges whose endpoints share a label,
// a standard non-i.i.d / structure diagnostic.
func (g *Graph) EdgeHomophily() float64 {
	edges := g.Edges()
	if len(edges) == 0 {
		return 0
	}
	same := 0
	for _, e := range edges {
		if g.Labels[e[0]] == g.Labels[e[1]] {
			same++
		}
	}
	return float64(same) / float64(len(edges))
}

// FeatureMeanByClass returns a numClasses×f matrix of class-conditional
// feature means, used to quantify feature non-i.i.d-ness across parties.
func (g *Graph) FeatureMeanByClass() *mat.Dense {
	out := mat.New(g.NumClasses, g.NumFeatures())
	counts := make([]int, g.NumClasses)
	for i, y := range g.Labels {
		row := g.Features.Row(i)
		orow := out.Row(y)
		for j, v := range row {
			orow[j] += v
		}
		counts[y]++
	}
	for y, c := range counts {
		if c == 0 {
			continue
		}
		row := out.Row(y)
		inv := 1 / float64(c)
		for j := range row {
			row[j] *= inv
		}
	}
	return out
}

// Stats is a human-readable summary matching the columns of paper Table 2.
type Stats struct {
	Nodes, Edges, Classes, Features int
	Homophily                       float64
}

// Summary computes Stats for g.
func (g *Graph) Summary() Stats {
	return Stats{
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		Classes:   g.NumClasses,
		Features:  g.NumFeatures(),
		Homophily: g.EdgeHomophily(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d classes=%d features=%d homophily=%.3f",
		s.Nodes, s.Edges, s.Classes, s.Features, s.Homophily)
}
