package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"fedomd/internal/mat"
)

func TestJSONRoundTrip(t *testing.T) {
	g := smallGraph(t)
	if err := g.Split(rand.New(rand.NewSource(1)), 0.25, 0.25, 0.25); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Features.Equal(g.Features) {
		t.Fatal("features changed in round trip")
	}
	if got.NumEdges() != g.NumEdges() || got.NumClasses != g.NumClasses {
		t.Fatal("structure changed in round trip")
	}
	for i, y := range g.Labels {
		if got.Labels[i] != y {
			t.Fatal("labels changed")
		}
	}
	if len(got.TrainMask) != len(g.TrainMask) {
		t.Fatal("masks lost")
	}
	if !got.Adj.ToDense().Equal(g.Adj.ToDense()) {
		t.Fatal("adjacency changed")
	}
}

func TestJSONSparseFeaturesCompact(t *testing.T) {
	// A mostly-zero feature matrix must serialise to far fewer bytes than
	// the dense float grid would take.
	n, f := 200, 500
	feats := mat.New(n, f)
	for i := 0; i < n; i++ {
		feats.Set(i, i%f, 1)
	}
	g, err := New(feats, make([]int, n), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > n*f {
		t.Fatalf("serialisation not sparse: %d bytes", buf.Len())
	}
}

func TestReadJSONValidation(t *testing.T) {
	bad := []string{
		`{`, // malformed
		`{"nodes":2,"features":1,"classes":1,"labels":[0,0],"feat_rows":[[]],"feat_vals":[[]]}`,                       // row count mismatch
		`{"nodes":1,"features":1,"classes":1,"labels":[0],"feat_rows":[[0,1]],"feat_vals":[[1.0]]}`,                   // ragged indices/values
		`{"nodes":1,"features":1,"classes":1,"labels":[0],"feat_rows":[[5]],"feat_vals":[[1.0]]}`,                     // index out of range
		`{"nodes":1,"features":1,"classes":1,"labels":[0],"feat_rows":[[]],"feat_vals":[[]],"train_mask":[7]}`,        // mask out of range
		`{"nodes":2,"features":1,"classes":1,"labels":[0,0],"feat_rows":[[],[]],"feat_vals":[[],[]],"edges":[[0,0]]}`, // self loop
	}
	for i, s := range bad {
		if _, err := ReadJSON(strings.NewReader(s)); err == nil {
			t.Fatalf("bad payload %d accepted", i)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := smallGraph(t)
	path := filepath.Join(t.TempDir(), "g.json")
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() {
		t.Fatal("file round trip lost nodes")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
