package graph

// io.go provides JSON serialisation so generated datasets, partitions and
// party subgraphs can be saved, inspected and reloaded — the equivalent of
// the .pt / .npz artefacts the paper's tooling would emit.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"fedomd/internal/mat"
)

// jsonGraph is the serialised form: features are stored sparsely (most
// generated features are zero), edges once per undirected pair.
type jsonGraph struct {
	Nodes     int         `json:"nodes"`
	Features  int         `json:"features"`
	Classes   int         `json:"classes"`
	Labels    []int       `json:"labels"`
	Edges     [][2]int    `json:"edges"`
	FeatRows  [][]int     `json:"feat_rows"` // non-zero column indices per node
	FeatVals  [][]float64 `json:"feat_vals"`
	TrainMask []int       `json:"train_mask,omitempty"`
	ValMask   []int       `json:"val_mask,omitempty"`
	TestMask  []int       `json:"test_mask,omitempty"`
}

// WriteJSON serialises g to w.
func (g *Graph) WriteJSON(w io.Writer) error {
	jg := jsonGraph{
		Nodes:     g.NumNodes(),
		Features:  g.NumFeatures(),
		Classes:   g.NumClasses,
		Labels:    g.Labels,
		Edges:     g.Edges(),
		TrainMask: g.TrainMask,
		ValMask:   g.ValMask,
		TestMask:  g.TestMask,
	}
	jg.FeatRows = make([][]int, g.NumNodes())
	jg.FeatVals = make([][]float64, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		row := g.Features.Row(i)
		for j, v := range row {
			if v != 0 {
				jg.FeatRows[i] = append(jg.FeatRows[i], j)
				jg.FeatVals[i] = append(jg.FeatVals[i], v)
			}
		}
	}
	bw := bufio.NewWriter(w)
	if err := json.NewEncoder(bw).Encode(&jg); err != nil {
		return fmt.Errorf("graph: encoding: %w", err)
	}
	return bw.Flush()
}

// ReadJSON deserialises a graph written by WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(bufio.NewReader(r)).Decode(&jg); err != nil {
		return nil, fmt.Errorf("graph: decoding: %w", err)
	}
	if len(jg.FeatRows) != jg.Nodes || len(jg.FeatVals) != jg.Nodes {
		return nil, fmt.Errorf("graph: feature rows %d/%d for %d nodes", len(jg.FeatRows), len(jg.FeatVals), jg.Nodes)
	}
	feats := mat.New(jg.Nodes, jg.Features)
	for i := range jg.FeatRows {
		if len(jg.FeatRows[i]) != len(jg.FeatVals[i]) {
			return nil, fmt.Errorf("graph: node %d has %d indices but %d values", i, len(jg.FeatRows[i]), len(jg.FeatVals[i]))
		}
		for k, j := range jg.FeatRows[i] {
			if j < 0 || j >= jg.Features {
				return nil, fmt.Errorf("graph: node %d feature index %d out of range", i, j)
			}
			feats.Set(i, j, jg.FeatVals[i][k])
		}
	}
	g, err := New(feats, jg.Labels, jg.Classes, jg.Edges)
	if err != nil {
		return nil, err
	}
	g.TrainMask = jg.TrainMask
	g.ValMask = jg.ValMask
	g.TestMask = jg.TestMask
	for _, mask := range [][]int{g.TrainMask, g.ValMask, g.TestMask} {
		for _, id := range mask {
			if id < 0 || id >= g.NumNodes() {
				return nil, fmt.Errorf("graph: mask node %d out of range", id)
			}
		}
	}
	return g, nil
}

// SaveFile writes g to path as JSON.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from a JSON file written by SaveFile.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
