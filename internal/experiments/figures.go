package experiments

import (
	"fmt"
	"io"
	"strings"

	"fedomd/internal/dataset"
	"fedomd/internal/gaussian"
	"fedomd/internal/metrics"
	"fedomd/internal/partition"
)

// Figure4 regenerates the non-i.i.d visualisation data: the per-party label
// histogram of the Louvain cut (the circle areas of the paper's bubble
// plot), plus the aggregate non-i.i.d score.
func (r *Runner) Figure4(w io.Writer, ds string, m int) error {
	progress(w, "== Figure 4: per-party label distribution (%s, M=%d, scale=%s) ==", ds, m, r.Scale.Name)
	g, err := r.loadGraph(ds, r.BaseSeed)
	if err != nil {
		return err
	}
	parties, err := r.parties(g, m, defaultResolution(ds), r.BaseSeed+7)
	if err != nil {
		return err
	}
	dist := partition.LabelDistribution(parties, g.NumClasses)
	header := []string{"Party \\ Class"}
	for c := 0; c < g.NumClasses; c++ {
		header = append(header, fmt.Sprintf("C%d", c))
	}
	tbl := metrics.NewTable(header...)
	for p, counts := range dist {
		row := []string{fmt.Sprintf("party %d", p)}
		for _, n := range counts {
			row = append(row, fmt.Sprint(n))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "non-iid score (mean TV distance to global): %.3f\n", partition.NonIIDScore(parties, g.NumClasses))
	fmt.Fprintf(w, "cross-party edge loss: %.3f\n", partition.CrossPartyEdgeLoss(g, parties))

	// Feature non-i.i.d evidence (the figure's second claim): fit a Gaussian
	// to each party's features (§4.3, eq. 4) and evaluate the mean
	// log-density of every party's features under every model. A dominant
	// diagonal means each party's feature distribution is its own.
	fmt.Fprintln(w, "\nmean feature log-density, rows = data party, cols = model party:")
	models := make([]*gaussian.Gaussian, len(parties))
	for p, party := range parties {
		gm, err := gaussian.Fit(party.Graph.Features, 1e-6)
		if err != nil {
			return err
		}
		models[p] = gm
	}
	header = []string{"data \\ model"}
	for p := range parties {
		header = append(header, fmt.Sprintf("G%d", p))
	}
	dens := metrics.NewTable(header...)
	for p, party := range parties {
		row := []string{fmt.Sprintf("party %d", p)}
		for q := range parties {
			ld, err := models[q].LogDensity(party.Graph.Features)
			if err != nil {
				return err
			}
			var sum float64
			for _, v := range ld {
				sum += v
			}
			row = append(row, fmt.Sprintf("%.1f", sum/float64(len(ld))))
		}
		dens.AddRow(row...)
	}
	return dens.Render(w)
}

// Figure5 regenerates the convergence curves: average test accuracy per
// communication round for every model on Cora with M = 5. Early stopping is
// disabled so the curves share an x-axis.
func (r *Runner) Figure5(w io.Writer, ds string, m int, models []string) error {
	if ds == "" {
		ds = dataset.Cora
	}
	if m == 0 {
		m = 5
	}
	if len(models) == 0 {
		models = ModelNames()
	}
	progress(w, "== Figure 5: convergence on %s with M=%d (scale=%s) ==", ds, m, r.Scale.Name)
	g, err := r.loadGraph(ds, r.BaseSeed)
	if err != nil {
		return err
	}
	parties, err := r.parties(g, m, defaultResolution(ds), r.BaseSeed+7)
	if err != nil {
		return err
	}
	saved := r.Scale.Patience
	r.Scale.Patience = 0 // full-length curves
	defer func() { r.Scale.Patience = saved }()

	// Sample ~10 evenly spaced rounds for the printed series.
	step := maxInt(1, r.Scale.Rounds/10)
	header := []string{"Model"}
	for round := 0; round < r.Scale.Rounds; round += step {
		header = append(header, fmt.Sprintf("r%d", round))
	}
	tbl := metrics.NewTable(header...)
	for _, model := range models {
		res, err := r.runModel(model, parties, r.BaseSeed+13, buildOpts{})
		if err != nil {
			return fmt.Errorf("figure5 %s: %w", model, err)
		}
		row := []string{model}
		for round := 0; round < r.Scale.Rounds; round += step {
			if round < len(res.History) {
				row = append(row, fmt.Sprintf("%.3f", res.History[round].TestAcc))
			} else {
				row = append(row, "-")
			}
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}

// Figure6 regenerates the (α, β) sensitivity grid for FedOMD with M = 3.
func (r *Runner) Figure6(w io.Writer, datasets []string, alphas, betas []float64) error {
	if len(datasets) == 0 {
		datasets = []string{dataset.Cora, dataset.Computer}
	}
	if len(alphas) == 0 {
		alphas = []float64{5e-5, 5e-4, 5e-3, 5e-2}
	}
	if len(betas) == 0 {
		betas = []float64{0.1, 1, 10, 100}
	}
	for _, ds := range datasets {
		progress(w, "== Figure 6: (alpha, beta) sensitivity on %s, M=3 (scale=%s) ==", ds, r.Scale.Name)
		header := []string{"alpha \\ beta"}
		for _, b := range betas {
			header = append(header, trimFloat(b))
		}
		tbl := metrics.NewTable(header...)
		for _, a := range alphas {
			row := []string{trimFloat(a)}
			for _, b := range betas {
				av, bv := a, b
				cell, err := r.cell(ModelFedOMD, ds, 3, defaultResolution(ds), buildOpts{alpha: &av, beta: &bv})
				if err != nil {
					return fmt.Errorf("figure6 %s a=%v b=%v: %w", ds, a, b, err)
				}
				row = append(row, fmt.Sprintf("%.2f", 100*cell.Mean()))
			}
			tbl.AddRow(row...)
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure7 regenerates the Louvain-resolution sweep: FedOMD accuracy with
// M = 3 at varying resolution on the four datasets.
func (r *Runner) Figure7(w io.Writer, datasets []string, resolutions []float64) error {
	if len(datasets) == 0 {
		datasets = []string{dataset.Cora, dataset.Citeseer, dataset.Computer, dataset.Photo}
	}
	if len(resolutions) == 0 {
		resolutions = []float64{0.5, 1, 5, 10, 20, 50}
	}
	progress(w, "== Figure 7: Louvain resolution sweep, M=3 (scale=%s) ==", r.Scale.Name)
	header := []string{"Dataset"}
	for _, res := range resolutions {
		header = append(header, trimFloat(res))
	}
	tbl := metrics.NewTable(header...)
	for _, ds := range datasets {
		row := []string{ds}
		for _, res := range resolutions {
			cell, err := r.cell(ModelFedOMD, ds, 3, res, buildOpts{})
			if err != nil {
				return fmt.Errorf("figure7 %s res=%v: %w", ds, res, err)
			}
			row = append(row, fmt.Sprintf("%.2f", 100*cell.Mean()))
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return strings.TrimSuffix(s, ".0")
}
