package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"fedomd/internal/dataset"
	"fedomd/internal/fed"
	"fedomd/internal/gaussian"
	"fedomd/internal/metrics"
	"fedomd/internal/partition"
)

// Figure4 regenerates the non-i.i.d visualisation data: the per-party label
// histogram of the Louvain cut (the circle areas of the paper's bubble
// plot), plus the aggregate non-i.i.d score.
func (r *Runner) Figure4(w io.Writer, ds string, m int) error {
	progress(w, "== Figure 4: per-party label distribution (%s, M=%d, scale=%s) ==", ds, m, r.Scale.Name)
	g, err := r.loadGraph(ds, r.BaseSeed)
	if err != nil {
		return err
	}
	parties, err := r.parties(g, m, defaultResolution(ds), r.BaseSeed+7)
	if err != nil {
		return err
	}
	dist := partition.LabelDistribution(parties, g.NumClasses)
	header := []string{"Party \\ Class"}
	for c := 0; c < g.NumClasses; c++ {
		header = append(header, fmt.Sprintf("C%d", c))
	}
	tbl := metrics.NewTable(header...)
	for p, counts := range dist {
		row := []string{fmt.Sprintf("party %d", p)}
		for _, n := range counts {
			row = append(row, fmt.Sprint(n))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "non-iid score (mean TV distance to global): %.3f\n", partition.NonIIDScore(parties, g.NumClasses))
	fmt.Fprintf(w, "cross-party edge loss: %.3f\n", partition.CrossPartyEdgeLoss(g, parties))

	// Feature non-i.i.d evidence (the figure's second claim): fit a Gaussian
	// to each party's features (§4.3, eq. 4) and evaluate the mean
	// log-density of every party's features under every model. A dominant
	// diagonal means each party's feature distribution is its own.
	fmt.Fprintln(w, "\nmean feature log-density, rows = data party, cols = model party:")
	models := make([]*gaussian.Gaussian, len(parties))
	for p, party := range parties {
		gm, err := gaussian.Fit(party.Graph.Features, 1e-6)
		if err != nil {
			return err
		}
		models[p] = gm
	}
	header = []string{"data \\ model"}
	for p := range parties {
		header = append(header, fmt.Sprintf("G%d", p))
	}
	dens := metrics.NewTable(header...)
	for p, party := range parties {
		row := []string{fmt.Sprintf("party %d", p)}
		for q := range parties {
			ld, err := models[q].LogDensity(party.Graph.Features)
			if err != nil {
				return err
			}
			var sum float64
			for _, v := range ld {
				sum += v
			}
			row = append(row, fmt.Sprintf("%.1f", sum/float64(len(ld))))
		}
		dens.AddRow(row...)
	}
	return dens.Render(w)
}

// Figure5 regenerates the convergence curves: average test accuracy per
// communication round for every model on Cora with M = 5. Early stopping is
// disabled so the curves share an x-axis.
func (r *Runner) Figure5(w io.Writer, ds string, m int, models []string) error {
	if ds == "" {
		ds = dataset.Cora
	}
	if m == 0 {
		m = 5
	}
	if len(models) == 0 {
		models = ModelNames()
	}
	progress(w, "== Figure 5: convergence on %s with M=%d (scale=%s) ==", ds, m, r.Scale.Name)
	curves := *r
	curves.Scale.Patience = 0 // full-length curves share an x-axis

	// Each model's curve is independent, so train them under the same worker
	// pool as the table grids. Workers regenerate the graph and partition
	// from the shared seed schedule instead of sharing one instance: the
	// regeneration is deterministic (identical cut in every worker) and
	// keeps each run's memory private.
	histories := make([][]fed.RoundStats, len(models))
	errs := make([]error, len(models))
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.jobs())
	for i, model := range models {
		wg.Add(1)
		go func(i int, model string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			g, err := curves.loadGraph(ds, curves.BaseSeed)
			if err != nil {
				errs[i] = fmt.Errorf("figure5 %s: %w", model, err)
				return
			}
			parties, err := curves.parties(g, m, defaultResolution(ds), curves.BaseSeed+7)
			if err != nil {
				errs[i] = fmt.Errorf("figure5 %s: %w", model, err)
				return
			}
			res, err := curves.runModel(model, parties, curves.BaseSeed+13, buildOpts{})
			if err != nil {
				errs[i] = fmt.Errorf("figure5 %s: %w", model, err)
				return
			}
			histories[i] = res.History
		}(i, model)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Sample ~10 evenly spaced rounds for the printed series.
	step := maxInt(1, r.Scale.Rounds/10)
	header := []string{"Model"}
	for round := 0; round < r.Scale.Rounds; round += step {
		header = append(header, fmt.Sprintf("r%d", round))
	}
	tbl := metrics.NewTable(header...)
	for i, model := range models {
		row := []string{model}
		for round := 0; round < r.Scale.Rounds; round += step {
			if round < len(histories[i]) {
				row = append(row, fmt.Sprintf("%.3f", histories[i][round].TestAcc))
			} else {
				row = append(row, "-")
			}
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}

// Figure6 regenerates the (α, β) sensitivity grid for FedOMD with M = 3.
func (r *Runner) Figure6(w io.Writer, datasets []string, alphas, betas []float64) error {
	if len(datasets) == 0 {
		datasets = []string{dataset.Cora, dataset.Computer}
	}
	if len(alphas) == 0 {
		alphas = []float64{5e-5, 5e-4, 5e-3, 5e-2}
	}
	if len(betas) == 0 {
		betas = []float64{0.1, 1, 10, 100}
	}
	var specs []cellSpec
	for _, ds := range datasets {
		for _, a := range alphas {
			for _, b := range betas {
				av, bv := a, b
				specs = append(specs, cellSpec{
					label: fmt.Sprintf("figure6 %s a=%v b=%v", ds, a, b),
					model: ModelFedOMD, ds: ds, m: 3, resolution: defaultResolution(ds),
					bo: buildOpts{alpha: &av, beta: &bv},
				})
			}
		}
	}
	cells, err := r.runCells(specs)
	if err != nil {
		return err
	}
	next := 0
	for _, ds := range datasets {
		progress(w, "== Figure 6: (alpha, beta) sensitivity on %s, M=3 (scale=%s) ==", ds, r.Scale.Name)
		header := []string{"alpha \\ beta"}
		for _, b := range betas {
			header = append(header, trimFloat(b))
		}
		tbl := metrics.NewTable(header...)
		for _, a := range alphas {
			row := []string{trimFloat(a)}
			for range betas {
				row = append(row, fmt.Sprintf("%.2f", 100*cells[next].Mean()))
				next++
			}
			tbl.AddRow(row...)
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Figure7 regenerates the Louvain-resolution sweep: FedOMD accuracy with
// M = 3 at varying resolution on the four datasets.
func (r *Runner) Figure7(w io.Writer, datasets []string, resolutions []float64) error {
	if len(datasets) == 0 {
		datasets = []string{dataset.Cora, dataset.Citeseer, dataset.Computer, dataset.Photo}
	}
	if len(resolutions) == 0 {
		resolutions = []float64{0.5, 1, 5, 10, 20, 50}
	}
	progress(w, "== Figure 7: Louvain resolution sweep, M=3 (scale=%s) ==", r.Scale.Name)
	header := []string{"Dataset"}
	for _, res := range resolutions {
		header = append(header, trimFloat(res))
	}
	var specs []cellSpec
	for _, ds := range datasets {
		for _, res := range resolutions {
			specs = append(specs, cellSpec{
				label: fmt.Sprintf("figure7 %s res=%v", ds, res),
				model: ModelFedOMD, ds: ds, m: 3, resolution: res,
			})
		}
	}
	cells, err := r.runCells(specs)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(header...)
	next := 0
	for _, ds := range datasets {
		row := []string{ds}
		for range resolutions {
			row = append(row, fmt.Sprintf("%.2f", 100*cells[next].Mean()))
			next++
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return strings.TrimSuffix(s, ".0")
}
