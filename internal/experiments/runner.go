// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5). Each driver regenerates the corresponding result
// — same rows, same series — on the synthetic dataset substitutes, at either
// quick scale (minutes, shrunken datasets) or paper scale (full Table 2
// sizes). EXPERIMENTS.md records paper-vs-measured for every artefact.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"fedomd/internal/baselines"
	"fedomd/internal/codec"
	"fedomd/internal/core"
	"fedomd/internal/dataset"
	"fedomd/internal/fed"
	"fedomd/internal/graph"
	"fedomd/internal/metrics"
	"fedomd/internal/obs"
	"fedomd/internal/partition"
	"fedomd/internal/telemetry"
)

// Model names, in the paper's table order.
const (
	ModelFedMLP   = "FedMLP"
	ModelSCAFFOLD = "SCAFFOLD"
	ModelFedProx  = "FedProx"
	ModelLocGCN   = "LocGCN"
	ModelFedGCN   = "FedGCN"
	ModelFedLIT   = "FedLIT"
	ModelFedSage  = "FedSage+"
	ModelFedOMD   = "FedOMD"
)

// ModelNames returns every evaluated model in Table 4's row order.
func ModelNames() []string {
	return []string{ModelFedMLP, ModelSCAFFOLD, ModelFedProx, ModelLocGCN,
		ModelFedGCN, ModelFedLIT, ModelFedSage, ModelFedOMD}
}

// Scale sizes an experiment run.
type Scale struct {
	Name string
	// DatasetDivisor shrinks node/edge/feature counts (1 = paper scale).
	DatasetDivisor int
	// Rounds and Patience bound federated training (paper: 1000 / 200).
	Rounds, Patience int
	// Seeds is the number of repetitions per cell (paper: 5).
	Seeds int
	// Hidden is the model width (paper: 64).
	Hidden int
	// LocalEpochs per round (paper communication interval: 1).
	LocalEpochs int
	// TrainFrac is the labelled-node fraction (paper: 0.01). Scaled-down
	// datasets raise it so the *absolute* label count per party matches the
	// paper's regime — 1% of a 1/8-scale graph leaves so few labels that
	// results become partition lottery. 0 means 0.01.
	TrainFrac float64
}

// QuickScale completes every experiment in minutes on a laptop while
// preserving orderings and trends.
func QuickScale() Scale {
	return Scale{Name: "quick", DatasetDivisor: 12, Rounds: 130, Patience: 45, Seeds: 2, Hidden: 32, LocalEpochs: 1, TrainFrac: 0.03}
}

// SmokeScale is for tests: tiny and fast.
func SmokeScale() Scale {
	return Scale{Name: "smoke", DatasetDivisor: 24, Rounds: 15, Patience: 0, Seeds: 1, Hidden: 16, LocalEpochs: 1}
}

// PaperScale reproduces the paper's settings (§5.1) on the full synthetic
// dataset sizes. Expect hours of CPU time.
func PaperScale() Scale {
	return Scale{Name: "paper", DatasetDivisor: 1, Rounds: 1000, Patience: 200, Seeds: 5, Hidden: 64, LocalEpochs: 1}
}

// buildOpts carries per-experiment model overrides beyond Scale.
type buildOpts struct {
	hiddenLayers     int // FedOMD depth (Table 7); 0 ⇒ default 2
	useOrtho, useCMD *bool
	alpha, beta      *float64 // Figure 6 sweeps
}

// Runner executes experiment cells at a fixed scale with a deterministic
// seed schedule.
type Runner struct {
	Scale    Scale
	BaseSeed int64
	// Recorder, when set, is threaded into every federated run it drives
	// (phase spans, comms counters) and additionally receives per-cell
	// wall-time histograms ("exp/cell_seconds/<model>/<dataset>") so
	// experiment tables can report wall-time columns. Nil disables.
	Recorder telemetry.Recorder
	// Jobs bounds how many grid cells run concurrently (0 or negative means
	// GOMAXPROCS). Every cell derives all of its randomness from the seed
	// schedule — never from the scheduler — so the tables are byte-identical
	// at any Jobs value.
	Jobs int
	// Codec is threaded into every federated run this runner drives (the
	// zero value leaves payloads raw). The Delta tier is lossless, so even
	// accuracy tables are unchanged by it.
	Codec codec.Options
	// Tracer, when set, is threaded into every federated run so each cell's
	// rounds and phases land on the shared trace stream. Nil disables (no
	// timing overhead beyond the runs' own telemetry).
	Tracer *obs.Tracer
}

// NewRunner returns a Runner with the given scale and base seed.
func NewRunner(s Scale, baseSeed int64) *Runner {
	return &Runner{Scale: s, BaseSeed: baseSeed}
}

// WithRecorder sets the telemetry sink and returns the runner for chaining.
func (r *Runner) WithRecorder(rec telemetry.Recorder) *Runner {
	r.Recorder = rec
	return r
}

// WithJobs sets the cell-level concurrency bound and returns the runner for
// chaining.
func (r *Runner) WithJobs(jobs int) *Runner {
	r.Jobs = jobs
	return r
}

// WithTracer sets the trace sink and returns the runner for chaining.
func (r *Runner) WithTracer(tr *obs.Tracer) *Runner {
	r.Tracer = tr
	return r
}

func (r *Runner) jobs() int {
	if r.Jobs > 0 {
		return r.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// loadGraph generates the (scaled) named dataset and applies the paper's
// 1%/20%/20% stratified split.
func (r *Runner) loadGraph(name string, seed int64) (*graph.Graph, error) {
	cfg, err := dataset.Preset(name)
	if err != nil {
		return nil, err
	}
	cfg = dataset.Scaled(cfg, r.Scale.DatasetDivisor)
	g, err := dataset.Generate(cfg, seed)
	if err != nil {
		return nil, err
	}
	trainFrac := r.Scale.TrainFrac
	if trainFrac == 0 {
		trainFrac = 0.01
	}
	if err := g.Split(rand.New(rand.NewSource(seed+1)), trainFrac, 0.2, 0.2); err != nil {
		return nil, err
	}
	return g, nil
}

// parties cuts a graph into m Louvain parties at the given resolution.
func (r *Runner) parties(g *graph.Graph, m int, resolution float64, seed int64) ([]partition.Party, error) {
	return partition.LouvainParties(g, m, resolution, rand.New(rand.NewSource(seed)))
}

// buildClients constructs the named model's federated clients over parties.
// It also reports whether the model trains without federation (LocGCN).
func (r *Runner) buildClients(model string, parties []partition.Party, seed int64, bo buildOpts) ([]fed.Client, bool, error) {
	opts := baselines.Options{
		Hidden:      r.Scale.Hidden,
		LR:          0.01,
		WeightDecay: 1e-4,
		Dropout:     0.5,
		LocalEpochs: r.Scale.LocalEpochs,
	}
	var clients []fed.Client
	localOnly := false
	idx := 0
	for _, p := range parties {
		if p.Graph.NumNodes() == 0 {
			continue
		}
		name := fmt.Sprintf("%s-party-%d", model, idx)
		cseed := seed + int64(idx) + 1
		var (
			c   fed.Client
			err error
		)
		switch model {
		case ModelFedMLP:
			c, err = baselines.NewFedMLP(name, p.Graph, opts, cseed)
		case ModelFedProx:
			// With a single local step the proximal gradient μ(w − w_global)
			// is exactly zero (w starts at w_global), degenerating FedProx
			// into FedMLP; multiple local epochs activate the term.
			pOpts := opts
			pOpts.LocalEpochs = maxInt(3, opts.LocalEpochs)
			c, err = baselines.NewFedProx(name, p.Graph, pOpts, cseed)
		case ModelSCAFFOLD:
			sOpts := opts
			// SCAFFOLD takes plain SGD steps (the control variates correct
			// raw gradients), so it needs a larger rate than the Adam-based
			// clients, and at least two local steps for the variates to act.
			sOpts.LR = 0.3
			sOpts.LocalEpochs = maxInt(2, opts.LocalEpochs)
			c, err = baselines.NewScaffold(name, p.Graph, sOpts, cseed)
		case ModelLocGCN:
			localOnly = true
			c, err = baselines.NewGCNClient(name, p.Graph, opts, cseed)
		case ModelFedGCN:
			c, err = baselines.NewGCNClient(name, p.Graph, opts, cseed)
		case ModelFedLIT:
			c, err = baselines.NewFedLIT(name, p.Graph, 3, opts, cseed)
		case ModelFedSage:
			c, err = baselines.NewFedSage(name, p.Graph, opts, cseed)
		case ModelFedOMD:
			cfg := core.DefaultConfig()
			cfg.Hidden = r.Scale.Hidden
			cfg.LocalEpochs = r.Scale.LocalEpochs
			if bo.hiddenLayers > 0 {
				cfg.HiddenLayers = bo.hiddenLayers
			}
			if bo.useOrtho != nil {
				cfg.UseOrtho = *bo.useOrtho
			}
			if bo.useCMD != nil {
				cfg.UseCMD = *bo.useCMD
			}
			if bo.alpha != nil {
				cfg.Alpha = *bo.alpha
			}
			if bo.beta != nil {
				cfg.Beta = *bo.beta
			}
			c, err = core.NewClient(name, p.Graph, cfg, cseed)
		default:
			return nil, false, fmt.Errorf("experiments: unknown model %q", model)
		}
		if err != nil {
			return nil, false, fmt.Errorf("experiments: building %s: %w", name, err)
		}
		clients = append(clients, c)
		idx++
	}
	if len(clients) == 0 {
		return nil, false, fmt.Errorf("experiments: no non-empty parties for %s", model)
	}
	return clients, localOnly, nil
}

// RunModelPublic federates the named model over parties with default model
// options — the entry point the public fedomd facade uses.
func (r *Runner) RunModelPublic(model string, parties []partition.Party, seed int64, sequential bool) (*fed.Result, error) {
	clients, localOnly, err := r.buildClients(model, parties, seed, buildOpts{})
	if err != nil {
		return nil, err
	}
	cfg := fed.Config{Rounds: r.Scale.Rounds, Patience: r.Scale.Patience, Sequential: sequential, Recorder: r.Recorder, Codec: r.Codec, Tracer: r.Tracer}
	if localOnly {
		return fed.RunLocalOnly(cfg, clients)
	}
	return fed.Run(cfg, clients)
}

// runModel federates the named model over parties and returns the result.
func (r *Runner) runModel(model string, parties []partition.Party, seed int64, bo buildOpts) (*fed.Result, error) {
	clients, localOnly, err := r.buildClients(model, parties, seed, bo)
	if err != nil {
		return nil, err
	}
	cfg := fed.Config{Rounds: r.Scale.Rounds, Patience: r.Scale.Patience, Recorder: r.Recorder, Codec: r.Codec, Tracer: r.Tracer}
	if localOnly {
		return fed.RunLocalOnly(cfg, clients)
	}
	return fed.Run(cfg, clients)
}

// cell measures one table cell: mean±std of test accuracy (at best
// validation) over the seed schedule.
func (r *Runner) cell(model, ds string, m int, resolution float64, bo buildOpts) (metrics.Cell, error) {
	rec := telemetry.Or(r.Recorder)
	var c metrics.Cell
	for s := 0; s < r.Scale.Seeds; s++ {
		seed := r.BaseSeed + int64(1000*s)
		g, err := r.loadGraph(ds, seed)
		if err != nil {
			return c, err
		}
		parties, err := r.parties(g, m, resolution, seed+7)
		if err != nil {
			return c, err
		}
		var start time.Time
		if rec.Enabled() {
			start = time.Now()
		}
		res, err := r.runModel(model, parties, seed+13, bo)
		if err != nil {
			return c, err
		}
		if rec.Enabled() {
			rec.Observe("exp/cell_seconds/"+metricSegment(model)+"/"+metricSegment(ds), time.Since(start).Seconds()) //fedomdvet:ignore per-cell series over the fixed model/dataset grid; segments sanitized to snake_case
		}
		c.Add(res.TestAtBestVal)
	}
	return c, nil
}

// cellSpec identifies one table cell to evaluate. label is the error context
// ("table4 cora/FedOMD/M=3") a failing cell is reported under.
type cellSpec struct {
	label      string
	model, ds  string
	m          int
	resolution float64
	bo         buildOpts
}

// runCells evaluates every spec with a pool of at most jobs() workers and
// returns the cells in spec order. Each cell is a pure function of (spec,
// Scale, BaseSeed) — graphs, partitions, and clients are all rebuilt from the
// seed schedule inside the cell — so the result is identical to a serial
// sweep no matter how the scheduler interleaves the workers. On failure every
// in-flight cell is drained and the first error in spec order is returned.
func (r *Runner) runCells(specs []cellSpec) ([]metrics.Cell, error) {
	cells := make([]metrics.Cell, len(specs))
	workers := r.jobs()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, sp := range specs {
			c, err := r.cell(sp.model, sp.ds, sp.m, sp.resolution, sp.bo)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sp.label, err)
			}
			cells[i] = c
		}
		return cells, nil
	}
	var (
		idx  = make(chan int)
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs = make(map[int]error)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				sp := specs[i]
				c, err := r.cell(sp.model, sp.ds, sp.m, sp.resolution, sp.bo)
				if err != nil {
					mu.Lock()
					errs[i] = fmt.Errorf("%s: %w", sp.label, err)
					mu.Unlock()
					continue
				}
				cells[i] = c
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if len(errs) > 0 {
		for i := range specs {
			if err, ok := errs[i]; ok {
				return nil, err
			}
		}
	}
	return cells, nil
}

// metricSegment sanitizes a model or dataset name into one snake_case
// telemetry-key segment: lowercase, with every run of other characters
// collapsed to a single underscore ("FedSage+" → "fedsage"). Caught by
// fedomdvet's telemetrykey analyzer: display names used to leak into key
// names verbatim.
func metricSegment(s string) string {
	var b strings.Builder
	pendingSep := false
	for _, r := range strings.ToLower(s) {
		switch {
		case (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9'):
			if pendingSep && b.Len() > 0 {
				b.WriteByte('_')
			}
			pendingSep = false
			b.WriteRune(r)
		default:
			pendingSep = true
		}
	}
	if b.Len() == 0 {
		return "unknown"
	}
	return b.String()
}

// defaultResolution mirrors §5.1: the Louvain default (1.0) on the citation
// graphs and 20 on the denser co-purchase graphs.
func defaultResolution(ds string) float64 {
	switch ds {
	case dataset.Computer, dataset.Photo:
		return 20
	default:
		return 1.0
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// progress emits a short status line when w is non-nil.
func progress(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format+"\n", args...)
	}
}
