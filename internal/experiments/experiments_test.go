package experiments

import (
	"strings"
	"testing"

	"fedomd/internal/dataset"
)

func smokeRunner() *Runner { return NewRunner(SmokeScale(), 1) }

func TestModelNamesComplete(t *testing.T) {
	names := ModelNames()
	if len(names) != 8 {
		t.Fatalf("expected 8 models, got %d", len(names))
	}
	if names[len(names)-1] != ModelFedOMD {
		t.Fatal("FedOMD should be the last row, as in the paper")
	}
}

func TestBuildClientsUnknownModel(t *testing.T) {
	r := smokeRunner()
	g, err := r.loadGraph(dataset.Cora, 1)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := r.parties(g, 2, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.buildClients("NotAModel", parties, 3, buildOpts{}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestEveryModelRunsOneCell(t *testing.T) {
	r := smokeRunner()
	for _, model := range ModelNames() {
		cell, err := r.cell(model, dataset.Cora, 2, 1.0, buildOpts{})
		if err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if len(cell.Runs) != r.Scale.Seeds {
			t.Fatalf("%s: %d runs want %d", model, len(cell.Runs), r.Scale.Seeds)
		}
		if cell.Mean() < 0 || cell.Mean() > 1 {
			t.Fatalf("%s: accuracy %v out of range", model, cell.Mean())
		}
	}
}

func TestTable2Renders(t *testing.T) {
	var b strings.Builder
	if err := smokeRunner().Table2(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range dataset.Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 2 missing %s:\n%s", name, out)
		}
	}
}

func TestTable3Renders(t *testing.T) {
	var b strings.Builder
	if err := smokeRunner().Table3(&b, dataset.Cora, 2); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, model := range ModelNames() {
		if !strings.Contains(out, model) {
			t.Fatalf("Table 3 missing %s:\n%s", model, out)
		}
	}
	if !strings.Contains(out, "UploadBytes") {
		t.Fatal("Table 3 missing communication column")
	}
}

func TestTable4SmokeSubset(t *testing.T) {
	var b strings.Builder
	r := smokeRunner()
	if err := r.Table4(&b, []string{dataset.Cora}, []int{2}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "FedOMD") || !strings.Contains(out, "M=2") {
		t.Fatalf("Table 4 malformed:\n%s", out)
	}
}

func TestTable6AblationSmoke(t *testing.T) {
	var b strings.Builder
	if err := smokeRunner().Table6(&b, []string{dataset.Cora}, []int{2}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, v := range []string{"Ortho only", "CMD only", "Ortho+CMD"} {
		if !strings.Contains(out, v) {
			t.Fatalf("Table 6 missing %q:\n%s", v, out)
		}
	}
}

func TestTable7DepthSmoke(t *testing.T) {
	var b strings.Builder
	if err := smokeRunner().Table7(&b, []string{dataset.Cora}, []int{2}, []int{2, 4}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "FedOMD 4-hidden") || !strings.Contains(out, "FedGCN 2-GCNConv") {
		t.Fatalf("Table 7 malformed:\n%s", out)
	}
}

func TestFigure4Smoke(t *testing.T) {
	var b strings.Builder
	if err := smokeRunner().Figure4(&b, dataset.Cora, 3); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "party 0") || !strings.Contains(out, "non-iid score") {
		t.Fatalf("Figure 4 malformed:\n%s", out)
	}
}

func TestFigure5Smoke(t *testing.T) {
	var b strings.Builder
	if err := smokeRunner().Figure5(&b, dataset.Cora, 2, []string{ModelFedOMD, ModelFedGCN}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "r0") || !strings.Contains(out, "FedOMD") {
		t.Fatalf("Figure 5 malformed:\n%s", out)
	}
}

func TestFigure6Smoke(t *testing.T) {
	var b strings.Builder
	if err := smokeRunner().Figure6(&b, []string{dataset.Cora}, []float64{5e-4}, []float64{10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "alpha") {
		t.Fatalf("Figure 6 malformed:\n%s", b.String())
	}
}

func TestFigure7Smoke(t *testing.T) {
	var b strings.Builder
	if err := smokeRunner().Figure7(&b, []string{dataset.Cora}, []float64{1, 20}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), dataset.Cora) {
		t.Fatalf("Figure 7 malformed:\n%s", b.String())
	}
}

// The worker pool must not change any number: a grid evaluated with one
// worker and with many must render byte-identical tables, because every cell
// draws all randomness from the seed schedule.
func TestParallelGridMatchesSerial(t *testing.T) {
	render := func(jobs int) string {
		t.Helper()
		var b strings.Builder
		r := smokeRunner().WithJobs(jobs)
		if err := r.Table4(&b, []string{dataset.Cora}, []int{2, 3}); err != nil {
			t.Fatal(err)
		}
		if err := r.Figure7(&b, []string{dataset.Cora}, []float64{1, 20}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("parallel grid diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// A failing cell must surface as the first error in spec order, regardless of
// which worker hits it first.
func TestRunCellsErrorPropagation(t *testing.T) {
	r := smokeRunner().WithJobs(4)
	specs := []cellSpec{
		{label: "ok", model: ModelFedMLP, ds: dataset.Cora, m: 2, resolution: 1.0},
		{label: "first-bad", model: "NotAModel", ds: dataset.Cora, m: 2, resolution: 1.0},
		{label: "second-bad", model: "AlsoNotAModel", ds: dataset.Cora, m: 2, resolution: 1.0},
	}
	_, err := r.runCells(specs)
	if err == nil {
		t.Fatal("runCells swallowed the failure")
	}
	if !strings.Contains(err.Error(), "first-bad") {
		t.Fatalf("expected the first failing spec's label, got: %v", err)
	}
}

func TestScalesValid(t *testing.T) {
	for _, s := range []Scale{QuickScale(), SmokeScale(), PaperScale()} {
		if s.Rounds <= 0 || s.Seeds <= 0 || s.Hidden <= 0 || s.DatasetDivisor <= 0 {
			t.Fatalf("invalid scale %+v", s)
		}
	}
	if PaperScale().DatasetDivisor != 1 {
		t.Fatal("paper scale must be unscaled")
	}
}

func TestDefaultResolutionMatchesPaper(t *testing.T) {
	if defaultResolution(dataset.Computer) != 20 || defaultResolution(dataset.Photo) != 20 {
		t.Fatal("co-purchase datasets should use resolution 20 (§5.1)")
	}
	if defaultResolution(dataset.Cora) != 1.0 {
		t.Fatal("citation datasets should use the default resolution")
	}
}
