package experiments

import (
	"fmt"
	"io"
	"time"

	"fedomd/internal/dataset"
	"fedomd/internal/fed"
	"fedomd/internal/metrics"
	"fedomd/internal/nn"
)

// Table2 regenerates the dataset-statistics table: for each preset, the
// generated graph's node/edge/class/feature counts at the current scale.
func (r *Runner) Table2(w io.Writer) error {
	progress(w, "== Table 2: dataset statistics (scale=%s) ==", r.Scale.Name)
	tbl := metrics.NewTable("Dataset", "#Nodes", "#Edges", "#Classes", "#Features", "Homophily")
	for _, name := range dataset.Names() {
		g, err := r.loadGraph(name, r.BaseSeed)
		if err != nil {
			return err
		}
		s := g.Summary()
		tbl.AddRow(name,
			fmt.Sprint(s.Nodes), fmt.Sprint(s.Edges),
			fmt.Sprint(s.Classes), fmt.Sprint(s.Features),
			fmt.Sprintf("%.3f", s.Homophily))
	}
	return tbl.Render(w)
}

// Table3 measures the empirical counterpart of the complexity table: per
// model, the wall-clock client time for one local round, the server
// aggregation time over M parties, the inference (eval) time, and the bytes
// a client uploads per round (weights plus, for FedOMD, the moment
// statistics whose negligible size §4.4 claims).
func (r *Runner) Table3(w io.Writer, ds string, m int) error {
	progress(w, "== Table 3: measured time & communication (dataset=%s, M=%d, scale=%s) ==", ds, m, r.Scale.Name)
	g, err := r.loadGraph(ds, r.BaseSeed)
	if err != nil {
		return err
	}
	parties, err := r.parties(g, m, defaultResolution(ds), r.BaseSeed+7)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable("Model", "ClientTime/round", "ServerTime/round", "InferenceTime", "UploadBytes/round")
	for _, model := range ModelNames() {
		clients, _, err := r.buildClients(model, parties, r.BaseSeed+13, buildOpts{})
		if err != nil {
			return err
		}
		// Client time: one local training round on the first party.
		t0 := time.Now()
		if _, err := clients[0].TrainLocal(0); err != nil {
			return err
		}
		clientTime := time.Since(t0)

		// Server time: one FedAvg aggregation over all parties.
		sets := make([]*nn.Params, len(clients))
		weights := make([]float64, len(clients))
		for i, c := range clients {
			sets[i] = c.Params()
			weights[i] = 1
		}
		t0 = time.Now()
		if _, err := nn.Average(sets, weights); err != nil {
			return err
		}
		serverTime := time.Since(t0)

		// Inference time: one evaluation pass.
		t0 = time.Now()
		clients[0].EvalTest()
		inferTime := time.Since(t0)

		upload := clients[0].Params().Bytes()
		if model == ModelFedOMD {
			if mc, ok := clients[0].(fed.MomentClient); ok {
				means, _, err := mc.LocalMeans()
				if err != nil {
					return err
				}
				for _, mean := range means {
					// mean + 4 central-moment vectors per layer.
					upload += 8 * mean.Cols() * 5
				}
			}
		}
		tbl.AddRow(model,
			clientTime.Round(time.Microsecond).String(),
			serverTime.Round(time.Microsecond).String(),
			inferTime.Round(time.Microsecond).String(),
			fmt.Sprint(upload))
	}
	return tbl.Render(w)
}

// Table4 regenerates the headline comparison: accuracy (mean ± std over
// seeds) of all eight models on the four datasets with M ∈ parties.
func (r *Runner) Table4(w io.Writer, datasets []string, parties []int) error {
	if len(datasets) == 0 {
		datasets = []string{dataset.Cora, dataset.Citeseer, dataset.Computer, dataset.Photo}
	}
	if len(parties) == 0 {
		parties = []int{3, 5, 7, 9}
	}
	var specs []cellSpec
	for _, ds := range datasets {
		for _, model := range ModelNames() {
			for _, m := range parties {
				specs = append(specs, cellSpec{
					label: fmt.Sprintf("table4 %s/%s/M=%d", ds, model, m),
					model: model, ds: ds, m: m, resolution: defaultResolution(ds),
				})
			}
		}
	}
	cells, err := r.runCells(specs)
	if err != nil {
		return err
	}
	next := 0
	for _, ds := range datasets {
		progress(w, "== Table 4: %s (scale=%s) ==", ds, r.Scale.Name)
		header := []string{"Model"}
		for _, m := range parties {
			header = append(header, fmt.Sprintf("M=%d", m))
		}
		tbl := metrics.NewTable(header...)
		for _, model := range ModelNames() {
			row := []string{model}
			for range parties {
				row = append(row, cells[next].String())
				next++
			}
			tbl.AddRow(row...)
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table5 regenerates the many-party experiment: Coauthor-CS with
// M ∈ {20, 50}.
func (r *Runner) Table5(w io.Writer, parties []int) error {
	if len(parties) == 0 {
		parties = []int{20, 50}
	}
	progress(w, "== Table 5: %s with many parties (scale=%s) ==", dataset.CoauthorCS, r.Scale.Name)
	header := []string{"Model"}
	for _, m := range parties {
		header = append(header, fmt.Sprintf("M=%d", m))
	}
	var specs []cellSpec
	for _, model := range ModelNames() {
		for _, m := range parties {
			specs = append(specs, cellSpec{
				label: fmt.Sprintf("table5 %s/M=%d", model, m),
				model: model, ds: dataset.CoauthorCS, m: m,
				resolution: defaultResolution(dataset.CoauthorCS),
			})
		}
	}
	cells, err := r.runCells(specs)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(header...)
	next := 0
	for _, model := range ModelNames() {
		row := []string{model}
		for range parties {
			row = append(row, cells[next].String())
			next++
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}

// Table6 regenerates the ablation: FedOMD with {Ortho, CMD} switched on/off
// on Cora and Citeseer.
func (r *Runner) Table6(w io.Writer, datasets []string, parties []int) error {
	if len(datasets) == 0 {
		datasets = []string{dataset.Cora, dataset.Citeseer}
	}
	if len(parties) == 0 {
		parties = []int{3, 5, 7, 9}
	}
	tru, fls := true, false
	variants := []struct {
		label            string
		useOrtho, useCMD *bool
	}{
		{"Ortho only", &tru, &fls},
		{"CMD only", &fls, &tru},
		{"Ortho+CMD", &tru, &tru},
	}
	var specs []cellSpec
	for _, ds := range datasets {
		for _, v := range variants {
			for _, m := range parties {
				specs = append(specs, cellSpec{
					label: fmt.Sprintf("table6 %s/%s/M=%d", ds, v.label, m),
					model: ModelFedOMD, ds: ds, m: m, resolution: defaultResolution(ds),
					bo: buildOpts{useOrtho: v.useOrtho, useCMD: v.useCMD},
				})
			}
		}
	}
	cells, err := r.runCells(specs)
	if err != nil {
		return err
	}
	next := 0
	for _, ds := range datasets {
		progress(w, "== Table 6: ablation on %s (scale=%s) ==", ds, r.Scale.Name)
		header := []string{"Variant"}
		for _, m := range parties {
			header = append(header, fmt.Sprintf("M=%d", m))
		}
		tbl := metrics.NewTable(header...)
		for _, v := range variants {
			row := []string{v.label}
			for range parties {
				row = append(row, cells[next].String())
				next++
			}
			tbl.AddRow(row...)
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table7 regenerates the depth study: FedOMD with {2,4,6,8,10} hidden layers
// on Computer and Photo, against the 2-layer FedGCN reference.
func (r *Runner) Table7(w io.Writer, datasets []string, parties []int, depths []int) error {
	if len(datasets) == 0 {
		datasets = []string{dataset.Computer, dataset.Photo}
	}
	if len(parties) == 0 {
		parties = []int{3, 5, 7, 9}
	}
	if len(depths) == 0 {
		depths = []int{2, 4, 6, 8, 10}
	}
	var specs []cellSpec
	for _, ds := range datasets {
		for _, depth := range depths {
			for _, m := range parties {
				specs = append(specs, cellSpec{
					label: fmt.Sprintf("table7 %s/depth=%d/M=%d", ds, depth, m),
					model: ModelFedOMD, ds: ds, m: m, resolution: defaultResolution(ds),
					bo: buildOpts{hiddenLayers: depth},
				})
			}
		}
		for _, m := range parties {
			specs = append(specs, cellSpec{
				label: fmt.Sprintf("table7 %s/fedgcn/M=%d", ds, m),
				model: ModelFedGCN, ds: ds, m: m, resolution: defaultResolution(ds),
			})
		}
	}
	cells, err := r.runCells(specs)
	if err != nil {
		return err
	}
	next := 0
	for _, ds := range datasets {
		progress(w, "== Table 7: depth study on %s (scale=%s) ==", ds, r.Scale.Name)
		header := []string{"Model/Layers"}
		for _, m := range parties {
			header = append(header, fmt.Sprintf("M=%d", m))
		}
		tbl := metrics.NewTable(header...)
		for _, depth := range depths {
			row := []string{fmt.Sprintf("FedOMD %d-hidden", depth)}
			for range parties {
				row = append(row, cells[next].String())
				next++
			}
			tbl.AddRow(row...)
		}
		row := []string{"FedGCN 2-GCNConv"}
		for range parties {
			row = append(row, cells[next].String())
			next++
		}
		tbl.AddRow(row...)
		if err := tbl.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
