// Package core implements the paper's contribution: the FedOMD client — an
// orthogonal GCN (Table 1) trained under the three-part objective of eq. 12,
//
//	L_i = CE(Z_i^L, Y_i) + α·L_ortho_i + β·d_CMD_i,
//
// where L_ortho is the orthogonality reconstruction loss (eq. 6) on the
// OrthoConv weights and d_CMD is the truncated central-moment discrepancy
// (eq. 11) between the client's per-layer hidden statistics and the global
// statistics assembled by the server through Algorithm 1's 2-round exchange.
package core

import (
	"fmt"
	"math/rand"

	"fedomd/internal/ad"
	"fedomd/internal/fed"
	"fedomd/internal/graph"
	"fedomd/internal/mat"
	"fedomd/internal/moments"
	"fedomd/internal/nn"
	"fedomd/internal/partition"
	"fedomd/internal/sparse"
)

// Config holds FedOMD's hyper-parameters. The defaults (see DefaultConfig)
// are the paper's experimental settings (§5.1).
type Config struct {
	// Hidden is the hidden width d_h.
	Hidden int
	// HiddenLayers is the number of hidden representations ("2-hidden" in
	// Table 7 means 2: one input GCNConv + one OrthoConv).
	HiddenLayers int
	// Alpha weights the orthogonality loss (paper: 0.0005).
	Alpha float64
	// Beta weights the CMD loss (paper: 10).
	Beta float64
	// MaxOrder truncates the CMD series (paper: 5).
	MaxOrder int
	// LR and WeightDecay configure Adam (paper: weight decay 1e-4).
	LR          float64
	WeightDecay float64
	// Dropout probability on hidden activations.
	Dropout float64
	// LocalEpochs is the number of gradient steps per communication round
	// (paper: communication interval 1).
	LocalEpochs int
	// UseOrtho / UseCMD are the ablation switches of Table 6.
	UseOrtho bool
	UseCMD   bool
	// RangeA/RangeB bound the hidden activations for the CMD weights
	// 1/(b−a)^j ("the elements of Z are limited to [a, b]", eq. 11).
	RangeA, RangeB float64
	// AdaptiveRange widens RangeB to the largest hidden activation the
	// client observed during the statistics exchange. ReLU activations are
	// unbounded, so a fixed [0, 1] underestimates b, removes the 1/(b−a)^j
	// damping of the higher moments, and lets the CMD gradient swamp the
	// cross-entropy signal at the paper's 1% label rate.
	AdaptiveRange bool
	// SquaredCMD uses the smooth ‖·‖² variant of the CMD terms whose
	// gradient vanishes as the distributions converge (see
	// moments.CMDLossSquared). The plain eq. 11 form is available for the
	// fidelity ablation.
	SquaredCMD bool
}

// DefaultConfig returns the paper's experimental settings (§5.1: α = 0.0005,
// β = 10, weight decay 1e-4, hidden width 64, 2 hidden layers, CMD order 5).
// The paper does not state a learning rate or dropout; LR = 0.05 and dropout
// 0.2 were selected by a sweep on the synthetic Cora stand-in (the deeper
// OrthoGCN needs a larger step than a 2-layer GCN at one local epoch per
// round).
func DefaultConfig() Config {
	return Config{
		Hidden:        64,
		HiddenLayers:  2,
		Alpha:         0.0005,
		Beta:          10,
		MaxOrder:      moments.DefaultMaxOrder,
		LR:            0.05,
		WeightDecay:   1e-4,
		Dropout:       0.2,
		LocalEpochs:   1,
		UseOrtho:      true,
		UseCMD:        true,
		RangeA:        0,
		RangeB:        1,
		AdaptiveRange: true,
		SquaredCMD:    true,
	}
}

func (c Config) validate() error {
	switch {
	case c.Hidden <= 0:
		return fmt.Errorf("core: Hidden must be positive")
	case c.HiddenLayers < 1:
		return fmt.Errorf("core: HiddenLayers must be >= 1")
	case c.MaxOrder < 2:
		return fmt.Errorf("core: MaxOrder must be >= 2")
	case c.LR <= 0:
		return fmt.Errorf("core: LR must be positive")
	case c.LocalEpochs <= 0:
		return fmt.Errorf("core: LocalEpochs must be positive")
	case c.RangeB <= c.RangeA:
		return fmt.Errorf("core: activation range [%v,%v] empty", c.RangeA, c.RangeB)
	}
	return nil
}

// Client is one FedOMD party. It implements fed.Client and fed.MomentClient.
type Client struct {
	name  string
	cfg   Config
	g     *graph.Graph
	s     *sparse.CSR
	model *nn.OrthoGCN
	opt   *nn.Adam
	rng   *rand.Rand
	// tape is the client's reusable autodiff arena. fed.Server never calls a
	// client concurrently with itself, so one tape per client is safe; every
	// forward pass records on it and Releases its buffers back to the mat
	// pool once the results have been consumed.
	tape *ad.Tape

	globalMeans   []*mat.Dense
	globalCentral [][]*mat.Dense
	obsMax        float64 // largest hidden activation seen in the exchange
	last          Losses
}

var (
	_ fed.Client       = (*Client)(nil)
	_ fed.MomentClient = (*Client)(nil)
)

// NewClient builds a FedOMD party over its local subgraph.
func NewClient(name string, g *graph.Graph, cfg Config, seed int64) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("core: client %s has an empty graph", name)
	}
	s, err := sparse.GCNNormalize(g.Adj)
	if err != nil {
		return nil, fmt.Errorf("core: client %s: %w", name, err)
	}
	rng := rand.New(rand.NewSource(seed))
	model, err := nn.NewOrthoGCN(rng, g.NumFeatures(), cfg.Hidden, g.NumClasses, cfg.HiddenLayers, cfg.Dropout)
	if err != nil {
		return nil, fmt.Errorf("core: client %s: %w", name, err)
	}
	return &Client{
		name:  name,
		cfg:   cfg,
		g:     g,
		s:     s,
		model: model,
		opt:   nn.NewAdam(cfg.LR, cfg.WeightDecay),
		rng:   rng,
		tape:  ad.NewTape(),
	}, nil
}

// NewClients partitions a global graph into m parties with the Louvain cut
// at the given resolution and builds one FedOMD client per party, mirroring
// the paper's experimental setup (§5.1). Seeds are split from the base seed.
func NewClients(g *graph.Graph, m int, resolution float64, cfg Config, seed int64) ([]*Client, []partition.Party, error) {
	rng := rand.New(rand.NewSource(seed))
	parties, err := partition.LouvainParties(g, m, resolution, rng)
	if err != nil {
		return nil, nil, err
	}
	clients := make([]*Client, 0, len(parties))
	for i, p := range parties {
		if p.Graph.NumNodes() == 0 {
			continue
		}
		c, err := NewClient(fmt.Sprintf("party-%d", i), p.Graph, cfg, seed+int64(i)+1)
		if err != nil {
			return nil, nil, err
		}
		clients = append(clients, c)
	}
	if len(clients) == 0 {
		return nil, nil, fmt.Errorf("core: partition produced no non-empty parties")
	}
	return clients, parties, nil
}

// Name implements fed.Client.
func (c *Client) Name() string { return c.name }

// NumSamples implements fed.Client: the number of labelled training nodes.
func (c *Client) NumSamples() int { return len(c.g.TrainMask) }

// Params implements fed.Client.
func (c *Client) Params() *nn.Params { return c.model.Params() }

// SetParams implements fed.Client.
func (c *Client) SetParams(global *nn.Params) error {
	return c.model.Params().CopyFrom(global)
}

// Graph exposes the client's local graph (read-only use).
func (c *Client) Graph() *graph.Graph { return c.g }

// Model exposes the underlying OrthoGCN (for ablation tooling).
func (c *Client) Model() *nn.OrthoGCN { return c.model }

// forward runs the model on the local graph.
func (c *Client) forward(tp *ad.Tape, train bool) *nn.Forward {
	return c.model.Forward(tp, nn.Input{S: c.s, X: c.g.Features}, c.rng, train)
}

// Losses captures the three components of eq. 12 from the last TrainLocal
// step, for diagnostics and the ablation experiments.
type Losses struct {
	CE, Ortho, CMD, Total float64
}

// LastLosses returns the loss decomposition of the most recent local step.
func (c *Client) LastLosses() Losses { return c.last }

// TrainLocal implements fed.Client: LocalEpochs full-batch steps of the
// combined objective. A party without labelled nodes performs no step and
// reports zero loss (it still contributes its weights to aggregation).
func (c *Client) TrainLocal(round int) (float64, error) {
	if len(c.g.TrainMask) == 0 {
		return 0, nil
	}
	var total float64
	for e := 0; e < c.cfg.LocalEpochs; e++ {
		if err := c.trainStep(); err != nil {
			return 0, err
		}
		total = c.last.Total
	}
	return total, nil
}

// trainStep is one full-batch gradient step on the reused tape. All loss
// scalars are copied out and the optimizer consumes the gradients before the
// deferred Release recycles every tape buffer for the next step.
func (c *Client) trainStep() error {
	tp := c.tape
	defer tp.Release()
	f := c.forward(tp, true)
	loss := tp.SoftmaxCrossEntropy(f.Logits, c.g.Labels, c.g.TrainMask)
	c.last.CE = loss.Value.At(0, 0)
	c.last.Ortho, c.last.CMD = 0, 0
	if c.cfg.UseOrtho && len(f.OrthoNodes) > 0 {
		// eq. 6: Σ_k ‖W_k W_kᵀ − I‖_F over the OrthoConv weights.
		ortho := tp.OrthoPenalty(f.OrthoNodes[0])
		for _, w := range f.OrthoNodes[1:] {
			ortho = tp.Add(ortho, tp.OrthoPenalty(w))
		}
		c.last.Ortho = ortho.Value.At(0, 0)
		loss = tp.Add(loss, tp.Scale(c.cfg.Alpha, ortho))
	}
	if c.cfg.UseCMD && c.globalMeans != nil {
		cmd, err := c.cmdLoss(tp, f)
		if err != nil {
			return err
		}
		if cmd != nil {
			c.last.CMD = cmd.Value.At(0, 0)
			loss = tp.Add(loss, tp.Scale(c.cfg.Beta, cmd))
		}
	}
	c.last.Total = loss.Value.At(0, 0)
	if err := tp.Backward(loss); err != nil {
		return fmt.Errorf("core: %s backward: %w", c.name, err)
	}
	if err := c.opt.Step(c.model.Params(), f.ParamNodes); err != nil {
		return fmt.Errorf("core: %s optimiser: %w", c.name, err)
	}
	return nil
}

// cmdLoss sums the per-layer CMD distances (Algorithm 1 line 19) against the
// stored global statistics.
func (c *Client) cmdLoss(tp *ad.Tape, f *nn.Forward) (*ad.Node, error) {
	a, b := c.cfg.RangeA, c.cfg.RangeB
	if c.cfg.AdaptiveRange && c.obsMax > b {
		b = c.obsMax
	}
	var loss *ad.Node
	layers := min(len(f.Hidden), len(c.globalMeans))
	for l := 0; l < layers; l++ {
		if c.globalMeans[l] == nil || len(c.globalCentral) <= l {
			continue
		}
		cmdLoss := moments.CMDLoss
		if c.cfg.SquaredCMD {
			cmdLoss = moments.CMDLossSquared
		}
		term, err := cmdLoss(tp, f.Hidden[l], c.globalMeans[l], c.globalCentral[l], a, b)
		if err != nil {
			return nil, fmt.Errorf("core: %s layer %d CMD: %w", c.name, l, err)
		}
		if loss == nil {
			loss = term
		} else {
			loss = tp.Add(loss, term)
		}
	}
	return loss, nil
}

// LocalMeans implements fed.MomentClient: Algorithm 1 lines 3-8. The means
// are taken over all local nodes' hidden representations (every node has a
// hidden embedding even when unlabelled, and the richer statistic stabilises
// the global estimate at the paper's 1% label rate).
func (c *Client) LocalMeans() ([]*mat.Dense, int, error) {
	tp := c.tape
	defer tp.Release()
	f := c.forward(tp, false)
	means := make([]*mat.Dense, len(f.Hidden))
	obs := 0.0
	for l, h := range f.Hidden {
		means[l] = mat.MeanRows(h.Value)
		if m := mat.Max(h.Value); m > obs {
			obs = m
		}
	}
	c.obsMax = obs
	return means, c.g.NumNodes(), nil
}

// CentralAroundGlobal implements fed.MomentClient: Algorithm 1 lines 12-15.
func (c *Client) CentralAroundGlobal(globalMeans []*mat.Dense) ([][]*mat.Dense, int, error) {
	tp := c.tape
	defer tp.Release()
	f := c.forward(tp, false)
	if len(globalMeans) != len(f.Hidden) {
		return nil, 0, fmt.Errorf("core: %s got %d global means for %d layers", c.name, len(globalMeans), len(f.Hidden))
	}
	moms := make([][]*mat.Dense, len(f.Hidden))
	for l, h := range f.Hidden {
		moms[l] = moments.CentralAround(h.Value, globalMeans[l], c.cfg.MaxOrder)
	}
	return moms, c.g.NumNodes(), nil
}

// SetGlobalStats implements fed.MomentClient: Algorithm 1 lines 16-18.
func (c *Client) SetGlobalStats(means []*mat.Dense, central [][]*mat.Dense) {
	c.globalMeans = means
	c.globalCentral = central
}

// Accuracy evaluates the current model on the given node mask.
func (c *Client) Accuracy(mask []int) (correct, total int) {
	if len(mask) == 0 {
		return 0, 0
	}
	tp := c.tape
	defer tp.Release()
	f := c.forward(tp, false)
	pred := mat.ArgmaxRows(f.Logits.Value)
	for _, i := range mask {
		if pred[i] == c.g.Labels[i] {
			correct++
		}
	}
	return correct, len(mask)
}

// EvalVal implements fed.Client.
func (c *Client) EvalVal() (int, int) { return c.Accuracy(c.g.ValMask) }

// EvalTest implements fed.Client.
func (c *Client) EvalTest() (int, int) { return c.Accuracy(c.g.TestMask) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
