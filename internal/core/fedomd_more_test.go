package core

import (
	"testing"

	"fedomd/internal/mat"
)

func TestPlainCMDVariantTrains(t *testing.T) {
	g := tinyGraph(t, 21)
	cfg := quickConfig()
	cfg.SquaredCMD = false // the literal eq. 11 form
	cfg.Beta = 0.1         // plain norms need a far smaller weight (DESIGN.md §1.1)
	c, err := NewClient("plain", g, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	means, _, err := c.LocalMeans()
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([]*mat.Dense, len(means))
	for i, m := range means {
		shifted[i] = mat.Apply(m, func(x float64) float64 { return x + 0.2 })
	}
	moms, _, err := c.CentralAroundGlobal(shifted)
	if err != nil {
		t.Fatal(err)
	}
	c.SetGlobalStats(shifted, moms)
	if _, err := c.TrainLocal(0); err != nil {
		t.Fatal(err)
	}
	if c.LastLosses().CMD <= 0 {
		t.Fatalf("plain CMD inactive: %+v", c.LastLosses())
	}
}

func TestSpectralBoundToggle(t *testing.T) {
	g := tinyGraph(t, 22)
	c, err := NewClient("sb", g, quickConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	// Blow up an OrthoConv weight; with the bound on, the forward pass must
	// stay finite because the effective weight is divided by its spectral
	// norm.
	w := c.Model().Params().Get("w_ortho1")
	w.ScaleInPlace(1e6)
	if _, err := c.TrainLocal(0); err != nil {
		t.Fatal(err)
	}
	if l := c.LastLosses().CE; l != l || l > 1e6 { // NaN or explosion
		t.Fatalf("spectral bound failed to contain forward pass: CE=%v", l)
	}
	// With the bound off the same weight makes activations astronomically
	// large (finite but huge logits → saturated loss).
	c2, err := NewClient("nb", g, quickConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	c2.Model().SetSpectralBound(false)
	c2.Model().Params().Get("w_ortho1").ScaleInPlace(1e6)
	if _, err := c2.TrainLocal(0); err != nil {
		t.Fatal(err)
	}
	if c2.LastLosses().CE < c.LastLosses().CE {
		t.Fatalf("unbounded forward unexpectedly better behaved: %v vs %v",
			c2.LastLosses().CE, c.LastLosses().CE)
	}
}

func TestAdaptiveRangeObserved(t *testing.T) {
	g := tinyGraph(t, 23)
	c, err := NewClient("ar", g, quickConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if c.obsMax != 0 {
		t.Fatal("observed max should start at zero")
	}
	if _, _, err := c.LocalMeans(); err != nil {
		t.Fatal(err)
	}
	if c.obsMax <= 0 {
		t.Fatal("LocalMeans did not record the activation range")
	}
}
