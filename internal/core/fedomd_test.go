package core

import (
	"math/rand"
	"testing"

	"fedomd/internal/dataset"
	"fedomd/internal/fed"
	"fedomd/internal/graph"
	"fedomd/internal/mat"
)

func tinyCfg() dataset.Config {
	return dataset.Config{Name: "tiny", Nodes: 180, Edges: 500, Classes: 3, Features: 24,
		CommunitiesPerClass: 2, Homophily: 0.85, ActiveFeatures: 5, SignalRatio: 0.9}
}

func tinyGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, err := dataset.Generate(tinyCfg(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Split(rand.New(rand.NewSource(seed)), 0.1, 0.2, 0.2); err != nil {
		t.Fatal(err)
	}
	return g
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Hidden = 16
	cfg.Dropout = 0
	cfg.LR = 0.03
	return cfg
}

func TestConfigValidation(t *testing.T) {
	g := tinyGraph(t, 1)
	bad := []func(Config) Config{
		func(c Config) Config { c.Hidden = 0; return c },
		func(c Config) Config { c.HiddenLayers = 0; return c },
		func(c Config) Config { c.MaxOrder = 1; return c },
		func(c Config) Config { c.LR = 0; return c },
		func(c Config) Config { c.LocalEpochs = 0; return c },
		func(c Config) Config { c.RangeB = c.RangeA; return c },
	}
	for i, mut := range bad {
		if _, err := NewClient("x", g, mut(DefaultConfig()), 1); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestNewClientsPartitions(t *testing.T) {
	g := tinyGraph(t, 2)
	clients, parties, err := NewClients(g, 3, 1.0, quickConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(parties) != 3 {
		t.Fatalf("parties = %d", len(parties))
	}
	total := 0
	for _, c := range clients {
		total += c.Graph().NumNodes()
	}
	if total != g.NumNodes() {
		t.Fatalf("node conservation: %d vs %d", total, g.NumNodes())
	}
}

func TestTrainLocalDecreasesLoss(t *testing.T) {
	g := tinyGraph(t, 3)
	c, err := NewClient("solo", g, quickConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.TrainLocal(0)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 1; i < 80; i++ {
		last, err = c.TrainLocal(i)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	dec := c.LastLosses()
	if dec.CE <= 0 || dec.Total <= 0 {
		t.Fatalf("loss decomposition missing: %+v", dec)
	}
	if dec.Ortho < 0 || dec.CMD != 0 { // no global stats set, CMD inactive
		t.Fatalf("unexpected decomposition: %+v", dec)
	}
}

func TestEmptyTrainMaskIsNoop(t *testing.T) {
	g := tinyGraph(t, 4)
	g.TrainMask = nil
	c, err := NewClient("unlabelled", g, quickConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Params().Clone()
	loss, err := c.TrainLocal(0)
	if err != nil || loss != 0 {
		t.Fatalf("noop train: loss=%v err=%v", loss, err)
	}
	if d, _ := c.Params().L2Distance(before); d != 0 {
		t.Fatal("parameters changed without training data")
	}
}

func TestMomentProtocolShapes(t *testing.T) {
	g := tinyGraph(t, 5)
	cfg := quickConfig()
	cfg.HiddenLayers = 3
	c, err := NewClient("m", g, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	means, n, err := c.LocalMeans()
	if err != nil {
		t.Fatal(err)
	}
	if n != g.NumNodes() || len(means) != 3 {
		t.Fatalf("means: n=%d layers=%d", n, len(means))
	}
	for _, m := range means {
		if m.Rows() != 1 || m.Cols() != cfg.Hidden {
			t.Fatalf("mean shape %dx%d", m.Rows(), m.Cols())
		}
	}
	moms, _, err := c.CentralAroundGlobal(means)
	if err != nil {
		t.Fatal(err)
	}
	if len(moms) != 3 || len(moms[0]) != cfg.MaxOrder-1 {
		t.Fatalf("moment shapes: %d layers, %d orders", len(moms), len(moms[0]))
	}
	if _, _, err := c.CentralAroundGlobal(means[:1]); err == nil {
		t.Fatal("layer mismatch accepted")
	}
}

func TestCMDLossActivatesAfterStats(t *testing.T) {
	g := tinyGraph(t, 6)
	c, err := NewClient("cmd", g, quickConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	// Install deliberately shifted global stats so the CMD term is non-zero.
	means, _, err := c.LocalMeans()
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([]*mat.Dense, len(means))
	for i, m := range means {
		shifted[i] = mat.Apply(m, func(x float64) float64 { return x + 0.3 })
	}
	moms, _, err := c.CentralAroundGlobal(shifted)
	if err != nil {
		t.Fatal(err)
	}
	c.SetGlobalStats(shifted, moms)
	if _, err := c.TrainLocal(0); err != nil {
		t.Fatal(err)
	}
	if c.LastLosses().CMD <= 0 {
		t.Fatalf("CMD loss inactive after stats: %+v", c.LastLosses())
	}
}

func TestAblationSwitches(t *testing.T) {
	g := tinyGraph(t, 7)
	cfg := quickConfig()
	cfg.UseOrtho = false
	cfg.UseCMD = false
	c, err := NewClient("abl", g, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	means, _, _ := c.LocalMeans()
	moms, _, _ := c.CentralAroundGlobal(means)
	c.SetGlobalStats(means, moms)
	if _, err := c.TrainLocal(0); err != nil {
		t.Fatal(err)
	}
	dec := c.LastLosses()
	if dec.Ortho != 0 || dec.CMD != 0 {
		t.Fatalf("ablated terms active: %+v", dec)
	}
	if dec.Total != dec.CE {
		t.Fatalf("total != CE with both terms off: %+v", dec)
	}
}

func TestFederatedFedOMDEndToEnd(t *testing.T) {
	g := tinyGraph(t, 8)
	clients, _, err := NewClients(g, 3, 1.0, quickConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	fc := make([]fed.Client, len(clients))
	for i, c := range clients {
		fc[i] = c
	}
	res, err := fed.Run(fed.Config{Rounds: 40, Patience: 0}, fc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 40 {
		t.Fatalf("history = %d rounds", len(res.History))
	}
	// Moment exchange must have produced upload traffic beyond weights only:
	// compare against a pure-FedAvg weight volume.
	weightBytes := int64(clients[0].Params().Bytes()) * int64(len(clients)) * 40
	if res.TotalBytesUp <= weightBytes {
		t.Fatal("no statistics traffic recorded; moment exchange inactive?")
	}
	// Learning happened: better than random guessing (1/3) on test.
	if res.TestAtBestVal < 0.40 {
		t.Fatalf("FedOMD test accuracy %.3f suspiciously low", res.TestAtBestVal)
	}
	// CMD became active on each client.
	for _, c := range clients {
		if c.globalMeans == nil {
			t.Fatal("global stats never delivered")
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		g := tinyGraph(t, 9)
		clients, _, err := NewClients(g, 2, 1.0, quickConfig(), 13)
		if err != nil {
			t.Fatal(err)
		}
		fc := make([]fed.Client, len(clients))
		for i, c := range clients {
			fc[i] = c
		}
		// Sequential so client RNG interleaving is fixed.
		res, err := fed.Run(fed.Config{Rounds: 5, Sequential: true}, fc)
		if err != nil {
			t.Fatal(err)
		}
		return res.History[4].TrainLoss
	}
	if run() != run() {
		t.Fatal("same seeds produced different training trajectories")
	}
}
