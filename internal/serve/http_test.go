package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fedomd/internal/fed"
	"fedomd/internal/obs"
)

func startTestServer(t *testing.T, s *Service) *obs.HTTPServer {
	t.Helper()
	srv, err := obs.StartHTTPServer("127.0.0.1:0", Handler(s))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.ShutdownTimeout(5 * time.Second) })
	return srv
}

func postClassify(t *testing.T, addr, body string) (int, string) {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/v1/classify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestHTTPGolden pins the wire shape of the classify API byte for byte. The
// crafted integer weights make the logits exact, so this golden is
// machine-independent.
func TestHTTPGolden(t *testing.T) {
	const classes = 3
	g := testGraph(t, 9, classes)
	s := New(Config{MaxBatch: 4})
	defer s.Close()
	swapFromCheckpoint(t, s, mlpCheckpoint(t, classes, 7), g)
	srv := startTestServer(t, s)

	status, body := postClassify(t, srv.Addr(), `{"nodes":[0,4],"logits":true}`)
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	// Node 0 has feature e0 -> class (0+7)%3 = 1, logits = W row 0 = e1.
	// Node 4 has feature e1 -> class (1+7)%3 = 2, logits = W row 1 = e2.
	golden := `{"model_round":7,"results":[{"node":0,"class":1,"logits":[0,1,0]},{"node":4,"class":2,"logits":[0,0,1]}]}` + "\n"
	if body != golden {
		t.Fatalf("response shape drifted:\ngot  %q\nwant %q", body, golden)
	}

	status, body = postClassify(t, srv.Addr(), `{"nodes":[2]}`)
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	goldenNoLogits := `{"model_round":7,"results":[{"node":2,"class":0}]}` + "\n"
	if body != goldenNoLogits {
		t.Fatalf("no-logits shape drifted:\ngot  %q\nwant %q", body, goldenNoLogits)
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	const classes = 3
	g := testGraph(t, 6, classes)
	s := New(Config{MaxBatch: 4})
	defer s.Close()
	srv := startTestServer(t, s)

	// No model yet: classify 503, healthz critical 503.
	if status, _ := postClassify(t, srv.Addr(), `{"nodes":[0]}`); status != 503 {
		t.Fatalf("no-model classify status %d want 503", status)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 || !bytes.Contains(hb, []byte(RuleNoModel)) {
		t.Fatalf("no-model healthz: %d %s", resp.StatusCode, hb)
	}

	swapFromCheckpoint(t, s, mlpCheckpoint(t, classes, 1), g)
	if status, _ := postClassify(t, srv.Addr(), `{"nodes":[]}`); status != 400 {
		t.Fatal("empty nodes accepted")
	}
	if status, _ := postClassify(t, srv.Addr(), `not json`); status != 400 {
		t.Fatal("bad body accepted")
	}
	if status, _ := postClassify(t, srv.Addr(), `{"nodes":[99]}`); status != 400 {
		t.Fatal("out-of-range node accepted")
	}
	resp, err = http.Get("http://" + srv.Addr() + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET classify status %d want 405", resp.StatusCode)
	}
	resp, err = http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthy healthz status %d", resp.StatusCode)
	}
}

// TestHotSwapUnderLoad is the soak the acceptance criteria name: workers
// hammer the HTTP endpoint while checkpoints land on disk repeatedly and a
// Watcher hot-swaps the model. Every response must be a 200 whose class is
// correct for the model round it claims — which also proves post-swap
// responses reflect the new parameters. Run with -race.
func TestHotSwapUnderLoad(t *testing.T) {
	const (
		n       = 30
		classes = 3
		workers = 8
		rounds  = 6
	)
	g := testGraph(t, n, classes)
	s := New(Config{MaxBatch: 16, Linger: 200 * time.Microsecond, CacheSize: 512})
	defer s.Close()

	path := filepath.Join(t.TempDir(), "model.ckpt")
	write := fed.FileCheckpointer(path)
	if err := write(mlpCheckpoint(t, classes, 0)); err != nil {
		t.Fatal(err)
	}
	var swapErrs atomic.Int64
	w := WatchCheckpoint(s, path, time.Millisecond, g, func(err error) {
		swapErrs.Add(1)
		t.Log("swap error:", err)
	})
	defer w.Stop()
	srv := startTestServer(t, s)

	// Wait for the initial model.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := s.ModelRound(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher never loaded the initial checkpoint")
		}
		time.Sleep(time.Millisecond)
	}

	stop := make(chan struct{})
	var bad atomic.Int64
	var total atomic.Int64
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 5 * time.Second}
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			node := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				node = (node*7 + 3) % n
				body := fmt.Sprintf(`{"nodes":[%d]}`, node)
				resp, err := client.Post("http://"+srv.Addr()+"/v1/classify", "application/json", strings.NewReader(body))
				if err != nil {
					bad.Add(1)
					t.Error("request failed:", err)
					return
				}
				var cr ClassifyResponse
				err = json.NewDecoder(resp.Body).Decode(&cr)
				resp.Body.Close()
				total.Add(1)
				if resp.StatusCode != 200 || err != nil {
					bad.Add(1)
					t.Errorf("non-200 under swap load: %d (%v)", resp.StatusCode, err)
					return
				}
				if want := expectedClass(node, classes, cr.ModelRound); cr.Results[0].Class != want {
					bad.Add(1)
					t.Errorf("round-%d response has class %d for node %d, want %d",
						cr.ModelRound, cr.Results[0].Class, node, want)
					return
				}
			}
		}(wkr)
	}

	// Land new checkpoints while the load runs.
	for r := 1; r <= rounds; r++ {
		time.Sleep(20 * time.Millisecond)
		if err := write(mlpCheckpoint(t, classes, r)); err != nil {
			t.Fatal(err)
		}
	}
	// Let the last swap propagate, then verify it is being served.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if r, _ := s.ModelRound(); r == rounds {
			break
		}
		if time.Now().After(deadline) {
			r, _ := s.ModelRound()
			t.Fatalf("final checkpoint never swapped in (at round %d, want %d)", r, rounds)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if bad.Load() != 0 {
		t.Fatalf("%d bad responses out of %d", bad.Load(), total.Load())
	}
	if total.Load() == 0 {
		t.Fatal("soak sent no requests")
	}
	if w.Swaps() < 2 {
		t.Fatalf("only %d swaps happened during the soak", w.Swaps())
	}
	if swapErrs.Load() != 0 {
		t.Fatalf("%d swap errors during soak", swapErrs.Load())
	}
	res, err := s.Classify(t.Context(), []int{1}, false)
	if err != nil || res.ModelRound != rounds {
		t.Fatalf("post-soak classify: round %d err %v", res.ModelRound, err)
	}
}
