// Package serve is the model-serving plane: it holds a trained model as an
// immutable nn.Inferencer snapshot, answers node-classification queries over
// a micro-batching request path, reuses repeated-node logits through a
// sharded LRU, and hot-swaps to a new checkpoint with an RCU pointer swap —
// in-flight batches finish on the model they started with and no request is
// ever dropped. See DESIGN.md §15.
package serve

// Telemetry keys follow the pkg/snake_case convention and are checked by
// fedomdvet's telemetrykey analyzer at every call site; keep them
// compile-time constants.
const (
	// MetricRequests counts classify requests accepted into the queue.
	MetricRequests = "serve/requests"
	// MetricErrors counts requests that finished with an error (bad node
	// IDs, no model loaded, queue overload).
	MetricErrors = "serve/errors"
	// MetricOverload counts requests rejected because the queue was full —
	// a subset of MetricErrors worth its own alarm.
	MetricOverload = "serve/overload"
	// MetricBatches counts executed forward batches; requests ÷ batches is
	// the realised coalescing factor.
	MetricBatches = "serve/batches"
	// MetricBatchSize is the per-batch node-count histogram.
	MetricBatchSize = "serve/batch_size"
	// MetricRequestSeconds is the per-request latency histogram, measured
	// from queue admission to completion (includes linger).
	MetricRequestSeconds = "serve/request_seconds"
	// MetricBatchSeconds is the per-batch forward-pass span timer.
	MetricBatchSeconds = "serve/batch_seconds"
	// MetricCacheHits / MetricCacheMisses measure the logit LRU.
	MetricCacheHits   = "serve/cache_hits"
	MetricCacheMisses = "serve/cache_misses"
	// MetricSwaps counts model hot-swaps; MetricSwapErrors counts
	// checkpoint loads that failed (the old model keeps serving).
	MetricSwaps      = "serve/swaps"
	MetricSwapErrors = "serve/swap_errors"
	// MetricQueueDepth gauges the request-queue backlog at batch formation.
	MetricQueueDepth = "serve/queue_depth"
)

// Serve health rule names (healthz events; same level taxonomy as obs).
const (
	RuleNoModel   = "no_model"
	RuleErrorRate = "error_rate"
	RuleQueueFull = "queue_full"
)
