package serve

import (
	"container/list"
	"sync"
)

// logitCache is a sharded LRU from (model version, node) to that node's
// logit row. Sharding by node ID keeps lock contention off the batch path;
// versioned keys make swap invalidation free — entries written under an old
// model can never be hit again and simply age out, while Reset drops them
// eagerly so a swap also releases the memory.
type logitCache struct {
	shards   []cacheShard
	perShard int
}

type cacheKey struct {
	version uint64
	node    int
}

type cacheEntry struct {
	key    cacheKey
	logits []float64
}

type cacheShard struct {
	mu      sync.Mutex
	order   *list.List // front = most recent
	entries map[cacheKey]*list.Element
}

const cacheShardCount = 16

// newLogitCache builds a cache holding about capacity rows in total.
// capacity <= 0 returns nil; a nil cache misses everything and stores
// nothing, so the service can hold one unconditionally.
func newLogitCache(capacity int) *logitCache {
	if capacity <= 0 {
		return nil
	}
	per := capacity / cacheShardCount
	if per < 1 {
		per = 1
	}
	c := &logitCache{shards: make([]cacheShard, cacheShardCount), perShard: per}
	for i := range c.shards {
		c.shards[i].order = list.New()
		c.shards[i].entries = make(map[cacheKey]*list.Element)
	}
	return c
}

func (c *logitCache) shard(node int) *cacheShard {
	return &c.shards[uint(node)%uint(len(c.shards))]
}

// Get returns the cached logit row for (version, node). The returned slice
// is shared and must be treated as read-only.
func (c *logitCache) Get(version uint64, node int) ([]float64, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shard(node)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[cacheKey{version, node}]
	if !ok {
		return nil, false
	}
	sh.order.MoveToFront(el)
	return el.Value.(*cacheEntry).logits, true
}

// Put stores logits for (version, node), evicting the shard's least
// recently used row when full. The slice is stored as-is (callers hand over
// ownership of a fresh copy).
func (c *logitCache) Put(version uint64, node int, logits []float64) {
	if c == nil {
		return
	}
	sh := c.shard(node)
	key := cacheKey{version, node}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		el.Value.(*cacheEntry).logits = logits
		sh.order.MoveToFront(el)
		return
	}
	for sh.order.Len() >= c.perShard {
		oldest := sh.order.Back()
		sh.order.Remove(oldest)
		delete(sh.entries, oldest.Value.(*cacheEntry).key)
	}
	sh.entries[key] = sh.order.PushFront(&cacheEntry{key: key, logits: logits})
}

// Reset drops every entry — called on model swap so stale rows release
// their memory immediately rather than aging out.
func (c *logitCache) Reset() {
	if c == nil {
		return
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.order.Init()
		for k := range sh.entries {
			delete(sh.entries, k)
		}
		sh.mu.Unlock()
	}
}

// Len reports the total number of cached rows (tests and healthz).
func (c *logitCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}
