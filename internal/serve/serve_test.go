package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"fedomd/internal/fed"
	"fedomd/internal/graph"
	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/sparse"
	"fedomd/internal/telemetry"
)

// testGraph builds an n-node ring whose features one-hot encode node%classes
// — with the crafted MLP checkpoints below, every node's expected class is
// computable in closed form.
func testGraph(t *testing.T, n, classes int) *graph.Graph {
	t.Helper()
	feats := mat.New(n, classes)
	labels := make([]int, n)
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		feats.Set(i, i%classes, 1)
		labels[i] = i % classes
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	g, err := graph.New(feats, labels, classes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mlpCheckpoint crafts a single-layer MLP whose weight matrix is the
// identity shifted by round: a node with feature e_j gets class (j+round) %
// classes. Integer weights keep the arithmetic exact, so responses are
// fully deterministic across machines.
func mlpCheckpoint(t *testing.T, classes, round int) *fed.Checkpoint {
	t.Helper()
	m, err := nn.NewMLP(rand.New(rand.NewSource(1)), []int{classes, classes}, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := m.Params().Get("w0")
	w.Fill(0)
	for j := 0; j < classes; j++ {
		w.Set(j, (j+round)%classes, 1)
	}
	m.Params().Get("b0").Fill(0)
	spec := &fed.ModelSpec{
		SpecVersion: fed.SpecVersion, Model: "mlp",
		Features: classes, Classes: classes, Dims: []int{classes, classes},
	}
	return fed.NewModelCheckpoint(round, m.Params(), spec)
}

// expectedClass is the closed-form answer for mlpCheckpoint models.
func expectedClass(node, classes, round int) int {
	return (node%classes + round) % classes
}

func swapFromCheckpoint(t *testing.T, s *Service, ck *fed.Checkpoint, g *graph.Graph) {
	t.Helper()
	inf, err := InferencerFromCheckpoint(ck, g)
	if err != nil {
		t.Fatal(err)
	}
	s.Swap(inf, ck.Round)
}

func TestServeNoModel(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	if _, err := s.Classify(context.Background(), []int{0}, false); err != ErrNoModel {
		t.Fatalf("classify without model: %v, want ErrNoModel", err)
	}
	if s.Healthy() {
		t.Fatal("service healthy without a model")
	}
	found := false
	for _, e := range s.Health() {
		if e.Rule == RuleNoModel {
			found = true
		}
	}
	if !found {
		t.Fatalf("no_model rule missing from %v", s.Health())
	}
}

func TestServeAnswersMatchModel(t *testing.T) {
	const n, classes = 20, 3
	g := testGraph(t, n, classes)
	s := New(Config{MaxBatch: 8})
	defer s.Close()
	swapFromCheckpoint(t, s, mlpCheckpoint(t, classes, 4), g)
	nodes := []int{0, 5, 19, 5, 2}
	res, err := s.Classify(context.Background(), nodes, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelRound != 4 {
		t.Fatalf("model round %d want 4", res.ModelRound)
	}
	for i, node := range nodes {
		if want := expectedClass(node, classes, 4); res.Classes[i] != want {
			t.Fatalf("node %d class %d want %d", node, res.Classes[i], want)
		}
		if len(res.Logits[i]) != classes {
			t.Fatalf("node %d logit width %d", node, len(res.Logits[i]))
		}
	}
	if _, err := s.Classify(context.Background(), []int{n}, false); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := s.Classify(context.Background(), nil, false); err == nil {
		t.Fatal("empty request accepted")
	}
}

// TestServeCoalesces pins the perf mechanism: concurrent single-node
// requests must share forward batches, not run one pass each.
func TestServeCoalesces(t *testing.T) {
	const n, classes, requests = 24, 3, 64
	g := testGraph(t, n, classes)
	agg := telemetry.NewAggregator()
	s := New(Config{MaxBatch: 8, Linger: 20 * time.Millisecond, Recorder: agg})
	defer s.Close()
	swapFromCheckpoint(t, s, mlpCheckpoint(t, classes, 1), g)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			res, err := s.Classify(context.Background(), []int{node}, false)
			if err != nil {
				t.Errorf("classify: %v", err)
				return
			}
			if want := expectedClass(node, classes, 1); res.Classes[0] != want {
				t.Errorf("node %d class %d want %d", node, res.Classes[0], want)
			}
		}(i % n)
	}
	wg.Wait()
	batches := agg.Counter(MetricBatches)
	if batches == 0 || batches*4 > requests {
		t.Fatalf("%d requests ran in %d batches; coalescing is not happening", requests, batches)
	}
	if got := agg.Counter(MetricRequests); got != requests {
		t.Fatalf("request counter %d want %d", got, requests)
	}
}

func TestServeCacheReuse(t *testing.T) {
	const n, classes = 12, 3
	g := testGraph(t, n, classes)
	agg := telemetry.NewAggregator()
	s := New(Config{MaxBatch: 4, CacheSize: 256, Recorder: agg})
	defer s.Close()
	swapFromCheckpoint(t, s, mlpCheckpoint(t, classes, 2), g)
	first, err := s.Classify(context.Background(), []int{7, 7, 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	// The duplicate inside one batch shares the freshly computed row.
	if agg.Counter(MetricCacheHits) != 1 {
		t.Fatalf("cache hits %d want 1 (intra-batch dedupe)", agg.Counter(MetricCacheHits))
	}
	second, err := s.Classify(context.Background(), []int{7}, true)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Counter(MetricCacheMisses) != 2 {
		t.Fatalf("cache misses %d want 2 (second request should be all hits)", agg.Counter(MetricCacheMisses))
	}
	if agg.Counter(MetricCacheHits) != 2 {
		t.Fatalf("cache hits %d want 2", agg.Counter(MetricCacheHits))
	}
	if second.Classes[0] != first.Classes[0] {
		t.Fatal("cached answer diverges from computed answer")
	}
}

// TestSwapChangesAnswersAndInvalidatesCache is the RCU contract: after Swap,
// answers come from the new model even for nodes the old model had cached.
func TestSwapChangesAnswersAndInvalidatesCache(t *testing.T) {
	const n, classes = 12, 3
	g := testGraph(t, n, classes)
	s := New(Config{MaxBatch: 4, CacheSize: 256})
	defer s.Close()
	swapFromCheckpoint(t, s, mlpCheckpoint(t, classes, 0), g)
	before, err := s.Classify(context.Background(), []int{4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if before.ModelRound != 0 || before.Classes[0] != expectedClass(4, classes, 0) {
		t.Fatalf("pre-swap answer wrong: %+v", before)
	}
	if s.cache.Len() == 0 {
		t.Fatal("nothing cached")
	}
	swapFromCheckpoint(t, s, mlpCheckpoint(t, classes, 1), g)
	if s.cache.Len() != 0 {
		t.Fatal("swap did not invalidate the cache")
	}
	after, err := s.Classify(context.Background(), []int{4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if after.ModelRound != 1 || after.Classes[0] != expectedClass(4, classes, 1) {
		t.Fatalf("post-swap answer stale: %+v", after)
	}
}

// TestServeUnbatchedMode pins that MaxBatch <= 1 serves correctly through
// the same path with one batch per request.
func TestServeUnbatchedMode(t *testing.T) {
	const n, classes = 10, 3
	g := testGraph(t, n, classes)
	agg := telemetry.NewAggregator()
	s := New(Config{MaxBatch: 1, Recorder: agg})
	defer s.Close()
	swapFromCheckpoint(t, s, mlpCheckpoint(t, classes, 3), g)
	for i := 0; i < 5; i++ {
		res, err := s.Classify(context.Background(), []int{i}, false)
		if err != nil {
			t.Fatal(err)
		}
		if want := expectedClass(i, classes, 3); res.Classes[0] != want {
			t.Fatalf("node %d class %d want %d", i, res.Classes[0], want)
		}
	}
	if b := agg.Counter(MetricBatches); b != 5 {
		t.Fatalf("unbatched mode ran %d batches for 5 requests", b)
	}
}

// TestCloseDrains pins the zero-dropped-requests shutdown contract: every
// request admitted before Close completes with an answer.
func TestCloseDrains(t *testing.T) {
	const n, classes = 16, 3
	g := testGraph(t, n, classes)
	s := New(Config{MaxBatch: 4, Linger: 5 * time.Millisecond})
	swapFromCheckpoint(t, s, mlpCheckpoint(t, classes, 1), g)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			if _, err := s.Classify(context.Background(), []int{node}, false); err != nil && err != ErrClosed {
				errs <- err
			}
		}(i % n)
	}
	time.Sleep(2 * time.Millisecond)
	s.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("request dropped across Close: %v", err)
	}
	if _, err := s.Classify(context.Background(), []int{0}, false); err != ErrClosed {
		t.Fatalf("post-close classify: %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestBuildInferencerSpecs covers the non-MLP rebuild paths against the
// tape forward.
func TestBuildInferencerSpecs(t *testing.T) {
	const n, classes = 18, 3
	g := testGraph(t, n, classes)
	rng := rand.New(rand.NewSource(5))
	feats := g.NumFeatures()

	om, err := nn.NewOrthoGCN(rng, feats, 6, classes, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	gcn, err := nn.NewGCN(rng, []int{feats, 5, classes}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sparse.GCNNormalize(g.Adj)
	if err != nil {
		t.Fatal(err)
	}
	sgc, err := nn.NewSGC(rng, s, g.Features, classes, 2)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		m    nn.Model
		spec *fed.ModelSpec
	}{
		{"fedomd", om, &fed.ModelSpec{Model: "fedomd", Features: feats, Classes: classes,
			Hidden: 6, HiddenLayers: 2, SpectralBound: true}},
		{"gcn", gcn, &fed.ModelSpec{Model: "gcn", Dims: []int{feats, 5, classes}}},
		{"sgc", sgc, &fed.ModelSpec{Model: "sgc", Classes: classes, Hops: 2}},
	}
	for _, tc := range cases {
		ck := fed.NewModelCheckpoint(9, tc.m.Params(), tc.spec)
		inf, err := InferencerFromCheckpoint(ck, g)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		// Reference: an inferencer folded directly from the live model.
		direct, err := nn.NewInferencer(tc.m, nn.Input{S: s, X: g.Features})
		if err != nil {
			t.Fatal(err)
		}
		got, want := mat.New(n, classes), mat.New(n, classes)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		if err := inf.InferInto(got, idx); err != nil {
			t.Fatal(err)
		}
		if err := direct.InferInto(want, idx); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < classes; j++ {
				d := got.At(i, j) - want.At(i, j)
				if d > 1e-9 || d < -1e-9 {
					t.Fatalf("%s: rebuilt model diverges at (%d,%d): %g vs %g",
						tc.name, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}

	if _, err := BuildInferencer(nil, om.Params(), g); err != ErrNoSpec {
		t.Fatalf("nil spec: %v, want ErrNoSpec", err)
	}
	bad := &fed.ModelSpec{Model: "fedomd", Features: feats + 1, Classes: classes, Hidden: 6, HiddenLayers: 2}
	if _, err := BuildInferencer(bad, om.Params(), g); err == nil {
		t.Fatal("feature-mismatched spec accepted")
	}
	if _, err := BuildInferencer(&fed.ModelSpec{Model: "unknown"}, om.Params(), g); err == nil {
		t.Fatal("unknown model kind accepted")
	}
}
