package serve

import (
	"errors"
	"fmt"
	"math/rand"

	"fedomd/internal/fed"
	"fedomd/internal/graph"
	"fedomd/internal/nn"
	"fedomd/internal/sparse"
)

// ErrNoSpec means the checkpoint predates the model-config header and the
// caller did not supply an architecture out of band.
var ErrNoSpec = errors.New("serve: checkpoint has no model spec (pre-header snapshot); supply the architecture explicitly")

// BuildInferencer reconstructs the model a spec describes, loads params into
// it, and folds it with the graph into a serving snapshot. The rng seeding
// the constructors is irrelevant — every weight is overwritten by the
// checkpointed params.
func BuildInferencer(spec *fed.ModelSpec, params *nn.Params, g *graph.Graph) (*nn.Inferencer, error) {
	if spec == nil {
		return nil, ErrNoSpec
	}
	if spec.Features > 0 && g.NumFeatures() != spec.Features {
		return nil, fmt.Errorf("serve: graph has %d features, model wants %d", g.NumFeatures(), spec.Features)
	}
	if spec.Classes > 0 && g.NumClasses != spec.Classes {
		return nil, fmt.Errorf("serve: graph has %d classes, model wants %d", g.NumClasses, spec.Classes)
	}
	rng := rand.New(rand.NewSource(1))
	var (
		m   nn.Model
		err error
	)
	switch spec.Model {
	case "fedomd":
		var om *nn.OrthoGCN
		om, err = nn.NewOrthoGCN(rng, spec.Features, spec.Hidden, spec.Classes, spec.HiddenLayers, spec.Dropout)
		if err == nil {
			om.SetSpectralBound(spec.SpectralBound)
			m = om
		}
	case "mlp":
		m, err = nn.NewMLP(rng, spec.Dims, spec.Dropout)
	case "gcn":
		m, err = nn.NewGCN(rng, spec.Dims, spec.Dropout)
	case "sgc":
		s, nerr := sparse.GCNNormalize(g.Adj)
		if nerr != nil {
			return nil, fmt.Errorf("serve: normalizing adjacency: %w", nerr)
		}
		m, err = nn.NewSGC(rng, s, g.Features, spec.Classes, spec.Hops)
	default:
		return nil, fmt.Errorf("serve: unknown model kind %q in spec", spec.Model)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: rebuilding %s model: %w", spec.Model, err)
	}
	if err := m.Params().CopyFrom(params); err != nil {
		return nil, fmt.Errorf("serve: checkpoint params do not fit a %s model built from its own spec: %w", spec.Model, err)
	}
	in := nn.Input{X: g.Features}
	if m.NeedsGraph() {
		s, err := sparse.GCNNormalize(g.Adj)
		if err != nil {
			return nil, fmt.Errorf("serve: normalizing adjacency: %w", err)
		}
		in.S = s
	}
	return nn.NewInferencer(m, in)
}

// InferencerFromCheckpoint is the whole load path: params + header out of
// the checkpoint, model rebuilt, graph folded in.
func InferencerFromCheckpoint(ck *fed.Checkpoint, g *graph.Graph) (*nn.Inferencer, error) {
	params, err := ck.GlobalParams()
	if err != nil {
		return nil, err
	}
	return BuildInferencer(ck.Spec, params, g)
}
