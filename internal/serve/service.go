package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/obs"
	"fedomd/internal/telemetry"
)

// Service errors surfaced to callers (and mapped to HTTP statuses).
var (
	// ErrNoModel means no checkpoint has been loaded yet.
	ErrNoModel = errors.New("serve: no model loaded")
	// ErrClosed means the service has been shut down.
	ErrClosed = errors.New("serve: service closed")
	// ErrOverloaded means the request queue was full.
	ErrOverloaded = errors.New("serve: request queue full")
)

// Config tunes the service.
type Config struct {
	// MaxBatch bounds the nodes coalesced into one forward pass; values
	// <= 1 disable coalescing (every request is its own batch) — the
	// "unbatched" baseline the bench compares against. Default 64.
	MaxBatch int
	// Linger is how long batch formation waits for more requests after the
	// first, when the batch is not yet full. Default 1ms.
	Linger time.Duration
	// CacheSize is the total logit-LRU capacity in rows; 0 disables the
	// cache.
	CacheSize int
	// QueueDepth is the request-queue capacity; admission beyond it fails
	// fast with ErrOverloaded. Default 1024.
	QueueDepth int
	// Recorder receives serve/* telemetry. Nil disables it for free.
	Recorder telemetry.Recorder
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.Linger <= 0 {
		c.Linger = time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	return c
}

// modelState is one RCU generation: an immutable inferencer snapshot plus
// its identity. Batches load it once and run entirely against that
// generation, so a concurrent swap never tears a forward pass.
type modelState struct {
	inf     *nn.Inferencer
	round   int
	version uint64
}

// request is one classify call in flight through the batcher.
type request struct {
	nodes      []int
	wantLogits bool
	start      time.Time

	classes []int       // filled by the batch
	logits  [][]float64 // filled when wantLogits (rows shared with the cache)
	round   int
	err     error
	done    chan struct{}
}

// Result is one classify call's outcome.
type Result struct {
	// ModelRound is the training round of the model that answered.
	ModelRound int
	// Classes has the argmax class per queried node, aligned with the
	// request's node order.
	Classes []int
	// Logits has the full logit row per node when requested; rows may be
	// shared with the service's cache and must be treated as read-only.
	Logits [][]float64
}

// Service is the serving plane: a micro-batching classifier over an
// RCU-swappable model snapshot. Safe for concurrent use.
type Service struct {
	cfg   Config
	rec   telemetry.Recorder
	cache *logitCache

	state   atomic.Pointer[modelState]
	version atomic.Uint64

	// closeMu serialises queue admission against Close: Classify sends
	// under RLock, Close flips closed under Lock, so every admitted request
	// is in the queue before the drain starts and none arrive after.
	closeMu sync.RWMutex
	closed  bool
	ch      chan *request
	stop    chan struct{}
	drained chan struct{}

	// Lifetime totals for health rules (the Recorder interface is
	// write-only, so the service keeps its own books).
	nRequests atomic.Int64
	nErrors   atomic.Int64
}

// New starts a service with no model loaded; Swap or a Watcher supplies one.
// The caller must Close it.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		rec:     telemetry.Or(cfg.Recorder),
		cache:   newLogitCache(cfg.CacheSize),
		ch:      make(chan *request, cfg.QueueDepth),
		stop:    make(chan struct{}),
		drained: make(chan struct{}),
	}
	go s.run()
	return s
}

// Swap atomically replaces the served model (RCU: readers holding the old
// generation finish on it) and invalidates the logit cache. inf must be a
// frozen snapshot (nn.NewInferencer); round tags responses.
func (s *Service) Swap(inf *nn.Inferencer, round int) {
	st := &modelState{inf: inf, round: round, version: s.version.Add(1)}
	s.state.Store(st)
	s.cache.Reset()
	s.rec.Count(MetricSwaps, 1)
}

// ModelRound returns the served model's training round, false when no model
// is loaded.
func (s *Service) ModelRound() (int, bool) {
	st := s.state.Load()
	if st == nil {
		return 0, false
	}
	return st.round, true
}

// Classify queues the nodes for the next batch and blocks until it runs (or
// ctx expires — the batch still completes, the caller just stops waiting).
func (s *Service) Classify(ctx context.Context, nodes []int, wantLogits bool) (Result, error) {
	if len(nodes) == 0 {
		return Result{}, fmt.Errorf("serve: empty node list")
	}
	req := &request{
		nodes:      nodes,
		wantLogits: wantLogits,
		start:      time.Now(),
		done:       make(chan struct{}),
	}
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return Result{}, ErrClosed
	}
	select {
	case s.ch <- req:
		s.closeMu.RUnlock()
	default:
		s.closeMu.RUnlock()
		s.nRequests.Add(1)
		s.nErrors.Add(1)
		s.rec.Count(MetricRequests, 1)
		s.rec.Count(MetricOverload, 1)
		s.rec.Count(MetricErrors, 1)
		return Result{}, ErrOverloaded
	}
	s.rec.Count(MetricRequests, 1)
	s.nRequests.Add(1)
	select {
	case <-req.done:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	if req.err != nil {
		return Result{}, req.err
	}
	return Result{ModelRound: req.round, Classes: req.classes, Logits: req.logits}, nil
}

// Close stops the batcher after draining every admitted request — zero
// dropped requests is part of the contract. Idempotent.
func (s *Service) Close() {
	s.closeMu.Lock()
	already := s.closed
	s.closed = true
	s.closeMu.Unlock()
	if already {
		<-s.drained
		return
	}
	close(s.stop)
	<-s.drained
}

// run is the batcher goroutine: take one request, linger briefly for more
// (up to MaxBatch nodes), then execute the coalesced batch. MaxBatch <= 1
// short-circuits the linger so the unbatched baseline measures the same
// code path minus coalescing.
func (s *Service) run() {
	defer close(s.drained)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	batch := make([]*request, 0, 64)
	for {
		select {
		case <-s.stop:
			// Drain: everything admitted before Close is already in the
			// queue (see closeMu), so empty-queue means done.
			for {
				select {
				case r := <-s.ch:
					s.execute([]*request{r})
				default:
					return
				}
			}
		case r := <-s.ch:
			batch = append(batch[:0], r)
			n := len(r.nodes)
			if s.cfg.MaxBatch > 1 && n < s.cfg.MaxBatch {
				timer.Reset(s.cfg.Linger)
			collect:
				for n < s.cfg.MaxBatch {
					select {
					case r2 := <-s.ch:
						batch = append(batch, r2)
						n += len(r2.nodes)
					case <-timer.C:
						break collect
					case <-s.stop:
						break collect
					}
				}
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
			}
			s.rec.Gauge(MetricQueueDepth, float64(len(s.ch)))
			s.execute(batch)
		}
	}
}

// execute runs one coalesced batch against the current model generation:
// cache probe per node, one pooled InferInto over the misses, scatter back.
func (s *Service) execute(batch []*request) {
	st := s.state.Load()
	if st == nil {
		for _, r := range batch {
			s.finish(r, ErrNoModel)
		}
		return
	}
	classes := st.inf.Classes()
	limit := st.inf.Nodes()

	sp := telemetry.StartSpan(s.rec, MetricBatchSeconds)
	type missSlot struct {
		r   *request
		pos int // index into r.nodes
		row int // row in the miss batch
	}
	var (
		missIdx   []int
		slots     []missSlot
		missOf    map[int]int // node -> row, dedupes repeats within the batch
		hits      int64
		misses    int64
		nodeCount int
	)
	for _, r := range batch {
		bad := false
		for _, id := range r.nodes {
			if id < 0 || id >= limit {
				r.err = fmt.Errorf("serve: node %d out of range [0,%d)", id, limit)
				bad = true
				break
			}
		}
		if bad {
			continue
		}
		nodeCount += len(r.nodes)
		r.round = st.round
		r.classes = make([]int, len(r.nodes))
		if r.wantLogits {
			r.logits = make([][]float64, len(r.nodes))
		}
		for pos, id := range r.nodes {
			if row, ok := s.cache.Get(st.version, id); ok {
				hits++
				r.classes[pos] = argmax(row)
				if r.wantLogits {
					r.logits[pos] = row
				}
				continue
			}
			// Dedupe within the batch: the same node queried twice costs
			// one forward row, like a cache hit that hasn't landed yet.
			if missOf == nil {
				missOf = make(map[int]int)
			}
			row, seen := missOf[id]
			if !seen {
				row = len(missIdx)
				missIdx = append(missIdx, id)
				missOf[id] = row
				misses++
			} else {
				hits++
			}
			slots = append(slots, missSlot{r: r, pos: pos, row: row})
		}
	}
	if len(missIdx) > 0 {
		out := mat.GetDense(len(missIdx), classes)
		if err := st.inf.InferInto(out, missIdx); err != nil {
			// Bounds were pre-checked, so this is a shape-level bug;
			// surface it on every affected request rather than panicking
			// the batcher.
			for _, r := range batch {
				if r.err == nil {
					r.err = err
				}
			}
		} else {
			rows := make([][]float64, len(missIdx))
			for i, id := range missIdx {
				rows[i] = append([]float64(nil), out.Row(i)...)
				s.cache.Put(st.version, id, rows[i])
			}
			for _, sl := range slots {
				row := rows[sl.row]
				sl.r.classes[sl.pos] = argmax(row)
				if sl.r.wantLogits {
					sl.r.logits[sl.pos] = row
				}
			}
		}
		mat.PutDense(out)
	}
	sp.End()
	s.rec.Count(MetricBatches, 1)
	s.rec.Observe(MetricBatchSize, float64(nodeCount))
	if hits > 0 {
		s.rec.Count(MetricCacheHits, hits)
	}
	if misses > 0 {
		s.rec.Count(MetricCacheMisses, misses)
	}
	for _, r := range batch {
		s.finish(r, r.err)
	}
}

func (s *Service) finish(r *request, err error) {
	r.err = err
	if err != nil {
		s.nErrors.Add(1)
		s.rec.Count(MetricErrors, 1)
	} else {
		s.rec.Observe(MetricRequestSeconds, time.Since(r.start).Seconds())
	}
	close(r.done)
}

// Health evaluates the serve-side health rules: no model loaded (critical),
// lifetime error rate (warn ≥10% over ≥50 requests), queue saturation
// (warn). The events use the obs level taxonomy so they render alongside
// training health.
func (s *Service) Health() []obs.HealthEvent {
	var events []obs.HealthEvent
	round, ok := s.ModelRound()
	if !ok {
		events = append(events, obs.HealthEvent{
			Rule: RuleNoModel, Level: obs.LevelCritical,
			Message: "no model loaded; waiting for a checkpoint",
		})
	}
	req, errs := s.nRequests.Load(), s.nErrors.Load()
	if req >= 50 {
		rate := float64(errs) / float64(req)
		if rate >= 0.1 {
			events = append(events, obs.HealthEvent{
				Round: round, Rule: RuleErrorRate, Level: obs.LevelWarn,
				Message:   fmt.Sprintf("%.0f%% of %d requests errored", 100*rate, req),
				Value:     rate,
				Threshold: 0.1,
			})
		}
	}
	if depth := len(s.ch); depth >= cap(s.ch) {
		events = append(events, obs.HealthEvent{
			Round: round, Rule: RuleQueueFull, Level: obs.LevelWarn,
			Message:   fmt.Sprintf("request queue full (%d)", depth),
			Value:     float64(depth),
			Threshold: float64(cap(s.ch)),
		})
	}
	return events
}

// Healthy reports whether no critical health rule fires — the /healthz
// verdict.
func (s *Service) Healthy() bool {
	for _, e := range s.Health() {
		if e.Level == obs.LevelCritical {
			return false
		}
	}
	return true
}

func argmax(row []float64) int {
	best := 0
	for j, v := range row {
		if v > row[best] {
			best = j
		}
	}
	return best
}
