package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"fedomd/internal/obs"
)

// ClassifyRequest is the POST /v1/classify body.
type ClassifyRequest struct {
	// Nodes are the node IDs to classify, in response order.
	Nodes []int `json:"nodes"`
	// Logits asks for the full logit rows alongside the argmax classes.
	Logits bool `json:"logits,omitempty"`
}

// ClassifyResponse is the classify reply. The JSON shape is pinned by
// TestHTTPGolden — changing it is an API break.
type ClassifyResponse struct {
	ModelRound int          `json:"model_round"`
	Results    []NodeResult `json:"results"`
}

// NodeResult is one node's answer.
type NodeResult struct {
	Node   int       `json:"node"`
	Class  int       `json:"class"`
	Logits []float64 `json:"logits,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

type healthResponse struct {
	Status     string            `json:"status"`
	ModelRound *int              `json:"model_round,omitempty"`
	Events     []obs.HealthEvent `json:"events,omitempty"`
}

// Handler serves the classify API: POST /v1/classify and GET /healthz.
// Metrics exposition stays with the caller (obs.MetricsHandler over the
// same aggregator the service records into).
func Handler(svc *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/classify", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
			return
		}
		var req ClassifyRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{"bad request body: " + err.Error()})
			return
		}
		if len(req.Nodes) == 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{"nodes must be non-empty"})
			return
		}
		res, err := svc.Classify(r.Context(), req.Nodes, req.Logits)
		if err != nil {
			writeJSON(w, statusFor(err), errorResponse{err.Error()})
			return
		}
		resp := ClassifyResponse{ModelRound: res.ModelRound, Results: make([]NodeResult, len(req.Nodes))}
		for i, node := range req.Nodes {
			nr := NodeResult{Node: node, Class: res.Classes[i]}
			if req.Logits {
				nr.Logits = res.Logits[i]
			}
			resp.Results[i] = nr
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		events := svc.Health()
		h := healthResponse{Status: "ok", Events: events}
		code := http.StatusOK
		if round, ok := svc.ModelRound(); ok {
			h.ModelRound = &round
		}
		for _, e := range events {
			if e.Level == obs.LevelCritical {
				h.Status = obs.LevelCritical
				code = http.StatusServiceUnavailable
				break
			} else if e.Level == obs.LevelWarn {
				h.Status = obs.LevelWarn
			}
		}
		writeJSON(w, code, h)
	})
	return mux
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNoModel):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
