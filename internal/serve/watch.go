package serve

import (
	"fmt"
	"os"
	"sync"
	"time"

	"fedomd/internal/fed"
	"fedomd/internal/graph"
	"fedomd/internal/telemetry"
)

// Watcher polls a checkpoint file and hot-swaps the service's model whenever
// the file changes (mtime or size). Load errors leave the current model
// serving and are counted under serve/swap_errors — a torn or incompatible
// checkpoint must never take the service down.
type Watcher struct {
	svc      *Service
	path     string
	interval time.Duration
	g        *graph.Graph
	rec      telemetry.Recorder
	onErr    func(error)

	stop chan struct{}
	done chan struct{}

	mu       sync.Mutex
	lastMod  time.Time
	lastSize int64
	swaps    int
}

// WatchCheckpoint starts polling path every interval, swapping svc onto each
// new checkpoint it finds (including one already present at start). onErr
// receives load failures and may be nil. The caller must Stop the watcher.
func WatchCheckpoint(svc *Service, path string, interval time.Duration, g *graph.Graph, onErr func(error)) *Watcher {
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	w := &Watcher{
		svc:      svc,
		path:     path,
		interval: interval,
		g:        g,
		rec:      svc.rec,
		onErr:    onErr,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go w.run()
	return w
}

// Stop halts polling; the last swapped model keeps serving.
func (w *Watcher) Stop() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

// Poll checks the file once, swapping if it changed. Exposed so tests and
// the SIGHUP path can force a reload without waiting out the interval.
func (w *Watcher) Poll() error {
	info, err := os.Stat(w.path)
	if err != nil {
		return nil // not an error: the first checkpoint may not exist yet
	}
	w.mu.Lock()
	unchanged := info.ModTime().Equal(w.lastMod) && info.Size() == w.lastSize
	w.mu.Unlock()
	if unchanged {
		return nil
	}
	ck, err := fed.LoadCheckpointFile(w.path)
	if err != nil {
		return fmt.Errorf("serve: loading checkpoint %s: %w", w.path, err)
	}
	inf, err := InferencerFromCheckpoint(ck, w.g)
	if err != nil {
		return err
	}
	w.svc.Swap(inf, ck.Round)
	w.mu.Lock()
	w.lastMod, w.lastSize = info.ModTime(), info.Size()
	w.swaps++
	w.mu.Unlock()
	return nil
}

// Swaps reports how many successful model swaps the watcher has performed.
func (w *Watcher) Swaps() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.swaps
}

func (w *Watcher) run() {
	defer close(w.done)
	tick := time.NewTicker(w.interval)
	defer tick.Stop()
	for {
		if err := w.Poll(); err != nil {
			w.rec.Count(MetricSwapErrors, 1)
			if w.onErr != nil {
				w.onErr(err)
			}
		}
		select {
		case <-w.stop:
			return
		case <-tick.C:
		}
	}
}
