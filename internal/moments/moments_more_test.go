package moments

import (
	"math"
	"math/rand"
	"testing"

	"fedomd/internal/ad"
	"fedomd/internal/mat"
)

func TestCMDLossSquaredFormula(t *testing.T) {
	// Hand-checkable 1-column case: z = [0, 1], global mean 0.75,
	// global order-2 central moment 0.1875 (that of [0.5, 1]).
	z, _ := mat.NewFromRows([][]float64{{0}, {1}})
	gm, _ := mat.NewFromRows([][]float64{{0.75}})
	gc2, _ := mat.NewFromRows([][]float64{{0.1875}})
	tp := ad.NewTape()
	n := tp.Param(z)
	loss, err := CMDLossSquared(tp, n, gm, []*mat.Dense{gc2}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// mean(z)=0.5 ⇒ (0.5−0.75)² = 0.0625; C₂(z)=0.25 ⇒ (0.25−0.1875)² =
	// 0.00390625. Width 1, dim 1 ⇒ total 0.06640625.
	want := 0.0625 + 0.00390625
	if got := loss.Value.At(0, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("squared CMD = %v want %v", got, want)
	}
}

func TestCMDLossSquaredSharedMinimiser(t *testing.T) {
	// Both CMD forms are zero exactly when the statistics match.
	rng := rand.New(rand.NewSource(1))
	z := mat.RandUniform(rng, 60, 3, 0, 1)
	s, err := Compute(z, 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(*ad.Tape, *ad.Node) (*ad.Node, error){
		"plain": func(tp *ad.Tape, n *ad.Node) (*ad.Node, error) {
			return CMDLoss(tp, n, s.Mean, s.Central, 0, 1)
		},
		"squared": func(tp *ad.Tape, n *ad.Node) (*ad.Node, error) {
			return CMDLossSquared(tp, n, s.Mean, s.Central, 0, 1)
		},
	} {
		tp := ad.NewTape()
		n := tp.Param(z)
		loss, err := f(tp, n)
		if err != nil {
			t.Fatal(err)
		}
		if got := loss.Value.At(0, 0); got > 1e-20 {
			t.Fatalf("%s CMD at its minimiser = %v", name, got)
		}
	}
}

func TestSquaredGradientVanishesNearMinimum(t *testing.T) {
	// The squared form's gradient shrinks with the discrepancy; the plain
	// form's does not — the stability property DESIGN.md §1.1 relies on.
	rng := rand.New(rand.NewSource(2))
	base := mat.RandUniform(rng, 80, 2, 0.3, 0.7)
	s, err := Compute(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	gradNorm := func(shift float64, squared bool) float64 {
		z := mat.Apply(base, func(x float64) float64 { return x + shift })
		tp := ad.NewTape()
		n := tp.Param(z)
		var loss *ad.Node
		if squared {
			loss, err = CMDLossSquared(tp, n, s.Mean, s.Central, 0, 1)
		} else {
			loss, err = CMDLoss(tp, n, s.Mean, s.Central, 0, 1)
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		return mat.FrobNorm(n.Grad)
	}
	// Squared: tiny shift ⇒ much smaller gradient than large shift.
	if g1, g2 := gradNorm(1e-3, true), gradNorm(0.3, true); g1 > g2/10 {
		t.Fatalf("squared gradient not vanishing: %v vs %v", g1, g2)
	}
	// Plain: gradient norm stays the same order regardless of shift.
	if g1, g2 := gradNorm(1e-3, false), gradNorm(0.3, false); g1 < g2/10 {
		t.Fatalf("plain gradient unexpectedly vanished: %v vs %v", g1, g2)
	}
}
