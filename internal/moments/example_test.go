package moments_test

import (
	"fmt"

	"fedomd/internal/mat"
	"fedomd/internal/moments"
)

// Example reproduces Algorithm 1's 2-round exchange on two tiny clients and
// shows that the protocol recovers exactly the pooled statistics without
// either client revealing its samples.
func Example() {
	clientA, _ := mat.NewFromRows([][]float64{{0}, {2}})
	clientB, _ := mat.NewFromRows([][]float64{{10}, {12}, {14}, {16}})

	// Round 1: clients upload (mean, count); the server aggregates (eq. 10).
	globalMean, _ := moments.AggregateMeans(
		[]*mat.Dense{mat.MeanRows(clientA), mat.MeanRows(clientB)},
		[]int{clientA.Rows(), clientB.Rows()})

	// Round 2: clients upload central moments around the global mean.
	globalCentral, _ := moments.AggregateCentral([][]*mat.Dense{
		moments.CentralAround(clientA, globalMean, 3),
		moments.CentralAround(clientB, globalMean, 3),
	}, []int{clientA.Rows(), clientB.Rows()})

	// Reference: what a server with all raw data would compute.
	poolMean, poolCentral, _ := moments.PooledReference([]*mat.Dense{clientA, clientB}, 3)

	fmt.Printf("global mean %.2f == pooled mean %.2f\n", globalMean.At(0, 0), poolMean.At(0, 0))
	fmt.Printf("global var  %.2f == pooled var  %.2f\n", globalCentral[0].At(0, 0), poolCentral[0].At(0, 0))
	// Output:
	// global mean 9.00 == pooled mean 9.00
	// global var  35.67 == pooled var  35.67
}
