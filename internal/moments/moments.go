// Package moments implements the central-moment machinery of FedOMD's
// Center Moment Discrepancy constraint (paper §4.4, eq. 10–11, Algorithm 1):
// per-layer feature means, j-th order central moments, the sample-weighted
// global aggregation the server performs, the scalar CMD distance, and a
// differentiable CMD loss node for the autodiff tape.
package moments

import (
	"fmt"
	"math"

	"fedomd/internal/ad"
	"fedomd/internal/mat"
)

// DefaultMaxOrder is the truncation of the CMD series used by the paper
// (Algorithm 1 computes j ∈ {2,3,4,5}).
const DefaultMaxOrder = 5

// Stats holds the moment summary of one hidden representation: the sample
// count, the 1×d mean, and the central moments of orders 2..K (Central[0] is
// order 2). These are the only quantities a client uploads — the
// communication optimisation of §4.4.
type Stats struct {
	N       int
	Mean    *mat.Dense
	Central []*mat.Dense
}

// MaxOrder returns the highest moment order stored.
func (s Stats) MaxOrder() int { return len(s.Central) + 1 }

// Bytes returns the wire size of the summary (Table 3's negligible-cost
// claim is checked against this).
func (s Stats) Bytes() int {
	total := s.Mean.Rows() * s.Mean.Cols()
	for _, c := range s.Central {
		total += c.Rows() * c.Cols()
	}
	return 8*total + 8 // + count
}

// Compute summarises z (rows = samples) with its own mean and central
// moments up to maxOrder — Algorithm 1 lines 4-7 on the client.
func Compute(z *mat.Dense, maxOrder int) (Stats, error) {
	if maxOrder < 2 {
		return Stats{}, fmt.Errorf("moments: maxOrder must be >= 2, got %d", maxOrder)
	}
	mean := mat.MeanRows(z)
	return Stats{N: z.Rows(), Mean: mean, Central: CentralAround(z, mean, maxOrder)}, nil
}

// CentralAround computes E((z − mean)^j) column-wise for j = 2..maxOrder
// around an externally supplied mean — Algorithm 1 line 13, where clients
// centre on the *global* mean received from the server.
func CentralAround(z, mean *mat.Dense, maxOrder int) []*mat.Dense {
	centered := mat.SubRowVec(z, mean)
	out := make([]*mat.Dense, 0, maxOrder-1)
	for j := 2; j <= maxOrder; j++ {
		out = append(out, mat.MeanRows(mat.PowElem(centered, j)))
	}
	return out
}

// AggregateMeans computes the sample-weighted global mean of eq. 10:
// M = Σ n_i·M_i / Σ n_i. All means must share a shape.
func AggregateMeans(means []*mat.Dense, counts []int) (*mat.Dense, error) {
	if len(means) == 0 || len(means) != len(counts) {
		return nil, fmt.Errorf("moments: %d means with %d counts", len(means), len(counts))
	}
	out := mat.New(means[0].Rows(), means[0].Cols())
	var total float64
	for i, m := range means {
		if counts[i] < 0 {
			return nil, fmt.Errorf("moments: negative count %d", counts[i])
		}
		if m.Rows() != out.Rows() || m.Cols() != out.Cols() {
			return nil, fmt.Errorf("moments: mean %d shape mismatch", i)
		}
		out.AXPY(float64(counts[i]), m)
		total += float64(counts[i])
	}
	if total == 0 {
		return nil, fmt.Errorf("moments: all counts zero")
	}
	out.ScaleInPlace(1 / total)
	return out, nil
}

// AggregateCentral aggregates the per-client central-moment vectors (already
// centred on the global mean) with sample weights — the server side of
// Algorithm 1 line 25 applied to each order. clientMoms[i][k] is client i's
// moment of order k+2.
func AggregateCentral(clientMoms [][]*mat.Dense, counts []int) ([]*mat.Dense, error) {
	if len(clientMoms) == 0 || len(clientMoms) != len(counts) {
		return nil, fmt.Errorf("moments: %d clients with %d counts", len(clientMoms), len(counts))
	}
	orders := len(clientMoms[0])
	out := make([]*mat.Dense, orders)
	for k := 0; k < orders; k++ {
		means := make([]*mat.Dense, len(clientMoms))
		for i := range clientMoms {
			if len(clientMoms[i]) != orders {
				return nil, fmt.Errorf("moments: client %d has %d orders, want %d", i, len(clientMoms[i]), orders)
			}
			means[i] = clientMoms[i][k]
		}
		agg, err := AggregateMeans(means, counts)
		if err != nil {
			return nil, err
		}
		out[k] = agg
	}
	return out, nil
}

// CMD evaluates the scalar truncated CMD distance of eq. 11 between a local
// summary and the global summary, with activations bounded in [a, b]:
//
//	d = ‖M_local − M_global‖₂/(b−a) + Σ_{j=2..K} ‖C_j − S_j‖₂/(b−a)^j
func CMD(local Stats, globalMean *mat.Dense, globalCentral []*mat.Dense, a, b float64) (float64, error) {
	if b <= a {
		return 0, fmt.Errorf("moments: invalid activation range [%v, %v]", a, b)
	}
	if len(globalCentral) != len(local.Central) {
		return 0, fmt.Errorf("moments: order mismatch %d vs %d", len(local.Central), len(globalCentral))
	}
	width := b - a
	d := mat.FrobNorm(mat.Sub(local.Mean, globalMean)) / width
	for k, c := range local.Central {
		order := k + 2
		d += mat.FrobNorm(mat.Sub(c, globalCentral[k])) / math.Pow(width, float64(order))
	}
	return d, nil
}

// CMDLoss records the differentiable CMD distance on the tape for a hidden
// representation node z against fixed global statistics (they come from the
// previous exchange and are constants with respect to the current step).
// The result is a 1×1 loss node. Gradients flow through z's own mean and
// central moments, exactly the d_CMD term of eq. 12 / Algorithm 1 line 19.
func CMDLoss(tp *ad.Tape, z *ad.Node, globalMean *mat.Dense, globalCentral []*mat.Dense, a, b float64) (*ad.Node, error) {
	if b <= a {
		return nil, fmt.Errorf("moments: invalid activation range [%v, %v]", a, b)
	}
	width := b - a
	mean := tp.MeanRows(z)
	diff := tp.Sub(mean, tp.Const(globalMean))
	loss := tp.Scale(1/width, tp.L2Norm(diff))
	centered := tp.SubRowVec(z, mean)
	for k, global := range globalCentral {
		order := k + 2
		cj := tp.MeanRows(tp.PowElem(centered, order))
		term := tp.L2Norm(tp.Sub(cj, tp.Const(global)))
		loss = tp.Add(loss, tp.Scale(1/math.Pow(width, float64(order)), term))
	}
	return loss, nil
}

// CMDLossSquared is the smooth variant of CMDLoss: each ‖·‖₂ term is
// replaced by ‖·‖²₂, so the gradient magnitude is proportional to the
// remaining discrepancy and vanishes as the distributions converge. The
// plain eq. 11 norms have unit-magnitude gradients everywhere, which — under
// Adam's per-coordinate normalisation — keep perturbing the representation
// even after the moments match; the squared form avoids that while
// preserving the same minimiser. The design ablation bench compares both.
// Each term is additionally divided by the feature dimension d (mean rather
// than sum reduction, as torch.nn.MSELoss defaults to), so β is comparable
// across hidden widths.
func CMDLossSquared(tp *ad.Tape, z *ad.Node, globalMean *mat.Dense, globalCentral []*mat.Dense, a, b float64) (*ad.Node, error) {
	if b <= a {
		return nil, fmt.Errorf("moments: invalid activation range [%v, %v]", a, b)
	}
	width := b - a
	dim := float64(z.Value.Cols())
	if dim == 0 {
		dim = 1
	}
	mean := tp.MeanRows(z)
	diff := tp.Sub(mean, tp.Const(globalMean))
	loss := tp.Scale(1/(width*dim), tp.SumSquares(diff))
	centered := tp.SubRowVec(z, mean)
	for k, global := range globalCentral {
		order := k + 2
		cj := tp.MeanRows(tp.PowElem(centered, order))
		term := tp.SumSquares(tp.Sub(cj, tp.Const(global)))
		loss = tp.Add(loss, tp.Scale(1/(math.Pow(width, float64(order))*dim), term))
	}
	return loss, nil
}

// PooledReference computes, for testing and ablation, the exact statistics a
// server would obtain if all client samples were pooled centrally: the global
// mean and the central moments of the pooled data around it. The FL protocol
// approximates these without moving raw data.
func PooledReference(clients []*mat.Dense, maxOrder int) (*mat.Dense, []*mat.Dense, error) {
	if len(clients) == 0 {
		return nil, nil, fmt.Errorf("moments: no clients")
	}
	cols := clients[0].Cols()
	total := 0
	for _, c := range clients {
		if c.Cols() != cols {
			return nil, nil, fmt.Errorf("moments: feature width mismatch")
		}
		total += c.Rows()
	}
	pooled := mat.New(total, cols)
	row := 0
	for _, c := range clients {
		for i := 0; i < c.Rows(); i++ {
			copy(pooled.Row(row), c.Row(i))
			row++
		}
	}
	mean := mat.MeanRows(pooled)
	return mean, CentralAround(pooled, mean, maxOrder), nil
}
