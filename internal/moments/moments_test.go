package moments

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedomd/internal/ad"
	"fedomd/internal/mat"
)

func TestComputeKnownValues(t *testing.T) {
	// Column [1, 3]: mean 2, var 1, third central moment 0, fourth 1.
	z, _ := mat.NewFromRows([][]float64{{1}, {3}})
	s, err := Compute(z, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 2 || s.Mean.At(0, 0) != 2 {
		t.Fatalf("mean stats wrong: %+v", s)
	}
	want := []float64{1, 0, 1, 0} // orders 2..5
	for k, w := range want {
		if got := s.Central[k].At(0, 0); math.Abs(got-w) > 1e-12 {
			t.Fatalf("order %d = %v want %v", k+2, got, w)
		}
	}
	if s.MaxOrder() != 5 {
		t.Fatal("MaxOrder wrong")
	}
}

func TestComputeRejectsLowOrder(t *testing.T) {
	if _, err := Compute(mat.New(2, 2), 1); err == nil {
		t.Fatal("maxOrder 1 accepted")
	}
}

func TestCentralAroundForeignMean(t *testing.T) {
	z, _ := mat.NewFromRows([][]float64{{1}, {3}})
	foreign, _ := mat.NewFromRows([][]float64{{0.0}})
	moms := CentralAround(z, foreign, 3)
	// E(z²) around 0 = (1+9)/2 = 5; E(z³) = (1+27)/2 = 14.
	if moms[0].At(0, 0) != 5 || moms[1].At(0, 0) != 14 {
		t.Fatalf("moments around foreign mean wrong: %v %v", moms[0], moms[1])
	}
}

func TestAggregateMeansWeighted(t *testing.T) {
	m1, _ := mat.NewFromRows([][]float64{{1, 2}})
	m2, _ := mat.NewFromRows([][]float64{{5, 6}})
	g, err := AggregateMeans([]*mat.Dense{m1, m2}, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.At(0, 0) != 2 || g.At(0, 1) != 3 {
		t.Fatalf("aggregate = %v", g)
	}
}

func TestAggregateErrors(t *testing.T) {
	m := mat.New(1, 2)
	if _, err := AggregateMeans(nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := AggregateMeans([]*mat.Dense{m}, []int{1, 2}); err == nil {
		t.Fatal("count mismatch accepted")
	}
	if _, err := AggregateMeans([]*mat.Dense{m, mat.New(1, 3)}, []int{1, 1}); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := AggregateMeans([]*mat.Dense{m}, []int{0}); err == nil {
		t.Fatal("zero total accepted")
	}
	if _, err := AggregateMeans([]*mat.Dense{m}, []int{-1}); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := AggregateCentral([][]*mat.Dense{{m}, {m, m}}, []int{1, 1}); err == nil {
		t.Fatal("ragged orders accepted")
	}
}

// TestProtocolMatchesPooled verifies the paper's central claim about the
// 2-round exchange (contribution (ii)): aggregating client means with eq. 10
// and then client moments centred on that global mean reproduces exactly the
// statistics of the pooled data — the "implicit i.i.d distribution".
func TestProtocolMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	clients := []*mat.Dense{
		mat.RandGaussian(rng, 40, 6, 0.5, 1),
		mat.RandGaussian(rng, 25, 6, -1, 2),
		mat.RandGaussian(rng, 60, 6, 2, 0.5),
	}
	const K = 5
	// Round 1: upload means.
	means := make([]*mat.Dense, len(clients))
	counts := make([]int, len(clients))
	for i, c := range clients {
		means[i] = mat.MeanRows(c)
		counts[i] = c.Rows()
	}
	globalMean, err := AggregateMeans(means, counts)
	if err != nil {
		t.Fatal(err)
	}
	// Round 2: upload moments centred on the global mean.
	moms := make([][]*mat.Dense, len(clients))
	for i, c := range clients {
		moms[i] = CentralAround(c, globalMean, K)
	}
	globalCentral, err := AggregateCentral(moms, counts)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: pooled statistics.
	poolMean, poolCentral, err := PooledReference(clients, K)
	if err != nil {
		t.Fatal(err)
	}
	if !globalMean.EqualApprox(poolMean, 1e-10) {
		t.Fatal("protocol global mean differs from pooled mean")
	}
	for k := range poolCentral {
		if !globalCentral[k].EqualApprox(poolCentral[k], 1e-10) {
			t.Fatalf("protocol order-%d moment differs from pooled", k+2)
		}
	}
}

func TestCMDZeroForIdenticalDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := mat.RandUniform(rng, 100, 4, 0, 1)
	s, err := Compute(z, 5)
	if err != nil {
		t.Fatal(err)
	}
	d, err := CMD(s, s.Mean, s.Central, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("CMD of identical stats = %v", d)
	}
}

func TestCMDGrowsWithShift(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	base := mat.RandUniform(rng, 200, 3, 0.2, 0.5)
	ref, _ := Compute(base, 5)
	small := mat.Apply(base, func(x float64) float64 { return x + 0.05 })
	large := mat.Apply(base, func(x float64) float64 { return x + 0.4 })
	ss, _ := Compute(small, 5)
	ls, _ := Compute(large, 5)
	dSmall, err := CMD(ss, ref.Mean, ref.Central, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dLarge, _ := CMD(ls, ref.Mean, ref.Central, 0, 1)
	if !(dLarge > dSmall && dSmall > 0) {
		t.Fatalf("CMD not monotone in shift: %v vs %v", dSmall, dLarge)
	}
}

func TestCMDValidation(t *testing.T) {
	s, _ := Compute(mat.New(3, 2), 3)
	if _, err := CMD(s, s.Mean, s.Central, 1, 1); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := CMD(s, s.Mean, s.Central[:1], 0, 1); err == nil {
		t.Fatal("order mismatch accepted")
	}
}

func TestCMDLossMatchesScalarCMD(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	z := mat.RandUniform(rng, 50, 4, 0, 1)
	global := mat.RandUniform(rng, 60, 4, 0.2, 1)
	gs, _ := Compute(global, 5)
	ls, _ := Compute(z, 5)
	want, err := CMD(ls, gs.Mean, gs.Central, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	tp := ad.NewTape()
	node := tp.Param(z)
	loss, err := CMDLoss(tp, node, gs.Mean, gs.Central, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss.Value.At(0, 0)-want) > 1e-10 {
		t.Fatalf("CMDLoss forward %v vs scalar CMD %v", loss.Value.At(0, 0), want)
	}
}

func TestCMDLossGradientDescentShrinksCMD(t *testing.T) {
	// Gradient descent on the CMD loss must move a shifted distribution
	// toward the reference — the mechanism FedOMD relies on.
	rng := rand.New(rand.NewSource(5))
	ref := mat.RandUniform(rng, 80, 3, 0.3, 0.9)
	gs, _ := Compute(ref, 5)
	z := mat.RandUniform(rng, 40, 3, 0.0, 0.4)
	initial := math.NaN()
	var final float64
	for step := 0; step < 200; step++ {
		tp := ad.NewTape()
		node := tp.Param(z)
		loss, err := CMDLoss(tp, node, gs.Mean, gs.Central, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			initial = loss.Value.At(0, 0)
		}
		final = loss.Value.At(0, 0)
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		z.AXPY(-0.1, node.Grad)
	}
	if !(final < initial*0.3) {
		t.Fatalf("CMD loss did not shrink under descent: %v -> %v", initial, final)
	}
}

func TestCMDLossValidation(t *testing.T) {
	tp := ad.NewTape()
	n := tp.Param(mat.New(2, 2))
	if _, err := CMDLoss(tp, n, mat.New(1, 2), nil, 1, 0); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestStatsBytesSmallVersusRawData(t *testing.T) {
	// The communication optimisation: a K=5 summary of an n×d layer costs
	// 5 vectors of d floats, independent of n.
	z := mat.New(10000, 64)
	s, _ := Compute(z, 5)
	if s.Bytes() >= 8*10000*64/10 {
		t.Fatalf("summary not small: %d bytes", s.Bytes())
	}
	wantFloats := 5 * 64 // mean + 4 central moment vectors
	if s.Bytes() != 8*wantFloats+8 {
		t.Fatalf("Bytes = %d want %d", s.Bytes(), 8*wantFloats+8)
	}
}

func TestAggregationInvariantToClientSplitProperty(t *testing.T) {
	// Splitting the same data into different client groupings must yield the
	// same global statistics.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(40)
		d := 2 + rng.Intn(4)
		data := mat.RandGaussian(rng, n, d, 0, 1)
		cut := 1 + rng.Intn(n-1)
		a1, a2 := data.SliceRows(0, cut), data.SliceRows(cut, n)
		cut2 := 1 + rng.Intn(n-1)
		b1, b2 := data.SliceRows(0, cut2), data.SliceRows(cut2, n)
		ga, _, err := PooledReference([]*mat.Dense{a1, a2}, 4)
		if err != nil {
			return false
		}
		gb, _, err := PooledReference([]*mat.Dense{b1, b2}, 4)
		if err != nil {
			return false
		}
		// And via the 2-round protocol for split A:
		means := []*mat.Dense{mat.MeanRows(a1), mat.MeanRows(a2)}
		counts := []int{a1.Rows(), a2.Rows()}
		gm, err := AggregateMeans(means, counts)
		if err != nil {
			return false
		}
		return ga.EqualApprox(gb, 1e-9) && gm.EqualApprox(ga, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
