package telemetry

import (
	"expvar"
	"sync"
)

var publishOnce sync.Once

// PublishExpvar exposes the aggregator and every global counter under the
// "fedomd.telemetry" expvar, alongside the standard memstats/cmdline vars on
// /debug/vars (`fedomd -debug-addr` serves them). Safe to call more than
// once; only the first aggregator wins (expvar names are process-global).
func PublishExpvar(a *Aggregator) {
	publishOnce.Do(func() {
		expvar.Publish("fedomd.telemetry", expvar.Func(func() any {
			out := map[string]any{
				"global_counters": GlobalCounters(),
			}
			if a != nil {
				counters, gauges, hists := a.Snapshot()
				out["counters"] = counters
				out["gauges"] = gauges
				out["histograms"] = hists
			}
			return out
		}))
	})
}
