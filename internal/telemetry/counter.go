package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a process-global monotonic counter for leaf packages on hot
// paths (autodiff tape ops, sparse kernels) where threading a Recorder
// through every call would be invasive. Add is a single uncontended atomic
// add — cheap enough to leave always on.
type Counter struct {
	name string
	v    atomic.Int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

var (
	registryMu sync.Mutex
	registry   []*Counter
)

// NewCounter registers and returns a global counter. Call it once per metric
// from a package-level var; duplicate names return the existing counter so
// tests re-registering are harmless.
func NewCounter(name string) *Counter {
	registryMu.Lock()
	defer registryMu.Unlock()
	for _, c := range registry {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name}
	registry = append(registry, c)
	return c
}

// GlobalCounters snapshots every registered global counter, sorted by name.
func GlobalCounters() map[string]int64 {
	registryMu.Lock()
	defer registryMu.Unlock()
	out := make(map[string]int64, len(registry))
	for _, c := range registry {
		out[c.name] = c.Value()
	}
	return out
}

// globalCounterNames returns registered names in sorted order (for reports).
func globalCounterNames() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	names := make([]string, len(registry))
	for i, c := range registry {
		names[i] = c.name
	}
	sort.Strings(names)
	return names
}
