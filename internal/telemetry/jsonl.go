package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one JSONL trace record. Type is "count", "gauge" or "observe"
// (span timers surface as "observe" events carrying seconds under the span
// name).
type Event struct {
	TS    string  `json:"ts"`
	Type  string  `json:"type"`
	Name  string  `json:"name"`
	Value float64 `json:"value,omitempty"`
	Delta int64   `json:"delta,omitempty"`
}

// Header is the first JSONL trace record: it names the run so traces written
// by separate processes (coordinator and parties) can be correlated offline,
// and carries free-form metadata (build version, codec tier, policy, …).
type Header struct {
	TS    string            `json:"ts"`
	Type  string            `json:"type"` // always "header"
	RunID string            `json:"run_id"`
	Meta  map[string]string `json:"meta,omitempty"`
}

// JSONL is a Recorder writing one JSON event per line — the machine-readable
// trace sink (`fedomd -trace out.jsonl`). Writes are buffered; call Close (or
// Flush) when the run ends. Beyond the Recorder events it accepts arbitrary
// records through EmitRecord, which internal/obs uses for span and health
// events — one sink, one causally-ordered line stream.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	now func() time.Time
}

// NewJSONL returns a trace writer over w. If w is an io.Closer, Close closes
// it after flushing.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	j := &JSONL{bw: bw, enc: json.NewEncoder(bw), now: time.Now}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Enabled always reports true.
func (j *JSONL) Enabled() bool { return true }

func (j *JSONL) emit(e Event) {
	e.TS = j.now().UTC().Format(time.RFC3339Nano)
	j.mu.Lock()
	_ = j.enc.Encode(e) // a broken trace sink must not fail the run
	j.mu.Unlock()
}

// Count implements Recorder.
func (j *JSONL) Count(name string, delta int64) {
	j.emit(Event{Type: "count", Name: name, Delta: delta})
}

// Gauge implements Recorder.
func (j *JSONL) Gauge(name string, v float64) {
	j.emit(Event{Type: "gauge", Name: name, Value: v})
}

// Observe implements Recorder.
func (j *JSONL) Observe(name string, v float64) {
	j.emit(Event{Type: "observe", Name: name, Value: v})
}

// EmitRecord writes an arbitrary record as one JSON line under the same
// mutex as the Recorder events, so interleaved writers never tear a line.
// The record owns its own fields (including any timestamp); a marshalling
// failure is swallowed like any other sink error — a broken trace must not
// fail the run.
func (j *JSONL) EmitRecord(v any) {
	j.mu.Lock()
	_ = j.enc.Encode(v)
	j.mu.Unlock()
}

// WriteHeader emits the run-correlation header record. Call it first, before
// any events, so offline tooling can key every following line by run ID.
func (j *JSONL) WriteHeader(runID string, meta map[string]string) {
	j.EmitRecord(Header{
		TS:    j.now().UTC().Format(time.RFC3339Nano),
		Type:  "header",
		RunID: runID,
		Meta:  meta,
	})
}

// Flush forces buffered events to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bw.Flush()
}

// Close flushes and closes the underlying writer when it is closable.
func (j *JSONL) Close() error {
	if err := j.Flush(); err != nil {
		return err
	}
	if j.c != nil {
		return j.c.Close()
	}
	return nil
}
