package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNopIsDisabledAndInert(t *testing.T) {
	if Nop.Enabled() {
		t.Fatal("Nop reports enabled")
	}
	Nop.Count("x", 1)
	Nop.Gauge("x", 1)
	Nop.Observe("x", 1)
	sp := StartSpan(Nop, "x")
	if !sp.start.IsZero() {
		t.Fatal("disabled span read the clock")
	}
	sp.End()
	if Or(nil) != Nop {
		t.Fatal("Or(nil) is not Nop")
	}
}

func TestNopSpanZeroAlloc(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		sp := StartSpan(Nop, "hot")
		sp.End()
		Nop.Count("hot", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %v per op", allocs)
	}
}

func TestAggregatorCountersGaugesHists(t *testing.T) {
	a := NewAggregator()
	a.Count("c", 2)
	a.Count("c", 3)
	if got := a.Counter("c"); got != 5 {
		t.Fatalf("counter = %d want 5", got)
	}
	a.Gauge("g", 1.5)
	a.Gauge("g", 2.5)
	if v, ok := a.GaugeValue("g"); !ok || v != 2.5 {
		t.Fatalf("gauge = %v,%v want 2.5", v, ok)
	}
	for i := 1; i <= 100; i++ {
		a.Observe("h", float64(i))
	}
	s, ok := a.Histogram("h")
	if !ok {
		t.Fatal("histogram missing")
	}
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Mean-50.5) > 1e-12 {
		t.Fatalf("mean = %v want 50.5", s.Mean)
	}
	if s.P50 < 45 || s.P50 > 55 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P95 < 90 || s.P95 > 100 {
		t.Fatalf("p95 = %v", s.P95)
	}
}

func TestAggregatorReservoirBounded(t *testing.T) {
	a := NewAggregator()
	n := reservoirCap * 3
	for i := 0; i < n; i++ {
		a.Observe("h", float64(i))
	}
	a.mu.Lock()
	got := len(a.hists["h"].samples)
	a.mu.Unlock()
	if got != reservoirCap {
		t.Fatalf("reservoir holds %d samples want %d", got, reservoirCap)
	}
	s, _ := a.Histogram("h")
	if s.Count != int64(n) {
		t.Fatalf("count = %d want %d", s.Count, n)
	}
	// The reservoir subsamples uniformly: the median estimate must land in
	// the middle half of the observed range.
	if s.P50 < float64(n)/4 || s.P50 > 3*float64(n)/4 {
		t.Fatalf("p50 = %v out of plausible range for uniform 0..%d", s.P50, n)
	}
}

func TestAggregatorConcurrentUse(t *testing.T) {
	a := NewAggregator()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				a.Count("c", 1)
				a.Observe("h", float64(i))
				a.Gauge("g", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := a.Counter("c"); got != 4000 {
		t.Fatalf("concurrent counter = %d want 4000", got)
	}
	if s, _ := a.Histogram("h"); s.Count != 4000 {
		t.Fatalf("concurrent histogram count = %d want 4000", s.Count)
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	a := NewAggregator()
	sp := StartSpan(a, "op_seconds")
	time.Sleep(time.Millisecond)
	sp.End()
	s, ok := a.Histogram("op_seconds")
	if !ok || s.Count != 1 {
		t.Fatalf("span not recorded: %+v", s)
	}
	if s.Sum <= 0 || s.Sum > 5 {
		t.Fatalf("span duration = %v seconds", s.Sum)
	}
}

func TestSpanCancelDropsSample(t *testing.T) {
	a := NewAggregator()
	sp := StartSpan(a, "op_seconds")
	sp.Cancel()
	sp.End() // End after Cancel must be a no-op
	if s, ok := a.Histogram("op_seconds"); ok && s.Count != 0 {
		t.Fatalf("cancelled span recorded a sample: %+v", s)
	}
	var zero Span
	zero.Cancel() // zero value stays inert
}

func TestReportRendersTables(t *testing.T) {
	a := NewAggregator()
	a.Observe("fed/phase/train_seconds", 0.25)
	a.Observe("fed/phase/train_seconds", 0.75)
	a.Count("fed/bytes_up", 1024)
	a.Gauge("fed/val_acc", 0.5)
	NewCounter("test/report_counter").Add(7)
	var buf bytes.Buffer
	a.Report(&buf)
	out := buf.String()
	for _, want := range []string{
		"fed/phase/train_seconds", "count", "p50", "p95",
		"fed/bytes_up", "1024",
		"fed/val_acc",
		"test/report_counter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Durations render as times, not raw floats.
	if !strings.Contains(out, "ms") && !strings.Contains(out, "s ") && !strings.Contains(out, "s\n") {
		t.Fatalf("durations not formatted as times:\n%s", out)
	}
}

func TestJSONLEmitsParseableEvents(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Count("c", 3)
	j.Gauge("g", 1.5)
	sp := StartSpan(j, "op_seconds")
	sp.End()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var events []Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events want 3", len(events))
	}
	if events[0].Type != "count" || events[0].Name != "c" || events[0].Delta != 3 {
		t.Fatalf("count event = %+v", events[0])
	}
	if events[1].Type != "gauge" || events[1].Value != 1.5 {
		t.Fatalf("gauge event = %+v", events[1])
	}
	if events[2].Type != "observe" || events[2].Name != "op_seconds" {
		t.Fatalf("span event = %+v", events[2])
	}
	if _, err := time.Parse(time.RFC3339Nano, events[0].TS); err != nil {
		t.Fatalf("timestamp %q not RFC3339: %v", events[0].TS, err)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := NewAggregator(), NewAggregator()
	m := Multi(a, nil, Nop, b)
	m.Count("c", 2)
	m.Observe("h", 1)
	if a.Counter("c") != 2 || b.Counter("c") != 2 {
		t.Fatal("Multi did not fan out counters")
	}
	if Multi() != Nop {
		t.Fatal("empty Multi is not Nop")
	}
	if Multi(nil, Nop) != Nop {
		t.Fatal("Multi of disabled recorders is not Nop")
	}
	if Multi(a) != Recorder(a) {
		t.Fatal("single-recorder Multi added indirection")
	}
}

func TestGlobalCounters(t *testing.T) {
	c := NewCounter("test/global")
	before := c.Value()
	c.Add(5)
	if c.Value() != before+5 {
		t.Fatal("global counter add failed")
	}
	if NewCounter("test/global") != c {
		t.Fatal("duplicate registration returned a new counter")
	}
	snap := GlobalCounters()
	if snap["test/global"] != c.Value() {
		t.Fatalf("snapshot = %v want %d", snap["test/global"], c.Value())
	}
}
