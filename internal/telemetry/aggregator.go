package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// reservoirCap bounds per-histogram sample storage. Beyond it, reservoir
// sampling keeps a uniform subsample so quantiles stay representative over
// arbitrarily long runs at O(1) memory.
const reservoirCap = 4096

// hist accumulates one histogram: exact count/sum/min/max plus a bounded
// sample reservoir for quantiles.
type hist struct {
	count    int64
	sum      float64
	min, max float64
	samples  []float64
	rng      uint64 // xorshift64 state for deterministic reservoir eviction
}

func (h *hist) observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < reservoirCap {
		h.samples = append(h.samples, v)
		return
	}
	// Vitter's algorithm R with a private xorshift64 stream: sample i is
	// kept with probability cap/i, deterministically per histogram.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if j := h.rng % uint64(h.count); j < reservoirCap {
		h.samples[j] = v
	}
}

// quantile returns the q-quantile (0 ≤ q ≤ 1) over the reservoir.
func (h *hist) quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), h.samples...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// HistSummary is one histogram's aggregate view.
type HistSummary struct {
	Count         int64
	Sum, Min, Max float64
	Mean          float64
	P50, P95      float64
}

// Aggregator is the in-memory Recorder: it accumulates counters, gauges and
// histograms under a mutex and renders a per-run text report.
type Aggregator struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*hist
}

// NewAggregator returns an empty in-memory aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*hist),
	}
}

// Enabled always reports true.
func (a *Aggregator) Enabled() bool { return true }

// Count implements Recorder.
func (a *Aggregator) Count(name string, delta int64) {
	a.mu.Lock()
	a.counters[name] += delta
	a.mu.Unlock()
}

// Gauge implements Recorder.
func (a *Aggregator) Gauge(name string, v float64) {
	a.mu.Lock()
	a.gauges[name] = v
	a.mu.Unlock()
}

// Observe implements Recorder.
func (a *Aggregator) Observe(name string, v float64) {
	a.mu.Lock()
	h := a.hists[name]
	if h == nil {
		h = &hist{rng: 0x9E3779B97F4A7C15}
		a.hists[name] = h
	}
	h.observe(v)
	a.mu.Unlock()
}

// Counter returns the named counter's current value.
func (a *Aggregator) Counter(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.counters[name]
}

// GaugeValue returns the named gauge's latest value and whether it was set.
func (a *Aggregator) GaugeValue(name string) (float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.gauges[name]
	return v, ok
}

// Histogram returns the named histogram's summary and whether it exists.
func (a *Aggregator) Histogram(name string) (HistSummary, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	h, ok := a.hists[name]
	if !ok {
		return HistSummary{}, false
	}
	return summarize(h), true
}

func summarize(h *hist) HistSummary {
	s := HistSummary{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		P50: h.quantile(0.50), P95: h.quantile(0.95)}
	if h.count > 0 {
		s.Mean = h.sum / float64(h.count)
	}
	return s
}

// HistSamples is one histogram's exact totals plus a copy of its quantile
// reservoir — the raw material the Prometheus exposition derives cumulative
// buckets from (see internal/obs).
type HistSamples struct {
	Count   int64
	Sum     float64
	Samples []float64
}

// SampleSnapshot returns, per histogram, the exact count/sum and a copy of
// the bounded sample reservoir. The reservoir is a uniform subsample, so
// bucket counts scaled by Count/len(Samples) stay representative over
// arbitrarily long runs.
func (a *Aggregator) SampleSnapshot() map[string]HistSamples {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]HistSamples, len(a.hists))
	for k, h := range a.hists {
		out[k] = HistSamples{
			Count:   h.count,
			Sum:     h.sum,
			Samples: append([]float64(nil), h.samples...),
		}
	}
	return out
}

// Snapshot returns sorted copies of all counters, gauges and histogram
// summaries (the expvar surface uses it).
func (a *Aggregator) Snapshot() (counters map[string]int64, gauges map[string]float64, hists map[string]HistSummary) {
	a.mu.Lock()
	defer a.mu.Unlock()
	counters = make(map[string]int64, len(a.counters))
	for k, v := range a.counters {
		counters[k] = v
	}
	gauges = make(map[string]float64, len(a.gauges))
	for k, v := range a.gauges {
		gauges[k] = v
	}
	hists = make(map[string]HistSummary, len(a.hists))
	for k, h := range a.hists {
		hists[k] = summarize(h)
	}
	return counters, gauges, hists
}

// isSeconds reports whether a histogram holds durations (by naming
// convention) and should be formatted as times.
func isSeconds(name string) bool { return strings.HasSuffix(name, "_seconds") }

func fmtDur(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

func fmtVal(name string, v float64) string {
	if isSeconds(name) {
		return fmtDur(v)
	}
	return fmt.Sprintf("%.4g", v)
}

// Report renders the per-run text report: a timing/values table for every
// histogram (count, total, mean, p50, p95), then counters, gauges, and the
// process-global counters from leaf packages.
func (a *Aggregator) Report(w io.Writer) {
	counters, gauges, hists := a.Snapshot()

	if len(hists) > 0 {
		names := make([]string, 0, len(hists))
		width := len("name")
		for k := range hists {
			names = append(names, k)
			if len(k) > width {
				width = len(k)
			}
		}
		sort.Strings(names)
		fmt.Fprintf(w, "%-*s  %8s  %12s  %12s  %12s  %12s\n",
			width, "name", "count", "total", "mean", "p50", "p95")
		for _, k := range names {
			s := hists[k]
			fmt.Fprintf(w, "%-*s  %8d  %12s  %12s  %12s  %12s\n",
				width, k, s.Count, fmtVal(k, s.Sum), fmtVal(k, s.Mean),
				fmtVal(k, s.P50), fmtVal(k, s.P95))
		}
	}

	writeKV := func(title string, keys []string, val func(string) string) {
		if len(keys) == 0 {
			return
		}
		sort.Strings(keys)
		width := 0
		for _, k := range keys {
			if len(k) > width {
				width = len(k)
			}
		}
		fmt.Fprintf(w, "\n%s\n", title)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-*s  %s\n", width, k, val(k))
		}
	}

	ckeys := make([]string, 0, len(counters))
	for k := range counters {
		ckeys = append(ckeys, k)
	}
	writeKV("counters", ckeys, func(k string) string { return fmt.Sprintf("%d", counters[k]) })

	gkeys := make([]string, 0, len(gauges))
	for k := range gauges {
		gkeys = append(gkeys, k)
	}
	writeKV("gauges", gkeys, func(k string) string { return fmt.Sprintf("%g", gauges[k]) })

	global := GlobalCounters()
	gnames := globalCounterNames()
	writeKV("global counters", gnames, func(k string) string { return fmt.Sprintf("%d", global[k]) })
}
