// Package telemetry is the observability substrate of the federated runtime:
// a Recorder interface for counters, gauges, histograms (with quantile
// summaries) and span timers, a zero-allocation no-op default so instrumented
// hot paths cost nothing when telemetry is disabled, and two concrete sinks —
// an in-memory Aggregator that renders a per-run text report, and a JSONL
// trace writer for machine-readable per-event output.
//
// Layered packages (fed, experiments, cmd) thread a Recorder explicitly; leaf
// packages on the hot path (ad, sparse) use package-global atomic Counters
// instead, which the report and expvar surfaces pick up without any plumbing.
//
// All Recorder implementations in this package are safe for concurrent use —
// fed.Run drives clients from goroutines within a round.
package telemetry

import "time"

// Recorder receives telemetry events. Implementations must be safe for
// concurrent use. Metric names are slash-separated paths; histogram names
// carrying durations end in "_seconds" so reports can format them as times.
type Recorder interface {
	// Enabled reports whether events are consumed at all. Instrumentation
	// uses it to skip event construction (notably time.Now for spans) when
	// telemetry is off.
	Enabled() bool
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Gauge sets the named gauge to its latest value.
	Gauge(name string, v float64)
	// Observe records one sample into the named histogram.
	Observe(name string, v float64)
}

// nop discards everything. It is the default Recorder: value receiver, no
// state, and Enabled() == false lets call sites skip clock reads entirely.
type nop struct{}

func (nop) Enabled() bool           { return false }
func (nop) Count(string, int64)     {}
func (nop) Gauge(string, float64)   {}
func (nop) Observe(string, float64) {}

// Nop is the zero-cost default Recorder.
var Nop Recorder = nop{}

// Or returns r, or Nop when r is nil, so call sites can hold an always
// non-nil Recorder.
func Or(r Recorder) Recorder {
	if r == nil {
		return Nop
	}
	return r
}

// Span is an in-flight timer started by StartSpan. The zero value is inert.
// It is a plain value (no allocation) so spans are free on disabled paths.
type Span struct {
	rec   Recorder
	name  string
	start time.Time
}

// StartSpan begins timing the named region. When r is nil or disabled it
// returns an inert Span without reading the clock.
func StartSpan(r Recorder, name string) Span {
	if r == nil || !r.Enabled() {
		return Span{}
	}
	return Span{rec: r, name: name, start: time.Now()}
}

// End stops the span and records its duration in seconds as a histogram
// sample under the span's name.
func (s Span) End() {
	if s.rec == nil {
		return
	}
	s.rec.Observe(s.name, time.Since(s.start).Seconds())
}

// Cancel abandons the span without recording a sample: a failed operation's
// duration is not a latency observation and would skew the histogram. Safe on
// the zero Span; a later End on the same variable is a no-op.
func (s *Span) Cancel() { s.rec = nil }

// multi fans events out to several recorders.
type multi []Recorder

// Multi returns a Recorder forwarding every event to each non-nil recorder.
// With zero or one usable recorder it avoids the fan-out indirection.
func Multi(rs ...Recorder) Recorder {
	var live []Recorder
	for _, r := range rs {
		if r != nil && r.Enabled() {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return Nop
	case 1:
		return live[0]
	}
	return multi(live)
}

func (m multi) Enabled() bool { return true }
func (m multi) Count(name string, delta int64) {
	for _, r := range m {
		r.Count(name, delta)
	}
}
func (m multi) Gauge(name string, v float64) {
	for _, r := range m {
		r.Gauge(name, v)
	}
}
func (m multi) Observe(name string, v float64) {
	for _, r := range m {
		r.Observe(name, v)
	}
}
