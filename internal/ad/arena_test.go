package ad

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

// arenaLoss records a small but representative graph — SpMM, MatMul, bias
// broadcast, ReLU, dropout-free softmax CE plus an ortho penalty — touching
// most fused backward paths.
func arenaLoss(tp *Tape, s *sparse.CSR, x *mat.Dense, w, b, w2 *mat.Dense) (*Node, []*Node) {
	wn, bn, w2n := tp.Param(w), tp.Param(b), tp.Param(w2)
	h := tp.ReLU(tp.AddRowVec(tp.SpMM(s, tp.MatMul(tp.Const(x), wn)), bn))
	logits := tp.MatMul(h, w2n)
	loss := tp.SoftmaxCrossEntropy(logits, []int{0, 1, 0, 1}, []int{0, 1, 2, 3})
	loss = tp.Add(loss, tp.Scale(0.01, tp.OrthoPenalty(w2n)))
	return loss, []*Node{wn, bn, w2n}
}

func arenaFixture(rng *rand.Rand) (*sparse.CSR, *mat.Dense, *mat.Dense, *mat.Dense, *mat.Dense) {
	s, err := sparse.NewCSR(4, 4, []sparse.Coord{
		{Row: 0, Col: 1, Val: 0.5}, {Row: 1, Col: 0, Val: 0.5},
		{Row: 2, Col: 3, Val: 1.0}, {Row: 3, Col: 2, Val: 1.0},
		{Row: 0, Col: 0, Val: 0.5}, {Row: 1, Col: 1, Val: 0.5},
	})
	if err != nil {
		panic(err)
	}
	x := mat.RandGaussian(rng, 4, 5, 0, 1)
	w := mat.RandGaussian(rng, 5, 3, 0, 1)
	b := mat.RandGaussian(rng, 1, 3, 0, 1)
	w2 := mat.RandGaussian(rng, 3, 2, 0, 1)
	return s, x, w, b, w2
}

// TestReleasedTapeMatchesFreshTape runs the same loss on a reused tape
// (Release between steps) and on fresh tapes, and demands bit-identical
// losses and gradients: recycling buffers must not change any numerics.
func TestReleasedTapeMatchesFreshTape(t *testing.T) {
	s, x, w, b, w2 := arenaFixture(rand.New(rand.NewSource(42)))

	reused := NewTape()
	for step := 0; step < 5; step++ {
		lossR, nodesR := arenaLoss(reused, s, x, w, b, w2)
		if err := reused.Backward(lossR); err != nil {
			t.Fatal(err)
		}

		fresh := NewTape()
		lossF, nodesF := arenaLoss(fresh, s, x, w, b, w2)
		if err := fresh.Backward(lossF); err != nil {
			t.Fatal(err)
		}

		if lr, lf := lossR.Value.At(0, 0), lossF.Value.At(0, 0); lr != lf {
			t.Fatalf("step %d: reused loss %v != fresh loss %v", step, lr, lf)
		}
		for i := range nodesR {
			gr, gf := nodesR[i].Grad, nodesF[i].Grad
			if (gr == nil) != (gf == nil) {
				t.Fatalf("step %d param %d: grad nil mismatch", step, i)
			}
			for j, v := range gr.Data() {
				if v != gf.Data()[j] {
					t.Fatalf("step %d param %d grad[%d]: reused %v fresh %v", step, i, j, v, gf.Data()[j])
				}
			}
		}
		// Nudge a parameter so each step sees different values.
		w.Set(0, 0, w.At(0, 0)+0.01)
		reused.Release()
	}
}

// TestReleaseRecyclesBuffers checks that after a warm-up step, subsequent
// steps on a Released tape are served from the pool (no fresh allocations
// through the pool's miss path).
func TestReleaseRecyclesBuffers(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops Put items under the race detector")
	}
	s, x, w, b, w2 := arenaFixture(rand.New(rand.NewSource(7)))
	tp := NewTape()

	step := func() {
		loss, _ := arenaLoss(tp, s, x, w, b, w2)
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		tp.Release()
	}
	step() // warm-up populates the pool buckets
	_, m0, _ := mat.PoolStats()
	for i := 0; i < 3; i++ {
		step()
	}
	_, m1, _ := mat.PoolStats()
	if m1 != m0 {
		t.Fatalf("steady-state steps missed the pool %d times", m1-m0)
	}
}

// TestFiniteDiffOnReusedTape re-runs a finite-difference check where every
// evaluation shares one Released tape, proving gradient correctness is
// preserved under buffer recycling.
func TestFiniteDiffOnReusedTape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := mat.RandGaussian(rng, 3, 4, 0, 1)
	tp := NewTape()
	eval := func() (float64, *mat.Dense) {
		defer tp.Release()
		an := tp.Param(a)
		loss := tp.SumSquares(tp.ReLU(an))
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		return loss.Value.At(0, 0), an.Grad.Clone()
	}
	_, grad := eval()
	const eps = 1e-6
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			orig := a.At(i, j)
			a.Set(i, j, orig+eps)
			lp, _ := eval()
			a.Set(i, j, orig-eps)
			lm, _ := eval()
			a.Set(i, j, orig)
			numeric := (lp - lm) / (2 * eps)
			if got := grad.At(i, j); math.Abs(numeric-got) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("grad[%d,%d] = %v, finite diff %v", i, j, got, numeric)
			}
		}
	}
}

// TestConcurrentTapes drives independent tapes from several goroutines; with
// -race this proves the shared pool never hands one buffer to two tapes.
func TestConcurrentTapes(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			s, x, w, b, w2 := arenaFixture(rand.New(rand.NewSource(seed)))
			tp := NewTape()
			for i := 0; i < 20; i++ {
				loss, _ := arenaLoss(tp, s, x, w, b, w2)
				if err := tp.Backward(loss); err != nil {
					t.Error(err)
					return
				}
				tp.Release()
			}
		}(int64(g + 1))
	}
	wg.Wait()
}
