package ad

import (
	"math"
	"math/rand"
	"testing"

	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

// checkGrad verifies the autodiff gradient of build against central finite
// differences. build must construct the graph from fresh param nodes each
// call so perturbations to the underlying matrices are visible.
func checkGrad(t *testing.T, name string, params []*mat.Dense, build func(tp *Tape, ps []*Node) *Node) {
	t.Helper()
	eval := func() (float64, []*mat.Dense) {
		tp := NewTape()
		nodes := make([]*Node, len(params))
		for i, p := range params {
			nodes[i] = tp.Param(p)
		}
		loss := build(tp, nodes)
		if err := tp.Backward(loss); err != nil {
			t.Fatalf("%s: backward: %v", name, err)
		}
		grads := make([]*mat.Dense, len(params))
		for i, n := range nodes {
			if n.Grad != nil {
				grads[i] = n.Grad.Clone()
			} else {
				grads[i] = mat.New(params[i].Rows(), params[i].Cols())
			}
		}
		return loss.Value.At(0, 0), grads
	}
	_, grads := eval()

	const eps = 1e-6
	for pi, p := range params {
		for i := 0; i < p.Rows(); i++ {
			for j := 0; j < p.Cols(); j++ {
				orig := p.At(i, j)
				p.Set(i, j, orig+eps)
				lp, _ := eval()
				p.Set(i, j, orig-eps)
				lm, _ := eval()
				p.Set(i, j, orig)
				numeric := (lp - lm) / (2 * eps)
				got := grads[pi].At(i, j)
				if math.Abs(numeric-got) > 1e-4*(1+math.Abs(numeric)) {
					t.Fatalf("%s: param %d grad[%d,%d] = %v, finite diff %v", name, pi, i, j, got, numeric)
				}
			}
		}
	}
}

func TestGradMatMulChain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := mat.RandGaussian(rng, 4, 3, 0, 1)
	b := mat.RandGaussian(rng, 3, 5, 0, 1)
	checkGrad(t, "matmul", []*mat.Dense{a, b}, func(tp *Tape, ps []*Node) *Node {
		return tp.SumSquares(tp.MatMul(ps[0], ps[1]))
	})
}

func TestGradSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := sparse.NewCSR(4, 4, []sparse.Coord{
		{Row: 0, Col: 1, Val: 0.5}, {Row: 1, Col: 0, Val: 0.5},
		{Row: 2, Col: 3, Val: 1.5}, {Row: 3, Col: 3, Val: -0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := mat.RandGaussian(rng, 4, 3, 0, 1)
	checkGrad(t, "spmm", []*mat.Dense{x}, func(tp *Tape, ps []*Node) *Node {
		return tp.SumSquares(tp.SpMM(s, ps[0]))
	})
}

func TestGradElementwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := mat.RandGaussian(rng, 3, 4, 0, 1)
	b := mat.RandGaussian(rng, 3, 4, 0, 1)
	checkGrad(t, "add-sub-mul-scale", []*mat.Dense{a, b}, func(tp *Tape, ps []*Node) *Node {
		x := tp.Add(ps[0], ps[1])
		y := tp.Sub(ps[0], ps[1])
		z := tp.Mul(x, y)
		return tp.SumSquares(tp.Scale(0.7, z))
	})
}

func TestGradReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Keep values away from 0 where ReLU is non-differentiable.
	a := mat.Apply(mat.RandGaussian(rng, 4, 4, 0, 1), func(x float64) float64 {
		if math.Abs(x) < 0.1 {
			return x + 0.2
		}
		return x
	})
	checkGrad(t, "relu", []*mat.Dense{a}, func(tp *Tape, ps []*Node) *Node {
		return tp.SumSquares(tp.ReLU(ps[0]))
	})
}

func TestGradRowVecBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := mat.RandGaussian(rng, 5, 3, 0, 1)
	v := mat.RandGaussian(rng, 1, 3, 0, 1)
	checkGrad(t, "addrowvec", []*mat.Dense{a, v}, func(tp *Tape, ps []*Node) *Node {
		return tp.SumSquares(tp.AddRowVec(ps[0], ps[1]))
	})
	checkGrad(t, "subrowvec", []*mat.Dense{a, v}, func(tp *Tape, ps []*Node) *Node {
		return tp.SumSquares(tp.SubRowVec(ps[0], ps[1]))
	})
}

func TestGradMeanRowsAndPow(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := mat.RandGaussian(rng, 6, 3, 0.5, 1)
	checkGrad(t, "central-moment", []*mat.Dense{a}, func(tp *Tape, ps []*Node) *Node {
		mean := tp.MeanRows(ps[0])
		centered := tp.SubRowVec(ps[0], mean)
		third := tp.PowElem(centered, 3)
		return tp.SumSquares(tp.MeanRows(third))
	})
}

func TestGradL2Norm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := mat.RandGaussian(rng, 2, 3, 1, 0.5)
	checkGrad(t, "l2norm", []*mat.Dense{a}, func(tp *Tape, ps []*Node) *Node {
		return tp.L2Norm(ps[0])
	})
}

func TestGradSelectRows(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := mat.RandGaussian(rng, 6, 3, 0, 1)
	checkGrad(t, "selectrows", []*mat.Dense{a}, func(tp *Tape, ps []*Node) *Node {
		return tp.SumSquares(tp.SelectRows(ps[0], []int{4, 0, 0, 2}))
	})
}

func TestGradOrthoPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := mat.RandGaussian(rng, 4, 4, 0, 1)
	checkGrad(t, "ortho", []*mat.Dense{w}, func(tp *Tape, ps []*Node) *Node {
		return tp.OrthoPenalty(ps[0])
	})
}

func TestGradSoftmaxCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	logits := mat.RandGaussian(rng, 6, 4, 0, 1)
	labels := []int{0, 3, 1, 2, 2, 0}
	mask := []int{0, 2, 5}
	checkGrad(t, "softmax-ce", []*mat.Dense{logits}, func(tp *Tape, ps []*Node) *Node {
		return tp.SoftmaxCrossEntropy(ps[0], labels, mask)
	})
}

func TestGradTwoLayerGCNComposite(t *testing.T) {
	// End-to-end composite mirroring the real model wiring:
	// CE(S(ReLU(S·X·W0))·W1) + α·ortho(W0′) + CMD-style moment terms.
	rng := rand.New(rand.NewSource(11))
	s, err := sparse.NewCSR(5, 5, []sparse.Coord{
		{Row: 0, Col: 0, Val: 0.5}, {Row: 0, Col: 1, Val: 0.5},
		{Row: 1, Col: 0, Val: 0.5}, {Row: 1, Col: 1, Val: 0.5},
		{Row: 2, Col: 2, Val: 1}, {Row: 3, Col: 4, Val: 0.7},
		{Row: 4, Col: 3, Val: 0.7}, {Row: 4, Col: 4, Val: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	x := mat.RandGaussian(rng, 5, 3, 0, 1)
	w0 := mat.RandGaussian(rng, 3, 4, 0, 0.7)
	w1 := mat.RandGaussian(rng, 4, 3, 0, 0.7)
	labels := []int{0, 1, 2, 1, 0}
	mask := []int{0, 1, 3}
	globalMean := mat.RandGaussian(rng, 1, 4, 0, 0.3)
	checkGrad(t, "gcn-composite", []*mat.Dense{w0, w1}, func(tp *Tape, ps []*Node) *Node {
		xn := tp.Const(x)
		h := tp.ReLU(tp.SpMM(s, tp.MatMul(xn, ps[0])))
		logits := tp.SpMM(s, tp.MatMul(h, ps[1]))
		ce := tp.SoftmaxCrossEntropy(logits, labels, mask)
		ortho := tp.OrthoPenalty(ps[1])
		cmd := tp.L2Norm(tp.Sub(tp.MeanRows(h), tp.Const(globalMean)))
		return tp.Add(ce, tp.Add(tp.Scale(0.01, ortho), tp.Scale(0.1, cmd)))
	})
}

func TestDropoutTrainEvalBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := mat.RandGaussian(rng, 50, 20, 1, 0.1)
	tp := NewTape()
	n := tp.Param(a)
	// Eval mode: identity, same node returned.
	if got := tp.Dropout(n, 0.5, rng, false); got != n {
		t.Fatal("eval-mode dropout should be identity")
	}
	if got := tp.Dropout(n, 0, rng, true); got != n {
		t.Fatal("p=0 dropout should be identity")
	}
	// Train mode: expectation preserved roughly (inverted dropout).
	d := tp.Dropout(n, 0.5, rng, true)
	ratio := mat.Sum(d.Value) / mat.Sum(a)
	if math.Abs(ratio-1) > 0.15 {
		t.Fatalf("inverted dropout mean ratio = %v, want about 1", ratio)
	}
	// Zeroed entries must stay zero in the gradient path.
	loss := tp.SumSquares(d)
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	for i, v := range d.Value.Data() {
		if v == 0 && n.Grad.Data()[i] != 0 {
			t.Fatal("gradient leaked through dropped element")
		}
	}
}

func TestBackwardErrors(t *testing.T) {
	tp := NewTape()
	a := tp.Param(mat.New(2, 2))
	if err := tp.Backward(a); err == nil {
		t.Fatal("non-scalar loss accepted")
	}
	other := NewTape()
	s := other.SumSquares(other.Param(mat.New(1, 1)))
	if err := tp.Backward(s); err == nil {
		t.Fatal("foreign node accepted")
	}
}

func TestGradAccumulatesOnReusedNode(t *testing.T) {
	// loss = sum((a+a)^2) = 4*sum(a^2) so dloss/da = 8a.
	a, _ := mat.NewFromRows([][]float64{{1, -2}})
	tp := NewTape()
	n := tp.Param(a)
	loss := tp.SumSquares(tp.Add(n, n))
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	if n.Grad.At(0, 0) != 8 || n.Grad.At(0, 1) != -16 {
		t.Fatalf("grad = %v want [8 -16]", n.Grad)
	}
}

func TestSoftmaxOutsideTape(t *testing.T) {
	m, _ := mat.NewFromRows([][]float64{{1000, 1000}, {0, math.Log(3)}})
	p := Softmax(m)
	if math.Abs(p.At(0, 0)-0.5) > 1e-12 {
		t.Fatalf("overflow handling wrong: %v", p.At(0, 0))
	}
	if math.Abs(p.At(1, 1)-0.75) > 1e-12 {
		t.Fatalf("softmax value wrong: %v", p.At(1, 1))
	}
}

func TestConstGetsNoGrad(t *testing.T) {
	tp := NewTape()
	c := tp.Const(mat.Eye(2))
	p := tp.Param(mat.Eye(2))
	loss := tp.SumSquares(tp.Mul(c, p))
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	if c.Grad != nil && mat.FrobNorm(c.Grad) != 0 {
		// Constants may receive a grad buffer via accumGrad, but no op should
		// have pushed into this one beyond the Mul; the important invariant
		// is params got theirs.
		t.Log("const received gradient buffer (allowed)")
	}
	if p.Grad == nil {
		t.Fatal("param missing gradient")
	}
	if !p.IsParam() || c.IsParam() {
		t.Fatal("IsParam flags wrong")
	}
}
