package ad

import (
	"math"

	"fedomd/internal/mat"
)

// Sigmoid records c = 1/(1+e^{−a}) element-wise.
// Gradient: c·(1−c) ⊙ upstream.
func (t *Tape) Sigmoid(a *Node) *Node {
	val := mat.Apply(a.Value, func(x float64) float64 {
		if x >= 0 {
			return 1 / (1 + math.Exp(-x))
		}
		// Equivalent form that avoids overflow for very negative x.
		e := math.Exp(x)
		return e / (1 + e)
	})
	out := &Node{Value: val}
	out.backward = func() {
		g := mat.New(val.Rows(), val.Cols())
		vd, gd, og := val.Data(), g.Data(), out.Grad.Data()
		for i, s := range vd {
			gd[i] = og[i] * s * (1 - s)
		}
		a.accumGrad(g)
	}
	return t.add(out)
}

// Tanh records c = tanh(a) element-wise.
// Gradient: (1−c²) ⊙ upstream.
func (t *Tape) Tanh(a *Node) *Node {
	val := mat.Apply(a.Value, math.Tanh)
	out := &Node{Value: val}
	out.backward = func() {
		g := mat.New(val.Rows(), val.Cols())
		vd, gd, og := val.Data(), g.Data(), out.Grad.Data()
		for i, s := range vd {
			gd[i] = og[i] * (1 - s*s)
		}
		a.accumGrad(g)
	}
	return t.add(out)
}

// LeakyReLU records c = max(a, slope·a) for 0 ≤ slope < 1.
func (t *Tape) LeakyReLU(a *Node, slope float64) *Node {
	val := mat.Apply(a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return slope * x
	})
	out := &Node{Value: val}
	out.backward = func() {
		g := mat.New(val.Rows(), val.Cols())
		ad, gd, og := a.Value.Data(), g.Data(), out.Grad.Data()
		for i, x := range ad {
			if x > 0 {
				gd[i] = og[i]
			} else {
				gd[i] = og[i] * slope
			}
		}
		a.accumGrad(g)
	}
	return t.add(out)
}
