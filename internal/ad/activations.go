package ad

import (
	"math"

	"fedomd/internal/mat"
)

// Sigmoid records c = 1/(1+e^{−a}) element-wise.
// Gradient: c·(1−c) ⊙ upstream, fused into the grad buffer.
func (t *Tape) Sigmoid(a *Node) *Node {
	out := t.op(a.Value.Dims())
	mat.ApplyInto(out.Value, a.Value, func(x float64) float64 {
		if x >= 0 {
			return 1 / (1 + math.Exp(-x))
		}
		// Equivalent form that avoids overflow for very negative x.
		e := math.Exp(x)
		return e / (1 + e)
	})
	out.backward = func() {
		gd := a.grad().Data()
		og := out.Grad.Data()
		for i, s := range out.Value.Data() {
			gd[i] += og[i] * s * (1 - s)
		}
	}
	return out
}

// Tanh records c = tanh(a) element-wise.
// Gradient: (1−c²) ⊙ upstream, fused into the grad buffer.
func (t *Tape) Tanh(a *Node) *Node {
	out := t.op(a.Value.Dims())
	mat.ApplyInto(out.Value, a.Value, math.Tanh)
	out.backward = func() {
		gd := a.grad().Data()
		og := out.Grad.Data()
		for i, s := range out.Value.Data() {
			gd[i] += og[i] * (1 - s*s)
		}
	}
	return out
}

// LeakyReLU records c = max(a, slope·a) for 0 ≤ slope < 1.
func (t *Tape) LeakyReLU(a *Node, slope float64) *Node {
	out := t.op(a.Value.Dims())
	mat.ApplyInto(out.Value, a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return slope * x
	})
	out.backward = func() {
		gd := a.grad().Data()
		og := out.Grad.Data()
		for i, x := range a.Value.Data() {
			if x > 0 {
				gd[i] += og[i]
			} else {
				gd[i] += og[i] * slope
			}
		}
	}
	return out
}
