// Package ad implements reverse-mode automatic differentiation over dense
// matrices. It is the substrate that replaces the PyTorch autodiff the paper
// relies on: models build their forward pass eagerly through the op
// constructors in ops.go and call Tape.Backward on the scalar loss node to
// populate parameter gradients.
//
// Tapes are reusable arenas. A fresh tape works like before — record, then
// Backward — but a long-lived training loop should keep one tape per client
// and call Release after each optimizer step: the node storage is recycled
// across steps and every forward value, gradient and op-internal buffer the
// tape allocated is returned to the mat buffer pool, so a steady-state
// training step performs (almost) no heap allocation.
//
// Gradient correctness for every op is verified against central finite
// differences in grad_test.go.
package ad

import (
	"fmt"

	"fedomd/internal/mat"
	"fedomd/internal/telemetry"
)

// Process-global telemetry: tape growth and backward passes are the
// autodiff cost drivers (every recorded op implies a forward kernel and, if
// reached, a backward one). A single uncontended atomic add per event is
// negligible next to the matrix work each op performs, so these stay on
// unconditionally; reports and /debug/vars pick them up via the telemetry
// registry.
var (
	tapeOpCount   = telemetry.NewCounter("ad/tape_ops")
	backwardCount = telemetry.NewCounter("ad/backward_passes")
)

// Node is one value in the computation graph: its forward result, the
// gradient of the loss with respect to it (populated by Backward), and a
// closure that pushes its gradient to its inputs.
type Node struct {
	// Value is the forward result. It must not be mutated after creation.
	// For op outputs the storage is owned by the tape and is recycled by
	// Release; leaf (Const/Param) values stay caller-owned.
	Value *mat.Dense
	// Grad is ∂loss/∂Value, allocated lazily during the backward pass from
	// the tape's buffer pool. It remains nil for nodes the loss does not
	// depend on, and is only valid until the tape is Released.
	Grad *mat.Dense

	backward func() // nil for leaves and constants
	param    bool
	tape     *Tape
}

// IsParam reports whether the node was created with Tape.Param.
func (n *Node) IsParam() bool { return n.param }

// grad returns n.Grad, allocating a zeroed pool buffer on first use. The
// fused backward kernels accumulate directly into this buffer instead of
// materialising a temporary and adding it.
func (n *Node) grad() *mat.Dense {
	if n.Grad == nil {
		n.Grad = n.tape.newOwned(n.Value.Rows(), n.Value.Cols())
	}
	return n.Grad
}

// accumGrad adds g into n.Grad, allocating on first use. Retained for ops
// whose upstream gradient is already materialised (pure pass-through adds).
func (n *Node) accumGrad(g *mat.Dense) {
	n.grad().AddInPlace(g)
}

// Tape records nodes in creation order. The forward pass is eager: calling
// an op both computes its value and appends it to the tape.
type Tape struct {
	nodes []*Node
	// arena backs the Node structs so step N+1 reuses step N's storage.
	// When append relocates the arena mid-step, previously vended pointers
	// keep referencing the old backing array — still correct, the old nodes
	// simply are not recycled; the grown arena serves subsequent steps.
	arena []Node
	// owned lists every pool buffer this tape allocated (forward values,
	// gradients, op-internal state); Release returns them all.
	owned []*mat.Dense
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len returns the number of recorded nodes.
func (t *Tape) Len() int { return len(t.nodes) }

// newOwned draws a zeroed pool buffer and registers it for Release.
func (t *Tape) newOwned(r, c int) *mat.Dense {
	m := mat.GetDense(r, c)
	t.owned = append(t.owned, m)
	return m
}

// node vends a Node from the arena, records it, and returns it.
func (t *Tape) node(v *mat.Dense) *Node {
	tapeOpCount.Add(1)
	if len(t.arena) == cap(t.arena) {
		t.arena = append(t.arena, Node{})
	} else {
		t.arena = t.arena[:len(t.arena)+1]
	}
	n := &t.arena[len(t.arena)-1]
	*n = Node{Value: v, tape: t}
	t.nodes = append(t.nodes, n)
	return n
}

// op vends a node whose value is a fresh tape-owned r×c pool buffer.
func (t *Tape) op(r, c int) *Node {
	return t.node(t.newOwned(r, c))
}

// Const records a constant: no gradient flows into it.
func (t *Tape) Const(v *mat.Dense) *Node {
	return t.node(v)
}

// Param records a trainable parameter leaf. Its Grad is populated by
// Backward; the caller owns applying the update.
func (t *Tape) Param(v *mat.Dense) *Node {
	n := t.node(v)
	n.param = true
	return n
}

// Reset clears the recorded graph while keeping the node arena, so the next
// step records without re-growing the slices. The buffers the tape allocated
// are abandoned to the garbage collector — use Release to recycle them.
func (t *Tape) Reset() {
	t.nodes = t.nodes[:0]
	t.arena = t.arena[:0]
	t.owned = t.owned[:0]
}

// Release returns every buffer the tape allocated (forward values, gradients
// and op-internal state) to the mat buffer pool, then Resets. Call it after
// the optimizer step has consumed the gradients: no Value or Grad of a
// non-leaf node, nor any slice derived from one, may be used afterwards.
// Leaf (Const/Param) values are caller-owned and untouched.
func (t *Tape) Release() {
	for i, m := range t.owned {
		mat.PutDense(m)
		t.owned[i] = nil
	}
	t.Reset()
}

// Backward runs reverse-mode differentiation from the scalar node loss,
// which must be 1×1 and recorded on this tape. After it returns, every node
// the loss depends on carries its gradient.
func (t *Tape) Backward(loss *Node) error {
	if loss.Value.Rows() != 1 || loss.Value.Cols() != 1 {
		return fmt.Errorf("ad: Backward needs a scalar loss, got %dx%d", loss.Value.Rows(), loss.Value.Cols())
	}
	idx := -1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if t.nodes[i] == loss {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("ad: loss node not recorded on this tape")
	}
	backwardCount.Add(1)
	seed := loss.grad()
	seed.Zero()
	seed.Set(0, 0, 1)
	for i := idx; i >= 0; i-- {
		n := t.nodes[i]
		if n.Grad == nil || n.backward == nil {
			continue
		}
		n.backward()
	}
	return nil
}

// ZeroGrads clears gradients on every node of the tape (useful when a tape is
// reused for gradient checking). The detached buffers stay registered with
// the tape and are recycled by the next Release.
func (t *Tape) ZeroGrads() {
	for _, n := range t.nodes {
		n.Grad = nil
	}
}
