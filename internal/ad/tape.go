// Package ad implements reverse-mode automatic differentiation over dense
// matrices. It is the substrate that replaces the PyTorch autodiff the paper
// relies on: models build a fresh tape per training step, run their forward
// pass eagerly through the op constructors in ops.go, and call
// Tape.Backward on the scalar loss node to populate parameter gradients.
//
// Gradient correctness for every op is verified against central finite
// differences in grad_test.go.
package ad

import (
	"fmt"

	"fedomd/internal/mat"
	"fedomd/internal/telemetry"
)

// Process-global telemetry: tape growth and backward passes are the
// autodiff cost drivers (every recorded op implies a forward kernel and, if
// reached, a backward one). A single uncontended atomic add per event is
// negligible next to the matrix work each op performs, so these stay on
// unconditionally; reports and /debug/vars pick them up via the telemetry
// registry.
var (
	tapeOpCount   = telemetry.NewCounter("ad/tape_ops")
	backwardCount = telemetry.NewCounter("ad/backward_passes")
)

// Node is one value in the computation graph: its forward result, the
// gradient of the loss with respect to it (populated by Backward), and a
// closure that pushes its gradient to its inputs.
type Node struct {
	// Value is the forward result. It must not be mutated after creation.
	Value *mat.Dense
	// Grad is ∂loss/∂Value, allocated lazily during the backward pass.
	// It remains nil for nodes the loss does not depend on.
	Grad *mat.Dense

	backward func() // nil for leaves and constants
	param    bool
}

// IsParam reports whether the node was created with Tape.Param.
func (n *Node) IsParam() bool { return n.param }

// accumGrad adds g into n.Grad, allocating on first use.
func (n *Node) accumGrad(g *mat.Dense) {
	if n.Grad == nil {
		n.Grad = mat.New(n.Value.Rows(), n.Value.Cols())
	}
	n.Grad.AddInPlace(g)
}

// Tape records nodes in creation order. The forward pass is eager: calling
// an op both computes its value and appends it to the tape.
type Tape struct {
	nodes []*Node
}

// NewTape returns an empty tape.
func NewTape() *Tape { return &Tape{} }

// Len returns the number of recorded nodes.
func (t *Tape) Len() int { return len(t.nodes) }

// add appends a node to the tape and returns it.
func (t *Tape) add(n *Node) *Node {
	tapeOpCount.Add(1)
	t.nodes = append(t.nodes, n)
	return n
}

// Const records a constant: no gradient flows into it.
func (t *Tape) Const(v *mat.Dense) *Node {
	return t.add(&Node{Value: v})
}

// Param records a trainable parameter leaf. Its Grad is populated by
// Backward; the caller owns applying the update.
func (t *Tape) Param(v *mat.Dense) *Node {
	return t.add(&Node{Value: v, param: true})
}

// Backward runs reverse-mode differentiation from the scalar node loss,
// which must be 1×1 and recorded on this tape. After it returns, every node
// the loss depends on carries its gradient.
func (t *Tape) Backward(loss *Node) error {
	if loss.Value.Rows() != 1 || loss.Value.Cols() != 1 {
		return fmt.Errorf("ad: Backward needs a scalar loss, got %dx%d", loss.Value.Rows(), loss.Value.Cols())
	}
	idx := -1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		if t.nodes[i] == loss {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("ad: loss node not recorded on this tape")
	}
	backwardCount.Add(1)
	seed := mat.New(1, 1)
	seed.Set(0, 0, 1)
	loss.Grad = seed
	for i := idx; i >= 0; i-- {
		n := t.nodes[i]
		if n.Grad == nil || n.backward == nil {
			continue
		}
		n.backward()
	}
	return nil
}

// ZeroGrads clears gradients on every node of the tape (useful when a tape is
// reused for gradient checking).
func (t *Tape) ZeroGrads() {
	for _, n := range t.nodes {
		n.Grad = nil
	}
}
