package ad

import (
	"testing"

	"fedomd/internal/mat"
)

func TestZeroGrads(t *testing.T) {
	tp := NewTape()
	p := tp.Param(mat.Eye(2))
	loss := tp.SumSquares(p)
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	if p.Grad == nil {
		t.Fatal("no gradient before reset")
	}
	tp.ZeroGrads()
	if p.Grad != nil || loss.Grad != nil {
		t.Fatal("ZeroGrads left gradients behind")
	}
	// Backward works again after a reset.
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	if p.Grad == nil {
		t.Fatal("no gradient after reset+backward")
	}
}

func TestTapeLenGrows(t *testing.T) {
	tp := NewTape()
	if tp.Len() != 0 {
		t.Fatal("fresh tape not empty")
	}
	a := tp.Param(mat.Eye(2))
	tp.Add(a, a)
	if tp.Len() != 2 {
		t.Fatalf("tape len = %d want 2", tp.Len())
	}
}

func TestBackwardStopsAtLossNode(t *testing.T) {
	// Nodes recorded after the loss must not receive gradients.
	tp := NewTape()
	p := tp.Param(mat.Eye(2))
	loss := tp.SumSquares(p)
	later := tp.Scale(2, p)
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	if later.Grad != nil {
		t.Fatal("post-loss node received gradient")
	}
}

func TestPowElemNegativePowerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative power accepted")
		}
	}()
	tp := NewTape()
	tp.PowElem(tp.Param(mat.Eye(2)), -1)
}

func TestSoftmaxCEValidation(t *testing.T) {
	tp := NewTape()
	logits := tp.Param(mat.New(2, 3))
	for name, f := range map[string]func(){
		"label-count": func() { tp.SoftmaxCrossEntropy(logits, []int{0}, []int{0}) },
		"empty-mask":  func() { tp.SoftmaxCrossEntropy(logits, []int{0, 1}, nil) },
		"bad-label":   func() { tp.SoftmaxCrossEntropy(logits, []int{0, 9}, []int{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted", name)
				}
			}()
			f()
		}()
	}
}
