package ad

import (
	"testing"

	"fedomd/internal/mat"
)

// TestTapeCounters verifies the global tape-op and backward-pass counters
// advance with autodiff work (other tests run in the same process, so only
// deltas are meaningful).
func TestTapeCounters(t *testing.T) {
	ops0, bw0 := tapeOpCount.Value(), backwardCount.Value()
	tp := NewTape()
	a := tp.Param(mat.NewFromData(1, 2, []float64{1, 2}))
	loss := tp.SumSquares(tp.Mul(a, a))
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	if got := tapeOpCount.Value() - ops0; got != int64(tp.Len()) {
		t.Fatalf("tape op counter advanced by %d, tape recorded %d nodes", got, tp.Len())
	}
	if got := backwardCount.Value() - bw0; got != 1 {
		t.Fatalf("backward counter advanced by %d want 1", got)
	}
}
