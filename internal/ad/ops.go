package ad

import (
	"fmt"
	"math"
	"math/rand"

	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

// MatMul records c = a·b.
// Gradients: ∂L/∂a = ∂L/∂c · bᵀ, ∂L/∂b = aᵀ · ∂L/∂c.
func (t *Tape) MatMul(a, b *Node) *Node {
	out := &Node{Value: mat.MatMul(a.Value, b.Value)}
	out.backward = func() {
		a.accumGrad(mat.MatMulT2(out.Grad, b.Value))
		b.accumGrad(mat.MatMulT1(a.Value, out.Grad))
	}
	return t.add(out)
}

// SpMM records c = S·x for a constant sparse operator S (the graph
// propagation matrix). Gradient: ∂L/∂x = Sᵀ·∂L/∂c.
func (t *Tape) SpMM(s *sparse.CSR, x *Node) *Node {
	out := &Node{Value: s.MulDense(x.Value)}
	out.backward = func() {
		x.accumGrad(s.TMulDense(out.Grad))
	}
	return t.add(out)
}

// Add records c = a + b element-wise.
func (t *Tape) Add(a, b *Node) *Node {
	out := &Node{Value: mat.Add(a.Value, b.Value)}
	out.backward = func() {
		a.accumGrad(out.Grad)
		b.accumGrad(out.Grad)
	}
	return t.add(out)
}

// Sub records c = a − b element-wise.
func (t *Tape) Sub(a, b *Node) *Node {
	out := &Node{Value: mat.Sub(a.Value, b.Value)}
	out.backward = func() {
		a.accumGrad(out.Grad)
		b.accumGrad(mat.Scale(-1, out.Grad))
	}
	return t.add(out)
}

// Mul records the Hadamard product c = a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	out := &Node{Value: mat.MulElem(a.Value, b.Value)}
	out.backward = func() {
		a.accumGrad(mat.MulElem(out.Grad, b.Value))
		b.accumGrad(mat.MulElem(out.Grad, a.Value))
	}
	return t.add(out)
}

// Scale records c = s·a for a constant scalar s.
func (t *Tape) Scale(s float64, a *Node) *Node {
	out := &Node{Value: mat.Scale(s, a.Value)}
	out.backward = func() {
		a.accumGrad(mat.Scale(s, out.Grad))
	}
	return t.add(out)
}

// AddRowVec records c = a + v with v a 1×cols bias broadcast over rows.
// Gradient to v is the column-wise sum of the upstream gradient.
func (t *Tape) AddRowVec(a, v *Node) *Node {
	out := &Node{Value: mat.AddRowVec(a.Value, v.Value)}
	out.backward = func() {
		a.accumGrad(out.Grad)
		v.accumGrad(mat.SumRows(out.Grad))
	}
	return t.add(out)
}

// SubRowVec records c = a − v with v a 1×cols row vector broadcast over rows.
func (t *Tape) SubRowVec(a, v *Node) *Node {
	out := &Node{Value: mat.SubRowVec(a.Value, v.Value)}
	out.backward = func() {
		a.accumGrad(out.Grad)
		v.accumGrad(mat.Scale(-1, mat.SumRows(out.Grad)))
	}
	return t.add(out)
}

// ReLU records c = max(a, 0).
func (t *Tape) ReLU(a *Node) *Node {
	out := &Node{Value: mat.Apply(a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})}
	out.backward = func() {
		g := mat.New(a.Value.Rows(), a.Value.Cols())
		av := a.Value.Data()
		gd := g.Data()
		og := out.Grad.Data()
		for i, x := range av {
			if x > 0 {
				gd[i] = og[i]
			}
		}
		a.accumGrad(g)
	}
	return t.add(out)
}

// Dropout records inverted dropout with drop probability p, drawing the mask
// from rng. With train=false (or p=0) it is the identity.
func (t *Tape) Dropout(a *Node, p float64, rng *rand.Rand, train bool) *Node {
	if !train || p == 0 {
		return a
	}
	keep := 1 - p
	mask := mat.New(a.Value.Rows(), a.Value.Cols())
	md := mask.Data()
	for i := range md {
		if rng.Float64() < keep {
			md[i] = 1 / keep
		}
	}
	out := &Node{Value: mat.MulElem(a.Value, mask)}
	out.backward = func() {
		a.accumGrad(mat.MulElem(out.Grad, mask))
	}
	return t.add(out)
}

// MeanRows records the 1×cols column-wise mean of a.
func (t *Tape) MeanRows(a *Node) *Node {
	out := &Node{Value: mat.MeanRows(a.Value)}
	out.backward = func() {
		n := a.Value.Rows()
		if n == 0 {
			return
		}
		g := mat.New(n, a.Value.Cols())
		inv := 1 / float64(n)
		for i := 0; i < n; i++ {
			row := g.Row(i)
			for j := range row {
				row[j] = out.Grad.At(0, j) * inv
			}
		}
		a.accumGrad(g)
	}
	return t.add(out)
}

// PowElem records c = a^p element-wise for a non-negative integer power p.
// Gradient: p·a^(p−1) ⊙ upstream.
func (t *Tape) PowElem(a *Node, p int) *Node {
	if p < 0 {
		panic(fmt.Sprintf("ad: PowElem power must be >= 0, got %d", p))
	}
	out := &Node{Value: mat.PowElem(a.Value, p)}
	out.backward = func() {
		if p == 0 {
			return
		}
		deriv := mat.Scale(float64(p), mat.PowElem(a.Value, p-1))
		a.accumGrad(mat.MulElem(out.Grad, deriv))
	}
	return t.add(out)
}

// SelectRows records c = a[idx, :] (row gather). Gradient scatters back.
func (t *Tape) SelectRows(a *Node, idx []int) *Node {
	out := &Node{Value: a.Value.SelectRows(idx)}
	out.backward = func() {
		g := mat.New(a.Value.Rows(), a.Value.Cols())
		for i, r := range idx {
			dst := g.Row(r)
			src := out.Grad.Row(i)
			for j, v := range src {
				dst[j] += v
			}
		}
		a.accumGrad(g)
	}
	return t.add(out)
}

// L2Norm records the scalar ‖a‖₂ over all elements (Frobenius norm for
// matrices). At a = 0 the subgradient 0 is used.
func (t *Tape) L2Norm(a *Node) *Node {
	norm := mat.FrobNorm(a.Value)
	v := mat.New(1, 1)
	v.Set(0, 0, norm)
	out := &Node{Value: v}
	out.backward = func() {
		if norm == 0 {
			return
		}
		a.accumGrad(mat.Scale(out.Grad.At(0, 0)/norm, a.Value))
	}
	return t.add(out)
}

// SumSquares records the scalar Σ a_ij² = ‖a‖²_F.
func (t *Tape) SumSquares(a *Node) *Node {
	v := mat.New(1, 1)
	v.Set(0, 0, mat.FrobNormSq(a.Value))
	out := &Node{Value: v}
	out.backward = func() {
		a.accumGrad(mat.Scale(2*out.Grad.At(0, 0), a.Value))
	}
	return t.add(out)
}

// AddScalar records c = a + b for 1×1 nodes (loss composition).
func (t *Tape) AddScalar(a, b *Node) *Node { return t.Add(a, b) }

// OrthoPenalty records the orthogonality reconstruction loss of eq. 6,
//
//	f(W) = ‖W·Wᵀ − I‖_F,
//
// with gradient ∂f/∂W = 2·(WWᵀ−I)·W / f (zero subgradient at f = 0).
func (t *Tape) OrthoPenalty(w *Node) *Node {
	g := mat.MatMulT2(w.Value, w.Value)
	for i := 0; i < g.Rows(); i++ {
		g.Set(i, i, g.At(i, i)-1)
	}
	f := mat.FrobNorm(g)
	v := mat.New(1, 1)
	v.Set(0, 0, f)
	out := &Node{Value: v}
	out.backward = func() {
		if f == 0 {
			return
		}
		grad := mat.Scale(2*out.Grad.At(0, 0)/f, mat.MatMul(g, w.Value))
		w.accumGrad(grad)
	}
	return t.add(out)
}

// SoftmaxCrossEntropy records the mean cross-entropy between softmax(logits)
// and integer labels over the rows listed in maskIdx. Rows outside maskIdx
// contribute neither loss nor gradient — this implements the semi-supervised
// node-classification objective where only a small training mask is labelled.
//
// The op fuses log-softmax and NLL for numerical stability; its gradient on
// a masked row is (softmax(row) − onehot(label)) / |maskIdx|.
func (t *Tape) SoftmaxCrossEntropy(logits *Node, labels []int, maskIdx []int) *Node {
	n, c := logits.Value.Dims()
	if len(labels) != n {
		panic(fmt.Sprintf("ad: SoftmaxCrossEntropy got %d labels for %d rows", len(labels), n))
	}
	if len(maskIdx) == 0 {
		panic("ad: SoftmaxCrossEntropy with empty mask")
	}
	probs := mat.New(len(maskIdx), c)
	var loss float64
	for mi, r := range maskIdx {
		row := logits.Value.Row(r)
		maxv := math.Inf(-1)
		for _, x := range row {
			if x > maxv {
				maxv = x
			}
		}
		var sum float64
		prow := probs.Row(mi)
		for j, x := range row {
			e := math.Exp(x - maxv)
			prow[j] = e
			sum += e
		}
		for j := range prow {
			prow[j] /= sum
		}
		y := labels[r]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("ad: label %d out of range [0,%d) at row %d", y, c, r))
		}
		loss -= math.Log(math.Max(prow[y], 1e-300))
	}
	loss /= float64(len(maskIdx))
	v := mat.New(1, 1)
	v.Set(0, 0, loss)
	out := &Node{Value: v}
	out.backward = func() {
		scale := out.Grad.At(0, 0) / float64(len(maskIdx))
		g := mat.New(n, c)
		for mi, r := range maskIdx {
			prow := probs.Row(mi)
			grow := g.Row(r)
			for j, p := range prow {
				grow[j] = p * scale
			}
			grow[labels[r]] -= scale
		}
		logits.accumGrad(g)
	}
	return t.add(out)
}

// Softmax computes row-wise softmax of m outside the tape (inference only).
func Softmax(m *mat.Dense) *mat.Dense {
	out := mat.New(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		orow := out.Row(i)
		maxv := math.Inf(-1)
		for _, x := range row {
			if x > maxv {
				maxv = x
			}
		}
		var sum float64
		for j, x := range row {
			e := math.Exp(x - maxv)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}
