package ad

import (
	"fmt"
	"math"
	"math/rand"

	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

// Backward closures accumulate directly into the input nodes' gradient
// buffers via the fused *AddInto / AXPY kernels in mat and sparse — no
// backward op materialises a full-size temporary. grad() hands out a zeroed
// pool buffer on first touch, so "accumulate" and "initialise" are the same
// write.

// MatMul records c = a·b.
// Gradients: ∂L/∂a = ∂L/∂c · bᵀ, ∂L/∂b = aᵀ · ∂L/∂c.
func (t *Tape) MatMul(a, b *Node) *Node {
	if a.Value.Cols() != b.Value.Rows() {
		panic(fmt.Sprintf("ad: MatMul inner dimension mismatch %dx%d · %dx%d",
			a.Value.Rows(), a.Value.Cols(), b.Value.Rows(), b.Value.Cols()))
	}
	out := t.op(a.Value.Rows(), b.Value.Cols())
	mat.MatMulInto(out.Value, a.Value, b.Value)
	out.backward = func() {
		mat.MatMulT2AddInto(a.grad(), out.Grad, b.Value)
		mat.MatMulT1AddInto(b.grad(), a.Value, out.Grad)
	}
	return out
}

// SpMM records c = S·x for a constant sparse operator S (the graph
// propagation matrix). Gradient: ∂L/∂x = Sᵀ·∂L/∂c.
func (t *Tape) SpMM(s *sparse.CSR, x *Node) *Node {
	out := t.op(s.Rows(), x.Value.Cols())
	s.MulDenseInto(out.Value, x.Value)
	out.backward = func() {
		s.TMulDenseAddInto(x.grad(), out.Grad)
	}
	return out
}

// Add records c = a + b element-wise.
func (t *Tape) Add(a, b *Node) *Node {
	out := t.op(a.Value.Dims())
	mat.AddInto(out.Value, a.Value, b.Value)
	out.backward = func() {
		a.grad().AddInPlace(out.Grad)
		b.grad().AddInPlace(out.Grad)
	}
	return out
}

// Sub records c = a − b element-wise. The backward pass subtracts the
// upstream gradient in place — no negated temporary.
func (t *Tape) Sub(a, b *Node) *Node {
	out := t.op(a.Value.Dims())
	mat.SubInto(out.Value, a.Value, b.Value)
	out.backward = func() {
		a.grad().AddInPlace(out.Grad)
		b.grad().SubInPlace(out.Grad)
	}
	return out
}

// Mul records the Hadamard product c = a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	out := t.op(a.Value.Dims())
	mat.MulElemInto(out.Value, a.Value, b.Value)
	out.backward = func() {
		mat.MulElemAddInto(a.grad(), out.Grad, b.Value)
		mat.MulElemAddInto(b.grad(), out.Grad, a.Value)
	}
	return out
}

// Scale records c = s·a for a constant scalar s.
func (t *Tape) Scale(s float64, a *Node) *Node {
	out := t.op(a.Value.Dims())
	mat.ScaleInto(out.Value, s, a.Value)
	out.backward = func() {
		a.grad().AXPY(s, out.Grad)
	}
	return out
}

// AddRowVec records c = a + v with v a 1×cols bias broadcast over rows.
// Gradient to v is the column-wise sum of the upstream gradient.
func (t *Tape) AddRowVec(a, v *Node) *Node {
	out := t.op(a.Value.Dims())
	mat.AddRowVecInto(out.Value, a.Value, v.Value)
	out.backward = func() {
		a.grad().AddInPlace(out.Grad)
		mat.SumRowsAXPY(v.grad(), 1, out.Grad)
	}
	return out
}

// SubRowVec records c = a − v with v a 1×cols row vector broadcast over
// rows. The v gradient is the negated column sum, accumulated directly.
func (t *Tape) SubRowVec(a, v *Node) *Node {
	out := t.op(a.Value.Dims())
	mat.SubRowVecInto(out.Value, a.Value, v.Value)
	out.backward = func() {
		a.grad().AddInPlace(out.Grad)
		mat.SumRowsAXPY(v.grad(), -1, out.Grad)
	}
	return out
}

// ReLU records c = max(a, 0). The backward pass fuses the mask with the
// accumulation: upstream gradient flows into the grad buffer only where the
// input was positive, with no mask-sized temporary.
func (t *Tape) ReLU(a *Node) *Node {
	out := t.op(a.Value.Dims())
	mat.ApplyInto(out.Value, a.Value, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	})
	out.backward = func() {
		gd := a.grad().Data()
		og := out.Grad.Data()
		for i, x := range a.Value.Data() {
			if x > 0 {
				gd[i] += og[i]
			}
		}
	}
	return out
}

// Dropout records inverted dropout with drop probability p, drawing the mask
// from rng. With train=false (or p=0) it is the identity.
func (t *Tape) Dropout(a *Node, p float64, rng *rand.Rand, train bool) *Node {
	if !train || p == 0 {
		return a
	}
	keep := 1 - p
	mask := t.newOwned(a.Value.Dims())
	md := mask.Data()
	for i := range md {
		if rng.Float64() < keep {
			md[i] = 1 / keep
		}
	}
	out := t.op(a.Value.Dims())
	mat.MulElemInto(out.Value, a.Value, mask)
	out.backward = func() {
		mat.MulElemAddInto(a.grad(), out.Grad, mask)
	}
	return out
}

// MeanRows records the 1×cols column-wise mean of a.
func (t *Tape) MeanRows(a *Node) *Node {
	out := t.op(1, a.Value.Cols())
	mat.MeanRowsInto(out.Value, a.Value)
	out.backward = func() {
		n := a.Value.Rows()
		if n == 0 {
			return
		}
		a.grad().AXPYRowBroadcast(1/float64(n), out.Grad)
	}
	return out
}

// PowElem records c = a^p element-wise for a non-negative integer power p.
// Gradient: p·a^(p−1) ⊙ upstream, fused into the grad buffer.
func (t *Tape) PowElem(a *Node, p int) *Node {
	if p < 0 {
		panic(fmt.Sprintf("ad: PowElem power must be >= 0, got %d", p))
	}
	out := t.op(a.Value.Dims())
	mat.PowElemInto(out.Value, a.Value, p)
	out.backward = func() {
		if p == 0 {
			return
		}
		gd := a.grad().Data()
		og := out.Grad.Data()
		fp := float64(p)
		for i, x := range a.Value.Data() {
			gd[i] += og[i] * fp * mat.IPow(x, p-1)
		}
	}
	return out
}

// SelectRows records c = a[idx, :] (row gather). Gradient scatters back
// directly into the grad buffer.
func (t *Tape) SelectRows(a *Node, idx []int) *Node {
	out := t.op(len(idx), a.Value.Cols())
	a.Value.SelectRowsInto(out.Value, idx)
	out.backward = func() {
		g := a.grad()
		for i, r := range idx {
			dst := g.Row(r)
			for j, v := range out.Grad.Row(i) {
				dst[j] += v
			}
		}
	}
	return out
}

// L2Norm records the scalar ‖a‖₂ over all elements (Frobenius norm for
// matrices). At a = 0 the subgradient 0 is used.
func (t *Tape) L2Norm(a *Node) *Node {
	norm := mat.FrobNorm(a.Value)
	out := t.op(1, 1)
	out.Value.Set(0, 0, norm)
	out.backward = func() {
		if norm == 0 {
			return
		}
		a.grad().AXPY(out.Grad.At(0, 0)/norm, a.Value)
	}
	return out
}

// SumSquares records the scalar Σ a_ij² = ‖a‖²_F.
func (t *Tape) SumSquares(a *Node) *Node {
	out := t.op(1, 1)
	out.Value.Set(0, 0, mat.FrobNormSq(a.Value))
	out.backward = func() {
		a.grad().AXPY(2*out.Grad.At(0, 0), a.Value)
	}
	return out
}

// AddScalar records c = a + b for 1×1 nodes (loss composition).
func (t *Tape) AddScalar(a, b *Node) *Node { return t.Add(a, b) }

// OrthoPenalty records the orthogonality reconstruction loss of eq. 6,
//
//	f(W) = ‖W·Wᵀ − I‖_F,
//
// with gradient ∂f/∂W = 2·(WWᵀ−I)·W / f (zero subgradient at f = 0).
func (t *Tape) OrthoPenalty(w *Node) *Node {
	g := t.newOwned(w.Value.Rows(), w.Value.Rows())
	mat.MatMulT2Into(g, w.Value, w.Value)
	for i := 0; i < g.Rows(); i++ {
		g.Set(i, i, g.At(i, i)-1)
	}
	f := mat.FrobNorm(g)
	out := t.op(1, 1)
	out.Value.Set(0, 0, f)
	out.backward = func() {
		if f == 0 {
			return
		}
		// (WWᵀ−I)·W needs a true product; the temporary comes from the
		// pool and goes straight back.
		tmp := mat.GetDense(w.Value.Dims())
		mat.MatMulInto(tmp, g, w.Value)
		w.grad().AXPY(2*out.Grad.At(0, 0)/f, tmp)
		mat.PutDense(tmp)
	}
	return out
}

// SoftmaxCrossEntropy records the mean cross-entropy between softmax(logits)
// and integer labels over the rows listed in maskIdx. Rows outside maskIdx
// contribute neither loss nor gradient — this implements the semi-supervised
// node-classification objective where only a small training mask is labelled.
//
// The op fuses log-softmax and NLL for numerical stability; its gradient on
// a masked row is (softmax(row) − onehot(label)) / |maskIdx|, written
// directly into the logits gradient buffer.
func (t *Tape) SoftmaxCrossEntropy(logits *Node, labels []int, maskIdx []int) *Node {
	n, c := logits.Value.Dims()
	if len(labels) != n {
		panic(fmt.Sprintf("ad: SoftmaxCrossEntropy got %d labels for %d rows", len(labels), n))
	}
	if len(maskIdx) == 0 {
		panic("ad: SoftmaxCrossEntropy with empty mask")
	}
	probs := t.newOwned(len(maskIdx), c)
	var loss float64
	for mi, r := range maskIdx {
		row := logits.Value.Row(r)
		maxv := math.Inf(-1)
		for _, x := range row {
			if x > maxv {
				maxv = x
			}
		}
		var sum float64
		prow := probs.Row(mi)
		for j, x := range row {
			e := math.Exp(x - maxv)
			prow[j] = e
			sum += e
		}
		for j := range prow {
			prow[j] /= sum
		}
		y := labels[r]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("ad: label %d out of range [0,%d) at row %d", y, c, r))
		}
		loss -= math.Log(math.Max(prow[y], 1e-300))
	}
	loss /= float64(len(maskIdx))
	out := t.op(1, 1)
	out.Value.Set(0, 0, loss)
	out.backward = func() {
		scale := out.Grad.At(0, 0) / float64(len(maskIdx))
		g := logits.grad()
		for mi, r := range maskIdx {
			prow := probs.Row(mi)
			grow := g.Row(r)
			for j, p := range prow {
				grow[j] += p * scale
			}
			grow[labels[r]] -= scale
		}
	}
	return out
}

// Softmax computes row-wise softmax of m outside the tape (inference only).
func Softmax(m *mat.Dense) *mat.Dense {
	out := mat.New(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		row := m.Row(i)
		orow := out.Row(i)
		maxv := math.Inf(-1)
		for _, x := range row {
			if x > maxv {
				maxv = x
			}
		}
		var sum float64
		for j, x := range row {
			e := math.Exp(x - maxv)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}
