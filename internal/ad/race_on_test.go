//go:build race

package ad

// raceEnabled mirrors the race-detector build tag: sync.Pool deliberately
// drops a fraction of Put items when the detector is on, so strict
// zero-miss pool assertions only hold without it.
const raceEnabled = true
