package ad

import (
	"math"
	"math/rand"
	"testing"

	"fedomd/internal/mat"
)

func TestGradSigmoidTanh(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := mat.RandGaussian(rng, 4, 3, 0, 2)
	checkGrad(t, "sigmoid", []*mat.Dense{a}, func(tp *Tape, ps []*Node) *Node {
		return tp.SumSquares(tp.Sigmoid(ps[0]))
	})
	checkGrad(t, "tanh", []*mat.Dense{a}, func(tp *Tape, ps []*Node) *Node {
		return tp.SumSquares(tp.Tanh(ps[0]))
	})
}

func TestGradLeakyReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := mat.Apply(mat.RandGaussian(rng, 4, 4, 0, 1), func(x float64) float64 {
		if math.Abs(x) < 0.1 {
			return x + 0.2 // keep away from the kink
		}
		return x
	})
	checkGrad(t, "leakyrelu", []*mat.Dense{a}, func(tp *Tape, ps []*Node) *Node {
		return tp.SumSquares(tp.LeakyReLU(ps[0], 0.2))
	})
}

func TestSigmoidStability(t *testing.T) {
	x, _ := mat.NewFromRows([][]float64{{-1000, 0, 1000}})
	tp := NewTape()
	s := tp.Sigmoid(tp.Const(x))
	if s.Value.At(0, 0) != 0 || s.Value.At(0, 2) != 1 {
		t.Fatalf("extreme sigmoid values wrong: %v", s.Value)
	}
	if math.Abs(s.Value.At(0, 1)-0.5) > 1e-15 {
		t.Fatalf("sigmoid(0) = %v", s.Value.At(0, 1))
	}
	if math.IsNaN(s.Value.At(0, 0)) {
		t.Fatal("sigmoid overflowed")
	}
}

func TestTanhRange(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := mat.RandGaussian(rng, 10, 10, 0, 5)
	tp := NewTape()
	y := tp.Tanh(tp.Const(x))
	if mat.Max(y.Value) > 1 || mat.Min(y.Value) < -1 {
		t.Fatal("tanh out of range")
	}
}
