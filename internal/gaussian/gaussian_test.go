package gaussian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedomd/internal/mat"
	"fedomd/internal/moments"
)

func sampleData(seed int64, n, d int, mean, std float64) *mat.Dense {
	rng := rand.New(rand.NewSource(seed))
	return mat.RandGaussian(rng, n, d, mean, std)
}

func TestFitRecoversMoments(t *testing.T) {
	x := sampleData(1, 4000, 3, 2, 0.5)
	g, err := Fit(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if math.Abs(g.Mean.At(0, j)-2) > 0.05 {
			t.Fatalf("mean[%d] = %v", j, g.Mean.At(0, j))
		}
		if math.Abs(g.Cov.At(j, j)-0.25) > 0.05 {
			t.Fatalf("var[%d] = %v", j, g.Cov.At(j, j))
		}
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(mat.New(0, 3), 0); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := Fit(mat.New(5, 3), -1); err == nil {
		t.Fatal("negative ridge accepted")
	}
}

func TestFactorReconstructsCovariance(t *testing.T) {
	x := sampleData(2, 300, 4, 0, 1.5)
	g, err := Fit(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := g.Factor()
	if err != nil {
		t.Fatal(err)
	}
	if !mat.MatMulT2(q, q).EqualApprox(g.Cov, 1e-8) {
		t.Fatal("QQᵀ != Σ")
	}
	u, err := g.Basis()
	if err != nil {
		t.Fatal(err)
	}
	if mat.OrthoError(u) > 1e-8 {
		t.Fatal("eigenbasis not orthogonal")
	}
}

func TestProjectDecorrelates(t *testing.T) {
	// Strongly correlated 2D data: projection into the eigenbasis must have
	// a diagonal covariance.
	rng := rand.New(rand.NewSource(3))
	n := 2000
	x := mat.New(n, 2)
	for i := 0; i < n; i++ {
		a := rng.NormFloat64()
		x.Set(i, 0, a+0.1*rng.NormFloat64())
		x.Set(i, 1, a+0.1*rng.NormFloat64())
	}
	g, err := Fit(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Project(x)
	if err != nil {
		t.Fatal(err)
	}
	pcov := mat.Covariance(p)
	if math.Abs(pcov.At(0, 1)) > 1e-8 {
		t.Fatalf("projection did not decorrelate: off-diagonal %v", pcov.At(0, 1))
	}
	if _, err := g.Project(mat.New(2, 5)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestLogDensityPeaksAtMean(t *testing.T) {
	x := sampleData(4, 500, 2, 1, 1)
	g, err := Fit(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts, _ := mat.NewFromRows([][]float64{
		{g.Mean.At(0, 0), g.Mean.At(0, 1)},
		{g.Mean.At(0, 0) + 3, g.Mean.At(0, 1) - 3},
	})
	ld, err := g.LogDensity(pts)
	if err != nil {
		t.Fatal(err)
	}
	if ld[0] <= ld[1] {
		t.Fatalf("density at mean (%v) not above far point (%v)", ld[0], ld[1])
	}
}

func TestLogDensityMatchesClosedForm1D(t *testing.T) {
	// A 1D Gaussian's log density has a closed form to compare against.
	x := sampleData(5, 5000, 1, 0, 2)
	g, err := Fit(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	pt, _ := mat.NewFromRows([][]float64{{1.0}})
	got, err := g.LogDensity(pt)
	if err != nil {
		t.Fatal(err)
	}
	mu, v := g.Mean.At(0, 0), g.Cov.At(0, 0)
	want := -0.5*math.Log(2*math.Pi*v) - (1-mu)*(1-mu)/(2*v)
	if math.Abs(got[0]-want) > 1e-9 {
		t.Fatalf("log density %v want %v", got[0], want)
	}
}

func TestSampleRoundTrip(t *testing.T) {
	x := sampleData(6, 3000, 3, -1, 0.7)
	g, err := Fit(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	y, err := g.Sample(rand.New(rand.NewSource(7)), 5000)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Fit(y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Mean.EqualApprox(g.Mean, 0.08) {
		t.Fatalf("resampled mean %v vs %v", g2.Mean, g.Mean)
	}
	if !g2.Cov.EqualApprox(g.Cov, 0.1) {
		t.Fatal("resampled covariance drifted")
	}
}

func TestMixtureValidation(t *testing.T) {
	g, _ := Fit(sampleData(8, 50, 2, 0, 1), 0)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Fatal("empty mixture accepted")
	}
	if _, err := NewMixture([]*Gaussian{g}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewMixture([]*Gaussian{g}, []float64{0}); err == nil {
		t.Fatal("zero weights accepted")
	}
	h, _ := Fit(sampleData(9, 50, 3, 0, 1), 0)
	if _, err := NewMixture([]*Gaussian{g, h}, []float64{1, 1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestMixtureMeanMatchesFederatedAggregate(t *testing.T) {
	// The GMM mean (eq. 3 composed with eq. 4) must equal the federated
	// global mean of eq. 10 — the two views of the "global distribution".
	a := sampleData(10, 40, 3, 0, 1)
	b := sampleData(11, 120, 3, 2, 0.5)
	m, err := FitMixture([]*mat.Dense{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fedMean, err := moments.AggregateMeans(
		[]*mat.Dense{mat.MeanRows(a), mat.MeanRows(b)}, []int{a.Rows(), b.Rows()})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Mean().EqualApprox(fedMean, 1e-12) {
		t.Fatalf("mixture mean %v != federated mean %v", m.Mean(), fedMean)
	}
}

func TestMixtureDensityBetweenComponents(t *testing.T) {
	a := sampleData(12, 400, 1, -5, 0.5)
	b := sampleData(13, 400, 1, +5, 0.5)
	m, err := FitMixture([]*mat.Dense{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pts, _ := mat.NewFromRows([][]float64{{-5}, {0}, {5}})
	ld, err := m.LogDensity(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !(ld[0] > ld[1] && ld[2] > ld[1]) {
		t.Fatalf("mixture density shape wrong: %v", ld)
	}
}

func TestMixtureSampleProportions(t *testing.T) {
	a := sampleData(14, 300, 1, -10, 0.1)
	b := sampleData(15, 100, 1, +10, 0.1)
	m, err := FitMixture([]*mat.Dense{a, b}, 0)
	if err != nil {
		t.Fatal(err)
	}
	y, err := m.Sample(rand.New(rand.NewSource(16)), 4000)
	if err != nil {
		t.Fatal(err)
	}
	neg := 0
	for i := 0; i < y.Rows(); i++ {
		if y.At(i, 0) < 0 {
			neg++
		}
	}
	frac := float64(neg) / float64(y.Rows())
	if math.Abs(frac-0.75) > 0.05 {
		t.Fatalf("component proportions off: %v negative, want ~0.75", frac)
	}
}

func TestDegenerateCovarianceWithRidge(t *testing.T) {
	// Constant data: covariance is zero; the ridge keeps everything finite.
	x := mat.New(50, 3)
	x.Fill(2)
	g, err := Fit(x, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := g.LogDensity(x.SliceRows(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(ld[0]) || math.IsInf(ld[0], 0) {
		t.Fatalf("degenerate log density = %v", ld[0])
	}
}

func TestProjectIsometryProperty(t *testing.T) {
	// Projection through an orthogonal basis preserves pairwise distances.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 2 + rng.Intn(4)
		x := mat.RandGaussian(rng, 40+rng.Intn(60), d, 0, 1)
		g, err := Fit(x, 1e-9)
		if err != nil {
			return false
		}
		p, err := g.Project(x)
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			i, j := rng.Intn(x.Rows()), rng.Intn(x.Rows())
			var dx, dp float64
			for k := 0; k < d; k++ {
				a := x.At(i, k) - x.At(j, k)
				b := p.At(i, k) - p.At(j, k)
				dx += a * a
				dp += b * b
			}
			if math.Abs(dx-dp) > 1e-6*(1+dx) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
