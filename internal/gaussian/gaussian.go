// Package gaussian implements the distributional machinery of paper §4.3:
// fitting a multivariate Gaussian N(μ, Σ) to hidden features (eq. 4), the
// covariance factorisation Σ = QQᵀ with Q = UΛ^{1/2} (eq. 5), orthogonal
// feature projection through the eigenbasis U, the Gaussian mixture model
// P(y|θ) = Σ αᵢ P(y|θᵢ) the server's global distribution forms (eq. 3), and
// sampling/log-density evaluation for both.
package gaussian

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"fedomd/internal/mat"
)

// Gaussian is a multivariate normal distribution over R^d.
type Gaussian struct {
	Mean *mat.Dense // 1×d
	Cov  *mat.Dense // d×d, symmetric PSD

	// Cached factorisation, built lazily by ensureFactors.
	factor   *mat.Dense // Q with Σ = QQᵀ (Q = UΛ^{1/2})
	basis    *mat.Dense // U, eigenvectors of Σ in columns
	eigvals  []float64  // Λ diagonal, descending
	logDet   float64    // log det Σ (pseudo, over positive eigenvalues)
	factored bool
}

// Fit estimates a Gaussian from the rows of x with the 1/n moment convention
// (matching eq. 10/11). A ridge of eps is added to the covariance diagonal
// so the density exists even for degenerate samples; pass 0 for none.
func Fit(x *mat.Dense, eps float64) (*Gaussian, error) {
	if x.Rows() == 0 {
		return nil, errors.New("gaussian: cannot fit to zero samples")
	}
	if eps < 0 {
		return nil, fmt.Errorf("gaussian: negative ridge %v", eps)
	}
	cov := mat.Covariance(x)
	for i := 0; i < cov.Rows(); i++ {
		cov.Set(i, i, cov.At(i, i)+eps)
	}
	return &Gaussian{Mean: mat.MeanRows(x), Cov: cov}, nil
}

// Dim returns the dimensionality d.
func (g *Gaussian) Dim() int { return g.Mean.Cols() }

// ensureFactors computes the eigendecomposition once.
func (g *Gaussian) ensureFactors() error {
	if g.factored {
		return nil
	}
	vals, u, err := mat.EigSym(g.Cov)
	if err != nil {
		return err
	}
	d := g.Dim()
	q := mat.New(d, d)
	logDet := 0.0
	for j := 0; j < d; j++ {
		l := vals[j]
		if l < 0 {
			l = 0
		}
		if l > 0 {
			logDet += math.Log(l)
		}
		s := math.Sqrt(l)
		for i := 0; i < d; i++ {
			q.Set(i, j, u.At(i, j)*s)
		}
	}
	g.factor = q
	g.basis = u
	g.eigvals = vals
	g.logDet = logDet
	g.factored = true
	return nil
}

// Factor returns Q with Σ = QQᵀ (eq. 5's covariance factor).
func (g *Gaussian) Factor() (*mat.Dense, error) {
	if err := g.ensureFactors(); err != nil {
		return nil, err
	}
	return g.factor.Clone(), nil
}

// Basis returns the orthogonal eigenbasis U of Σ.
func (g *Gaussian) Basis() (*mat.Dense, error) {
	if err := g.ensureFactors(); err != nil {
		return nil, err
	}
	return g.basis.Clone(), nil
}

// Project orthogonally projects feature rows into the eigenbasis of Σ —
// the "feature vector X_i can be orthogonally projected by U" step of §4.3.
// Rows are centred on the mean first.
func (g *Gaussian) Project(x *mat.Dense) (*mat.Dense, error) {
	if x.Cols() != g.Dim() {
		return nil, fmt.Errorf("gaussian: projecting %d-dim rows with a %d-dim model", x.Cols(), g.Dim())
	}
	if err := g.ensureFactors(); err != nil {
		return nil, err
	}
	centered := mat.SubRowVec(x, g.Mean)
	return mat.MatMul(centered, g.basis), nil
}

// LogDensity evaluates the log of eq. 4 at each row of x, using the
// pseudo-inverse over the positive eigenvalues so near-singular covariances
// remain usable.
func (g *Gaussian) LogDensity(x *mat.Dense) ([]float64, error) {
	proj, err := g.Project(x) // rows in eigenbasis coordinates
	if err != nil {
		return nil, err
	}
	d := g.Dim()
	rank := 0
	for _, l := range g.eigvals {
		if l > 1e-12 {
			rank++
		}
	}
	norm := -0.5 * (float64(rank)*math.Log(2*math.Pi) + g.logDet)
	out := make([]float64, x.Rows())
	for i := range out {
		row := proj.Row(i)
		var quad float64
		for j := 0; j < d; j++ {
			if g.eigvals[j] > 1e-12 {
				quad += row[j] * row[j] / g.eigvals[j]
			}
		}
		out[i] = norm - 0.5*quad
	}
	return out, nil
}

// Sample draws n rows from the distribution: x = μ + Q·z with z ~ N(0, I).
func (g *Gaussian) Sample(rng *rand.Rand, n int) (*mat.Dense, error) {
	if err := g.ensureFactors(); err != nil {
		return nil, err
	}
	d := g.Dim()
	z := mat.RandGaussian(rng, n, d, 0, 1)
	x := mat.MatMulT2(z, g.factor) // z·Qᵀ
	return mat.AddRowVec(x, g.Mean), nil
}

// Mixture is the Gaussian mixture model of eq. 3: the server's view of the
// global feature distribution, one component per client weighted by its
// sample share.
type Mixture struct {
	Weights    []float64
	Components []*Gaussian
}

// NewMixture validates and assembles a mixture; weights are normalised to
// sum to 1.
func NewMixture(components []*Gaussian, weights []float64) (*Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return nil, fmt.Errorf("gaussian: %d components with %d weights", len(components), len(weights))
	}
	d := components[0].Dim()
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("gaussian: negative weight %v", w)
		}
		if components[i].Dim() != d {
			return nil, fmt.Errorf("gaussian: component %d has dim %d, want %d", i, components[i].Dim(), d)
		}
		total += w
	}
	if total == 0 {
		return nil, errors.New("gaussian: weights sum to zero")
	}
	norm := make([]float64, len(weights))
	for i, w := range weights {
		norm[i] = w / total
	}
	return &Mixture{Weights: norm, Components: components}, nil
}

// FitMixture fits one Gaussian per client sample block and weights each by
// its sample count — exactly how the federated server's global distribution
// arises from the parties (eq. 3 with αᵢ = nᵢ/Σn).
func FitMixture(clients []*mat.Dense, eps float64) (*Mixture, error) {
	comps := make([]*Gaussian, len(clients))
	weights := make([]float64, len(clients))
	for i, x := range clients {
		g, err := Fit(x, eps)
		if err != nil {
			return nil, fmt.Errorf("gaussian: client %d: %w", i, err)
		}
		comps[i] = g
		weights[i] = float64(x.Rows())
	}
	return NewMixture(comps, weights)
}

// LogDensity evaluates the mixture log-density at each row of x with a
// numerically stable log-sum-exp over components.
func (m *Mixture) LogDensity(x *mat.Dense) ([]float64, error) {
	perComp := make([][]float64, len(m.Components))
	for c, g := range m.Components {
		ld, err := g.LogDensity(x)
		if err != nil {
			return nil, err
		}
		perComp[c] = ld
	}
	out := make([]float64, x.Rows())
	for i := range out {
		maxv := math.Inf(-1)
		for c := range m.Components {
			if v := perComp[c][i] + math.Log(m.Weights[c]); v > maxv {
				maxv = v
			}
		}
		var sum float64
		for c := range m.Components {
			sum += math.Exp(perComp[c][i] + math.Log(m.Weights[c]) - maxv)
		}
		out[i] = maxv + math.Log(sum)
	}
	return out, nil
}

// Sample draws n rows, picking a component per row by weight.
func (m *Mixture) Sample(rng *rand.Rand, n int) (*mat.Dense, error) {
	d := m.Components[0].Dim()
	out := mat.New(n, d)
	for i := 0; i < n; i++ {
		c := m.pick(rng)
		row, err := m.Components[c].Sample(rng, 1)
		if err != nil {
			return nil, err
		}
		copy(out.Row(i), row.Row(0))
	}
	return out, nil
}

func (m *Mixture) pick(rng *rand.Rand) int {
	r := rng.Float64()
	var acc float64
	for c, w := range m.Weights {
		acc += w
		if r < acc {
			return c
		}
	}
	return len(m.Weights) - 1
}

// Mean returns the mixture mean Σ αᵢ μᵢ, which equals the federated global
// mean of eq. 10.
func (m *Mixture) Mean() *mat.Dense {
	out := mat.New(1, m.Components[0].Dim())
	for c, g := range m.Components {
		out.AXPY(m.Weights[c], g.Mean)
	}
	return out
}
