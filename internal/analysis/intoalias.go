package analysis

import (
	"go/ast"
)

// IntoAlias flags calls to the fused destination-writing kernels where the
// destination expression is syntactically identical to one of the source
// expressions. Every kernel listed in noAliasKernels documents that its
// output must not alias its inputs (the row-blocked matmul loops read inputs
// while writing out, so aliasing corrupts the result silently); ApplyInto is
// deliberately absent because its contract allows out == a.
var IntoAlias = &Analyzer{
	Name: "intoalias",
	Doc:  "destination of a *Into/*AddInto/AXPY kernel must not alias a source",
	Run:  runIntoAlias,
}

// recvIdx marks the method receiver in a kernelSpec position.
const recvIdx = -1

// kernelSpec records which call positions are the destination and the
// no-alias sources of one kernel. Positions are argument indices, or recvIdx
// for the method receiver.
type kernelSpec struct {
	dst  int
	srcs []int
}

var noAliasKernels = map[string]kernelSpec{
	// matmul.go: out is always the first argument, both inputs are read
	// concurrently with the write.
	pathMat + ".MatMulInto":      {dst: 0, srcs: []int{1, 2}},
	pathMat + ".MatMulAddInto":   {dst: 0, srcs: []int{1, 2}},
	pathMat + ".MatMulT1Into":    {dst: 0, srcs: []int{1, 2}},
	pathMat + ".MatMulT1AddInto": {dst: 0, srcs: []int{1, 2}},
	pathMat + ".MatMulT2Into":    {dst: 0, srcs: []int{1, 2}},
	pathMat + ".MatMulT2AddInto": {dst: 0, srcs: []int{1, 2}},
	// ops.go *Into family ("out must not alias the inputs unless noted").
	pathMat + ".AddInto":        {dst: 0, srcs: []int{1, 2}},
	pathMat + ".SubInto":        {dst: 0, srcs: []int{1, 2}},
	pathMat + ".MulElemInto":    {dst: 0, srcs: []int{1, 2}},
	pathMat + ".MulElemAddInto": {dst: 0, srcs: []int{1, 2}},
	pathMat + ".ScaleInto":      {dst: 0, srcs: []int{2}},
	pathMat + ".AddRowVecInto":  {dst: 0, srcs: []int{1, 2}},
	pathMat + ".SubRowVecInto":  {dst: 0, srcs: []int{1, 2}},
	pathMat + ".MeanRowsInto":   {dst: 0, srcs: []int{1}},
	pathMat + ".SumRowsAXPY":    {dst: 0, srcs: []int{2}},
	pathMat + ".PowElemInto":    {dst: 0, srcs: []int{1}},
	// matmul.go slice-level AXPY micro kernel: dst += alpha·src.
	pathMat + ".AXPYRow": {dst: 0, srcs: []int{2}},
	// In-place BLAS-style updates: the receiver is the destination.
	pathMat + ".Dense.AXPY":             {dst: recvIdx, srcs: []int{1}},
	pathMat + ".Dense.AXPYRowBroadcast": {dst: recvIdx, srcs: []int{1}},
	// SelectRowsInto gathers rows of the receiver into out.
	pathMat + ".Dense.SelectRowsInto": {dst: 0, srcs: []int{recvIdx}},
	// sparse SpMM kernels: out must not alias the dense operand.
	pathSparse + ".CSR.MulDenseInto":     {dst: 0, srcs: []int{1}},
	pathSparse + ".CSR.MulDenseAddInto":  {dst: 0, srcs: []int{1}},
	pathSparse + ".CSR.TMulDenseInto":    {dst: 0, srcs: []int{1}},
	pathSparse + ".CSR.TMulDenseAddInto": {dst: 0, srcs: []int{1}},
}

func runIntoAlias(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			spec, ok := noAliasKernels[funcFullName(calleeFunc(p.Info, call))]
			if !ok {
				return true
			}
			dst := kernelOperand(call, spec.dst)
			if dst == nil || !comparableOperand(dst) {
				return true
			}
			dstStr := exprString(dst)
			for _, si := range spec.srcs {
				src := kernelOperand(call, si)
				if src == nil || !comparableOperand(src) {
					continue
				}
				if exprString(src) == dstStr {
					p.Reportf(call.Pos(), "%s is both destination and source of %s, which forbids aliasing", dstStr, kernelDisplayName(call))
					break
				}
			}
			return true
		})
	}
}

// kernelOperand extracts the expression at a kernelSpec position.
func kernelOperand(call *ast.CallExpr, idx int) ast.Expr {
	if idx == recvIdx {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		return ast.Unparen(sel.X)
	}
	if idx >= len(call.Args) {
		return nil
	}
	return ast.Unparen(call.Args[idx])
}

// comparableOperand rejects expressions whose textual equality says nothing
// about value identity (two calls to the same function yield two buffers).
func comparableOperand(e ast.Expr) bool {
	ok := true
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isCall := n.(*ast.CallExpr); isCall {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// kernelDisplayName renders the call target the way the source spells it.
func kernelDisplayName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return exprString(call.Fun)
}
