package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
)

// TelemetryKey checks every metric/span name handed to internal/telemetry
// and internal/obs: the name must be a compile-time constant (dashboards,
// the expvar publisher, the Prometheus exposition mapping and the JSONL
// trace schema key on exact strings — a name computed at run time silently
// forks a metric series) and must follow the pkg/snake_case convention used
// by every existing fed/*, rpc/*, ad/* and mat/* key. Trace span attribute
// keys (obs.KV, Span.SetAttr) must likewise be constants, in single-segment
// snake_case — the span name already carries the pkg/ prefix.
//
// The telemetry and obs packages themselves are exempt: their fan-out
// plumbing (multi, Span.End, Tracer.start) forwards caller-supplied names
// through variables by design.
var TelemetryKey = &Analyzer{
	Name: "telemetrykey",
	Doc:  "telemetry counter/span names must be pkg/snake_case compile-time constants",
	Run:  runTelemetryKey,
}

// telemetryNameArg maps the telemetry entry points to the index of their
// name parameter.
var telemetryNameArg = map[string]int{
	"StartSpan":  1,
	"NewCounter": 0,
	"Count":      0,
	"Gauge":      0,
	"Observe":    0,
}

// obsNameArg maps the obs trace entry points to the index of their span or
// event name parameter.
var obsNameArg = map[string]int{
	"Root":  0,
	"Start": 1,
	"Event": 1,
}

// obsAttrArg maps the obs attribute entry points to the index of their
// attribute-key parameter.
var obsAttrArg = map[string]int{
	"KV":      0,
	"SetAttr": 0,
}

func runTelemetryKey(p *Pass) {
	if p.Pkg.Path() == pathTelemetry || p.Pkg.Path() == pathObs {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case pathTelemetry:
				if idx, ok := telemetryNameArg[fn.Name()]; ok {
					checkKeyArg(p, call, fn.Name(), idx, "telemetry key", snakeKeyRE,
						"pkg/snake_case (two or more /-separated [a-z0-9_]+ segments)")
				}
			case pathObs:
				if idx, ok := obsNameArg[fn.Name()]; ok {
					checkKeyArg(p, call, fn.Name(), idx, "trace span name", snakeKeyRE,
						"pkg/snake_case (two or more /-separated [a-z0-9_]+ segments)")
				}
				if idx, ok := obsAttrArg[fn.Name()]; ok {
					checkKeyArg(p, call, fn.Name(), idx, "span attribute key", attrKeyRE,
						"single-segment snake_case ([a-z0-9_]+, no slashes)")
				}
			}
			return true
		})
	}
}

// checkKeyArg verifies one name argument is a compile-time constant matching
// the convention re, reporting under the given kind label.
func checkKeyArg(p *Pass, call *ast.CallExpr, fnName string, idx int, kind string, re *regexp.Regexp, want string) {
	if idx >= len(call.Args) {
		return
	}
	arg := call.Args[idx]
	tv, ok := p.Info.Types[arg]
	if !ok {
		return
	}
	if tv.Value == nil {
		p.Reportf(arg.Pos(), "%s passed to %s must be a compile-time constant, got %s", kind, fnName, exprString(arg))
		return
	}
	if key := constant.StringVal(tv.Value); !re.MatchString(key) {
		p.Reportf(arg.Pos(), "%s %q must match %s", kind, key, want)
	}
}
