package analysis

import (
	"go/ast"
	"go/constant"
)

// TelemetryKey checks every metric/span name handed to internal/telemetry:
// the name must be a compile-time constant (dashboards, the expvar publisher
// and the JSONL trace schema key on exact strings — a name computed at run
// time silently forks a metric series) and must follow the pkg/snake_case
// convention used by every existing fed/*, rpc/*, ad/* and mat/* key.
//
// The telemetry package itself is exempt: its fan-out plumbing (multi,
// Span.End) forwards caller-supplied names through variables by design.
var TelemetryKey = &Analyzer{
	Name: "telemetrykey",
	Doc:  "telemetry counter/span names must be pkg/snake_case compile-time constants",
	Run:  runTelemetryKey,
}

// telemetryNameArg maps the telemetry entry points to the index of their
// name parameter.
var telemetryNameArg = map[string]int{
	"StartSpan":  1,
	"NewCounter": 0,
	"Count":      0,
	"Gauge":      0,
	"Observe":    0,
}

func runTelemetryKey(p *Pass) {
	if p.Pkg.Path() == pathTelemetry {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pathTelemetry {
				return true
			}
			idx, ok := telemetryNameArg[fn.Name()]
			if !ok || idx >= len(call.Args) {
				return true
			}
			arg := call.Args[idx]
			tv, ok := p.Info.Types[arg]
			if !ok {
				return true
			}
			if tv.Value == nil {
				p.Reportf(arg.Pos(), "telemetry key passed to %s must be a compile-time constant, got %s", fn.Name(), exprString(arg))
				return true
			}
			if key := constant.StringVal(tv.Value); !snakeKeyRE.MatchString(key) {
				p.Reportf(arg.Pos(), "telemetry key %q must match pkg/snake_case (two or more /-separated [a-z0-9_]+ segments)", key)
			}
			return true
		})
	}
}
