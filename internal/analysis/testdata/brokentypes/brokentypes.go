// Package brokentypes parses but does not type-check: the driver must
// report the type error cleanly instead of panicking.
package brokentypes

func mismatch() int {
	var s string
	return s + 1
}
