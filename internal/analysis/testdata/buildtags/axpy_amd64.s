// Placeholder assembly body for the buildtags loader fixture. The loader only
// parses .go files, so this is never assembled; it exists so the fixture's
// file layout matches a real SIMD kernel (bodyless decl + .s implementation).
