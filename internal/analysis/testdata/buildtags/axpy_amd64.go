//go:build amd64

package buildtags

// Axpy is implemented in axpy_amd64.s.
func Axpy(alpha float64, x, y []float64)
