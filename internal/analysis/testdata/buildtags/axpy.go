//go:build !amd64

package buildtags

// Axpy is the portable fallback.
func Axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}
