// Package buildtags is a loader fixture: one function with an assembly fast
// path, mirroring the file layout of the internal/mat SIMD kernels. The
// loader must pick exactly one Axpy definition per build context.
package buildtags
