// Package tapelease exercises the tapelease analyzer: unreleased tape fields
// and locals, use of tape-owned values after Release, and the release/escape
// patterns that legitimately pass.
package tapelease

import (
	"fedomd/internal/ad"
	"fedomd/internal/mat"
)

// --- triggering cases ---

type leaky struct {
	tp *ad.Tape // want `ad.Tape field tp has no reachable Release in this package`
}

func (l *leaky) step(x *mat.Dense) float64 {
	n := l.tp.Param(x)
	return n.Value.At(0, 0)
}

func localTapeLeaks(x *mat.Dense) float64 {
	tp := ad.NewTape() // want `ad.Tape tp has no reachable Release in this function`
	n := tp.Param(x)
	return n.Value.At(0, 0)
}

func nodeUsedAfterRelease(x *mat.Dense) float64 {
	tp := ad.NewTape()
	n := tp.Param(x)
	tp.Release()
	return n.Value.At(0, 0) // want `n is owned by tape tp and used after its Release`
}

func tapeUsedAfterRelease(x *mat.Dense) {
	tp := ad.NewTape()
	_ = tp.Param(x)
	tp.Release()
	tp.Reset() // want `tape tp is used after Release in the same block`
}

// --- non-triggering cases ---

type clean struct {
	tp *ad.Tape
}

func (c *clean) step(x *mat.Dense) {
	tp := c.tp
	defer tp.Release()
	_ = tp.Param(x)
}

func releasedLocal(x *mat.Dense) float64 {
	tp := ad.NewTape()
	n := tp.Param(x)
	v := n.Value.At(0, 0)
	tp.Release()
	return v
}

func releasedInDeferredClosure(x *mat.Dense) {
	tp := ad.NewTape()
	defer func() { tp.Release() }()
	_ = tp.Param(x)
}

func ownershipTransferred() *ad.Tape {
	tp := ad.NewTape()
	return tp
}

func deferredReleaseThenUse(x *mat.Dense) float64 {
	tp := ad.NewTape()
	defer tp.Release()
	n := tp.Param(x)
	return n.Value.At(0, 0) // defer fires after the return value is computed
}
