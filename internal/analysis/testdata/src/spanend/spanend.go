// Package spanend exercises the spanend analyzer: telemetry/obs spans that
// miss End on some path, against the lifecycle patterns the tracing contract
// allows (End on all paths, defer, Cancel on failure, escape).
package spanend

import (
	"errors"

	"fedomd/internal/obs"
	"fedomd/internal/telemetry"
)

var errBoom = errors.New("boom")

func earlyReturnLeaks(rec telemetry.Recorder, fail bool) error {
	sp := telemetry.StartSpan(rec, "work_seconds")
	if fail {
		return errBoom // want `span sp is not ended on this return path`
	}
	sp.End()
	return nil
}

func obsEarlyReturnLeaks(tr *obs.Tracer, fail bool) error {
	sp := tr.Root("round")
	if fail {
		return errBoom // want `span sp is not ended on this return path`
	}
	sp.End()
	return nil
}

func discardedResult(rec telemetry.Recorder) {
	telemetry.StartSpan(rec, "work_seconds") // want `result of telemetry.StartSpan is discarded`
}

func restartWhileLive(rec telemetry.Recorder) {
	sp := telemetry.StartSpan(rec, "a_seconds")
	sp = telemetry.StartSpan(rec, "b_seconds") // want `span sp is started again before End`
	sp.End()
}

func scopedLeak(tr *obs.Tracer, cond bool) {
	if cond {
		sp := tr.Root("inner")
		sp.SetAttr("k", 1)
	} // want `span sp is not ended before it goes out of scope`
}

func breakLeaks(tr *obs.Tracer, xs []int) {
	for _, x := range xs {
		sp := tr.Root("item")
		if x < 0 {
			break // want `span sp is not ended on this break path`
		}
		sp.End()
	}
}

// --- allowed patterns ---

func endOnAllPaths(rec telemetry.Recorder, fail bool) error {
	sp := telemetry.StartSpan(rec, "work_seconds")
	if fail {
		sp.End()
		return errBoom
	}
	sp.End()
	return nil
}

func cancelOnFailure(rec telemetry.Recorder, fail bool) error {
	sp := telemetry.StartSpan(rec, "work_seconds")
	if fail {
		sp.Cancel() // failure is not a latency sample
		return errBoom
	}
	sp.End()
	return nil
}

func deferredEnd(tr *obs.Tracer, parent obs.SpanContext) {
	sp := tr.Start(parent, "step")
	defer sp.End()
	sp.SetAttr("k", 2)
}

func deferredClosureEnd(rec telemetry.Recorder) {
	sp := telemetry.StartSpan(rec, "work_seconds")
	defer func() {
		sp.End()
	}()
}

func escapesByReturn(tr *obs.Tracer) *obs.Span {
	sp := tr.Root("handed-off") // the caller owns the End obligation now
	return sp
}

func escapesToCall(tr *obs.Tracer, park func(*obs.Span)) {
	sp := tr.Root("parked")
	park(sp)
}

func loopPerIteration(rec telemetry.Recorder, xs []int) {
	for range xs {
		sp := telemetry.StartSpan(rec, "iter_seconds")
		sp.End()
	}
}

// goroutineJobSpan is the async dispatch idiom: the worker goroutine owns its
// span for the whole job and ends it before handing the result to the
// collector channel. The closure body is analyzed as its own function.
func goroutineJobSpan(tr *obs.Tracer, parent obs.SpanContext, done chan<- error) {
	go func() {
		sp := tr.Start(parent, "job")
		sp.SetAttr("party", 7)
		err := work()
		sp.End()
		done <- err
	}()
}

// goroutineLeaks shows the same shape failing: an early return inside the
// worker closure abandons the span.
func goroutineLeaks(tr *obs.Tracer, parent obs.SpanContext, done chan<- error) {
	go func() {
		sp := tr.Start(parent, "job")
		if err := work(); err != nil {
			done <- err
			return // want `span sp is not ended on this return path`
		}
		sp.End()
		done <- nil
	}()
}

func work() error { return nil }

// batcherLoopSpan is the serving-plane micro-batcher idiom: a long-lived
// goroutine times each coalesced batch with its own span, Cancelling when the
// batch collapses to nothing (an empty flush is not a latency sample).
func batcherLoopSpan(rec telemetry.Recorder, batches <-chan []int) {
	go func() {
		for b := range batches {
			sp := telemetry.StartSpan(rec, "batch_seconds")
			if len(b) == 0 {
				sp.Cancel()
				continue
			}
			_ = work()
			sp.End()
		}
	}()
}

// batcherLoopLeaks shows the same shape failing: skipping an empty batch
// abandons its span.
func batcherLoopLeaks(rec telemetry.Recorder, batches <-chan []int) {
	go func() {
		for b := range batches {
			sp := telemetry.StartSpan(rec, "batch_seconds")
			if len(b) == 0 {
				continue // want `span sp is not ended on this continue path`
			}
			_ = work()
			sp.End()
		}
	}()
}

func borrowedParentContext(tr *obs.Tracer) {
	outer := tr.Root("outer")
	inner := tr.Start(outer.Context(), "inner") // receiver use is a borrow, not an escape
	inner.End()
	outer.End()
}
