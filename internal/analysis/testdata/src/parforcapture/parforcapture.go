// Package parforcapture exercises the parforcapture analyzer: writes to
// captured state inside mat.ParallelFor bodies, against the per-chunk
// patterns the disjoint-writes contract allows.
package parforcapture

import (
	"sync/atomic"

	"fedomd/internal/mat"
)

func capturedScalar(xs []float64) float64 {
	sum := 0.0
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum += xs[i] // want `writes captured variable sum`
		}
	})
	return sum
}

func capturedCounter(xs []float64) int {
	n := 0
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		n++ // want `writes captured variable n`
	})
	return n
}

func capturedSliceFixedIndex(out, xs []float64) {
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		out[0] = xs[0] // want `writes captured out at an index not derived from the lo:hi chunk`
	})
}

func capturedPointer(p *float64, xs []float64) {
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		*p = xs[lo] // want `writes through captured pointer p`
	})
}

type acc struct{ total float64 }

func capturedField(a *acc, xs []float64) {
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		a.total = xs[lo] // want `writes field of captured a`
	})
}

func denseSetUntainted(m *mat.Dense, xs []float64) {
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		m.Set(0, 0, xs[lo]) // want `mutates captured m via Dense.Set outside the lo:hi chunk`
	})
}

func denseZero(m *mat.Dense, xs []float64) {
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		m.Zero() // want `mutates captured m via Dense.Zero outside the lo:hi chunk`
	})
}

func copyWholeSlice(dst, src []float64) {
	mat.ParallelFor(len(src), 1, func(lo, hi int) {
		copy(dst, src) // want `mutates captured dst via copy outside the lo:hi chunk`
	})
}

// --- allowed patterns ---

func chunkIndexed(out, xs []float64) {
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = 2 * xs[i] // index derived from the chunk
		}
	})
}

func chunkRange(out, xs []float64) {
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		for k, v := range xs[lo:hi] {
			out[lo+k] = v // k ranges over a chunk-derived slice
		}
	})
}

func chunkDerivedAlias(out, xs []float64) {
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		row := lo // taint propagates through assignment
		out[row] = xs[row]
	})
}

func localState(out, xs []float64) {
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		s := 0.0 // per-invocation local: writes are free
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		out[lo] = s
	})
}

func chunkCopy(dst, src []float64) {
	mat.ParallelFor(len(src), 1, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi]) // destination is chunk-derived
	})
}

func denseSetChunk(m *mat.Dense, xs []float64) {
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.Set(i, 0, xs[i]) // row index is chunk-derived
		}
	})
}

func atomicReduction(xs []float64) int64 {
	var hits int64
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if xs[i] > 0 {
				atomic.AddInt64(&hits, 1) // atomics are the sanctioned reduction
			}
		}
	})
	return hits
}

func readsOnly(xs []float64, sink func(float64)) {
	mat.ParallelFor(len(xs), 1, func(lo, hi int) {
		sink(xs[lo]) // reading captured state is fine
	})
}
