// Package shardalias exercises the shardalias analyzer: in-place mutation
// through zero-copy CSR row shards (and of parents with live shards), against
// the read-only and scale-before-sharding patterns the contract allows.
package shardalias

import (
	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

func writesThroughShard(m *sparse.CSR) {
	sh := m.Shard(0, 2)
	sh.ScaleVals(0.5) // want `ScaleVals on row shard sh writes through to m`
}

func writesParentWhileShardLive(m *sparse.CSR, x *mat.Dense) *mat.Dense {
	sh := m.Shard(0, 2)
	m.ScaleVals(2) // want `ScaleVals mutates m while row shard sh is live`
	return sh.MulDense(x)
}

func writesFieldParentWhileShardLive(g struct{ adj *sparse.CSR }) {
	sh := g.adj.Shard(1, 3)
	g.adj.ScaleVals(2) // want `ScaleVals mutates g.adj while row shard sh is live`
	_ = sh.NNZ()
}

func shardOnlyOnSomePaths(m *sparse.CSR, cond bool) {
	sh := m.Shard(0, 1)
	if cond {
		_ = sh.NNZ()
	}
	m.ScaleVals(3) // want `ScaleVals mutates m while row shard sh is live`
}

// --- allowed patterns ---

func scaleBeforeSharding(m *sparse.CSR, x *mat.Dense) *mat.Dense {
	m.ScaleVals(0.5) // no view outstanding yet
	sh := m.Shard(0, 2)
	return sh.MulDense(x)
}

func readsThroughShard(m *sparse.CSR, x *mat.Dense) *mat.Dense {
	sh := m.Shard(0, 2)
	_ = sh.NNZ()
	return sh.MulDense(x) // reads scale without copies; that is the point
}

func shardScopeEnded(m *sparse.CSR, x *mat.Dense, cond bool) {
	if cond {
		sh := m.Shard(0, 2)
		_ = sh.MulDense(x)
	}
	m.ScaleVals(2) // the view did not survive its scope
}

func shardEscapes(m *sparse.CSR, sink func(*sparse.CSR)) {
	sh := m.Shard(0, 2)
	sink(sh) // ownership handed off; the dataflow stops tracking
	m.ScaleVals(2)
}

func shardReassigned(m *sparse.CSR) {
	sh := m.Shard(0, 2)
	sh = nil
	_ = sh
	m.ScaleVals(2)
}
