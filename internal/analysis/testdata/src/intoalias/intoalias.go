// Package intoalias exercises the intoalias analyzer: syntactically aliased
// destination/source operands of the fused kernels, against the calls the
// contracts allow.
package intoalias

import (
	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

func matKernels(out, a, b *mat.Dense) {
	mat.MatMulInto(out, out, b) // want `out is both destination and source of MatMulInto`
	mat.MatMulInto(out, a, b)
	mat.AddInto(out, a, out) // want `out is both destination and source of AddInto`
	mat.AddInto(out, a, b)
	mat.MatMulT1AddInto(out, b, out) // want `out is both destination and source of MatMulT1AddInto`
	out.AXPY(2, out)                 // want `out is both destination and source of AXPY`
	out.AXPY(2, b)
	mat.ApplyInto(a, a, func(x float64) float64 { return x }) // ApplyInto allows out == a
	a.SelectRowsInto(a, []int{0})                             // want `a is both destination and source of SelectRowsInto`
	a.SelectRowsInto(out, []int{0})
	mat.ScaleInto(out, 2, a)
}

func sliceKernels(dst, src []float64) {
	mat.AXPYRow(dst, 2, dst) // want `dst is both destination and source of AXPYRow`
	mat.AXPYRow(dst, 2, src)
}

func sparseKernels(s *sparse.CSR, out, x *mat.Dense) {
	s.MulDenseInto(out, out) // want `out is both destination and source of MulDenseInto`
	s.MulDenseInto(out, x)
	s.MulDenseAddInto(out, out) // want `out is both destination and source of MulDenseAddInto`
	s.MulDenseAddInto(out, x)
	s.TMulDenseAddInto(out, x)
}

type wrap struct{ g *mat.Dense }

func fieldPaths(w *wrap, b *mat.Dense) {
	mat.SubInto(w.g, w.g, b) // want `w.g is both destination and source of SubInto`
	mat.SubInto(w.g, b, b)   // sources may alias each other: both are read-only
}

func freshCalls(a, b *mat.Dense) {
	mat.AddInto(a.Clone(), a.Clone(), b) // two distinct clones: textual equality proves nothing
}
