// Package poolpair exercises the poolpair analyzer: leaks on early-return,
// error and loop-exit paths, double puts, and the ownership transfers that
// legitimately silence the check.
package poolpair

import (
	"errors"

	"fedomd/internal/mat"
	"fedomd/internal/nn"
)

// --- triggering cases ---

func leakOnEarlyReturn(fail bool) error {
	buf := mat.GetDense(4, 4)
	if fail {
		return errors.New("boom") // want `pooled buffer buf may leak`
	}
	mat.PutDense(buf)
	return nil
}

func leakAtScopeExit(cond bool) {
	if cond {
		buf := mat.GetDense(2, 2)
		buf.Zero()
	} // want `pooled buffer buf may leak`
}

func leakOnContinue(xs []int) {
	for _, x := range xs {
		buf := mat.GetDense(1, 1)
		if x < 0 {
			continue // want `pooled buffer buf may leak`
		}
		mat.PutDense(buf)
	}
}

func doublePutOnBranch(cond bool) {
	buf := mat.GetDense(2, 2)
	if cond {
		mat.PutDense(buf)
	}
	mat.PutDense(buf) // want `buf may already have been returned to the pool`
}

func overwriteWhileLive() {
	buf := mat.GetDense(1, 1)
	buf = mat.GetDense(2, 2) // want `buf is overwritten before being returned to the pool`
	mat.PutDense(buf)
}

// --- non-triggering cases ---

func pairedOnAllPaths(fail bool) error {
	buf := mat.GetDense(4, 4)
	if fail {
		mat.PutDense(buf)
		return errors.New("boom")
	}
	mat.PutDense(buf)
	return nil
}

func deferredPut() {
	buf := mat.GetDense(2, 2)
	defer mat.PutDense(buf)
	buf.Fill(1)
}

func deferredClosurePut(n int) float64 {
	v := mat.GetDense(n, 1)
	next := mat.GetDense(n, 1)
	defer func() {
		mat.PutDense(v)
		mat.PutDense(next)
	}()
	for i := 0; i < 3; i++ {
		v, next = next, v // swap, released through the closure
	}
	return v.At(0, 0)
}

type holder struct{ m *mat.Dense }

func transferByReturn() *mat.Dense {
	buf := mat.GetDense(3, 3)
	return buf
}

func transferByStruct() *holder {
	buf := mat.GetDense(1, 1)
	return &holder{m: buf}
}

func transferByAppend(sink [][]*mat.Dense) [][]*mat.Dense {
	buf := mat.GetDense(1, 1)
	return append(sink, []*mat.Dense{buf})
}

func transferIntoParams() *nn.Params {
	out := nn.NewParams()
	buf := mat.GetDense(2, 2)
	out.Add("w", buf) // owning sink: released by whoever releases the set
	return out
}

func panicIsNotALeak(bad bool) {
	buf := mat.GetDense(1, 1)
	if bad {
		panic("shape mismatch")
	}
	mat.PutDense(buf)
}

func putInBothBranches(cond bool) {
	buf := mat.GetDense(2, 2)
	if cond {
		mat.PutDense(buf)
	} else {
		mat.PutDense(buf)
	}
}
