// Package ignore exercises the //fedomdvet:ignore suppression layer: a
// reasoned directive silences its line (or the next, in own-line form), and
// a reasonless directive is itself a diagnostic.
package ignore

import "fedomd/internal/mat"

func suppressed(a, b *mat.Dense) {
	mat.AddInto(a, a, b) //fedomdvet:ignore fixture exercises the documented self-add suppression
	//fedomdvet:ignore own-line form covers the next line
	mat.MulElemInto(a, a, b)
	mat.SubInto(a, a, b) //fedomdvet:ignore // want `without a reason` want `a is both destination and source of SubInto`
}
