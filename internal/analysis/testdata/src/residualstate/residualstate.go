// Package residualstate exercises the residualstate analyzer: codec
// reference resets that leave stale error-feedback residuals behind, against
// the clear-before/clear-after patterns DESIGN §10 allows.
package residualstate

import (
	"fedomd/internal/codec"
	"fedomd/internal/nn"
)

// conn pairs a reference state with the encoder that deltas against it, the
// way transport connections do.
type conn struct {
	enc *codec.Encoder
	ref *nn.Params
}

func fieldResetLeaksResidual(c *conn, bad bool) error {
	if bad {
		c.ref = nil // want `c.ref is nilled for an absolute re-sync but c.enc keeps its error-feedback residual`
		return nil
	}
	return nil
}

func localResetThenEncode(p *nn.Params, blob []byte) []byte {
	enc := codec.NewEncoder(codec.Options{Kind: codec.Quant, Bits: 8})
	ref := p
	out, _ := enc.EncodeParams(nil, p, ref)
	ref = nil // want `ref is nilled for an absolute re-sync but enc keeps its error-feedback residual`
	out2, _ := enc.EncodeParams(out, p, ref)
	return out2
}

func loopResetNeverCleared(c *conn, ps []*nn.Params) {
	for _, p := range ps {
		blob, err := c.enc.EncodeParams(nil, p, c.ref)
		if err != nil {
			c.ref = nil // want `c.ref is nilled for an absolute re-sync but c.enc keeps its error-feedback residual`
			continue
		}
		_ = blob
		c.ref = p
	}
}

// --- allowed patterns ---

func resetThenClear(c *conn) {
	c.ref = nil
	c.enc.Reset()
}

func clearThenReset(c *conn) {
	c.enc.Reset()
	c.ref = nil // residual already dropped just above
}

func freshEncoderThenReset(c *conn, opts codec.Options) {
	c.enc = codec.NewEncoder(opts)
	c.ref = nil // a fresh encoder has no residual
}

func localFreshPair(p *nn.Params) {
	enc := codec.NewEncoder(codec.Options{Kind: codec.Delta})
	var ref *nn.Params
	ref = nil // encoder was never armed with a residual
	blob, _ := enc.EncodeParams(nil, p, ref)
	_ = blob
}

func nonNilOverwrite(c *conn, p *nn.Params) {
	c.ref = p // advancing the reference chain is not a reset
}

func noPairedEncoder(ref *nn.Params) {
	ref = nil // nothing deltas against this reference here
	_ = ref
}
