// Package telemetrykey exercises the telemetrykey analyzer: metric names
// handed to internal/telemetry must be pkg/snake_case compile-time constants.
package telemetrykey

import "fedomd/internal/telemetry"

const spanKey = "fixture/phase_seconds"

func record(r telemetry.Recorder, dyn string) {
	r.Count("fixture/rounds_total", 1)
	r.Count(spanKey, 1)
	// The fault-tolerance counters the federated runtime emits; all legal.
	r.Count("fed/client_dropped", 1)
	r.Count("fed/client_quarantined", 1)
	r.Count("fed/round_degraded", 1)
	r.Count("rpc/coord/retries", 1)
	// The wire-codec counters (uplink pair, downlink pair, CPU cost).
	r.Count("codec/bytes_raw", 1)
	r.Count("codec/bytes_encoded", 1)
	r.Count("codec/bytes_raw_down", 1)
	r.Count("codec/bytes_encoded_down", 1)
	r.Count("codec/encode_ns", 1)
	r.Count("codec/decode_ns", 1)
	telemetry.StartSpan(r, "fed/phase/final_eval_seconds").End()
	r.Count("fixture/sub/"+"leaf_total", 1) // constant folding keeps this checkable
	r.Count(dyn, 1)                         // want `telemetry key passed to Count must be a compile-time constant`
	r.Gauge("BadName", 1)                   // want `telemetry key "BadName" must match pkg/snake_case`
	r.Observe("no_slash", 0.5)              // want `telemetry key "no_slash" must match pkg/snake_case`
	telemetry.StartSpan(r, spanKey).End()
	telemetry.StartSpan(r, "fixture/"+dyn).End() // want `telemetry key passed to StartSpan must be a compile-time constant`
	telemetry.NewCounter("fixture/ops_total").Add(1)
}
