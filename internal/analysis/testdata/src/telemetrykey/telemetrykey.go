// Package telemetrykey exercises the telemetrykey analyzer: metric names
// handed to internal/telemetry must be pkg/snake_case compile-time
// constants, and trace span names / attribute keys handed to internal/obs
// likewise (attribute keys are single-segment).
package telemetrykey

import (
	"fedomd/internal/obs"
	"fedomd/internal/telemetry"
)

const spanKey = "fixture/phase_seconds"

func record(r telemetry.Recorder, dyn string) {
	r.Count("fixture/rounds_total", 1)
	r.Count(spanKey, 1)
	// The fault-tolerance counters the federated runtime emits; all legal.
	r.Count("fed/client_dropped", 1)
	r.Count("fed/client_quarantined", 1)
	r.Count("fed/round_degraded", 1)
	r.Count("rpc/coord/retries", 1)
	// The wire-codec counters (uplink pair, downlink pair, CPU cost).
	r.Count("codec/bytes_raw", 1)
	r.Count("codec/bytes_encoded", 1)
	r.Count("codec/bytes_raw_down", 1)
	r.Count("codec/bytes_encoded_down", 1)
	r.Count("codec/encode_ns", 1)
	r.Count("codec/decode_ns", 1)
	// The buffered async-aggregation counters and histograms; all legal.
	r.Count("fed/async_dispatched", 1)
	r.Count("fed/async_folded", 1)
	r.Count("fed/async_carried", 1)
	r.Count("fed/async_evicted", 1)
	r.Count("fed/async_rejected", 1)
	r.Count("fed/async_stalls", 1)
	r.Observe("fed/async_staleness", 2)
	r.Observe("fed/async_buffer_wait_seconds", 0.01)
	// The serving-plane counters and histograms (micro-batcher); all legal.
	r.Count("serve/requests", 1)
	r.Count("serve/errors", 1)
	r.Count("serve/overload", 1)
	r.Count("serve/batches", 1)
	r.Observe("serve/batch_size", 16)
	r.Observe("serve/request_seconds", 0.001)
	r.Count("serve/cache_hits", 3)
	r.Count("serve/cache_misses", 1)
	r.Count("serve/swaps", 1)
	r.Count("serve/swap_errors", 1)
	telemetry.StartSpan(r, "serve/batch_seconds").End()
	telemetry.StartSpan(r, "fed/phase/final_eval_seconds").End()
	r.Count("fixture/sub/"+"leaf_total", 1) // constant folding keeps this checkable
	r.Count(dyn, 1)                         // want `telemetry key passed to Count must be a compile-time constant`
	r.Gauge("BadName", 1)                   // want `telemetry key "BadName" must match pkg/snake_case`
	r.Observe("no_slash", 0.5)              // want `telemetry key "no_slash" must match pkg/snake_case`
	telemetry.StartSpan(r, spanKey).End()
	telemetry.StartSpan(r, "fixture/"+dyn).End() // want `telemetry key passed to StartSpan must be a compile-time constant`
	telemetry.NewCounter("fixture/ops_total").Add(1)
}

const traceSpanKey = "fixture/phase"

func traced(tr *obs.Tracer, dyn string) {
	// The observability plane's span and health-event names; all legal.
	root := tr.Root("fed/run")
	sp := tr.Start(root.Context(), traceSpanKey)
	sp.SetAttr("party", 3)
	sp.SetAttr(obs.AttrRound, 1)
	tr.Event(root.Context(), "obs/health", "warn", obs.KV("rule", "non_finite"))
	// The async engine's dispatch-job and fold spans with their attributes.
	job := tr.Start(root.Context(), "fed/async/job")
	job.SetAttr(obs.AttrDispatch, 4)
	job.End()
	fold := tr.Start(root.Context(), "fed/phase/fold")
	fold.SetAttr(obs.AttrBufferFill, 3)
	fold.SetAttr(obs.AttrBufferTarget, 4)
	fold.SetAttr(obs.AttrStalenessP99, 2)
	fold.End()
	tr.Event(root.Context(), "chaos/fault", "warn", obs.KV(obs.AttrParty, dyn)) // attr values may be dynamic
	tr.Start(root.Context(), dyn)                                               // want `trace span name passed to Start must be a compile-time constant`
	tr.Root("run")                                                              // want `trace span name "run" must match pkg/snake_case`
	tr.Event(root.Context(), "obs/"+dyn, "warn")                                // want `trace span name passed to Event must be a compile-time constant`
	sp.SetAttr(dyn, 1)                                                          // want `span attribute key passed to SetAttr must be a compile-time constant`
	sp.SetAttr("bytes/raw", 1)                                                  // want `span attribute key "bytes/raw" must match single-segment snake_case`
	_ = obs.KV("CamelCase", 1)                                                  // want `span attribute key "CamelCase" must match single-segment snake_case`
	sp.End()
	root.End()
}
