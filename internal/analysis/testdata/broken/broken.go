// Package broken is a corrupt fixture: the driver must turn this syntax
// error into a clean diagnostic, never a panic.
package broken

func missingBrace() {
	if true {
}
