// Package analysis is a from-scratch static-analysis driver for this module,
// built on nothing but the standard library's go/parser and go/types. It
// exists because the zero-churn training path (DESIGN.md §7) rests on
// ownership invariants — every mat.GetDense needs a matching mat.PutDense,
// every long-lived ad.Tape needs a Release, fused *Into kernels must not be
// handed aliasing destinations, telemetry keys must be stable constants —
// that the compiler cannot check and that comments alone will not keep true
// as the runtime grows.
//
// The package defines the Analyzer/Pass plumbing, a suppression layer
// (//fedomdvet:ignore reason), the module loader (load.go), the control-flow
// graph and dataflow fixpoint engine (cfg/), and the eight project-specific
// analyzers: the path-sensitive ownership checks poolpair.go, tapelease.go,
// spanend.go, shardalias.go and residualstate.go run as lattices over the
// cfg engine; intoalias.go, telemetrykey.go and parforcapture.go are
// syntactic/taint checks. cmd/fedomdvet is the command-line front end; the
// fixture harness in harness.go drives the analyzers over testdata packages
// with // want "…" expectations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"sort"
	"strings"
	"time"
)

// Analyzer is one named invariant checker. Run inspects a type-checked
// package through the Pass and reports findings via Pass.Report; it must not
// mutate the Pass.
type Analyzer struct {
	// Name is the short identifier appended to every diagnostic, e.g.
	// "poolpair".
	Name string
	// Doc is a one-line description of the invariant the analyzer enforces.
	Doc string
	// Run reports diagnostics for one package.
	Run func(p *Pass)
}

// Pass hands an analyzer one type-checked package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Report records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.analyzer.Name,
	})
}

// Diagnostic is one finding, in go vet's file:line:col coordinate space.
type Diagnostic struct {
	Pos      token.Position
	Message  string
	Analyzer string
}

// String renders the diagnostic in the vet-style file:line:col: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PoolPair, TapeLease, IntoAlias, TelemetryKey,
		ParForCapture, SpanEnd, ShardAlias, ResidualState,
	}
}

// ByName resolves analyzer names (as given to fedomdvet -only) against the
// full suite; unknown names are returned for the caller to report.
func ByName(names []string) (found []*Analyzer, unknown []string) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	for _, n := range names {
		if a, ok := byName[n]; ok {
			found = append(found, a)
		} else {
			unknown = append(unknown, n)
		}
	}
	return found, unknown
}

// ignoreDirective matches the suppression comment. The reason is everything
// after the marker up to a nested "//" (so a trailing comment on the same
// line is not swallowed into the reason).
const ignoreMarker = "fedomdvet:ignore"

// ignore is one parsed //fedomdvet:ignore directive.
type ignore struct {
	pos    token.Position
	reason string
	// ownLine is true when the directive is the only thing on its line, in
	// which case it applies to the following line instead.
	ownLine bool
}

// Run executes every analyzer over pkg and returns the surviving
// diagnostics, sorted by position: suppressed findings are removed, and each
// //fedomdvet:ignore directive missing a reason is itself reported. A
// directive at the end of a code line covers that line; a directive alone on
// its line covers the next line.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(pkg, analyzers)
	return diags
}

// RunTimed is Run, additionally reporting how long each analyzer spent on the
// package (keyed by analyzer name) so the driver can show where lint time
// goes. Suppression time is not attributed to any analyzer.
func RunTimed(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, map[string]time.Duration) {
	var diags []Diagnostic
	timings := make(map[string]time.Duration, len(analyzers))
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a,
			diags:    &diags,
		}
		start := time.Now()
		a.Run(pass)
		timings[a.Name] += time.Since(start)
	}
	return applySuppressions(pkg, diags), timings
}

// applySuppressions filters diags through the package's ignore directives and
// appends a diagnostic for every reasonless directive.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	// covered maps file → set of line numbers an ignore-with-reason covers.
	covered := map[string]map[int]bool{}
	lines := newLineCache()
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ig, ok := parseIgnore(pkg.Fset, c, lines)
				if !ok {
					continue
				}
				if ig.reason == "" {
					out = append(out, Diagnostic{
						Pos:      ig.pos,
						Message:  "//fedomdvet:ignore without a reason (suppressions must say why)",
						Analyzer: "ignore",
					})
					continue
				}
				line := ig.pos.Line
				if ig.ownLine {
					line++
				}
				m := covered[ig.pos.Filename]
				if m == nil {
					m = map[int]bool{}
					covered[ig.pos.Filename] = m
				}
				m[line] = true
			}
		}
	}
	for _, d := range diags {
		if covered[d.Pos.Filename][d.Pos.Line] {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// parseIgnore recognises //fedomdvet:ignore comments.
func parseIgnore(fset *token.FileSet, c *ast.Comment, lines *lineCache) (ignore, bool) {
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, ignoreMarker) {
		return ignore{}, false
	}
	reason := strings.TrimPrefix(text, ignoreMarker)
	// A nested "//" starts an unrelated trailing comment, not the reason.
	if i := strings.Index(reason, "//"); i >= 0 {
		reason = reason[:i]
	}
	pos := fset.Position(c.Pos())
	// The directive sits on its own line (and therefore covers the next one)
	// when nothing but whitespace precedes it on its source line.
	prefix := lines.prefix(pos)
	ownLine := strings.TrimSpace(prefix) == ""
	return ignore{pos: pos, reason: strings.TrimSpace(reason), ownLine: ownLine}, true
}

// lineCache serves source-line prefixes for directive placement checks,
// reading each file at most once.
type lineCache struct {
	files map[string][]string
}

func newLineCache() *lineCache { return &lineCache{files: map[string][]string{}} }

// prefix returns the text before pos on its source line, or "" when the file
// cannot be read (falling back to treating the directive as end-of-line).
func (lc *lineCache) prefix(pos token.Position) string {
	ls, ok := lc.files[pos.Filename]
	if !ok {
		data, err := os.ReadFile(pos.Filename)
		if err == nil {
			ls = strings.Split(string(data), "\n")
		}
		lc.files[pos.Filename] = ls
	}
	if pos.Line-1 >= len(ls) || pos.Column-1 > len(ls[pos.Line-1]) {
		return "x" // unknown: assume end-of-line placement
	}
	return ls[pos.Line-1][:pos.Column-1]
}

// --- shared type/AST helpers used by the analyzers ---

// modulePath is the import-path prefix of this module; analyzers match
// functions and types by fully qualified name under it.
const modulePath = "fedomd"

var (
	pathMat       = modulePath + "/internal/mat"
	pathAd        = modulePath + "/internal/ad"
	pathNn        = modulePath + "/internal/nn"
	pathSparse    = modulePath + "/internal/sparse"
	pathTelemetry = modulePath + "/internal/telemetry"
	pathObs       = modulePath + "/internal/obs"
	pathCodec     = modulePath + "/internal/codec"
)

// calleeFunc resolves the *types.Func a call expression invokes, or nil for
// calls through function-valued variables, built-ins and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// funcFullName renders a *types.Func as pkgpath.Name for package-level
// functions and pkgpath.Recv.Name for methods.
func funcFullName(f *types.Func) string {
	if f == nil {
		return ""
	}
	sig, _ := f.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
		}
		return f.Name()
	}
	if f.Pkg() == nil {
		return f.Name()
	}
	return f.Pkg().Path() + "." + f.Name()
}

// isBuiltin reports whether the call invokes the named Go built-in (append,
// panic, …).
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// namedType returns the *types.Named behind t, unwrapping one pointer level.
func namedType(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t is (a pointer to) the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// exprString renders an expression compactly for alias comparison and
// diagnostics. Two expressions rendering identically are syntactically the
// same access path.
func exprString(e ast.Expr) string {
	return types.ExprString(e)
}

// usesIdentOf reports whether the subtree rooted at n mentions any of the
// given objects.
func usesIdentOf(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// snakeKeyRE is the pkg/snake_case convention for telemetry metric names:
// two or more slash-separated segments of [a-z0-9_]+.
var snakeKeyRE = regexp.MustCompile(`^[a-z0-9_]+(/[a-z0-9_]+)+$`)

// attrKeyRE is the convention for trace span/event attribute keys: one
// snake_case segment, no slashes (attributes qualify a span, whose name
// already carries the pkg/ prefix).
var attrKeyRE = regexp.MustCompile(`^[a-z0-9_]+$`)
