package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"fedomd/internal/analysis/cfg"
)

// TapeLease enforces the tape-arena lease discipline (DESIGN.md §7): an
// ad.Tape owns every node, forward value and gradient allocated through it,
// and Release() recycles them all into the buffer pool. Three rules:
//
//  1. a struct field of type *ad.Tape must have a reachable Release call
//     somewhere in its package (directly on the field or through a local
//     alias such as `tp := c.tape; defer tp.Release()`);
//  2. a local constructed with ad.NewTape must reach Release (or a deferred
//     Release, or a visible ownership hand-off) on every path out of the
//     function — an early error return that skips Release leaks the arena;
//  3. after a non-deferred Release, no tape-owned value (the tape itself, or
//     a *ad.Node/*mat.Dense derived from it) may be used on any path the
//     Release dominates — the arena has already recycled its storage.
//
// Rule 1 stays a package-lexical check. Rules 2 and 3 run on the cfg
// dataflow engine (DESIGN.md §13): release facts merge with AND at joins
// (released only when released on every incoming path), so a Release inside
// one branch no longer excuses the other branch, and a use after a Release
// is only flagged on paths where the Release actually executed.
//
// Package ad itself is exempt: Node's internal back-reference to its tape is
// arena plumbing, not a lease.
var TapeLease = &Analyzer{
	Name: "tapelease",
	Doc:  "every ad.Tape needs a reachable Release, and tape-owned values must not be used after it",
	Run:  runTapeLease,
}

var (
	fnNewTape     = pathAd + ".NewTape"
	fnTapeRelease = pathAd + ".Tape.Release"
)

func runTapeLease(p *Pass) {
	if p.Pkg.Path() == pathAd {
		return
	}
	checkTapeFields(p)
	forEachFuncScope(p.Files, func(body *ast.BlockStmt) {
		analyzeTapeScope(p, body)
	})
}

// isTapeType reports whether t is (a pointer to) ad.Tape.
func isTapeType(t types.Type) bool {
	return t != nil && isNamed(t, pathAd, "Tape")
}

// tapeReleaseCall returns the receiver expression of a call when the call is
// ad.Tape.Release, and nil otherwise.
func tapeReleaseCall(info *types.Info, call *ast.CallExpr) ast.Expr {
	if funcFullName(calleeFunc(info, call)) != fnTapeRelease {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return ast.Unparen(sel.X)
}

// checkTapeFields verifies rule 1: collect every *ad.Tape struct field
// declared in this package and every Release receiver, then connect them
// directly or through one level of local alias.
func checkTapeFields(p *Pass) {
	type fieldDecl struct {
		obj types.Object
		id  *ast.Ident
	}
	var fields []fieldDecl
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					obj := p.Info.Defs[name]
					if obj != nil && isTapeType(obj.Type()) {
						fields = append(fields, fieldDecl{obj, name})
					}
				}
			}
			return true
		})
	}
	if len(fields) == 0 {
		return
	}

	released := map[types.Object]bool{}        // objects used as a Release receiver
	aliasOf := map[types.Object]types.Object{} // local var → field it aliases
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				recv := tapeReleaseCall(p.Info, n)
				switch recv := recv.(type) {
				case *ast.Ident:
					if obj := p.Info.Uses[recv]; obj != nil {
						released[obj] = true
					}
				case *ast.SelectorExpr:
					if obj := p.Info.Uses[recv.Sel]; obj != nil {
						released[obj] = true
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, l := range n.Lhs {
					lid, ok := ast.Unparen(l).(*ast.Ident)
					if !ok {
						continue
					}
					sel, ok := ast.Unparen(n.Rhs[i]).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					fieldObj := p.Info.Uses[sel.Sel]
					if fieldObj == nil || !isTapeType(fieldObj.Type()) {
						continue
					}
					lobj := p.Info.Defs[lid]
					if lobj == nil {
						lobj = p.Info.Uses[lid]
					}
					if lobj != nil {
						aliasOf[lobj] = fieldObj
					}
				}
			}
			return true
		})
	}
	for local, field := range aliasOf {
		if released[local] {
			released[field] = true
		}
	}
	for _, fd := range fields {
		if !released[fd.obj] {
			p.Reportf(fd.id.Pos(), "ad.Tape field %s has no reachable Release in this package (tape-owned buffers never return to the pool)", fd.id.Name)
		}
	}
}

// tapeState is the abstract state of one locally constructed tape at one
// program point.
type tapeState struct {
	released bool // Release executed on every path reaching this point
	mayRel   bool // Release executed on at least one path
	deferred bool // a registered defer will Release it at function exit
	escaped  bool // ownership visibly left this scope
}

// tapeEnv is the dataflow fact for rules 2 and 3: per-tape state plus the
// taint map connecting tape-owned values back to their tape.
type tapeEnv struct {
	tapes map[types.Object]*tapeState
	taint map[types.Object]types.Object // owned value → owning tape
}

func (e *tapeEnv) clone() *tapeEnv {
	c := &tapeEnv{
		tapes: make(map[types.Object]*tapeState, len(e.tapes)),
		taint: make(map[types.Object]types.Object, len(e.taint)),
	}
	for k, v := range e.tapes {
		s := *v
		c.tapes[k] = &s
	}
	for k, v := range e.taint {
		c.taint[k] = v
	}
	return c
}

func mergeTapeEnvs(a, b *tapeEnv) *tapeEnv {
	for k, sb := range b.tapes {
		sa, ok := a.tapes[k]
		if !ok {
			s := *sb
			a.tapes[k] = &s
			continue
		}
		sa.released = sa.released && sb.released
		sa.mayRel = sa.mayRel || sb.mayRel
		sa.deferred = sa.deferred && sb.deferred
		sa.escaped = sa.escaped || sb.escaped
	}
	for k, v := range b.taint {
		if _, ok := a.taint[k]; !ok {
			a.taint[k] = v
		}
	}
	return a
}

func tapeEnvEqual(a, b *tapeEnv) bool {
	if len(a.tapes) != len(b.tapes) || len(a.taint) != len(b.taint) {
		return false
	}
	for k, sa := range a.tapes {
		sb, ok := b.tapes[k]
		if !ok || *sa != *sb {
			return false
		}
	}
	for k, v := range a.taint {
		if b.taint[k] != v {
			return false
		}
	}
	return true
}

// tapeWalker interprets one function scope's CFG nodes for rules 2 and 3.
type tapeWalker struct {
	pass      *Pass
	graph     *cfg.Graph
	declDepth map[types.Object]int
	declPos   map[types.Object]token.Pos // NewTape assignment position
	reported  map[types.Object]bool      // rule-2 leaks, one per tape
	report    bool
}

func analyzeTapeScope(p *Pass, body *ast.BlockStmt) {
	g := cfg.Build(body, p.Info)
	w := &tapeWalker{
		pass:      p,
		graph:     g,
		declDepth: map[types.Object]int{},
		declPos:   map[types.Object]token.Pos{},
		reported:  map[types.Object]bool{},
	}
	in := cfg.Forward(g, cfg.Analysis[*tapeEnv]{
		Entry: func() *tapeEnv {
			return &tapeEnv{tapes: map[types.Object]*tapeState{}, taint: map[types.Object]types.Object{}}
		},
		Clone:    (*tapeEnv).clone,
		Merge:    mergeTapeEnvs,
		Equal:    tapeEnvEqual,
		Transfer: w.transfer,
	})
	w.report = true
	for _, b := range g.Blocks {
		if env, ok := in[b]; ok {
			w.transfer(b, env.clone())
		}
	}
}

// transfer interprets one basic block's nodes. Per node the order is: report
// uses of already-released tapes (so the Release call itself is exempt),
// then apply the node's effects (taint, NewTape, Release, defer, escapes).
func (w *tapeWalker) transfer(b *cfg.Block, env *tapeEnv) *tapeEnv {
	info := w.pass.Info
	for _, nd := range b.Nodes {
		switch n := nd.N.(type) {
		case *cfg.ScopeExit:
			w.leakCheck(env, func(obj types.Object) bool {
				return w.declDepth[obj] == n.Depth
			})
			for obj := range env.tapes {
				if w.declDepth[obj] >= n.Depth {
					delete(env.tapes, obj)
				}
			}
			continue
		case *ast.BranchStmt:
			if exitDepth, ok := w.graph.BranchDepth[n]; ok {
				w.leakCheck(env, func(obj types.Object) bool {
					return w.declDepth[obj] >= exitDepth
				})
				for obj := range env.tapes {
					if w.declDepth[obj] >= exitDepth {
						delete(env.tapes, obj)
					}
				}
			}
			continue
		case *ast.ReturnStmt:
			w.scanUses(n, env)
			w.markEscapes(n, env)
			w.leakCheck(env, nil)
			continue
		}

		// 1. Uses of released tapes / their owned values (rule 3).
		w.scanUses(nd.N, env)

		// 2. Effects.
		switch n := nd.N.(type) {
		case *ast.AssignStmt:
			w.handleAssign(n, env, nd.Depth)
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if id, ok := tapeReleaseCall(info, call).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						if st, ok := env.tapes[obj]; ok {
							st.released, st.mayRel = true, true
						}
					}
					continue
				}
			}
			w.markEscapes(n, env)
		case *ast.DeferStmt:
			w.handleDefer(n, env)
		case *ast.GoStmt:
			w.markEscapes(n, env)
		default:
			w.markEscapes(nd.N, env)
		}
	}
	return env
}

// leakCheck reports rule-2 leaks: tapes that are not released on this path,
// not deferred, and not escaped. The report lands on the NewTape assignment
// (the lease that was taken out), once per tape.
func (w *tapeWalker) leakCheck(env *tapeEnv, keep func(obj types.Object) bool) {
	for obj, st := range env.tapes {
		if st.mayRel || st.deferred || st.escaped {
			continue
		}
		if keep != nil && !keep(obj) {
			continue
		}
		if w.report && !w.reported[obj] {
			w.reported[obj] = true
			w.pass.Reportf(w.declPos[obj], "ad.Tape %s has no reachable Release in this function (arena buffers leak from the pool)", obj.Name())
		}
	}
}

// scanUses reports rule-3 violations inside one node's subtree: any mention
// of a must-released tape, or of a value owned by one.
func (w *tapeWalker) scanUses(n ast.Node, env *tapeEnv) {
	if !w.report || n == nil {
		return
	}
	info := w.pass.Info
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if st, ok := env.tapes[obj]; ok && st.released {
			w.pass.Reportf(id.Pos(), "tape %s is used after Release in the same block", id.Name)
			return true
		}
		if tape, ok := env.taint[obj]; ok {
			if st, ok := env.tapes[tape]; ok && st.released {
				w.pass.Reportf(id.Pos(), "%s is owned by tape %s and used after its Release (arena storage already recycled)", id.Name, tape.Name())
			}
		}
		return true
	})
}

// handleAssign tracks NewTape declarations and taint propagation: a LHS of
// tape-owned type whose RHS mentions a tracked tape (or an already-tainted
// value) is owned by that tape; reassignment from a clean source clears it.
func (w *tapeWalker) handleAssign(as *ast.AssignStmt, env *tapeEnv, depth int) {
	info := w.pass.Info
	if len(as.Lhs) == len(as.Rhs) {
		for i, l := range as.Lhs {
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || funcFullName(calleeFunc(info, call)) != fnNewTape {
				continue
			}
			lid, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || lid.Name == "_" {
				continue
			}
			obj := info.Defs[lid]
			if obj == nil {
				obj = info.Uses[lid]
			}
			if obj == nil {
				continue
			}
			env.tapes[obj] = &tapeState{}
			if _, ok := w.declPos[obj]; !ok {
				w.declPos[obj] = as.Pos()
				w.declDepth[obj] = depth
			}
		}
	}

	// Taint: find a tape (or tainted value) mentioned on the RHS.
	var srcTape types.Object
	for _, r := range as.Rhs {
		ast.Inspect(r, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			if isTapeType(obj.Type()) {
				srcTape = obj
				return false
			}
			if t, ok := env.taint[obj]; ok {
				srcTape = t
				return false
			}
			return true
		})
		if srcTape != nil {
			break
		}
	}
	for _, l := range as.Lhs {
		lid, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Defs[lid]
		if obj == nil {
			obj = info.Uses[lid]
		}
		if obj == nil {
			continue
		}
		if _, isTape := env.tapes[obj]; isTape {
			continue
		}
		if srcTape != nil && tapeOwnedType(obj.Type()) {
			env.taint[obj] = srcTape
		} else {
			delete(env.taint, obj) // reassigned from a clean source
		}
	}

	// Escapes on the RHS (return-value aliasing is handled by scan of the
	// whole assignment in markEscapes).
	w.markEscapes(as, env)
}

// handleDefer classifies a defer: `defer tp.Release()` (or a deferred
// closure that releases tp) marks the tape deferred; a deferred closure that
// captures the tape without releasing it, or any other deferred call
// mentioning it, is handled by the escape scan.
func (w *tapeWalker) handleDefer(s *ast.DeferStmt, env *tapeEnv) {
	info := w.pass.Info
	if id, ok := tapeReleaseCall(info, s.Call).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			if st, ok := env.tapes[obj]; ok {
				st.deferred = true
			}
			return
		}
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		for obj, st := range env.tapes {
			if tapeObjReleased(info, lit.Body, obj) {
				st.deferred = true
			}
		}
	}
	w.markEscapes(s, env)
}

// markEscapes marks every tracked tape that is used outside a borrow
// position (receiver of a method call / field selection) anywhere under n as
// escaped: being returned, passed as an argument or stored hands the lease
// to someone else.
func (w *tapeWalker) markEscapes(n ast.Node, env *tapeEnv) {
	if n == nil || len(env.tapes) == 0 {
		return
	}
	info := w.pass.Info
	borrowed := map[*ast.Ident]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				borrowed[id] = true
			}
		}
		return true
	})
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || borrowed[id] {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if st, ok := env.tapes[obj]; ok {
			st.escaped = true
		}
		return true
	})
}

// tapeObjReleased reports whether obj is the receiver of a Release call
// anywhere under n (deferred or not, including inside closures).
func tapeObjReleased(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := tapeReleaseCall(info, call).(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// tapeOwnedType reports whether values of t live in tape-owned storage:
// *ad.Node or *mat.Dense (possibly behind slices/arrays/maps).
func tapeOwnedType(t types.Type) bool {
	switch t := t.(type) {
	case nil:
		return false
	case *types.Pointer:
		return tapeOwnedType(t.Elem())
	case *types.Slice:
		return tapeOwnedType(t.Elem())
	case *types.Array:
		return tapeOwnedType(t.Elem())
	case *types.Map:
		return tapeOwnedType(t.Elem())
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil {
			return false
		}
		p := obj.Pkg().Path()
		return (p == pathAd && obj.Name() == "Node") || (p == pathMat && obj.Name() == "Dense")
	}
	return false
}
