package analysis

import (
	"go/ast"
	"go/types"
)

// TapeLease enforces the tape-arena lease discipline (DESIGN.md §7): an
// ad.Tape owns every node, forward value and gradient allocated through it,
// and Release() recycles them all into the buffer pool. Three rules:
//
//  1. a struct field of type *ad.Tape must have a reachable Release call
//     somewhere in its package (directly on the field or through a local
//     alias such as `tp := c.tape; defer tp.Release()`);
//  2. a local constructed with ad.NewTape must have a reachable Release in
//     the same function, unless ownership is visibly handed away;
//  3. after a non-deferred Release, no tape-owned value (the tape itself, or
//     a *ad.Node/*mat.Dense derived from it) may be used later in the same
//     block — the arena has already recycled its storage.
//
// Package ad itself is exempt: Node's internal back-reference to its tape is
// arena plumbing, not a lease.
var TapeLease = &Analyzer{
	Name: "tapelease",
	Doc:  "every ad.Tape needs a reachable Release, and tape-owned values must not be used after it",
	Run:  runTapeLease,
}

var (
	fnNewTape     = pathAd + ".NewTape"
	fnTapeRelease = pathAd + ".Tape.Release"
)

func runTapeLease(p *Pass) {
	if p.Pkg.Path() == pathAd {
		return
	}
	checkTapeFields(p)
	forEachFuncScope(p.Files, func(body *ast.BlockStmt) {
		checkLocalTapes(p, body)
	})
	checkUseAfterRelease(p)
}

// isTapeType reports whether t is (a pointer to) ad.Tape.
func isTapeType(t types.Type) bool {
	return t != nil && isNamed(t, pathAd, "Tape")
}

// tapeReleaseCall returns the receiver expression of a call when the call is
// ad.Tape.Release, and nil otherwise.
func tapeReleaseCall(info *types.Info, call *ast.CallExpr) ast.Expr {
	if funcFullName(calleeFunc(info, call)) != fnTapeRelease {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return ast.Unparen(sel.X)
}

// checkTapeFields verifies rule 1: collect every *ad.Tape struct field
// declared in this package and every Release receiver, then connect them
// directly or through one level of local alias.
func checkTapeFields(p *Pass) {
	type fieldDecl struct {
		obj types.Object
		id  *ast.Ident
	}
	var fields []fieldDecl
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					obj := p.Info.Defs[name]
					if obj != nil && isTapeType(obj.Type()) {
						fields = append(fields, fieldDecl{obj, name})
					}
				}
			}
			return true
		})
	}
	if len(fields) == 0 {
		return
	}

	released := map[types.Object]bool{}        // objects used as a Release receiver
	aliasOf := map[types.Object]types.Object{} // local var → field it aliases
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				recv := tapeReleaseCall(p.Info, n)
				switch recv := recv.(type) {
				case *ast.Ident:
					if obj := p.Info.Uses[recv]; obj != nil {
						released[obj] = true
					}
				case *ast.SelectorExpr:
					if obj := p.Info.Uses[recv.Sel]; obj != nil {
						released[obj] = true
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, l := range n.Lhs {
					lid, ok := ast.Unparen(l).(*ast.Ident)
					if !ok {
						continue
					}
					sel, ok := ast.Unparen(n.Rhs[i]).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					fieldObj := p.Info.Uses[sel.Sel]
					if fieldObj == nil || !isTapeType(fieldObj.Type()) {
						continue
					}
					lobj := p.Info.Defs[lid]
					if lobj == nil {
						lobj = p.Info.Uses[lid]
					}
					if lobj != nil {
						aliasOf[lobj] = fieldObj
					}
				}
			}
			return true
		})
	}
	for local, field := range aliasOf {
		if released[local] {
			released[field] = true
		}
	}
	for _, fd := range fields {
		if !released[fd.obj] {
			p.Reportf(fd.id.Pos(), "ad.Tape field %s has no reachable Release in this package (tape-owned buffers never return to the pool)", fd.id.Name)
		}
	}
}

// checkLocalTapes verifies rule 2 for one function scope: every local built
// by ad.NewTape either has a Release call on it somewhere in the scope
// (including deferred closures) or visibly escapes.
func checkLocalTapes(p *Pass, body *ast.BlockStmt) {
	type localTape struct {
		obj types.Object
		pos ast.Node
	}
	var locals []localTape
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != nil {
			return true // closures share the scope check via ident scanning below
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || funcFullName(calleeFunc(p.Info, call)) != fnNewTape {
				continue
			}
			lid, ok := ast.Unparen(l).(*ast.Ident)
			if !ok || lid.Name == "_" {
				continue
			}
			obj := p.Info.Defs[lid]
			if obj == nil {
				obj = p.Info.Uses[lid]
			}
			if obj != nil {
				locals = append(locals, localTape{obj, as})
			}
		}
		return true
	})
	for _, lt := range locals {
		if tapeObjReleased(p.Info, body, lt.obj) {
			continue
		}
		if tapeObjEscapes(p.Info, body, lt.obj) {
			continue
		}
		p.Reportf(lt.pos.Pos(), "ad.Tape %s has no reachable Release in this function (arena buffers leak from the pool)", lt.obj.Name())
	}
}

// tapeObjReleased reports whether obj is the receiver of a Release call
// anywhere under n (deferred or not, including inside closures).
func tapeObjReleased(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := tapeReleaseCall(info, call).(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// tapeObjEscapes reports whether obj is used anywhere other than as the
// receiver of a method call or field selection — being returned, passed as
// an argument, or stored hands the lease to someone else.
func tapeObjEscapes(info *types.Info, n ast.Node, obj types.Object) bool {
	// Idents of obj that appear as the X of a selector are borrows; any
	// other use transfers ownership.
	borrowed := map[*ast.Ident]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				borrowed[id] = true
			}
		}
		return true
	})
	escapes := false
	ast.Inspect(n, func(n ast.Node) bool {
		if escapes {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj && !borrowed[id] {
			escapes = true
		}
		return true
	})
	return escapes
}

// tapeOwnedType reports whether values of t live in tape-owned storage:
// *ad.Node or *mat.Dense (possibly behind slices/arrays/maps).
func tapeOwnedType(t types.Type) bool {
	switch t := t.(type) {
	case nil:
		return false
	case *types.Pointer:
		return tapeOwnedType(t.Elem())
	case *types.Slice:
		return tapeOwnedType(t.Elem())
	case *types.Array:
		return tapeOwnedType(t.Elem())
	case *types.Map:
		return tapeOwnedType(t.Elem())
	case *types.Named:
		obj := t.Obj()
		if obj.Pkg() == nil {
			return false
		}
		p := obj.Pkg().Path()
		return (p == pathAd && obj.Name() == "Node") || (p == pathMat && obj.Name() == "Dense")
	}
	return false
}

// checkUseAfterRelease verifies rule 3: within each lexical statement list,
// once a tape is Released (non-deferred), neither the tape nor any value
// tainted by it may appear in a later statement of that list.
func checkUseAfterRelease(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				checkStmtList(p, n.List)
			case *ast.CaseClause:
				checkStmtList(p, n.Body)
			case *ast.CommClause:
				checkStmtList(p, n.Body)
			}
			return true
		})
	}
}

func checkStmtList(p *Pass, stmts []ast.Stmt) {
	released := map[types.Object]bool{}          // tape vars released so far
	taintedBy := map[types.Object]types.Object{} // value var → owning tape var
	for _, s := range stmts {
		// 1. Flag uses of already-released tapes or their owned values. The
		// scan covers the whole subtree: a use nested in an if-body below the
		// Release is still lexically after it in this list.
		if len(released) > 0 {
			reportReleasedUses(p, s, released, taintedBy)
		}
		// 2. Record taint: a tape-owned value assigned from an expression
		// that mentions a live tape (or an already-tainted value).
		if as, ok := s.(*ast.AssignStmt); ok {
			recordTaint(p, as, taintedBy)
		}
		// 3. Record non-deferred Releases at this nesting level only; a
		// Release inside an if-branch does not dominate the rest of the list.
		if es, ok := s.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := tapeReleaseCall(p.Info, call).(*ast.Ident); ok {
					if obj := p.Info.Uses[id]; obj != nil {
						released[obj] = true
					}
				}
			}
		}
	}
}

// recordTaint marks LHS variables of tape-owned type whose RHS mentions a
// tape variable or an already-tainted value.
func recordTaint(p *Pass, as *ast.AssignStmt, taintedBy map[types.Object]types.Object) {
	if len(taintedBy) == 0 {
		// Taint can only originate from a tape variable; find one on the RHS.
	}
	var srcTape types.Object
	for _, r := range as.Rhs {
		ast.Inspect(r, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil {
				return true
			}
			if isTapeType(obj.Type()) {
				srcTape = obj
				return false
			}
			if t, ok := taintedBy[obj]; ok {
				srcTape = t
				return false
			}
			return true
		})
		if srcTape != nil {
			break
		}
	}
	for _, l := range as.Lhs {
		lid, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			continue
		}
		obj := p.Info.Defs[lid]
		if obj == nil {
			obj = p.Info.Uses[lid]
		}
		if obj == nil {
			continue
		}
		if srcTape != nil && tapeOwnedType(obj.Type()) {
			taintedBy[obj] = srcTape
		} else {
			delete(taintedBy, obj) // reassigned from a clean source
		}
	}
}

// reportReleasedUses reports any mention of a released tape or of a value it
// owns inside the statement.
func reportReleasedUses(p *Pass, s ast.Stmt, released map[types.Object]bool, taintedBy map[types.Object]types.Object) {
	ast.Inspect(s, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		if released[obj] {
			p.Reportf(id.Pos(), "tape %s is used after Release in the same block", id.Name)
			return true
		}
		if tape, ok := taintedBy[obj]; ok && released[tape] {
			p.Reportf(id.Pos(), "%s is owned by tape %s and used after its Release (arena storage already recycled)", id.Name, tape.Name())
		}
		return true
	})
}
