package analysis

import (
	"encoding/json"
	"go/build"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorruptFixtureDiagnostics pins the driver's behaviour on broken input:
// a clean error naming the failure, never a panic.
func TestCorruptFixtureDiagnostics(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"broken", "parsing"},
		{"brokentypes", "type-checking"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			loader, err := NewLoader(root)
			if err != nil {
				t.Fatal(err)
			}
			_, err = loader.LoadDir(filepath.Join(root, "internal", "analysis", "testdata", tc.dir))
			if err == nil {
				t.Fatalf("expected a load error for testdata/%s", tc.dir)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadDirOutsideModule pins the refusal to analyze paths above go.mod.
func TestLoadDirOutsideModule(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadDir(filepath.Dir(root)); err == nil {
		t.Fatal("expected an error loading a directory outside the module root")
	}
}

// TestBuildConstraintFiltering pins the loader's file selection against an
// explicit build context: the buildtags fixture mirrors the internal/mat SIMD
// layout (//go:build !amd64 portable file, bodyless _amd64.go decl backed by
// a .s file), and the loader must type-check exactly one Axpy per GOARCH —
// the same selection `go build` makes for the real kernels.
func TestBuildConstraintFiltering(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", "buildtags")
	cases := []struct {
		goarch  string
		include string
		exclude string
	}{
		{"amd64", "axpy_amd64.go", "axpy.go"},
		{"arm64", "axpy.go", "axpy_amd64.go"},
	}
	for _, tc := range cases {
		t.Run(tc.goarch, func(t *testing.T) {
			// A fresh loader per context: the package cache is keyed by import
			// path, not by build context.
			loader, err := NewLoader(root)
			if err != nil {
				t.Fatal(err)
			}
			ctx := build.Default
			ctx.GOARCH = tc.goarch
			loader.Build = &ctx
			pkg, err := loader.LoadDir(dir)
			if err != nil {
				t.Fatalf("loading buildtags fixture for %s: %v", tc.goarch, err)
			}
			names := map[string]bool{}
			for _, f := range pkg.Files {
				names[filepath.Base(pkg.Fset.Position(f.Pos()).Filename)] = true
			}
			if !names[tc.include] {
				t.Errorf("GOARCH=%s: %s not in the file set %v", tc.goarch, tc.include, names)
			}
			if names[tc.exclude] {
				t.Errorf("GOARCH=%s: %s should have been filtered out, got %v", tc.goarch, tc.exclude, names)
			}
			if !names["doc.go"] {
				t.Errorf("GOARCH=%s: unconstrained doc.go missing from %v", tc.goarch, names)
			}
			// Both contexts type-check: exactly one Axpy is in scope each time.
			if pkg.Types.Scope().Lookup("Axpy") == nil {
				t.Errorf("GOARCH=%s: Axpy not defined", tc.goarch)
			}
		})
	}
}

// TestExpandPatterns pins wildcard expansion: testdata and hidden trees are
// skipped, plain directories pass through.
func TestExpandPatterns(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("wildcard expansion included a testdata directory: %s", d)
		}
	}
	var sawMat bool
	for _, d := range dirs {
		if filepath.Base(d) == "mat" {
			sawMat = true
		}
	}
	if !sawMat {
		t.Errorf("wildcard expansion missed internal/mat: %v", dirs)
	}
}

// runVet executes the command from the module root and returns combined
// output plus the exit code.
func runVet(t *testing.T, root string, cmd *exec.Cmd) (string, int) {
	t.Helper()
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%v: %v\n%s", cmd.Args, err, out)
	}
	return string(out), ee.ExitCode()
}

// govet runs the fedomdvet binary built once per test (go run would flatten
// the binary's exit code 2 to its own 1, hiding the load-failure status).
func govet(t *testing.T, root, bin string, args ...string) (string, int) {
	t.Helper()
	return runVet(t, root, exec.Command(bin, args...))
}

// TestExitCodes shells out to the real tool — once through `go run` to pin
// the Makefile's invocation, then through the built binary — and pins the
// three exit statuses: 0 clean, 1 diagnostics, 2 load failure.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping build-and-exec round trips in -short mode")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}

	// The clean case through go run, exactly as `make lint` invokes it.
	out, code := runVet(t, root, exec.Command("go", "run", "./cmd/fedomdvet", "./internal/telemetry"))
	if code != 0 {
		t.Errorf("clean package: got exit %d, output:\n%s", code, out)
	}

	bin := filepath.Join(t.TempDir(), "fedomdvet")
	if bout, bcode := runVet(t, root, exec.Command("go", "build", "-o", bin, "./cmd/fedomdvet")); bcode != 0 {
		t.Fatalf("building fedomdvet: exit %d\n%s", bcode, bout)
	}

	out, code = govet(t, root, bin, "./internal/analysis/testdata/src/intoalias")
	if code != 1 {
		t.Errorf("fixture with violations: got exit %d, want 1, output:\n%s", code, out)
	}
	if !strings.Contains(out, "(intoalias)") {
		t.Errorf("diagnostic output missing analyzer tag:\n%s", out)
	}
	if strings.Contains(out, "panic") {
		t.Errorf("output mentions a panic:\n%s", out)
	}

	out, code = govet(t, root, bin, "./internal/analysis/testdata/broken")
	if code != 2 {
		t.Errorf("corrupt package: got exit %d, want 2, output:\n%s", code, out)
	}
	if !strings.Contains(out, "parsing") || strings.Contains(out, "panic") {
		t.Errorf("corrupt package output not a clean diagnostic:\n%s", out)
	}

	// -json: every line is one parseable object with the stable field set.
	out, code = govet(t, root, bin, "-json", "./internal/analysis/testdata/src/intoalias")
	if code != 1 {
		t.Errorf("-json run: got exit %d, want 1, output:\n%s", code, out)
	}
	sawJSON := false
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // stderr noise from CombinedOutput
		}
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("-json emitted unparseable line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Analyzer != "intoalias" || d.Message == "" {
			t.Fatalf("-json diagnostic incomplete: %+v", d)
		}
		sawJSON = true
	}
	if !sawJSON {
		t.Errorf("-json run produced no JSON diagnostics:\n%s", out)
	}

	// -only restricts the suite: the intoalias fixture is clean under a
	// disjoint analyzer, and unknown names are a usage error.
	out, code = govet(t, root, bin, "-only", "poolpair,spanend", "./internal/analysis/testdata/src/intoalias")
	if code != 0 {
		t.Errorf("-only with disjoint analyzers: got exit %d, want 0, output:\n%s", code, out)
	}
	out, code = govet(t, root, bin, "-only", "nosuch", "./internal/telemetry")
	if code != 2 || !strings.Contains(out, "unknown analyzer") {
		t.Errorf("-only nosuch: got exit %d, output:\n%s", code, out)
	}

	// -timing writes one summary line naming every analyzer that ran.
	out, code = govet(t, root, bin, "-timing", "-only", "tapelease", "./internal/telemetry")
	if code != 0 {
		t.Errorf("-timing run: got exit %d, want 0, output:\n%s", code, out)
	}
	if !strings.Contains(out, "fedomdvet timing:") || !strings.Contains(out, "tapelease") {
		t.Errorf("-timing output missing the summary line:\n%s", out)
	}
}

// TestWholeTreeClean runs the full suite over the real module in-process:
// the tree must stay fedomdvet-clean.
func TestWholeTreeClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := SharedLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	// The codec and serving layers must be in the sweep: the codec encoder
	// and the micro-batcher are exactly the kind of pool-handling,
	// telemetry-emitting code the analyzers exist for.
	for _, want := range []string{"internal/codec", "cmd/benchcomms", "internal/serve", "cmd/benchserve"} {
		found := false
		for _, dir := range dirs {
			if strings.HasSuffix(filepath.ToSlash(dir), want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("pattern expansion missed %s", want)
		}
	}
	var diags []string
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		for _, d := range Run(pkg, All()) {
			diags = append(diags, d.String())
		}
	}
	if len(diags) > 0 {
		t.Errorf("fedomdvet is not clean on the tree:\n%s", strings.Join(diags, "\n"))
	}
}
