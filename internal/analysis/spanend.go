package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"fedomd/internal/analysis/cfg"
)

// SpanEnd enforces the span lifecycle contract of the tracing plane
// (DESIGN.md §11): every span obtained from telemetry.StartSpan,
// (*obs.Tracer).Start or (*obs.Tracer).Root must reach End() — or
// telemetry's Cancel(), for abandoning a timing sample on a failure path —
// on every path out of the scope that started it, including error returns.
// An obs span that never Ends never emits its trace record, which silently
// corrupts the parent/child tree TestDistributedTraceTree reconstructs; a
// telemetry span that never Ends loses its histogram sample.
//
// The check is a cfg dataflow (DESIGN.md §13) mirroring poolpair: starts
// create a live fact, End/Cancel retire it (must-ended ANDs at joins),
// deferred Ends and visible escapes (returning or storing the span, passing
// it to a call) retire the obligation, and any return/break/scope-exit
// reached with a live un-ended span is reported. Restarting into a live
// span's variable loses the previous span and is reported at the restart.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "every telemetry/obs span must reach End (or Cancel) on all paths, including error returns",
	Run:  runSpanEnd,
}

// spanStartFuncs are the span constructors; spanEndFuncs the calls that
// retire the obligation on their receiver.
var (
	spanStartFuncs = map[string]bool{
		pathTelemetry + ".StartSpan": true,
		pathObs + ".Tracer.Start":    true,
		pathObs + ".Tracer.Root":     true,
	}
	spanEndFuncs = map[string]bool{
		pathTelemetry + ".Span.End":    true,
		pathTelemetry + ".Span.Cancel": true,
		pathObs + ".Span.End":          true,
	}
)

func runSpanEnd(p *Pass) {
	if p.Pkg.Path() == pathTelemetry || p.Pkg.Path() == pathObs {
		// The tracing packages' own plumbing constructs and forwards spans by
		// design.
		return
	}
	forEachFuncScope(p.Files, func(body *ast.BlockStmt) {
		analyzeSpanScope(p, body)
	})
}

// spanState is the abstract state of one tracked span at a program point.
type spanState struct {
	live     bool // started; the End obligation is with this scope
	ended    bool // End/Cancel executed on every path reaching this point
	deferred bool // a registered defer will End it at function exit
	escaped  bool // stored/returned/passed on: obligation transferred
}

type spanEnv struct {
	state map[types.Object]*spanState
}

func (e *spanEnv) clone() *spanEnv {
	c := &spanEnv{state: make(map[types.Object]*spanState, len(e.state))}
	for k, v := range e.state {
		s := *v
		c.state[k] = &s
	}
	return c
}

func mergeSpanEnvs(a, b *spanEnv) *spanEnv {
	for k, sb := range b.state {
		sa, ok := a.state[k]
		if !ok {
			s := *sb
			a.state[k] = &s
			continue
		}
		sa.live = sa.live || sb.live
		sa.ended = sa.ended && sb.ended
		sa.deferred = sa.deferred && sb.deferred
		sa.escaped = sa.escaped || sb.escaped
	}
	return a
}

func spanEnvEqual(a, b *spanEnv) bool {
	if len(a.state) != len(b.state) {
		return false
	}
	for k, sa := range a.state {
		sb, ok := b.state[k]
		if !ok || *sa != *sb {
			return false
		}
	}
	return true
}

type spanWalker struct {
	pass      *Pass
	graph     *cfg.Graph
	declDepth map[types.Object]int
	report    bool
}

func analyzeSpanScope(p *Pass, body *ast.BlockStmt) {
	g := cfg.Build(body, p.Info)
	w := &spanWalker{pass: p, graph: g, declDepth: map[types.Object]int{}}
	in := cfg.Forward(g, cfg.Analysis[*spanEnv]{
		Entry:    func() *spanEnv { return &spanEnv{state: map[types.Object]*spanState{}} },
		Clone:    (*spanEnv).clone,
		Merge:    mergeSpanEnvs,
		Equal:    spanEnvEqual,
		Transfer: w.transfer,
	})
	w.report = true
	for _, b := range g.Blocks {
		if env, ok := in[b]; ok {
			w.transfer(b, env.clone())
		}
	}
}

func (w *spanWalker) reportf(pos token.Pos, format string, args ...any) {
	if w.report {
		w.pass.Reportf(pos, format, args...)
	}
}

// leakCheck reports spans that are live with no retired obligation.
func (w *spanWalker) leakCheck(env *spanEnv, pos token.Pos, what string, keep func(obj types.Object) bool) {
	for obj, s := range env.state {
		if !s.live || s.ended || s.deferred || s.escaped {
			continue
		}
		if keep != nil && !keep(obj) {
			continue
		}
		w.reportf(pos, "span %s is not ended %s (a span that never Ends is lost from the trace tree)", obj.Name(), what)
	}
}

func (w *spanWalker) transfer(b *cfg.Block, env *spanEnv) *spanEnv {
	info := w.pass.Info
	for _, nd := range b.Nodes {
		switch n := nd.N.(type) {
		case *cfg.ScopeExit:
			w.leakCheck(env, n.Brace, "before it goes out of scope", func(obj types.Object) bool {
				return w.declDepth[obj] == n.Depth
			})
			for obj := range env.state {
				if w.declDepth[obj] >= n.Depth {
					delete(env.state, obj)
				}
			}

		case *ast.AssignStmt:
			w.handleAssign(n, env, nd.Depth)

		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				w.markEscapes(n, env)
				continue
			}
			name := funcFullName(calleeFunc(info, call))
			if spanEndFuncs[name] {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							if st, ok := env.state[obj]; ok {
								st.ended = true
								st.live = false
							}
							continue
						}
					}
				}
				continue
			}
			if spanStartFuncs[name] {
				w.reportf(call.Pos(), "result of %s is discarded (the span can never End)", spanDisplayName(call))
				continue
			}
			w.markEscapes(n, env)

		case *ast.DeferStmt:
			w.handleDefer(n, env)

		case *ast.GoStmt:
			w.markEscapes(n, env)

		case *ast.ReturnStmt:
			w.markEscapes(n, env)
			w.leakCheck(env, n.Pos(), "on this return path", nil)

		case *ast.BranchStmt:
			if exitDepth, ok := w.graph.BranchDepth[n]; ok {
				w.leakCheck(env, n.Pos(), "on this "+n.Tok.String()+" path", func(obj types.Object) bool {
					return w.declDepth[obj] >= exitDepth
				})
				for obj := range env.state {
					if w.declDepth[obj] >= exitDepth {
						delete(env.state, obj)
					}
				}
			}

		case *ast.IncDecStmt:
			// cannot involve a span

		default:
			w.markEscapes(nd.N, env)
		}
	}
	return env
}

// handleAssign tracks span starts and escapes. Reassigning a live un-ended
// span's variable — by a new start or anything else — loses the span.
func (w *spanWalker) handleAssign(s *ast.AssignStmt, env *spanEnv, depth int) {
	info := w.pass.Info
	parallel := len(s.Lhs) == len(s.Rhs)
	for i, l := range s.Lhs {
		lid, _ := ast.Unparen(l).(*ast.Ident)
		var r ast.Expr
		if parallel {
			r = ast.Unparen(s.Rhs[i])
		}
		if r == nil {
			continue
		}
		if call, ok := r.(*ast.CallExpr); ok && spanStartFuncs[funcFullName(calleeFunc(info, call))] && lid != nil && lid.Name != "_" {
			obj := info.Defs[lid]
			if obj == nil {
				obj = info.Uses[lid]
			}
			if obj == nil {
				continue
			}
			if st, ok := env.state[obj]; ok && st.live && !st.ended && !st.deferred && !st.escaped {
				w.reportf(s.Pos(), "span %s is started again before End (the previous span is lost from the trace)", obj.Name())
			}
			env.state[obj] = &spanState{live: true}
			w.declDepth[obj] = depth
			w.markEscapes(call, env) // arguments may mention other spans (parent contexts are borrows)
			continue
		}
		// Any other overwrite of a tracked span variable drops it.
		if lid != nil {
			if obj := info.Uses[lid]; obj != nil {
				if st, ok := env.state[obj]; ok && st.live && !st.ended && !st.deferred && !st.escaped {
					w.reportf(s.Pos(), "span %s is overwritten before End (the span is lost from the trace)", obj.Name())
				}
				delete(env.state, obj)
			}
		}
		w.markEscapes(r, env)
	}
	if !parallel {
		for _, r := range s.Rhs {
			w.markEscapes(r, env)
		}
	}
}

// handleDefer marks `defer sp.End()` (and deferred closures that End a
// tracked span) as retiring the obligation; other deferred mentions escape.
func (w *spanWalker) handleDefer(s *ast.DeferStmt, env *spanEnv) {
	info := w.pass.Info
	call := s.Call
	if spanEndFuncs[funcFullName(calleeFunc(info, call))] {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if st, ok := env.state[obj]; ok {
						st.deferred = true
					}
					return
				}
			}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ended := deferredEndTargets(info, lit.Body)
		for obj, st := range env.state {
			if !usesIdentOf(info, lit.Body, map[types.Object]bool{obj: true}) {
				continue
			}
			if ended[obj] {
				st.deferred = true
			} else {
				st.escaped = true
			}
		}
		return
	}
	w.markEscapes(call, env)
}

// deferredEndTargets collects the objects whose End/Cancel is called
// anywhere under n.
func deferredEndTargets(info *types.Info, n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !spanEndFuncs[funcFullName(calleeFunc(info, call))] {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// markEscapes marks tracked spans used outside a borrow position as escaped.
// The receiver of a method call or field selection (sp.SetAttr, sp.Context,
// runSpan.Context() as a Start argument) is a borrow; returning, storing or
// passing the span itself transfers the End obligation.
func (w *spanWalker) markEscapes(n ast.Node, env *spanEnv) {
	if n == nil || len(env.state) == 0 {
		return
	}
	info := w.pass.Info
	borrowed := map[*ast.Ident]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				borrowed[id] = true
			}
		}
		return true
	})
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || borrowed[id] {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if st, ok := env.state[obj]; ok {
			st.escaped = true
		}
		return true
	})
}

// spanDisplayName renders the start call the way the source spells it.
func spanDisplayName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return exprString(sel.X) + "." + sel.Sel.Name
	}
	return exprString(call.Fun)
}
