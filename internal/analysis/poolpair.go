package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"fedomd/internal/analysis/cfg"
)

// PoolPair enforces the mat buffer-pool ownership contract (DESIGN.md §7): a
// buffer obtained from mat.GetDense must, on every path through the function
// that obtained it, either reach mat.PutDense, be handed to a deferred
// release, or have its ownership visibly transferred (returned, stored into
// a struct/slice/map, appended to a registry such as the ad.Tape's owned
// list, or captured by a closure). Early returns and error paths that drop a
// live buffer are reported as leaks, and a buffer that can reach PutDense
// twice is reported as a double put.
//
// The analysis runs on the cfg dataflow engine (DESIGN.md §13): each scope
// is lowered to a control-flow graph, per-buffer facts reach a fixpoint with
// conservative joins (released only when released on every incoming path,
// leaked when live on any), and a reporting pass over the fixpoint flags
// violations exactly once. Loop back edges are real edges, so a second
// iteration putting a buffer the first iteration already put is a double
// put, and panics unwind without leaking.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "mat.GetDense buffers must reach mat.PutDense (or an ownership transfer) on every path",
	Run:  runPoolPair,
}

var (
	fnGetDense = pathMat + ".GetDense"
	fnPutDense = pathMat + ".PutDense"
	// fnParamsAdd is an owning sink: a pooled Dense stored into an nn.Params
	// set belongs to whoever releases the set (codec.PutParams, the fed
	// aggregation pool), not to the scope that allocated it.
	fnParamsAdd = pathNn + ".Params.Add"
)

func runPoolPair(p *Pass) {
	forEachFuncScope(p.Files, func(body *ast.BlockStmt) {
		analyzePoolScope(p, body)
	})
}

// forEachFuncScope visits the body of every function declaration and every
// function literal. Each scope is analyzed independently: a closure's
// buffers are its own responsibility, and a closure capturing an outer
// buffer is an ownership transfer from the outer scope's point of view.
func forEachFuncScope(files []*ast.File, fn func(body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				fn(n.Body)
			}
			return true
		})
	}
}

// bufState is the abstract state of one tracked pool buffer at one program
// point.
type bufState struct {
	live     bool // GetDense has executed; ownership is with this scope
	defRel   bool // released on every path reaching this point
	mayRel   bool // released on at least one path reaching this point
	deferred bool // a registered defer will release it at function exit
	escaped  bool // ownership visibly left this scope: stop reporting
}

// poolEnv is the dataflow fact: state for every tracked buffer variable.
type poolEnv struct {
	state map[types.Object]*bufState
}

func (e *poolEnv) clone() *poolEnv {
	c := &poolEnv{state: make(map[types.Object]*bufState, len(e.state))}
	for k, v := range e.state {
		s := *v
		c.state[k] = &s
	}
	return c
}

// mergePoolEnvs joins b into a at a control-flow join. A buffer tracked on
// only one incoming path keeps that path's state (the other path predates
// its declaration).
func mergePoolEnvs(a, b *poolEnv) *poolEnv {
	for k, sb := range b.state {
		sa, ok := a.state[k]
		if !ok {
			s := *sb
			a.state[k] = &s
			continue
		}
		sa.live = sa.live || sb.live
		sa.defRel = sa.defRel && sb.defRel
		sa.mayRel = sa.mayRel || sb.mayRel
		sa.deferred = sa.deferred && sb.deferred
		sa.escaped = sa.escaped || sb.escaped
	}
	return a
}

func poolEnvEqual(a, b *poolEnv) bool {
	if len(a.state) != len(b.state) {
		return false
	}
	for k, sa := range a.state {
		sb, ok := b.state[k]
		if !ok || *sa != *sb {
			return false
		}
	}
	return true
}

// poolWalker interprets one function scope's CFG nodes.
type poolWalker struct {
	pass      *Pass
	graph     *cfg.Graph
	declDepth map[types.Object]int // lexical depth at declaration
	report    bool                 // reporting pass vs fixpoint pass
}

func analyzePoolScope(p *Pass, body *ast.BlockStmt) {
	g := cfg.Build(body, p.Info)
	w := &poolWalker{pass: p, graph: g, declDepth: map[types.Object]int{}}
	in := cfg.Forward(g, cfg.Analysis[*poolEnv]{
		Entry:    func() *poolEnv { return &poolEnv{state: map[types.Object]*bufState{}} },
		Clone:    (*poolEnv).clone,
		Merge:    mergePoolEnvs,
		Equal:    poolEnvEqual,
		Transfer: w.transfer,
	})
	// Reporting pass: re-run the transfer over each reachable block's
	// fixpoint entry fact with reporting on. Every node is visited exactly
	// once, so every violation is reported exactly once.
	w.report = true
	for _, b := range g.Blocks {
		if env, ok := in[b]; ok {
			w.transfer(b, env.clone())
		}
	}
}

func (w *poolWalker) reportf(pos token.Pos, format string, args ...any) {
	if w.report {
		w.pass.Reportf(pos, format, args...)
	}
}

// leakCheck reports every buffer that is live and unreleased among those for
// which keep returns true.
func (w *poolWalker) leakCheck(env *poolEnv, pos token.Pos, what string, keep func(obj types.Object) bool) {
	for obj, s := range env.state {
		if !s.live || s.defRel || s.deferred || s.escaped {
			continue
		}
		if keep != nil && !keep(obj) {
			continue
		}
		w.reportf(pos, "pooled buffer %s may leak: not returned to the pool %s (mat.GetDense at an earlier line)", obj.Name(), what)
	}
}

// dropScoped removes buffers declared at depth >= exitDepth: their scope is
// ending, so outer blocks (and the next loop iteration, via back edges) must
// not see them again.
func dropScoped(env *poolEnv, declDepth map[types.Object]int, exitDepth int) {
	for obj := range env.state {
		if declDepth[obj] >= exitDepth {
			delete(env.state, obj)
		}
	}
}

// transfer interprets one basic block's nodes against env.
func (w *poolWalker) transfer(b *cfg.Block, env *poolEnv) *poolEnv {
	for _, nd := range b.Nodes {
		switch n := nd.N.(type) {
		case *cfg.ScopeExit:
			w.leakCheck(env, n.Brace, "before it goes out of scope", func(obj types.Object) bool {
				return w.declDepth[obj] == n.Depth
			})
			dropScoped(env, w.declDepth, n.Depth)

		case *ast.AssignStmt:
			w.handleAssign(n, env, nd.Depth)

		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if w.handlePut(call, env) {
					continue
				}
			}
			w.markEscapes(n.X, env)

		case *ast.DeferStmt:
			w.handleDefer(n, env)

		case *ast.GoStmt:
			// A spawned goroutine may outlive the scope: everything it
			// touches escapes.
			w.markCallEscapes(n.Call, env)

		case *ast.SendStmt:
			w.markAliasEscape(n.Value, env)
			w.markEscapes(n.Chan, env)
			w.markEscapes(n.Value, env)

		case *ast.ReturnStmt:
			for _, r := range n.Results {
				w.markAliasEscape(r, env)
				w.markEscapes(r, env)
			}
			w.leakCheck(env, n.Pos(), "on this return path", nil)

		case *ast.BranchStmt:
			// break/continue exit the construct's body scope: leak-check and
			// drop everything declared inside it, so back edges do not
			// recirculate dead declarations. goto gets no depth (silent).
			if exitDepth, ok := w.graph.BranchDepth[n]; ok {
				w.leakCheck(env, n.Pos(), "on this "+n.Tok.String()+" path", func(obj types.Object) bool {
					return w.declDepth[obj] >= exitDepth
				})
				dropScoped(env, w.declDepth, exitDepth)
			}

		case *ast.DeclStmt:
			w.markEscapes(n, env)

		case *ast.IncDecStmt:
			// cannot involve a *mat.Dense

		default:
			// Lowered conditions, switch tags, case expressions, range
			// operands: scan for ownership-transferring uses.
			w.markEscapes(nd.N, env)
		}
	}
	return env
}

// handleAssign processes declarations of tracked buffers, aliasing escapes
// and overwrites.
func (w *poolWalker) handleAssign(s *ast.AssignStmt, env *poolEnv, depth int) {
	rhs := s.Rhs
	parallel := len(s.Lhs) == len(rhs)
	for i, l := range s.Lhs {
		var r ast.Expr
		if parallel {
			r = ast.Unparen(rhs[i])
		}
		lid, _ := ast.Unparen(l).(*ast.Ident)
		if r != nil {
			if call, ok := r.(*ast.CallExpr); ok && funcFullName(calleeFunc(w.pass.Info, call)) == fnGetDense && lid != nil && lid.Name != "_" {
				obj := w.pass.Info.Defs[lid]
				if obj == nil {
					obj = w.pass.Info.Uses[lid]
				}
				if obj == nil {
					continue
				}
				if st, ok := env.state[obj]; ok && st.live && !st.defRel && !st.deferred && !st.escaped {
					w.reportf(s.Pos(), "pooled buffer %s is overwritten before being returned to the pool", obj.Name())
				}
				env.state[obj] = &bufState{live: true}
				w.declDepth[obj] = depth
				w.markEscapes(call, env) // arguments could mention other buffers
				continue
			}
			// Overwriting a live tracked buffer with anything else drops it.
			if lid != nil {
				if obj := w.pass.Info.Uses[lid]; obj != nil {
					if st, ok := env.state[obj]; ok && st.live && !st.defRel && !st.deferred && !st.escaped {
						w.reportf(s.Pos(), "pooled buffer %s is overwritten before being returned to the pool", obj.Name())
					}
					delete(env.state, obj)
				}
			}
			w.markAliasEscape(r, env)
			w.markEscapes(r, env)
			continue
		}
		// Non-parallel assignment (multi-value call): nothing to track, but
		// escapes still apply.
		_ = i
	}
	if !parallel {
		for _, r := range rhs {
			w.markEscapes(r, env)
		}
	}
}

// handlePut recognises mat.PutDense(x) and flags double puts. It reports
// true when the call was a PutDense.
func (w *poolWalker) handlePut(call *ast.CallExpr, env *poolEnv) bool {
	if funcFullName(calleeFunc(w.pass.Info, call)) != fnPutDense {
		return false
	}
	if len(call.Args) != 1 {
		return true
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return true
	}
	obj := w.pass.Info.Uses[id]
	if obj == nil {
		return true
	}
	st, tracked := env.state[obj]
	if !tracked {
		return true
	}
	if st.escaped {
		return true
	}
	if st.mayRel {
		w.reportf(call.Pos(), "%s may already have been returned to the pool (double mat.PutDense)", obj.Name())
	}
	st.defRel, st.mayRel = true, true
	st.live = false
	return true
}

// handleDefer classifies a defer as either a release (defer mat.PutDense(x),
// or a deferred closure whose body puts x back) or an escape for any other
// captured buffer.
func (w *poolWalker) handleDefer(s *ast.DeferStmt, env *poolEnv) {
	call := s.Call
	if funcFullName(calleeFunc(w.pass.Info, call)) == fnPutDense && len(call.Args) == 1 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := w.pass.Info.Uses[id]; obj != nil {
				if st, ok := env.state[obj]; ok {
					st.deferred = true
				}
				return
			}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		released := putTargets(w.pass.Info, lit.Body)
		for obj, st := range env.state {
			if !usesIdentOf(w.pass.Info, lit.Body, map[types.Object]bool{obj: true}) {
				continue
			}
			if released[obj] {
				st.deferred = true
			} else {
				st.escaped = true
			}
		}
		return
	}
	w.markEscapes(call, env)
}

// putTargets collects the objects passed to mat.PutDense anywhere in n.
func putTargets(info *types.Info, n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || funcFullName(calleeFunc(info, call)) != fnPutDense || len(call.Args) != 1 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// markAliasEscape marks e's object escaped when e is exactly a tracked
// identifier — an alias was created (y := x, s.f = x, return x, ch <- x).
func (w *poolWalker) markAliasEscape(e ast.Expr, env *poolEnv) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	if obj := w.pass.Info.Uses[id]; obj != nil {
		if st, ok := env.state[obj]; ok {
			st.escaped = true
		}
	}
}

// markEscapes scans an expression subtree for ownership-transferring uses of
// tracked buffers: composite literals, append, address-of, closures and
// goroutine arguments. Plain calls borrow their arguments and do not
// transfer ownership — except the known owning sinks (nn.Params.Add), which
// keep the buffer alive past the call.
func (w *poolWalker) markEscapes(n ast.Node, env *poolEnv) {
	if n == nil {
		return
	}
	info := w.pass.Info
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				w.markAliasEscape(elt, env)
			}
		case *ast.CallExpr:
			if isBuiltin(info, n, "append") {
				for _, a := range n.Args {
					w.markAliasEscape(a, env)
				}
			}
			if funcFullName(calleeFunc(info, n)) == fnParamsAdd {
				for _, a := range n.Args {
					w.markAliasEscape(a, env)
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				w.markAliasEscape(n.X, env)
			}
		case *ast.FuncLit:
			// A non-deferred closure may stash the buffer anywhere (it is,
			// for instance, how backward closures keep op-internal state
			// alive until Release).
			for obj, st := range env.state {
				if usesIdentOf(info, n.Body, map[types.Object]bool{obj: true}) {
					st.escaped = true
				}
			}
			return false // the literal's own Gets are analyzed separately
		}
		return true
	})
}

// markCallEscapes marks every tracked buffer mentioned anywhere in a go/defer
// call as escaped (goroutines outlive the frame's ownership reasoning).
func (w *poolWalker) markCallEscapes(call *ast.CallExpr, env *poolEnv) {
	for obj, st := range env.state {
		if usesIdentOf(w.pass.Info, call, map[types.Object]bool{obj: true}) {
			st.escaped = true
		}
	}
}
