package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPair enforces the mat buffer-pool ownership contract (DESIGN.md §7): a
// buffer obtained from mat.GetDense must, on every path through the function
// that obtained it, either reach mat.PutDense, be handed to a deferred
// release, or have its ownership visibly transferred (returned, stored into
// a struct/slice/map, appended to a registry such as the ad.Tape's owned
// list, or captured by a closure). Early returns and error paths that drop a
// live buffer are reported as leaks, and a buffer that can reach PutDense
// twice is reported as a double put.
//
// The analysis is a path-sensitive walk over the AST: branches fork the
// per-buffer state, merges are conservative (released only when released on
// every incoming path), and panics are treated as non-leaking unwinds.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "mat.GetDense buffers must reach mat.PutDense (or an ownership transfer) on every path",
	Run:  runPoolPair,
}

var (
	fnGetDense = pathMat + ".GetDense"
	fnPutDense = pathMat + ".PutDense"
	// fnParamsAdd is an owning sink: a pooled Dense stored into an nn.Params
	// set belongs to whoever releases the set (codec.PutParams, the fed
	// aggregation pool), not to the scope that allocated it.
	fnParamsAdd = pathNn + ".Params.Add"
)

func runPoolPair(p *Pass) {
	forEachFuncScope(p.Files, func(body *ast.BlockStmt) {
		analyzePoolScope(p, body)
	})
}

// forEachFuncScope visits the body of every function declaration and every
// function literal. Each scope is analyzed independently: a closure's
// buffers are its own responsibility, and a closure capturing an outer
// buffer is an ownership transfer from the outer scope's point of view.
func forEachFuncScope(files []*ast.File, fn func(body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n.Body)
				}
			case *ast.FuncLit:
				fn(n.Body)
			}
			return true
		})
	}
}

// bufState is the abstract state of one tracked pool buffer along one path.
type bufState struct {
	live     bool // GetDense has executed; ownership is with this scope
	defRel   bool // released on every path reaching this point
	mayRel   bool // released on at least one path reaching this point
	deferred bool // a registered defer will release it at function exit
	escaped  bool // ownership visibly left this scope: stop reporting
}

// poolEnv is the per-path environment: state and declaration block depth for
// every tracked buffer variable.
type poolEnv struct {
	state      map[types.Object]*bufState
	terminated bool
}

func (e *poolEnv) clone() *poolEnv {
	c := &poolEnv{state: make(map[types.Object]*bufState, len(e.state)), terminated: e.terminated}
	for k, v := range e.state {
		s := *v
		c.state[k] = &s
	}
	return c
}

// merge folds the state after two alternative paths. A path that terminated
// (returned, branched away) contributes nothing to the fall-through state.
func mergePoolEnvs(a, b *poolEnv) *poolEnv {
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	out := &poolEnv{state: map[types.Object]*bufState{}}
	for k, sa := range a.state {
		sb, ok := b.state[k]
		if !ok {
			out.state[k] = sa
			continue
		}
		out.state[k] = &bufState{
			live:     sa.live || sb.live,
			defRel:   sa.defRel && sb.defRel,
			mayRel:   sa.mayRel || sb.mayRel,
			deferred: sa.deferred && sb.deferred,
			escaped:  sa.escaped || sb.escaped,
		}
	}
	for k, sb := range b.state {
		if _, ok := a.state[k]; !ok {
			out.state[k] = sb
		}
	}
	return out
}

// ctrlFrame records an enclosing breakable construct during the walk.
type ctrlFrame struct {
	isLoop     bool
	blockDepth int // len(blockStack) when the construct's body was entered
}

// poolWalker interprets one function scope statement by statement.
type poolWalker struct {
	pass       *Pass
	declDepth  map[types.Object]int // block-stack depth at declaration
	blockDepth int
	ctrl       []ctrlFrame
}

func analyzePoolScope(p *Pass, body *ast.BlockStmt) {
	w := &poolWalker{pass: p, declDepth: map[types.Object]int{}}
	env := &poolEnv{state: map[types.Object]*bufState{}}
	env = w.walkBlock(body, env)
	// walkBlock performs the fall-off-the-end check for the outermost block.
	_ = env
}

// leakCheck reports every buffer that is live and unreleased among those for
// which keep returns true.
func (w *poolWalker) leakCheck(env *poolEnv, pos token.Pos, what string, keep func(obj types.Object) bool) {
	for obj, s := range env.state {
		if !s.live || s.defRel || s.deferred || s.escaped {
			continue
		}
		if keep != nil && !keep(obj) {
			continue
		}
		w.pass.Reportf(pos, "pooled buffer %s may leak: not returned to the pool %s (mat.GetDense at an earlier line)", obj.Name(), what)
	}
}

// walkBlock walks a block's statements in order, then performs the
// scope-exit leak check for buffers declared directly in this block.
func (w *poolWalker) walkBlock(b *ast.BlockStmt, env *poolEnv) *poolEnv {
	w.blockDepth++
	depth := w.blockDepth
	for _, s := range b.List {
		if env.terminated {
			break
		}
		env = w.walkStmt(s, env)
	}
	if !env.terminated {
		w.leakCheck(env, b.Rbrace, "before it goes out of scope", func(obj types.Object) bool {
			return w.declDepth[obj] == depth
		})
		// The buffers checked above are out of scope now; drop them so outer
		// blocks do not re-report.
		for obj := range env.state {
			if w.declDepth[obj] == depth {
				delete(env.state, obj)
			}
		}
	}
	w.blockDepth--
	return env
}

func (w *poolWalker) walkStmt(s ast.Stmt, env *poolEnv) *poolEnv {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.handleAssign(s, env)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if w.handlePut(call, env) {
				return env
			}
			if isBuiltinPanic(w.pass.Info, call) {
				// A panic unwinds the whole process (or is a programmer-error
				// guard); pooled buffers on panic paths are the GC's problem.
				env.terminated = true
				return env
			}
		}
		w.markEscapes(s.X, env)
	case *ast.DeferStmt:
		w.handleDefer(s, env)
	case *ast.GoStmt:
		// A spawned goroutine may outlive the scope: everything it touches
		// escapes.
		w.markCallEscapes(s.Call, env)
	case *ast.SendStmt:
		w.markAliasEscape(s.Value, env)
		w.markEscapes(s.Chan, env)
		w.markEscapes(s.Value, env)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.markAliasEscape(r, env)
			w.markEscapes(r, env)
		}
		w.leakCheck(env, s.Pos(), "on this return path", nil)
		env.terminated = true
	case *ast.BranchStmt:
		w.handleBranch(s, env)
	case *ast.IfStmt:
		if s.Init != nil {
			env = w.walkStmt(s.Init, env)
		}
		w.markEscapes(s.Cond, env)
		thenEnv := w.walkBlock(s.Body, env.clone())
		elseEnv := env
		if s.Else != nil {
			elseEnv = w.walkStmt(s.Else, env.clone())
		}
		return mergePoolEnvs(thenEnv, elseEnv)
	case *ast.BlockStmt:
		return w.walkBlock(s, env)
	case *ast.ForStmt:
		if s.Init != nil {
			env = w.walkStmt(s.Init, env)
		}
		if s.Cond != nil {
			w.markEscapes(s.Cond, env)
		}
		w.ctrl = append(w.ctrl, ctrlFrame{isLoop: true, blockDepth: w.blockDepth + 1})
		bodyEnv := w.walkBlock(s.Body, env.clone())
		if s.Post != nil && !bodyEnv.terminated {
			bodyEnv = w.walkStmt(s.Post, bodyEnv)
		}
		w.ctrl = w.ctrl[:len(w.ctrl)-1]
		if s.Cond == nil {
			// for{}: fall-through only via break, whose effects are already
			// in bodyEnv; merging with entry keeps the result conservative.
			bodyEnv.terminated = false
		}
		return mergePoolEnvs(env, bodyEnv)
	case *ast.RangeStmt:
		w.markEscapes(s.X, env)
		w.ctrl = append(w.ctrl, ctrlFrame{isLoop: true, blockDepth: w.blockDepth + 1})
		bodyEnv := w.walkBlock(s.Body, env.clone())
		w.ctrl = w.ctrl[:len(w.ctrl)-1]
		bodyEnv.terminated = false
		return mergePoolEnvs(env, bodyEnv)
	case *ast.SwitchStmt:
		if s.Init != nil {
			env = w.walkStmt(s.Init, env)
		}
		if s.Tag != nil {
			w.markEscapes(s.Tag, env)
		}
		return w.walkCases(s.Body, env, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			env = w.walkStmt(s.Init, env)
		}
		return w.walkCases(s.Body, env, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		return w.walkCases(s.Body, env, false)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, env)
	case *ast.DeclStmt:
		w.markEscapes(s, env)
	case *ast.IncDecStmt:
		// cannot involve a *mat.Dense
	}
	return env
}

// walkCases forks the environment through each case clause of a
// switch/select body and merges the results; without a default the entry
// environment joins the merge (no clause may run).
func (w *poolWalker) walkCases(body *ast.BlockStmt, env *poolEnv, hasDefault bool) *poolEnv {
	w.ctrl = append(w.ctrl, ctrlFrame{isLoop: false, blockDepth: w.blockDepth + 1})
	var merged *poolEnv
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.markEscapes(e, env)
			}
			stmts = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				env = w.walkStmt(c.Comm, env)
			}
			stmts = c.Body
		}
		ce := env.clone()
		w.blockDepth++ // case bodies open an implicit block
		for _, s := range stmts {
			if ce.terminated {
				break
			}
			ce = w.walkStmt(s, ce)
		}
		w.blockDepth--
		if merged == nil {
			merged = ce
		} else {
			merged = mergePoolEnvs(merged, ce)
		}
	}
	w.ctrl = w.ctrl[:len(w.ctrl)-1]
	if merged == nil {
		return env
	}
	if !hasDefault {
		merged = mergePoolEnvs(merged, env)
	}
	return merged
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// handleBranch treats break/continue as a scope exit for buffers declared
// inside the construct being left. fallthrough keeps flowing; goto gives up
// on the path without reporting (the repo has none).
func (w *poolWalker) handleBranch(s *ast.BranchStmt, env *poolEnv) {
	switch s.Tok {
	case token.FALLTHROUGH:
		return
	case token.GOTO:
		env.terminated = true
		return
	}
	exitDepth := -1
	for i := len(w.ctrl) - 1; i >= 0; i-- {
		if s.Tok == token.CONTINUE && !w.ctrl[i].isLoop {
			continue
		}
		exitDepth = w.ctrl[i].blockDepth
		break
	}
	if exitDepth >= 0 {
		w.leakCheck(env, s.Pos(), "on this "+s.Tok.String()+" path", func(obj types.Object) bool {
			return w.declDepth[obj] >= exitDepth
		})
	}
	env.terminated = true
}

// handleAssign processes declarations of tracked buffers, aliasing escapes
// and overwrites.
func (w *poolWalker) handleAssign(s *ast.AssignStmt, env *poolEnv) {
	rhs := s.Rhs
	parallel := len(s.Lhs) == len(rhs)
	for i, l := range s.Lhs {
		var r ast.Expr
		if parallel {
			r = ast.Unparen(rhs[i])
		}
		lid, _ := ast.Unparen(l).(*ast.Ident)
		if r != nil {
			if call, ok := r.(*ast.CallExpr); ok && funcFullName(calleeFunc(w.pass.Info, call)) == fnGetDense && lid != nil && lid.Name != "_" {
				obj := w.pass.Info.Defs[lid]
				if obj == nil {
					obj = w.pass.Info.Uses[lid]
				}
				if obj == nil {
					continue
				}
				if st, ok := env.state[obj]; ok && st.live && !st.defRel && !st.deferred && !st.escaped {
					w.pass.Reportf(s.Pos(), "pooled buffer %s is overwritten before being returned to the pool", obj.Name())
				}
				env.state[obj] = &bufState{live: true}
				w.declDepth[obj] = w.blockDepth
				w.markEscapes(call, env) // arguments could mention other buffers
				continue
			}
			// Overwriting a live tracked buffer with anything else drops it.
			if lid != nil {
				if obj := w.pass.Info.Uses[lid]; obj != nil {
					if st, ok := env.state[obj]; ok && st.live && !st.defRel && !st.deferred && !st.escaped {
						w.pass.Reportf(s.Pos(), "pooled buffer %s is overwritten before being returned to the pool", obj.Name())
					}
					delete(env.state, obj)
				}
			}
			w.markAliasEscape(r, env)
			w.markEscapes(r, env)
			continue
		}
		// Non-parallel assignment (multi-value call): nothing to track, but
		// escapes still apply.
		_ = i
	}
	if !parallel {
		for _, r := range rhs {
			w.markEscapes(r, env)
		}
	}
}

// handlePut recognises mat.PutDense(x) and flags double puts. It reports
// true when the call was a PutDense.
func (w *poolWalker) handlePut(call *ast.CallExpr, env *poolEnv) bool {
	if funcFullName(calleeFunc(w.pass.Info, call)) != fnPutDense {
		return false
	}
	if len(call.Args) != 1 {
		return true
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return true
	}
	obj := w.pass.Info.Uses[id]
	if obj == nil {
		return true
	}
	st, tracked := env.state[obj]
	if !tracked {
		return true
	}
	if st.escaped {
		return true
	}
	if st.mayRel {
		w.pass.Reportf(call.Pos(), "%s may already have been returned to the pool (double mat.PutDense)", obj.Name())
	}
	st.defRel, st.mayRel = true, true
	st.live = false
	return true
}

// handleDefer classifies a defer as either a release (defer mat.PutDense(x),
// or a deferred closure whose body puts x back) or an escape for any other
// captured buffer.
func (w *poolWalker) handleDefer(s *ast.DeferStmt, env *poolEnv) {
	call := s.Call
	if funcFullName(calleeFunc(w.pass.Info, call)) == fnPutDense && len(call.Args) == 1 {
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := w.pass.Info.Uses[id]; obj != nil {
				if st, ok := env.state[obj]; ok {
					st.deferred = true
				}
				return
			}
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		released := putTargets(w.pass.Info, lit.Body)
		for obj, st := range env.state {
			if !usesIdentOf(w.pass.Info, lit.Body, map[types.Object]bool{obj: true}) {
				continue
			}
			if released[obj] {
				st.deferred = true
			} else {
				st.escaped = true
			}
		}
		return
	}
	w.markEscapes(call, env)
}

// putTargets collects the objects passed to mat.PutDense anywhere in n.
func putTargets(info *types.Info, n ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || funcFullName(calleeFunc(info, call)) != fnPutDense || len(call.Args) != 1 {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// markAliasEscape marks e's object escaped when e is exactly a tracked
// identifier — an alias was created (y := x, s.f = x, return x, ch <- x).
func (w *poolWalker) markAliasEscape(e ast.Expr, env *poolEnv) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	if obj := w.pass.Info.Uses[id]; obj != nil {
		if st, ok := env.state[obj]; ok {
			st.escaped = true
		}
	}
}

// markEscapes scans an expression subtree for ownership-transferring uses of
// tracked buffers: composite literals, append, address-of, closures and
// goroutine arguments. Plain calls borrow their arguments and do not
// transfer ownership — except the known owning sinks (nn.Params.Add), which
// keep the buffer alive past the call.
func (w *poolWalker) markEscapes(n ast.Node, env *poolEnv) {
	if n == nil {
		return
	}
	info := w.pass.Info
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				w.markAliasEscape(elt, env)
			}
		case *ast.CallExpr:
			if isBuiltin(info, n, "append") {
				for _, a := range n.Args {
					w.markAliasEscape(a, env)
				}
			}
			if funcFullName(calleeFunc(info, n)) == fnParamsAdd {
				for _, a := range n.Args {
					w.markAliasEscape(a, env)
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				w.markAliasEscape(n.X, env)
			}
		case *ast.FuncLit:
			// A non-deferred closure may stash the buffer anywhere (it is,
			// for instance, how backward closures keep op-internal state
			// alive until Release).
			for obj, st := range env.state {
				if usesIdentOf(info, n.Body, map[types.Object]bool{obj: true}) {
					st.escaped = true
				}
			}
			return false // the literal's own Gets are analyzed separately
		}
		return true
	})
}

// markCallEscapes marks every tracked buffer mentioned anywhere in a go/defer
// call as escaped (goroutines outlive the frame's ownership reasoning).
func (w *poolWalker) markCallEscapes(call *ast.CallExpr, env *poolEnv) {
	for obj, st := range env.state {
		if usesIdentOf(w.pass.Info, call, map[types.Object]bool{obj: true}) {
			st.escaped = true
		}
	}
}

// isBuiltinPanic reports whether call is the built-in panic.
func isBuiltinPanic(info *types.Info, call *ast.CallExpr) bool {
	return isBuiltin(info, call, "panic")
}
