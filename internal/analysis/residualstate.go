package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"fedomd/internal/analysis/cfg"
)

// ResidualState enforces the error-feedback invariant of the wire codec
// (DESIGN.md §10): an Encoder's residual map only has meaning against an
// unbroken chain of reference states. When a connection nils its reference
// (`r.lastSent = nil`, `wcRef = nil`) to force an absolute re-sync, the
// paired Encoder's residuals belong to the dead chain and must be dropped —
// by Encoder.Reset() or by swapping in a fresh NewEncoder — before the next
// EncodeParams, or quantization error from the old epoch silently corrupts
// the first delta frames of the new one.
//
// The check is a cfg dataflow (DESIGN.md §13) over (reference, encoder)
// pairs. Pairs are discovered syntactically: a struct field of type
// *nn.Params nilled through a base whose struct has exactly one
// *codec.Encoder field pairs with that field (r.lastSent ↔ r.downEnc); a
// local *nn.Params nilled in a function with exactly one *codec.Encoder
// local pairs with it (wcRef ↔ wcEnc). A nil-reset opens an obligation
// keyed by the encoder's access path; Reset() or a fresh-Encoder assignment
// closes it (before the reset counts too — negotiate-then-nil is clean);
// reaching EncodeParams or a return with the obligation open is reported at
// the reset.
var ResidualState = &Analyzer{
	Name: "residualstate",
	Doc:  "nilling a codec reference must clear the paired Encoder's error-feedback residual",
	Run:  runResidualState,
}

var (
	fnEncoderReset  = pathCodec + ".Encoder.Reset"
	fnEncodeParams  = pathCodec + ".Encoder.EncodeParams"
	fnNewEncoder    = pathCodec + ".NewEncoder"
	residualRefType = struct{ pkg, name string }{pathNn, "Params"}
)

func runResidualState(p *Pass) {
	if p.Pkg.Path() == pathCodec {
		// The codec implementation manages its own residual map.
		return
	}
	forEachFuncScope(p.Files, func(body *ast.BlockStmt) {
		analyzeResidualScope(p, body)
	})
}

// resFact is one open obligation: where the reference was nilled, and the
// source spellings used in the diagnostic.
type resFact struct {
	pos token.Pos
	ref string // the nilled reference expression
	enc string // the paired encoder expression (also the map key)
}

type resEnv struct {
	// pending maps encoder access path → the open clear obligation.
	pending map[string]resFact
	// cleared holds encoder access paths whose residual is known empty
	// (fresh NewEncoder or Reset) and not re-populated since.
	cleared map[string]bool
}

func (e *resEnv) clone() *resEnv {
	c := &resEnv{
		pending: make(map[string]resFact, len(e.pending)),
		cleared: make(map[string]bool, len(e.cleared)),
	}
	for k, v := range e.pending {
		c.pending[k] = v
	}
	for k := range e.cleared {
		c.cleared[k] = true
	}
	return c
}

func mergeResEnvs(a, b *resEnv) *resEnv {
	// pending is a may-property (union); cleared is a must-property
	// (intersection).
	for k, v := range b.pending {
		if _, ok := a.pending[k]; !ok {
			a.pending[k] = v
		}
	}
	for k := range a.cleared {
		if !b.cleared[k] {
			delete(a.cleared, k)
		}
	}
	return a
}

func resEnvEqual(a, b *resEnv) bool {
	if len(a.pending) != len(b.pending) || len(a.cleared) != len(b.cleared) {
		return false
	}
	for k, va := range a.pending {
		vb, ok := b.pending[k]
		if !ok || va != vb {
			return false
		}
	}
	for k := range a.cleared {
		if !b.cleared[k] {
			return false
		}
	}
	return true
}

type resWalker struct {
	pass *Pass
	// localEnc is the single *codec.Encoder local of the scope ("" when zero
	// or ambiguous), used to pair nilled *nn.Params locals.
	localEnc string
	reported map[token.Pos]bool
	report   bool
}

func analyzeResidualScope(p *Pass, body *ast.BlockStmt) {
	w := &resWalker{pass: p, localEnc: soleEncoderLocal(p.Info, body), reported: map[token.Pos]bool{}}
	g := cfg.Build(body, p.Info)
	in := cfg.Forward(g, cfg.Analysis[*resEnv]{
		Entry:    func() *resEnv { return &resEnv{pending: map[string]resFact{}, cleared: map[string]bool{}} },
		Clone:    (*resEnv).clone,
		Merge:    mergeResEnvs,
		Equal:    resEnvEqual,
		Transfer: w.transfer,
	})
	w.report = true
	for _, b := range g.Blocks {
		if env, ok := in[b]; ok {
			w.transfer(b, env.clone())
		}
	}
}

// soleEncoderLocal returns the name of the unique *codec.Encoder variable
// declared under body, or "" when there is none or more than one.
func soleEncoderLocal(info *types.Info, body *ast.BlockStmt) string {
	seen := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			return true
		}
		if v, ok := obj.(*types.Var); ok && isNamed(v.Type(), pathCodec, "Encoder") {
			seen[obj] = true
		}
		return true
	})
	if len(seen) != 1 {
		return ""
	}
	for obj := range seen {
		return obj.Name()
	}
	return ""
}

func (w *resWalker) reportFact(f resFact) {
	if !w.report || w.reported[f.pos] {
		return
	}
	w.reported[f.pos] = true
	w.pass.Reportf(f.pos, "%s is nilled for an absolute re-sync but %s keeps its error-feedback residual (call %s.Reset() or swap in a fresh Encoder before the next delta frame)", f.ref, f.enc, f.enc)
}

func (w *resWalker) transfer(b *cfg.Block, env *resEnv) *resEnv {
	for _, nd := range b.Nodes {
		switch n := nd.N.(type) {
		case *cfg.ScopeExit:
			// Obligations are keyed by encoder, which outlives inner scopes;
			// nothing to drop here.

		case *ast.AssignStmt:
			w.scanEncoderOps(n, env)
			w.handleAssign(n, env)

		case *ast.ReturnStmt:
			w.scanEncoderOps(n, env)
			for _, f := range env.pending {
				w.reportFact(f)
			}
			env.pending = map[string]resFact{}

		default:
			w.scanEncoderOps(nd.N, env)
		}
	}
	return env
}

// scanEncoderOps finds the residual-affecting encoder operations under n:
// Reset closes obligations (and marks the encoder clean), EncodeParams with
// an open obligation is the bug biting — report and close so loops converge —
// and any EncodeParams re-populates the residual, ending a clean window.
func (w *resWalker) scanEncoderOps(n ast.Node, env *resEnv) {
	info := w.pass.Info
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := funcFullName(calleeFunc(info, call))
		if name != fnEncoderReset && name != fnEncodeParams {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !comparableOperand(sel.X) {
			return true
		}
		key := exprString(sel.X)
		if name == fnEncoderReset {
			delete(env.pending, key)
			env.cleared[key] = true
			return true
		}
		if f, ok := env.pending[key]; ok {
			w.reportFact(f)
			delete(env.pending, key)
		}
		delete(env.cleared, key)
		return true
	})
}

// handleAssign opens an obligation for `ref = nil` on a paired reference and
// closes obligations for `enc = codec.NewEncoder(...)` (or any overwrite of
// the encoder variable — the old residual map is unreachable).
func (w *resWalker) handleAssign(s *ast.AssignStmt, env *resEnv) {
	info := w.pass.Info
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, l := range s.Lhs {
		l = ast.Unparen(l)
		r := ast.Unparen(s.Rhs[i])
		lt := info.Types[l].Type
		if lt == nil {
			// Defining idents of := statements carry their type on the object,
			// not in info.Types.
			if id, ok := l.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					lt = obj.Type()
				}
			}
		}
		if lt == nil {
			continue
		}
		if isNamed(lt, pathCodec, "Encoder") && comparableOperand(l) {
			key := exprString(l)
			delete(env.pending, key)
			if call, ok := r.(*ast.CallExpr); ok && funcFullName(calleeFunc(info, call)) == fnNewEncoder {
				env.cleared[key] = true
			} else {
				delete(env.cleared, key)
			}
			continue
		}
		if !isNamed(lt, residualRefType.pkg, residualRefType.name) || !isNilExpr(info, r) {
			continue
		}
		encKey := w.pairedEncoder(l)
		if encKey == "" || env.cleared[encKey] {
			continue
		}
		if f, ok := env.pending[encKey]; ok {
			// Second reset around a loop with the obligation still open: the
			// first one was never cleared.
			w.reportFact(f)
			continue
		}
		env.pending[encKey] = resFact{pos: s.Pos(), ref: exprString(l), enc: encKey}
	}
}

// pairedEncoder maps a nilled reference expression to its encoder's access
// path: the unique *codec.Encoder sibling field for base.field references,
// the unique *codec.Encoder local for plain locals.
func (w *resWalker) pairedEncoder(ref ast.Expr) string {
	info := w.pass.Info
	switch l := ref.(type) {
	case *ast.SelectorExpr:
		if !comparableOperand(l.X) {
			return ""
		}
		bt := info.Types[l.X].Type
		if bt == nil {
			return ""
		}
		if p, ok := bt.Underlying().(*types.Pointer); ok {
			bt = p.Elem()
		}
		st, ok := bt.Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		encField := ""
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isNamed(f.Type(), pathCodec, "Encoder") {
				if encField != "" {
					return "" // ambiguous: two encoder fields
				}
				encField = f.Name()
			}
		}
		if encField == "" {
			return ""
		}
		return exprString(l.X) + "." + encField
	case *ast.Ident:
		return w.localEnc
	}
	return ""
}

// isNilExpr reports whether e is the predeclared nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
