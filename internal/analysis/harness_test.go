package analysis

// The fixture harness: each analyzer is exercised against a small package
// under testdata/src/<name>/ whose lines carry // want "regex" expectations.
// A fixture type-checks against the real fedomd packages (the loader resolves
// module-internal imports from the module tree), so the fixtures stay honest
// about the APIs they exercise.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts want expectations from a source line. The pattern is
// quoted with backticks so fixture regexes can contain double quotes.
var wantRE = regexp.MustCompile("want `([^`]+)`")

// expectation is one // want on one fixture line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// runFixture loads testdata/src/<name>, runs the analyzers and diffs the
// diagnostics against the fixture's want comments.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	// The shared loader type-checks the fedomd dependency packages once for
	// the whole test binary instead of once per fixture.
	loader, err := SharedLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, "internal", "analysis", "testdata", "src", name)
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}

	wants, err := collectWants(dir)
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range Run(pkg, analyzers) {
		if !claimWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants scans every fixture file for want comments.
func collectWants(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants, nil
}

// claimWant consumes the first unhit expectation matching the diagnostic.
func claimWant(wants []*expectation, d Diagnostic) bool {
	for _, w := range wants {
		if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

func TestPoolPairFixture(t *testing.T) {
	runFixture(t, "poolpair", []*Analyzer{PoolPair})
}

func TestTapeLeaseFixture(t *testing.T) {
	runFixture(t, "tapelease", []*Analyzer{TapeLease})
}

func TestIntoAliasFixture(t *testing.T) {
	runFixture(t, "intoalias", []*Analyzer{IntoAlias})
}

func TestTelemetryKeyFixture(t *testing.T) {
	runFixture(t, "telemetrykey", []*Analyzer{TelemetryKey})
}

func TestParForCaptureFixture(t *testing.T) {
	runFixture(t, "parforcapture", []*Analyzer{ParForCapture})
}

func TestSpanEndFixture(t *testing.T) {
	runFixture(t, "spanend", []*Analyzer{SpanEnd})
}

func TestShardAliasFixture(t *testing.T) {
	runFixture(t, "shardalias", []*Analyzer{ShardAlias})
}

func TestResidualStateFixture(t *testing.T) {
	runFixture(t, "residualstate", []*Analyzer{ResidualState})
}

func TestIgnoreDirectives(t *testing.T) {
	runFixture(t, "ignore", All())
}
