package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("fedomd/internal/mat").
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of this module using only the
// standard library: module-internal imports resolve against the module tree,
// everything else (the standard library) through go/importer's source
// importer. Loaded packages are cached, so analyzing the whole tree
// type-checks each dependency once. LoadDir and Load are safe for concurrent
// use; concurrent loads serialise on one cache.
type Loader struct {
	ModuleRoot string
	ModulePath string
	// Build selects the build context used to filter constrained files
	// (GOOS/GOARCH suffixes, //go:build lines). Nil means build.Default — the
	// host context, matching what `go build` compiles here. Set it before the
	// first Load to analyze another platform's file set.
	Build *build.Context

	mu      sync.Mutex
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader builds a Loader rooted at the module directory containing go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	modPath, err := readModulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory with a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// LoadDir loads the package in dir (which must live under the module root).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module root %s", dir, l.ModuleRoot)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.load(path, abs)
}

// Load loads a package by import path; module-internal paths resolve against
// the module tree.
func (l *Loader) Load(path string) (*Package, error) {
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("analysis: %s is not a module-internal import path", path)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.load(path, dir)
}

// sharedLoaders memoises one Loader per module root for the whole process, so
// every fixture test and driver in a test binary shares a single type-checking
// cache: the fedomd dependency packages are parsed and checked once, not once
// per fixture.
var (
	sharedMu      sync.Mutex
	sharedLoaders = map[string]*Loader{}
)

// SharedLoader returns the process-wide Loader for the module rooted at
// moduleRoot, creating it on first use. Callers needing a custom Build
// context must use NewLoader — shared loaders always analyze the host
// platform's file set.
func SharedLoader(moduleRoot string) (*Loader, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if l, ok := sharedLoaders[abs]; ok {
		return l, nil
	}
	l, err := NewLoader(abs)
	if err != nil {
		return nil, err
	}
	sharedLoaders[abs] = l
	return l, nil
}

// dirFor maps a module-internal import path to its source directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// load parses and type-checks one package directory, memoised by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, checkErr := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		// Surface the first few positions so the failure reads like vet
		// output instead of a stack trace.
		msgs := make([]string, 0, 3)
		for i, e := range typeErrs {
			if i == 3 {
				msgs = append(msgs, fmt.Sprintf("… and %d more", len(typeErrs)-3))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type-checking %s failed:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if checkErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, checkErr)
	}

	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses every buildable non-test Go file of dir. Build-constrained
// files (GOOS/GOARCH filename suffixes and //go:build lines, e.g. the amd64
// SIMD kernels and their portable fallbacks) are filtered through go/build's
// host context, matching what `go build` would compile here.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	buildCtx := build.Default
	if l.Build != nil {
		buildCtx = *l.Build
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if ok, err := buildCtx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	var parseErrs []string
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			parseErrs = append(parseErrs, err.Error())
			continue
		}
		files = append(files, f)
	}
	if len(parseErrs) > 0 {
		return nil, fmt.Errorf("analysis: parsing %s failed:\n\t%s", dir, strings.Join(parseErrs, "\n\t"))
	}
	return files, nil
}

// loaderImporter adapts the Loader to types.Importer: module-internal paths
// load from source through the Loader, anything else goes to the standard
// library source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if dir, ok := l.dirFor(path); ok {
		p, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// ExpandPatterns resolves command-line package patterns against dir:
// "./..."-style wildcards walk the tree (skipping testdata, vendor and
// hidden directories), anything else is taken as a single directory. The
// result is a sorted list of package directories.
func ExpandPatterns(dir string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(dir, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			if rest == "" || rest == "./" {
				root = dir
			}
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasBuildableGoFiles(p) {
					add(p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(dir, filepath.FromSlash(pat)))
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasBuildableGoFiles reports whether dir directly contains at least one
// non-test Go file.
func hasBuildableGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}
