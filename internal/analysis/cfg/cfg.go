// Package cfg lowers Go function bodies into basic-block control-flow
// graphs and runs forward dataflow analyses over them (dataflow.go). It is
// the engine under the internal/analysis ownership checkers: instead of
// walking the AST per-branch and approximating joins, an analyzer expresses
// its invariant as a lattice of per-object facts plus a transfer function,
// and the fixpoint driver merges facts correctly at every join — including
// loop back edges, goto targets and switch exits.
//
// The lowering covers the full statement grammar: defer (kept as an
// instruction for the transfer function to interpret), panic (an edge to the
// synthetic Panic block, so unwind paths never reach Exit), labeled break/
// continue, goto (forward and backward, via patch lists), switch/type-switch
// fallthrough, and select. Function literals are deliberately *not* inlined:
// each closure body is its own scope with its own graph, mirroring how the
// analyzers treat capture as an ownership transfer.
//
// Structured statements are decomposed so every ast.Node a transfer function
// sees is "flat": an if contributes its condition expression to the
// preceding block and its branches to successor blocks, a for contributes
// init/cond/post in their own blocks with a back edge, and so on. Scope
// boundaries appear as synthetic *ScopeExit nodes on fall-through edges, so
// analyzers can run leak checks exactly where a lexical block ends.
package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Node is one unit of work for a transfer function: a flat statement or
// expression, tagged with the lexical block depth it executes at (the
// function body is depth 1). Depth is what ownership analyzers key their
// declaration maps on.
type Node struct {
	N     ast.Node
	Depth int
}

// Block is a basic block: a straight-line run of nodes with a common set of
// successor edges. Facts flow through Nodes in order and out along Succs.
type Block struct {
	Index int
	Nodes []Node
	Succs []*Block
}

// ScopeExit is a synthetic ast.Node marking the closing brace of a lexical
// block on its fall-through edge. It is emitted only when control falls off
// the end of the block — return/break/continue/goto/panic paths leave through
// their own edges and get their own checks — and carries the depth of the
// block being closed so analyzers can drop (and leak-check) exactly the
// objects declared there.
type ScopeExit struct {
	Brace token.Pos // position of the closing brace
	Depth int       // depth of the block being closed
}

func (s *ScopeExit) Pos() token.Pos { return s.Brace }
func (s *ScopeExit) End() token.Pos { return s.Brace }

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters at the opening brace.
	Entry *Block
	// Exit is reached by every return statement and by falling off the end
	// of the body.
	Exit *Block
	// Panic is reached by panic(...) calls. It has no successors: facts that
	// flow into it die, which encodes "pooled state on a panic path is the
	// runtime's problem", exactly as the pre-CFG walkers treated panics.
	Panic *Block
	// Blocks lists every block, Entry first; Block.Index indexes into it.
	Blocks []*Block
	// BranchDepth maps each lowered break/continue statement to the lexical
	// depth of the body of the construct it exits. An object declared at a
	// depth >= this value goes out of scope when the branch is taken, which
	// is when ownership analyzers must leak-check it.
	BranchDepth map[*ast.BranchStmt]int
}

// Build lowers body into a Graph. info supplies just enough type information
// to recognise the panic built-in; it must cover the body (the loader's
// whole-package types.Info does).
func Build(body *ast.BlockStmt, info *types.Info) *Graph {
	g := &Graph{BranchDepth: map[*ast.BranchStmt]int{}}
	b := &builder{
		g:      g,
		info:   info,
		labels: map[string]*Block{},
		gotos:  map[string][]*Block{},
	}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	g.Panic = b.newBlock()
	b.cur = g.Entry
	b.walkBlockScoped(body)
	b.link(b.cur, g.Exit)
	return g
}

// builder holds the lowering state while Build walks one function body.
type builder struct {
	g     *Graph
	info  *types.Info
	cur   *Block
	depth int

	// frames tracks enclosing breakable constructs, innermost last.
	frames []frame
	// labels maps a label name to its target block (for goto and for
	// labeled break/continue resolution through frames).
	labels map[string]*Block
	// gotos holds source blocks of forward gotos awaiting their label.
	gotos map[string][]*Block
	// pendingLabel is the label of the statement currently being lowered,
	// consumed by the loop/switch/select cases.
	pendingLabel string
	// fall is the body block of the next case clause, the target of a
	// fallthrough inside the clause currently being lowered.
	fall *Block
}

// frame is one enclosing breakable construct.
type frame struct {
	label      string
	isLoop     bool
	breakTo    *Block
	continueTo *Block // nil for switch/select
	bodyDepth  int    // lexical depth of the construct's body
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) link(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jump ends the current block with an edge to target and continues lowering
// into a fresh block that no edge reaches — statements after an unconditional
// transfer are dead code and their facts must not flow anywhere.
func (b *builder) jump(target *Block) {
	if target != nil {
		b.link(b.cur, target)
	}
	b.cur = b.newBlock()
}

func (b *builder) emit(n ast.Node) {
	if n == nil {
		return
	}
	b.cur.Nodes = append(b.cur.Nodes, Node{N: n, Depth: b.depth})
}

// walkBlockScoped lowers a braced block one depth level down and closes it
// with a ScopeExit on the fall-through edge.
func (b *builder) walkBlockScoped(bs *ast.BlockStmt) {
	b.depth++
	for _, s := range bs.List {
		b.walkStmt(s)
	}
	b.emit(&ScopeExit{Brace: bs.Rbrace, Depth: b.depth})
	b.depth--
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) walkStmt(s ast.Stmt) {
	// A label only applies to the statement lowered immediately after the
	// LabeledStmt case sets it; anything else consumes and discards it.
	lbl := b.takeLabel()

	switch s := s.(type) {
	case nil, *ast.EmptyStmt:

	case *ast.BlockStmt:
		b.walkBlockScoped(s)

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.link(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		for _, src := range b.gotos[s.Label.Name] {
			b.link(src, target)
		}
		delete(b.gotos, s.Label.Name)
		b.pendingLabel = s.Label.Name
		b.walkStmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		b.walkIf(s)

	case *ast.ForStmt:
		b.walkFor(s, lbl)

	case *ast.RangeStmt:
		b.walkRange(s, lbl)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.walkStmt(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.walkCaseBody(s.Body, lbl, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.walkStmt(s.Init)
		}
		// The guard (x := y.(type), or a bare type assertion) runs once in
		// the head block.
		b.emit(s.Assign)
		b.walkCaseBody(s.Body, lbl, false)

	case *ast.SelectStmt:
		b.walkSelect(s, lbl)

	case *ast.BranchStmt:
		b.walkBranch(s)

	case *ast.ReturnStmt:
		b.emit(s)
		b.jump(b.g.Exit)

	case *ast.ExprStmt:
		b.emit(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.isPanic(call) {
			// panic unwinds: no fall-through, facts flow to the Panic sink.
			b.jump(b.g.Panic)
		}

	default:
		// Assign, IncDec, Decl, Defer, Go, Send, Bad: straight-line nodes the
		// transfer function interprets directly.
		b.emit(s)
	}
}

func (b *builder) walkIf(s *ast.IfStmt) {
	if s.Init != nil {
		b.walkStmt(s.Init)
	}
	b.emit(s.Cond)
	cond := b.cur
	then := b.newBlock()
	join := b.newBlock()
	b.link(cond, then)
	var els *Block
	if s.Else != nil {
		els = b.newBlock()
		b.link(cond, els)
	} else {
		b.link(cond, join)
	}
	b.cur = then
	b.walkBlockScoped(s.Body)
	b.link(b.cur, join)
	if s.Else != nil {
		b.cur = els
		b.walkStmt(s.Else) // else-block or else-if chain
		b.link(b.cur, join)
	}
	b.cur = join
}

func (b *builder) walkFor(s *ast.ForStmt, lbl string) {
	if s.Init != nil {
		b.walkStmt(s.Init)
	}
	head := b.newBlock()
	body := b.newBlock()
	post := b.newBlock()
	exit := b.newBlock()
	b.link(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.emit(s.Cond)
	}
	b.link(b.cur, body)
	if s.Cond != nil {
		// for{} has no direct exit edge: code after an infinite loop is only
		// reachable through break, whose edge targets exit explicitly.
		b.link(b.cur, exit)
	}
	b.frames = append(b.frames, frame{label: lbl, isLoop: true, breakTo: exit, continueTo: post, bodyDepth: b.depth + 1})
	b.cur = body
	b.walkBlockScoped(s.Body)
	b.frames = b.frames[:len(b.frames)-1]
	b.link(b.cur, post)
	b.cur = post
	if s.Post != nil {
		b.walkStmt(s.Post)
	}
	b.link(b.cur, head)
	b.cur = exit
}

func (b *builder) walkRange(s *ast.RangeStmt, lbl string) {
	// The ranged operand is evaluated once, before the loop.
	b.emit(s.X)
	head := b.newBlock()
	body := b.newBlock()
	exit := b.newBlock()
	b.link(b.cur, head)
	b.link(head, body)
	b.link(head, exit)
	b.frames = append(b.frames, frame{label: lbl, isLoop: true, breakTo: exit, continueTo: head, bodyDepth: b.depth + 1})
	b.cur = body
	b.walkBlockScoped(s.Body)
	b.frames = b.frames[:len(b.frames)-1]
	b.link(b.cur, head)
	b.cur = exit
}

// walkCaseBody lowers the clause list of a switch or type switch: every case
// expression is evaluated in the head block (conservative — Go evaluates them
// lazily, but the analyzers only use expressions for escape scanning), each
// clause body becomes its own block chain, and fallthrough edges target the
// next clause's body.
func (b *builder) walkCaseBody(body *ast.BlockStmt, lbl string, allowFallthrough bool) {
	head := b.cur
	exit := b.newBlock()
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		for _, e := range c.List {
			b.emit(e)
		}
		if c.List == nil {
			hasDefault = true
		}
		blocks[i] = b.newBlock()
		b.link(head, blocks[i])
	}
	if !hasDefault {
		b.link(head, exit)
	}
	prevFall := b.fall
	b.frames = append(b.frames, frame{label: lbl, breakTo: exit, bodyDepth: b.depth + 1})
	for i, c := range clauses {
		b.fall = nil
		if allowFallthrough && i+1 < len(blocks) {
			b.fall = blocks[i+1]
		}
		b.cur = blocks[i]
		b.depth++
		for _, st := range c.Body {
			b.walkStmt(st)
		}
		b.emit(&ScopeExit{Brace: c.End(), Depth: b.depth})
		b.depth--
		b.link(b.cur, exit)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.fall = prevFall
	b.cur = exit
}

func (b *builder) walkSelect(s *ast.SelectStmt, lbl string) {
	head := b.cur
	exit := b.newBlock()
	b.frames = append(b.frames, frame{label: lbl, breakTo: exit, bodyDepth: b.depth + 1})
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		blk := b.newBlock()
		b.link(head, blk)
		b.cur = blk
		b.depth++
		if cc.Comm != nil {
			b.walkStmt(cc.Comm)
		}
		for _, st := range cc.Body {
			b.walkStmt(st)
		}
		b.emit(&ScopeExit{Brace: cc.End(), Depth: b.depth})
		b.depth--
		b.link(b.cur, exit)
	}
	// A select blocks until some clause runs, but the pre-CFG walkers always
	// merged the entry state into the result; the head→exit edge preserves
	// that conservative join.
	b.link(head, exit)
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exit
}

func (b *builder) walkBranch(s *ast.BranchStmt) {
	b.emit(s)
	switch s.Tok {
	case token.BREAK, token.CONTINUE:
		if f := b.findFrame(s.Label, s.Tok == token.CONTINUE); f != nil {
			b.g.BranchDepth[s] = f.bodyDepth
			if s.Tok == token.BREAK {
				b.jump(f.breakTo)
			} else {
				b.jump(f.continueTo)
			}
			return
		}
		// No matching frame (malformed source): terminate the path quietly.
		b.cur = b.newBlock()
	case token.GOTO:
		if s.Label == nil {
			b.cur = b.newBlock()
			return
		}
		if target, ok := b.labels[s.Label.Name]; ok {
			b.jump(target) // backward goto: a plain back edge
			return
		}
		// Forward goto: remember the source block, patch when the label
		// appears. No BranchDepth entry — the scope structure a goto crosses
		// is arbitrary, so analyzers treat it as silent transfer (as the
		// pre-CFG walkers did).
		b.gotos[s.Label.Name] = append(b.gotos[s.Label.Name], b.cur)
		b.cur = b.newBlock()
	case token.FALLTHROUGH:
		if b.fall != nil {
			b.jump(b.fall)
			return
		}
		b.cur = b.newBlock()
	}
}

// findFrame resolves the frame a break/continue exits: the innermost loop for
// continue, the innermost breakable construct for break, or the frame with
// the matching label.
func (b *builder) findFrame(label *ast.Ident, loopOnly bool) *frame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if loopOnly && !f.isLoop {
			continue
		}
		if label != nil && f.label != label.Name {
			continue
		}
		return f
	}
	return nil
}

// isPanic reports whether call invokes the panic built-in.
func (b *builder) isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, ok = b.info.Uses[id].(*types.Builtin)
	return ok
}
