package cfg

// Analysis describes one forward dataflow problem over a Graph. F is the
// fact type — typically a map from types.Object to a small per-object state
// struct. The driver owns sharing discipline: Transfer and Merge receive
// clones they may mutate and return, and must never mutate their second
// (source) argument.
type Analysis[F any] struct {
	// Entry produces the fact at the function entry.
	Entry func() F
	// Clone deep-copies a fact.
	Clone func(F) F
	// Merge joins src into dst at a control-flow join and returns the result
	// (dst may be mutated). It must be monotone: repeated merging converges.
	Merge func(dst, src F) F
	// Equal reports whether two facts are indistinguishable; the fixpoint
	// stops propagating along an edge when the merged fact equals the stored
	// one.
	Equal func(a, b F) bool
	// Transfer pushes a fact through one block's nodes and returns the
	// out-fact (the argument may be mutated). It is called during fixpoint
	// iteration with reporting disabled — analyzers run a separate reporting
	// pass over the fixpoint's block-entry facts so each violation is
	// reported exactly once.
	Transfer func(b *Block, f F) F
}

// Forward runs the fixpoint and returns the entry fact of every block the
// analysis reached. Unreachable blocks (dead code after return/panic, the
// body of `for {}` exits) are absent from the result, which is how analyzers
// avoid reporting on code that cannot execute.
func Forward[F any](g *Graph, a Analysis[F]) map[*Block]F {
	in := map[*Block]F{g.Entry: a.Entry()}
	queued := make([]bool, len(g.Blocks))
	var work []*Block
	push := func(b *Block) {
		if !queued[b.Index] {
			queued[b.Index] = true
			work = append(work, b)
		}
	}
	push(g.Entry)
	// With a monotone Merge over finite per-object lattices the worklist
	// terminates on its own; the budget is a backstop so a buggy transfer
	// function degrades to a conservative partial result instead of hanging
	// the build.
	budget := len(g.Blocks)*64 + 256
	for len(work) > 0 && budget > 0 {
		budget--
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		out := a.Transfer(blk, a.Clone(in[blk]))
		for _, s := range blk.Succs {
			old, ok := in[s]
			if !ok {
				in[s] = a.Clone(out)
				push(s)
				continue
			}
			merged := a.Merge(a.Clone(old), out)
			if !a.Equal(merged, old) {
				in[s] = merged
				push(s)
			}
		}
	}
	return in
}
