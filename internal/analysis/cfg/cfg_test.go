package cfg

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildFunc type-checks src (a complete package clause + declarations) and
// lowers the body of the named function.
func buildFunc(t *testing.T, src, name string) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfgtest.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("cfgtest", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Name.Name != name || fd.Body == nil {
			continue
		}
		return Build(fd.Body, info), fset
	}
	t.Fatalf("no function %q in source", name)
	return nil, nil
}

// reachable returns the set of blocks reachable from g.Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// nodeStrings flattens the reachable nodes' dynamic types for coarse shape
// assertions.
func countNodes(g *Graph, pred func(Node) bool) int {
	seen := reachable(g)
	n := 0
	for _, b := range g.Blocks {
		if !seen[b] {
			continue
		}
		for _, nd := range b.Nodes {
			if pred(nd) {
				n++
			}
		}
	}
	return n
}

func TestIfJoin(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatal("exit not reachable")
	}
	if seen[g.Panic] {
		t.Fatal("panic block reachable without a panic call")
	}
	// Both assignments must be reachable and sit in different blocks.
	assigns := countNodes(g, func(n Node) bool {
		as, ok := n.N.(*ast.AssignStmt)
		return ok && as.Tok == token.ASSIGN
	})
	if assigns != 2 {
		t.Fatalf("reachable plain assignments = %d, want 2", assigns)
	}
}

func TestLoopBackEdge(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`, "f")
	// A back edge exists: some reachable block has a successor with a lower
	// index that is not Exit/Panic.
	seen := reachable(g)
	back := false
	for _, b := range g.Blocks {
		if !seen[b] {
			continue
		}
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit && s != g.Panic {
				back = true
			}
		}
	}
	if !back {
		t.Fatal("for loop produced no back edge")
	}
}

func TestPanicEdge(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(c bool) {
	if c {
		panic("boom")
	}
}`, "f")
	seen := reachable(g)
	if !seen[g.Panic] {
		t.Fatal("panic call did not reach the Panic block")
	}
	if len(g.Panic.Succs) != 0 {
		t.Fatal("Panic block must be a sink")
	}
	if !seen[g.Exit] {
		t.Fatal("fall-through path lost")
	}
}

func TestBranchDepth(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(xs []int) {
outer:
	for _, x := range xs {
		for y := 0; y < x; y++ {
			if y == 1 {
				continue
			}
			if y == 2 {
				break outer
			}
		}
	}
}`, "f")
	var depths []int
	for br, d := range g.BranchDepth {
		_ = br
		depths = append(depths, d)
	}
	if len(depths) != 2 {
		t.Fatalf("BranchDepth entries = %d, want 2 (continue + labeled break)", len(depths))
	}
	// continue exits the inner body (depth 3: func=1, range=2, for=3);
	// break outer exits the range body (depth 2).
	want := map[int]bool{2: true, 3: true}
	for _, d := range depths {
		if !want[d] {
			t.Errorf("unexpected branch depth %d", d)
		}
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(c bool) int {
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	if c {
		goto done
	}
	i *= 2
done:
	return i
}`, "f")
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatal("exit unreachable through gotos")
	}
	// The backward goto forms a cycle: the labeled block must have at least
	// two predecessors among reachable blocks.
	preds := map[*Block]int{}
	for _, b := range g.Blocks {
		if !seen[b] {
			continue
		}
		for _, s := range b.Succs {
			preds[s]++
		}
	}
	multi := 0
	for b, n := range preds {
		if n >= 2 && b != g.Exit {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no join block with 2+ predecessors; goto edges missing")
	}
}

func TestScopeExitOnlyOnFallThrough(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(c bool) int {
	if c {
		return 1
	}
	return 0
}`, "f")
	// The if body ends in return: its ScopeExit node must be unreachable.
	// The function body never falls through either (both paths return), so
	// no reachable ScopeExit at all.
	n := countNodes(g, func(n Node) bool {
		_, ok := n.N.(*ScopeExit)
		return ok
	})
	if n != 0 {
		t.Fatalf("reachable ScopeExit nodes = %d, want 0 (all paths return)", n)
	}
}

func TestScopeExitDepth(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(c bool) {
	if c {
		_ = c
	}
}`, "f")
	depths := map[int]int{}
	seen := reachable(g)
	for _, b := range g.Blocks {
		if !seen[b] {
			continue
		}
		for _, nd := range b.Nodes {
			if se, ok := nd.N.(*ScopeExit); ok {
				depths[se.Depth]++
			}
		}
	}
	if depths[1] != 1 || depths[2] != 1 {
		t.Fatalf("ScopeExit depths = %v, want one at depth 1 (body) and one at depth 2 (if)", depths)
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(x int) int {
	r := 0
	switch x {
	case 1:
		r = 1
		fallthrough
	case 2:
		r += 2
	}
	return r
}`, "f")
	seen := reachable(g)
	if !seen[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// No default: an edge from the head (the block evaluating the tag) must
	// bypass every clause. Check that `return r` is reachable even if we cut
	// all clause bodies: simulate by checking the head has >2 successors or
	// the exit join has >=2 preds. Simplest robust assertion: both case
	// assignments reachable, and the fallthrough makes r+=2 reachable from
	// case 1's body (a block holding r=1 has a successor path to r+=2
	// without passing through the head again).
	assigns := countNodes(g, func(n Node) bool {
		_, ok := n.N.(*ast.AssignStmt)
		return ok
	})
	if assigns < 3 { // r := 0, r = 1, r += 2
		t.Fatalf("reachable assignments = %d, want >= 3", assigns)
	}
}

func TestDeferStaysAnInstruction(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f() {
	defer func() {}()
}`, "f")
	n := countNodes(g, func(n Node) bool {
		_, ok := n.N.(*ast.DeferStmt)
		return ok
	})
	if n != 1 {
		t.Fatalf("reachable DeferStmt nodes = %d, want 1", n)
	}
}

func TestSelectConservativeExit(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(ch chan int) int {
	x := 0
	select {
	case v := <-ch:
		x = v
	}
	return x
}`, "f")
	if !reachable(g)[g.Exit] {
		t.Fatal("exit unreachable past select")
	}
}

// TestForwardMergesAtJoin drives the dataflow engine with a may-assigned
// lattice and checks facts merge (union) at the if join and reach the exit.
func TestForwardMergesAtJoin(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	type fact = map[string]bool // constant literal assigned on some path
	a := Analysis[fact]{
		Entry: func() fact { return fact{} },
		Clone: func(f fact) fact {
			c := make(fact, len(f))
			for k, v := range f {
				c[k] = v
			}
			return c
		},
		Merge: func(dst, src fact) fact {
			for k := range src {
				dst[k] = true
			}
			return dst
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, f fact) fact {
			for _, nd := range b.Nodes {
				if as, ok := nd.N.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
					if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
						f[lit.Value] = true
					}
				}
			}
			return f
		},
	}
	in := Forward(g, a)
	exitFact, ok := in[g.Exit]
	if !ok {
		t.Fatal("no fact reached the exit block")
	}
	for _, want := range []string{"0", "1", "2"} {
		if !exitFact[want] {
			t.Errorf("exit fact missing %q (join did not union): %v", want, exitFact)
		}
	}
}

// TestForwardLoopFixpoint checks loop facts converge and include the back
// edge's contribution.
func TestForwardLoopFixpoint(t *testing.T) {
	g, _ := buildFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = 7
	}
	return s
}`, "f")
	type fact = map[string]bool
	clone := func(f fact) fact {
		c := make(fact, len(f))
		for k, v := range f {
			c[k] = v
		}
		return c
	}
	a := Analysis[fact]{
		Entry: func() fact { return fact{} },
		Clone: clone,
		Merge: func(dst, src fact) fact {
			for k := range src {
				dst[k] = true
			}
			return dst
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, f fact) fact {
			for _, nd := range b.Nodes {
				if as, ok := nd.N.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
					if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
						f[fmt.Sprintf("assigned:%s", lit.Value)] = true
					}
				}
			}
			return f
		},
	}
	in := Forward(g, a)
	exitFact := in[g.Exit]
	if exitFact == nil || !exitFact["assigned:7"] {
		t.Fatalf("loop-body fact did not flow around the back edge to exit: %v", exitFact)
	}
}
