package analysis

import (
	"go/ast"
	"go/types"
)

// ParForCapture enforces the mat.ParallelFor determinism contract
// (internal/mat/workers.go): body closures run concurrently over disjoint
// [lo, hi) chunks and MUST only write state that is disjoint per index. A
// closure that writes a captured variable, or writes through a captured
// slice/matrix at an index not derived from its lo/hi parameters, races with
// its sibling invocations — a bug `-race` only samples but this check proves
// absent. Reductions belong in per-chunk state or atomics; reads of captured
// state are fine.
//
// The check is a taint analysis per closure: the lo/hi parameters seed the
// taint set, assignments propagate it, and every write is classified — a
// write to a captured identifier is always a violation, an indexed write
// through a captured base is a violation unless some index in the access
// chain mentions a tainted value.
var ParForCapture = &Analyzer{
	Name: "parforcapture",
	Doc:  "mat.ParallelFor bodies must only write per-chunk state indexed by lo:hi",
	Run:  runParForCapture,
}

var fnParallelFor = pathMat + ".ParallelFor"

func runParForCapture(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if funcFullName(calleeFunc(p.Info, call)) != fnParallelFor || len(call.Args) != 3 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit)
			if !ok {
				// A pre-bound function value can capture anything; nothing to
				// check syntactically, and the repo passes literals.
				return true
			}
			checkParForBody(p, lit)
			return true
		})
	}
}

// checkParForBody classifies every write in one ParallelFor closure.
func checkParForBody(p *Pass, lit *ast.FuncLit) {
	info := p.Info
	// Objects declared inside the literal (including its parameters and any
	// nested literals' locals) are per-invocation state: writes are safe.
	inside := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				inside[obj] = true
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				inside[obj] = true
			}
		}
		return true
	})

	// Taint: seed with the chunk parameters (lo, hi), propagate through
	// assignments until stable. Assignment order inside a loop body does not
	// matter for a may-analysis, so a simple fixpoint over the whole body is
	// enough.
	tainted := map[types.Object]bool{}
	if fl := lit.Type.Params.List; len(fl) > 0 {
		for _, field := range fl {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					tainted[obj] = true
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, l := range n.Lhs {
					lid, ok := ast.Unparen(l).(*ast.Ident)
					if !ok {
						continue
					}
					obj := info.Defs[lid]
					if obj == nil {
						obj = info.Uses[lid]
					}
					if obj == nil || tainted[obj] {
						continue
					}
					var rhs ast.Node
					if len(n.Lhs) == len(n.Rhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0]
					}
					if rhs != nil && usesIdentOf(info, rhs, tainted) {
						tainted[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				// for i := range captured[lo:hi] — the loop variables of a
				// range over a tainted slice expression are tainted.
				if usesIdentOf(info, n.X, tainted) {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if obj := info.Defs[id]; obj != nil && !tainted[obj] {
								tainted[obj] = true
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}

	captured := func(e ast.Expr) (types.Object, bool) {
		base := rootIdent(e)
		if base == nil {
			return nil, false
		}
		obj := info.Uses[base]
		if obj == nil {
			obj = info.Defs[base]
		}
		if obj == nil || inside[obj] {
			return nil, false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return nil, false
		}
		return obj, true
	}

	checkWrite := func(target ast.Expr, pos ast.Node) {
		target = ast.Unparen(target)
		switch t := target.(type) {
		case *ast.Ident:
			if obj, ok := captured(t); ok {
				p.Reportf(pos.Pos(), "mat.ParallelFor body writes captured variable %s (invocations run concurrently; use per-chunk state or an atomic)", obj.Name())
			}
		case *ast.StarExpr:
			if obj, ok := captured(t.X); ok {
				p.Reportf(pos.Pos(), "mat.ParallelFor body writes through captured pointer %s (invocations run concurrently; use per-chunk state or an atomic)", obj.Name())
			}
		case *ast.IndexExpr, *ast.SelectorExpr:
			obj, ok := captured(target)
			if !ok {
				return
			}
			if _, isSel := target.(*ast.SelectorExpr); isSel {
				p.Reportf(pos.Pos(), "mat.ParallelFor body writes field of captured %s (shared state; invocations run concurrently)", obj.Name())
				return
			}
			if !indexChainTainted(info, target, tainted) {
				p.Reportf(pos.Pos(), "mat.ParallelFor body writes captured %s at an index not derived from the lo:hi chunk (breaks the disjoint-writes contract)", obj.Name())
			}
		}
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				checkWrite(l, n)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X, n)
		case *ast.CallExpr:
			w := mutatingCallTarget(info, n)
			if w == nil {
				return true
			}
			obj, ok := captured(w.target)
			if !ok {
				return true
			}
			if !w.indexed || !argsTainted(info, w.indexArgs, tainted) {
				p.Reportf(n.Pos(), "mat.ParallelFor body mutates captured %s via %s outside the lo:hi chunk (invocations run concurrently)", obj.Name(), w.name)
			}
		}
		return true
	})
}

// rootIdent peels index/selector/star/paren layers down to the base
// identifier of an access path (proposals[i] → proposals, m.data[k] → m).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return t
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.SliceExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// indexChainTainted reports whether any index expression in the access chain
// mentions a tainted object (x[i], x[i][j], x.f[i]).
func indexChainTainted(info *types.Info, e ast.Expr, tainted map[types.Object]bool) bool {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			if usesIdentOf(info, t.Index, tainted) {
				return true
			}
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return false
		}
	}
}

// mutWrite describes one known mutating call: the expression it writes
// through, the display name, and which arguments index the write.
type mutWrite struct {
	target    ast.Expr
	name      string
	indexed   bool
	indexArgs []ast.Expr
}

// mutatingCallTarget recognises the writes-through-argument calls the
// analyzer understands: the copy built-in (arg 0 is the destination) and the
// mat.Dense element writers Set/Row (Set(i,j,v) writes one indexed cell; the
// whole-matrix writers Zero/Fill/Copy have no index at all).
func mutatingCallTarget(info *types.Info, call *ast.CallExpr) *mutWrite {
	if isBuiltin(info, call, "copy") && len(call.Args) == 2 {
		// copy(dst, src): indexed only if dst is a tainted subslice.
		return &mutWrite{target: call.Args[0], name: "copy", indexed: true, indexArgs: []ast.Expr{call.Args[0]}}
	}
	switch funcFullName(calleeFunc(info, call)) {
	case pathMat + ".Dense.Set":
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return &mutWrite{target: sel.X, name: "Dense.Set", indexed: true, indexArgs: call.Args[:2]}
	case pathMat + ".Dense.Zero", pathMat + ".Dense.Fill", pathMat + ".Dense.Copy":
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		return &mutWrite{target: sel.X, name: "Dense." + sel.Sel.Name}
	}
	return nil
}

// argsTainted reports whether any of the expressions mentions a tainted
// object.
func argsTainted(info *types.Info, args []ast.Expr, tainted map[types.Object]bool) bool {
	for _, a := range args {
		if usesIdentOf(info, a, tainted) {
			return true
		}
	}
	return false
}
