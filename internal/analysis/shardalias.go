package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"fedomd/internal/analysis/cfg"
)

// ShardAlias enforces the zero-copy contract of sparse row sharding
// (DESIGN.md §12): (*CSR).Shard returns a view whose colIdx/vals arrays are
// shared with the parent, so while a shard is live neither side may be
// written through — a ScaleVals on the shard silently mutates the parent's
// window, and a ScaleVals on the parent corrupts every outstanding shard.
// Reads are always fine; the worker-pool sharding exists precisely so reads
// scale without copies.
//
// The check is a cfg dataflow (DESIGN.md §13): `sh := base.Shard(lo, hi)`
// makes sh a live view and records base's access path (intoalias-style
// syntactic equality via exprString, restricted to call-free operands). Any
// in-place mutator invoked on a live shard, or on an expression equal to a
// live shard's recorded base, is reported. A shard stops being tracked when
// it escapes (returned, stored, passed to a call) or its scope ends.
var ShardAlias = &Analyzer{
	Name: "shardalias",
	Doc:  "zero-copy CSR row shards must not be written through while the parent is live (and vice versa)",
	Run:  runShardAlias,
}

var fnCSRShard = pathSparse + ".CSR.Shard"

// csrMutators are the in-place writers of a *sparse.CSR. The constructors and
// accessors are pure; this set must grow with any future mutating method.
var csrMutators = map[string]bool{
	pathSparse + ".CSR.ScaleVals": true,
}

func runShardAlias(p *Pass) {
	if p.Pkg.Path() == pathSparse {
		// The sharding implementation (and its tests) manipulate the shared
		// arrays by design.
		return
	}
	forEachFuncScope(p.Files, func(body *ast.BlockStmt) {
		analyzeShardScope(p, body)
	})
}

// shardFact is the per-shard state: the access path of the parent CSR the
// view was cut from ("" when the parent expression is not comparable — a call
// result, say — in which case only writes through the shard itself are
// checkable).
type shardFact struct {
	base string
}

type shardEnv struct {
	shards map[types.Object]shardFact
}

func (e *shardEnv) clone() *shardEnv {
	c := &shardEnv{shards: make(map[types.Object]shardFact, len(e.shards))}
	for k, v := range e.shards {
		c.shards[k] = v
	}
	return c
}

func mergeShardEnvs(a, b *shardEnv) *shardEnv {
	// Union: a shard live on either incoming path is live after the join.
	for k, v := range b.shards {
		if _, ok := a.shards[k]; !ok {
			a.shards[k] = v
		}
	}
	return a
}

func shardEnvEqual(a, b *shardEnv) bool {
	if len(a.shards) != len(b.shards) {
		return false
	}
	for k, va := range a.shards {
		vb, ok := b.shards[k]
		if !ok || va != vb {
			return false
		}
	}
	return true
}

type shardWalker struct {
	pass      *Pass
	graph     *cfg.Graph
	declDepth map[types.Object]int
	report    bool
}

func analyzeShardScope(p *Pass, body *ast.BlockStmt) {
	g := cfg.Build(body, p.Info)
	w := &shardWalker{pass: p, graph: g, declDepth: map[types.Object]int{}}
	in := cfg.Forward(g, cfg.Analysis[*shardEnv]{
		Entry:    func() *shardEnv { return &shardEnv{shards: map[types.Object]shardFact{}} },
		Clone:    (*shardEnv).clone,
		Merge:    mergeShardEnvs,
		Equal:    shardEnvEqual,
		Transfer: w.transfer,
	})
	w.report = true
	for _, b := range g.Blocks {
		if env, ok := in[b]; ok {
			w.transfer(b, env.clone())
		}
	}
}

func (w *shardWalker) reportf(pos token.Pos, format string, args ...any) {
	if w.report {
		w.pass.Reportf(pos, format, args...)
	}
}

func (w *shardWalker) transfer(b *cfg.Block, env *shardEnv) *shardEnv {
	for _, nd := range b.Nodes {
		switch n := nd.N.(type) {
		case *cfg.ScopeExit:
			for obj := range env.shards {
				if w.declDepth[obj] >= n.Depth {
					delete(env.shards, obj)
				}
			}

		case *ast.AssignStmt:
			w.handleAssign(n, env, nd.Depth)

		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				w.checkCall(call, env)
				continue
			}
			w.dropEscapes(n, env)

		case *ast.BranchStmt:
			if exitDepth, ok := w.graph.BranchDepth[n]; ok {
				for obj := range env.shards {
					if w.declDepth[obj] >= exitDepth {
						delete(env.shards, obj)
					}
				}
			}

		case *ast.ReturnStmt, *ast.DeferStmt, *ast.GoStmt:
			w.dropEscapes(n, env)

		case *ast.IncDecStmt:
			// cannot involve a CSR

		default:
			w.dropEscapes(nd.N, env)
		}
	}
	return env
}

// handleAssign tracks `sh := base.Shard(lo, hi)` and untracks shards that are
// reassigned or escape through the statement.
func (w *shardWalker) handleAssign(s *ast.AssignStmt, env *shardEnv, depth int) {
	info := w.pass.Info
	parallel := len(s.Lhs) == len(s.Rhs)
	for i, l := range s.Lhs {
		lid, _ := ast.Unparen(l).(*ast.Ident)
		var r ast.Expr
		if parallel {
			r = ast.Unparen(s.Rhs[i])
		}
		if call, ok := r.(*ast.CallExpr); ok && funcFullName(calleeFunc(info, call)) == fnCSRShard && lid != nil && lid.Name != "_" {
			obj := info.Defs[lid]
			if obj == nil {
				obj = info.Uses[lid]
			}
			if obj == nil {
				continue
			}
			sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			base := ""
			if comparableOperand(sel.X) {
				base = exprString(sel.X)
			}
			env.shards[obj] = shardFact{base: base}
			w.declDepth[obj] = depth
			continue
		}
		// Reassignment of a tracked shard variable retires the old view.
		if lid != nil {
			if obj := info.Uses[lid]; obj != nil {
				delete(env.shards, obj)
			}
		}
		if r != nil {
			w.dropEscapes(r, env)
		}
	}
	if !parallel {
		for _, r := range s.Rhs {
			w.dropEscapes(r, env)
		}
	}
}

// checkCall reports mutators applied to a live shard or to its parent, and
// lets other calls consume (escape) any shard they mention.
func (w *shardWalker) checkCall(call *ast.CallExpr, env *shardEnv) {
	info := w.pass.Info
	if csrMutators[funcFullName(calleeFunc(info, call))] {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		recv := ast.Unparen(sel.X)
		// Mutator on a tracked shard variable.
		if id, ok := recv.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if f, ok := env.shards[obj]; ok {
					parent := f.base
					if parent == "" {
						parent = "its parent"
					}
					w.reportf(call.Pos(), "%s on row shard %s writes through to %s (zero-copy view shares the parent's vals array)", sel.Sel.Name, id.Name, parent)
					return
				}
			}
		}
		// Mutator on an expression equal to a live shard's parent.
		if comparableOperand(recv) {
			rs := exprString(recv)
			for obj, f := range env.shards {
				if f.base != "" && f.base == rs {
					w.reportf(call.Pos(), "%s mutates %s while row shard %s is live (the shard shares its vals array and sees the write)", sel.Sel.Name, rs, obj.Name())
					return
				}
			}
		}
		// Mutating the receiver is fine when no view is outstanding; the
		// receiver expression itself is a borrow, but argument shards escape.
		for _, a := range call.Args {
			w.dropEscapes(a, env)
		}
		return
	}
	w.dropEscapes(call, env)
}

// dropEscapes stops tracking shards that flow somewhere the dataflow cannot
// follow: returned, stored, passed to a call, closed over. The receiver/base
// position of a selector is a borrow (sh.Rows(), sh.RowRange(i)) and keeps
// the shard tracked.
func (w *shardWalker) dropEscapes(n ast.Node, env *shardEnv) {
	if n == nil || len(env.shards) == 0 {
		return
	}
	info := w.pass.Info
	borrowed := map[*ast.Ident]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				borrowed[id] = true
			}
		}
		return true
	})
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || borrowed[id] {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, tracked := env.shards[obj]; tracked {
			delete(env.shards, obj)
		}
		return true
	})
}
