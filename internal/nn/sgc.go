package nn

import (
	"fmt"
	"math/rand"

	"fedomd/internal/ad"
	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

// SGC is the simplified graph convolution of Wu et al. (2019), which the
// paper leans on in §4.3's derivation ("without considering the activation
// function ... as SGC did"): logits = S̃^K · X · W, a single linear layer
// over K-hop pre-propagated features. The propagation S̃^K·X is computed
// once at construction, so training is as cheap as logistic regression.
type SGC struct {
	params     *Params
	propagated *mat.Dense // S̃^K X, cached
	hops       int
}

// NewSGC builds an SGC model with K propagation hops over the normalised
// operator s applied to features x.
func NewSGC(rng *rand.Rand, s *sparse.CSR, x *mat.Dense, classes, hops int) (*SGC, error) {
	if hops < 1 {
		return nil, fmt.Errorf("nn: SGC needs at least 1 hop, got %d", hops)
	}
	if classes < 1 {
		return nil, fmt.Errorf("nn: SGC needs at least 1 class")
	}
	if s == nil {
		return nil, fmt.Errorf("nn: SGC needs a propagation operator")
	}
	prop := x
	for k := 0; k < hops; k++ {
		prop = s.MulDense(prop)
	}
	ps := NewParams()
	ps.Add("w", mat.Xavier(rng, x.Cols(), classes))
	return &SGC{params: ps, propagated: prop, hops: hops}, nil
}

// Params implements Model.
func (m *SGC) Params() *Params { return m.params }

// NeedsGraph implements Model. The graph is baked into the cached
// propagation, so the forward pass itself needs no operator.
func (m *SGC) NeedsGraph() bool { return false }

// Hops returns the propagation depth K.
func (m *SGC) Hops() int { return m.hops }

// Forward implements Model. Input is ignored beyond construction: SGC's
// whole point is that propagation happened ahead of time.
func (m *SGC) Forward(tp *ad.Tape, _ Input, _ *rand.Rand, _ bool) *Forward {
	nodes := paramNodes(tp, m.params)
	logits := tp.MatMul(tp.Const(m.propagated), nodes[0])
	return &Forward{Logits: logits, ParamNodes: nodes}
}
