package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedomd/internal/ad"
	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

// ringGraph builds an n-node ring with a few random chords, normalised for
// GCN propagation, plus Gaussian features.
func ringGraph(t *testing.T, n, feats int, seed int64) (*sparse.CSR, *mat.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var coords []sparse.Coord
	addEdge := func(a, b int) {
		coords = append(coords,
			sparse.Coord{Row: a, Col: b, Val: 1},
			sparse.Coord{Row: b, Col: a, Val: 1})
	}
	for i := 0; i < n; i++ {
		addEdge(i, (i+1)%n)
	}
	for k := 0; k < n/2; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			addEdge(a, b)
		}
	}
	adj, err := sparse.NewCSR(n, n, coords)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sparse.GCNNormalize(adj)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.RandGaussian(rng, n, feats, 0, 1)
	return s, x
}

// tapeLogits runs the autodiff forward in eval mode and returns a detached
// copy of the logits.
func tapeLogits(t *testing.T, m Model, in Input) *mat.Dense {
	t.Helper()
	tp := ad.NewTape()
	defer tp.Release()
	f := m.Forward(tp, in, rand.New(rand.NewSource(7)), false)
	return f.Logits.Value.Clone()
}

func maxAbsRowDiff(t *testing.T, want *mat.Dense, row []float64, node int) float64 {
	t.Helper()
	var worst float64
	for j, v := range row {
		if d := math.Abs(v - want.At(node, j)); d > worst {
			worst = d
		}
	}
	return worst
}

func TestInferencerParity(t *testing.T) {
	const n, feats, classes = 24, 6, 3
	s, x := ringGraph(t, n, feats, 11)
	in := Input{S: s, X: x}
	rng := rand.New(rand.NewSource(3))

	mlp, err := NewMLP(rng, []int{feats, 10, classes}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	gcn2, err := NewGCN(rng, []int{feats, 8, classes}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	gcn1, err := NewGCN(rng, []int{feats, classes}, 0)
	if err != nil {
		t.Fatal(err)
	}
	gcn3, err := NewGCN(rng, []int{feats, 8, 5, classes}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ortho, err := NewOrthoGCN(rng, feats, 8, classes, 3, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	sgc, err := NewSGC(rng, s, x, classes, 2)
	if err != nil {
		t.Fatal(err)
	}

	models := []struct {
		name string
		m    Model
	}{
		{"mlp", mlp}, {"gcn2", gcn2}, {"gcn1", gcn1}, {"gcn3", gcn3},
		{"orthogcn", ortho}, {"sgc", sgc},
	}
	batches := [][]int{
		{0}, {3, 1, 3, n - 1}, allNodes(n),
	}
	for _, tc := range models {
		want := tapeLogits(t, tc.m, in)
		inf, err := NewInferencer(tc.m, in)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if inf.Nodes() != n || inf.Classes() != classes {
			t.Fatalf("%s: inferencer %d nodes × %d classes, want %d × %d",
				tc.name, inf.Nodes(), inf.Classes(), n, classes)
		}
		for _, idx := range batches {
			out := mat.New(len(idx), classes)
			if err := inf.InferInto(out, idx); err != nil {
				t.Fatalf("%s: InferInto: %v", tc.name, err)
			}
			for i, node := range idx {
				if d := maxAbsRowDiff(t, want, out.Row(i), node); d > 1e-9 {
					t.Fatalf("%s: node %d logits diverge from tape forward by %g", tc.name, node, d)
				}
			}
		}
	}
}

func allNodes(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// TestInferencerSnapshot pins the RCU property the serving plane relies on:
// mutating the source model after NewInferencer must not change what the
// snapshot serves.
func TestInferencerSnapshot(t *testing.T) {
	const n, feats, classes = 16, 5, 3
	s, x := ringGraph(t, n, feats, 5)
	in := Input{S: s, X: x}
	rng := rand.New(rand.NewSource(9))
	m, err := NewOrthoGCN(rng, feats, 6, classes, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := NewInferencer(m, in)
	if err != nil {
		t.Fatal(err)
	}
	idx := allNodes(n)
	before := mat.New(n, classes)
	if err := inf.InferInto(before, idx); err != nil {
		t.Fatal(err)
	}
	// Scribble over every parameter, as a training step would.
	for i := 0; i < m.Params().Len(); i++ {
		m.Params().At(i).Fill(123.25)
	}
	after := mat.New(n, classes)
	if err := inf.InferInto(after, idx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < classes; j++ {
			if before.At(i, j) != after.At(i, j) {
				t.Fatalf("inference changed after source-model mutation at (%d,%d)", i, j)
			}
		}
	}
}

func TestInferIntoErrors(t *testing.T) {
	const n, feats, classes = 8, 4, 2
	s, x := ringGraph(t, n, feats, 2)
	rng := rand.New(rand.NewSource(1))
	m, err := NewGCN(rng, []int{feats, 6, classes}, 0)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := NewInferencer(m, Input{S: s, X: x})
	if err != nil {
		t.Fatal(err)
	}
	if err := inf.InferInto(mat.New(2, classes), []int{0, n}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := inf.InferInto(mat.New(2, classes), []int{0, -1}); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := inf.InferInto(mat.New(1, classes), []int{0, 1}); err == nil {
		t.Fatal("mis-shaped output accepted")
	}
	if err := inf.InferInto(mat.New(1, classes+1), []int{0}); err == nil {
		t.Fatal("wrong logit width accepted")
	}
	if err := inf.InferInto(mat.New(0, classes), nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
	if _, err := NewInferencer(m, Input{X: x}); err == nil {
		t.Fatal("graph model without operator accepted")
	}
	if _, err := NewInferencer(m, Input{S: s}); err == nil {
		t.Fatal("missing features accepted")
	}
}

// TestInferIntoAllocs is the zero-alloc gate on the tape-free serving path:
// once the pool is warm, a steady stream of same-shaped batches must not
// allocate at all.
func TestInferIntoAllocs(t *testing.T) {
	const n, feats, classes, batch = 64, 32, 4, 16
	s, x := ringGraph(t, n, feats, 4)
	rng := rand.New(rand.NewSource(6))
	m, err := NewOrthoGCN(rng, feats, 16, classes, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := NewInferencer(m, Input{S: s, X: x})
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = (i * 7) % n
	}
	out := mat.New(batch, classes)
	// Warm the pool buckets the batch shape draws from.
	for i := 0; i < 3; i++ {
		if err := inf.InferInto(out, idx); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := inf.InferInto(out, idx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("InferInto allocates %.1f objects per batch in steady state, want 0", allocs)
	}
}
