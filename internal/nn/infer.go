package nn

import (
	"fmt"

	"fedomd/internal/mat"
)

// infer.go is the serving-side forward pass: no tape, no gradients, no
// dropout — just the per-node logits of a trained model, restructured so a
// batch of node queries costs one SelectRowsInto plus a short chain of dense
// matmuls on pooled buffers.
//
// The restructuring exploits the same associativity the training path uses
// for its S̃X cache (model.go): every graph convolution ends in
// S̃·(Z·W) = (S̃Z)·W, so all propagation over the graph can be folded into a
// precomputed node-representation table at build time, leaving only the
// dense "head" — the final weight chain — to run per query. For the GCN
// family the table is S̃·Z^{L-1} (one row per node, already propagated) and
// the head is the single output weight; for SGC it is the cached S̃^K X; for
// the MLP it is the raw feature matrix and the head is the whole stack.
// The fold is exact: an Inferencer reproduces the tape forward (train=false)
// bit for bit, which TestInferencerParity pins.
//
// An Inferencer is an immutable snapshot: head weights are deep-copied and
// the table is freshly computed, so later optimizer steps on the source
// model cannot corrupt in-flight inference — the property the serving
// plane's RCU model swap relies on (see internal/serve).

// inferLayer is one dense head layer: out = act(in·W + b).
type inferLayer struct {
	w    *mat.Dense // owned copy
	b    *mat.Dense // optional 1×cols bias, owned
	relu bool
}

// Inferencer answers batched node-classification queries for one frozen
// model over one graph. It is safe for concurrent use by multiple
// goroutines only in the sense that it is never mutated after construction;
// InferInto itself draws scratch from the shared mat pool, so concurrent
// calls are safe too (each call owns its buffers).
type Inferencer struct {
	table   *mat.Dense // nodes × dim representation table
	layers  []inferLayer
	classes int
}

// NewInferencer folds a trained model and its graph input into a serving
// snapshot. in must be the same Input the model trains on (the global graph
// when serving the aggregated global model); in.X is borrowed read-only,
// everything else is copied or freshly computed.
func NewInferencer(m Model, in Input) (*Inferencer, error) {
	if in.X == nil {
		return nil, fmt.Errorf("nn: inferencer needs features")
	}
	if m.NeedsGraph() && in.S == nil {
		return nil, fmt.Errorf("nn: inferencer for a graph model needs the propagation operator")
	}
	switch mm := m.(type) {
	case *MLP:
		return newMLPInferencer(mm, in)
	case *GCN:
		return newGCNInferencer(mm, in)
	case *OrthoGCN:
		return newOrthoInferencer(mm, in)
	case *SGC:
		ps := mm.Params()
		w := ps.Get("w")
		return &Inferencer{
			table:   mm.propagated,
			layers:  []inferLayer{{w: w.Clone()}},
			classes: w.Cols(),
		}, nil
	default:
		return nil, fmt.Errorf("nn: no inference fold for model type %T", m)
	}
}

func newMLPInferencer(m *MLP, in Input) (*Inferencer, error) {
	if in.X.Cols() != m.dims[0] {
		return nil, fmt.Errorf("nn: inferencer features have %d columns, model wants %d", in.X.Cols(), m.dims[0])
	}
	layers := len(m.dims) - 1
	head := make([]inferLayer, 0, layers)
	for l := 0; l < layers; l++ {
		head = append(head, inferLayer{
			w:    m.params.Get(fmt.Sprintf("w%d", l)).Clone(),
			b:    m.params.Get(fmt.Sprintf("b%d", l)).Clone(),
			relu: l+1 < layers,
		})
	}
	return &Inferencer{table: in.X, layers: head, classes: m.dims[layers]}, nil
}

func newGCNInferencer(m *GCN, in Input) (*Inferencer, error) {
	if in.X.Cols() != m.dims[0] {
		return nil, fmt.Errorf("nn: inferencer features have %d columns, model wants %d", in.X.Cols(), m.dims[0])
	}
	layers := len(m.dims) - 1
	// Layer 1 reads the propagated features (S̃X)·W⁰, exactly like the
	// training path's propCache rewrite; a single-layer GCN is therefore
	// already in table·W form.
	prop := in.S.MulDense(in.X)
	w := m.params.At(layers - 1)
	if layers == 1 {
		return &Inferencer{table: prop, layers: []inferLayer{{w: w.Clone()}}, classes: w.Cols()}, nil
	}
	z := prop
	for l := 0; l+1 < layers; l++ {
		if l == 0 {
			z = mat.MatMul(prop, m.params.At(0))
		} else {
			z = in.S.MulDense(mat.MatMul(z, m.params.At(l)))
		}
		reluInPlace(z)
	}
	return &Inferencer{
		table:   in.S.MulDense(z),
		layers:  []inferLayer{{w: w.Clone()}},
		classes: w.Cols(),
	}, nil
}

func newOrthoInferencer(m *OrthoGCN, in Input) (*Inferencer, error) {
	if in.X.Cols() != m.dims[0] {
		return nil, fmt.Errorf("nn: inferencer features have %d columns, model wants %d", in.X.Cols(), m.dims[0])
	}
	// Z¹ = σ((S̃X)·W_in), then per OrthoConv: Z^l = σ(S̃(Z^{l-1}·W̃^l)) with
	// the same spectral bound the forward pass applies (Q̃ = Q/‖Q‖ when
	// ‖Q‖ > 1); the table is the final propagation S̃·Z^{L-1}, so the head
	// is just W_out.
	z := mat.MatMul(in.S.MulDense(in.X), m.params.Get("w_in"))
	reluInPlace(z)
	for l := 1; l < m.hiddenLayers; l++ {
		w := m.params.Get(fmt.Sprintf("w_ortho%d", l))
		if m.spectralBound {
			if norm := mat.SpectralNorm(w); norm > 1 {
				w = mat.Scale(1/norm, w)
			}
		}
		z = in.S.MulDense(mat.MatMul(z, w))
		reluInPlace(z)
	}
	wOut := m.params.Get("w_out")
	return &Inferencer{
		table:   in.S.MulDense(z),
		layers:  []inferLayer{{w: wOut.Clone()}},
		classes: wOut.Cols(),
	}, nil
}

// Nodes returns the number of queryable node IDs (rows of the table).
func (f *Inferencer) Nodes() int { return f.table.Rows() }

// Classes returns the logit width.
func (f *Inferencer) Classes() int { return f.classes }

// TableDim returns the representation-table width — the per-query
// SelectRowsInto copy cost in floats.
func (f *Inferencer) TableDim() int { return f.table.Cols() }

// HeadLayers returns the dense head depth (matmuls per query batch).
func (f *Inferencer) HeadLayers() int { return len(f.layers) }

// InferInto writes the logits of the idx'd nodes into out, which must be
// len(idx)×Classes(). Scratch comes from the mat pool and is returned before
// InferInto does, so the steady state allocates nothing (pinned by
// TestInferIntoAllocs). idx is validated up front; on error out is untouched.
func (f *Inferencer) InferInto(out *mat.Dense, idx []int) error {
	if len(idx) == 0 {
		return nil
	}
	if out.Rows() != len(idx) || out.Cols() != f.classes {
		return fmt.Errorf("nn: InferInto output %dx%d, want %dx%d", out.Rows(), out.Cols(), len(idx), f.classes)
	}
	n := f.table.Rows()
	for _, id := range idx {
		if id < 0 || id >= n {
			return fmt.Errorf("nn: node %d out of range [0,%d)", id, n)
		}
	}
	b := len(idx)
	cur := mat.GetDense(b, f.table.Cols())
	f.table.SelectRowsInto(cur, idx)
	for l := 0; l+1 < len(f.layers); l++ {
		layer := f.layers[l]
		nxt := mat.GetDense(b, layer.w.Cols())
		mat.MatMulInto(nxt, cur, layer.w)
		if layer.b != nil {
			nxt.AXPYRowBroadcast(1, layer.b)
		}
		if layer.relu {
			reluInPlace(nxt)
		}
		mat.PutDense(cur)
		cur = nxt
	}
	last := f.layers[len(f.layers)-1]
	mat.MatMulInto(out, cur, last.w)
	mat.PutDense(cur)
	if last.b != nil {
		out.AXPYRowBroadcast(1, last.b)
	}
	return nil
}

// reluInPlace clamps negatives to zero, matching ad's ReLU semantics.
func reluInPlace(m *mat.Dense) {
	d := m.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
}
