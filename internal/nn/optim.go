package nn

import (
	"fmt"
	"math"

	"fedomd/internal/ad"
	"fedomd/internal/mat"
)

// Optimizer applies one update step given the parameter tape nodes (whose
// Grad fields were populated by Backward).
type Optimizer interface {
	// Step updates params in place using the gradients on nodes, which must
	// align with the params registration order.
	Step(params *Params, nodes []*ad.Node) error
}

// SGD is stochastic gradient descent with decoupled weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step implements Optimizer.
func (o *SGD) Step(params *Params, nodes []*ad.Node) error {
	if len(nodes) != params.Len() {
		return fmt.Errorf("nn: SGD got %d grads for %d params", len(nodes), params.Len())
	}
	for i := 0; i < params.Len(); i++ {
		w := params.At(i)
		if o.WeightDecay != 0 {
			w.ScaleInPlace(1 - o.LR*o.WeightDecay)
		}
		if g := nodes[i].Grad; g != nil {
			w.AXPY(-o.LR, g)
		}
	}
	return nil
}

// Adam is the Adam optimiser (Kingma & Ba) with decoupled weight decay,
// the configuration the GCN literature trains with.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m []*mat.Dense
	v []*mat.Dense
}

// NewAdam returns Adam with the standard defaults (β₁=0.9, β₂=0.999,
// ε=1e-8).
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay}
}

// Step implements Optimizer.
func (o *Adam) Step(params *Params, nodes []*ad.Node) error {
	if len(nodes) != params.Len() {
		return fmt.Errorf("nn: Adam got %d grads for %d params", len(nodes), params.Len())
	}
	if o.m == nil {
		o.m = make([]*mat.Dense, params.Len())
		o.v = make([]*mat.Dense, params.Len())
		for i := 0; i < params.Len(); i++ {
			w := params.At(i)
			o.m[i] = mat.New(w.Rows(), w.Cols())
			o.v[i] = mat.New(w.Rows(), w.Cols())
		}
	}
	if len(o.m) != params.Len() {
		return fmt.Errorf("nn: Adam state built for %d params, got %d", len(o.m), params.Len())
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i := 0; i < params.Len(); i++ {
		w := params.At(i)
		if o.WeightDecay != 0 {
			w.ScaleInPlace(1 - o.LR*o.WeightDecay)
		}
		g := nodes[i].Grad
		if g == nil {
			continue
		}
		mw, vw := o.m[i].Data(), o.v[i].Data()
		gd := g.Data()
		wd := w.Data()
		for k := range gd {
			mw[k] = o.Beta1*mw[k] + (1-o.Beta1)*gd[k]
			vw[k] = o.Beta2*vw[k] + (1-o.Beta2)*gd[k]*gd[k]
			mhat := mw[k] / bc1
			vhat := vw[k] / bc2
			wd[k] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
	}
	return nil
}

// Reset clears Adam's moment state (used when a client receives fresh global
// weights and should not carry stale momentum across rounds).
func (o *Adam) Reset() {
	o.t = 0
	o.m, o.v = nil, nil
}
