package nn

import (
	"math/rand"
	"testing"

	"fedomd/internal/ad"
	"fedomd/internal/mat"
)

func TestSGCValidation(t *testing.T) {
	s, x := lineGraph(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := NewSGC(rng, s, x, 2, 0); err == nil {
		t.Fatal("0 hops accepted")
	}
	if _, err := NewSGC(rng, s, x, 0, 2); err == nil {
		t.Fatal("0 classes accepted")
	}
	if _, err := NewSGC(rng, nil, x, 2, 2); err == nil {
		t.Fatal("nil operator accepted")
	}
}

func TestSGCPropagationEqualsRepeatedSpMM(t *testing.T) {
	s, x := lineGraph(t)
	rng := rand.New(rand.NewSource(2))
	m, err := NewSGC(rng, s, x, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := s.MulDense(s.MulDense(s.MulDense(x)))
	if !m.propagated.EqualApprox(want, 1e-12) {
		t.Fatal("cached propagation wrong")
	}
	if m.Hops() != 3 || m.NeedsGraph() {
		t.Fatal("metadata wrong")
	}
}

func TestSGCTrains(t *testing.T) {
	s, x := lineGraph(t)
	rng := rand.New(rand.NewSource(3))
	m, err := NewSGC(rng, s, x, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{0, 0, 1, 1}
	mask := []int{0, 1, 2, 3}
	opt := NewAdam(0.1, 0)
	var first, last float64
	for i := 0; i < 50; i++ {
		tp := ad.NewTape()
		f := m.Forward(tp, Input{}, rng, true)
		loss := tp.SoftmaxCrossEntropy(f.Logits, labels, mask)
		if i == 0 {
			first = loss.Value.At(0, 0)
		}
		last = loss.Value.At(0, 0)
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		if err := opt.Step(m.Params(), f.ParamNodes); err != nil {
			t.Fatal(err)
		}
	}
	if last >= first*0.5 {
		t.Fatalf("SGC did not train: %v -> %v", first, last)
	}
}

func TestSGCLogitsShape(t *testing.T) {
	s, x := lineGraph(t)
	rng := rand.New(rand.NewSource(4))
	m, err := NewSGC(rng, s, x, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	tp := ad.NewTape()
	f := m.Forward(tp, Input{}, rng, false)
	if r, c := f.Logits.Value.Dims(); r != 4 || c != 3 {
		t.Fatalf("logits %dx%d", r, c)
	}
	if mat.FrobNorm(f.Logits.Value) == 0 {
		t.Fatal("logits identically zero")
	}
}
