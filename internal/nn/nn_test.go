package nn

import (
	"math"
	"math/rand"
	"testing"

	"fedomd/internal/ad"
	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

func TestParamsBasics(t *testing.T) {
	p := NewParams()
	p.Add("w0", mat.Eye(2))
	p.Add("b0", mat.New(1, 2))
	if p.Len() != 2 || p.Get("w0") == nil || p.Get("nope") != nil {
		t.Fatal("basic accessors wrong")
	}
	if got := p.Names(); got[0] != "w0" || got[1] != "b0" {
		t.Fatalf("order not preserved: %v", got)
	}
	if p.NumFloats() != 6 || p.Bytes() != 48 {
		t.Fatalf("size accounting wrong: %d floats %d bytes", p.NumFloats(), p.Bytes())
	}
	c := p.Clone()
	c.Get("w0").Set(0, 0, 5)
	if p.Get("w0").At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestParamsDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name accepted")
		}
	}()
	p := NewParams()
	p.Add("w", mat.New(1, 1))
	p.Add("w", mat.New(1, 1))
}

func TestParamsCompatibilityErrors(t *testing.T) {
	a := NewParams()
	a.Add("w", mat.New(2, 2))
	b := NewParams()
	b.Add("w", mat.New(2, 3))
	if err := a.CopyFrom(b); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	c := NewParams()
	c.Add("x", mat.New(2, 2))
	if err := a.AXPY(1, c); err == nil {
		t.Fatal("name mismatch accepted")
	}
	d := NewParams()
	if err := a.CopyFrom(d); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestAverageWeighted(t *testing.T) {
	mk := func(v float64) *Params {
		p := NewParams()
		m := mat.New(1, 1)
		m.Set(0, 0, v)
		p.Add("w", m)
		return p
	}
	avg, err := Average([]*Params{mk(1), mk(4)}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := avg.Get("w").At(0, 0); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("weighted average = %v want 1.75", got)
	}
	if _, err := Average(nil, nil); err == nil {
		t.Fatal("empty average accepted")
	}
	if _, err := Average([]*Params{mk(1)}, []float64{0}); err == nil {
		t.Fatal("zero-total weights accepted")
	}
	if _, err := Average([]*Params{mk(1)}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := Average([]*Params{mk(1), mk(2)}, []float64{1}); err == nil {
		t.Fatal("weight/set count mismatch accepted")
	}
}

func TestL2Distance(t *testing.T) {
	a := NewParams()
	a.Add("w", mat.Eye(2))
	b := NewParams()
	b.Add("w", mat.New(2, 2))
	d, err := a.L2Distance(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-math.Sqrt2) > 1e-9 {
		t.Fatalf("L2Distance = %v want sqrt(2)", d)
	}
}

// lineGraph returns the normalised operator of a 4-node path and features.
func lineGraph(t *testing.T) (*sparse.CSR, *mat.Dense) {
	t.Helper()
	adj, err := sparse.NewCSR(4, 4, []sparse.Coord{
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 0, Val: 1},
		{Row: 1, Col: 2, Val: 1}, {Row: 2, Col: 1, Val: 1},
		{Row: 2, Col: 3, Val: 1}, {Row: 3, Col: 2, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sparse.GCNNormalize(adj)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.RandGaussian(rand.New(rand.NewSource(1)), 4, 3, 0, 1)
	return s, x
}

func TestMLPForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := NewMLP(rng, []int{3, 8, 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.NeedsGraph() {
		t.Fatal("MLP should not need graph")
	}
	_, x := lineGraph(t)
	tp := ad.NewTape()
	f := m.Forward(tp, Input{X: x}, rng, false)
	if r, c := f.Logits.Value.Dims(); r != 4 || c != 2 {
		t.Fatalf("logits %dx%d", r, c)
	}
	if len(f.Hidden) != 1 || f.Hidden[0].Value.Cols() != 8 {
		t.Fatal("hidden shapes wrong")
	}
	if len(f.ParamNodes) != 4 {
		t.Fatalf("param nodes = %d want 4", len(f.ParamNodes))
	}
}

func TestNewModelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := NewMLP(rng, []int{3}, 0); err == nil {
		t.Fatal("1-dim MLP accepted")
	}
	if _, err := NewGCN(rng, []int{3}, 0); err == nil {
		t.Fatal("1-dim GCN accepted")
	}
	if _, err := NewOrthoGCN(rng, 3, 8, 2, 0, 0); err == nil {
		t.Fatal("0 hidden layers accepted")
	}
	if _, err := NewOrthoGCN(rng, 0, 8, 2, 2, 0); err == nil {
		t.Fatal("0 input dim accepted")
	}
}

func TestGCNForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, err := NewGCN(rng, []int{3, 6, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !m.NeedsGraph() {
		t.Fatal("GCN should need graph")
	}
	s, x := lineGraph(t)
	tp := ad.NewTape()
	f := m.Forward(tp, Input{S: s, X: x}, rng, false)
	if r, c := f.Logits.Value.Dims(); r != 4 || c != 2 {
		t.Fatalf("logits %dx%d", r, c)
	}
	if len(f.Hidden) != 1 {
		t.Fatal("hidden count wrong")
	}
}

func TestOrthoGCNStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Table 1 with 3 hidden layers: GCNConv + 2 OrthoConv + GCNConv.
	m, err := NewOrthoGCN(rng, 3, 6, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Params().Len() != 4 {
		t.Fatalf("param count = %d want 4 (in, 2 ortho, out)", m.Params().Len())
	}
	if m.HiddenLayers() != 3 {
		t.Fatal("HiddenLayers wrong")
	}
	s, x := lineGraph(t)
	tp := ad.NewTape()
	f := m.Forward(tp, Input{S: s, X: x}, rng, false)
	if len(f.Hidden) != 3 {
		t.Fatalf("hidden reps = %d want 3", len(f.Hidden))
	}
	if len(f.OrthoNodes) != 2 {
		t.Fatalf("ortho nodes = %d want 2", len(f.OrthoNodes))
	}
	if r, c := f.Logits.Value.Dims(); r != 4 || c != 2 {
		t.Fatalf("logits %dx%d", r, c)
	}
	// Hidden activations must be non-negative (post-ReLU) — the premise of
	// the CMD bound [a,b] = [0,1].
	for li, h := range f.Hidden {
		if mat.Min(h.Value) < 0 {
			t.Fatalf("hidden layer %d has negative activation", li)
		}
	}
}

func TestHardOrthogonalize(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, err := NewOrthoGCN(rng, 3, 8, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.HardOrthogonalize(); err != nil {
		t.Fatal(err)
	}
	for _, name := range m.Params().Names() {
		if len(name) >= 7 && name[:7] == "w_ortho" {
			if d := mat.OrthoError(m.Params().Get(name)); d > 1e-6 {
				t.Fatalf("%s defect %v after hard orthogonalisation", name, d)
			}
		}
	}
	// Non-ortho weights untouched by the projection guarantee: w_in stays
	// generally non-orthogonal (it is rectangular anyway).
}

// trainStep does one full-batch step and returns the loss.
func trainStep(t *testing.T, m Model, in Input, labels []int, mask []int, opt Optimizer, rng *rand.Rand) float64 {
	t.Helper()
	tp := ad.NewTape()
	f := m.Forward(tp, in, rng, true)
	loss := tp.SoftmaxCrossEntropy(f.Logits, labels, mask)
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	if err := opt.Step(m.Params(), f.ParamNodes); err != nil {
		t.Fatal(err)
	}
	return loss.Value.At(0, 0)
}

func TestTrainingReducesLossAllModels(t *testing.T) {
	s, x := lineGraph(t)
	labels := []int{0, 0, 1, 1}
	mask := []int{0, 1, 2, 3}
	rng := rand.New(rand.NewSource(7))

	mlp, _ := NewMLP(rng, []int{3, 8, 2}, 0)
	gcn, _ := NewGCN(rng, []int{3, 8, 2}, 0)
	ortho, _ := NewOrthoGCN(rng, 3, 8, 2, 2, 0)
	for name, m := range map[string]Model{"mlp": mlp, "gcn": gcn, "ortho": ortho} {
		opt := NewAdam(0.05, 0)
		first := trainStep(t, m, Input{S: s, X: x}, labels, mask, opt, rng)
		var last float64
		for i := 0; i < 60; i++ {
			last = trainStep(t, m, Input{S: s, X: x}, labels, mask, opt, rng)
		}
		if last >= first*0.7 {
			t.Fatalf("%s: loss did not drop: %v -> %v", name, first, last)
		}
	}
}

func TestSGDStepAndWeightDecay(t *testing.T) {
	p := NewParams()
	w := mat.New(1, 1)
	w.Set(0, 0, 2)
	p.Add("w", w)
	tp := ad.NewTape()
	n := tp.Param(w)
	loss := tp.SumSquares(n) // dL/dw = 2w = 4
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	if err := opt.Step(p, []*ad.Node{n}); err != nil {
		t.Fatal(err)
	}
	// decay: 2*(1-0.05)=1.9; grad step: 1.9-0.1*4=1.5
	if got := w.At(0, 0); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("SGD step = %v want 1.5", got)
	}
	if err := opt.Step(p, nil); err == nil {
		t.Fatal("grad/param count mismatch accepted")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := NewParams()
	w := mat.New(1, 3)
	w.Set(0, 0, 5)
	w.Set(0, 1, -3)
	w.Set(0, 2, 1)
	p.Add("w", w)
	opt := NewAdam(0.2, 0)
	for i := 0; i < 300; i++ {
		tp := ad.NewTape()
		n := tp.Param(w)
		loss := tp.SumSquares(n)
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		if err := opt.Step(p, []*ad.Node{n}); err != nil {
			t.Fatal(err)
		}
	}
	if norm := mat.FrobNorm(w); norm > 1e-2 {
		t.Fatalf("Adam failed to minimise quadratic: ‖w‖=%v", norm)
	}
}

func TestAdamReset(t *testing.T) {
	p := NewParams()
	p.Add("w", mat.Eye(2))
	opt := NewAdam(0.1, 0)
	tp := ad.NewTape()
	n := tp.Param(p.Get("w"))
	loss := tp.SumSquares(n)
	if err := tp.Backward(loss); err != nil {
		t.Fatal(err)
	}
	if err := opt.Step(p, []*ad.Node{n}); err != nil {
		t.Fatal(err)
	}
	opt.Reset()
	if opt.m != nil || opt.t != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestForwardDeterministicInEval(t *testing.T) {
	s, x := lineGraph(t)
	rng := rand.New(rand.NewSource(8))
	m, _ := NewOrthoGCN(rng, 3, 6, 2, 2, 0.5)
	out := func() *mat.Dense {
		tp := ad.NewTape()
		return m.Forward(tp, Input{S: s, X: x}, rand.New(rand.NewSource(99)), false).Logits.Value
	}
	if !out().Equal(out()) {
		t.Fatal("eval forward not deterministic")
	}
}
