package nn

import (
	"math/rand"
	"testing"

	"fedomd/internal/ad"
	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

// allocFixture builds a small training problem: shapes deliberately stay
// below the parallel-kernel thresholds so every kernel runs serially and the
// measured allocations come from the training step itself.
func allocFixture(t testing.TB) (*sparse.CSR, *mat.Dense, []int, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	const n, feats, classes = 16, 8, 3
	var entries []sparse.Coord
	for i := 0; i < n; i++ {
		entries = append(entries, sparse.Coord{Row: i, Col: (i + 1) % n, Val: 1},
			sparse.Coord{Row: (i + 1) % n, Col: i, Val: 1})
	}
	adj, err := sparse.NewCSR(n, n, entries)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sparse.GCNNormalize(adj)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.RandGaussian(rng, n, feats, 0, 1)
	labels := make([]int, n)
	maskIdx := make([]int, n)
	for i := range labels {
		labels[i] = i % classes
		maskIdx[i] = i
	}
	return s, x, labels, maskIdx
}

// trainStepAllocs measures steady-state allocations of one full training step
// (forward, backward, Adam update, Release) after warm-up steps that populate
// the pool, the tape arena, and the optimizer state.
func trainStepAllocs(t *testing.T, model Model, in Input) float64 {
	t.Helper()
	_, _, labels, maskIdx := allocFixture(t)
	if in.X.Rows() != len(labels) {
		t.Fatalf("fixture mismatch: %d rows for %d labels", in.X.Rows(), len(labels))
	}
	tp := ad.NewTape()
	opt := NewAdam(0.01, 0)
	rng := rand.New(rand.NewSource(1))
	step := func() {
		f := model.Forward(tp, in, rng, true)
		loss := tp.SoftmaxCrossEntropy(f.Logits, labels, maskIdx)
		if err := tp.Backward(loss); err != nil {
			t.Fatal(err)
		}
		if err := opt.Step(model.Params(), f.ParamNodes); err != nil {
			t.Fatal(err)
		}
		tp.Release()
	}
	for i := 0; i < 3; i++ {
		step() // warm up pool buckets, arena capacity, Adam state
	}
	return testing.AllocsPerRun(10, step)
}

// The bounds below pin the steady-state allocation count per training step.
// What remains after pooling is O(ops) bookkeeping — one backward closure per
// recorded op plus a few slice headers per forward — independent of matrix
// sizes. The seed implementation allocated every forward value, gradient and
// backward temporary afresh (hundreds of allocations, scaling with data), so
// a regression that re-introduces per-element churn trips these immediately.

func TestTrainStepAllocsMLP(t *testing.T) {
	_, x, _, _ := allocFixture(t)
	rng := rand.New(rand.NewSource(2))
	m, err := NewMLP(rng, []int{x.Cols(), 8, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := trainStepAllocs(t, m, Input{X: x}); got > 40 {
		t.Fatalf("MLP steady-state step allocates %.0f times, want <= 40", got)
	}
}

func TestTrainStepAllocsGCN(t *testing.T) {
	s, x, _, _ := allocFixture(t)
	rng := rand.New(rand.NewSource(3))
	m, err := NewGCN(rng, []int{x.Cols(), 8, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := trainStepAllocs(t, m, Input{S: s, X: x}); got > 40 {
		t.Fatalf("GCN steady-state step allocates %.0f times, want <= 40", got)
	}
}

func TestTrainStepAllocsOrthoGCN(t *testing.T) {
	s, x, _, _ := allocFixture(t)
	rng := rand.New(rand.NewSource(4))
	m, err := NewOrthoGCN(rng, x.Cols(), 8, 3, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := trainStepAllocs(t, m, Input{S: s, X: x}); got > 80 {
		t.Fatalf("OrthoGCN steady-state step allocates %.0f times, want <= 80", got)
	}
}

// TestPropCache checks the cached S̃X: same operands hit the cache, any
// operand change recomputes.
func TestPropCache(t *testing.T) {
	s, x, _, _ := allocFixture(t)
	var c propCache
	p1 := c.propagated(s, x)
	if p2 := c.propagated(s, x); p2 != p1 {
		t.Fatal("cache miss on identical operands")
	}
	want := s.MulDense(x)
	for i, v := range p1.Data() {
		if v != want.Data()[i] {
			t.Fatalf("cached propagation wrong at %d: %v != %v", i, v, want.Data()[i])
		}
	}
	x2 := x.Clone()
	p3 := c.propagated(s, x2)
	if p3 == p1 {
		t.Fatal("cache did not invalidate on new features")
	}
}

// TestGCNForwardMatchesUncached compares the cached-propagation GCN layer-1
// rewrite (S̃X)·W against an explicit S̃·(X·W) computed by hand.
func TestGCNForwardMatchesUncached(t *testing.T) {
	s, x, _, _ := allocFixture(t)
	rng := rand.New(rand.NewSource(5))
	m, err := NewGCN(rng, []int{x.Cols(), 8, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tp := ad.NewTape()
	f := m.Forward(tp, Input{S: s, X: x}, rng, false)

	// Reference: ReLU(S̃·(X·W⁰)), then S̃·(H·W¹) — mirrors the pre-cache
	// formulation with the SpMM applied after the dense product.
	w0, w1 := m.params.At(0), m.params.At(1)
	h := mat.Apply(s.MulDense(mat.MatMul(x, w0)), func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
	want := s.MulDense(mat.MatMul(h, w1))
	for i, v := range f.Logits.Value.Data() {
		if d := v - want.Data()[i]; d > 1e-10 || d < -1e-10 {
			t.Fatalf("logits[%d] = %v want %v", i, v, want.Data()[i])
		}
	}
	tp.Release()
}
