package nn

import (
	"fmt"
	"math/rand"

	"fedomd/internal/ad"
	"fedomd/internal/mat"
	"fedomd/internal/sparse"
)

// Input bundles what a model's forward pass consumes: the node features and,
// for graph models, the normalised propagation operator S̃.
type Input struct {
	// S is the GCN-normalised adjacency D^{-1/2}(A+I)D^{-1/2}; nil for
	// structure-free models (MLP).
	S *sparse.CSR
	// X is the n×f feature matrix.
	X *mat.Dense
}

// Forward is the result of one model forward pass on a tape.
type Forward struct {
	// Logits is the pre-softmax n×classes output node.
	Logits *ad.Node
	// Hidden holds the post-activation hidden representations Z^1..Z^{L-1}
	// in layer order — the quantities the CMD constraint operates on.
	Hidden []*ad.Node
	// ParamNodes are the tape nodes of the model parameters, aligned with
	// Params registration order, so callers can read gradients after
	// Backward.
	ParamNodes []*ad.Node
	// OrthoNodes are the subset of ParamNodes subject to the orthogonality
	// penalty of eq. 6 (the square OrthoConv weights).
	OrthoNodes []*ad.Node
}

// Model is a trainable classifier over graph-structured (or plain) features.
type Model interface {
	// Params returns the live parameter set; optimisers mutate it in place.
	Params() *Params
	// Forward records the forward pass on tp. train toggles dropout.
	Forward(tp *ad.Tape, in Input, rng *rand.Rand, train bool) *Forward
	// NeedsGraph reports whether the model requires Input.S.
	NeedsGraph() bool
}

// paramNodes binds every matrix of ps onto the tape in order.
func paramNodes(tp *ad.Tape, ps *Params) []*ad.Node {
	nodes := make([]*ad.Node, ps.Len())
	for i := range nodes {
		nodes[i] = tp.Param(ps.At(i))
	}
	return nodes
}

// propCache memoises the propagated features S̃·X of a graph model's first
// layer. Both operands are constants of the client — S̃ is fixed by the local
// topology and X by the local features — so by associativity the first layer
// S̃·(X·W⁰) can be computed as (S̃X)·W⁰ with S̃X built once: every forward
// after the first saves one SpMM, and every backward saves the matching
// Sᵀ·G, because the gradient stops at the constant.
//
// The cache keys on operand identity, so swapping in a different graph or
// feature matrix recomputes. It is not safe for concurrent use; models are
// driven by one goroutine at a time (the fed.Client contract).
type propCache struct {
	s    *sparse.CSR
	x    *mat.Dense
	prop *mat.Dense
}

// propagated returns the cached S̃·X, computing it on first use or when the
// operands change.
func (c *propCache) propagated(s *sparse.CSR, x *mat.Dense) *mat.Dense {
	if c.prop == nil || c.s != s || c.x != x {
		c.prop = s.MulDense(x)
		c.s, c.x = s, x
	}
	return c.prop
}

// MLP is the FedMLP base model: Dense→ReLU→(dropout)→Dense, no structure.
type MLP struct {
	params  *Params
	dims    []int
	dropout float64
}

// NewMLP builds an MLP with the given layer dimensions (at least in/out) and
// dropout probability applied after every hidden activation.
func NewMLP(rng *rand.Rand, dims []int, dropout float64) (*MLP, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least [in, out] dims, got %v", dims)
	}
	ps := NewParams()
	for l := 0; l+1 < len(dims); l++ {
		ps.Add(fmt.Sprintf("w%d", l), mat.Xavier(rng, dims[l], dims[l+1]))
		ps.Add(fmt.Sprintf("b%d", l), mat.New(1, dims[l+1]))
	}
	return &MLP{params: ps, dims: append([]int(nil), dims...), dropout: dropout}, nil
}

// Params implements Model.
func (m *MLP) Params() *Params { return m.params }

// NeedsGraph implements Model.
func (m *MLP) NeedsGraph() bool { return false }

// Forward implements Model.
func (m *MLP) Forward(tp *ad.Tape, in Input, rng *rand.Rand, train bool) *Forward {
	nodes := paramNodes(tp, m.params)
	z := tp.Const(in.X)
	var hidden []*ad.Node
	layers := len(m.dims) - 1
	for l := 0; l < layers; l++ {
		w := nodes[2*l]
		b := nodes[2*l+1]
		z = tp.AddRowVec(tp.MatMul(z, w), b)
		if l+1 < layers {
			z = tp.ReLU(z)
			hidden = append(hidden, z)
			z = tp.Dropout(z, m.dropout, rng, train)
		}
	}
	return &Forward{Logits: z, Hidden: hidden, ParamNodes: nodes}
}

// GCN is the Kipf & Welling graph convolutional network used by LocGCN and
// FedGCN: Z^{l+1} = σ(S̃ Z^l W^l).
type GCN struct {
	params  *Params
	dims    []int
	dropout float64
	prop    propCache
}

// NewGCN builds a GCN with the given layer dimensions.
func NewGCN(rng *rand.Rand, dims []int, dropout float64) (*GCN, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("nn: GCN needs at least [in, out] dims, got %v", dims)
	}
	ps := NewParams()
	for l := 0; l+1 < len(dims); l++ {
		ps.Add(fmt.Sprintf("w%d", l), mat.Xavier(rng, dims[l], dims[l+1]))
	}
	return &GCN{params: ps, dims: append([]int(nil), dims...), dropout: dropout}, nil
}

// Params implements Model.
func (m *GCN) Params() *Params { return m.params }

// NeedsGraph implements Model.
func (m *GCN) NeedsGraph() bool { return true }

// Forward implements Model.
func (m *GCN) Forward(tp *ad.Tape, in Input, rng *rand.Rand, train bool) *Forward {
	if in.S == nil {
		panic("nn: GCN forward without propagation operator")
	}
	nodes := paramNodes(tp, m.params)
	var hidden []*ad.Node
	layers := len(m.dims) - 1
	var z *ad.Node
	for l := 0; l < layers; l++ {
		if l == 0 {
			// Layer 1 uses the cached propagated features:
			// S̃·(X·W⁰) = (S̃X)·W⁰ with S̃X constant per client.
			z = tp.MatMul(tp.Const(m.prop.propagated(in.S, in.X)), nodes[0])
		} else {
			z = tp.SpMM(in.S, tp.MatMul(z, nodes[l]))
		}
		if l+1 < layers {
			z = tp.ReLU(z)
			hidden = append(hidden, z)
			z = tp.Dropout(z, m.dropout, rng, train)
		}
	}
	return &Forward{Logits: z, Hidden: hidden, ParamNodes: nodes}
}

// OrthoGCN is the paper's local model (Table 1): a GCNConv from input to
// hidden width, (hiddenLayers−1) square OrthoConv layers whose weights carry
// the orthogonality penalty of eq. 6 and are spectrally normalised in the
// forward pass (Q̃ = Q/‖Q‖_F, eq. 8), and a closing GCNConv to the output
// classes.
type OrthoGCN struct {
	params        *Params
	hiddenLayers  int
	dims          [3]int // in, hidden, out
	dropout       float64
	spectralBound bool
	prop          propCache
}

// SetSpectralBound toggles the Q̃ = Q/‖Q‖ bounding of the OrthoConv weights
// in the forward pass (on by default). Exposed for the design ablation.
func (m *OrthoGCN) SetSpectralBound(on bool) { m.spectralBound = on }

// NewOrthoGCN builds the Table 1 model. hiddenLayers is the number of hidden
// representations (the paper's "2-hidden" default means hiddenLayers = 2:
// one GCNConv plus one OrthoConv before the output GCNConv).
func NewOrthoGCN(rng *rand.Rand, in, hidden, out, hiddenLayers int, dropout float64) (*OrthoGCN, error) {
	if hiddenLayers < 1 {
		return nil, fmt.Errorf("nn: OrthoGCN needs at least one hidden layer, got %d", hiddenLayers)
	}
	if in <= 0 || hidden <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: OrthoGCN dims must be positive: %d %d %d", in, hidden, out)
	}
	ps := NewParams()
	ps.Add("w_in", mat.Xavier(rng, in, hidden))
	for l := 1; l < hiddenLayers; l++ {
		// OrthoConv weights start on the orthogonal manifold (Newton–Schulz
		// projection of a Xavier draw): an orthogonal middle layer is
		// initially an isometry, so depth neither contracts nor distorts the
		// signal, and the orthogonality penalty only has to keep the weight
		// near the manifold rather than find it.
		w := mat.Xavier(rng, hidden, hidden)
		if q, err := mat.NewtonSchulz(w, 40); err == nil {
			w = q
		}
		ps.Add(fmt.Sprintf("w_ortho%d", l), w)
	}
	ps.Add("w_out", mat.Xavier(rng, hidden, out))
	return &OrthoGCN{
		params:        ps,
		hiddenLayers:  hiddenLayers,
		dims:          [3]int{in, hidden, out},
		dropout:       dropout,
		spectralBound: true,
	}, nil
}

// Params implements Model.
func (m *OrthoGCN) Params() *Params { return m.params }

// NeedsGraph implements Model.
func (m *OrthoGCN) NeedsGraph() bool { return true }

// HiddenLayers returns the number of hidden representations the model emits.
func (m *OrthoGCN) HiddenLayers() int { return m.hiddenLayers }

// Forward implements Model. Hidden gets exactly hiddenLayers entries:
// Z^1 (after the input GCNConv) and one per OrthoConv.
func (m *OrthoGCN) Forward(tp *ad.Tape, in Input, rng *rand.Rand, train bool) *Forward {
	if in.S == nil {
		panic("nn: OrthoGCN forward without propagation operator")
	}
	nodes := paramNodes(tp, m.params)
	// Layer 1: Z¹ = σ(S̃ X W⁰) = σ((S̃X) W⁰)  (eq. 7) — S̃X is constant per
	// client, so it is propagated once and cached; the rewrite drops one
	// SpMM from every forward and one Sᵀ·G from every backward.
	z := tp.ReLU(tp.MatMul(tp.Const(m.prop.propagated(in.S, in.X)), nodes[0]))
	hidden := []*ad.Node{z}
	var orthoNodes []*ad.Node
	z = tp.Dropout(z, m.dropout, rng, train)
	// Middle layers: Z^l = σ(S̃ Z^{l-1} W̃^l) with spectrally bounded square
	// weights (eq. 8 with the learnable Q realised as a d_h×d_h weight; see
	// Table 1's OrthoConv rows). The bound divides by the spectral norm when
	// it exceeds 1; as the orthogonality penalty drives W Wᵀ → I the largest
	// singular value approaches 1 and the bound becomes the identity, so the
	// layer neither explodes nor contracts activations.
	for l := 1; l < m.hiddenLayers; l++ {
		w := nodes[l]
		wn := w
		if m.spectralBound {
			if norm := mat.SpectralNorm(w.Value); norm > 1 {
				wn = tp.Scale(1/norm, w)
			}
		}
		// The orthogonality penalty acts on the matrix the forward pass
		// actually uses, so the loss cannot be dodged by rescaling W.
		orthoNodes = append(orthoNodes, wn)
		z = tp.ReLU(tp.SpMM(in.S, tp.MatMul(z, wn)))
		hidden = append(hidden, z)
		z = tp.Dropout(z, m.dropout, rng, train)
	}
	// Output layer: logits = S̃ Z^{L-1} W^{L} (softmax fused into the loss,
	// eq. 9).
	logits := tp.SpMM(in.S, tp.MatMul(z, nodes[len(nodes)-1]))
	return &Forward{Logits: logits, Hidden: hidden, ParamNodes: nodes, OrthoNodes: orthoNodes}
}

// HardOrthogonalize projects every OrthoConv weight onto the orthogonal
// manifold with the Newton–Schulz iteration — the alternative to the soft
// penalty, exposed for the design-choice ablation bench.
func (m *OrthoGCN) HardOrthogonalize() error {
	for _, name := range m.params.Names() {
		if len(name) < 7 || name[:7] != "w_ortho" {
			continue
		}
		w := m.params.Get(name)
		q, err := mat.NewtonSchulz(w, 30)
		if err != nil {
			return fmt.Errorf("nn: orthogonalising %s: %w", name, err)
		}
		w.CopyFrom(q)
	}
	return nil
}
