// Package nn builds the neural models the paper evaluates — MLP, GCN, and
// the OrthoGCN of Table 1 — on top of the ad autodiff engine, together with
// the SGD/Adam optimisers and the parameter-set plumbing federated
// aggregation needs (cloning, averaging, byte-level size accounting).
package nn

import (
	"fmt"
	"math"

	"fedomd/internal/mat"
)

// Params is an ordered, named collection of weight matrices. Order is the
// insertion order, which all models keep deterministic so that federated
// averaging can zip parameter sets from different clients.
type Params struct {
	names []string
	vals  map[string]*mat.Dense
}

// NewParams returns an empty parameter set.
func NewParams() *Params {
	return &Params{vals: make(map[string]*mat.Dense)}
}

// Add registers a named matrix. It panics on duplicate names (models are
// static; a duplicate is a bug).
func (p *Params) Add(name string, w *mat.Dense) {
	if _, dup := p.vals[name]; dup {
		panic(fmt.Sprintf("nn: duplicate parameter %q", name))
	}
	p.names = append(p.names, name)
	p.vals[name] = w
}

// Get returns the named matrix, or nil if absent.
func (p *Params) Get(name string) *mat.Dense { return p.vals[name] }

// Names returns the parameter names in registration order.
func (p *Params) Names() []string { return append([]string(nil), p.names...) }

// Len returns the number of parameter matrices.
func (p *Params) Len() int { return len(p.names) }

// At returns the i-th matrix in registration order.
func (p *Params) At(i int) *mat.Dense { return p.vals[p.names[i]] }

// Clone deep-copies the parameter set.
func (p *Params) Clone() *Params {
	out := NewParams()
	for _, n := range p.names {
		out.Add(n, p.vals[n].Clone())
	}
	return out
}

// CopyFrom overwrites p's matrices with src's values. The sets must have the
// same names in the same order.
func (p *Params) CopyFrom(src *Params) error {
	if err := p.compatible(src); err != nil {
		return err
	}
	for _, n := range p.names {
		p.vals[n].CopyFrom(src.vals[n])
	}
	return nil
}

// Zero zeroes every matrix in place.
func (p *Params) Zero() {
	for _, n := range p.names {
		p.vals[n].Zero()
	}
}

// AXPY computes p += alpha·src element-wise across all matrices — the
// primitive federated averaging is built from.
func (p *Params) AXPY(alpha float64, src *Params) error {
	if err := p.compatible(src); err != nil {
		return err
	}
	for _, n := range p.names {
		p.vals[n].AXPY(alpha, src.vals[n])
	}
	return nil
}

// Scale multiplies every matrix by s in place.
func (p *Params) Scale(s float64) {
	for _, n := range p.names {
		p.vals[n].ScaleInPlace(s)
	}
}

// NumFloats returns the total number of scalar parameters, used for the
// communication-cost accounting of Table 3.
func (p *Params) NumFloats() int {
	total := 0
	for _, n := range p.names {
		w := p.vals[n]
		total += w.Rows() * w.Cols()
	}
	return total
}

// Bytes returns the wire size of the parameter set at 8 bytes per float.
func (p *Params) Bytes() int { return 8 * p.NumFloats() }

// L2Distance returns the Euclidean distance between two compatible parameter
// sets (used by FedProx's proximal term diagnostics and tests).
func (p *Params) L2Distance(q *Params) (float64, error) {
	if err := p.compatible(q); err != nil {
		return 0, err
	}
	var s float64
	for _, n := range p.names {
		d := mat.Sub(p.vals[n], q.vals[n])
		s += mat.FrobNormSq(d)
	}
	return math.Sqrt(s), nil
}

// Compatible reports whether q has the same parameter names, order, and
// shapes as p (nil when it does) — the precondition for CopyFrom, AXPY, and
// Average. The federated runtime uses it to screen a client's upload before
// aggregation so one malformed parameter set fails that client, not the
// whole round.
func (p *Params) Compatible(q *Params) error { return p.compatible(q) }

func (p *Params) compatible(q *Params) error {
	if len(p.names) != len(q.names) {
		return fmt.Errorf("nn: parameter sets differ in length %d vs %d", len(p.names), len(q.names))
	}
	for i, n := range p.names {
		if q.names[i] != n {
			return fmt.Errorf("nn: parameter name mismatch at %d: %q vs %q", i, n, q.names[i])
		}
		a, b := p.vals[n], q.vals[n]
		if a.Rows() != b.Rows() || a.Cols() != b.Cols() {
			return fmt.Errorf("nn: parameter %q shape mismatch %dx%d vs %dx%d", n, a.Rows(), a.Cols(), b.Rows(), b.Cols())
		}
	}
	return nil
}

// Average computes the FedAvg aggregate Σ λ_i·sets[i] with weights λ
// normalised to sum to 1 (eq. 2 / Algorithm 1 line 27). Weights are
// typically client sample counts. It returns a fresh parameter set.
func Average(sets []*Params, weights []float64) (*Params, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("nn: Average of no parameter sets")
	}
	if len(weights) != len(sets) {
		return nil, fmt.Errorf("nn: %d weights for %d sets", len(weights), len(sets))
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("nn: negative aggregation weight %v", w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("nn: aggregation weights sum to zero")
	}
	out := sets[0].Clone()
	out.Scale(weights[0] / total)
	for i := 1; i < len(sets); i++ {
		if err := out.AXPY(weights[i]/total, sets[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}
