// Package sparse implements compressed sparse row (CSR) matrices and the
// kernels graph convolutions need: parallel sparse×dense multiplication and
// the symmetric GCN normalisation D^{-1/2}(A+I)D^{-1/2}.
package sparse

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"fedomd/internal/mat"
	"fedomd/internal/telemetry"
)

// Process-global telemetry: SpMM kernel invocations and their floating-point
// work (one multiply-add per stored entry per output column, counted as
// 2 FLOPs). One atomic add per kernel call — not per entry — so the cost is
// invisible next to the multiply itself.
var (
	spmmCalls = telemetry.NewCounter("sparse/spmm_calls")
	spmmFlops = telemetry.NewCounter("sparse/spmm_flops")
)

// CSR is a compressed-sparse-row matrix of float64.
type CSR struct {
	rows, cols int
	rowPtr     []int     // len rows+1
	colIdx     []int     // len nnz
	vals       []float64 // len nnz
}

// Coord is a single (row, col, value) entry used when assembling a CSR
// matrix from coordinate (COO) form.
type Coord struct {
	Row, Col int
	Val      float64
}

// NewCSR assembles a rows×cols CSR matrix from coordinate entries. Duplicate
// (row, col) pairs are summed. Entries out of range yield an error.
func NewCSR(rows, cols int, entries []Coord) (*CSR, error) {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range for %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	sorted := make([]Coord, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(sorted); {
		j := i
		v := 0.0
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		m.colIdx = append(m.colIdx, sorted[i].Col)
		m.vals = append(m.vals, v)
		m.rowPtr[sorted[i].Row+1]++
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m, nil
}

// Identity returns the n×n identity in CSR form.
func Identity(n int) *CSR {
	m := &CSR{rows: n, cols: n, rowPtr: make([]int, n+1), colIdx: make([]int, n), vals: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.rowPtr[i+1] = i + 1
		m.colIdx[i] = i
		m.vals[i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the element at (i, j); zero if not stored. O(log row-nnz).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.vals[k]
	}
	return 0
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.rowPtr[i+1] - m.rowPtr[i] }

// RowEntries calls f for each stored (col, val) in row i.
func (m *CSR) RowEntries(i int, f func(col int, val float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		f(m.colIdx[k], m.vals[k])
	}
}

// ToDense materialises m as a dense matrix (for tests and small problems).
func (m *CSR) ToDense() *mat.Dense {
	d := mat.New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			d.Set(i, m.colIdx[k], m.vals[k])
		}
	}
	return d
}

// MulDense returns m·x for a dense x, sharding rows across goroutines.
// It panics if m.Cols() != x.Rows().
func (m *CSR) MulDense(x *mat.Dense) *mat.Dense {
	out := mat.New(m.rows, x.Cols())
	m.MulDenseInto(out, x)
	return out
}

// MulDenseInto computes out = m·x into caller-owned storage (typically a
// pooled buffer). out must be m.Rows()×x.Cols() and must not alias x.
func (m *CSR) MulDenseInto(out, x *mat.Dense) {
	if m.cols != x.Rows() {
		panic(fmt.Sprintf("sparse: MulDense dimension mismatch %dx%d · %dx%d", m.rows, m.cols, x.Rows(), x.Cols()))
	}
	if out.Rows() != m.rows || out.Cols() != x.Cols() {
		panic(fmt.Sprintf("sparse: MulDenseInto output %dx%d, want %dx%d", out.Rows(), out.Cols(), m.rows, x.Cols()))
	}
	spmmCalls.Add(1)
	spmmFlops.Add(2 * int64(m.NNZ()) * int64(x.Cols()))
	out.Zero()
	nw := runtime.GOMAXPROCS(0)
	if m.NNZ()*x.Cols() < 1<<15 || nw == 1 {
		m.mulDenseRange(out, x, 0, m.rows)
		return
	}
	if nw > m.rows {
		nw = m.rows
	}
	var wg sync.WaitGroup
	chunk := (m.rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.rows {
			hi = m.rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulDenseRange(out, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (m *CSR) mulDenseRange(out, x *mat.Dense, lo, hi int) {
	c := x.Cols()
	xd := x.Data()
	od := out.Data()
	for i := lo; i < hi; i++ {
		orow := od[i*c : (i+1)*c]
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			v := m.vals[k]
			xrow := xd[m.colIdx[k]*c : (m.colIdx[k]+1)*c]
			for j, xv := range xrow {
				orow[j] += v * xv
			}
		}
	}
}

// TMulDense returns mᵀ·x without materialising the transpose. Column writes
// from different rows collide, so the kernel runs serially and stays
// deterministic.
func (m *CSR) TMulDense(x *mat.Dense) *mat.Dense {
	out := mat.New(m.cols, x.Cols())
	m.tMulDenseAccum(out, x)
	return out
}

// TMulDenseInto computes out = mᵀ·x into caller-owned storage. out must be
// m.Cols()×x.Cols() and must not alias x.
func (m *CSR) TMulDenseInto(out, x *mat.Dense) {
	out.Zero()
	m.tMulDenseAccum(out, x)
}

// TMulDenseAddInto computes out += mᵀ·x — the fused accumulation the SpMM
// backward pass uses to land ∂L/∂X directly in the gradient buffer.
func (m *CSR) TMulDenseAddInto(out, x *mat.Dense) {
	m.tMulDenseAccum(out, x)
}

func (m *CSR) tMulDenseAccum(out, x *mat.Dense) {
	if m.rows != x.Rows() {
		panic(fmt.Sprintf("sparse: TMulDense dimension mismatch %dx%dᵀ · %dx%d", m.rows, m.cols, x.Rows(), x.Cols()))
	}
	c := x.Cols()
	if out.Rows() != m.cols || out.Cols() != c {
		panic(fmt.Sprintf("sparse: TMulDense output %dx%d, want %dx%d", out.Rows(), out.Cols(), m.cols, c))
	}
	spmmCalls.Add(1)
	spmmFlops.Add(2 * int64(m.NNZ()) * int64(c))
	od := out.Data()
	xd := x.Data()
	for i := 0; i < m.rows; i++ {
		xrow := xd[i*c : (i+1)*c]
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			v := m.vals[k]
			orow := od[m.colIdx[k]*c : (m.colIdx[k]+1)*c]
			for j, xv := range xrow {
				orow[j] += v * xv
			}
		}
	}
}

// Transpose returns mᵀ as a new CSR matrix.
func (m *CSR) Transpose() *CSR {
	entries := make([]Coord, 0, m.NNZ())
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			entries = append(entries, Coord{Row: m.colIdx[k], Col: i, Val: m.vals[k]})
		}
	}
	t, err := NewCSR(m.cols, m.rows, entries)
	if err != nil {
		panic("sparse: internal transpose error: " + err.Error())
	}
	return t
}

// IsSymmetric reports whether m equals its transpose within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			if math.Abs(m.vals[k]-m.At(m.colIdx[k], i)) > tol {
				return false
			}
		}
	}
	return true
}

// GCNNormalize builds the renormalised propagation operator of Kipf & Welling
//
//	S̃ = D^{-1/2} (A + I) D^{-1/2},  D_ii = Σ_j (A+I)_ij
//
// from a square adjacency matrix A (§4.1 / eq. 7). Rows whose degree is zero
// after self-loop insertion cannot occur (the self loop guarantees ≥1).
func GCNNormalize(a *CSR) (*CSR, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("sparse: GCNNormalize requires square adjacency, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	entries := make([]Coord, 0, a.NNZ()+n)
	for i := 0; i < n; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			entries = append(entries, Coord{Row: i, Col: a.colIdx[k], Val: a.vals[k]})
		}
		entries = append(entries, Coord{Row: i, Col: i, Val: 1})
	}
	withLoops, err := NewCSR(n, n, entries)
	if err != nil {
		return nil, err
	}
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		var d float64
		withLoops.RowEntries(i, func(_ int, v float64) { d += v })
		deg[i] = d
	}
	for i := 0; i < n; i++ {
		di := 1 / math.Sqrt(deg[i])
		for k := withLoops.rowPtr[i]; k < withLoops.rowPtr[i+1]; k++ {
			j := withLoops.colIdx[k]
			withLoops.vals[k] *= di / math.Sqrt(deg[j])
		}
	}
	return withLoops, nil
}

// RowSumNormalize returns D^{-1}A (mean aggregation, used by the
// GraphSAGE-style convolution in the FedSage+ baseline). Zero-degree rows are
// left as zero rows.
func RowSumNormalize(a *CSR) *CSR {
	out := &CSR{
		rows:   a.rows,
		cols:   a.cols,
		rowPtr: append([]int(nil), a.rowPtr...),
		colIdx: append([]int(nil), a.colIdx...),
		vals:   append([]float64(nil), a.vals...),
	}
	for i := 0; i < a.rows; i++ {
		var d float64
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			d += a.vals[k]
		}
		if d == 0 {
			continue
		}
		for k := out.rowPtr[i]; k < out.rowPtr[i+1]; k++ {
			out.vals[k] /= d
		}
	}
	return out
}
