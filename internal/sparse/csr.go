// Package sparse implements compressed sparse row (CSR) matrices and the
// kernels graph convolutions need: parallel sparse×dense multiplication and
// the symmetric GCN normalisation D^{-1/2}(A+I)D^{-1/2}.
//
// A CSR value may be a *shard*: a row-range view created by Shard(lo, hi)
// that shares colIdx/vals with its parent and keeps absolute offsets in its
// rowPtr window (rowPtr[0] is the parent offset of the shard's first entry,
// not necessarily 0). Every method indexes colIdx/vals through rowPtr, so
// shards and whole matrices run the same code; anything that walks "all
// entries" must walk the [rowPtr[0], rowPtr[rows]) window, never the full
// backing arrays.
package sparse

import (
	"fmt"
	"math"
	"sort"

	"fedomd/internal/mat"
	"fedomd/internal/telemetry"
)

// Process-global telemetry: SpMM kernel invocations and their floating-point
// work (one multiply-add per stored entry per output column, counted as
// 2 FLOPs). One atomic add per kernel call — not per entry — so the cost is
// invisible next to the multiply itself.
var (
	spmmCalls = telemetry.NewCounter("sparse/spmm_calls")
	spmmFlops = telemetry.NewCounter("sparse/spmm_flops")
)

// CSR is a compressed-sparse-row matrix of float64, or a row-range shard of
// one (see the package comment for the shard invariants).
type CSR struct {
	rows, cols int
	rowPtr     []int     // len rows+1; absolute offsets into colIdx/vals
	colIdx     []int     // shared with parent for shards
	vals       []float64 // shared with parent for shards
}

// Coord is a single (row, col, value) entry used when assembling a CSR
// matrix from coordinate (COO) form.
type Coord struct {
	Row, Col int
	Val      float64
}

// NewCSR assembles a rows×cols CSR matrix from coordinate entries in
// O(nnz + rows + cols) time: two stable counting-sort passes (by column,
// then by row) order the entries by (row, col) without comparisons, and a
// final merge sums duplicates. Entries out of range yield an error.
func NewCSR(rows, cols int, entries []Coord) (*CSR, error) {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("sparse: entry (%d,%d) out of range for %dx%d", e.Row, e.Col, rows, cols)
		}
	}
	nnz := len(entries)
	m := &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	if nnz == 0 {
		return m, nil
	}

	// Stable counting sort by column: perm lists entry indices in ascending
	// column order (ties in input order).
	colCnt := make([]int, cols+1)
	for _, e := range entries {
		colCnt[e.Col+1]++
	}
	for c := 0; c < cols; c++ {
		colCnt[c+1] += colCnt[c]
	}
	perm := make([]int, nnz)
	for idx, e := range entries {
		perm[colCnt[e.Col]] = idx
		colCnt[e.Col]++
	}

	// Stable counting sort by row over the column-ordered permutation:
	// byRow lists entry indices in (row, col) order, duplicates adjacent.
	rowCnt := make([]int, rows+1)
	for _, e := range entries {
		rowCnt[e.Row+1]++
	}
	for r := 0; r < rows; r++ {
		rowCnt[r+1] += rowCnt[r]
	}
	byRow := make([]int, nnz)
	for _, idx := range perm {
		r := entries[idx].Row
		byRow[rowCnt[r]] = idx
		rowCnt[r]++
	}

	// Merge duplicates and build the row pointers.
	m.colIdx = make([]int, 0, nnz)
	m.vals = make([]float64, 0, nnz)
	lastRow, lastCol := -1, -1
	for _, idx := range byRow {
		e := entries[idx]
		if e.Row == lastRow && e.Col == lastCol {
			m.vals[len(m.vals)-1] += e.Val
			continue
		}
		m.colIdx = append(m.colIdx, e.Col)
		m.vals = append(m.vals, e.Val)
		m.rowPtr[e.Row+1]++
		lastRow, lastCol = e.Row, e.Col
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m, nil
}

// NewCSRFromParts adopts pre-assembled CSR arrays without copying — the
// O(nnz) streaming builders (dataset.GenerateStream) construct rowPtr/
// colIdx/vals directly and hand them over here. The invariants are checked
// in O(nnz): rowPtr monotone spanning [0, len(colIdx)], columns in range and
// strictly ascending within each row (at most one stored value per cell,
// binary-searchable). The caller must not retain or mutate the slices.
func NewCSRFromParts(rows, cols int, rowPtr, colIdx []int, vals []float64) (*CSR, error) {
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("sparse: rowPtr length %d, want %d", len(rowPtr), rows+1)
	}
	if len(colIdx) != len(vals) {
		return nil, fmt.Errorf("sparse: colIdx length %d != vals length %d", len(colIdx), len(vals))
	}
	if rowPtr[0] != 0 || rowPtr[rows] != len(colIdx) {
		return nil, fmt.Errorf("sparse: rowPtr span [%d,%d], want [0,%d]", rowPtr[0], rowPtr[rows], len(colIdx))
	}
	for r := 0; r < rows; r++ {
		if rowPtr[r+1] < rowPtr[r] {
			return nil, fmt.Errorf("sparse: rowPtr decreases at row %d", r)
		}
		last := -1
		for k := rowPtr[r]; k < rowPtr[r+1]; k++ {
			c := colIdx[k]
			if c < 0 || c >= cols {
				return nil, fmt.Errorf("sparse: column %d out of range at row %d", c, r)
			}
			if c <= last {
				return nil, fmt.Errorf("sparse: columns not strictly ascending in row %d", r)
			}
			last = c
		}
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}, nil
}

// Identity returns the n×n identity in CSR form.
func Identity(n int) *CSR {
	m := &CSR{rows: n, cols: n, rowPtr: make([]int, n+1), colIdx: make([]int, n), vals: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.rowPtr[i+1] = i + 1
		m.colIdx[i] = i
		m.vals[i] = 1
	}
	return m
}

// Shard returns a view of rows [lo, hi) sharing the backing colIdx/vals
// arrays with m — no copying, so per-client subgraph operators and SpMM
// tiles can be carved out of a million-node matrix for free. The shard's
// column space is unchanged. Mutating kernels (RowSumNormalize etc.) copy
// before writing; the view itself never writes through to the parent.
func (m *CSR) Shard(lo, hi int) *CSR {
	if lo < 0 || hi > m.rows || lo > hi {
		panic(fmt.Sprintf("sparse: Shard range [%d,%d) out of bounds for %d rows", lo, hi, m.rows))
	}
	return &CSR{rows: hi - lo, cols: m.cols, rowPtr: m.rowPtr[lo : hi+1], colIdx: m.colIdx, vals: m.vals}
}

// ScaleVals multiplies every stored value of m by alpha in place — the cheap
// way to apply a global edge-weight factor (e.g. a damping or temperature
// term) without rebuilding the matrix. Because Shard views share the parent's
// vals array, calling ScaleVals on a shard writes the parent's window, and
// calling it on the parent silently rescales every outstanding shard; the
// shardalias vet check rejects both. Scale before carving shards, or rebuild.
func (m *CSR) ScaleVals(alpha float64) {
	for k := m.rowPtr[0]; k < m.rowPtr[m.rows]; k++ {
		m.vals[k] *= alpha
	}
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries (of the shard window, for a
// shard view).
func (m *CSR) NNZ() int { return m.rowPtr[m.rows] - m.rowPtr[0] }

// At returns the element at (i, j); zero if not stored. O(log row-nnz).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.vals[k]
	}
	return 0
}

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.rowPtr[i+1] - m.rowPtr[i] }

// RowEntries calls f for each stored (col, val) in row i.
func (m *CSR) RowEntries(i int, f func(col int, val float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		f(m.colIdx[k], m.vals[k])
	}
}

// ToDense materialises m as a dense matrix (for tests and small problems).
func (m *CSR) ToDense() *mat.Dense {
	d := mat.New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			d.Set(i, m.colIdx[k], m.vals[k])
		}
	}
	return d
}

// spmmColBlock bounds the column width one SpMM pass touches, so the gather
// rows of x stay cache-resident for wide feature matrices. A multiple of 4
// keeps the AVX axpy on the aligned fast path for full blocks.
const spmmColBlock = 256

// spmmSerialWork is the multiply-add count below which SpMM stays serial.
const spmmSerialWork = 1 << 15

// MulDense returns m·x for a dense x, sharding rows over the shared worker
// pool. It panics if m.Cols() != x.Rows().
func (m *CSR) MulDense(x *mat.Dense) *mat.Dense {
	out := mat.New(m.rows, x.Cols())
	m.MulDenseInto(out, x)
	return out
}

// MulDenseInto computes out = m·x into caller-owned storage (typically a
// pooled buffer). out must be m.Rows()×x.Cols() and must not alias x. The
// zeroing of out is folded into the kernel's first column pass.
func (m *CSR) MulDenseInto(out, x *mat.Dense) {
	m.mulDenseDispatch(out, x, false)
}

// MulDenseAddInto computes out += m·x — fused accumulation for callers that
// combine propagation with an existing buffer. Shape rules match
// MulDenseInto.
func (m *CSR) MulDenseAddInto(out, x *mat.Dense) {
	m.mulDenseDispatch(out, x, true)
}

func (m *CSR) mulDenseDispatch(out, x *mat.Dense, accum bool) {
	if m.cols != x.Rows() {
		panic(fmt.Sprintf("sparse: MulDense dimension mismatch %dx%d · %dx%d", m.rows, m.cols, x.Rows(), x.Cols()))
	}
	if out.Rows() != m.rows || out.Cols() != x.Cols() {
		panic(fmt.Sprintf("sparse: MulDenseInto output %dx%d, want %dx%d", out.Rows(), out.Cols(), m.rows, x.Cols()))
	}
	spmmCalls.Add(1)
	spmmFlops.Add(2 * int64(m.NNZ()) * int64(x.Cols()))
	work := m.NNZ() * x.Cols()
	if work < spmmSerialWork {
		m.mulDenseRange(out, x, 0, m.rows, accum)
		return
	}
	// Grain: enough rows that one chunk covers ~spmmSerialWork multiply-adds
	// at the mean row density. Determinism does not depend on the grain (each
	// output row is written by exactly one body call, with a fixed k order).
	rowWork := work/m.rows + 1
	grain := spmmSerialWork / rowWork
	if grain < 1 {
		grain = 1
	}
	mat.ParallelFor(m.rows, grain, func(lo, hi int) {
		m.mulDenseRange(out, x, lo, hi, accum)
	})
}

// mulDenseRange computes rows [lo, hi) of out (+)= m·x, column-blocked so
// the randomly gathered rows of x stay within a cache-sized window.
func (m *CSR) mulDenseRange(out, x *mat.Dense, lo, hi int, accum bool) {
	c := x.Cols()
	xd := x.Data()
	od := out.Data()
	for j0 := 0; j0 < c; j0 += spmmColBlock {
		j1 := j0 + spmmColBlock
		if j1 > c {
			j1 = c
		}
		for i := lo; i < hi; i++ {
			orow := od[i*c+j0 : i*c+j1]
			if !accum {
				for j := range orow {
					orow[j] = 0
				}
			}
			for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
				col := m.colIdx[k]
				mat.AXPYRow(orow, m.vals[k], xd[col*c+j0:col*c+j1])
			}
		}
	}
}

// tmulStripeWork is the multiply-add count one transposed-SpMM stripe aims
// for; below 2× this the kernel stays serial (the partial buffers would cost
// more than they save).
const tmulStripeWork = 1 << 20

// tmulMaxStripes caps the partial-buffer memory at a handful of dense
// outputs.
const tmulMaxStripes = 8

// tMulStripes picks the stripe count for the parallel transposed SpMM. It
// is a pure function of the matrix shape and x's width — never of the
// worker count — which is what makes the parallel kernel's output
// bit-identical across pool configurations.
func (m *CSR) tMulStripes(c int) int {
	s := m.NNZ() * c / tmulStripeWork
	if s < 2 {
		return 1
	}
	if s > tmulMaxStripes {
		return tmulMaxStripes
	}
	return s
}

// TMulDense returns mᵀ·x without materialising the transpose.
func (m *CSR) TMulDense(x *mat.Dense) *mat.Dense {
	out := mat.New(m.cols, x.Cols())
	m.tMulDenseAccum(out, x)
	return out
}

// TMulDenseInto computes out = mᵀ·x into caller-owned storage. out must be
// m.Cols()×x.Cols() and must not alias x.
func (m *CSR) TMulDenseInto(out, x *mat.Dense) {
	out.Zero()
	m.tMulDenseAccum(out, x)
}

// TMulDenseAddInto computes out += mᵀ·x — the fused accumulation the SpMM
// backward pass uses to land ∂L/∂X directly in the gradient buffer.
func (m *CSR) TMulDenseAddInto(out, x *mat.Dense) {
	m.tMulDenseAccum(out, x)
}

// tMulDenseAccum computes out += mᵀ·x. Transposed SpMM scatters into output
// rows selected by column index, so row sharding would race. Above the
// serial threshold the kernel splits m's rows into a shape-determined number
// of equal-nnz stripes, accumulates each stripe into a pooled partial
// buffer, and reduces the partials into out in fixed stripe order — the
// documented recipe for deterministic parallel scatter (ISSUE 7): every
// output cell sees the same additions in the same order for every worker
// count, including 1.
func (m *CSR) tMulDenseAccum(out, x *mat.Dense) {
	if m.rows != x.Rows() {
		panic(fmt.Sprintf("sparse: TMulDense dimension mismatch %dx%dᵀ · %dx%d", m.rows, m.cols, x.Rows(), x.Cols()))
	}
	c := x.Cols()
	if out.Rows() != m.cols || out.Cols() != c {
		panic(fmt.Sprintf("sparse: TMulDense output %dx%d, want %dx%d", out.Rows(), out.Cols(), m.cols, c))
	}
	spmmCalls.Add(1)
	spmmFlops.Add(2 * int64(m.NNZ()) * int64(c))
	s := m.tMulStripes(c)
	if s == 1 {
		m.tMulRange(out, x, 0, m.rows)
		return
	}

	// Equal-nnz stripe boundaries in row space, derived from rowPtr alone.
	bounds := make([]int, s+1)
	base, nnz := m.rowPtr[0], m.NNZ()
	bounds[s] = m.rows
	for st := 1; st < s; st++ {
		target := base + nnz*st/s
		bounds[st] = sort.SearchInts(m.rowPtr[:m.rows+1], target)
		if bounds[st] > m.rows {
			bounds[st] = m.rows
		}
	}
	sort.Ints(bounds) // guard monotonicity on pathological rowPtr plateaus

	partials := make([]*mat.Dense, s)
	mat.ParallelFor(s, 1, func(lo, hi int) {
		for st := lo; st < hi; st++ {
			buf := mat.GetDense(m.cols, c)
			buf.Zero()
			m.tMulRange(buf, x, bounds[st], bounds[st+1])
			partials[st] = buf
		}
	})

	// Deterministic reduction: out rows are disjoint across chunks and each
	// cell accumulates partials in ascending stripe order.
	od := out.Data()
	grain := tmulStripeWork/(s*c) + 1
	mat.ParallelFor(m.cols, grain, func(lo, hi int) {
		for st := 0; st < s; st++ {
			pd := partials[st].Data()
			for r := lo; r < hi; r++ {
				orow := od[r*c : (r+1)*c]
				prow := pd[r*c : (r+1)*c]
				for j := range orow {
					orow[j] += prow[j]
				}
			}
		}
	})
	for _, buf := range partials {
		mat.PutDense(buf)
	}
}

// tMulRange accumulates rows [lo, hi) of m into out += m[lo:hi]ᵀ·x[lo:hi].
func (m *CSR) tMulRange(out, x *mat.Dense, lo, hi int) {
	c := x.Cols()
	od := out.Data()
	xd := x.Data()
	for i := lo; i < hi; i++ {
		xrow := xd[i*c : (i+1)*c]
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			col := m.colIdx[k]
			mat.AXPYRow(od[col*c:(col+1)*c], m.vals[k], xrow)
		}
	}
}

// Transpose returns mᵀ as a new CSR matrix, built directly with one
// counting pass over the shard window (O(nnz + cols), no coordinate
// round-trip or re-sort).
func (m *CSR) Transpose() *CSR {
	nnz := m.NNZ()
	t := &CSR{rows: m.cols, cols: m.rows, rowPtr: make([]int, m.cols+1), colIdx: make([]int, nnz), vals: make([]float64, nnz)}
	lo, hi := m.rowPtr[0], m.rowPtr[m.rows]
	for k := lo; k < hi; k++ {
		t.rowPtr[m.colIdx[k]+1]++
	}
	for c := 0; c < m.cols; c++ {
		t.rowPtr[c+1] += t.rowPtr[c]
	}
	cursor := make([]int, m.cols)
	copy(cursor, t.rowPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			c := m.colIdx[k]
			pos := cursor[c]
			cursor[c]++
			t.colIdx[pos] = i
			t.vals[pos] = m.vals[k]
		}
	}
	return t
}

// IsSymmetric reports whether m equals its transpose within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			if math.Abs(m.vals[k]-m.At(m.colIdx[k], i)) > tol {
				return false
			}
		}
	}
	return true
}

// GCNNormalize builds the renormalised propagation operator of Kipf & Welling
//
//	S̃ = D^{-1/2} (A + I) D^{-1/2},  D_ii = Σ_j (A+I)_ij
//
// from a square adjacency matrix A (§4.1 / eq. 7) in one linear pass: each
// output row is A's row with the unit self-loop merged into its sorted
// column position (added to an existing diagonal entry if present), then
// scaled. Rows whose degree is zero after self-loop insertion cannot occur
// (the self loop guarantees ≥1).
func GCNNormalize(a *CSR) (*CSR, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("sparse: GCNNormalize requires square adjacency, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	out := &CSR{rows: n, cols: n, rowPtr: make([]int, n+1), colIdx: make([]int, 0, a.NNZ()+n), vals: make([]float64, 0, a.NNZ()+n)}
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		inserted := false
		var d float64
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			c, v := a.colIdx[k], a.vals[k]
			switch {
			case c == i:
				v++
				inserted = true
			case c > i && !inserted:
				out.colIdx = append(out.colIdx, i)
				out.vals = append(out.vals, 1)
				d++
				inserted = true
			}
			out.colIdx = append(out.colIdx, c)
			out.vals = append(out.vals, v)
			d += v
		}
		if !inserted {
			out.colIdx = append(out.colIdx, i)
			out.vals = append(out.vals, 1)
			d++
		}
		deg[i] = d
		out.rowPtr[i+1] = len(out.colIdx)
	}
	invSqrt := make([]float64, n)
	for i, d := range deg {
		invSqrt[i] = 1 / math.Sqrt(d)
	}
	for i := 0; i < n; i++ {
		di := invSqrt[i]
		for k := out.rowPtr[i]; k < out.rowPtr[i+1]; k++ {
			out.vals[k] *= di * invSqrt[out.colIdx[k]]
		}
	}
	return out, nil
}

// RowSumNormalize returns D^{-1}A (mean aggregation, used by the
// GraphSAGE-style convolution in the FedSage+ baseline). Zero-degree rows are
// left as zero rows. Works on shard views: only the shard window is copied,
// and the result is a compact zero-based matrix.
func RowSumNormalize(a *CSR) *CSR {
	base := a.rowPtr[0]
	out := &CSR{
		rows:   a.rows,
		cols:   a.cols,
		rowPtr: make([]int, a.rows+1),
		colIdx: append([]int(nil), a.colIdx[base:a.rowPtr[a.rows]]...),
		vals:   append([]float64(nil), a.vals[base:a.rowPtr[a.rows]]...),
	}
	for i := 0; i <= a.rows; i++ {
		out.rowPtr[i] = a.rowPtr[i] - base
	}
	for i := 0; i < a.rows; i++ {
		var d float64
		for k := out.rowPtr[i]; k < out.rowPtr[i+1]; k++ {
			d += out.vals[k]
		}
		if d == 0 {
			continue
		}
		for k := out.rowPtr[i]; k < out.rowPtr[i+1]; k++ {
			out.vals[k] /= d
		}
	}
	return out
}
