package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fedomd/internal/mat"
)

func mustCSR(t *testing.T, rows, cols int, entries []Coord) *CSR {
	t.Helper()
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	var entries []Coord
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				entries = append(entries, Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		panic(err)
	}
	return m
}

func TestNewCSRBasics(t *testing.T) {
	m := mustCSR(t, 3, 3, []Coord{{0, 1, 2}, {2, 0, 5}, {1, 1, -1}})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d", m.NNZ())
	}
	if m.At(0, 1) != 2 || m.At(2, 0) != 5 || m.At(1, 1) != -1 {
		t.Fatal("stored values wrong")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("missing entry not zero")
	}
}

func TestNewCSRDuplicatesSummed(t *testing.T) {
	m := mustCSR(t, 2, 2, []Coord{{0, 0, 1}, {0, 0, 2.5}})
	if m.At(0, 0) != 3.5 || m.NNZ() != 1 {
		t.Fatalf("duplicates not summed: %v nnz=%d", m.At(0, 0), m.NNZ())
	}
}

func TestNewCSROutOfRange(t *testing.T) {
	if _, err := NewCSR(2, 2, []Coord{{2, 0, 1}}); err == nil {
		t.Fatal("accepted out-of-range row")
	}
	if _, err := NewCSR(2, 2, []Coord{{0, -1, 1}}); err == nil {
		t.Fatal("accepted negative col")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	if !id.ToDense().Equal(mat.Eye(4)) {
		t.Fatal("Identity wrong")
	}
}

func TestMulDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{5, 7}, {40, 23}, {200, 64}} {
		a := randomCSR(rng, dims[0], dims[1], 0.15)
		x := mat.RandGaussian(rng, dims[1], 9, 0, 1)
		want := mat.MatMul(a.ToDense(), x)
		got := a.MulDense(x)
		if !got.EqualApprox(want, 1e-10) {
			t.Fatalf("MulDense disagrees for %v", dims)
		}
	}
}

func TestTMulDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomCSR(rng, 31, 17, 0.2)
	x := mat.RandGaussian(rng, 31, 5, 0, 1)
	want := mat.MatMul(a.ToDense().T(), x)
	got := a.TMulDense(x)
	if !got.EqualApprox(want, 1e-10) {
		t.Fatal("TMulDense disagrees with dense transpose multiply")
	}
}

func TestMulDenseShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dimension mismatch")
		}
	}()
	Identity(3).MulDense(mat.New(4, 2))
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(rng, 10, 14, 0.3)
	at := a.Transpose()
	if !at.ToDense().Equal(a.ToDense().T()) {
		t.Fatal("Transpose wrong")
	}
	if !a.Transpose().Transpose().ToDense().Equal(a.ToDense()) {
		t.Fatal("double transpose not identity")
	}
}

func TestIsSymmetric(t *testing.T) {
	sym := mustCSR(t, 3, 3, []Coord{{0, 1, 2}, {1, 0, 2}, {2, 2, 1}})
	if !sym.IsSymmetric(0) {
		t.Fatal("symmetric matrix not detected")
	}
	asym := mustCSR(t, 3, 3, []Coord{{0, 1, 2}})
	if asym.IsSymmetric(0) {
		t.Fatal("asymmetric matrix declared symmetric")
	}
	if mustCSR(t, 2, 3, nil).IsSymmetric(0) {
		t.Fatal("non-square declared symmetric")
	}
}

func TestGCNNormalizeKnown(t *testing.T) {
	// Path graph 0-1: A+I degrees are [2,2]; off-diagonals become 1/2.
	a := mustCSR(t, 2, 2, []Coord{{0, 1, 1}, {1, 0, 1}})
	s, err := GCNNormalize(a)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := mat.NewFromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	if !s.ToDense().EqualApprox(want, 1e-12) {
		t.Fatalf("GCNNormalize = %v", s.ToDense())
	}
}

func TestGCNNormalizeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Random symmetric 0/1 adjacency.
	n := 30
	var entries []Coord
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.1 {
				entries = append(entries, Coord{i, j, 1}, Coord{j, i, 1})
			}
		}
	}
	a := mustCSR(t, n, n, entries)
	s, err := GCNNormalize(a)
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsSymmetric(1e-12) {
		t.Fatal("normalised operator should be symmetric for symmetric A")
	}
	// Isolated nodes get only the self loop, normalised to exactly 1.
	// All values in (0, 1].
	for i := 0; i < n; i++ {
		s.RowEntries(i, func(_ int, v float64) {
			if v <= 0 || v > 1+1e-12 {
				t.Fatalf("normalised value %v outside (0,1]", v)
			}
		})
	}
	// Largest eigenvalue of S̃ is 1 (Perron); check via power iteration that
	// ‖S̃x‖ ≤ ‖x‖ holds for random x.
	x := mat.RandGaussian(rng, n, 1, 0, 1)
	for k := 0; k < 5; k++ {
		y := s.MulDense(x)
		if mat.FrobNorm(y) > mat.FrobNorm(x)+1e-9 {
			t.Fatal("GCN operator expanded a vector; spectral radius > 1")
		}
		x = y
	}
}

func TestGCNNormalizeRejectsNonSquare(t *testing.T) {
	if _, err := GCNNormalize(mustCSR(t, 2, 3, nil)); err == nil {
		t.Fatal("accepted non-square adjacency")
	}
}

func TestGCNNormalizeIsolatedNode(t *testing.T) {
	// Node 2 is isolated: its only entry after normalisation is S[2,2]=1.
	a := mustCSR(t, 3, 3, []Coord{{0, 1, 1}, {1, 0, 1}})
	s, err := GCNNormalize(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(2, 2) != 1 {
		t.Fatalf("isolated node self weight = %v want 1", s.At(2, 2))
	}
}

func TestRowSumNormalize(t *testing.T) {
	a := mustCSR(t, 3, 3, []Coord{{0, 1, 1}, {0, 2, 1}, {1, 0, 2}})
	nrm := RowSumNormalize(a)
	if nrm.At(0, 1) != 0.5 || nrm.At(0, 2) != 0.5 {
		t.Fatal("row 0 not mean-normalised")
	}
	if nrm.At(1, 0) != 1 {
		t.Fatal("row 1 not normalised")
	}
	// Zero row stays zero; original untouched.
	if nrm.RowNNZ(2) != 0 {
		t.Fatal("zero row gained entries")
	}
	if a.At(0, 1) != 1 {
		t.Fatal("RowSumNormalize mutated its input")
	}
}

func TestMulDenseLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 2+rng.Intn(20), 2+rng.Intn(20)
		a := randomCSR(rng, r, c, 0.25)
		x := mat.RandGaussian(rng, c, 3, 0, 1)
		y := mat.RandGaussian(rng, c, 3, 0, 1)
		left := a.MulDense(mat.Add(x, y))
		right := mat.Add(a.MulDense(x), a.MulDense(y))
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGCNRowStochasticOnRegularGraph(t *testing.T) {
	// Ring of n nodes: every node has degree 2, so D^{-1/2}(A+I)D^{-1/2} rows
	// sum to exactly 1.
	n := 12
	var entries []Coord
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		entries = append(entries, Coord{i, j, 1}, Coord{j, i, 1})
	}
	a := mustCSR(t, n, n, entries)
	s, err := GCNNormalize(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		var sum float64
		s.RowEntries(i, func(_ int, v float64) { sum += v })
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v on a regular graph", i, sum)
		}
	}
}
