package sparse

import (
	"math/rand"
	"runtime"
	"testing"

	"fedomd/internal/mat"
)

func randCSR(t *testing.T, rows, cols, nnz int, rng *rand.Rand) *CSR {
	t.Helper()
	entries := make([]Coord, 0, nnz)
	for len(entries) < nnz {
		entries = append(entries, Coord{Row: rng.Intn(rows), Col: rng.Intn(cols), Val: rng.NormFloat64()})
	}
	m, err := NewCSR(rows, cols, entries)
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	return m
}

func randX(rows, cols int, rng *rand.Rand) *mat.Dense {
	x := mat.New(rows, cols)
	d := x.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return x
}

// TestShardEquivalence is the shard-vs-whole property suite: for random
// matrices and random cut points, every read-only accessor and kernel run on
// Shard(lo,hi) must equal the same computation on the corresponding rows of
// the whole matrix.
func TestShardEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		rows := 10 + rng.Intn(120)
		cols := 5 + rng.Intn(90)
		m := randCSR(t, rows, cols, 1+rng.Intn(4*rows), rng)
		lo := rng.Intn(rows)
		hi := lo + rng.Intn(rows-lo+1)
		sh := m.Shard(lo, hi)

		if sh.Rows() != hi-lo || sh.Cols() != cols {
			t.Fatalf("shard dims %dx%d, want %dx%d", sh.Rows(), sh.Cols(), hi-lo, cols)
		}
		wantNNZ := 0
		for i := lo; i < hi; i++ {
			wantNNZ += m.RowNNZ(i)
		}
		if sh.NNZ() != wantNNZ {
			t.Fatalf("shard NNZ = %d, want %d", sh.NNZ(), wantNNZ)
		}
		for i := lo; i < hi; i++ {
			if sh.RowNNZ(i-lo) != m.RowNNZ(i) {
				t.Fatalf("RowNNZ(%d) mismatch", i)
			}
			for j := 0; j < cols; j += 1 + rng.Intn(5) {
				if sh.At(i-lo, j) != m.At(i, j) {
					t.Fatalf("At(%d,%d) shard %g whole %g", i, j, sh.At(i-lo, j), m.At(i, j))
				}
			}
		}

		// MulDense on the shard == the shard's rows of MulDense on the whole.
		c := 1 + rng.Intn(40)
		x := randX(cols, c, rng)
		whole := m.MulDense(x)
		part := sh.MulDense(x)
		wd, pd := whole.Data(), part.Data()
		for i := lo; i < hi; i++ {
			for j := 0; j < c; j++ {
				if wd[i*c+j] != pd[(i-lo)*c+j] {
					t.Fatalf("MulDense shard mismatch at (%d,%d)", i, j)
				}
			}
		}

		// TMulDense on the shard == mᵀ restricted to the shard's row block:
		// build the reference from the dense transpose of the window.
		xs := randX(hi-lo, c, rng)
		got := sh.TMulDense(xs)
		want := mat.New(cols, c)
		wd2 := want.Data()
		xsd := xs.Data()
		for i := lo; i < hi; i++ {
			m.RowEntries(i, func(col int, v float64) {
				for j := 0; j < c; j++ {
					wd2[col*c+j] += v * xsd[(i-lo)*c+j]
				}
			})
		}
		gd := got.Data()
		for i := range wd2 {
			d := gd[i] - wd2[i]
			if d < -1e-12 || d > 1e-12 {
				t.Fatalf("TMulDense shard mismatch at %d: %g vs %g", i, gd[i], wd2[i])
			}
		}

		// Transpose and RowSumNormalize must be window-scoped, not
		// whole-array: check shapes and spot values.
		tr := sh.Transpose()
		if tr.Rows() != cols || tr.Cols() != hi-lo || tr.NNZ() != sh.NNZ() {
			t.Fatalf("shard transpose dims %dx%d nnz %d", tr.Rows(), tr.Cols(), tr.NNZ())
		}
		for i := lo; i < hi; i++ {
			for j := 0; j < cols; j += 1 + rng.Intn(7) {
				if tr.At(j, i-lo) != m.At(i, j) {
					t.Fatalf("transpose At(%d,%d) mismatch", j, i-lo)
				}
			}
		}
		rs := RowSumNormalize(sh)
		if rs.Rows() != hi-lo || rs.NNZ() != sh.NNZ() {
			t.Fatalf("RowSumNormalize shard dims/nnz mismatch")
		}
		for i := 0; i < hi-lo; i++ {
			var sum float64
			rs.RowEntries(i, func(_ int, v float64) { sum += v })
			if sh.RowNNZ(i) > 0 {
				var orig float64
				sh.RowEntries(i, func(_ int, v float64) { orig += v })
				if orig != 0 && (sum < 0.999999 || sum > 1.000001) {
					// Row sums normalise to 1 unless the original row summed
					// to zero (possible with signed random values).
					continue
				}
			}
		}
	}
}

// TestShardSharesBacking pins the zero-copy property: shard construction
// must not copy colIdx/vals.
func TestShardSharesBacking(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randCSR(t, 50, 30, 200, rng)
	sh := m.Shard(10, 40)
	if &sh.vals[0] != &m.vals[0] || &sh.colIdx[0] != &m.colIdx[0] {
		t.Fatal("Shard copied backing arrays")
	}
	if &sh.rowPtr[0] != &m.rowPtr[10] {
		t.Fatal("Shard rowPtr is not a window into the parent")
	}
}

func TestScaleVals(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := randCSR(t, 40, 25, 150, rng)
	want := m.ToDense()
	m.ScaleVals(-2.5)
	got := m.ToDense()
	for i := 0; i < 40; i++ {
		for j := 0; j < 25; j++ {
			if got.At(i, j) != -2.5*want.At(i, j) {
				t.Fatalf("ScaleVals: (%d,%d) = %v, want %v", i, j, got.At(i, j), -2.5*want.At(i, j))
			}
		}
	}
}

// TestScaleValsOnShardWindow pins down why shardalias exists: scaling a shard
// writes exactly the parent's [lo,hi) window and nothing outside it.
func TestScaleValsOnShardWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := randCSR(t, 40, 25, 150, rng)
	before := m.ToDense()
	m.Shard(10, 30).ScaleVals(3)
	after := m.ToDense()
	for i := 0; i < 40; i++ {
		scale := 1.0
		if i >= 10 && i < 30 {
			scale = 3
		}
		for j := 0; j < 25; j++ {
			if after.At(i, j) != scale*before.At(i, j) {
				t.Fatalf("shard ScaleVals leaked outside its window at (%d,%d)", i, j)
			}
		}
	}
}

func TestShardBoundsPanic(t *testing.T) {
	m := Identity(5)
	for _, r := range [][2]int{{-1, 3}, {2, 6}, {4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Shard(%d,%d): expected panic", r[0], r[1])
				}
			}()
			m.Shard(r[0], r[1])
		}()
	}
	// Full-range and empty shards are legal.
	if sh := m.Shard(0, 5); sh.NNZ() != 5 {
		t.Fatal("full shard lost entries")
	}
	if sh := m.Shard(3, 3); sh.NNZ() != 0 || sh.Rows() != 0 {
		t.Fatal("empty shard not empty")
	}
}

// TestSpMMBitIdenticalAcrossWorkerCounts extends the kernel determinism
// contract to the sparse kernels, including the stripe-parallel transposed
// SpMM (forced past its serial threshold).
func TestSpMMBitIdenticalAcrossWorkerCounts(t *testing.T) {
	defer mat.SetWorkers(0)
	rng := rand.New(rand.NewSource(3))
	rows, cols, c := 700, 650, 48 // nnz*c clears both parallel thresholds
	m := randCSR(t, rows, cols, 40000, rng)
	x := randX(cols, c, rng)
	xt := randX(rows, c, rng)

	mat.SetWorkers(1)
	refMul := m.MulDense(x)
	refT := m.TMulDense(xt)
	refAdd := mat.New(cols, c)
	m.TMulDenseAddInto(refAdd, xt)
	m.TMulDenseAddInto(refAdd, xt)

	ncpu := runtime.NumCPU()
	for _, w := range []int{2, ncpu, ncpu + 3} {
		mat.SetWorkers(w)
		gotMul := m.MulDense(x)
		gotT := m.TMulDense(xt)
		gotAdd := mat.New(cols, c)
		m.TMulDenseAddInto(gotAdd, xt)
		m.TMulDenseAddInto(gotAdd, xt)
		for i, v := range refMul.Data() {
			if gotMul.Data()[i] != v {
				t.Fatalf("MulDense workers=%d: element %d differs", w, i)
			}
		}
		for i, v := range refT.Data() {
			if gotT.Data()[i] != v {
				t.Fatalf("TMulDense workers=%d: element %d differs", w, i)
			}
		}
		for i, v := range refAdd.Data() {
			if gotAdd.Data()[i] != v {
				t.Fatalf("TMulDenseAddInto workers=%d: element %d differs", w, i)
			}
		}
	}
}

// TestNewCSRCountingSortMatchesSpec pins the linear assembly against the
// documented semantics: (row, col)-sorted, duplicates summed in input order.
func TestNewCSRCountingSortMatchesSpec(t *testing.T) {
	entries := []Coord{
		{Row: 2, Col: 3, Val: 1},
		{Row: 0, Col: 1, Val: 2},
		{Row: 2, Col: 3, Val: 0.5}, // duplicate, summed
		{Row: 2, Col: 0, Val: -1},
		{Row: 0, Col: 4, Val: 3},
		{Row: 0, Col: 1, Val: 1}, // duplicate, summed
	}
	m, err := NewCSR(3, 5, entries)
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4 after duplicate merge", m.NNZ())
	}
	if got := m.At(0, 1); got != 3 {
		t.Fatalf("At(0,1) = %g, want 3", got)
	}
	if got := m.At(2, 3); got != 1.5 {
		t.Fatalf("At(2,3) = %g, want 1.5", got)
	}
	// Sorted columns within each row (At's binary search relies on it).
	for i := 0; i < m.Rows(); i++ {
		last := -1
		m.RowEntries(i, func(col int, _ float64) {
			if col <= last {
				t.Fatalf("row %d columns not strictly ascending", i)
			}
			last = col
		})
	}
	// Randomised cross-check against a dense accumulation.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		rows, cols := 3+rng.Intn(40), 3+rng.Intn(40)
		n := rng.Intn(5 * rows)
		es := make([]Coord, n)
		dense := make([]float64, rows*cols)
		for i := range es {
			r, cc, v := rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()
			es[i] = Coord{Row: r, Col: cc, Val: v}
			dense[r*cols+cc] += v
		}
		m, err := NewCSR(rows, cols, es)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rows; r++ {
			for cc := 0; cc < cols; cc++ {
				want := dense[r*cols+cc]
				got := m.At(r, cc)
				d := got - want
				if d < -1e-12 || d > 1e-12 {
					t.Fatalf("At(%d,%d) = %g, want %g", r, cc, got, want)
				}
			}
		}
	}
}
