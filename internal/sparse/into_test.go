package sparse

import (
	"math"
	"math/rand"
	"testing"

	"fedomd/internal/mat"
)

func denseClose(t *testing.T, got, want *mat.Dense, op string) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: dims %dx%d want %dx%d", op, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i, v := range got.Data() {
		if math.Abs(v-want.Data()[i]) > 1e-12 {
			t.Fatalf("%s: element %d = %v want %v", op, i, v, want.Data()[i])
		}
	}
}

func garbage(r, c int) *mat.Dense {
	m := mat.New(r, c)
	for i := range m.Data() {
		m.Data()[i] = 1e9
	}
	return m
}

func TestMulDenseIntoMatchesFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomCSR(rng, 9, 6, 0.3)
	x := mat.New(6, 4)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	want := s.MulDense(x)

	out := garbage(9, 4)
	s.MulDenseInto(out, x)
	denseClose(t, out, want, "MulDenseInto")
}

func TestTMulDenseIntoMatchesFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := randomCSR(rng, 9, 6, 0.3)
	g := mat.New(9, 4)
	for i := range g.Data() {
		g.Data()[i] = rng.NormFloat64()
	}
	want := s.TMulDense(g)

	out := garbage(6, 4)
	s.TMulDenseInto(out, g)
	denseClose(t, out, want, "TMulDenseInto")

	// AddInto accumulates on top of the existing contents.
	base := mat.New(6, 4)
	for i := range base.Data() {
		base.Data()[i] = rng.NormFloat64()
	}
	accum := base.Clone()
	s.TMulDenseAddInto(accum, g)
	denseClose(t, accum, mat.Add(base, want), "TMulDenseAddInto")
}

func TestMulDenseIntoShapePanics(t *testing.T) {
	s := randomCSR(rand.New(rand.NewSource(13)), 4, 3, 0.5)
	for name, fn := range map[string]func(){
		"mul-inner":   func() { s.MulDenseInto(mat.New(4, 2), mat.New(4, 2)) },
		"mul-out":     func() { s.MulDenseInto(mat.New(3, 2), mat.New(3, 2)) },
		"tmul-inner":  func() { s.TMulDenseInto(mat.New(3, 2), mat.New(3, 2)) },
		"tmul-out":    func() { s.TMulDenseInto(mat.New(4, 2), mat.New(4, 2)) },
		"tmuladd-out": func() { s.TMulDenseAddInto(mat.New(4, 2), mat.New(4, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
