package sparse

import (
	"testing"

	"fedomd/internal/mat"
)

// TestSpMMCounters verifies the global kernel-call and FLOP counters advance
// by the analytic amount (2·nnz·cols per multiply). Counters are
// process-global, so only deltas are asserted.
func TestSpMMCounters(t *testing.T) {
	m, err := NewCSR(2, 2, []Coord{{0, 0, 1}, {0, 1, 2}, {1, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	x := mat.NewFromData(2, 4, make([]float64, 8))

	calls0, flops0 := spmmCalls.Value(), spmmFlops.Value()
	m.MulDense(x)
	if got := spmmCalls.Value() - calls0; got != 1 {
		t.Fatalf("spmm call counter advanced by %d want 1", got)
	}
	want := int64(2 * m.NNZ() * x.Cols()) // 2*3*4 = 24
	if got := spmmFlops.Value() - flops0; got != want {
		t.Fatalf("spmm flop counter advanced by %d want %d", got, want)
	}

	calls0, flops0 = spmmCalls.Value(), spmmFlops.Value()
	m.TMulDense(x)
	if got := spmmCalls.Value() - calls0; got != 1 {
		t.Fatalf("transpose spmm call counter advanced by %d want 1", got)
	}
	if got := spmmFlops.Value() - flops0; got != want {
		t.Fatalf("transpose spmm flop counter advanced by %d want %d", got, want)
	}
}
