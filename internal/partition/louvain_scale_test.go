package partition

import (
	"math/rand"
	"runtime"
	"testing"

	"fedomd/internal/dataset"
	"fedomd/internal/graph"
	"fedomd/internal/mat"
)

// bigCommunityGraph streams an SBM large enough to cross syncMoveThreshold,
// exercising the synchronous parallel local-moving path.
func bigCommunityGraph(t *testing.T, nodes int) *graph.Graph {
	t.Helper()
	cfg := dataset.Config{
		Name:                "louvain-scale",
		Nodes:               nodes,
		Edges:               nodes * 8,
		Classes:             6,
		Features:            12,
		CommunitiesPerClass: 2,
		Homophily:           0.9,
		ActiveFeatures:      4,
		SignalRatio:         0.9,
	}
	g, err := dataset.GenerateStream(cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLouvainSyncPathRecoversCommunities(t *testing.T) {
	n := 2 * syncMoveThreshold
	g := bigCommunityGraph(t, n)
	comm, err := Louvain(g, 1.0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(comm) != n {
		t.Fatalf("assignment length %d, want %d", len(comm), n)
	}
	q := Modularity(g, comm, 1.0)
	single := make([]int, n)
	for i := range single {
		single[i] = i
	}
	if base := Modularity(g, single, 1.0); q <= base {
		t.Fatalf("modularity %v not above singleton baseline %v", q, base)
	}
	// The SBM plants 12 dense communities at homophily 0.9; any reasonable
	// Louvain run finds strong structure here.
	if q < 0.5 {
		t.Fatalf("modularity %v suspiciously low for planted communities", q)
	}
	k := 0
	for _, c := range comm {
		if c < 0 {
			t.Fatalf("negative community id %d", c)
		}
		if c+1 > k {
			k = c + 1
		}
	}
	if k < 2 || k > n/10 {
		t.Fatalf("found %d communities for %d nodes with 12 planted", k, n)
	}
}

// TestLouvainBitIdenticalAcrossWorkerCounts pins the determinism contract of
// the synchronous phase: proposals are computed against a frozen partition,
// so the final assignment must not depend on the worker count.
func TestLouvainBitIdenticalAcrossWorkerCounts(t *testing.T) {
	defer mat.SetWorkers(0)
	g := bigCommunityGraph(t, syncMoveThreshold+512)

	mat.SetWorkers(1)
	ref, err := Louvain(g, 1.0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	ncpu := runtime.NumCPU()
	for _, w := range []int{2, ncpu, ncpu + 3} {
		mat.SetWorkers(w)
		got, err := Louvain(g, 1.0, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: node %d in community %d, want %d", w, i, got[i], ref[i])
			}
		}
	}
}

// TestRenumberInPlace pins the dense-renumber helper used on every level.
func TestRenumberInPlace(t *testing.T) {
	comm := []int{4, 2, 4, 0, 2, 5}
	k := renumber(comm)
	if k != 4 {
		t.Fatalf("k = %d, want 4", k)
	}
	want := []int{0, 1, 0, 2, 1, 3}
	for i := range want {
		if comm[i] != want[i] {
			t.Fatalf("renumber = %v, want %v", comm, want)
		}
	}
}
