// Package partition implements the Louvain community-detection algorithm
// (Blondel et al. 2008) with the resolution parameter the paper sweeps in
// Figure 7, plus the community→party grouping that turns a global graph into
// the M non-i.i.d local subgraphs each federated client owns.
package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"fedomd/internal/graph"
)

// wgraph is the weighted multigraph Louvain coarsens between passes.
type wgraph struct {
	// adj[i] maps neighbour -> edge weight (self loops allowed after
	// aggregation and stored with their full internal weight).
	adj []map[int]float64
	// total2m is Σ_ij w_ij counting both directions plus 2× self loops,
	// i.e. 2m in modularity notation.
	total2m float64
}

func newWGraphFromGraph(g *graph.Graph) *wgraph {
	n := g.NumNodes()
	w := &wgraph{adj: make([]map[int]float64, n)}
	for i := 0; i < n; i++ {
		w.adj[i] = make(map[int]float64)
	}
	for _, e := range g.Edges() {
		w.adj[e[0]][e[1]] += 1
		w.adj[e[1]][e[0]] += 1
		w.total2m += 2
	}
	return w
}

// degree returns the weighted degree of node i (self loops count twice).
// Keys are summed in sorted order so the floating-point result does not
// depend on map iteration order.
func (w *wgraph) degree(i int) float64 {
	keys := sortedKeys(w.adj[i])
	var d float64
	for _, j := range keys {
		if j == i {
			d += 2 * w.adj[i][j]
		} else {
			d += w.adj[i][j]
		}
	}
	return d
}

func sortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Louvain runs multi-pass Louvain modularity optimisation on g with the
// given resolution γ (larger γ ⇒ more, smaller communities). It returns a
// community id per node; ids are dense in [0, k).
//
// The node visiting order is shuffled with rng, so different seeds can give
// different (all locally optimal) partitions, matching the reference
// implementation's behaviour.
func Louvain(g *graph.Graph, resolution float64, rng *rand.Rand) ([]int, error) {
	if resolution <= 0 {
		return nil, fmt.Errorf("partition: resolution must be positive, got %v", resolution)
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, nil
	}
	w := newWGraphFromGraph(g)
	// node -> community at the current coarsening level; levelMap composes
	// them down to the original nodes.
	assignment := make([]int, n)
	for i := range assignment {
		assignment[i] = i
	}
	if w.total2m == 0 {
		// No edges: every node is its own community.
		return assignment, nil
	}
	for {
		comm, improved := w.onePass(resolution, rng)
		comm = renumber(comm)
		// Compose into the original-node assignment.
		for i := range assignment {
			assignment[i] = comm[assignment[i]]
		}
		if !improved {
			break
		}
		w = w.aggregate(comm)
		if len(w.adj) == 1 {
			break
		}
	}
	return renumber(assignment), nil
}

// onePass performs the local-moving phase on w: nodes greedily move to the
// neighbouring community with the largest positive modularity gain until no
// move improves. It returns the community of each node and whether any node
// moved at all.
func (w *wgraph) onePass(resolution float64, rng *rand.Rand) ([]int, bool) {
	n := len(w.adj)
	comm := make([]int, n)
	commTot := make([]float64, n) // Σ of degrees in each community
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		comm[i] = i
		deg[i] = w.degree(i)
		commTot[i] = deg[i]
	}
	order := rng.Perm(n)
	anyMoved := false
	for iter := 0; iter < 100; iter++ {
		moved := false
		for _, i := range order {
			ci := comm[i]
			// Weights from i to each neighbouring community (self loops
			// excluded: they move with the node). Candidate communities are
			// visited in sorted order: Go map iteration order is random, and
			// tie-breaks must not depend on it or identical seeds would
			// yield different partitions.
			links := map[int]float64{}
			for _, j := range sortedKeys(w.adj[i]) {
				if j == i {
					continue
				}
				links[comm[j]] += w.adj[i][j]
			}
			cands := make([]int, 0, len(links))
			for c := range links {
				cands = append(cands, c)
			}
			sort.Ints(cands)
			// Remove i from its community.
			commTot[ci] -= deg[i]
			bestComm, bestGain := ci, 0.0
			baseline := links[ci] - resolution*commTot[ci]*deg[i]/w.total2m
			for _, c := range cands {
				if c == ci {
					continue
				}
				gain := links[c] - resolution*commTot[c]*deg[i]/w.total2m
				if gain-baseline > bestGain+1e-12 {
					bestGain = gain - baseline
					bestComm = c
				}
			}
			comm[i] = bestComm
			commTot[bestComm] += deg[i]
			if bestComm != ci {
				moved = true
				anyMoved = true
			}
		}
		if !moved {
			break
		}
	}
	return comm, anyMoved
}

// aggregate builds the coarsened graph whose nodes are the communities of w.
func (w *wgraph) aggregate(comm []int) *wgraph {
	k := 0
	for _, c := range comm {
		if c+1 > k {
			k = c + 1
		}
	}
	out := &wgraph{adj: make([]map[int]float64, k), total2m: w.total2m}
	for i := range out.adj {
		out.adj[i] = make(map[int]float64)
	}
	for i, nbrs := range w.adj {
		ci := comm[i]
		for _, j := range sortedKeys(nbrs) {
			wt := nbrs[j]
			cj := comm[j]
			if i == j {
				out.adj[ci][ci] += wt
				continue
			}
			if i < j {
				// Each undirected edge appears in both adjacency maps; add
				// once per direction below.
				out.adj[ci][cj] += wt
				out.adj[cj][ci] += wt
				// Note: when ci == cj this double-adds, forming the doubled
				// internal self-loop weight convention used by degree().
				if ci == cj {
					out.adj[ci][cj] -= wt // undo one of the two adds
				}
			}
		}
	}
	return out
}

// renumber maps arbitrary community ids to dense ids 0..k-1 preserving first
// appearance order.
func renumber(comm []int) []int {
	seen := map[int]int{}
	out := make([]int, len(comm))
	next := 0
	for i, c := range comm {
		id, ok := seen[c]
		if !ok {
			id = next
			seen[c] = id
			next++
		}
		out[i] = id
	}
	return out
}

// Modularity computes the resolution-weighted modularity of an assignment on
// g: Q = Σ_c [ in_c/2m − γ (tot_c/2m)² ].
func Modularity(g *graph.Graph, comm []int, resolution float64) float64 {
	var m2 float64
	n := g.NumNodes()
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		deg[i] = float64(g.Degree(i))
		m2 += deg[i]
	}
	if m2 == 0 {
		return 0
	}
	k := 0
	for _, c := range comm {
		if c+1 > k {
			k = c + 1
		}
	}
	in := make([]float64, k)
	tot := make([]float64, k)
	for i := 0; i < n; i++ {
		tot[comm[i]] += deg[i]
	}
	for _, e := range g.Edges() {
		if comm[e[0]] == comm[e[1]] {
			in[comm[e[0]]] += 2
		}
	}
	var q float64
	for c := 0; c < k; c++ {
		q += in[c]/m2 - resolution*(tot[c]/m2)*(tot[c]/m2)
	}
	return q
}
