// Package partition implements the Louvain community-detection algorithm
// (Blondel et al. 2008) with the resolution parameter the paper sweeps in
// Figure 7, plus the community→party grouping that turns a global graph into
// the M non-i.i.d local subgraphs each federated client owns.
//
// The implementation is flat-array based (no per-node maps) so million-node
// graphs partition in seconds: each local-moving sweep is O(E) with a scratch
// accumulator reset through a touched list. Small graphs use the classic
// sequential greedy sweep in rng order; past syncMoveThreshold nodes the
// local-moving phase switches to synchronous rounds — every node's best move
// is proposed in parallel against the frozen partition, then proposals are
// applied in ascending node order. Proposals are pure functions of the frozen
// state, so the result is bit-identical for every worker count. A final
// refinement sweep on the original (uncoarsened) graph polishes the hierarchy
// output, the standard multi-level refinement step.
package partition

import (
	"fmt"
	"math/rand"
	"sync"

	"fedomd/internal/graph"
	"fedomd/internal/mat"
)

const (
	// syncMoveThreshold is the node count above which local moving switches
	// from the sequential rng-ordered sweep to synchronous parallel rounds.
	syncMoveThreshold = 1 << 13
	// maxMoveIter caps sequential sweeps per level (converges far earlier).
	maxMoveIter = 100
	// maxSyncIter caps synchronous rounds per level. Rounds past the first
	// few mostly shuffle nodes the next coarsening level merges in O(1), so
	// a tight cap trades nothing measurable for a large constant factor.
	maxSyncIter = 6
	// refineIter caps the final refinement sweep on the original graph.
	refineIter = 10
	// proposeGrain is the ParallelFor chunk grain for the proposal phase.
	proposeGrain = 1024
)

// flatGraph is the weighted multigraph Louvain coarsens between passes, in
// CSR-like flat arrays. Self loops live in selfW (full internal weight; they
// count twice in the weighted degree) and never appear in nbr. All edge
// weights are strictly positive — level 0 uses unit weights and aggregation
// sums them — which lets commW[c] == 0 double as the "not seen yet" test.
type flatGraph struct {
	n       int
	rowPtr  []int
	nbr     []int
	w       []float64
	selfW   []float64
	deg     []float64 // weighted degree incl. 2× self loop
	total2m float64   // Σ_i deg[i] = 2m
}

func newFlatGraph(g *graph.Graph) *flatGraph {
	n := g.NumNodes()
	nnz := g.Adj.NNZ()
	fg := &flatGraph{
		n:      n,
		rowPtr: make([]int, n+1),
		nbr:    make([]int, 0, nnz),
		w:      make([]float64, 0, nnz),
		selfW:  make([]float64, n),
		deg:    make([]float64, n),
	}
	for i := 0; i < n; i++ {
		g.Adj.RowEntries(i, func(j int, v float64) {
			fg.nbr = append(fg.nbr, j)
			fg.w = append(fg.w, v)
			fg.deg[i] += v
		})
		fg.rowPtr[i+1] = len(fg.nbr)
		fg.total2m += fg.deg[i]
	}
	return fg
}

// moveScratch is the per-sweep accumulator: commW[c] collects the weight from
// the current node to community c, and touched lists which entries to reset.
type moveScratch struct {
	commW   []float64
	touched []int
}

var moveScratchPool = sync.Pool{}

func getMoveScratch(n int) *moveScratch {
	if v := moveScratchPool.Get(); v != nil {
		sc := v.(*moveScratch)
		if len(sc.commW) >= n {
			return sc
		}
	}
	return &moveScratch{commW: make([]float64, n)}
}

func putMoveScratch(sc *moveScratch) { moveScratchPool.Put(sc) }

// propose returns the community node i should move to (possibly its current
// one) for the frozen partition (comm, commTot). Candidates are scanned in
// CSR neighbour order; ties within 1e-12 break toward the smallest community
// id, so the answer is a pure function of the partition — never of worker
// count or scratch reuse.
func (fg *flatGraph) propose(i int, resolution float64, comm []int, commTot []float64, sc *moveScratch) int {
	ci := comm[i]
	di := fg.deg[i]
	commW := sc.commW
	touched := sc.touched[:0]
	for e := fg.rowPtr[i]; e < fg.rowPtr[i+1]; e++ {
		cj := comm[fg.nbr[e]]
		if commW[cj] == 0 {
			touched = append(touched, cj)
		}
		commW[cj] += fg.w[e]
	}
	baseline := commW[ci] - resolution*(commTot[ci]-di)*di/fg.total2m
	best, bestComm := 0.0, ci
	for _, c := range touched {
		if c == ci {
			continue
		}
		gain := commW[c] - resolution*commTot[c]*di/fg.total2m
		delta := gain - baseline
		if delta-best > 1e-12 {
			best, bestComm = delta, c
		} else if bestComm != ci && best-delta <= 1e-12 && c < bestComm {
			bestComm = c
		}
	}
	for _, c := range touched {
		commW[c] = 0
	}
	sc.touched = touched
	return bestComm
}

// localMoveSeq is the classic greedy phase: nodes visited in rng order move
// immediately, so every applied move strictly improves modularity. comm and
// commTot may carry an arbitrary starting partition (used by refinement).
func (fg *flatGraph) localMoveSeq(resolution float64, rng *rand.Rand, comm []int, commTot []float64, maxIter int) bool {
	order := rng.Perm(fg.n)
	sc := getMoveScratch(fg.n)
	defer putMoveScratch(sc)
	anyMoved := false
	for iter := 0; iter < maxIter; iter++ {
		moved := 0
		for _, i := range order {
			ci := comm[i]
			t := fg.propose(i, resolution, comm, commTot, sc)
			if t == ci {
				continue
			}
			commTot[ci] -= fg.deg[i]
			commTot[t] += fg.deg[i]
			comm[i] = t
			moved++
			anyMoved = true
		}
		// Converged, or in the long tail (<1% of nodes still moving): stop —
		// coarser levels and the refinement pass pick up the stragglers. For
		// small n the condition only fires at moved == 0, i.e. exact
		// convergence, so clique-sized graphs keep the classic behaviour.
		if moved*100 < fg.n {
			break
		}
	}
	return anyMoved
}

// localMoveSync is the parallel phase: each round proposes the best move of
// every active node against the frozen partition (parallel, deterministic),
// then applies the proposals sequentially in ascending node index. A node is
// active in round r+1 iff it or a neighbour moved in round r — after the
// first few full sweeps the active set collapses to community boundaries, so
// the convergence tail costs O(changed) instead of O(E) per round. Two
// singleton communities proposing to swap into each other would oscillate
// forever, so a singleton may only merge downward (into a smaller id).
func (fg *flatGraph) localMoveSync(resolution float64, comm []int, commTot []float64, maxIter int) bool {
	n := fg.n
	proposals := make([]int32, n)
	commSize := make([]int, n)
	for _, c := range comm {
		commSize[c]++
	}
	active := make([]bool, n)
	nextActive := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	anyMoved := false
	for iter := 0; iter < maxIter; iter++ {
		mat.ParallelFor(n, proposeGrain, func(lo, hi int) {
			sc := getMoveScratch(n)
			for i := lo; i < hi; i++ {
				if !active[i] {
					proposals[i] = -1
					continue
				}
				proposals[i] = int32(fg.propose(i, resolution, comm, commTot, sc))
			}
			putMoveScratch(sc)
		})
		moved := 0
		for i := 0; i < n; i++ {
			t := int(proposals[i])
			if t < 0 {
				continue
			}
			ci := comm[i]
			if t == ci {
				continue
			}
			if commSize[ci] == 1 && commSize[t] == 1 && t > ci {
				continue // singleton swap guard: only merge downward
			}
			commTot[ci] -= fg.deg[i]
			commTot[t] += fg.deg[i]
			commSize[ci]--
			commSize[t]++
			comm[i] = t
			moved++
			anyMoved = true
			nextActive[i] = true
			for e := fg.rowPtr[i]; e < fg.rowPtr[i+1]; e++ {
				nextActive[fg.nbr[e]] = true
			}
		}
		// Stale synchronous proposals churn long after the partition has
		// stabilised; once fewer than 5% of nodes accept a move the round
		// is better spent one coarsening level down.
		if moved*20 < n {
			break
		}
		active, nextActive = nextActive, active
		clear(nextActive)
	}
	return anyMoved
}

// localMove dispatches between the sequential and synchronous phases.
func (fg *flatGraph) localMove(resolution float64, rng *rand.Rand, comm []int, commTot []float64, maxIter int) bool {
	if fg.n >= syncMoveThreshold {
		return fg.localMoveSync(resolution, comm, commTot, maxIter)
	}
	return fg.localMoveSeq(resolution, rng, comm, commTot, maxIter)
}

// aggregate coarsens fg into the k-community quotient graph. Members of each
// community are walked in ascending node order (counting sort), so the
// coarse adjacency layout is deterministic.
func (fg *flatGraph) aggregate(comm []int, k int) *flatGraph {
	memberPtr := make([]int, k+1)
	for _, c := range comm {
		memberPtr[c+1]++
	}
	for c := 0; c < k; c++ {
		memberPtr[c+1] += memberPtr[c]
	}
	members := make([]int, fg.n)
	cursor := make([]int, k)
	copy(cursor, memberPtr[:k])
	for i, c := range comm {
		members[cursor[c]] = i
		cursor[c]++
	}

	// Coarse nnz never exceeds fine nnz; reserving it up front keeps the
	// append loop below from reallocating (and memmove-copying) multi-GB
	// adjacency slices on million-node inputs.
	out := &flatGraph{
		n:       k,
		rowPtr:  make([]int, k+1),
		nbr:     make([]int, 0, len(fg.nbr)),
		w:       make([]float64, 0, len(fg.w)),
		selfW:   make([]float64, k),
		deg:     make([]float64, k),
		total2m: fg.total2m,
	}
	commW := make([]float64, k)
	touched := make([]int, 0, 64)
	for c := 0; c < k; c++ {
		var internal float64
		touched = touched[:0]
		for m := memberPtr[c]; m < memberPtr[c+1]; m++ {
			i := members[m]
			out.selfW[c] += fg.selfW[i]
			out.deg[c] += fg.deg[i]
			for e := fg.rowPtr[i]; e < fg.rowPtr[i+1]; e++ {
				cj := comm[fg.nbr[e]]
				if cj == c {
					internal += fg.w[e] // each internal edge seen from both ends
					continue
				}
				if commW[cj] == 0 {
					touched = append(touched, cj)
				}
				commW[cj] += fg.w[e]
			}
		}
		out.selfW[c] += internal / 2
		for _, cj := range touched {
			out.nbr = append(out.nbr, cj)
			out.w = append(out.w, commW[cj])
			commW[cj] = 0
		}
		out.rowPtr[c+1] = len(out.nbr)
	}
	return out
}

// Louvain runs multi-pass Louvain modularity optimisation on g with the
// given resolution γ (larger γ ⇒ more, smaller communities). It returns a
// community id per node; ids are dense in [0, k).
//
// On small graphs the node visiting order is shuffled with rng, so different
// seeds can give different (all locally optimal) partitions, matching the
// reference implementation's behaviour. Large graphs use synchronous rounds
// whose result is independent of rng and of the worker count; either way the
// output is deterministic under the seed.
func Louvain(g *graph.Graph, resolution float64, rng *rand.Rand) ([]int, error) {
	if resolution <= 0 {
		return nil, fmt.Errorf("partition: resolution must be positive, got %v", resolution)
	}
	n := g.NumNodes()
	if n == 0 {
		return nil, nil
	}
	level0 := newFlatGraph(g)
	assignment := make([]int, n)
	for i := range assignment {
		assignment[i] = i
	}
	if level0.total2m == 0 {
		// No edges: every node is its own community.
		return assignment, nil
	}

	fg := level0
	for {
		comm := make([]int, fg.n)
		commTot := make([]float64, fg.n)
		for i := range comm {
			comm[i] = i
			commTot[i] = fg.deg[i]
		}
		improved := fg.localMove(resolution, rng, comm, commTot, maxIterFor(fg.n))
		k := renumber(comm)
		for i := range assignment {
			assignment[i] = comm[assignment[i]]
		}
		if !improved || k == fg.n || k == 1 {
			break
		}
		fg = fg.aggregate(comm, k)
	}

	// Multi-level refinement: one more local-moving sweep on the original
	// graph, seeded with the hierarchy's output — recovers nodes the coarse
	// levels glued to the wrong side of a community boundary.
	if k := renumber(assignment); k > 1 {
		commTot := make([]float64, k)
		for i, c := range assignment {
			commTot[c] += level0.deg[i]
		}
		level0.localMove(resolution, rng, assignment, commTot, refineIter)
		renumber(assignment)
	}
	return assignment, nil
}

func maxIterFor(n int) int {
	if n >= syncMoveThreshold {
		return maxSyncIter
	}
	return maxMoveIter
}

// renumber maps community ids to dense ids 0..k-1 in place, preserving first
// appearance order, and returns k. Ids must already lie in [0, len(comm)).
func renumber(comm []int) int {
	remap := make([]int, len(comm))
	for i := range remap {
		remap[i] = -1
	}
	next := 0
	for i, c := range comm {
		if remap[c] < 0 {
			remap[c] = next
			next++
		}
		comm[i] = remap[c]
	}
	return next
}

// Modularity computes the resolution-weighted modularity of an assignment on
// g: Q = Σ_c [ in_c/2m − γ (tot_c/2m)² ].
func Modularity(g *graph.Graph, comm []int, resolution float64) float64 {
	var m2 float64
	n := g.NumNodes()
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		deg[i] = float64(g.Degree(i))
		m2 += deg[i]
	}
	if m2 == 0 {
		return 0
	}
	k := 0
	for _, c := range comm {
		if c+1 > k {
			k = c + 1
		}
	}
	in := make([]float64, k)
	tot := make([]float64, k)
	for i := 0; i < n; i++ {
		tot[comm[i]] += deg[i]
	}
	for _, e := range g.Edges() {
		if comm[e[0]] == comm[e[1]] {
			in[comm[e[0]]] += 2
		}
	}
	var q float64
	for c := 0; c < k; c++ {
		q += in[c]/m2 - resolution*(tot[c]/m2)*(tot[c]/m2)
	}
	return q
}
