package partition

import (
	"math/rand"
	"testing"

	"fedomd/internal/graph"
	"fedomd/internal/mat"
)

func TestBalancedPartiesBasics(t *testing.T) {
	g := twoCliques(t, 10)
	parties, err := BalancedParties(g, 4, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(parties) != 4 {
		t.Fatalf("got %d parties", len(parties))
	}
	total := 0
	for _, p := range parties {
		total += p.Graph.NumNodes()
		if p.Graph.NumNodes() != 5 {
			t.Fatalf("party size %d, want 5 (balanced)", p.Graph.NumNodes())
		}
	}
	if total != g.NumNodes() {
		t.Fatal("node conservation violated")
	}
	// No node appears twice.
	seen := map[int]bool{}
	for _, p := range parties {
		for _, id := range p.OrigIDs {
			if seen[id] {
				t.Fatalf("node %d assigned twice", id)
			}
			seen[id] = true
		}
	}
}

func TestBalancedPartiesValidation(t *testing.T) {
	g := twoCliques(t, 3)
	if _, err := BalancedParties(g, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("0 parties accepted")
	}
}

func TestBalancedCutsFewerEdgesThanRandom(t *testing.T) {
	// Region growing keeps neighbourhoods together, so it should sever
	// fewer edges than a uniform random split on a community graph.
	g := twoCliques(t, 20)
	rng := rand.New(rand.NewSource(2))
	balanced, err := BalancedParties(g, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	random, err := RandomParties(g, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	bCut := CrossPartyEdgeLoss(g, balanced)
	rCut := CrossPartyEdgeLoss(g, random)
	if bCut >= rCut {
		t.Fatalf("balanced cut %.3f not below random cut %.3f", bCut, rCut)
	}
}

func TestBalancedHandlesDisconnectedGraph(t *testing.T) {
	// Edgeless graph: region growing cannot expand, the fallback must still
	// assign every node under the quotas.
	g, err := graph.New(mat.New(11, 1), make([]int, 11), 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := BalancedParties(g, 3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parties {
		total += p.Graph.NumNodes()
	}
	if total != 11 {
		t.Fatalf("assigned %d/11 nodes", total)
	}
	// Quotas 4/4/3.
	if parties[0].Graph.NumNodes() != 4 || parties[2].Graph.NumNodes() != 3 {
		t.Fatalf("quota split wrong: %d/%d/%d", parties[0].Graph.NumNodes(),
			parties[1].Graph.NumNodes(), parties[2].Graph.NumNodes())
	}
}

func TestPartitionStrategySpectrum(t *testing.T) {
	// The three strategies should order by non-i.i.d level on a labelled
	// community graph: Louvain ≥ Balanced ≥ Random (ties allowed within
	// noise; we assert the ends of the spectrum).
	g := twoCliques(t, 25)
	rng := rand.New(rand.NewSource(4))
	louvain, err := LouvainParties(g, 2, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	random, err := RandomParties(g, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	ls := NonIIDScore(louvain, 2)
	rs := NonIIDScore(random, 2)
	if ls <= rs {
		t.Fatalf("Louvain (%.3f) not more non-iid than random (%.3f)", ls, rs)
	}
}
