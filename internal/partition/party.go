package partition

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"fedomd/internal/graph"
)

// Party is the local view one federated client receives: an induced
// subgraph and the original node ids it covers.
type Party struct {
	Graph *graph.Graph
	// OrigIDs[i] is the global id of local node i.
	OrigIDs []int
}

// LouvainParties implements the paper's "Louvain-cut" setup: detect
// communities at the given resolution, then greedily pack the communities
// into m parties balanced by node count (largest community to the currently
// smallest party). Each party's subgraph inherits the global masks.
func LouvainParties(g *graph.Graph, m int, resolution float64, rng *rand.Rand) ([]Party, error) {
	if m <= 0 {
		return nil, fmt.Errorf("partition: party count must be positive, got %d", m)
	}
	comm, err := Louvain(g, resolution, rng)
	if err != nil {
		return nil, err
	}
	groups := GroupCommunities(comm, m)
	return buildParties(g, groups)
}

// RandomParties splits nodes uniformly at random into m parties — the
// i.i.d-ish control setting used by ablation experiments.
func RandomParties(g *graph.Graph, m int, rng *rand.Rand) ([]Party, error) {
	if m <= 0 {
		return nil, fmt.Errorf("partition: party count must be positive, got %d", m)
	}
	perm := rng.Perm(g.NumNodes())
	groups := make([][]int, m)
	for i, node := range perm {
		groups[i%m] = append(groups[i%m], node)
	}
	return buildParties(g, groups)
}

// GroupCommunities packs community-labelled nodes into m groups, assigning
// each community (largest first) to the group with the fewest nodes so far.
// Communities are never split, preserving the non-i.i.d structure.
func GroupCommunities(comm []int, m int) [][]int {
	byComm := map[int][]int{}
	for node, c := range comm {
		byComm[c] = append(byComm[c], node)
	}
	ids := make([]int, 0, len(byComm))
	for c := range byComm {
		ids = append(ids, c)
	}
	// Largest first; ties by id for determinism.
	sort.Slice(ids, func(a, b int) bool {
		la, lb := len(byComm[ids[a]]), len(byComm[ids[b]])
		if la != lb {
			return la > lb
		}
		return ids[a] < ids[b]
	})
	groups := make([][]int, m)
	sizes := make([]int, m)
	for _, c := range ids {
		smallest := 0
		for p := 1; p < m; p++ {
			if sizes[p] < sizes[smallest] {
				smallest = p
			}
		}
		groups[smallest] = append(groups[smallest], byComm[c]...)
		sizes[smallest] += len(byComm[c])
	}
	for _, g := range groups {
		sort.Ints(g)
	}
	return groups
}

func buildParties(g *graph.Graph, groups [][]int) ([]Party, error) {
	parties := make([]Party, 0, len(groups))
	for _, nodes := range groups {
		sub, ids, err := g.Subgraph(nodes)
		if err != nil {
			return nil, err
		}
		parties = append(parties, Party{Graph: sub, OrigIDs: ids})
	}
	return parties, nil
}

// LabelDistribution returns an m×numClasses count matrix: row p is party p's
// label histogram. This is exactly the data plotted as circles in Figure 4.
func LabelDistribution(parties []Party, numClasses int) [][]int {
	out := make([][]int, len(parties))
	for p, party := range parties {
		out[p] = make([]int, numClasses)
		copy(out[p], party.Graph.LabelHistogram())
	}
	return out
}

// NonIIDScore quantifies label heterogeneity as the mean total-variation
// distance between each party's label distribution and the pooled global
// distribution. 0 means identical (i.i.d) distributions; values toward 1
// mean heavily skewed parties.
func NonIIDScore(parties []Party, numClasses int) float64 {
	if len(parties) == 0 {
		return 0
	}
	global := make([]float64, numClasses)
	var total float64
	dists := make([][]float64, len(parties))
	for p, party := range parties {
		h := party.Graph.LabelHistogram()
		dists[p] = make([]float64, numClasses)
		var n float64
		for _, c := range h {
			n += float64(c)
		}
		for y, c := range h {
			global[y] += float64(c)
			total += float64(c)
			if n > 0 {
				dists[p][y] = float64(c) / n
			}
		}
	}
	if total == 0 {
		return 0
	}
	for y := range global {
		global[y] /= total
	}
	var sum float64
	for _, d := range dists {
		var tv float64
		for y := range d {
			tv += math.Abs(d[y] - global[y])
		}
		sum += tv / 2
	}
	return sum / float64(len(parties))
}

// CrossPartyEdgeLoss reports the fraction of the global graph's edges that
// are severed by the partition (endpoints in different parties) — the
// information FedSage+-style methods try to recover by generating missing
// neighbours.
func CrossPartyEdgeLoss(g *graph.Graph, parties []Party) float64 {
	owner := make([]int, g.NumNodes())
	for i := range owner {
		owner[i] = -1
	}
	for p, party := range parties {
		for _, id := range party.OrigIDs {
			owner[id] = p
		}
	}
	edges := g.Edges()
	if len(edges) == 0 {
		return 0
	}
	cut := 0
	for _, e := range edges {
		if owner[e[0]] != owner[e[1]] {
			cut++
		}
	}
	return float64(cut) / float64(len(edges))
}
