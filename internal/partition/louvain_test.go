package partition

import (
	"math/rand"
	"testing"

	"fedomd/internal/graph"
	"fedomd/internal/mat"
)

// twoCliques builds two k-cliques joined by a single bridge edge — the
// canonical case Louvain must split into two communities.
func twoCliques(t *testing.T, k int) *graph.Graph {
	t.Helper()
	n := 2 * k
	var edges [][2]int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			edges = append(edges, [2]int{i, j}, [2]int{k + i, k + j})
		}
	}
	edges = append(edges, [2]int{0, k})
	labels := make([]int, n)
	for i := k; i < n; i++ {
		labels[i] = 1
	}
	g, err := graph.New(mat.New(n, 2), labels, 2, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLouvainTwoCliques(t *testing.T) {
	g := twoCliques(t, 6)
	comm, err := Louvain(g, 1.0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	// All of clique A in one community, all of clique B in another.
	for i := 1; i < 6; i++ {
		if comm[i] != comm[0] {
			t.Fatalf("clique A split: %v", comm)
		}
	}
	for i := 7; i < 12; i++ {
		if comm[i] != comm[6] {
			t.Fatalf("clique B split: %v", comm)
		}
	}
	if comm[0] == comm[6] {
		t.Fatalf("cliques merged: %v", comm)
	}
}

func TestLouvainImprovesModularity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := twoCliques(t, 8)
	comm, err := Louvain(g, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	got := Modularity(g, comm, 1.0)
	// Singleton baseline.
	single := make([]int, g.NumNodes())
	for i := range single {
		single[i] = i
	}
	if base := Modularity(g, single, 1.0); got <= base {
		t.Fatalf("Louvain modularity %v not above singleton baseline %v", got, base)
	}
	if got < 0.3 {
		t.Fatalf("two-clique modularity %v suspiciously low", got)
	}
}

func TestLouvainResolutionMonotonicity(t *testing.T) {
	// Higher resolution must not produce fewer communities on a graph with
	// nested structure.
	rng := rand.New(rand.NewSource(3))
	n := 60
	var edges [][2]int
	// 6 groups of 10 in a ring of groups.
	for grp := 0; grp < 6; grp++ {
		base := grp * 10
		for i := 0; i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				if rng.Float64() < 0.7 {
					edges = append(edges, [2]int{base + i, base + j})
				}
			}
		}
		nxt := ((grp + 1) % 6) * 10
		edges = append(edges, [2]int{base, nxt}, [2]int{base + 1, nxt + 1})
	}
	labels := make([]int, n)
	g, err := graph.New(mat.New(n, 1), labels, 1, edges)
	if err != nil {
		t.Fatal(err)
	}
	count := func(res float64) int {
		comm, err := Louvain(g, res, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		k := 0
		for _, c := range comm {
			if c+1 > k {
				k = c + 1
			}
		}
		return k
	}
	low, high := count(0.2), count(20)
	if low > high {
		t.Fatalf("resolution 0.2 gave %d communities, 20 gave %d; want non-decreasing", low, high)
	}
}

func TestLouvainEdgeCases(t *testing.T) {
	if _, err := Louvain(twoCliques(t, 3), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("resolution 0 accepted")
	}
	// Edgeless graph: everyone their own community.
	g, _ := graph.New(mat.New(4, 1), make([]int, 4), 1, nil)
	comm, err := Louvain(g, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range comm {
		if seen[c] {
			t.Fatalf("edgeless graph merged nodes: %v", comm)
		}
		seen[c] = true
	}
}

func TestLouvainDeterministicUnderSeed(t *testing.T) {
	g := twoCliques(t, 5)
	a, _ := Louvain(g, 1, rand.New(rand.NewSource(9)))
	b, _ := Louvain(g, 1, rand.New(rand.NewSource(9)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different partition")
		}
	}
}

func TestGroupCommunitiesBalance(t *testing.T) {
	// 4 communities of sizes 5,4,3,2 into 2 parties → sizes 7,7.
	comm := make([]int, 14)
	idx := 0
	for c, size := range []int{5, 4, 3, 2} {
		for k := 0; k < size; k++ {
			comm[idx] = c
			idx++
		}
	}
	groups := GroupCommunities(comm, 2)
	if len(groups[0])+len(groups[1]) != 14 {
		t.Fatal("nodes lost")
	}
	diff := len(groups[0]) - len(groups[1])
	if diff < -1 || diff > 1 {
		t.Fatalf("groups unbalanced: %d vs %d", len(groups[0]), len(groups[1]))
	}
}

func TestGroupCommunitiesNeverSplits(t *testing.T) {
	comm := []int{0, 0, 0, 1, 1, 2}
	groups := GroupCommunities(comm, 2)
	where := map[int]int{}
	for p, nodes := range groups {
		for _, nd := range nodes {
			where[nd] = p
		}
	}
	for _, pair := range [][2]int{{0, 1}, {1, 2}, {3, 4}} {
		if where[pair[0]] != where[pair[1]] {
			t.Fatalf("community split across parties: %v", groups)
		}
	}
}

func TestLouvainPartiesEndToEnd(t *testing.T) {
	g := twoCliques(t, 10)
	rng := rand.New(rand.NewSource(4))
	if err := g.Split(rng, 0.1, 0.2, 0.2); err != nil {
		t.Fatal(err)
	}
	parties, err := LouvainParties(g, 2, 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(parties) != 2 {
		t.Fatalf("got %d parties", len(parties))
	}
	totalNodes := 0
	for _, p := range parties {
		totalNodes += p.Graph.NumNodes()
	}
	if totalNodes != g.NumNodes() {
		t.Fatalf("node conservation violated: %d vs %d", totalNodes, g.NumNodes())
	}
	// The clique structure means each party should be label-pure — the
	// non-i.i.d phenomenon of Figure 4.
	if NonIIDScore(parties, 2) < 0.4 {
		t.Fatalf("expected strong non-iid, score=%v", NonIIDScore(parties, 2))
	}
	dist := LabelDistribution(parties, 2)
	for p := range dist {
		if dist[p][0] > 0 && dist[p][1] > 0 {
			t.Fatalf("party %d mixes both cliques: %v", p, dist)
		}
	}
	// Exactly the single bridge edge is cut.
	if loss := CrossPartyEdgeLoss(g, parties); loss <= 0 || loss > 0.05 {
		t.Fatalf("cross-party edge loss = %v", loss)
	}
}

func TestRandomPartiesLowNonIID(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Balanced 2-class graph, random split should be near-i.i.d.
	n := 400
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 2
	}
	g, err := graph.New(mat.New(n, 1), labels, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	parties, err := RandomParties(g, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if score := NonIIDScore(parties, 2); score > 0.15 {
		t.Fatalf("random partition unexpectedly non-iid: %v", score)
	}
	louvainScore := NonIIDScore(parties, 2)
	_ = louvainScore
}

func TestPartyCountValidation(t *testing.T) {
	g := twoCliques(t, 3)
	rng := rand.New(rand.NewSource(6))
	if _, err := LouvainParties(g, 0, 1, rng); err == nil {
		t.Fatal("0 parties accepted")
	}
	if _, err := RandomParties(g, -1, rng); err == nil {
		t.Fatal("negative parties accepted")
	}
}

func TestMoreCliquesThanParties(t *testing.T) {
	// 2 cliques, 4 parties: two parties end up empty — the code must not
	// crash and must conserve nodes.
	g := twoCliques(t, 6)
	parties, err := LouvainParties(g, 4, 1.0, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, p := range parties {
		total += p.Graph.NumNodes()
	}
	if total != g.NumNodes() {
		t.Fatal("node conservation violated")
	}
}
