package partition

import (
	"fmt"
	"math/rand"

	"fedomd/internal/graph"
)

// BalancedParties partitions the graph by multi-source region growing: m
// seed nodes are drawn at random and parties grow breadth-first under equal
// node quotas, so parties are size-balanced and locally connected — a
// lighter-weight alternative to the Louvain cut that trades community purity
// for balance. It sits between RandomParties (maximal mixing, near-i.i.d)
// and LouvainParties (maximal community purity, strongly non-i.i.d) and is
// used to study how the partition strategy itself moves the non-i.i.d level.
func BalancedParties(g *graph.Graph, m int, rng *rand.Rand) ([]Party, error) {
	if m <= 0 {
		return nil, fmt.Errorf("partition: party count must be positive, got %d", m)
	}
	n := g.NumNodes()
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	quota := make([]int, m)
	for p := 0; p < m; p++ {
		quota[p] = n / m
		if p < n%m {
			quota[p]++
		}
	}
	sizes := make([]int, m)
	frontiers := make([][]int, m)
	perm := rng.Perm(n)
	seedIdx := 0
	// claim assigns node to party p if free and under quota.
	claim := func(node, p int) bool {
		if owner[node] != -1 || sizes[p] >= quota[p] {
			return false
		}
		owner[node] = p
		sizes[p]++
		frontiers[p] = append(frontiers[p], node)
		return true
	}
	// Seed each party with an unassigned node.
	for p := 0; p < m && seedIdx < n; p++ {
		for seedIdx < n && !claim(perm[seedIdx], p) {
			seedIdx++
		}
	}
	// Round-robin BFS growth under quotas.
	assigned := 0
	for _, s := range sizes {
		assigned += s
	}
	for assigned < n {
		progress := false
		for p := 0; p < m; p++ {
			if sizes[p] >= quota[p] || len(frontiers[p]) == 0 {
				continue
			}
			node := frontiers[p][0]
			frontiers[p] = frontiers[p][1:]
			for _, nb := range g.Neighbors(node) {
				if sizes[p] >= quota[p] {
					break
				}
				if claim(nb, p) {
					assigned++
					progress = true
				}
			}
		}
		if !progress {
			// All frontiers exhausted (disconnected remainder): hand the
			// next free nodes to the parties with remaining quota.
			for _, node := range perm {
				if owner[node] != -1 {
					continue
				}
				for p := 0; p < m; p++ {
					if claim(node, p) {
						assigned++
						break
					}
				}
			}
		}
	}
	groups := make([][]int, m)
	for node, p := range owner {
		groups[p] = append(groups[p], node)
	}
	return buildParties(g, groups)
}
