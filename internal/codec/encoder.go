package codec

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"fedomd/internal/mat"
	"fedomd/internal/nn"
	"fedomd/internal/obs"
)

// Encoder turns parameter sets into v1 blobs. It is stateful per sender:
// the lossy tiers keep one error-feedback residual per tensor, so each
// uplink (or downlink) direction of each connection needs its own Encoder.
// Not safe for concurrent use.
type Encoder struct {
	opts Options
	// residual holds, per tensor name, the error-feedback carry: the part
	// of previous deltas the lossy encoding dropped. The encoder compresses
	// v = delta + residual and stores back residual = v − decoded(v), so
	// quantization and sparsification error re-enters the next round
	// instead of being lost (memory-compensated compression).
	residual map[string][]float64
	delta    []float64 // scratch, reused across tensors and calls
	recon    []float64 // scratch for the decoder-side reconstruction

	// tracer/parent are the optional obs hooks (see SetTrace); nil when
	// tracing is off, which keeps EncodeParams span-free.
	tracer *obs.Tracer
	parent func() obs.SpanContext
}

// NewEncoder returns an Encoder for the given (validated) options.
func NewEncoder(opts Options) *Encoder {
	return &Encoder{opts: opts, residual: make(map[string][]float64)}
}

// Options returns the codec configuration the encoder was built with.
func (e *Encoder) Options() Options { return e.opts }

// Reset drops all error-feedback residuals (e.g. when the peer's reference
// state is lost and the next blob must be absolute). Safe on a nil receiver,
// so desync handlers can clear unconditionally before the codec layer is
// armed.
func (e *Encoder) Reset() {
	if e == nil {
		return
	}
	for k := range e.residual {
		delete(e.residual, k)
	}
}

// RefSum fingerprints a reference parameter set: FNV-1a over each tensor's
// name and float64 bit patterns, forced nonzero (zero means "no reference"
// on the wire). Encoder and decoder both hash their copy of the reference so
// a blob can never silently be applied against the wrong base.
func RefSum(ref *nn.Params) uint64 {
	if ref == nil {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	names := ref.Names()
	for i := 0; i < ref.Len(); i++ {
		h.Write([]byte(names[i]))
		for _, v := range ref.At(i).Data() {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	s := h.Sum64()
	if s == 0 {
		s = 1
	}
	return s
}

// EncodeParams appends a v1 blob holding p, encoded against ref, to dst and
// returns the extended slice (pass nil to allocate fresh). A nil ref — or a
// tensor missing from ref — falls back to absolute raw-float64 frames, so
// the first exchange of a connection needs no shared state. Tensors holding
// non-finite values are also sent absolute: quantizing a NaN would poison
// the scale and the residual, and the server's non-finite screen needs to
// see the genuine values to attribute the failure.
func (e *Encoder) EncodeParams(dst []byte, p, ref *nn.Params) ([]byte, error) {
	if err := e.opts.Validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("codec: encode of nil params")
	}
	if e.tracer != nil {
		sp := e.tracer.Start(e.traceParent(), obs.SpanEncode)
		sp.SetAttr(obs.AttrTier, e.opts.Kind.String())
		base := len(dst)
		defer func() {
			sp.SetAttr(obs.AttrBytesEnc, len(dst)-base)
			sp.SetAttr(obs.AttrTensors, p.Len())
			sp.End()
		}()
	}
	dst = append(dst, blobMagic, blobVersion, byte(e.opts.Kind), byte(e.opts.Bits))
	dst = appendU32(dst, uint32(p.Len()))
	dst = appendU64(dst, RefSum(ref))
	names := p.Names()
	for i := 0; i < p.Len(); i++ {
		name := names[i]
		if len(name) > 255 {
			return nil, fmt.Errorf("codec: tensor name %q exceeds 255 bytes", name)
		}
		cur := p.At(i)
		var refT *mat.Dense
		if ref != nil {
			refT = ref.Get(name)
			if refT != nil && (refT.Rows() != cur.Rows() || refT.Cols() != cur.Cols()) {
				return nil, fmt.Errorf("codec: tensor %q is %dx%d but reference is %dx%d",
					name, cur.Rows(), cur.Cols(), refT.Rows(), refT.Cols())
			}
		}
		var err error
		dst, err = e.encodeTensor(dst, name, cur, refT)
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// encodeTensor appends one frame. The frame header's body length is
// back-patched after the body is written.
func (e *Encoder) encodeTensor(dst []byte, name string, cur, ref *mat.Dense) ([]byte, error) {
	hdr := len(dst)
	dst = appendU32(dst, 0) // body length, patched below
	dst = appendU32(dst, uint32(cur.Rows()))
	dst = appendU32(dst, uint32(cur.Cols()))
	dst = append(dst, 0, byte(len(name))) // mode patched below
	dst = append(dst, name...)
	bodyStart := len(dst)

	data := cur.Data()
	mode := modeRawF64
	switch {
	case ref == nil || !finite(data):
		// Absolute frame; a stale residual for this tensor no longer
		// matches any reference state, so drop it.
		delete(e.residual, name)
		dst = appendRawF64Body(dst, data)
	case e.opts.Kind == Delta && e.opts.TopK == 0:
		mode = modeXor
		dst = appendXorBody(dst, data, ref.Data())
	default:
		dst, mode = e.encodeLossy(dst, name, data, ref.Data(), cur.Cols())
	}
	dst[hdr+12] = mode
	binary.LittleEndian.PutUint32(dst[hdr:], uint32(len(dst)-bodyStart))
	return dst, nil
}

// encodeLossy handles the float32/quant/top-k tiers: build the compensated
// delta v = (cur − ref) + residual, encode it, and store the new residual
// v − decoded(v).
func (e *Encoder) encodeLossy(dst []byte, name string, cur, ref []float64, cols int) ([]byte, byte) {
	n := len(cur)
	e.delta = resize(e.delta, n)
	e.recon = resize(e.recon, n)
	v := e.delta
	for i := range v {
		v[i] = cur[i] - ref[i]
	}
	r, hasResidual := e.residual[name]
	if hasResidual {
		for i := range v {
			v[i] += r[i]
		}
	}

	var mode byte
	if e.opts.TopK > 0 {
		mode = modeTopK
		k := int(math.Ceil(e.opts.TopK * float64(n)))
		if k > n {
			k = n
		}
		inner := modeRawF64
		switch e.opts.Kind {
		case Float32:
			inner = modeF32
		case Quant:
			inner = modeQuant
		}
		for i := range e.recon {
			e.recon[i] = 0
		}
		dst = appendTopKBody(dst, topKSelect(v, cols, k), cols, inner, e.opts.Bits, e.recon)
	} else if e.opts.Kind == Float32 {
		mode = modeF32
		dst = appendF32Body(dst, v, e.recon)
	} else {
		mode = modeQuant
		dst = appendQuantBody(dst, v, e.opts.Bits, e.recon)
	}

	if !hasResidual {
		r = make([]float64, n)
		e.residual[name] = r
	}
	for i := range r {
		r[i] = v[i] - e.recon[i]
	}
	return dst, mode
}

// DecodeParams reconstructs a parameter set from a v1 blob. A blob with a
// nonzero reference checksum requires ref to hash to exactly that value;
// an absolute blob (checksum 0) ignores ref. Output matrices are drawn from
// the mat buffer pool — ownership transfers to the caller, who may PutDense
// them once the values have been consumed (or let the GC take them).
func DecodeParams(blob []byte, ref *nn.Params) (*nn.Params, error) {
	if len(blob) < blobHeaderLen {
		return nil, fmt.Errorf("codec: blob is %d bytes, want at least %d", len(blob), blobHeaderLen)
	}
	if blob[0] != blobMagic {
		return nil, fmt.Errorf("codec: bad magic 0x%02X", blob[0])
	}
	if blob[1] != blobVersion {
		return nil, fmt.Errorf("codec: unsupported wire version %d", blob[1])
	}
	qbits := int(blob[3])
	count := int(binary.LittleEndian.Uint32(blob[4:]))
	refsum := binary.LittleEndian.Uint64(blob[8:])
	if refsum != 0 {
		if ref == nil {
			return nil, fmt.Errorf("codec: blob needs a reference but decoder has none")
		}
		if got := RefSum(ref); got != refsum {
			return nil, fmt.Errorf("codec: reference checksum mismatch: blob %016x, local %016x", refsum, got)
		}
	}
	out := nn.NewParams()
	pos := blobHeaderLen
	for t := 0; t < count; t++ {
		if len(blob)-pos < frameHeaderLen {
			return nil, fmt.Errorf("codec: frame %d header truncated", t)
		}
		bodyLen := int(binary.LittleEndian.Uint32(blob[pos:]))
		rows := int(binary.LittleEndian.Uint32(blob[pos+4:]))
		cols := int(binary.LittleEndian.Uint32(blob[pos+8:]))
		mode := blob[pos+12]
		nameLen := int(blob[pos+13])
		pos += frameHeaderLen
		if len(blob)-pos < nameLen+bodyLen {
			return nil, fmt.Errorf("codec: frame %d truncated", t)
		}
		name := string(blob[pos : pos+nameLen])
		body := blob[pos+nameLen : pos+nameLen+bodyLen]
		pos += nameLen + bodyLen

		var refData []float64
		if mode != modeRawF64 {
			refT := ref.Get(name)
			if refT == nil {
				return nil, fmt.Errorf("codec: delta frame %q has no reference tensor", name)
			}
			if refT.Rows() != rows || refT.Cols() != cols {
				return nil, fmt.Errorf("codec: frame %q is %dx%d but reference is %dx%d",
					name, rows, cols, refT.Rows(), refT.Cols())
			}
			refData = refT.Data()
		}
		d := mat.GetDense(rows, cols)
		out.Add(name, d) // transfer pool ownership to the result immediately
		data := d.Data()
		var err error
		switch mode {
		case modeRawF64:
			err = decodeRawF64Body(body, data)
		case modeXor:
			err = decodeXorBody(body, refData, data)
		case modeF32:
			err = decodeF32Body(body, data)
			addRef(data, refData)
		case modeQuant:
			err = decodeQuantBody(body, qbits, data)
			addRef(data, refData)
		case modeTopK:
			err = decodeTopKBody(body, qbits, data) // data starts zeroed
			addRef(data, refData)
		default:
			err = fmt.Errorf("codec: unknown frame mode %d", mode)
		}
		if err != nil {
			return nil, fmt.Errorf("codec: frame %q: %w", name, err)
		}
	}
	if pos != len(blob) {
		return nil, fmt.Errorf("codec: %d trailing bytes after last frame", len(blob)-pos)
	}
	return out, nil
}

// PutParams releases a DecodeParams result's pooled matrices. The set must
// not be used afterwards.
func PutParams(p *nn.Params) {
	if p == nil {
		return
	}
	for i := 0; i < p.Len(); i++ {
		mat.PutDense(p.At(i))
	}
}

func addRef(data, ref []float64) {
	for i := range data {
		data[i] += ref[i]
	}
}

func finite(vals []float64) bool {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}
