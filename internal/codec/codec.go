// Package codec implements the communication codecs the federated runtime
// uses to shrink parameter payloads: lossless XOR-delta encoding against the
// last broadcast global, float32 downcast, q-bit uniform quantization with
// per-tensor scale/offset, and optional top-k sparsification of deltas —
// the lossy tiers carrying per-client error-feedback residuals so dropped
// information re-enters the next round instead of being lost.
//
// The wire artefact is a self-describing v1 blob: a fixed header (magic,
// version, codec kind, quantization bits, tensor count, reference checksum)
// followed by one length-delimited frame per tensor. A blob whose reference
// checksum is zero is absolute and decodes without any shared state; a
// nonzero checksum names the exact reference parameter set (by FNV-1a over
// names and float bit patterns) the decoder must hold.
package codec

import (
	"fmt"
	"strings"
)

// Kind selects the value encoding applied to parameter deltas.
type Kind uint8

const (
	// Raw disables the codec: parameters travel as raw float64 (the
	// historical wire format). The zero value, so existing configs are
	// unchanged.
	Raw Kind = iota
	// Delta sends the XOR of the IEEE-754 bit patterns of the parameters
	// against the reference, with leading zero bytes suppressed. Lossless:
	// decode is bit-identical to the input, unlike an arithmetic delta
	// (g + (p−g) need not round-trip in float64).
	Delta
	// Float32 sends arithmetic deltas downcast to float32.
	Float32
	// Quant sends arithmetic deltas under q-bit uniform quantization with a
	// per-tensor offset/scale (q ∈ {8, 4}), plus error feedback.
	Quant
)

// String returns the flag spelling of the kind.
func (k Kind) String() string {
	switch k {
	case Raw:
		return "raw"
	case Delta:
		return "delta"
	case Float32:
		return "float32"
	case Quant:
		return "quant"
	}
	return fmt.Sprintf("codec.Kind(%d)", uint8(k))
}

// Options selects a codec stack. The zero value means "codec off".
type Options struct {
	// Kind is the value encoding (see the Kind constants).
	Kind Kind
	// Bits is the quantization width for Kind == Quant; 8 or 4.
	Bits int
	// TopK, when in (0, 1), keeps only that fraction of each tensor's
	// delta entries (the largest by magnitude, COO-encoded); the rest are
	// carried in the error-feedback residual. 0 disables sparsification.
	TopK float64
}

// Parse maps the CLI surface (-codec, -quant-bits, -topk) to Options.
// Recognised names: "", "raw", "delta", "float32"/"f32", "quant", and the
// shorthands "q8"/"q4" which force the bit width.
func Parse(name string, quantBits int, topK float64) (Options, error) {
	// Bits is carried through for every kind so Validate can reject a stray
	// -quant-bits on a codec that ignores it, instead of dropping it quietly.
	o := Options{Bits: quantBits, TopK: topK}
	name = strings.ToLower(strings.TrimSpace(name))
	switch name {
	case "", "raw":
		o.Kind = Raw
	case "delta":
		o.Kind = Delta
	case "float32", "f32":
		o.Kind = Float32
	case "quant":
		o.Kind = Quant
		if o.Bits == 0 {
			o.Bits = 8
		}
	case "q8", "q4":
		o.Kind = Quant
		forced := 8
		if name == "q4" {
			forced = 4
		}
		if quantBits != 0 && quantBits != forced {
			return Options{}, fmt.Errorf("codec: -quant-bits %d conflicts with -codec %s", quantBits, name)
		}
		o.Bits = forced
	default:
		return Options{}, fmt.Errorf("codec: unknown codec %q (want raw, delta, float32, quant, q8, or q4)", name)
	}
	return o, o.Validate()
}

// Validate checks the option combination is one the wire format can express.
func (o Options) Validate() error {
	switch o.Kind {
	case Raw:
		if o.TopK != 0 {
			return fmt.Errorf("codec: -topk needs a delta codec (delta, float32, or quant), not raw")
		}
		if o.Bits != 0 {
			return fmt.Errorf("codec: -quant-bits needs -codec quant, not raw")
		}
		return nil
	case Delta, Float32:
		if o.Bits != 0 {
			return fmt.Errorf("codec: -quant-bits needs -codec quant, not %s", o.Kind)
		}
	case Quant:
		if o.Bits != 8 && o.Bits != 4 {
			return fmt.Errorf("codec: quantization width must be 8 or 4 bits, got %d", o.Bits)
		}
	default:
		return fmt.Errorf("codec: unknown kind %d", uint8(o.Kind))
	}
	if o.TopK < 0 || o.TopK >= 1 {
		return fmt.Errorf("codec: -topk must lie in [0, 1), got %v", o.TopK)
	}
	return nil
}

// Enabled reports whether the options select any codec at all.
func (o Options) Enabled() bool { return o.Kind != Raw }

// Lossy reports whether decode can differ from the encoder's input — the
// tiers that carry error-feedback residuals.
func (o Options) Lossy() bool { return o.Kind == Float32 || o.Kind == Quant || o.TopK > 0 }

// Name returns the tier name used in reports and metric keys: raw, delta,
// float32, q8, q4, with a "_top<percent>" suffix when sparsifying.
func (o Options) Name() string {
	n := o.Kind.String()
	if o.Kind == Quant {
		n = fmt.Sprintf("q%d", o.Bits)
	}
	if o.TopK > 0 {
		n = fmt.Sprintf("%s_top%g", n, o.TopK*100)
	}
	return n
}

// Telemetry keys. Byte counters compare the raw float64 payload size against
// what actually went on the wire; the ns counters price the codec work.
// MetricBytesRaw/MetricBytesEncoded cover uploads (client → server, the
// direction the configured tier compresses); the _down pair covers the
// always-lossless delta broadcasts. MetricRatioPrefix heads the per-tier
// upload compression gauge ("codec/ratio/q8").
const (
	MetricBytesRaw         = "codec/bytes_raw"
	MetricBytesEncoded     = "codec/bytes_encoded"
	MetricBytesRawDown     = "codec/bytes_raw_down"
	MetricBytesEncodedDown = "codec/bytes_encoded_down"
	MetricEncodeNs         = "codec/encode_ns"
	MetricDecodeNs         = "codec/decode_ns"
	MetricRatioPrefix      = "codec/ratio"
)

// WireV1 is the framed-blob protocol version parties advertise in the
// transport hello handshake. A peer that advertises nothing (or an unknown
// set) falls back to the v0 raw-gob format.
const WireV1 uint8 = 1

// WireVersions lists the protocol versions this build speaks, newest last.
func WireVersions() []uint8 { return []uint8{WireV1} }
