package codec

// frame.go is the byte layer of the v1 wire format. A blob is:
//
//	offset  size  field
//	0       1     magic 0xFD
//	1       1     version (1)
//	2       1     codec kind
//	3       1     quantization bits (0 unless kind == Quant)
//	4       4     tensor count, uint32 LE
//	8       8     reference checksum, uint64 LE (0 = absolute blob)
//
// followed by one frame per tensor:
//
//	offset  size  field
//	0       4     body length, uint32 LE (bytes after the name)
//	4       4     rows, uint32 LE
//	8       4     cols, uint32 LE
//	12      1     frame mode
//	13      1     name length
//	14      n     name bytes
//	14+n    …     body
//
// Frame modes: 0 raw float64 (absolute values — also the non-finite escape
// hatch inside delta blobs), 1 XOR delta, 2 float32 delta, 3 quantized
// delta, 4 top-k sparse delta. All integers are little-endian.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"fedomd/internal/sparse"
)

const (
	blobMagic      = 0xFD
	blobVersion    = 1
	blobHeaderLen  = 16
	frameHeaderLen = 14
)

// Frame modes.
const (
	modeRawF64 byte = 0
	modeXor    byte = 1
	modeF32    byte = 2
	modeQuant  byte = 3
	modeTopK   byte = 4
)

func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// appendRawF64Body writes absolute float64 values verbatim.
func appendRawF64Body(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = appendF64(dst, v)
	}
	return dst
}

func decodeRawF64Body(body []byte, out []float64) error {
	if len(body) != 8*len(out) {
		return fmt.Errorf("codec: raw body is %d bytes, want %d", len(body), 8*len(out))
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	return nil
}

// appendXorBody writes the XOR of cur's and ref's IEEE-754 bit patterns with
// leading zero bytes suppressed: a nibble array holds each element's
// significant-byte count (low nibble = even index), then the significant
// bytes follow low-byte first. Identical elements cost half a byte; after a
// few rounds most weights agree in sign, exponent, and high mantissa bytes,
// so typical cost is 3-5 bytes per element instead of 8.
func appendXorBody(dst []byte, cur, ref []float64) []byte {
	n := len(cur)
	nibOff := len(dst)
	dst = append(dst, make([]byte, (n+1)/2)...)
	for i := 0; i < n; i++ {
		x := math.Float64bits(cur[i]) ^ math.Float64bits(ref[i])
		sig := (71 - bits.LeadingZeros64(x)) / 8 // 0..8 significant bytes
		if i&1 == 0 {
			dst[nibOff+i/2] |= byte(sig)
		} else {
			dst[nibOff+i/2] |= byte(sig) << 4
		}
		for j := 0; j < sig; j++ {
			dst = append(dst, byte(x>>(8*j)))
		}
	}
	return dst
}

func decodeXorBody(body []byte, ref, out []float64) error {
	n := len(out)
	nib := (n + 1) / 2
	if len(body) < nib {
		return fmt.Errorf("codec: xor body truncated: %d bytes, need %d-byte nibble table", len(body), nib)
	}
	pos := nib
	for i := 0; i < n; i++ {
		var sig int
		if i&1 == 0 {
			sig = int(body[i/2] & 0x0F)
		} else {
			sig = int(body[i/2] >> 4)
		}
		if pos+sig > len(body) {
			return fmt.Errorf("codec: xor body truncated at element %d", i)
		}
		var x uint64
		for j := 0; j < sig; j++ {
			x |= uint64(body[pos+j]) << (8 * j)
		}
		pos += sig
		out[i] = math.Float64frombits(math.Float64bits(ref[i]) ^ x)
	}
	if pos != len(body) {
		return fmt.Errorf("codec: %d trailing bytes after xor body", len(body)-pos)
	}
	return nil
}

// appendF32Body writes delta values downcast to float32. When recon is
// non-nil it receives the value the decoder will reconstruct, for error
// feedback.
func appendF32Body(dst []byte, vals, recon []float64) []byte {
	for i, v := range vals {
		f := float32(v)
		dst = appendU32(dst, math.Float32bits(f))
		if recon != nil {
			recon[i] = float64(f)
		}
	}
	return dst
}

func decodeF32Body(body []byte, out []float64) error {
	if len(body) != 4*len(out) {
		return fmt.Errorf("codec: float32 body is %d bytes, want %d", len(body), 4*len(out))
	}
	for i := range out {
		out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:])))
	}
	return nil
}

// appendQuantBody writes vals under q-bit uniform quantization: a float64
// offset (lo) and step (scale) head the body, then one index per value —
// one byte at 8 bits, packed two-per-byte (low nibble first) at 4 bits.
// Quantization error per element is at most scale/2. recon, when non-nil,
// receives the dequantized values for error feedback.
func appendQuantBody(dst []byte, vals []float64, qbits int, recon []float64) []byte {
	if len(vals) == 0 {
		return appendF64(appendF64(dst, 0), 0)
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	levels := float64(uint64(1)<<qbits - 1)
	scale := (hi - lo) / levels
	dst = appendF64(dst, lo)
	dst = appendF64(dst, scale)
	quantize := func(v float64) uint64 {
		if scale <= 0 {
			return 0
		}
		q := math.Round((v - lo) / scale)
		if q < 0 {
			q = 0
		} else if q > levels {
			q = levels
		}
		return uint64(q)
	}
	if qbits == 8 {
		for i, v := range vals {
			q := quantize(v)
			dst = append(dst, byte(q))
			if recon != nil {
				recon[i] = lo + scale*float64(q)
			}
		}
		return dst
	}
	for i := 0; i < len(vals); i += 2 {
		q0 := quantize(vals[i])
		b := byte(q0)
		if recon != nil {
			recon[i] = lo + scale*float64(q0)
		}
		if i+1 < len(vals) {
			q1 := quantize(vals[i+1])
			b |= byte(q1) << 4
			if recon != nil {
				recon[i+1] = lo + scale*float64(q1)
			}
		}
		dst = append(dst, b)
	}
	return dst
}

func quantBodyLen(n, qbits int) int {
	if qbits == 8 {
		return 16 + n
	}
	return 16 + (n+1)/2
}

func decodeQuantBody(body []byte, qbits int, out []float64) error {
	if len(body) != quantBodyLen(len(out), qbits) {
		return fmt.Errorf("codec: quant body is %d bytes, want %d", len(body), quantBodyLen(len(out), qbits))
	}
	lo := math.Float64frombits(binary.LittleEndian.Uint64(body))
	scale := math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
	idx := body[16:]
	if qbits == 8 {
		for i := range out {
			out[i] = lo + scale*float64(idx[i])
		}
		return nil
	}
	for i := range out {
		b := idx[i/2]
		if i&1 == 0 {
			b &= 0x0F
		} else {
			b >>= 4
		}
		out[i] = lo + scale*float64(b)
	}
	return nil
}

// topKSelect returns the k entries of vals largest by magnitude as COO
// coordinates, ordered by ascending flat index. Ties break toward the lower
// index so the selection — and therefore the wire bytes — is deterministic.
func topKSelect(vals []float64, cols, k int) []sparse.Coord {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := math.Abs(vals[idx[a]]), math.Abs(vals[idx[b]])
		if va != vb {
			return va > vb
		}
		return idx[a] < idx[b]
	})
	idx = idx[:k]
	sort.Ints(idx)
	coords := make([]sparse.Coord, k)
	for i, flat := range idx {
		coords[i] = sparse.Coord{Row: flat / cols, Col: flat % cols, Val: vals[flat]}
	}
	return coords
}

// appendTopKBody writes a sparse delta: an inner-mode byte (rawF64, f32, or
// quant), the kept-entry count, the ascending flat indices as uint32, and
// the kept values under the inner encoding. recon, when non-nil, must be
// zeroed by the caller; kept positions receive their reconstructed values
// (dropped positions stay zero, so the residual update absorbs them).
func appendTopKBody(dst []byte, coords []sparse.Coord, cols int, inner byte, qbits int, recon []float64) []byte {
	dst = append(dst, inner)
	dst = appendU32(dst, uint32(len(coords)))
	kept := make([]float64, len(coords))
	for i, c := range coords {
		dst = appendU32(dst, uint32(c.Row*cols+c.Col))
		kept[i] = c.Val
	}
	var keptRecon []float64
	if recon != nil {
		keptRecon = make([]float64, len(kept))
	}
	switch inner {
	case modeRawF64:
		dst = appendRawF64Body(dst, kept)
		copy(keptRecon, kept)
	case modeF32:
		dst = appendF32Body(dst, kept, keptRecon)
	case modeQuant:
		dst = appendQuantBody(dst, kept, qbits, keptRecon)
	}
	if recon != nil {
		for i, c := range coords {
			recon[c.Row*cols+c.Col] = keptRecon[i]
		}
	}
	return dst
}

// decodeTopKBody fills out (which the caller zeroes) with the kept delta
// values at their flat indices.
func decodeTopKBody(body []byte, qbits int, out []float64) error {
	if len(body) < 5 {
		return fmt.Errorf("codec: top-k body is %d bytes, want at least 5", len(body))
	}
	inner := body[0]
	k := int(binary.LittleEndian.Uint32(body[1:]))
	if k > len(out) {
		return fmt.Errorf("codec: top-k keeps %d of %d entries", k, len(out))
	}
	if len(body) < 5+4*k {
		return fmt.Errorf("codec: top-k index table truncated")
	}
	vals := make([]float64, k)
	var err error
	switch inner {
	case modeRawF64:
		err = decodeRawF64Body(body[5+4*k:], vals)
	case modeF32:
		err = decodeF32Body(body[5+4*k:], vals)
	case modeQuant:
		err = decodeQuantBody(body[5+4*k:], qbits, vals)
	default:
		err = fmt.Errorf("codec: unknown top-k inner mode %d", inner)
	}
	if err != nil {
		return err
	}
	for i := 0; i < k; i++ {
		flat := int(binary.LittleEndian.Uint32(body[5+4*i:]))
		if flat >= len(out) {
			return fmt.Errorf("codec: top-k index %d out of range %d", flat, len(out))
		}
		out[flat] = vals[i]
	}
	return nil
}
