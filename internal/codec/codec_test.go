package codec

import (
	"bytes"
	"encoding/hex"
	"math"
	"math/rand"
	"testing"

	"fedomd/internal/mat"
	"fedomd/internal/nn"
)

func paramsFrom(names []string, mats []*mat.Dense) *nn.Params {
	p := nn.NewParams()
	for i, n := range names {
		p.Add(n, mats[i])
	}
	return p
}

func randParams(rng *rand.Rand, scale float64) *nn.Params {
	p := nn.NewParams()
	shapes := []struct {
		name string
		r, c int
	}{{"w0", 7, 5}, {"b0", 1, 5}, {"w1", 5, 3}, {"b1", 1, 3}}
	for _, s := range shapes {
		m := mat.New(s.r, s.c)
		d := m.Data()
		for i := range d {
			d[i] = scale * rng.NormFloat64()
		}
		p.Add(s.name, m)
	}
	return p
}

// perturb returns ref + noise, modelling one round of local training drift.
func perturb(rng *rand.Rand, ref *nn.Params, eps float64) *nn.Params {
	p := ref.Clone()
	for i := 0; i < p.Len(); i++ {
		d := p.At(i).Data()
		for j := range d {
			d[j] += eps * rng.NormFloat64()
		}
	}
	return p
}

func roundTrip(t *testing.T, opts Options, p, ref *nn.Params) *nn.Params {
	t.Helper()
	enc := NewEncoder(opts)
	blob, err := enc.EncodeParams(nil, p, ref)
	if err != nil {
		t.Fatalf("encode (%s): %v", opts.Name(), err)
	}
	dec, err := DecodeParams(blob, ref)
	if err != nil {
		t.Fatalf("decode (%s): %v", opts.Name(), err)
	}
	if err := p.Compatible(dec); err != nil {
		t.Fatalf("decoded params incompatible (%s): %v", opts.Name(), err)
	}
	return dec
}

func maxAbsErr(a, b *nn.Params) float64 {
	var worst float64
	for i := 0; i < a.Len(); i++ {
		da, db := a.At(i).Data(), b.At(i).Data()
		for j := range da {
			if e := math.Abs(da[j] - db[j]); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// Lossless tiers must round-trip bit-identically: raw (absolute frames,
// no reference) and XOR delta, including awkward values the arithmetic
// delta p = g + (p−g) would not reproduce exactly.
func TestRoundTripLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := randParams(rng, 1)
	p := perturb(rng, ref, 1e-3)
	// Values with no short float64 relationship to the reference.
	p.At(0).Data()[0] = 0x1p-1040        // subnormal
	p.At(0).Data()[1] = -math.MaxFloat64 // extreme exponent
	p.At(1).Data()[0] = 1 + 0x1p-52      // one ulp above 1
	p.At(2).Data()[0] = p.At(2).Data()[0] * (1 + 1e-16)

	opts := Options{Kind: Delta}
	dec := roundTrip(t, opts, p, ref)
	for i := 0; i < p.Len(); i++ {
		if !p.At(i).Equal(dec.At(i)) {
			t.Fatalf("%s: tensor %d not bit-identical", opts.Name(), i)
		}
	}
	// Absolute blob (nil reference) must also be exact.
	dec = roundTrip(t, Options{Kind: Delta}, p, nil)
	for i := 0; i < p.Len(); i++ {
		if !p.At(i).Equal(dec.At(i)) {
			t.Fatalf("absolute: tensor %d not bit-identical", i)
		}
	}
}

// Float32 delta error is bounded by 2⁻²³ of the delta magnitude.
func TestRoundTripFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ref := randParams(rng, 1)
	p := perturb(rng, ref, 0.05)
	dec := roundTrip(t, Options{Kind: Float32}, p, ref)
	for i := 0; i < p.Len(); i++ {
		dp, dr, dd := p.At(i).Data(), ref.At(i).Data(), dec.At(i).Data()
		for j := range dp {
			delta := dp[j] - dr[j]
			if e, bound := math.Abs(dd[j]-dp[j]), math.Abs(delta)*0x1p-23+1e-300; e > bound {
				t.Fatalf("tensor %d[%d]: float32 error %g exceeds 2^-23 bound %g", i, j, e, bound)
			}
		}
	}
}

// Quantize→dequantize error is bounded by half the step size
// (hi−lo)/(2^q − 1) per tensor.
func TestRoundTripQuantBound(t *testing.T) {
	for _, qbits := range []int{8, 4} {
		rng := rand.New(rand.NewSource(int64(9 + qbits)))
		ref := randParams(rng, 1)
		p := perturb(rng, ref, 0.05)
		dec := roundTrip(t, Options{Kind: Quant, Bits: qbits}, p, ref)
		for i := 0; i < p.Len(); i++ {
			dp, dr, dd := p.At(i).Data(), ref.At(i).Data(), dec.At(i).Data()
			lo, hi := math.Inf(1), math.Inf(-1)
			for j := range dp {
				d := dp[j] - dr[j]
				lo, hi = math.Min(lo, d), math.Max(hi, d)
			}
			step := (hi - lo) / float64(uint64(1)<<qbits-1)
			for j := range dp {
				if e := math.Abs(dd[j] - dp[j]); e > step/2*(1+1e-9) {
					t.Fatalf("q%d tensor %d[%d]: error %g exceeds step/2 = %g", qbits, i, j, e, step/2)
				}
			}
		}
	}
}

// Error feedback: encoding the same target repeatedly must converge — the
// residual carries what each round's quantization dropped, so the decoded
// sequence averages out to the true delta instead of a biased point.
func TestErrorFeedbackConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ref := randParams(rng, 1)
	p := perturb(rng, ref, 0.05)
	enc := NewEncoder(Options{Kind: Quant, Bits: 4})
	const rounds = 64
	sum := ref.Clone()
	sum.Zero()
	for r := 0; r < rounds; r++ {
		blob, err := enc.EncodeParams(nil, p, ref)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeParams(blob, ref)
		if err != nil {
			t.Fatal(err)
		}
		if err := sum.AXPY(1.0/rounds, dec); err != nil {
			t.Fatal(err)
		}
		PutParams(dec)
	}
	// One 4-bit round is off by up to step/2; the EF-compensated mean over
	// many rounds must be far tighter.
	if e := maxAbsErr(sum, p); e > 2e-3 {
		t.Fatalf("EF mean error %g; want < 2e-3", e)
	}
	// Without EF the mean stays pinned at one-round quantization error;
	// prove the compensation actually engaged by checking one round's error
	// is much larger than the mean's.
	oneBlob, _ := NewEncoder(Options{Kind: Quant, Bits: 4}).EncodeParams(nil, p, ref)
	oneDec, _ := DecodeParams(oneBlob, ref)
	if one := maxAbsErr(oneDec, p); one < 5*maxAbsErr(sum, p) {
		t.Fatalf("EF mean error %g not clearly below single-round error %g", maxAbsErr(sum, p), one)
	}
	PutParams(oneDec)
}

// Reset must drop every residual (the next lossy frame starts uncompensated,
// exactly as a fresh encoder would) and tolerate a nil receiver, since
// transport desync handlers clear unconditionally before the codec layer is
// armed.
func TestResetDropsResidualsAndIsNilSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ref := randParams(rng, 1)
	p := perturb(rng, ref, 0.05)
	enc := NewEncoder(Options{Kind: Quant, Bits: 4})
	if _, err := enc.EncodeParams(nil, p, ref); err != nil {
		t.Fatal(err)
	}
	if len(enc.residual) == 0 {
		t.Fatal("lossy encode left no residual to clear")
	}
	enc.Reset()
	if len(enc.residual) != 0 {
		t.Fatalf("Reset left %d residuals", len(enc.residual))
	}
	// A post-Reset frame must be bit-identical to a fresh encoder's: no trace
	// of the old error feedback may survive.
	a, err := enc.EncodeParams(nil, p, ref)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEncoder(Options{Kind: Quant, Bits: 4}).EncodeParams(nil, p, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("post-Reset frame differs from a fresh encoder's")
	}
	var nilEnc *Encoder
	nilEnc.Reset() // must not panic
}

// Top-k keeps exactly ⌈k·n⌉ entries per tensor — the largest deltas — and
// the error feedback residual holds everything dropped.
func TestTopKSparsification(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ref := randParams(rng, 1)
	p := perturb(rng, ref, 0.05)
	opts := Options{Kind: Delta, TopK: 0.25}
	enc := NewEncoder(opts)
	blob, err := enc.EncodeParams(nil, p, ref)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeParams(blob, ref)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Len(); i++ {
		dp, dr, dd := p.At(i).Data(), ref.At(i).Data(), dec.At(i).Data()
		n := len(dp)
		k := int(math.Ceil(0.25 * float64(n)))
		kept, minKept, maxDropped := 0, math.Inf(1), 0.0
		for j := range dp {
			if dd[j] != dr[j] { // entry was transmitted
				kept++
				minKept = math.Min(minKept, math.Abs(dp[j]-dr[j]))
				if dd[j] != dp[j] {
					t.Fatalf("tensor %d[%d]: kept entry not exact under Delta inner coding", i, j)
				}
			} else {
				maxDropped = math.Max(maxDropped, math.Abs(dp[j]-dr[j]))
			}
		}
		if kept > k {
			t.Fatalf("tensor %d: %d entries survived, want ≤ %d", i, kept, k)
		}
		if maxDropped > minKept {
			t.Fatalf("tensor %d: dropped |%g| while keeping |%g|", i, maxDropped, minKept)
		}
	}
	// The error feedback must eventually deliver the dropped mass: the mean
	// of many compensated uploads of the same target converges to it (the
	// residual is bounded, so Σ decoded ≈ T·delta).
	const rounds = 48
	sum := ref.Clone()
	sum.Zero()
	if err := sum.AXPY(1.0/rounds, dec); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < rounds; r++ {
		blob, err := enc.EncodeParams(nil, p, ref)
		if err != nil {
			t.Fatal(err)
		}
		d, err := DecodeParams(blob, ref)
		if err != nil {
			t.Fatal(err)
		}
		if err := sum.AXPY(1.0/rounds, d); err != nil {
			t.Fatal(err)
		}
		PutParams(d)
	}
	if one, mean := maxAbsErr(dec, p), maxAbsErr(sum, p); mean > one/4 {
		t.Fatalf("top-k EF mean error %g not clearly below single-round error %g", mean, one)
	}
	PutParams(dec)
}

// Non-finite tensors are escaped to absolute frames so the server's screen
// sees the genuine NaN, and the encoder's residual is not poisoned.
func TestNonFiniteEscapesLossyEncoding(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ref := randParams(rng, 1)
	p := perturb(rng, ref, 0.05)
	p.At(1).Data()[2] = math.NaN()
	enc := NewEncoder(Options{Kind: Quant, Bits: 8})
	blob, err := enc.EncodeParams(nil, p, ref)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeParams(blob, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(dec.At(1).Data()[2]) {
		t.Fatal("NaN did not survive the wire")
	}
	for j, v := range p.At(1).Data() {
		if math.Float64bits(dec.At(1).Data()[j]) != math.Float64bits(v) {
			t.Fatalf("non-finite tensor not sent verbatim at [%d]", j)
		}
	}
	if r, ok := enc.residual["b0"]; ok {
		for _, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("residual poisoned by non-finite upload")
			}
		}
	}
}

// A blob encoded against one reference must refuse to decode against
// another: the checksum names the exact base state.
func TestReferenceChecksumMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ref := randParams(rng, 1)
	p := perturb(rng, ref, 0.05)
	blob, err := NewEncoder(Options{Kind: Delta}).EncodeParams(nil, p, ref)
	if err != nil {
		t.Fatal(err)
	}
	wrong := perturb(rng, ref, 0.05)
	if _, err := DecodeParams(blob, wrong); err == nil {
		t.Fatal("decode against the wrong reference succeeded")
	}
	if _, err := DecodeParams(blob, nil); err == nil {
		t.Fatal("decode with no reference succeeded")
	}
}

func TestParseAndValidate(t *testing.T) {
	cases := []struct {
		name string
		bits int
		topk float64
		want Options
		bad  bool
	}{
		{name: "", want: Options{Kind: Raw}},
		{name: "raw", want: Options{Kind: Raw}},
		{name: "delta", want: Options{Kind: Delta}},
		{name: "f32", want: Options{Kind: Float32}},
		{name: "float32", want: Options{Kind: Float32}},
		{name: "quant", want: Options{Kind: Quant, Bits: 8}},
		{name: "quant", bits: 4, want: Options{Kind: Quant, Bits: 4}},
		{name: "q8", want: Options{Kind: Quant, Bits: 8}},
		{name: "q4", want: Options{Kind: Quant, Bits: 4}},
		{name: "delta", topk: 0.1, want: Options{Kind: Delta, TopK: 0.1}},
		{name: "zstd", bad: true},
		{name: "quant", bits: 3, bad: true},
		{name: "raw", topk: 0.5, bad: true},
		{name: "delta", topk: 1.0, bad: true},
		{name: "delta", topk: -0.1, bad: true},
	}
	for _, c := range cases {
		got, err := Parse(c.name, c.bits, c.topk)
		if c.bad {
			if err == nil {
				t.Errorf("Parse(%q, %d, %g): want error", c.name, c.bits, c.topk)
			}
			continue
		}
		if err != nil {
			t.Errorf("Parse(%q, %d, %g): %v", c.name, c.bits, c.topk, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q, %d, %g) = %+v, want %+v", c.name, c.bits, c.topk, got, c.want)
		}
	}
}

// Golden wire-format test: the v1 byte layout is pinned so a future change
// to the framing is a deliberate version bump, not a silent break.
func TestGoldenWireFormat(t *testing.T) {
	w := mat.NewFromData(1, 3, []float64{1.0, -2.5, 0.5})
	p := paramsFrom([]string{"w"}, []*mat.Dense{w})

	// Absolute blob (no reference): one raw-float64 frame.
	blob, err := NewEncoder(Options{Kind: Delta}).EncodeParams(nil, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantAbs := "" +
		"fd010100" + "01000000" + "0000000000000000" + // header: magic, v1, kind=delta, bits=0, count=1, refsum=0
		"18000000" + "01000000" + "03000000" + "00" + "01" + "77" + // frame: 24-byte body, 1x3, mode=raw, name "w"
		"000000000000f03f" + "00000000000004c0" + "000000000000e03f" // 1.0, -2.5, 0.5 LE
	if got := hex.EncodeToString(blob); got != wantAbs {
		t.Fatalf("absolute blob drifted from the pinned v1 layout:\n got %s\nwant %s", got, wantAbs)
	}

	// Delta blob: same tensor against a reference differing only in the
	// last element (0.5 → 0.75 flips one exponent-area byte).
	ref := paramsFrom([]string{"w"}, []*mat.Dense{mat.NewFromData(1, 3, []float64{1.0, -2.5, 0.75})})
	blob, err = NewEncoder(Options{Kind: Delta}).EncodeParams(nil, p, ref)
	if err != nil {
		t.Fatal(err)
	}
	refsum := RefSum(ref)
	head := blob[:8]
	wantHead := "fd010100" + "01000000"
	if got := hex.EncodeToString(head); got != wantHead {
		t.Fatalf("delta blob header drifted: got %s want %s", got, wantHead)
	}
	var sumBytes [8]byte
	for i := range sumBytes {
		sumBytes[i] = byte(refsum >> (8 * i))
	}
	if !bytes.Equal(blob[8:16], sumBytes[:]) {
		t.Fatalf("refsum field %x does not match RefSum %016x", blob[8:16], refsum)
	}
	wantFrame := "09000000" + "01000000" + "03000000" + "01" + "01" + "77" + // 9-byte body, 1x3, mode=xor, "w"
		"0007" + // nibble table: elements 0,1 identical (0 bytes), element 2 has 7 significant bytes
		"00000000000008" // xor of 0.5 and 0.75 bit patterns, low bytes first
	if got := hex.EncodeToString(blob[16:]); got != wantFrame {
		t.Fatalf("xor frame drifted from the pinned v1 layout:\n got %s\nwant %s", got, wantFrame)
	}

	// Decode both ways to prove the pinned bytes are live, not a fossil.
	dec, err := DecodeParams(blob, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.At(0).Equal(w) {
		t.Fatal("pinned delta blob decodes to the wrong values")
	}
	PutParams(dec)
}

// The refsum definition itself is pinned: it is half of the wire contract
// (both peers must hash references identically forever).
func TestGoldenRefSum(t *testing.T) {
	ref := paramsFrom([]string{"w"}, []*mat.Dense{mat.NewFromData(1, 2, []float64{1.0, -2.5})})
	const want = 0x3a36ef4153fecdc3 // regenerate only on a deliberate wire version bump
	if got := RefSum(ref); got != want {
		t.Fatalf("RefSum = %016x, want %016x", got, want)
	}
	if RefSum(nil) != 0 {
		t.Fatal("RefSum(nil) must be 0 (absolute blob marker)")
	}
}

// Compression sanity: after a small perturbation the XOR delta and the
// quantized tiers must land well under the raw 8 bytes/element.
func TestEncodedSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	// Model-sized tensors so the per-frame headers amortize away.
	ref := nn.NewParams()
	for _, s := range []struct {
		name string
		r, c int
	}{{"w0", 128, 64}, {"b0", 1, 64}, {"w1", 64, 16}, {"b1", 1, 16}} {
		m := mat.New(s.r, s.c)
		d := m.Data()
		for i := range d {
			d[i] = rng.NormFloat64()
		}
		ref.Add(s.name, m)
	}
	p := perturb(rng, ref, 1e-4)
	raw := p.Bytes()
	for _, c := range []struct {
		opts Options
		max  float64 // fraction of raw
	}{
		{Options{Kind: Float32}, 0.55},
		{Options{Kind: Quant, Bits: 8}, 0.20},
		{Options{Kind: Quant, Bits: 4}, 0.15},
		{Options{Kind: Quant, Bits: 8, TopK: 0.1}, 0.15},
	} {
		blob, err := NewEncoder(c.opts).EncodeParams(nil, p, ref)
		if err != nil {
			t.Fatal(err)
		}
		if frac := float64(len(blob)) / float64(raw); frac > c.max {
			t.Errorf("%s: blob is %.2f of raw, want ≤ %.2f", c.opts.Name(), frac, c.max)
		}
	}
}
