package codec

import (
	"fedomd/internal/nn"
	"fedomd/internal/obs"
)

// SetTrace arms the encoder with a tracer: every EncodeParams call then
// emits a "codec/encode" span parented at parent() (typically the tracer's
// active round/handle context). A nil tracer disarms tracing; both the
// tracer and parent are consulted per call so the hook costs nothing when
// tracing is off.
func (e *Encoder) SetTrace(tr *obs.Tracer, parent func() obs.SpanContext) {
	e.tracer = tr
	e.parent = parent
}

// traceParent resolves the configured parent context, tolerating a nil
// callback.
func (e *Encoder) traceParent() obs.SpanContext {
	if e.parent == nil {
		return obs.SpanContext{}
	}
	return e.parent()
}

// DecodeParamsTraced is DecodeParams wrapped in a "codec/decode" span when
// tr is non-nil; parent may be nil (the span then roots a local trace).
func DecodeParamsTraced(blob []byte, ref *nn.Params, tr *obs.Tracer, parent obs.SpanContext) (*nn.Params, error) {
	if tr == nil {
		return DecodeParams(blob, ref)
	}
	sp := tr.Start(parent, obs.SpanDecode)
	p, err := DecodeParams(blob, ref)
	sp.SetAttr(obs.AttrBytesEnc, len(blob))
	if p != nil {
		sp.SetAttr(obs.AttrTensors, p.Len())
	}
	if err != nil {
		sp.SetAttr(obs.AttrErr, err.Error())
	}
	sp.End()
	return p, err
}
