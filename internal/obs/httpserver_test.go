package obs

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestHTTPServerBindServeShutdown(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	})
	s, err := StartHTTPServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("got %d %q", resp.StatusCode, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The port is released: a fresh server can bind the exact address.
	s2, err := StartHTTPServer(s.Addr(), h)
	if err != nil {
		t.Fatalf("rebinding released address: %v", err)
	}
	if err := s2.ShutdownTimeout(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Shutdown is idempotent.
	if err := s2.ShutdownTimeout(time.Second); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestHTTPServerDrainsInFlight(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "late")
	})
	s, err := StartHTTPServer("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var status int
	var body string
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get("http://" + s.Addr() + "/")
		if err != nil {
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		status, body = resp.StatusCode, string(b)
	}()
	<-entered
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	if err := s.ShutdownTimeout(5 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if status != 200 || body != "late" {
		t.Fatalf("in-flight request dropped during shutdown: %d %q", status, body)
	}
}
