package obs

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"fedomd/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite the exposition golden file")

// goldenAggregator builds a fully deterministic aggregator: fixed counters,
// gauges, and a histogram whose reservoir is exactly the observed values
// (well under the sampling cap), so the exposition is byte-stable.
func goldenAggregator() *telemetry.Aggregator {
	agg := telemetry.NewAggregator()
	agg.Count("fed/rounds", 8)
	agg.Count("codec/bytes_raw", 4096)
	agg.Count("obs/health_warn", 2)
	agg.Gauge("fed/val_acc", 0.875)
	for i := 1; i <= 100; i++ {
		agg.Observe("fed/round_seconds", float64(i)*0.01)
	}
	return agg
}

func goldenBuild() *BuildInfo {
	return &BuildInfo{Module: "fedomd", Version: "v1.2.3", GoVersion: "go1.24.0",
		Codec: "delta", Policy: "drop-round"}
}

func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	WriteExposition(&buf, goldenAggregator(), goldenBuild())

	path := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden (run with -update if intentional)\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestExpositionLintClean(t *testing.T) {
	var buf bytes.Buffer
	WriteExposition(&buf, goldenAggregator(), goldenBuild())
	if problems := LintExposition(bytes.NewReader(buf.Bytes())); len(problems) > 0 {
		t.Fatalf("self-lint found problems:\n%s", strings.Join(problems, "\n"))
	}
}

// Every exposed name must be a valid Prometheus metric name, appear in at
// most one family, and histogram buckets must be monotone with le ascending.
func TestExpositionInvariants(t *testing.T) {
	var buf bytes.Buffer
	WriteExposition(&buf, goldenAggregator(), goldenBuild())

	nameRE := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	typed := map[string]bool{}
	var bucketLes []float64
	var bucketCounts []int64
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			name := fields[2]
			if !nameRE.MatchString(name) {
				t.Errorf("invalid metric name %q", name)
			}
			if !strings.HasPrefix(name, "fedomd_") {
				t.Errorf("metric %q missing the fedomd_ prefix", name)
			}
			if typed[name] {
				t.Errorf("duplicate TYPE for %q", name)
			}
			typed[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, `_bucket{le="`); i >= 0 {
			rest := line[i+len(`_bucket{le="`):]
			q := strings.Index(rest, `"`)
			le := rest[:q]
			cnt, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("bucket count on %q: %v", line, err)
			}
			var bound float64
			if le == "+Inf" {
				bound = math.Inf(1)
			} else if bound, err = strconv.ParseFloat(le, 64); err != nil {
				t.Fatalf("bucket bound on %q: %v", line, err)
			}
			if n := len(bucketLes); n > 0 && (bound <= bucketLes[n-1] || cnt < bucketCounts[n-1]) {
				t.Errorf("bucket invariant broken at %q (prev le %v count %d)", line, bucketLes[n-1], bucketCounts[n-1])
			}
			bucketLes = append(bucketLes, bound)
			bucketCounts = append(bucketCounts, cnt)
		}
	}
	if len(bucketLes) == 0 {
		t.Fatal("no histogram buckets rendered")
	}
	// The histogram's +Inf bucket must equal the exact population.
	if got := bucketCounts[len(bucketCounts)-1]; got != 100 {
		t.Fatalf("+Inf bucket %d, want the exact count 100", got)
	}
}

// The linter must actually catch broken expositions — each corruption in
// isolation.
func TestLintExpositionCatchesProblems(t *testing.T) {
	cases := map[string]string{
		"duplicate series": "# TYPE fedomd_x_total counter\nfedomd_x_total 1\nfedomd_x_total 2\n",
		"bad name":         "# TYPE 0bad gauge\n0bad 1\n",
		"bucket not monotone": "# TYPE fedomd_h histogram\n" +
			"fedomd_h_bucket{le=\"0.1\"} 5\nfedomd_h_bucket{le=\"0.5\"} 3\n" +
			"fedomd_h_bucket{le=\"+Inf\"} 5\nfedomd_h_sum 1\nfedomd_h_count 5\n",
		"inf bucket mismatch": "# TYPE fedomd_h histogram\n" +
			"fedomd_h_bucket{le=\"+Inf\"} 5\nfedomd_h_sum 1\nfedomd_h_count 7\n",
		"le not ascending": "# TYPE fedomd_h histogram\n" +
			"fedomd_h_bucket{le=\"0.5\"} 3\nfedomd_h_bucket{le=\"0.1\"} 4\n" +
			"fedomd_h_bucket{le=\"+Inf\"} 5\nfedomd_h_sum 1\nfedomd_h_count 5\n",
		"unparseable value": "# TYPE fedomd_x gauge\nfedomd_x pancake\n",
	}
	for name, exposition := range cases {
		if problems := LintExposition(strings.NewReader(exposition)); len(problems) == 0 {
			t.Errorf("%s: lint passed a broken exposition:\n%s", name, exposition)
		}
	}
	if problems := LintExposition(strings.NewReader("# TYPE fedomd_ok_total counter\nfedomd_ok_total 3\n")); len(problems) > 0 {
		t.Errorf("clean exposition flagged: %v", problems)
	}
}

func TestPromName(t *testing.T) {
	if got := promName("fed/round_seconds"); got != "fedomd_fed_round_seconds" {
		t.Fatalf("promName = %q", got)
	}
}
