package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// dashRingCap bounds how many round payloads the dashboard retains for
// late-joining browsers.
const dashRingCap = 256

// roundPayload is the JSON shape pushed over SSE, one per finished round.
type roundPayload struct {
	Round       int                `json:"round"`
	TrainLoss   float64            `json:"train_loss"`
	ValAcc      float64            `json:"val_acc"`
	TestAcc     float64            `json:"test_acc"`
	BestValAcc  float64            `json:"best_val_acc"`
	Evaluated   bool               `json:"evaluated"`
	Degraded    bool               `json:"degraded"`
	Dropped     int                `json:"dropped"`
	Quarantined int                `json:"quarantined"`
	BytesUp     int64              `json:"bytes_up"`
	BytesDown   int64              `json:"bytes_down"`
	Latencies   map[string]float64 `json:"latencies"` // party -> train seconds
	Health      []healthPayload    `json:"health,omitempty"`
}

type healthPayload struct {
	Rule    string `json:"rule"`
	Level   string `json:"level"`
	Message string `json:"message"`
}

// Dashboard is a RoundObserver serving a live single-page view of the run:
// `/` is the embedded HTML shell, `/events` the SSE feed (replaying the
// retained ring to new subscribers). Wire it after the Health monitor in a
// MultiRoundObserver so each round's payload carries that round's fired
// rules.
type Dashboard struct {
	health *Health // optional; source of per-round health annotations

	mu     sync.Mutex
	ring   []roundPayload
	subs   map[chan []byte]struct{}
	seenHE int // health events already attributed to earlier rounds
}

// NewDashboard builds a dashboard; health may be nil.
func NewDashboard(health *Health) *Dashboard {
	return &Dashboard{health: health, subs: make(map[chan []byte]struct{})}
}

// ObserveRound implements RoundObserver: snapshots the round into the ring
// and fans it out to connected browsers.
func (d *Dashboard) ObserveRound(ctx SpanContext, o RoundObservation) {
	if d == nil {
		return
	}
	p := roundPayload{
		Round:       o.Round,
		TrainLoss:   o.TrainLoss,
		ValAcc:      o.ValAcc,
		TestAcc:     o.TestAcc,
		BestValAcc:  o.BestValAcc,
		Evaluated:   o.Evaluated,
		Degraded:    o.Degraded,
		Dropped:     o.Dropped,
		Quarantined: o.Quarantined,
		BytesUp:     o.BytesUp,
		BytesDown:   o.BytesDown,
		Latencies:   make(map[string]float64, len(o.Parties)),
	}
	for _, party := range o.Parties {
		p.Latencies[party.Name] = party.TrainSeconds
	}

	d.mu.Lock()
	if d.health != nil {
		all := d.health.Events()
		for _, e := range all[min(d.seenHE, len(all)):] {
			p.Health = append(p.Health, healthPayload{Rule: e.Rule, Level: e.Level, Message: e.Message})
		}
		d.seenHE = len(all)
	}
	d.ring = append(d.ring, p)
	if len(d.ring) > dashRingCap {
		d.ring = d.ring[len(d.ring)-dashRingCap:]
	}
	line, err := json.Marshal(p)
	subs := make([]chan []byte, 0, len(d.subs))
	for ch := range d.subs {
		subs = append(subs, ch)
	}
	d.mu.Unlock()
	if err != nil {
		return
	}
	for _, ch := range subs {
		select {
		case ch <- line:
		default: // slow browser: drop rather than stall the round loop
		}
	}
}

// subscribe registers a feed channel and returns the replay backlog.
func (d *Dashboard) subscribe() (ch chan []byte, backlog [][]byte) {
	ch = make(chan []byte, 64)
	d.mu.Lock()
	for _, p := range d.ring {
		if line, err := json.Marshal(p); err == nil {
			backlog = append(backlog, line)
		}
	}
	d.subs[ch] = struct{}{}
	d.mu.Unlock()
	return ch, backlog
}

func (d *Dashboard) unsubscribe(ch chan []byte) {
	d.mu.Lock()
	delete(d.subs, ch)
	d.mu.Unlock()
}

// Handler returns the dashboard mux: `/` (HTML) and `/events` (SSE).
func (d *Dashboard) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashHTML))
	})
	mux.HandleFunc("/events", d.serveSSE)
	return mux
}

func (d *Dashboard) serveSSE(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	ch, backlog := d.subscribe()
	defer d.unsubscribe(ch)
	for _, line := range backlog {
		fmt.Fprintf(w, "data: %s\n\n", line)
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case line := <-ch:
			fmt.Fprintf(w, "data: %s\n\n", line)
			fl.Flush()
		}
	}
}

// dashHTML is the whole client: an EventSource feeding a round table, a
// per-party latency sparkline canvas, accuracy/byte readouts and the health
// event log. Embedded so the binary stays self-contained.
const dashHTML = `<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>fedomd run dashboard</title>
<style>
 body { font: 13px/1.5 monospace; margin: 1.5em; background: #111; color: #ddd; }
 h1 { font-size: 15px; } h2 { font-size: 13px; margin: 1.2em 0 .4em; color: #9cf; }
 table { border-collapse: collapse; }
 td, th { padding: 2px 10px; border-bottom: 1px solid #333; text-align: right; }
 th { color: #9cf; }
 canvas { background: #181818; border: 1px solid #333; }
 .warn { color: #fc6; } .critical { color: #f66; } .muted { color: #777; }
 #stats span { margin-right: 2em; }
</style>
</head>
<body>
<h1>fedomd live run</h1>
<div id="stats">
 <span>round <b id="round">-</b></span>
 <span>val acc <b id="val">-</b></span>
 <span>best <b id="best">-</b></span>
 <span>loss <b id="loss">-</b></span>
 <span>&uarr; <b id="up">0</b> B</span>
 <span>&darr; <b id="down">0</b> B</span>
 <span class="muted" id="conn">connecting…</span>
</div>
<h2>per-party train latency (s)</h2>
<canvas id="spark" width="720" height="120"></canvas>
<h2>health events</h2>
<div id="health" class="muted">none</div>
<h2>rounds</h2>
<table>
 <thead><tr><th>round</th><th>loss</th><th>val</th><th>test</th><th>drop</th><th>quar</th><th>flags</th></tr></thead>
 <tbody id="rows"></tbody>
</table>
<script>
const hist = [], parties = {};
const $ = id => document.getElementById(id);
function fmtB(n){ return n > 1<<20 ? (n/1048576).toFixed(1)+'M' : n > 1024 ? (n/1024).toFixed(1)+'k' : n; }
function draw(){
  const c = $('spark'), g = c.getContext('2d');
  g.clearRect(0,0,c.width,c.height);
  const names = Object.keys(parties).sort();
  let max = 0;
  names.forEach(n => parties[n].forEach(v => { if (v > max) max = v; }));
  if (!max) return;
  const hues = [200, 120, 30, 280, 0, 60, 170, 320];
  names.forEach((n, i) => {
    const pts = parties[n];
    g.strokeStyle = 'hsl(' + hues[i % hues.length] + ',70%,60%)';
    g.beginPath();
    pts.forEach((v, x) => {
      const px = 4 + x * (c.width - 8) / Math.max(1, pts.length - 1);
      const py = c.height - 6 - (v / max) * (c.height - 16);
      x ? g.lineTo(px, py) : g.moveTo(px, py);
    });
    g.stroke();
    g.fillStyle = g.strokeStyle;
    g.fillText(n, 6 + (i % 4) * 120, 12 + Math.floor(i / 4) * 14);
  });
}
function onRound(p){
  hist.push(p);
  $('round').textContent = p.round;
  if (p.evaluated) { $('val').textContent = p.val_acc.toFixed(4); $('best').textContent = p.best_val_acc.toFixed(4); }
  $('loss').textContent = p.train_loss.toFixed(4);
  $('up').textContent = fmtB(p.bytes_up); $('down').textContent = fmtB(p.bytes_down);
  for (const [name, sec] of Object.entries(p.latencies || {})) {
    (parties[name] = parties[name] || []).push(sec);
    if (parties[name].length > 120) parties[name].shift();
  }
  draw();
  const tr = document.createElement('tr');
  const flags = [p.degraded ? 'degraded' : '', (p.health || []).map(h => h.rule).join(' ')].filter(Boolean).join(' ');
  tr.innerHTML = '<td>' + p.round + '</td><td>' + p.train_loss.toFixed(4) + '</td><td>' +
    (p.evaluated ? p.val_acc.toFixed(4) : '·') + '</td><td>' +
    (p.evaluated ? p.test_acc.toFixed(4) : '·') + '</td><td>' + p.dropped + '</td><td>' +
    p.quarantined + '</td><td style="text-align:left">' + flags + '</td>';
  const rows = $('rows');
  rows.insertBefore(tr, rows.firstChild);
  while (rows.children.length > 60) rows.removeChild(rows.lastChild);
  (p.health || []).forEach(h => {
    if ($('health').classList.contains('muted')) { $('health').textContent = ''; $('health').classList.remove('muted'); }
    const div = document.createElement('div');
    div.className = h.level;
    div.textContent = 'round ' + p.round + ' [' + h.level + '] ' + h.rule + ': ' + h.message;
    $('health').insertBefore(div, $('health').firstChild);
  });
}
const es = new EventSource('events');
es.onopen = () => { $('conn').textContent = 'live'; };
es.onerror = () => { $('conn').textContent = 'disconnected'; };
es.onmessage = ev => onRound(JSON.parse(ev.data));
</script>
</body>
</html>
`
