package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"fedomd/internal/telemetry"
)

// decodeLines parses every JSONL line into a generic map, failing on any
// malformed line — the invariant the concurrent-writing test leans on.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatalf("malformed JSONL line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestSpanParentLinks(t *testing.T) {
	var buf bytes.Buffer
	jl := telemetry.NewJSONL(&buf)
	tr := NewTracer(jl)

	root := tr.Root(SpanRun)
	round := tr.Start(root.Context(), SpanRound)
	round.SetAttr(AttrRound, 3)
	train := tr.Start(round.Context(), SpanClientTrain)
	train.SetAttr(AttrParty, "party-0")
	train.End()
	round.End()
	root.End()
	tr.Event(round.Context(), MetricHealthEvent, LevelWarn, KV(AttrRule, RuleNonFinite))
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}

	recs := decodeLines(t, &buf)
	byName := map[string]map[string]any{}
	for _, r := range recs {
		byName[r["name"].(string)] = r
	}
	rootRec, roundRec, trainRec := byName[SpanRun], byName[SpanRound], byName[SpanClientTrain]
	if rootRec == nil || roundRec == nil || trainRec == nil {
		t.Fatalf("missing span records, got %v", byName)
	}
	// One trace, parent chain root <- round <- train.
	if rootRec["trace"] != roundRec["trace"] || roundRec["trace"] != trainRec["trace"] {
		t.Fatal("spans did not share a trace ID")
	}
	if rootRec["parent"] != nil {
		t.Fatalf("root span has parent %v", rootRec["parent"])
	}
	if roundRec["parent"] != rootRec["span"] {
		t.Fatalf("round parent = %v, want root span %v", roundRec["parent"], rootRec["span"])
	}
	if trainRec["parent"] != roundRec["span"] {
		t.Fatalf("train parent = %v, want round span %v", trainRec["parent"], roundRec["span"])
	}
	if trainRec["attrs"].(map[string]any)["party"] != "party-0" {
		t.Fatalf("train attrs = %v", trainRec["attrs"])
	}
	ev := byName[MetricHealthEvent]
	if ev == nil || ev["type"] != "event" || ev["parent"] != roundRec["span"] {
		t.Fatalf("health event not parented at the round span: %v", ev)
	}
	if spans, events := tr.Counts(); spans != 3 || events != 1 {
		t.Fatalf("Counts() = %d spans, %d events; want 3, 1", spans, events)
	}
}

// A nil Tracer — the disabled-observability path — must be completely inert:
// no panics, zero-value contexts, nil spans whose methods are no-ops.
func TestNilTracerInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer claims enabled")
	}
	sp := tr.Root(SpanRun)
	if sp != nil {
		t.Fatal("nil tracer minted a span")
	}
	sp.SetAttr(AttrRound, 1) // no-op, must not panic
	sp.End()
	if sp.Context().Valid() {
		t.Fatal("nil span has a valid context")
	}
	if tr.Start(SpanContext{}, SpanRound) != nil {
		t.Fatal("nil tracer Start minted a span")
	}
	tr.SetActive(SpanContext{Trace: 1, Span: 2})
	if tr.Active().Valid() {
		t.Fatal("nil tracer retained an active context")
	}
	tr.Event(SpanContext{}, MetricChaosFault, LevelWarn)
	if s, e := tr.Counts(); s != 0 || e != 0 {
		t.Fatal("nil tracer counted emissions")
	}
	if NewTracer(nil) != nil {
		t.Fatal("NewTracer(nil sink) must return a nil tracer")
	}
}

// Satellite: concurrent trace writing through the shared JSONL sink. Many
// goroutines emit spans and events while telemetry records interleave on the
// same stream; every line must come out whole (no interleaved JSON).
func TestConcurrentTraceJSONL(t *testing.T) {
	var buf bytes.Buffer
	jl := telemetry.NewJSONL(&buf)
	tr := NewTracer(jl)

	const workers, perWorker = 16, 50
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Start(tr.Active(), SpanClientTrain)
				sp.SetAttr(AttrParty, fmt.Sprintf("party-%d", w))
				sp.SetAttr(AttrRound, i)
				// Telemetry events share the sink with the spans.
				jl.Observe("fed/round_seconds", float64(i))
				tr.Event(sp.Context(), MetricChaosFault, LevelWarn, KV(AttrOp, "train_local"))
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}

	recs := decodeLines(t, &buf)
	var spans, events, metrics int
	for _, r := range recs {
		switch r["type"] {
		case "span":
			spans++
		case "event":
			events++
		case "observe":
			metrics++
		}
	}
	want := workers * perWorker
	if spans != want || events != want || metrics != want {
		t.Fatalf("got %d spans, %d events, %d metric lines; want %d each", spans, events, metrics, want)
	}
	if s, e := tr.Counts(); s != int64(want) || e != int64(want) {
		t.Fatalf("tracer counts %d/%d, want %d/%d", s, e, want, want)
	}
}

func TestNewRunID(t *testing.T) {
	a, b := NewRunID(), NewRunID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("run IDs %q, %q are not 16 hex digits", a, b)
	}
	if a == b {
		t.Fatalf("consecutive run IDs collided: %q", a)
	}
}

// Span IDs minted concurrently must be unique — the ID sequence is the only
// thing keeping remote spans distinguishable in one merged trace file.
func TestSpanIDUniqueness(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(telemetry.NewJSONL(&buf))
	const n = 10_000
	ids := make(chan SpanID, n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				ids <- tr.Start(SpanContext{}, SpanRPC).Context().Span
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[SpanID]bool, n)
	for id := range ids {
		if id == 0 {
			t.Fatal("zero span ID minted")
		}
		if seen[id] {
			t.Fatalf("span ID %v minted twice", id)
		}
		seen[id] = true
	}
}
