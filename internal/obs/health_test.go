package obs

import (
	"bytes"
	"strings"
	"testing"

	"fedomd/internal/telemetry"
)

// fire builds a monitor over a capture tracer + aggregator, feeds it the
// observations, and returns (events, aggregator, trace buffer).
func fire(t *testing.T, cfg HealthConfig, obsv ...RoundObservation) ([]HealthEvent, *telemetry.Aggregator, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	jl := telemetry.NewJSONL(&buf)
	agg := telemetry.NewAggregator()
	h := NewHealth(cfg, NewTracer(jl), agg)
	for _, o := range obsv {
		h.ObserveRound(SpanContext{Trace: 1, Span: 2}, o)
	}
	if err := jl.Flush(); err != nil {
		t.Fatal(err)
	}
	return h.Events(), agg, &buf
}

func TestRuleNonFinite(t *testing.T) {
	events, agg, buf := fire(t, HealthConfig{},
		RoundObservation{Round: 0, NonFinite: 1},
		RoundObservation{Round: 1, NonFinite: 3},
		RoundObservation{Round: 2},
	)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2: %v", len(events), events)
	}
	if events[0].Rule != RuleNonFinite || events[0].Level != LevelWarn {
		t.Fatalf("round 0: %+v", events[0])
	}
	if events[1].Level != LevelCritical {
		t.Fatalf("3 screens in one round should be critical: %+v", events[1])
	}
	if agg.Counter(MetricHealthWarn) != 1 || agg.Counter(MetricHealthCritical) != 1 {
		t.Fatalf("counters warn=%d critical=%d", agg.Counter(MetricHealthWarn), agg.Counter(MetricHealthCritical))
	}
	if !strings.Contains(buf.String(), `"name":"obs/health"`) {
		t.Fatal("health events missing from the trace stream")
	}
}

func TestRuleStragglerSkew(t *testing.T) {
	mk := func(times ...float64) RoundObservation {
		o := RoundObservation{Round: 1}
		for i, s := range times {
			o.Parties = append(o.Parties, PartyObservation{Name: string(rune('a' + i)), TrainSeconds: s})
		}
		return o
	}
	// 8x skew above the 1ms floor: fires.
	events, _, _ := fire(t, HealthConfig{}, mk(0.010, 0.010, 0.010, 0.010, 0.080))
	if len(events) != 1 || events[0].Rule != RuleStragglerSkew {
		t.Fatalf("skewed fleet: %v", events)
	}
	if events[0].Value < 7.9 || events[0].Value > 8.1 {
		t.Fatalf("skew factor %v, want ~8", events[0].Value)
	}
	// Same shape in microseconds: suppressed by the absolute floor.
	events, _, _ = fire(t, HealthConfig{}, mk(10e-6, 10e-6, 10e-6, 10e-6, 80e-6))
	if len(events) != 0 {
		t.Fatalf("microsecond-scale run alarmed: %v", events)
	}
	// Balanced fleet: quiet.
	events, _, _ = fire(t, HealthConfig{}, mk(0.010, 0.011, 0.012, 0.010))
	if len(events) != 0 {
		t.Fatalf("balanced fleet alarmed: %v", events)
	}
}

func TestRuleAccuracyRegression(t *testing.T) {
	events, _, _ := fire(t, HealthConfig{},
		RoundObservation{Round: 0, Evaluated: true, ValAcc: 0.80}, // establishes best; no event
		RoundObservation{Round: 1, Evaluated: true, ValAcc: 0.74}, // drop 0.06: warn
		RoundObservation{Round: 2, Evaluated: true, ValAcc: 0.68}, // drop 0.12 >= 2*0.05: critical
		RoundObservation{Round: 3, Evaluated: true, ValAcc: 0.79}, // within tolerance
		RoundObservation{Round: 4, ValAcc: 0},                     // not evaluated: ignored
	)
	if len(events) != 2 {
		t.Fatalf("got %v", events)
	}
	if events[0].Round != 1 || events[0].Level != LevelWarn {
		t.Fatalf("warn event: %+v", events[0])
	}
	if events[1].Round != 2 || events[1].Level != LevelCritical {
		t.Fatalf("critical event: %+v", events[1])
	}
}

func TestRuleQuarantineGrowth(t *testing.T) {
	parties := []PartyObservation{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	events, _, _ := fire(t, HealthConfig{},
		RoundObservation{Round: 0, Parties: parties},
		RoundObservation{Round: 1, Parties: parties, Quarantined: 1}, // grew 0 -> 1: warn
		RoundObservation{Round: 2, Parties: parties, Quarantined: 1}, // steady: quiet
		RoundObservation{Round: 3, Parties: parties, Quarantined: 3}, // half the fleet: critical
	)
	if len(events) != 2 {
		t.Fatalf("got %v", events)
	}
	if events[0].Round != 1 || events[0].Level != LevelWarn || events[0].Rule != RuleQuarantine {
		t.Fatalf("first growth: %+v", events[0])
	}
	if events[1].Round != 3 || events[1].Level != LevelCritical {
		t.Fatalf("mass benching: %+v", events[1])
	}
}

func TestRuleCodecResets(t *testing.T) {
	events, _, _ := fire(t, HealthConfig{},
		RoundObservation{Round: 0},
		RoundObservation{Round: 1, CodecResets: 2},
	)
	if len(events) != 1 || events[0].Rule != RuleCodecResets || events[0].Value != 2 {
		t.Fatalf("got %v", events)
	}
}

// A nil monitor (observability off) must absorb observations silently, and
// MultiRoundObserver must tolerate nil members.
func TestNilHealthAndMultiObserver(t *testing.T) {
	var h *Health
	h.ObserveRound(SpanContext{}, RoundObservation{NonFinite: 5})
	if h.Events() != nil {
		t.Fatal("nil monitor produced events")
	}
	real := NewHealth(HealthConfig{}, nil, nil)
	m := MultiRoundObserver{nil, real, nil}
	m.ObserveRound(SpanContext{}, RoundObservation{Round: 7, NonFinite: 1})
	if got := real.Events(); len(got) != 1 || got[0].Round != 7 {
		t.Fatalf("fan-out missed the real observer: %v", got)
	}
}

func TestRuleStalenessHigh(t *testing.T) {
	base := RoundObservation{Round: 1, Async: true, BufferFill: 3, BufferTarget: 4, StalenessLimit: 8}

	quiet := base
	quiet.StalenessP99 = 2 // below 0.75 × 8
	if events, _, _ := fire(t, HealthConfig{}, quiet); len(events) != 0 {
		t.Fatalf("low staleness fired: %v", events)
	}

	warn := base
	warn.StalenessP99 = 6 // ≥ 0.75 × 8
	events, _, _ := fire(t, HealthConfig{}, warn)
	if len(events) != 1 || events[0].Rule != RuleStalenessHigh || events[0].Level != LevelWarn {
		t.Fatalf("warn case: %v", events)
	}

	crit := base
	crit.StalenessP99 = 8 // at the eviction bound
	events, _, _ = fire(t, HealthConfig{}, crit)
	if len(events) != 1 || events[0].Level != LevelCritical {
		t.Fatalf("critical case: %v", events)
	}

	// Sync rounds and empty folds never fire, whatever the numbers say.
	syncRound := warn
	syncRound.Async = false
	empty := warn
	empty.BufferFill = 0
	if events, _, _ := fire(t, HealthConfig{}, syncRound, empty); len(events) != 0 {
		t.Fatalf("sync/empty rounds fired: %v", events)
	}
}

func TestRuleBufferStall(t *testing.T) {
	stalled := RoundObservation{Round: 1, Async: true, BufferStalled: true, BufferFill: 1, BufferTarget: 4}
	healthy := RoundObservation{Round: 2, Async: true, BufferFill: 4, BufferTarget: 4}

	events, _, _ := fire(t, HealthConfig{}, stalled)
	if len(events) != 1 || events[0].Rule != RuleBufferStall || events[0].Level != LevelWarn {
		t.Fatalf("single stall: %v", events)
	}

	// Three consecutive stalls escalate to critical (default threshold).
	events, agg, _ := fire(t, HealthConfig{}, stalled, stalled, stalled)
	if len(events) != 3 || events[2].Level != LevelCritical {
		t.Fatalf("consecutive stalls: %v", events)
	}
	if agg.Counter(MetricHealthCritical) != 1 {
		t.Fatalf("critical counter = %d want 1", agg.Counter(MetricHealthCritical))
	}

	// A healthy round resets the streak: the next stall is a warn again.
	events, _, _ = fire(t, HealthConfig{}, stalled, stalled, healthy, stalled)
	if len(events) != 3 || events[2].Level != LevelWarn {
		t.Fatalf("streak not reset: %v", events)
	}

	quietSync := stalled
	quietSync.Async = false
	if events, _, _ := fire(t, HealthConfig{}, quietSync); len(events) != 0 {
		t.Fatalf("sync round fired buffer_stall: %v", events)
	}
}
