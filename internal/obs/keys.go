package obs

// Span and event names follow the telemetry pkg/snake_case key convention
// and are checked by fedomdvet's telemetrykey analyzer at every call site;
// keep them compile-time constants.
const (
	// SpanRun is the root span for one federated run.
	SpanRun = "fed/run"
	// SpanRound is the coordinator's per-round span; it becomes the active
	// context that transport and codec spans parent under.
	SpanRound = "fed/round"
	// SpanClientTrain covers one party's local training step as observed
	// from the coordinator (includes transport time).
	SpanClientTrain = "fed/client/train"
	// SpanClientUpload covers one party's parameter upload and decode.
	SpanClientUpload = "fed/client/upload"
	// SpanTrain covers the whole concurrent local-training phase.
	SpanTrain = "fed/phase/train"
	// SpanBroadcast covers pushing global parameters to all parties.
	SpanBroadcast = "fed/phase/broadcast"
	// SpanAggregate covers the coordinator-side FedAvg merge.
	SpanAggregate = "fed/phase/aggregate"
	// SpanMoments covers the 2-round center-moment exchange.
	SpanMoments = "fed/phase/moments"
	// SpanEval covers the coordinator-side evaluation pass.
	SpanEval = "fed/phase/eval"
	// SpanRPC is a coordinator-side remote call (one op to one party).
	SpanRPC = "rpc/coord/call"
	// SpanPartyHandle is a party-side request handling span; the op is an
	// attribute so the name stays a checkable constant.
	SpanPartyHandle = "rpc/party/handle"
	// SpanEncode and SpanDecode bracket wire-codec work.
	SpanEncode = "codec/encode"
	SpanDecode = "codec/decode"
	// SpanAsyncJob covers one dispatched party job in the buffered async
	// engine, from broadcast through upload, on the worker goroutine.
	SpanAsyncJob = "fed/async/job"
	// SpanFold covers the coordinator-side staleness-discounted buffer fold
	// (the async counterpart of fed/phase/aggregate).
	SpanFold = "fed/phase/fold"

	// MetricHealthEvent is the trace-event name for fired health rules.
	MetricHealthEvent = "obs/health"
	// MetricHealthWarn / MetricHealthCritical count fired rules by level in
	// the telemetry aggregate, so health shows up in -report and /metrics.
	MetricHealthWarn     = "obs/health_warn"
	MetricHealthCritical = "obs/health_critical"
	// MetricChaosFault is the trace-event name for injected chaos faults.
	MetricChaosFault = "chaos/fault"
)

// Trace attribute keys: single snake_case segments, also analyzer-checked.
const (
	AttrRunID     = "run_id"
	AttrRound     = "round"
	AttrParty     = "party"
	AttrOp        = "op"
	AttrRule      = "rule"
	AttrMessage   = "message"
	AttrValue     = "value"
	AttrThreshold = "threshold"
	AttrTier      = "tier"
	AttrBytesRaw  = "bytes_raw"
	AttrBytesEnc  = "bytes_encoded"
	AttrTensors   = "tensors"
	AttrKind      = "kind"
	AttrDelaySec  = "delay_seconds"
	AttrErr       = "err"
	AttrPolicy    = "policy"
	AttrCodec     = "codec"
	AttrRounds    = "rounds"
	AttrParties   = "parties"
	// Async buffered-aggregation attributes.
	AttrAggregation  = "aggregation"
	AttrDispatch     = "dispatch_round"
	AttrBufferFill   = "buffer_fill"
	AttrBufferTarget = "buffer_target"
	AttrStalenessP99 = "staleness_p99"
)
