package obs

// httpserver.go is the one HTTP server lifecycle every listener in the tree
// shares — the debug/pprof endpoint, the dashboard, and the serving plane.
// It exists because `go http.ListenAndServe(...)` leaks its listener for the
// life of the process: soaks and tests that start servers repeatedly run out
// of ports, and SIGINT kills in-flight requests mid-body. StartHTTPServer
// binds synchronously (so ":0" tests learn the real port before the first
// request) and Shutdown drains gracefully under a caller deadline.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"
)

// HTTPServer is a bound, running HTTP server with a graceful shutdown.
type HTTPServer struct {
	srv  *http.Server
	ln   net.Listener
	addr string

	mu      sync.Mutex
	served  chan struct{} // closed when Serve returns
	srvErr  error         // Serve's verdict, valid after served closes
	stopped bool
}

// StartHTTPServer binds addr and serves handler on a background goroutine.
// The bind is synchronous: on return the listener is accepting and Addr
// reports the resolved address (useful with ":0"). The caller owns the
// server and must Shutdown it.
func StartHTTPServer(addr string, handler http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{
		srv:    &http.Server{Handler: handler},
		ln:     ln,
		addr:   ln.Addr().String(),
		served: make(chan struct{}),
	}
	go func() {
		err := s.srv.Serve(ln)
		s.mu.Lock()
		if !errors.Is(err, http.ErrServerClosed) {
			s.srvErr = err
		}
		s.mu.Unlock()
		close(s.served)
	}()
	return s, nil
}

// Addr returns the bound address, with any ":0" port resolved.
func (s *HTTPServer) Addr() string { return s.addr }

// Shutdown stops accepting new connections and waits for in-flight requests
// to drain, bounded by ctx. It is idempotent and returns the first error
// from either the drain or the serve loop.
func (s *HTTPServer) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		<-s.served
		return s.srvErr
	}
	s.stopped = true
	s.mu.Unlock()
	err := s.srv.Shutdown(ctx)
	<-s.served
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		err = s.srvErr
	}
	return err
}

// ShutdownTimeout is Shutdown with a fresh deadline — the SIGINT path in the
// cmds, where no parent context exists.
func (s *HTTPServer) ShutdownTimeout(d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return s.Shutdown(ctx)
}
