package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestDashboardServesPageAndSSE(t *testing.T) {
	health := NewHealth(HealthConfig{}, nil, nil)
	dash := NewDashboard(health)
	multi := MultiRoundObserver{health, dash}

	// Two rounds before any browser connects: they land in the replay ring,
	// the second with a health event attributed to it.
	multi.ObserveRound(SpanContext{}, RoundObservation{
		Round: 0, TrainLoss: 1.5, ValAcc: 0.4, Evaluated: true,
		BytesUp: 1000, BytesDown: 2000,
		Parties: []PartyObservation{{Name: "a", TrainSeconds: 0.01}, {Name: "b", TrainSeconds: 0.02}},
	})
	multi.ObserveRound(SpanContext{}, RoundObservation{
		Round: 1, TrainLoss: 1.2, ValAcc: 0.5, Evaluated: true, NonFinite: 1,
		Parties: []PartyObservation{{Name: "a", TrainSeconds: 0.01}},
	})

	srv := httptest.NewServer(dash.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 1<<16)
	n, _ := resp.Body.Read(page)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("page content type %q", ct)
	}
	if !strings.Contains(string(page[:n]), "fedomd live run") {
		t.Fatal("dashboard page missing its shell")
	}

	// The SSE feed replays the backlog on connect.
	client := &http.Client{Timeout: 5 * time.Second}
	es, err := client.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()
	if ct := es.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	scanner := bufio.NewScanner(es.Body)
	var payloads []roundPayload
	for scanner.Scan() && len(payloads) < 2 {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var p roundPayload
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		payloads = append(payloads, p)
	}
	if len(payloads) != 2 {
		t.Fatalf("replayed %d payloads, want 2", len(payloads))
	}
	if payloads[0].Round != 0 || payloads[0].Latencies["b"] != 0.02 {
		t.Fatalf("round 0 payload: %+v", payloads[0])
	}
	p1 := payloads[1]
	if len(p1.Health) != 1 || p1.Health[0].Rule != RuleNonFinite {
		t.Fatalf("round 1 payload missing its health event: %+v", p1)
	}
}

// A live subscriber receives rounds observed after it connected.
func TestDashboardLivePush(t *testing.T) {
	dash := NewDashboard(nil)
	srv := httptest.NewServer(dash.Handler())
	defer srv.Close()

	client := &http.Client{Timeout: 5 * time.Second}
	es, err := client.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer es.Body.Close()

	// Wait for the subscription to register before observing the round.
	deadline := time.Now().Add(2 * time.Second)
	for {
		dash.mu.Lock()
		n := len(dash.subs)
		dash.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	dash.ObserveRound(SpanContext{}, RoundObservation{Round: 42, TrainLoss: 0.5})

	scanner := bufio.NewScanner(es.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var p roundPayload
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &p); err != nil {
			t.Fatal(err)
		}
		if p.Round != 42 {
			t.Fatalf("pushed round %d, want 42", p.Round)
		}
		return
	}
	t.Fatalf("no payload pushed: %v", scanner.Err())
}

func TestDashboardRingBounded(t *testing.T) {
	dash := NewDashboard(nil)
	for i := 0; i < dashRingCap+50; i++ {
		dash.ObserveRound(SpanContext{}, RoundObservation{Round: i})
	}
	dash.mu.Lock()
	defer dash.mu.Unlock()
	if len(dash.ring) != dashRingCap {
		t.Fatalf("ring holds %d entries, cap is %d", len(dash.ring), dashRingCap)
	}
	if dash.ring[0].Round != 50 {
		t.Fatalf("ring dropped from the wrong end: oldest round %d", dash.ring[0].Round)
	}
}
