package obs

import (
	"fmt"
	"sort"
	"sync"

	"fedomd/internal/telemetry"
)

// PartyObservation is one party's view of a round as seen by the
// coordinator: how long its train step took end-to-end (including transport)
// and whether it was dropped from the aggregate.
type PartyObservation struct {
	Name         string
	TrainSeconds float64
	Dropped      bool
}

// RoundObservation is the per-round feed for RoundObservers: the fields of
// fed.RoundStats that health rules and the dashboard consume, flattened here
// so obs does not import fed (fed imports obs).
type RoundObservation struct {
	Round       int
	TrainLoss   float64
	ValAcc      float64
	TestAcc     float64
	BestValAcc  float64 // best validation accuracy up to and including Round
	Evaluated   bool
	Degraded    bool
	Dropped     int // parties excluded this round
	Quarantined int // parties currently benched
	NonFinite   int // non-finite screens tripped this round
	CodecResets int // wire-codec reference-chain resets this round
	BytesUp     int64
	BytesDown   int64
	Parties     []PartyObservation

	// Async buffered-aggregation fields, zero for synchronous rounds.
	Async          bool
	BufferFill     int     // updates folded this round
	BufferTarget   int     // the buffer threshold K
	BufferStalled  bool    // buffer missed K at the round deadline
	StalenessP99   float64 // p99 applied staleness of the folded updates
	StalenessLimit float64 // the MaxStaleness eviction bound
}

// RoundObserver consumes one observation per finished round. ctx is the
// round span's context so observers can attach trace events causally.
type RoundObserver interface {
	ObserveRound(ctx SpanContext, o RoundObservation)
}

// MultiRoundObserver fans one observation out to several observers,
// skipping nils.
type MultiRoundObserver []RoundObserver

// ObserveRound implements RoundObserver.
func (m MultiRoundObserver) ObserveRound(ctx SpanContext, o RoundObservation) {
	for _, ob := range m {
		if ob != nil {
			ob.ObserveRound(ctx, o)
		}
	}
}

// Event levels for health rules.
const (
	LevelWarn     = "warn"
	LevelCritical = "critical"
)

// Health rule names (also the trace-event rule attribute values).
const (
	RuleNonFinite     = "non_finite"
	RuleStragglerSkew = "straggler_skew"
	RuleAccuracyDrop  = "accuracy_regression"
	RuleQuarantine    = "quarantine_growth"
	RuleCodecResets   = "codec_resets"
	RuleStalenessHigh = "staleness_high"
	RuleBufferStall   = "buffer_stall"
)

// HealthEvent is one fired rule: which round, which rule, how bad, and the
// measured value against its threshold.
type HealthEvent struct {
	Round     int
	Rule      string
	Level     string
	Message   string
	Value     float64
	Threshold float64
}

func (e HealthEvent) String() string {
	return fmt.Sprintf("[%s] round %d %s: %s", e.Level, e.Round, e.Rule, e.Message)
}

// HealthRule inspects one round observation (with access to the monitor's
// running state) and returns zero or more events.
type HealthRule func(h *Health, o RoundObservation) []HealthEvent

// HealthConfig tunes the default rules. The zero value selects the defaults
// noted per field.
type HealthConfig struct {
	// StragglerFactor trips straggler_skew when the slowest-party (p99)
	// train time exceeds the median by this factor. Default 4.
	StragglerFactor float64
	// StragglerMinSeconds suppresses straggler_skew below this absolute
	// p99, so microsecond-scale local runs don't alarm on scheduler noise.
	// Default 1ms.
	StragglerMinSeconds float64
	// AccuracyDropWarn trips accuracy_regression when validation accuracy
	// falls this far below the best seen. Default 0.05 (5 points).
	AccuracyDropWarn float64
	// QuarantineCriticalFrac trips quarantine_growth at critical level when
	// this fraction of parties is benched. Default 0.5.
	QuarantineCriticalFrac float64
	// CodecResetWarn trips codec_resets when a round sees at least this
	// many reference-chain resets. Default 1.
	CodecResetWarn int
	// StalenessWarnFrac trips staleness_high when a fold's p99 applied
	// staleness reaches this fraction of the MaxStaleness budget (critical
	// at the budget itself, where updates start being evicted). Default 0.75.
	StalenessWarnFrac float64
	// BufferStallCritical escalates buffer_stall to critical after this many
	// consecutive stalled rounds. Default 3.
	BufferStallCritical int
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.StragglerFactor <= 0 {
		c.StragglerFactor = 4
	}
	if c.StragglerMinSeconds <= 0 {
		c.StragglerMinSeconds = 1e-3
	}
	if c.AccuracyDropWarn <= 0 {
		c.AccuracyDropWarn = 0.05
	}
	if c.QuarantineCriticalFrac <= 0 {
		c.QuarantineCriticalFrac = 0.5
	}
	if c.CodecResetWarn <= 0 {
		c.CodecResetWarn = 1
	}
	if c.StalenessWarnFrac <= 0 {
		c.StalenessWarnFrac = 0.75
	}
	if c.BufferStallCritical <= 0 {
		c.BufferStallCritical = 3
	}
	return c
}

// Health is the run-health monitor: a RoundObserver applying a rule set per
// round, retaining fired events for the final report and mirroring them as
// warn/critical trace events plus telemetry counters. Safe for concurrent
// use; nil is inert.
type Health struct {
	cfg    HealthConfig
	rules  []HealthRule
	tracer *Tracer
	rec    telemetry.Recorder

	mu           sync.Mutex
	events       []HealthEvent
	bestAcc      float64
	hasBest      bool
	lastQ        int
	consecStalls int // consecutive buffer_stall rounds before this one
}

// NewHealth builds a monitor with the default rule set. tracer and rec may
// be nil; events are then only retained for Events().
func NewHealth(cfg HealthConfig, tracer *Tracer, rec telemetry.Recorder) *Health {
	return &Health{
		cfg:    cfg.withDefaults(),
		rules:  DefaultRules(),
		tracer: tracer,
		rec:    telemetry.Or(rec),
	}
}

// DefaultRules returns the standard rule set, in evaluation order.
func DefaultRules() []HealthRule {
	return []HealthRule{
		ruleNonFinite,
		ruleStragglerSkew,
		ruleAccuracyRegression,
		ruleQuarantineGrowth,
		ruleCodecResets,
		ruleStalenessHigh,
		ruleBufferStall,
	}
}

// ObserveRound implements RoundObserver: applies every rule, records fired
// events, and emits them as trace events and counters.
func (h *Health) ObserveRound(ctx SpanContext, o RoundObservation) {
	if h == nil {
		return
	}
	h.mu.Lock()
	var fired []HealthEvent
	for _, rule := range h.rules {
		fired = append(fired, rule(h, o)...)
	}
	// State updates happen after rules so "regression vs best" compares
	// against the best of strictly earlier rounds.
	if o.Evaluated && (!h.hasBest || o.ValAcc > h.bestAcc) {
		h.bestAcc, h.hasBest = o.ValAcc, true
	}
	h.lastQ = o.Quarantined
	if o.Async {
		if o.BufferStalled {
			h.consecStalls++
		} else {
			h.consecStalls = 0
		}
	}
	h.events = append(h.events, fired...)
	h.mu.Unlock()

	for _, e := range fired {
		h.tracer.Event(ctx, MetricHealthEvent, e.Level,
			KV(AttrRule, e.Rule),
			KV(AttrRound, e.Round),
			KV(AttrMessage, e.Message),
			KV(AttrValue, e.Value),
			KV(AttrThreshold, e.Threshold),
		)
		if e.Level == LevelCritical {
			h.rec.Count(MetricHealthCritical, 1)
		} else {
			h.rec.Count(MetricHealthWarn, 1)
		}
	}
}

// Events returns a copy of every event fired so far, in firing order.
func (h *Health) Events() []HealthEvent {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]HealthEvent(nil), h.events...)
}

func ruleNonFinite(h *Health, o RoundObservation) []HealthEvent {
	if o.NonFinite == 0 {
		return nil
	}
	level := LevelWarn
	if o.NonFinite > 1 {
		level = LevelCritical
	}
	return []HealthEvent{{
		Round: o.Round, Rule: RuleNonFinite, Level: level,
		Message:   fmt.Sprintf("%d non-finite update(s) screened", o.NonFinite),
		Value:     float64(o.NonFinite),
		Threshold: 1,
	}}
}

func ruleStragglerSkew(h *Health, o RoundObservation) []HealthEvent {
	if len(o.Parties) < 2 {
		return nil
	}
	times := make([]float64, 0, len(o.Parties))
	for _, p := range o.Parties {
		if p.TrainSeconds > 0 {
			times = append(times, p.TrainSeconds)
		}
	}
	if len(times) < 2 {
		return nil
	}
	sort.Float64s(times)
	median := times[len(times)/2]
	p99 := times[(len(times)*99)/100]
	if p99 < h.cfg.StragglerMinSeconds || median <= 0 {
		return nil
	}
	factor := p99 / median
	if factor < h.cfg.StragglerFactor {
		return nil
	}
	return []HealthEvent{{
		Round: o.Round, Rule: RuleStragglerSkew, Level: LevelWarn,
		Message: fmt.Sprintf("slowest party %.3fs vs median %.3fs (%.1fx)",
			p99, median, factor),
		Value:     factor,
		Threshold: h.cfg.StragglerFactor,
	}}
}

func ruleAccuracyRegression(h *Health, o RoundObservation) []HealthEvent {
	if !o.Evaluated || !h.hasBest {
		return nil
	}
	drop := h.bestAcc - o.ValAcc
	if drop < h.cfg.AccuracyDropWarn {
		return nil
	}
	level := LevelWarn
	if drop >= 2*h.cfg.AccuracyDropWarn {
		level = LevelCritical
	}
	return []HealthEvent{{
		Round: o.Round, Rule: RuleAccuracyDrop, Level: level,
		Message: fmt.Sprintf("val acc %.4f dropped %.4f below best %.4f",
			o.ValAcc, drop, h.bestAcc),
		Value:     drop,
		Threshold: h.cfg.AccuracyDropWarn,
	}}
}

func ruleQuarantineGrowth(h *Health, o RoundObservation) []HealthEvent {
	if o.Quarantined <= h.lastQ || len(o.Parties) == 0 {
		return nil
	}
	frac := float64(o.Quarantined) / float64(len(o.Parties)+o.Quarantined)
	level := LevelWarn
	if frac >= h.cfg.QuarantineCriticalFrac {
		level = LevelCritical
	}
	return []HealthEvent{{
		Round: o.Round, Rule: RuleQuarantine, Level: level,
		Message: fmt.Sprintf("quarantine grew %d -> %d parties",
			h.lastQ, o.Quarantined),
		Value:     float64(o.Quarantined),
		Threshold: float64(h.lastQ),
	}}
}

// ruleStalenessHigh alarms when the staleness distribution of folded updates
// drifts toward the eviction bound: at p99 ≥ MaxStaleness the tail of the
// fleet is about to be evicted every round (the discount has effectively
// silenced it already), which usually means BufferK is too high or the slow
// parties need quarantining.
func ruleStalenessHigh(h *Health, o RoundObservation) []HealthEvent {
	if !o.Async || o.StalenessLimit <= 0 || o.BufferFill == 0 {
		return nil
	}
	warnAt := h.cfg.StalenessWarnFrac * o.StalenessLimit
	if o.StalenessP99 < warnAt {
		return nil
	}
	level := LevelWarn
	if o.StalenessP99 >= o.StalenessLimit {
		level = LevelCritical
	}
	return []HealthEvent{{
		Round: o.Round, Rule: RuleStalenessHigh, Level: level,
		Message: fmt.Sprintf("p99 applied staleness %.0f approaching MaxStaleness %.0f",
			o.StalenessP99, o.StalenessLimit),
		Value:     o.StalenessP99,
		Threshold: warnAt,
	}}
}

// ruleBufferStall alarms when an async round's buffer failed to reach K
// before the round deadline — the fleet is not producing updates fast enough
// for the configured buffer, and folds are running under-filled. Escalates
// to critical after BufferStallCritical consecutive stalled rounds.
func ruleBufferStall(h *Health, o RoundObservation) []HealthEvent {
	if !o.Async || !o.BufferStalled {
		return nil
	}
	level := LevelWarn
	if h.consecStalls+1 >= h.cfg.BufferStallCritical {
		level = LevelCritical
	}
	return []HealthEvent{{
		Round: o.Round, Rule: RuleBufferStall, Level: level,
		Message: fmt.Sprintf("buffer reached %d of %d before the round deadline",
			o.BufferFill, o.BufferTarget),
		Value:     float64(o.BufferFill),
		Threshold: float64(o.BufferTarget),
	}}
}

func ruleCodecResets(h *Health, o RoundObservation) []HealthEvent {
	if o.CodecResets < h.cfg.CodecResetWarn {
		return nil
	}
	return []HealthEvent{{
		Round: o.Round, Rule: RuleCodecResets, Level: LevelWarn,
		Message:   fmt.Sprintf("%d codec reference-chain reset(s)", o.CodecResets),
		Value:     float64(o.CodecResets),
		Threshold: float64(h.cfg.CodecResetWarn),
	}}
}
