package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"fedomd/internal/telemetry"
)

// promPrefix namespaces every exposed family. Internal pkg/snake_case keys
// map to Prometheus names by replacing '/' with '_' under this prefix, so
// "fed/round_seconds" becomes "fedomd_fed_round_seconds".
const promPrefix = "fedomd_"

// histBucketQuantiles are the reservoir quantiles used as bucket upper
// bounds. The reservoir is a uniform subsample with exact count/sum kept
// alongside, so cumulative bucket counts are the subsample's, rescaled to
// the exact count (and clamped monotone).
var histBucketQuantiles = []float64{0.25, 0.50, 0.75, 0.90, 0.95, 0.99}

func promName(key string) string {
	return promPrefix + strings.ReplaceAll(key, "/", "_")
}

func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteExposition renders the aggregator's state (plus the process-global
// counters and optional build info) in Prometheus text format, families
// sorted by name for deterministic output.
func WriteExposition(w io.Writer, agg *telemetry.Aggregator, build *BuildInfo) {
	var counters map[string]int64
	var gauges map[string]float64
	var samples map[string]telemetry.HistSamples
	if agg != nil {
		counters, gauges, _ = agg.Snapshot()
		samples = agg.SampleSnapshot()
	} else {
		counters = map[string]int64{}
		gauges = map[string]float64{}
		samples = map[string]telemetry.HistSamples{}
	}
	// Process-global counters merge into the counter families; a key used by
	// both surfaces sums (they never overlap in practice).
	for k, v := range telemetry.GlobalCounters() {
		counters[k] += v
	}

	type family struct {
		name  string
		write func(io.Writer)
	}
	var fams []family

	for key, v := range counters {
		name := promName(key) + "_total"
		v := v
		fams = append(fams, family{name, func(w io.Writer) {
			fmt.Fprintf(w, "# HELP %s Counter mapped from internal key.\n", name)
			fmt.Fprintf(w, "# TYPE %s counter\n", name)
			fmt.Fprintf(w, "%s %d\n", name, v)
		}})
	}
	for key, v := range gauges {
		name := promName(key)
		v := v
		fams = append(fams, family{name, func(w io.Writer) {
			fmt.Fprintf(w, "# HELP %s Gauge mapped from internal key.\n", name)
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
			fmt.Fprintf(w, "%s %s\n", name, promFloat(v))
		}})
	}
	for key, hs := range samples {
		name := promName(key)
		hs := hs
		fams = append(fams, family{name, func(w io.Writer) {
			writeHistogram(w, name, hs)
		}})
	}
	if build != nil {
		b := *build
		fams = append(fams, family{promPrefix + "build_info", func(w io.Writer) {
			name := promPrefix + "build_info"
			fmt.Fprintf(w, "# HELP %s Build and configuration info; value is always 1.\n", name)
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
			fmt.Fprintf(w, "%s{module=%q,version=%q,go=%q,codec=%q,policy=%q} 1\n",
				name, b.Module, b.Version, b.GoVersion, b.Codec, b.Policy)
		}})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.write(w)
	}
}

// writeHistogram derives cumulative buckets from the reservoir: bounds are
// reservoir quantiles, each bucket's count is the subsample's cumulative
// count rescaled to the exact total, the +Inf bucket and _count are exact.
func writeHistogram(w io.Writer, name string, hs telemetry.HistSamples) {
	fmt.Fprintf(w, "# HELP %s Histogram with bounds derived from a uniform sample reservoir.\n", name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)

	sorted := append([]float64(nil), hs.Samples...)
	sort.Float64s(sorted)

	if len(sorted) > 0 {
		scale := float64(hs.Count) / float64(len(sorted))
		prevBound := math.Inf(-1)
		prevCum := int64(0)
		for _, q := range histBucketQuantiles {
			idx := int(q * float64(len(sorted)-1))
			bound := sorted[idx]
			if bound <= prevBound {
				continue // dedupe identical bounds to keep le labels unique
			}
			// Cumulative count of samples <= bound, rescaled to the exact
			// population and clamped monotone non-decreasing.
			n := sort.SearchFloat64s(sorted, bound)
			for n < len(sorted) && sorted[n] <= bound {
				n++
			}
			cum := int64(math.Round(float64(n) * scale))
			if cum < prevCum {
				cum = prevCum
			}
			if cum > hs.Count {
				cum = hs.Count
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(bound), cum)
			prevBound, prevCum = bound, cum
		}
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, hs.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(hs.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, hs.Count)
}

// MetricsHandler serves WriteExposition over HTTP — mount it at /metrics on
// the debug server next to pprof and expvar.
func MetricsHandler(agg *telemetry.Aggregator, build *BuildInfo) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteExposition(w, agg, build)
	})
}
