// Package obs is the federation observability plane, layered on top of
// internal/telemetry: distributed tracing (a stdlib-only span model whose
// context propagates through the gob transport so party-side work links
// causally to the coordinator's round), Prometheus text-format exposition of
// the telemetry Aggregator, a run-health rule engine watching per-round
// statistics, and an embedded SSE-fed live dashboard.
//
// Everything is nil-tolerant: a nil *Tracer (or nil *Span) is inert and
// costs no clock reads, so instrumented paths stay free when tracing is off
// — the same contract telemetry.Nop gives metric call sites.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one causally-linked trace (normally one federated run).
// Zero means "no trace".
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no span".
type SpanID uint64

// String renders the ID as fixed-width hex — the wire/JSON spelling.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// String renders the ID as fixed-width hex — the wire/JSON spelling.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// SpanContext is the propagated part of a span: enough to parent remote
// children. The zero value is "no context" and parents nothing.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return c.Trace != 0 && c.Span != 0 }

// Attr is one key/value annotation on a span or event. Keys must be
// compile-time snake_case constants (enforced by fedomdvet's telemetrykey
// analyzer) so trace tooling can index on exact strings; values are free.
type Attr struct {
	Key   string
	Value any
}

// KV builds one attribute. It exists (rather than a bare struct literal) so
// the analyzer has a call site to check the key at.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// SpanRecord is the JSONL form of a finished span.
type SpanRecord struct {
	TS     string         `json:"ts"` // end time, wall clock
	Type   string         `json:"type"`
	Name   string         `json:"name"`
	Trace  string         `json:"trace"`
	Span   string         `json:"span"`
	Parent string         `json:"parent,omitempty"`
	Start  string         `json:"start"` // wall clock, RFC3339Nano
	DurNs  int64          `json:"dur_ns"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// EventRecord is the JSONL form of an instantaneous annotation (a chaos
// fault, a health rule firing) attached to a parent span.
type EventRecord struct {
	TS     string         `json:"ts"`
	Type   string         `json:"type"`
	Name   string         `json:"name"`
	Level  string         `json:"level,omitempty"`
	Trace  string         `json:"trace"`
	Parent string         `json:"parent,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// SpanSink receives finished spans and events as self-describing records.
// telemetry.JSONL satisfies it, so traces and metric events share one
// line stream.
type SpanSink interface{ EmitRecord(v any) }

// Tracer hands out spans and writes the finished ones to a sink. Safe for
// concurrent use. The zero of *Tracer (nil) is inert.
type Tracer struct {
	sink SpanSink
	next atomic.Uint64 // span-ID sequence, randomly seeded per process
	now  func() time.Time

	// active holds the coordinator's current round span — the propagation
	// seam for layers (transport proxies, codec encoders) that cannot be
	// threaded a parent explicitly. Guarded by mu; reads are frequent but
	// round-grained, so a mutex is fine.
	mu     sync.Mutex
	cur    SpanContext
	spans  atomic.Int64 // finished spans, for the report counter
	events atomic.Int64
}

// NewTracer returns a Tracer emitting to sink; a nil sink yields a nil
// (inert) Tracer. Span IDs start at a cryptographically random point so IDs
// minted by separate processes of one federation do not collide.
func NewTracer(sink SpanSink) *Tracer {
	if sink == nil {
		return nil
	}
	t := &Tracer{sink: sink, now: time.Now}
	t.next.Store(randomID())
	return t
}

// randomID draws a nonzero 64-bit ID seed from crypto/rand, falling back to
// the clock if the system source fails.
func randomID() uint64 {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return uint64(time.Now().UnixNano()) | 1
	}
	v := binary.LittleEndian.Uint64(buf[:])
	if v == 0 {
		v = 1
	}
	return v
}

// NewRunID returns a fresh 16-hex-digit run identifier for trace headers and
// Result correlation.
func NewRunID() string { return fmt.Sprintf("%016x", randomID()) }

// Enabled reports whether spans are consumed at all.
func (t *Tracer) Enabled() bool { return t != nil }

// nextID mints a process-unique nonzero span ID. The increment is odd, so
// the sequence walks the full 2^64 ring regardless of seed.
func (t *Tracer) nextID() uint64 {
	id := t.next.Add(0x9E3779B97F4A7C15 | 1)
	if id == 0 {
		id = t.next.Add(0x9E3779B97F4A7C15 | 1)
	}
	return id
}

// Root starts a new trace with the named span as its root.
func (t *Tracer) Root(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(SpanContext{Trace: TraceID(t.nextID())}, name)
}

// Start begins a child span of parent. An invalid parent trace starts a
// fresh trace (so a party whose coordinator predates propagation still
// produces a well-formed local trace).
func (t *Tracer) Start(parent SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	if parent.Trace == 0 {
		parent.Trace = TraceID(t.nextID())
	}
	return t.start(parent, name)
}

func (t *Tracer) start(parent SpanContext, name string) *Span {
	now := t.now()
	return &Span{
		tracer: t,
		name:   name,
		ctx:    SpanContext{Trace: parent.Trace, Span: SpanID(t.nextID())},
		parent: parent.Span,
		start:  now,
	}
}

// SetActive publishes ctx as the coordinator's current span. Layers that
// cannot be threaded a parent explicitly (transport calls, codec encoders)
// parent their spans at Active instead.
func (t *Tracer) SetActive(ctx SpanContext) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cur = ctx
	t.mu.Unlock()
}

// Active returns the last context published by SetActive (zero when none).
func (t *Tracer) Active() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cur
}

// Event emits an instantaneous annotation under parent. Level is "info",
// "warn" or "critical"; name must be a pkg/snake_case constant.
func (t *Tracer) Event(parent SpanContext, name, level string, attrs ...Attr) {
	if t == nil {
		return
	}
	rec := EventRecord{
		TS:    t.now().UTC().Format(time.RFC3339Nano),
		Type:  "event",
		Name:  name,
		Level: level,
		Trace: parent.Trace.String(),
	}
	if parent.Span != 0 {
		rec.Parent = parent.Span.String()
	}
	if len(attrs) > 0 {
		rec.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	t.events.Add(1)
	t.sink.EmitRecord(rec)
}

// Counts returns how many spans and events the tracer has emitted.
func (t *Tracer) Counts() (spans, events int64) {
	if t == nil {
		return 0, 0
	}
	return t.spans.Load(), t.events.Load()
}

// Span is one in-flight timed region. A nil *Span (from a nil Tracer) is
// inert: SetAttr and End are no-ops.
type Span struct {
	tracer *Tracer
	name   string
	ctx    SpanContext
	parent SpanID
	start  time.Time

	mu    sync.Mutex
	attrs map[string]any
	ended bool
}

// Context returns the span's propagable identity (zero for a nil span).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// SetAttr annotates the span. Key must be a snake_case compile-time constant
// (see KV); the last write per key wins.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End finishes the span and emits its record. Idempotent: a second End is
// ignored, so defers compose with early explicit ends.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()

	end := s.tracer.now()
	rec := SpanRecord{
		TS:    end.UTC().Format(time.RFC3339Nano),
		Type:  "span",
		Name:  s.name,
		Trace: s.ctx.Trace.String(),
		Span:  s.ctx.Span.String(),
		Start: s.start.UTC().Format(time.RFC3339Nano),
		DurNs: end.Sub(s.start).Nanoseconds(),
		Attrs: attrs,
	}
	if s.parent != 0 {
		rec.Parent = s.parent.String()
	}
	s.tracer.spans.Add(1)
	s.tracer.sink.EmitRecord(rec)
}
