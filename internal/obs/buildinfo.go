package obs

import (
	"expvar"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
)

// BuildInfo identifies what is running and how it is configured; it feeds
// the fedomd_build_info metric, the fedomd_build expvar, and -report output.
type BuildInfo struct {
	Module    string `json:"module"`
	Version   string `json:"version"`
	GoVersion string `json:"go"`
	Codec     string `json:"codec"`
	Policy    string `json:"policy"`
}

// CollectBuildInfo fills module/version from the embedded build metadata
// (falling back to "fedomd"/"devel" outside module builds) and stamps the
// run configuration alongside.
func CollectBuildInfo(codec, policy string) BuildInfo {
	b := BuildInfo{
		Module:    "fedomd",
		Version:   "devel",
		GoVersion: runtime.Version(),
		Codec:     codec,
		Policy:    policy,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Path != "" {
			b.Module = bi.Main.Path
		}
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			b.Version = bi.Main.Version
		}
	}
	return b
}

// String renders the info the way -report prints it.
func (b BuildInfo) String() string {
	return fmt.Sprintf("module=%s version=%s go=%s codec=%s policy=%s",
		b.Module, b.Version, b.GoVersion, b.Codec, b.Policy)
}

// PublishExpvar exposes the info as the "fedomd_build" expvar on the debug
// server. Idempotent: re-publishing replaces the value rather than
// triggering expvar's duplicate-name panic.
func (b BuildInfo) PublishExpvar() {
	v := b // copy; expvar.Func closures outlive the caller
	f := expvar.Func(func() any { return v })
	if existing := expvar.Get("fedomd_build"); existing != nil {
		if holder, ok := existing.(*buildVar); ok {
			holder.set(f)
		}
		return
	}
	holder := &buildVar{}
	holder.set(f)
	expvar.Publish("fedomd_build", holder)
}

// buildVar is a replaceable expvar value, so PublishExpvar can be called
// once per run in long-lived processes (tests, experiment grids) while the
// debug server reads it concurrently.
type buildVar struct {
	f atomic.Value // expvar.Func
}

func (v *buildVar) set(f expvar.Func) { v.f.Store(f) }

func (v *buildVar) String() string {
	if f, ok := v.f.Load().(expvar.Func); ok {
		return f.String()
	}
	return "{}"
}
