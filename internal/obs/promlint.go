package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text-format stream with a small
// stdlib parser: metric-name syntax, known TYPE declarations, no duplicate
// family declarations or series, every sample attributable to a declared
// family, histogram buckets monotone non-decreasing with the +Inf bucket
// equal to _count. It returns one message per problem (empty means clean).
//
// This is the shared checker behind the golden-format tests and the
// `make check` exposition-lint stage (cmd/obslint).
func LintExposition(r io.Reader) []string {
	var probs []string
	addf := func(format string, args ...any) {
		probs = append(probs, fmt.Sprintf(format, args...))
	}

	types := map[string]string{} // family -> counter|gauge|histogram|summary|untyped
	seen := map[string]bool{}    // full series key (name + sorted labels)
	type bucket struct {
		le  float64
		cum int64
	}
	buckets := map[string][]bucket{} // histogram family -> buckets in order
	counts := map[string]int64{}     // histogram family -> _count value
	hasCount := map[string]bool{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comments are legal
			}
			switch kind {
			case "TYPE":
				if !validMetricName(name) {
					addf("line %d: invalid family name %q", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addf("line %d: unknown TYPE %q for %s", lineNo, rest, name)
				}
				if _, dup := types[name]; dup {
					addf("line %d: duplicate TYPE declaration for %s", lineNo, name)
				}
				types[name] = rest
			case "HELP":
				if !validMetricName(name) {
					addf("line %d: invalid family name %q in HELP", lineNo, name)
				}
			}
			continue
		}

		name, labels, valueStr, ok := parseSample(line)
		if !ok {
			addf("line %d: unparsable sample %q", lineNo, line)
			continue
		}
		if !validMetricName(name) {
			addf("line %d: invalid metric name %q", lineNo, name)
		}
		val, err := parseValue(valueStr)
		if err != nil {
			addf("line %d: bad value %q for %s", lineNo, valueStr, name)
		}

		fam, suffix := familyOf(name, types)
		if fam == "" {
			addf("line %d: sample %s has no TYPE declaration", lineNo, name)
		}

		key := name + "{" + canonLabels(labels) + "}"
		if seen[key] {
			addf("line %d: duplicate series %s", lineNo, key)
		}
		seen[key] = true

		if fam != "" && types[fam] == "histogram" {
			switch suffix {
			case "_bucket":
				le, leOK := labels["le"]
				if !leOK {
					addf("line %d: %s_bucket missing le label", lineNo, fam)
					continue
				}
				bound, err := parseValue(le)
				if err != nil {
					addf("line %d: %s_bucket bad le %q", lineNo, fam, le)
					continue
				}
				buckets[fam] = append(buckets[fam], bucket{le: bound, cum: int64(val)})
			case "_count":
				counts[fam] = int64(val)
				hasCount[fam] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		addf("read: %v", err)
	}

	fams := make([]string, 0, len(buckets))
	for fam := range buckets {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		bs := buckets[fam]
		lastInf := false
		for i := 1; i < len(bs); i++ {
			if bs[i].le <= bs[i-1].le {
				addf("histogram %s: le bounds not increasing (%g after %g)",
					fam, bs[i].le, bs[i-1].le)
			}
			if bs[i].cum < bs[i-1].cum {
				addf("histogram %s: bucket counts not monotone (%d after %d at le=%g)",
					fam, bs[i].cum, bs[i-1].cum, bs[i].le)
			}
		}
		if len(bs) > 0 {
			last := bs[len(bs)-1]
			lastInf = last.le > 1e308 // +Inf
			if !lastInf {
				addf("histogram %s: missing +Inf bucket", fam)
			} else if hasCount[fam] && last.cum != counts[fam] {
				addf("histogram %s: +Inf bucket %d != _count %d",
					fam, last.cum, counts[fam])
			}
		}
	}
	return probs
}

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func validMetricName(s string) bool { return metricNameRE.MatchString(s) }

// parseComment splits "# TYPE name kind" / "# HELP name text" lines.
func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "TYPE" && fields[1] != "HELP" {
		return "", "", "", false
	}
	rest = ""
	if len(fields) > 3 {
		rest = fields[3]
	}
	return fields[1], fields[2], rest, true
}

// parseSample splits a sample line into name, labels, and value text.
// Timestamps (a trailing integer) are accepted and ignored.
func parseSample(line string) (name string, labels map[string]string, value string, ok bool) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", nil, "", false
		}
		var lok bool
		labels, lok = parseLabels(rest[i+1 : j])
		if !lok {
			return "", nil, "", false
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", nil, "", false
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", false
	}
	return name, labels, fields[0], true
}

// parseLabels parses `k1="v1",k2="v2"` with \" \\ \n escapes.
func parseLabels(s string) (map[string]string, bool) {
	labels := map[string]string{}
	s = strings.TrimSpace(s)
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, false
		}
		key := strings.TrimSpace(s[:eq])
		if !validMetricName(key) {
			return nil, false
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return nil, false
		}
		var b strings.Builder
		i := 1
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(s) {
			return nil, false
		}
		labels[key] = b.String()
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			break
		}
		if s[0] != ',' {
			return nil, false
		}
		s = strings.TrimSpace(s[1:])
	}
	return labels, true
}

func canonLabels(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + strconv.Quote(labels[k])
	}
	return strings.Join(parts, ",")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// familyOf resolves a sample name to its declared family, honouring the
// histogram/summary component suffixes.
func familyOf(name string, types map[string]string) (fam, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base, suf
			}
		}
	}
	return "", ""
}
