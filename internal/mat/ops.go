package mat

import (
	"fmt"
	"math"
)

// Add returns a + b element-wise.
func Add(a, b *Dense) *Dense {
	a.mustSameShape(b, "Add")
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
	return out
}

// Sub returns a - b element-wise.
func Sub(a, b *Dense) *Dense {
	a.mustSameShape(b, "Sub")
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
	return out
}

// MulElem returns the Hadamard (element-wise) product a ⊙ b.
func MulElem(a, b *Dense) *Dense {
	a.mustSameShape(b, "MulElem")
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v * b.data[i]
	}
	return out
}

// Scale returns s * a.
func Scale(s float64, a *Dense) *Dense {
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = s * v
	}
	return out
}

// AddInPlace computes m += b in place.
func (m *Dense) AddInPlace(b *Dense) {
	m.mustSameShape(b, "AddInPlace")
	for i := range m.data {
		m.data[i] += b.data[i]
	}
}

// SubInPlace computes m -= b in place.
func (m *Dense) SubInPlace(b *Dense) {
	m.mustSameShape(b, "SubInPlace")
	for i := range m.data {
		m.data[i] -= b.data[i]
	}
}

// ScaleInPlace computes m *= s in place.
func (m *Dense) ScaleInPlace(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AXPY computes m += alpha*b in place (the BLAS axpy update). b must not
// alias m (enforced by fedomdvet's intoalias analyzer); the contract keeps
// the loop free to be blocked or vectorized.
func (m *Dense) AXPY(alpha float64, b *Dense) {
	m.mustSameShape(b, "AXPY")
	for i := range m.data {
		m.data[i] += alpha * b.data[i]
	}
}

// Apply returns a new matrix with f applied to every element of a.
func Apply(a *Dense, f func(float64) float64) *Dense {
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = f(v)
	}
	return out
}

// AddRowVec returns a + v broadcast over rows, where v is 1×c.
func AddRowVec(a, v *Dense) *Dense {
	if v.rows != 1 || v.cols != a.cols {
		panic(fmt.Sprintf("mat: AddRowVec wants 1x%d vector, got %dx%d", a.cols, v.rows, v.cols))
	}
	out := New(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		o := out.Row(i)
		for j, x := range row {
			o[j] = x + v.data[j]
		}
	}
	return out
}

// SubRowVec returns a - v broadcast over rows, where v is 1×c.
func SubRowVec(a, v *Dense) *Dense {
	if v.rows != 1 || v.cols != a.cols {
		panic(fmt.Sprintf("mat: SubRowVec wants 1x%d vector, got %dx%d", a.cols, v.rows, v.cols))
	}
	out := New(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		o := out.Row(i)
		for j, x := range row {
			o[j] = x - v.data[j]
		}
	}
	return out
}

// MeanRows returns the 1×c column-wise mean of a. A 0-row input yields zeros.
func MeanRows(a *Dense) *Dense {
	out := New(1, a.cols)
	if a.rows == 0 {
		return out
	}
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out.data[j] += v
		}
	}
	inv := 1 / float64(a.rows)
	for j := range out.data {
		out.data[j] *= inv
	}
	return out
}

// SumRows returns the 1×c column-wise sum of a.
func SumRows(a *Dense) *Dense {
	out := New(1, a.cols)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// Sum returns the sum of every element of a.
func Sum(a *Dense) float64 {
	var s float64
	for _, v := range a.data {
		s += v
	}
	return s
}

// Max returns the largest element of a; -Inf for an empty matrix.
func Max(a *Dense) float64 {
	m := math.Inf(-1)
	for _, v := range a.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest element of a; +Inf for an empty matrix.
func Min(a *Dense) float64 {
	m := math.Inf(1)
	for _, v := range a.data {
		if v < m {
			m = v
		}
	}
	return m
}

// FrobNorm returns the Frobenius norm ‖a‖_F.
func FrobNorm(a *Dense) float64 {
	var s float64
	for _, v := range a.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// FrobNormSq returns ‖a‖²_F.
func FrobNormSq(a *Dense) float64 {
	var s float64
	for _, v := range a.data {
		s += v * v
	}
	return s
}

// Dot returns the Frobenius inner product <a, b> = Σ a_ij b_ij.
func Dot(a, b *Dense) float64 {
	a.mustSameShape(b, "Dot")
	var s float64
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}

// PowElem returns a with every element raised to the integer power p.
// Integer powers are computed by repeated multiplication, so negative bases
// are handled exactly (needed for odd central moments).
func PowElem(a *Dense, p int) *Dense {
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = ipow(v, p)
	}
	return out
}

func ipow(x float64, p int) float64 {
	r := 1.0
	for k := 0; k < p; k++ {
		r *= x
	}
	return r
}

// --- *Into variants: results land in caller-owned (typically pooled)
// storage. Each panics on a shape mismatch; out must not alias the inputs
// unless noted. Fused *AddInto kernels accumulate without a temporary, which
// is what lets backward passes write straight into gradient buffers. ---

// AddInto computes out = a + b.
func AddInto(out, a, b *Dense) {
	a.mustSameShape(b, "AddInto")
	out.mustSameShape(a, "AddInto")
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
}

// SubInto computes out = a - b.
func SubInto(out, a, b *Dense) {
	a.mustSameShape(b, "SubInto")
	out.mustSameShape(a, "SubInto")
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
}

// MulElemInto computes out = a ⊙ b.
func MulElemInto(out, a, b *Dense) {
	a.mustSameShape(b, "MulElemInto")
	out.mustSameShape(a, "MulElemInto")
	for i, v := range a.data {
		out.data[i] = v * b.data[i]
	}
}

// MulElemAddInto computes out += a ⊙ b — the fused Hadamard accumulation the
// Mul/Dropout backward passes use instead of materialising the product.
func MulElemAddInto(out, a, b *Dense) {
	a.mustSameShape(b, "MulElemAddInto")
	out.mustSameShape(a, "MulElemAddInto")
	for i, v := range a.data {
		out.data[i] += v * b.data[i]
	}
}

// ScaleInto computes out = s·a.
func ScaleInto(out *Dense, s float64, a *Dense) {
	out.mustSameShape(a, "ScaleInto")
	for i, v := range a.data {
		out.data[i] = s * v
	}
}

// ApplyInto computes out = f(a) element-wise. out may alias a.
func ApplyInto(out, a *Dense, f func(float64) float64) {
	out.mustSameShape(a, "ApplyInto")
	for i, v := range a.data {
		out.data[i] = f(v)
	}
}

// AddRowVecInto computes out = a + v broadcast over rows (v is 1×c).
func AddRowVecInto(out, a, v *Dense) {
	if v.rows != 1 || v.cols != a.cols {
		panic(fmt.Sprintf("mat: AddRowVecInto wants 1x%d vector, got %dx%d", a.cols, v.rows, v.cols))
	}
	out.mustSameShape(a, "AddRowVecInto")
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		o := out.Row(i)
		for j, x := range row {
			o[j] = x + v.data[j]
		}
	}
}

// SubRowVecInto computes out = a - v broadcast over rows (v is 1×c).
func SubRowVecInto(out, a, v *Dense) {
	if v.rows != 1 || v.cols != a.cols {
		panic(fmt.Sprintf("mat: SubRowVecInto wants 1x%d vector, got %dx%d", a.cols, v.rows, v.cols))
	}
	out.mustSameShape(a, "SubRowVecInto")
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		o := out.Row(i)
		for j, x := range row {
			o[j] = x - v.data[j]
		}
	}
}

// AXPYRowBroadcast computes m[i,:] += alpha·v for every row i, where v is
// 1×c — the fused MeanRows/broadcast backward update. v must not alias m.
func (m *Dense) AXPYRowBroadcast(alpha float64, v *Dense) {
	if v.rows != 1 || v.cols != m.cols {
		panic(fmt.Sprintf("mat: AXPYRowBroadcast wants 1x%d vector, got %dx%d", m.cols, v.rows, v.cols))
	}
	for i := 0; i < m.rows; i++ {
		axpyRow(m.Row(i), alpha, v.data)
	}
}

// MeanRowsInto computes the 1×c column-wise mean of a into out. A 0-row
// input yields zeros.
func MeanRowsInto(out, a *Dense) {
	if out.rows != 1 || out.cols != a.cols {
		panic(fmt.Sprintf("mat: MeanRowsInto wants 1x%d output, got %dx%d", a.cols, out.rows, out.cols))
	}
	out.Zero()
	if a.rows == 0 {
		return
	}
	for i := 0; i < a.rows; i++ {
		axpyRow(out.data, 1, a.Row(i))
	}
	inv := 1 / float64(a.rows)
	for j := range out.data {
		out.data[j] *= inv
	}
}

// SumRowsAXPY computes out += alpha·colsum(a) with out a 1×c vector — the
// fused bias-gradient update of the row-broadcast ops.
func SumRowsAXPY(out *Dense, alpha float64, a *Dense) {
	if out.rows != 1 || out.cols != a.cols {
		panic(fmt.Sprintf("mat: SumRowsAXPY wants 1x%d output, got %dx%d", a.cols, out.rows, out.cols))
	}
	for i := 0; i < a.rows; i++ {
		axpyRow(out.data, alpha, a.Row(i))
	}
}

// PowElemInto computes out = a^p element-wise by repeated multiplication.
func PowElemInto(out, a *Dense, p int) {
	out.mustSameShape(a, "PowElemInto")
	for i, v := range a.data {
		out.data[i] = ipow(v, p)
	}
}

// IPow raises x to the non-negative integer power p by repeated
// multiplication, handling negative bases exactly (odd central moments).
func IPow(x float64, p int) float64 { return ipow(x, p) }

// SelectRowsInto copies m's idx[i]-th row into out's i-th row.
func (m *Dense) SelectRowsInto(out *Dense, idx []int) {
	if out.rows != len(idx) || out.cols != m.cols {
		panic(fmt.Sprintf("mat: SelectRowsInto output %dx%d, want %dx%d", out.rows, out.cols, len(idx), m.cols))
	}
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
}

// ArgmaxRows returns, for each row, the index of its largest element.
func ArgmaxRows(a *Dense) []int {
	out := make([]int, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		out[i] = bi
	}
	return out
}
