package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{3, 3}, {8, 5}, {20, 20}, {31, 7}} {
		a := RandGaussian(rng, dims[0], dims[1], 0, 1)
		q, r, err := QR(a)
		if err != nil {
			t.Fatal(err)
		}
		if !MatMul(q, r).EqualApprox(a, 1e-9) {
			t.Fatalf("QR does not reconstruct for %v", dims)
		}
		// Q has orthonormal columns: QᵀQ = I.
		if got := MatMulT1(q, q); !got.EqualApprox(Eye(dims[1]), 1e-9) {
			t.Fatalf("Q columns not orthonormal for %v", dims)
		}
		// R is upper triangular.
		for i := 1; i < r.Rows(); i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatalf("R not upper triangular at %d,%d", i, j)
				}
			}
		}
	}
}

func TestQRRejectsWide(t *testing.T) {
	if _, _, err := QR(New(2, 3)); err == nil {
		t.Fatal("wide matrix accepted")
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Duplicate columns: decomposition must still reconstruct.
	a, _ := NewFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	q, r, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	if !MatMul(q, r).EqualApprox(a, 1e-9) {
		t.Fatal("rank-deficient QR reconstruction failed")
	}
}

func TestOrthonormalizeQR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandGaussian(rng, 16, 16, 0, 1)
	q, err := OrthonormalizeQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if OrthoError(q) > 1e-9 {
		t.Fatalf("QR orthonormalisation defect %v", OrthoError(q))
	}
}

func TestQRPropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		m := n + rng.Intn(10)
		a := RandGaussian(rng, m, n, 0, 1)
		q, r, err := QR(a)
		if err != nil {
			return false
		}
		return MatMul(q, r).EqualApprox(a, 1e-8) &&
			MatMulT1(q, q).EqualApprox(Eye(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
