//go:build amd64

package mat

// SIMD micro-kernels (matmul_amd64.s): AVX2+FMA 4×8 register tiles for the
// plain and aᵀ·b products. Selected at process start from CPUID; the pure-Go
// mm4x4 path remains as the fallback and as the edge-tile kernel either way.
// useAVX is fixed for the life of the process, so the SIMD/scalar cell
// partition is a pure function of matrix shape — a requirement of the
// bit-identical-across-worker-counts contract (see matmul.go).
var useAVX = cpuHasAVX2FMA()

// cpuHasAVX2FMA reports whether the CPU and OS support AVX2 and FMA
// (CPUID feature bits plus XGETBV-confirmed YMM state saving).
func cpuHasAVX2FMA() bool

// mmAVX4x8 computes the 4×8 tile out[0:4][0:8] (+)= a(4×kl)·b(kl×8).
// po/pa/pb point at the tile origins; ldo/lda/ldb are row strides in
// float64s; kl is the inner-dimension length for this k-block. Row r of a is
// read at pa[r*lda+t]; each output cell accumulates over t in ascending
// order with fused multiply-add, one chain per cell.
//
//go:noescape
func mmAVX4x8(po, pa, pb *float64, ldo, lda, ldb, kl int, accum bool)

// mmT1AVX4x8 is the transposed-A variant: out[0:4][0:8] (+)=
// a[0:kl][0:4]ᵀ·b(kl×8). The four a values per k step are contiguous
// (pa[t*lda+r]), so the kernel broadcasts from consecutive memory instead of
// a strided column walk.
//
//go:noescape
func mmT1AVX4x8(po, pa, pb *float64, ldo, lda, ldb, kl int, accum bool)

// mmT2AVX2x4 is the transposed-B variant: out[0:2][0:4] (+)=
// a(2×kl)·b(4×kl)ᵀ, eight simultaneous dot products with a fixed 4-lane
// reduction order and a scalar tail for kl mod 4 (order depends only on kl).
//
//go:noescape
func mmT2AVX2x4(po, pa, pb *float64, ldo, lda, ldb, kl int, accum bool)

// axpyAVX computes dst[0:n] += alpha*src[0:n] (n a multiple of 4) with
// separate multiply and add — bit-identical to the scalar loop, so the
// dispatch in axpyRow is invisible to results.
//
//go:noescape
func axpyAVX(dst, src *float64, alpha float64, n int)
