package mat

import (
	"fmt"
	"math/rand"
	"testing"
)

// The determinism suite pins the core kernel contract: for any worker count,
// a parallel kernel's output is bit-identical to its single-participant run.
// Shapes are chosen to cross parallelThreshold (so the pool actually
// engages) and to exercise ragged tiles on every edge (rows, cols and inner
// dimension not multiples of the tile sizes or k-blocks).

type mmCase struct {
	name string
	run  func(a, b *Dense) *Dense
	dims func(m, n, p int) (ar, ac, br, bc int)
}

var mmCases = []mmCase{
	{"MatMulInto", func(a, b *Dense) *Dense {
		out := New(a.Rows(), b.Cols())
		MatMulInto(out, a, b)
		return out
	}, func(m, n, p int) (int, int, int, int) { return m, n, n, p }},
	{"MatMulAddInto", func(a, b *Dense) *Dense {
		out := New(a.Rows(), b.Cols())
		for i := range out.data {
			out.data[i] = 0.5
		}
		MatMulAddInto(out, a, b)
		return out
	}, func(m, n, p int) (int, int, int, int) { return m, n, n, p }},
	{"MatMulT1Into", func(a, b *Dense) *Dense {
		out := New(a.Cols(), b.Cols())
		MatMulT1Into(out, a, b)
		return out
	}, func(m, n, p int) (int, int, int, int) { return n, m, n, p }},
	{"MatMulT1AddInto", func(a, b *Dense) *Dense {
		out := New(a.Cols(), b.Cols())
		for i := range out.data {
			out.data[i] = -0.25
		}
		MatMulT1AddInto(out, a, b)
		return out
	}, func(m, n, p int) (int, int, int, int) { return n, m, n, p }},
	{"MatMulT2Into", func(a, b *Dense) *Dense {
		out := New(a.Rows(), b.Rows())
		MatMulT2Into(out, a, b)
		return out
	}, func(m, n, p int) (int, int, int, int) { return m, n, p, n }},
	{"MatMulT2AddInto", func(a, b *Dense) *Dense {
		out := New(a.Rows(), b.Rows())
		for i := range out.data {
			out.data[i] = 1.25
		}
		MatMulT2AddInto(out, a, b)
		return out
	}, func(m, n, p int) (int, int, int, int) { return m, n, p, n }},
}

// mmShapes mixes tile-aligned and ragged shapes; all are large enough that
// m*n*p clears parallelThreshold.
var mmShapes = [][3]int{
	{64, 64, 64},
	{61, 67, 59},
	{128, 300, 37},
	{37, 513, 130},
	{133, 41, 259},
}

func TestMatMulBitIdenticalAcrossWorkerCounts(t *testing.T) {
	defer SetWorkers(0)
	for _, tc := range mmCases {
		for _, sh := range mmShapes {
			m, n, p := sh[0], sh[1], sh[2]
			ar, ac, br, bc := tc.dims(m, n, p)
			rng := rand.New(rand.NewSource(int64(m*31 + n*7 + p)))
			a := randDense(ar, ac, rng)
			b := randDense(br, bc, rng)

			SetWorkers(1)
			ref := tc.run(a, b)
			for _, w := range workerCounts()[1:] {
				SetWorkers(w)
				got := tc.run(a, b)
				for i := range ref.data {
					if got.data[i] != ref.data[i] {
						t.Fatalf("%s %dx%dx%d workers=%d: element %d = %x, serial %x",
							tc.name, m, n, p, w, i, got.data[i], ref.data[i])
					}
				}
			}
		}
	}
}

// TestMatMulBlockedMatchesSeedReference checks the blocked/SIMD kernels
// against the seed ikj kernel numerically (they reorder and fuse floating
// point, so equality is approximate but tight).
func TestMatMulBlockedMatchesSeedReference(t *testing.T) {
	for _, sh := range mmShapes {
		m, n, p := sh[0], sh[1], sh[2]
		rng := rand.New(rand.NewSource(int64(m + n + p)))
		a := randDense(m, n, rng)
		b := randDense(n, p, rng)
		want := MatMulSerial(a, b)
		got := MatMul(a, b)
		for i := range want.data {
			d := got.data[i] - want.data[i]
			if d < -1e-9 || d > 1e-9 {
				t.Fatalf("%dx%dx%d: element %d = %g, seed %g", m, n, p, i, got.data[i], want.data[i])
			}
		}
	}
}

// TestMatMulAccumFoldsZeroing pins the satellite fix: the non-accumulating
// kernels must fully overwrite stale output content (the zeroing is folded
// into the first k-block, not a separate traversal).
func TestMatMulAccumFoldsZeroing(t *testing.T) {
	for _, sh := range mmShapes[:2] {
		m, n, p := sh[0], sh[1], sh[2]
		rng := rand.New(rand.NewSource(9))
		a := randDense(m, n, rng)
		b := randDense(n, p, rng)

		clean := New(m, p)
		MatMulInto(clean, a, b)
		dirty := New(m, p)
		for i := range dirty.data {
			dirty.data[i] = 1e30
		}
		MatMulInto(dirty, a, b)
		for i := range clean.data {
			if dirty.data[i] != clean.data[i] {
				t.Fatalf("MatMulInto %v: stale content leaked into element %d", sh, i)
			}
		}

		cleanT1 := New(n, p)
		a2 := randDense(m, n, rng)
		b2 := randDense(m, p, rng)
		MatMulT1Into(cleanT1, a2, b2)
		dirtyT1 := New(n, p)
		for i := range dirtyT1.data {
			dirtyT1.data[i] = -1e30
		}
		MatMulT1Into(dirtyT1, a2, b2)
		for i := range cleanT1.data {
			if dirtyT1.data[i] != cleanT1.data[i] {
				t.Fatalf("MatMulT1Into %v: stale content leaked into element %d", sh, i)
			}
		}
	}
}

// TestMatMulZeroInnerDim pins the n==0 edge: out must be zeroed (not left
// stale) for the Into kernels and untouched for the AddInto kernels.
func TestMatMulZeroInnerDim(t *testing.T) {
	a := New(5, 0)
	b := New(0, 7)
	out := New(5, 7)
	for i := range out.data {
		out.data[i] = 3
	}
	MatMulInto(out, a, b)
	for i := range out.data {
		if out.data[i] != 0 {
			t.Fatalf("MatMulInto with k=0: element %d = %g, want 0", i, out.data[i])
		}
	}
	for i := range out.data {
		out.data[i] = 3
	}
	MatMulAddInto(out, a, b)
	for i := range out.data {
		if out.data[i] != 3 {
			t.Fatalf("MatMulAddInto with k=0: element %d = %g, want 3", i, out.data[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	a, b := New(3, 4), New(5, 6)
	mustPanic("MatMul", func() { MatMul(a, b) })
	mustPanic("MatMulInto", func() { MatMulInto(New(3, 6), a, b) })
	mustPanic("MatMulT1Into shape", func() { MatMulT1Into(New(9, 9), New(5, 4), New(5, 6)) })
	mustPanic("MatMulT2Into", func() { MatMulT2Into(New(3, 5), a, b) })
}

func BenchmarkMatMulWorkerGrid(b *testing.B) {
	defer SetWorkers(0)
	n := 512
	rng := rand.New(rand.NewSource(1))
	x := randDense(n, n, rng)
	y := randDense(n, n, rng)
	out := New(n, n)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			SetWorkers(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, x, y)
			}
		})
	}
}
