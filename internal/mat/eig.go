package mat

import (
	"errors"
	"math"
	"sort"
)

// EigSym computes the eigendecomposition Σ = U Λ Uᵀ of a symmetric matrix
// using the cyclic Jacobi rotation method. It returns the eigenvalues in
// descending order and the matching eigenvectors as the columns of U.
//
// The paper uses this factorisation (§4.3) to express the covariance factor
// Q = U Λ^{1/2} that orthogonally projects client features.
func EigSym(a *Dense) (eigvals []float64, u *Dense, err error) {
	n := a.rows
	if a.cols != n {
		return nil, nil, errors.New("mat: EigSym requires a square matrix")
	}
	const (
		maxSweeps = 100
		tol       = 1e-12
	)
	// Work on a copy; accumulate rotations in u.
	w := a.Clone()
	// Symmetrise defensively: Jacobi assumes exact symmetry.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := 0.5 * (w.At(i, j) + w.At(j, i))
			w.Set(i, j, s)
			w.Set(j, i, s)
		}
	}
	u = Eye(n)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off < tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < tol/float64(n*n) {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(w, u, p, q, c, s)
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sorted := make([]float64, n)
	usorted := New(n, n)
	for newCol, oldCol := range idx {
		sorted[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			usorted.Set(r, newCol, u.At(r, oldCol))
		}
	}
	return sorted, usorted, nil
}

// rotate applies the Jacobi rotation J(p,q,c,s) as w ← Jᵀ w J and u ← u J.
func rotate(w, u *Dense, p, q int, c, s float64) {
	n := w.rows
	for k := 0; k < n; k++ {
		wkp, wkq := w.At(k, p), w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk, wqk := w.At(p, k), w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		ukp, ukq := u.At(k, p), u.At(k, q)
		u.Set(k, p, c*ukp-s*ukq)
		u.Set(k, q, s*ukp+c*ukq)
	}
}

func offDiagNorm(w *Dense) float64 {
	var s float64
	n := w.rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				v := w.At(i, j)
				s += v * v
			}
		}
	}
	return math.Sqrt(s)
}

// CovFactor computes the covariance factor Q = U Λ^{1/2} of a symmetric
// positive-semidefinite matrix Σ, so that Σ = Q Qᵀ (§4.3, eq. 5). Negative
// eigenvalues arising from floating-point noise are clamped to zero.
func CovFactor(sigma *Dense) (*Dense, error) {
	vals, u, err := EigSym(sigma)
	if err != nil {
		return nil, err
	}
	n := sigma.rows
	q := New(n, n)
	for j := 0; j < n; j++ {
		l := vals[j]
		if l < 0 {
			l = 0
		}
		sq := math.Sqrt(l)
		for i := 0; i < n; i++ {
			q.Set(i, j, u.At(i, j)*sq)
		}
	}
	return q, nil
}

// Covariance returns the d×d sample covariance of the rows of x (rows are
// observations, columns are features), normalised by n rather than n-1 to
// match the moment definitions of eq. 10/11.
func Covariance(x *Dense) *Dense {
	mu := MeanRows(x)
	c := SubRowVec(x, mu)
	cov := MatMulT1(c, c)
	if x.rows > 0 {
		cov.ScaleInPlace(1 / float64(x.rows))
	}
	return cov
}
