package mat

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"fedomd/internal/telemetry"
)

// Buffer pooling: training steps churn through forward values, gradients and
// backward temporaries whose shapes repeat exactly from step to step. GetDense
// and PutDense recycle that storage through size-bucketed sync.Pools so a
// steady-state step allocates (almost) nothing. Buckets are powers of two of
// the element count; a matrix drawn from bucket b owns a backing slice of
// capacity exactly 1<<b, which lets any shape with rows*cols ≤ 1<<b reuse it.
//
// Ownership contract: a caller that Puts a matrix must hold no further
// references to it (or to slices returned by Data()/Row()); the next Get from
// the same bucket may hand the storage to unrelated code. The ad.Tape is the
// main client and enforces this by only releasing buffers it allocated itself,
// after the optimiser step that consumes them.

const (
	// minPoolBits is the smallest bucket (64 floats = 512 B); tinier
	// requests are rounded up so scalar loss nodes recycle too.
	minPoolBits = 6
	// maxPoolBits caps pooled buffers at 1<<22 floats (32 MiB); anything
	// larger is rare enough that holding it in a pool would just pin memory.
	maxPoolBits = 22
)

// Process-global telemetry: hit/miss rates are the health signal of the
// memory-reuse layer (a miss is a fresh allocation, a hit is storage
// recycled from a previous step).
var (
	poolHits   = telemetry.NewCounter("mat/pool_hits")
	poolMisses = telemetry.NewCounter("mat/pool_misses")
	poolPuts   = telemetry.NewCounter("mat/pool_puts")
)

var (
	poolingOff atomic.Bool
	pools      [maxPoolBits + 1]sync.Pool
)

// Debug double-put detection. A buffer put twice sits in the pool twice, so
// two later GetDense calls hand the same storage to unrelated code — the
// worst kind of corruption, surfacing far from the bug. Under SetDebug(true)
// PutDense records the identity (first-element pointer) of every pooled
// backing array and panics at the second put; GetDense clears the mark when
// the buffer leaves the pool. The bookkeeping takes a mutex per Get/Put, so
// it is off by default and enabled in tests (and by fedomdvet's poolpair
// analyzer development loop).
var (
	debugOn   atomic.Bool
	debugMu   sync.Mutex
	debugPuts = map[*float64]bool{}
)

// SetDebug toggles double-put detection. Turning it off (or on) resets the
// bookkeeping. Note the mark map deliberately keeps pooled arrays reachable;
// enable only in tests and debugging sessions.
func SetDebug(on bool) {
	debugMu.Lock()
	defer debugMu.Unlock()
	debugOn.Store(on)
	clear(debugPuts)
}

// DebugEnabled reports whether double-put detection is active.
func DebugEnabled() bool { return debugOn.Load() }

// SetPooling toggles the buffer pool globally. With pooling off, GetDense
// degrades to New and PutDense to a no-op — the ablation path the allocation
// benchmarks compare against. Pooling is on by default.
func SetPooling(on bool) { poolingOff.Store(!on) }

// PoolingEnabled reports whether GetDense draws from the pool.
func PoolingEnabled() bool { return !poolingOff.Load() }

// poolBucket returns the bucket index for n floats, or -1 if n is unpoolable.
func poolBucket(n int) int {
	if n <= 0 {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minPoolBits {
		b = minPoolBits
	}
	if b > maxPoolBits {
		return -1
	}
	return b
}

// GetDense returns a zeroed r×c matrix, recycling pooled storage when a
// suitable buffer is available. The caller owns the result until it passes it
// to PutDense (or drops it for the GC, which is always safe).
func GetDense(r, c int) *Dense {
	n := r * c
	b := poolBucket(n)
	if b < 0 || poolingOff.Load() {
		return New(r, c)
	}
	if v := pools[b].Get(); v != nil {
		poolHits.Add(1)
		d := v.(*Dense)
		if debugOn.Load() {
			debugMu.Lock()
			delete(debugPuts, &d.data[:1][0])
			debugMu.Unlock()
		}
		d.rows, d.cols = r, c
		d.data = d.data[:n]
		for i := range d.data {
			d.data[i] = 0
		}
		return d
	}
	poolMisses.Add(1)
	return &Dense{rows: r, cols: c, data: make([]float64, n, 1<<b)}
}

// PutDense returns m's storage to the pool. m must not be used afterwards —
// neither the matrix nor any slice previously obtained from Data() or Row().
// Matrices whose backing capacity is not an exact bucket size (anything not
// allocated by GetDense, in practice) are silently dropped for the GC, so
// PutDense is safe to call on any matrix the caller owns. nil is ignored.
func PutDense(m *Dense) {
	if m == nil || poolingOff.Load() {
		return
	}
	n := cap(m.data)
	if n == 0 || n&(n-1) != 0 {
		return // not a pool-shaped buffer
	}
	b := bits.Len(uint(n)) - 1
	if b < minPoolBits || b > maxPoolBits {
		return
	}
	if debugOn.Load() {
		p := &m.data[:1][0]
		debugMu.Lock()
		if debugPuts[p] {
			debugMu.Unlock()
			panic("mat: PutDense called twice on the same backing array (double put)")
		}
		debugPuts[p] = true
		debugMu.Unlock()
	}
	poolPuts.Add(1)
	pools[b].Put(m)
}

// PoolStats snapshots the pool counters (hits, misses, puts) — a convenience
// for tests and reports on top of the telemetry registry.
func PoolStats() (hits, misses, puts int64) {
	return poolHits.Value(), poolMisses.Value(), poolPuts.Value()
}
