package mat

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// withWorkers runs fn under a fixed participant count, restoring the default
// afterwards so tests don't leak configuration.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	fn()
}

// workerCounts is the grid the determinism suite pins: serial, minimal
// parallel, the default, and oversubscribed (more participants than cores —
// on a small machine this is the only way to force real interleaving).
func workerCounts() []int {
	ncpu := runtime.NumCPU()
	return []int{1, 2, ncpu, ncpu + 3}
}

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, w := range workerCounts() {
		for _, n := range []int{1, 7, 64, 1000, 4096} {
			var hits []atomic.Int32
			hits = make([]atomic.Int32, n)
			SetWorkers(w)
			ParallelFor(n, 16, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("w=%d n=%d: bad chunk [%d,%d)", w, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("w=%d n=%d: index %d processed %d times", w, n, i, got)
				}
			}
		}
	}
	SetWorkers(0)
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	ran := false
	ParallelFor(0, 4, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("body ran for n=0")
	}
	ParallelFor(3, 8, func(lo, hi int) {
		if lo != 0 || hi != 3 {
			t.Fatalf("n<=grain should run inline over [0,n), got [%d,%d)", lo, hi)
		}
	})
}

func TestSetWorkersReconfigures(t *testing.T) {
	withWorkers(t, 5, func() {
		if got := Workers(); got != 5 {
			t.Fatalf("Workers() = %d, want 5", got)
		}
	})
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() after reset = %d, want %d", got, want)
	}
}

// TestParallelForConcurrentDispatch drives many simultaneous jobs through
// the shared pool (plus a SetWorkers churn in the background) under -race:
// the pool must isolate jobs from one another and from reconfiguration.
func TestParallelForConcurrentDispatch(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	var churn sync.WaitGroup
	stop := make(chan struct{})
	churn.Add(1)
	go func() {
		defer churn.Done()
		w := 2
		for {
			select {
			case <-stop:
				return
			default:
				SetWorkers(w)
				w = 2 + (w+1)%5
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 50; iter++ {
				n := 64 + rng.Intn(2048)
				var sum atomic.Int64
				ParallelFor(n, 32, func(lo, hi int) {
					var s int64
					for i := lo; i < hi; i++ {
						s += int64(i)
					}
					sum.Add(s)
				})
				if want := int64(n) * int64(n-1) / 2; sum.Load() != want {
					t.Errorf("sum over [0,%d) = %d, want %d", n, sum.Load(), want)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(stop)
	churn.Wait()
}
