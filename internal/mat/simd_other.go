//go:build !amd64

package mat

// Non-amd64 builds run the pure-Go blocked kernels everywhere.
const useAVX = false

func mmAVX4x8(po, pa, pb *float64, ldo, lda, ldb, kl int, accum bool) {
	panic("mat: SIMD kernel called on non-amd64 build")
}

func mmT1AVX4x8(po, pa, pb *float64, ldo, lda, ldb, kl int, accum bool) {
	panic("mat: SIMD kernel called on non-amd64 build")
}

func mmT2AVX2x4(po, pa, pb *float64, ldo, lda, ldb, kl int, accum bool) {
	panic("mat: SIMD kernel called on non-amd64 build")
}

func axpyAVX(dst, src *float64, alpha float64, n int) {
	panic("mat: SIMD kernel called on non-amd64 build")
}
