package mat

import (
	"fmt"
	"math/rand"
	"testing"
)

func randDense(r, c int, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkMatMulSeedIKJ(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := randDense(n, n, rng)
			c := randDense(n, n, rng)
			out := New(n, n)
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				matMulIKJ(out, a, c, 0, n, false)
			}
			b.ReportMetric(2*float64(n)*float64(n)*float64(n)/float64(b.Elapsed().Nanoseconds())*float64(b.N), "GFLOP/s")
		})
	}
}

func BenchmarkMatMulBlocked(b *testing.B) {
	for _, n := range []int{256, 512, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := randDense(n, n, rng)
			c := randDense(n, n, rng)
			out := New(n, n)
			b.SetBytes(int64(8 * n * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, a, c)
			}
			b.ReportMetric(2*float64(n)*float64(n)*float64(n)/float64(b.Elapsed().Nanoseconds())*float64(b.N), "GFLOP/s")
		})
	}
}

func BenchmarkMatMulT1Blocked(b *testing.B) {
	n := 512
	rng := rand.New(rand.NewSource(1))
	a := randDense(n, n, rng)
	c := randDense(n, n, rng)
	out := New(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT1Into(out, a, c)
	}
	b.ReportMetric(2*float64(n)*float64(n)*float64(n)/float64(b.Elapsed().Nanoseconds())*float64(b.N), "GFLOP/s")
}

func BenchmarkMatMulT2Blocked(b *testing.B) {
	n := 512
	rng := rand.New(rand.NewSource(1))
	a := randDense(n, n, rng)
	c := randDense(n, n, rng)
	out := New(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulT2Into(out, a, c)
	}
	b.ReportMetric(2*float64(n)*float64(n)*float64(n)/float64(b.Elapsed().Nanoseconds())*float64(b.N), "GFLOP/s")
}
