package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("zero value not zero: %v", got)
	}
}

func TestNewFromRows(t *testing.T) {
	m, err := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v want 6", m.At(2, 1))
	}
	if _, err := NewFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	empty, err := NewFromRows(nil)
	if err != nil || empty.Rows() != 0 {
		t.Fatalf("empty rows: %v %v", empty, err)
	}
}

func TestNewFromDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched data length")
		}
	}()
	NewFromData(2, 2, []float64{1, 2, 3})
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %v want %v", i, j, e.At(i, j), want)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandGaussian(rng, 37, 53, 0, 1)
	at := a.T()
	if at.Rows() != 53 || at.Cols() != 37 {
		t.Fatalf("T dims = %dx%d", at.Rows(), at.Cols())
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
	if !a.T().T().Equal(a) {
		t.Fatal("double transpose not identity")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 3, 4})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestSliceAndSelectRows(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	s := a.SliceRows(1, 3)
	if s.Rows() != 2 || s.At(0, 0) != 2 || s.At(1, 1) != 3 {
		t.Fatalf("SliceRows wrong: %v", s)
	}
	sel := a.SelectRows([]int{3, 0})
	if sel.At(0, 0) != 4 || sel.At(1, 0) != 1 {
		t.Fatalf("SelectRows wrong: %v", sel)
	}
}

func TestElementwiseOps(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewFromRows([][]float64{{10, 20}, {30, 40}})
	if got := Add(a, b).At(1, 1); got != 44 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).At(0, 0); got != 9 {
		t.Fatalf("Sub = %v", got)
	}
	if got := MulElem(a, b).At(0, 1); got != 40 {
		t.Fatalf("MulElem = %v", got)
	}
	if got := Scale(2, a).At(1, 0); got != 6 {
		t.Fatalf("Scale = %v", got)
	}
	c := a.Clone()
	c.AXPY(0.5, b)
	if got := c.At(0, 0); got != 6 {
		t.Fatalf("AXPY = %v", got)
	}
}

func TestBroadcastRowVec(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	v, _ := NewFromRows([][]float64{{10, 100}})
	add := AddRowVec(a, v)
	if add.At(1, 1) != 104 || add.At(0, 0) != 11 {
		t.Fatalf("AddRowVec wrong: %v", add)
	}
	sub := SubRowVec(a, v)
	if sub.At(0, 1) != -98 {
		t.Fatalf("SubRowVec wrong: %v", sub)
	}
}

func TestReductions(t *testing.T) {
	a, _ := NewFromRows([][]float64{{1, 2}, {3, 4}})
	mean := MeanRows(a)
	if mean.At(0, 0) != 2 || mean.At(0, 1) != 3 {
		t.Fatalf("MeanRows = %v", mean)
	}
	if Sum(a) != 10 {
		t.Fatalf("Sum = %v", Sum(a))
	}
	if Max(a) != 4 || Min(a) != 1 {
		t.Fatalf("Max/Min wrong")
	}
	if got := FrobNormSq(a); got != 30 {
		t.Fatalf("FrobNormSq = %v", got)
	}
	if got := FrobNorm(a); math.Abs(got-math.Sqrt(30)) > 1e-15 {
		t.Fatalf("FrobNorm = %v", got)
	}
	if got := Dot(a, a); got != 30 {
		t.Fatalf("Dot = %v", got)
	}
	sums := SumRows(a)
	if sums.At(0, 0) != 4 || sums.At(0, 1) != 6 {
		t.Fatalf("SumRows = %v", sums)
	}
}

func TestMeanRowsEmpty(t *testing.T) {
	mean := MeanRows(New(0, 3))
	if mean.Rows() != 1 || mean.Cols() != 3 || Sum(mean) != 0 {
		t.Fatalf("MeanRows on empty: %v", mean)
	}
}

func TestPowElemNegativeBase(t *testing.T) {
	a, _ := NewFromRows([][]float64{{-2, 3}})
	p3 := PowElem(a, 3)
	if p3.At(0, 0) != -8 || p3.At(0, 1) != 27 {
		t.Fatalf("PowElem(3) = %v", p3)
	}
	p0 := PowElem(a, 0)
	if p0.At(0, 0) != 1 || p0.At(0, 1) != 1 {
		t.Fatalf("PowElem(0) = %v", p0)
	}
}

func TestArgmaxRows(t *testing.T) {
	a, _ := NewFromRows([][]float64{{0.1, 0.9, 0.2}, {5, 1, 2}})
	got := ArgmaxRows(a)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := New(2, 2)
	b := New(2, 3)
	for name, f := range map[string]func(){
		"Add":     func() { Add(a, b) },
		"Sub":     func() { Sub(a, b) },
		"MulElem": func() { MulElem(a, b) },
		"Dot":     func() { Dot(a, b) },
		"MatMul":  func() { MatMul(a, New(3, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on shape mismatch", name)
				}
			}()
			f()
		}()
	}
}

// naiveMatMul is the obvious triple loop used as a test oracle.
func naiveMatMul(a, b *Dense) *Dense {
	out := New(a.Rows(), b.Cols())
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Cols(); j++ {
			var s float64
			for k := 0; k < a.Cols(); k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {64, 48, 32}, {130, 70, 90}} {
		a := RandGaussian(rng, dims[0], dims[1], 0, 1)
		b := RandGaussian(rng, dims[1], dims[2], 0, 1)
		want := naiveMatMul(a, b)
		for name, got := range map[string]*Dense{
			"MatMul":       MatMul(a, b),
			"MatMulSerial": MatMulSerial(a, b),
		} {
			if !got.EqualApprox(want, 1e-9) {
				t.Fatalf("%s(%v) disagrees with naive", name, dims)
			}
		}
	}
}

func TestMatMulT1T2(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandGaussian(rng, 33, 21, 0, 1)
	b := RandGaussian(rng, 33, 17, 0, 1)
	want := naiveMatMul(a.T(), b)
	if got := MatMulT1(a, b); !got.EqualApprox(want, 1e-9) {
		t.Fatal("MatMulT1 disagrees with explicit transpose")
	}
	c := RandGaussian(rng, 29, 21, 0, 1)
	want2 := naiveMatMul(a, c.T())
	if got := MatMulT2(a, c); !got.EqualApprox(want2, 1e-9) {
		t.Fatal("MatMulT2 disagrees with explicit transpose")
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(20)
		c := 1 + rng.Intn(20)
		a := RandGaussian(rng, r, c, 0, 1)
		return MatMul(a, Eye(c)).EqualApprox(a, 1e-12) &&
			MatMul(Eye(r), a).EqualApprox(a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulDistributivityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := RandGaussian(rng, m, k, 0, 1)
		b := RandGaussian(rng, k, n, 0, 1)
		c := RandGaussian(rng, k, n, 0, 1)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestXavierBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := Xavier(rng, 50, 70)
	bound := math.Sqrt(6.0 / 120.0)
	if Max(w) > bound || Min(w) < -bound {
		t.Fatalf("Xavier out of bounds: [%v, %v] vs ±%v", Min(w), Max(w), bound)
	}
}

func TestHeVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	fanIn := 400
	w := He(rng, fanIn, 300)
	varWant := 2.0 / float64(fanIn)
	var s float64
	for _, v := range w.Data() {
		s += v * v
	}
	varGot := s / float64(len(w.Data()))
	if math.Abs(varGot-varWant)/varWant > 0.1 {
		t.Fatalf("He variance %v want about %v", varGot, varWant)
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	a := RandGaussian(rand.New(rand.NewSource(99)), 10, 10, 0, 1)
	b := RandGaussian(rand.New(rand.NewSource(99)), 10, 10, 0, 1)
	if !a.Equal(b) {
		t.Fatal("same seed produced different matrices")
	}
}
