package mat

import (
	"os"
	"testing"
)

// TestMain turns on double-put detection for the whole mat test binary: any
// pool-discipline bug in the package's own tests panics loudly instead of
// corrupting a later test's buffers.
func TestMain(m *testing.M) {
	SetDebug(true)
	code := m.Run()
	SetDebug(false)
	os.Exit(code)
}

func TestDebugDoublePutPanics(t *testing.T) {
	if !DebugEnabled() {
		t.Fatal("debug mode should be on under TestMain")
	}
	m := GetDense(8, 8)
	PutDense(m)
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic on the second PutDense of the same buffer")
		}
	}()
	PutDense(m)
}

// TestDebugPutGetPutOK pins that a buffer cycling through the pool is not a
// false positive: Get clears the put-mark, so re-putting the re-acquired
// buffer is legal.
func TestDebugPutGetPutOK(t *testing.T) {
	m := GetDense(8, 8)
	PutDense(m)
	m2 := GetDense(8, 8) // may or may not be the same backing array
	PutDense(m2)
}

// TestDebugOffNoPanic pins that the guard is inert when disabled.
func TestDebugOffNoPanic(t *testing.T) {
	SetDebug(false)
	defer SetDebug(true)
	m := GetDense(8, 8)
	PutDense(m)
	PutDense(m) // corrupting, but the default mode must stay zero-overhead
	// Drain the bucket completely so the aliased copies cannot reach any
	// later test through the pool.
	for pools[poolBucket(64)].Get() != nil {
	}
}
