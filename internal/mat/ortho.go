package mat

import (
	"errors"
	"math"
)

// NewtonSchulz orthogonalises a square matrix by the Newton–Schulz iteration
//
//	W ← 1.5·W − 0.5·W·Wᵀ·W
//
// which converges to the orthogonal polar factor when every singular value of
// the input lies in (0, √3). The input is pre-scaled by a spectral-norm
// estimate (the paper's spectral bounding normalisation, §4.3) so the largest
// singular value is ≈1; the iteration then runs until the orthogonality
// defect drops below 1e-9 or maxIters is reached. This is the "Newton
// iteration" the paper inherits from Ortho-GCN [11].
//
// Returns an error for non-square or (numerically) zero inputs.
func NewtonSchulz(w *Dense, maxIters int) (*Dense, error) {
	if w.rows != w.cols {
		return nil, errors.New("mat: NewtonSchulz requires a square matrix")
	}
	norm := spectralNormEstimate(w)
	if norm == 0 || math.IsNaN(norm) || math.IsInf(norm, 0) {
		return nil, errors.New("mat: NewtonSchulz on zero or non-finite matrix")
	}
	// Slight shrink keeps the largest singular value strictly below √3 even
	// when the power-iteration estimate is a little low.
	y := Scale(1/(norm*1.01), w)
	if maxIters < 30 {
		maxIters = 30
	}
	for k := 0; k < maxIters; k++ {
		yyt := MatMulT2(y, y)   // Y·Yᵀ
		cubic := MatMul(yyt, y) // Y·Yᵀ·Y
		next := Scale(1.5, y)   // 1.5·Y
		next.AXPY(-0.5, cubic)  // − 0.5·Y·Yᵀ·Y
		y = next
		if OrthoError(y) < 1e-9 {
			break
		}
	}
	return y, nil
}

// SpectralNorm approximates the spectral norm ‖w‖₂ (largest singular value)
// with deterministic power iteration on wᵀw.
func SpectralNorm(w *Dense) float64 { return spectralNormEstimate(w) }

// spectralNormEstimate approximates ‖w‖₂ with a few rounds of power iteration
// on wᵀw, seeded deterministically. The iteration vectors ping-pong through
// two pooled buffers: the estimate runs once per OrthoConv weight per forward
// pass, so it must not churn.
func spectralNormEstimate(w *Dense) (sigma float64) {
	n := w.cols
	if n == 0 {
		return 0
	}
	v := GetDense(n, 1)
	wv := GetDense(w.rows, 1)
	next := GetDense(n, 1)
	defer func() {
		PutDense(v)
		PutDense(wv)
		PutDense(next)
	}()
	for i := range v.data {
		v.data[i] = 1 / math.Sqrt(float64(n))
	}
	for k := 0; k < 20; k++ {
		MatMulInto(wv, w, v)      // n×1
		MatMulT1Into(next, w, wv) // n×1
		nv := FrobNorm(next)
		if nv == 0 {
			return 0
		}
		next.ScaleInPlace(1 / nv)
		v, next = next, v
		sigma = math.Sqrt(nv)
	}
	return sigma
}

// OrthoError returns ‖W·Wᵀ − I‖_F, the orthogonality defect that the paper's
// reconstruction loss (eq. 6) drives toward zero.
func OrthoError(w *Dense) float64 {
	if w.rows == 0 {
		return 0
	}
	g := MatMulT2(w, w)
	for i := 0; i < g.rows; i++ {
		g.data[i*g.cols+i] -= 1
	}
	return FrobNorm(g)
}

// SpectralNormalize returns W/‖W‖_F, the paper's Q̃ = Q/‖Q‖_F bounding step.
// A zero matrix is returned unchanged.
func SpectralNormalize(w *Dense) *Dense {
	n := FrobNorm(w)
	if n == 0 {
		return w.Clone()
	}
	return Scale(1/n, w)
}
