//go:build amd64

#include "textflag.h"

// func cpuHasAVX2FMA() bool
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	// CPUID.(EAX=1):ECX — FMA bit 12, OSXSAVE bit 27, AVX bit 28.
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<12 | 1<<27 | 1<<28), R8
	CMPL R8, $(1<<12 | 1<<27 | 1<<28)
	JNE  notsup

	// XGETBV(0): OS must save XMM (bit 1) and YMM (bit 2) state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  notsup

	// CPUID.(EAX=7,ECX=0):EBX — AVX2 bit 5.
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   notsup
	MOVB $1, ret+0(FP)
	RET

notsup:
	MOVB $0, ret+0(FP)
	RET

// func mmAVX4x8(po, pa, pb *float64, ldo, lda, ldb, kl int, accum bool)
//
// 4×8 register tile of out (+)= a·b. Eight YMM accumulators hold the tile
// (row r in Y(2r), Y(2r+1)); per k step the kernel loads one 8-wide slice of
// b's row k and broadcasts the four a values a[r][k], issuing eight FMAs.
// Each output cell is a single fused-multiply-add chain in ascending k.
TEXT ·mmAVX4x8(SB), NOSPLIT, $0-57
	MOVQ po+0(FP), DI
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DX
	MOVQ ldo+24(FP), R8
	MOVQ lda+32(FP), R9
	MOVQ ldb+40(FP), R10
	MOVQ kl+48(FP), CX
	SHLQ $3, R8                  // row strides in bytes
	SHLQ $3, R9
	SHLQ $3, R10
	LEAQ (R9)(R9*2), R11         // 3*lda bytes

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

kloop:
	VMOVUPD      (DX), Y8
	VMOVUPD      32(DX), Y9
	VBROADCASTSD (SI), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD (SI)(R9*1), Y10
	VFMADD231PD  Y8, Y10, Y2
	VFMADD231PD  Y9, Y10, Y3
	VBROADCASTSD (SI)(R9*2), Y10
	VFMADD231PD  Y8, Y10, Y4
	VFMADD231PD  Y9, Y10, Y5
	VBROADCASTSD (SI)(R11*1), Y10
	VFMADD231PD  Y8, Y10, Y6
	VFMADD231PD  Y9, Y10, Y7
	ADDQ         $8, SI
	ADDQ         R10, DX
	DECQ         CX
	JNZ          kloop

	MOVB  accum+56(FP), AX
	TESTB AX, AX
	JZ    store

	VADDPD (DI), Y0, Y0
	VADDPD 32(DI), Y1, Y1
	LEAQ   (DI)(R8*1), BX
	VADDPD (BX), Y2, Y2
	VADDPD 32(BX), Y3, Y3
	VADDPD (BX)(R8*1), Y4, Y4
	VADDPD 32(BX)(R8*1), Y5, Y5
	VADDPD (BX)(R8*2), Y6, Y6
	VADDPD 32(BX)(R8*2), Y7, Y7

store:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    R8, DI
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ    R8, DI
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ    R8, DI
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func mmT1AVX4x8(po, pa, pb *float64, ldo, lda, ldb, kl int, accum bool)
//
// Transposed-A variant: out[0:4][0:8] (+)= a[·,0:4]ᵀ·b[·,0:8]. The four a
// values per k step sit contiguously at pa[0..3], so the broadcasts read
// consecutive memory and pa advances one a-row per k.
TEXT ·mmT1AVX4x8(SB), NOSPLIT, $0-57
	MOVQ po+0(FP), DI
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DX
	MOVQ ldo+24(FP), R8
	MOVQ lda+32(FP), R9
	MOVQ ldb+40(FP), R10
	MOVQ kl+48(FP), CX
	SHLQ $3, R8
	SHLQ $3, R9
	SHLQ $3, R10

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

t1loop:
	VMOVUPD      (DX), Y8
	VMOVUPD      32(DX), Y9
	VBROADCASTSD (SI), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VBROADCASTSD 8(SI), Y10
	VFMADD231PD  Y8, Y10, Y2
	VFMADD231PD  Y9, Y10, Y3
	VBROADCASTSD 16(SI), Y10
	VFMADD231PD  Y8, Y10, Y4
	VFMADD231PD  Y9, Y10, Y5
	VBROADCASTSD 24(SI), Y10
	VFMADD231PD  Y8, Y10, Y6
	VFMADD231PD  Y9, Y10, Y7
	ADDQ         R9, SI
	ADDQ         R10, DX
	DECQ         CX
	JNZ          t1loop

	MOVB  accum+56(FP), AX
	TESTB AX, AX
	JZ    t1store

	VADDPD (DI), Y0, Y0
	VADDPD 32(DI), Y1, Y1
	LEAQ   (DI)(R8*1), BX
	VADDPD (BX), Y2, Y2
	VADDPD 32(BX), Y3, Y3
	VADDPD (BX)(R8*1), Y4, Y4
	VADDPD 32(BX)(R8*1), Y5, Y5
	VADDPD (BX)(R8*2), Y6, Y6
	VADDPD 32(BX)(R8*2), Y7, Y7

t1store:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    R8, DI
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ    R8, DI
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ    R8, DI
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func mmT2AVX2x4(po, pa, pb *float64, ldo, lda, ldb, kl int, accum bool)
//
// Transposed-B variant: out[0:2][0:4] (+)= a(2×kl)·b(4×kl)ᵀ — eight
// simultaneous dot products over row-major operands. The main loop
// accumulates four k-lanes per product in a YMM; lanes are reduced in a
// fixed order ((l0+l2)+(l1+l3) via VHADDPD after VEXTRACTF128) and the
// ragged k tail (kl mod 4) is folded in scalar after the reduction, so the
// accumulation order per cell is a pure function of kl.
TEXT ·mmT2AVX2x4(SB), NOSPLIT, $0-57
	MOVQ po+0(FP), DI
	MOVQ pa+8(FP), SI
	MOVQ pb+16(FP), DX
	MOVQ ldo+24(FP), R8
	MOVQ lda+32(FP), R9
	MOVQ ldb+40(FP), R10
	MOVQ kl+48(FP), CX
	SHLQ $3, R8
	SHLQ $3, R9
	SHLQ $3, R10
	LEAQ (R10)(R10*2), R13     // 3*ldb bytes

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ CX, R12               // kl mod 4 = scalar tail length
	ANDQ $3, R12
	SHRQ $2, CX                // vector iterations
	JZ   t2reduce

t2loop:
	VMOVUPD     (SI), Y8
	VMOVUPD     (SI)(R9*1), Y9
	VMOVUPD     (DX), Y10
	VFMADD231PD Y10, Y8, Y0
	VFMADD231PD Y10, Y9, Y4
	VMOVUPD     (DX)(R10*1), Y10
	VFMADD231PD Y10, Y8, Y1
	VFMADD231PD Y10, Y9, Y5
	VMOVUPD     (DX)(R10*2), Y10
	VFMADD231PD Y10, Y8, Y2
	VFMADD231PD Y10, Y9, Y6
	VMOVUPD     (DX)(R13*1), Y10
	VFMADD231PD Y10, Y8, Y3
	VFMADD231PD Y10, Y9, Y7
	ADDQ        $32, SI
	ADDQ        $32, DX
	DECQ        CX
	JNZ         t2loop

t2reduce:
	// Reduce each 4-lane partial to a scalar in the low lane.
	VEXTRACTF128 $1, Y0, X8
	VADDPD       X8, X0, X0
	VHADDPD      X0, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPD       X8, X1, X1
	VHADDPD      X1, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPD       X8, X2, X2
	VHADDPD      X2, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPD       X8, X3, X3
	VHADDPD      X3, X3, X3
	VEXTRACTF128 $1, Y4, X8
	VADDPD       X8, X4, X4
	VHADDPD      X4, X4, X4
	VEXTRACTF128 $1, Y5, X8
	VADDPD       X8, X5, X5
	VHADDPD      X5, X5, X5
	VEXTRACTF128 $1, Y6, X8
	VADDPD       X8, X6, X6
	VHADDPD      X6, X6, X6
	VEXTRACTF128 $1, Y7, X8
	VADDPD       X8, X7, X7
	VHADDPD      X7, X7, X7

	TESTQ R12, R12
	JZ    t2tail_done

t2tail:
	VMOVSD      (SI), X8
	VMOVSD      (SI)(R9*1), X9
	VMOVSD      (DX), X10
	VFMADD231SD X10, X8, X0
	VFMADD231SD X10, X9, X4
	VMOVSD      (DX)(R10*1), X10
	VFMADD231SD X10, X8, X1
	VFMADD231SD X10, X9, X5
	VMOVSD      (DX)(R10*2), X10
	VFMADD231SD X10, X8, X2
	VFMADD231SD X10, X9, X6
	VMOVSD      (DX)(R13*1), X10
	VFMADD231SD X10, X8, X3
	VFMADD231SD X10, X9, X7
	ADDQ        $8, SI
	ADDQ        $8, DX
	DECQ        R12
	JNZ         t2tail

t2tail_done:
	MOVB  accum+56(FP), AX
	TESTB AX, AX
	JZ    t2store

	VADDSD (DI), X0, X0
	VADDSD 8(DI), X1, X1
	VADDSD 16(DI), X2, X2
	VADDSD 24(DI), X3, X3
	LEAQ   (DI)(R8*1), BX
	VADDSD (BX), X4, X4
	VADDSD 8(BX), X5, X5
	VADDSD 16(BX), X6, X6
	VADDSD 24(BX), X7, X7

t2store:
	VMOVSD X0, (DI)
	VMOVSD X1, 8(DI)
	VMOVSD X2, 16(DI)
	VMOVSD X3, 24(DI)
	ADDQ   R8, DI
	VMOVSD X4, (DI)
	VMOVSD X5, 8(DI)
	VMOVSD X6, 16(DI)
	VMOVSD X7, 24(DI)
	VZEROUPPER
	RET

// func axpyAVX(dst, src *float64, alpha float64, n int)
//
// dst[0:n] += alpha*src[0:n] for n a multiple of 4. Uses separate VMULPD +
// VADDPD (not FMA) so every element gets exactly the scalar semantics
// round(dst + round(alpha*src)) — the vector path is bit-identical to the
// pure-Go loop and the choice between them can never change a result.
TEXT ·axpyAVX(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	VBROADCASTSD alpha+16(FP), Y2
	MOVQ         n+24(FP), CX
	SHRQ         $2, CX
	JZ           axdone

axloop:
	VMOVUPD (SI), Y0
	VMULPD  Y2, Y0, Y0
	VADDPD  (DI), Y0, Y0
	VMOVUPD Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    CX
	JNZ     axloop

axdone:
	VZEROUPPER
	RET
