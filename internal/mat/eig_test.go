package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEigSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a, _ := NewFromRows([][]float64{{2, 1}, {1, 2}})
	vals, u, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v want [3 1]", vals)
	}
	// Check A·u_j = λ_j·u_j for each column.
	for j := 0; j < 2; j++ {
		for i := 0; i < 2; i++ {
			av := a.At(i, 0)*u.At(0, j) + a.At(i, 1)*u.At(1, j)
			if math.Abs(av-vals[j]*u.At(i, j)) > 1e-9 {
				t.Fatalf("A u != lambda u for pair %d", j)
			}
		}
	}
}

func TestEigSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 16} {
		b := RandGaussian(rng, n, n, 0, 1)
		a := Add(b, b.T()) // symmetric
		vals, u, err := EigSym(a)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct U Λ Uᵀ.
		ul := u.Clone()
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				ul.Set(i, j, u.At(i, j)*vals[j])
			}
		}
		rec := MatMulT2(ul, u)
		if !rec.EqualApprox(a, 1e-8) {
			t.Fatalf("n=%d: U Λ Uᵀ does not reconstruct A (err %v)", n, FrobNorm(Sub(rec, a)))
		}
		// U must be orthogonal.
		if got := OrthoError(u); got > 1e-8 {
			t.Fatalf("n=%d: eigenvector matrix not orthogonal, defect %v", n, got)
		}
		// Eigenvalues sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
	}
}

func TestEigSymRejectsNonSquare(t *testing.T) {
	if _, _, err := EigSym(New(2, 3)); err == nil {
		t.Fatal("accepted non-square matrix")
	}
}

func TestCovFactorReconstructsCovariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := RandGaussian(rng, 200, 6, 1.5, 2)
	sigma := Covariance(x)
	q, err := CovFactor(sigma)
	if err != nil {
		t.Fatal(err)
	}
	rec := MatMulT2(q, q)
	if !rec.EqualApprox(sigma, 1e-8) {
		t.Fatalf("QQᵀ != Σ (err %v)", FrobNorm(Sub(rec, sigma)))
	}
}

func TestCovarianceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := RandGaussian(rng, 500, 4, 0, 3)
	cov := Covariance(x)
	// Symmetric.
	if !cov.EqualApprox(cov.T(), 1e-12) {
		t.Fatal("covariance not symmetric")
	}
	// Diagonal approximates variance 9.
	for i := 0; i < 4; i++ {
		if math.Abs(cov.At(i, i)-9) > 2 {
			t.Fatalf("variance estimate %v far from 9", cov.At(i, i))
		}
	}
}

func TestNewtonSchulzOrthogonalises(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{2, 8, 32} {
		w := RandGaussian(rng, n, n, 0, 1)
		q, err := NewtonSchulz(w, 12)
		if err != nil {
			t.Fatal(err)
		}
		if got := OrthoError(q); got > 1e-6 {
			t.Fatalf("n=%d: Newton-Schulz defect %v", n, got)
		}
	}
}

func TestNewtonSchulzErrors(t *testing.T) {
	if _, err := NewtonSchulz(New(2, 3), 5); err == nil {
		t.Fatal("accepted non-square")
	}
	if _, err := NewtonSchulz(New(3, 3), 5); err == nil {
		t.Fatal("accepted zero matrix")
	}
}

func TestSpectralNormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := RandGaussian(rng, 6, 6, 0, 2)
	q := SpectralNormalize(w)
	if math.Abs(FrobNorm(q)-1) > 1e-12 {
		t.Fatalf("normalised Frobenius norm = %v", FrobNorm(q))
	}
	z := New(3, 3)
	if FrobNorm(SpectralNormalize(z)) != 0 {
		t.Fatal("zero matrix mangled")
	}
}

func TestOrthoErrorZeroForIdentity(t *testing.T) {
	if OrthoError(Eye(5)) != 0 {
		t.Fatal("identity should have zero defect")
	}
}

func TestCovFactorPSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		x := RandGaussian(rng, 30+rng.Intn(50), n, 0, 1)
		sigma := Covariance(x)
		q, err := CovFactor(sigma)
		if err != nil {
			return false
		}
		return MatMulT2(q, q).EqualApprox(sigma, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
