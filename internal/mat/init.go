package mat

import (
	"math"
	"math/rand"
)

// RandGaussian returns an r×c matrix with i.i.d N(mean, std²) entries drawn
// from rng.
func RandGaussian(rng *rand.Rand, r, c int, mean, std float64) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = mean + std*rng.NormFloat64()
	}
	return m
}

// RandUniform returns an r×c matrix with i.i.d U[lo, hi) entries.
func RandUniform(rng *rand.Rand, r, c int, lo, hi float64) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = lo + (hi-lo)*rng.Float64()
	}
	return m
}

// Xavier returns an r×c matrix with Glorot-uniform entries
// U[-√(6/(r+c)), +√(6/(r+c))], the initialisation the paper cites [10].
func Xavier(rng *rand.Rand, r, c int) *Dense {
	bound := math.Sqrt(6 / float64(r+c))
	return RandUniform(rng, r, c, -bound, bound)
}

// He returns an r×c matrix with He-normal entries N(0, 2/r), the ReLU-aware
// initialisation the paper cites [15].
func He(rng *rand.Rand, r, c int) *Dense {
	return RandGaussian(rng, r, c, 0, math.Sqrt(2/float64(r)))
}
