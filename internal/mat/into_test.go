package mat

import (
	"math"
	"math/rand"
	"testing"
)

// dirty returns an r×c matrix pre-filled with garbage, to prove the Into
// kernels fully overwrite (or, for Add variants, correctly accumulate into)
// their output.
func dirty(r, c int) *Dense {
	m := New(r, c)
	for i := range m.Data() {
		m.Data()[i] = 1e9
	}
	return m
}

func randMat(rng *rand.Rand, r, c int) *Dense {
	m := New(r, c)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

func wantClose(t *testing.T, got, want *Dense, op string) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("%s: dims %dx%d want %dx%d", op, got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i, v := range got.Data() {
		if math.Abs(v-want.Data()[i]) > 1e-12 {
			t.Fatalf("%s: element %d = %v want %v", op, i, v, want.Data()[i])
		}
	}
}

func TestMatMulIntoMatchesFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, b := randMat(rng, 7, 5), randMat(rng, 5, 9)
	want := MatMulSerial(a, b)

	out := dirty(7, 9)
	MatMulInto(out, a, b)
	wantClose(t, out, want, "MatMulInto")

	// AddInto accumulates: base + a·b.
	base := randMat(rng, 7, 9)
	accum := base.Clone()
	MatMulAddInto(accum, a, b)
	wantClose(t, accum, Add(base, want), "MatMulAddInto")
}

func TestMatMulT1IntoMatchesFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := randMat(rng, 6, 4), randMat(rng, 6, 8)
	want := MatMulT1(a, b) // aᵀ·b: 4x8

	out := dirty(4, 8)
	MatMulT1Into(out, a, b)
	wantClose(t, out, want, "MatMulT1Into")

	base := randMat(rng, 4, 8)
	accum := base.Clone()
	MatMulT1AddInto(accum, a, b)
	wantClose(t, accum, Add(base, want), "MatMulT1AddInto")
}

func TestMatMulT2IntoMatchesFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randMat(rng, 6, 5), randMat(rng, 8, 5)
	want := MatMulT2(a, b) // a·bᵀ: 6x8

	out := dirty(6, 8)
	MatMulT2Into(out, a, b)
	wantClose(t, out, want, "MatMulT2Into")

	base := randMat(rng, 6, 8)
	accum := base.Clone()
	MatMulT2AddInto(accum, a, b)
	wantClose(t, accum, Add(base, want), "MatMulT2AddInto")
}

func TestMatMulIntoShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"out-shape": func() { MatMulInto(New(2, 2), New(2, 3), New(3, 4)) },
		"inner-dim": func() { MatMulInto(New(2, 4), New(2, 3), New(2, 4)) },
		"t1-shape":  func() { MatMulT1Into(New(1, 1), New(2, 3), New(2, 4)) },
		"t2-shape":  func() { MatMulT2Into(New(1, 1), New(2, 3), New(4, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestElementwiseIntoKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randMat(rng, 5, 6), randMat(rng, 5, 6)

	out := dirty(5, 6)
	AddInto(out, a, b)
	wantClose(t, out, Add(a, b), "AddInto")

	SubInto(out, a, b)
	wantClose(t, out, Sub(a, b), "SubInto")

	MulElemInto(out, a, b)
	wantClose(t, out, MulElem(a, b), "MulElemInto")

	base := randMat(rng, 5, 6)
	accum := base.Clone()
	MulElemAddInto(accum, a, b)
	wantClose(t, accum, Add(base, MulElem(a, b)), "MulElemAddInto")

	ScaleInto(out, -2.5, a)
	wantClose(t, out, Scale(-2.5, a), "ScaleInto")

	ApplyInto(out, a, math.Exp)
	wantClose(t, out, Apply(a, math.Exp), "ApplyInto")

	// ApplyInto may alias its operand.
	alias := a.Clone()
	ApplyInto(alias, alias, math.Exp)
	wantClose(t, alias, Apply(a, math.Exp), "ApplyInto-aliased")

	PowElemInto(out, a, 3)
	wantClose(t, out, PowElem(a, 3), "PowElemInto")
}

func TestRowVecIntoKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, v := randMat(rng, 4, 7), randMat(rng, 1, 7)

	out := dirty(4, 7)
	AddRowVecInto(out, a, v)
	wantClose(t, out, AddRowVec(a, v), "AddRowVecInto")

	SubRowVecInto(out, a, v)
	wantClose(t, out, SubRowVec(a, v), "SubRowVecInto")

	// AXPYRowBroadcast: every row += alpha·v.
	m := randMat(rng, 4, 7)
	want := m.Clone()
	for i := 0; i < 4; i++ {
		for j := 0; j < 7; j++ {
			want.Set(i, j, want.At(i, j)+0.5*v.At(0, j))
		}
	}
	m.AXPYRowBroadcast(0.5, v)
	wantClose(t, m, want, "AXPYRowBroadcast")
}

func TestReductionIntoKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMat(rng, 9, 4)

	out := dirty(1, 4)
	MeanRowsInto(out, a)
	wantClose(t, out, MeanRows(a), "MeanRowsInto")

	// SumRowsAXPY: out += alpha·colsum(a).
	base := randMat(rng, 1, 4)
	accum := base.Clone()
	SumRowsAXPY(accum, -1, a)
	wantClose(t, accum, Add(base, Scale(-1, SumRows(a))), "SumRowsAXPY")
}

func TestSelectRowsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 8, 3)
	idx := []int{5, 0, 5, 2}
	out := dirty(len(idx), 3)
	a.SelectRowsInto(out, idx)
	wantClose(t, out, a.SelectRows(idx), "SelectRowsInto")
}
