// Package mat implements dense float64 matrices and the linear-algebra
// kernels the rest of the repository is built on: parallel blocked matrix
// multiplication, element-wise arithmetic, reductions, norms, a symmetric
// eigendecomposition, Newton–Schulz orthogonalisation, and the weight
// initialisers (Gaussian, Xavier, He) used by the neural-network layers.
//
// All matrices are row-major. Kernels that combine two matrices panic on a
// shape mismatch: shapes are fixed at model-construction time, so a mismatch
// is a programmer error, not a runtime condition.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix of float64.
//
// The zero value is an empty (0×0) matrix. Use New, NewFromRows or the
// initialiser helpers in init.go to construct one.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed r×c matrix. It panics if r or c is negative.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromData wraps data as an r×c matrix without copying. It panics unless
// len(data) == r*c.
func NewFromData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// NewFromRows builds a matrix from a slice of equal-length rows, copying the
// contents. It returns an error if the rows are ragged or empty.
func NewFromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("mat: ragged rows: row %d has %d entries, want %d", i, len(row), c)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Data exposes the backing slice (row-major). Mutating it mutates the matrix.
func (m *Dense) Data() []float64 { return m.data }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// CopyFrom copies src into m. The shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	m.mustSameShape(src, "CopyFrom")
	copy(m.data, src.data)
}

// Zero sets every element of m to 0 in place.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element of m to v in place.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := New(m.cols, m.rows)
	const block = 32
	for ii := 0; ii < m.rows; ii += block {
		iMax := min(ii+block, m.rows)
		for jj := 0; jj < m.cols; jj += block {
			jMax := min(jj+block, m.cols)
			for i := ii; i < iMax; i++ {
				for j := jj; j < jMax; j++ {
					out.data[j*m.rows+i] = m.data[i*m.cols+j]
				}
			}
		}
	}
	return out
}

// SliceRows returns a new matrix holding rows [from, to) of m (copied).
func (m *Dense) SliceRows(from, to int) *Dense {
	if from < 0 || to > m.rows || from > to {
		panic(fmt.Sprintf("mat: SliceRows[%d:%d] out of range for %d rows", from, to, m.rows))
	}
	out := New(to-from, m.cols)
	copy(out.data, m.data[from*m.cols:to*m.cols])
	return out
}

// SelectRows returns a new matrix whose i-th row is m's idx[i]-th row.
func (m *Dense) SelectRows(idx []int) *Dense {
	out := New(len(idx), m.cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(r))
	}
	return out
}

// Equal reports whether m and b have identical shape and elements.
func (m *Dense) Equal(b *Dense) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if v != b.data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether m and b agree element-wise within tol.
func (m *Dense) EqualApprox(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging; large ones are summarised.
func (m *Dense) String() string {
	if m.rows*m.cols > 64 {
		return fmt.Sprintf("Dense(%dx%d)", m.rows, m.cols)
	}
	s := fmt.Sprintf("Dense(%dx%d)[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

func (m *Dense) mustSameShape(b *Dense, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}
