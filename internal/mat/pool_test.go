package mat

import (
	"math/rand"
	"sync"
	"testing"
)

func TestGetDenseZeroedAfterReuse(t *testing.T) {
	m := GetDense(5, 7)
	if r, c := m.Dims(); r != 5 || c != 7 {
		t.Fatalf("Dims = %d,%d want 5,7", r, c)
	}
	for i := range m.Data() {
		m.Data()[i] = 3.25
	}
	PutDense(m)
	// Same bucket, different shape: the recycled storage must come back zeroed.
	n := GetDense(7, 5)
	for i, v := range n.Data() {
		if v != 0 {
			t.Fatalf("recycled buffer not zeroed at %d: %v", i, v)
		}
	}
	PutDense(n)
}

func TestPoolRoundTripCounters(t *testing.T) {
	// A Put followed by a same-bucket Get is a hit. Under the race detector
	// sync.Pool deliberately drops a random fraction of Puts, so any single
	// round trip can miss legitimately — retry until the hit lands.
	h0, _, _ := PoolStats()
	var m *Dense
	for try := 0; ; try++ {
		warm := GetDense(16, 16)
		PutDense(warm)
		m = GetDense(16, 16)
		if h1, _, _ := PoolStats(); h1 > h0 {
			break
		}
		if try == 200 {
			t.Fatal("no pool hit after 200 put/get round trips")
		}
		PutDense(m)
	}
	// The put counter tracks buffers accepted by PutDense, before sync.Pool
	// can drop them, so it moves deterministically.
	_, _, p0 := PoolStats()
	PutDense(m)
	if _, _, p1 := PoolStats(); p1 != p0+1 {
		t.Fatalf("puts %d -> %d, want +1", p0, p1)
	}
}

func TestPutDenseDropsForeignBuffers(t *testing.T) {
	_, _, p0 := PoolStats()
	// cap 9 is not a power of two: New-allocated storage is never pooled.
	PutDense(New(3, 3))
	// Oversized buffers are also dropped.
	PutDense(&Dense{rows: 1, cols: 1 << 23, data: make([]float64, 1<<23)})
	PutDense(nil)
	if _, _, p1 := PoolStats(); p1 != p0 {
		t.Fatalf("puts moved %d -> %d for unpoolable buffers", p0, p1)
	}
}

func TestSetPoolingOffBypassesPool(t *testing.T) {
	SetPooling(false)
	defer SetPooling(true)
	if PoolingEnabled() {
		t.Fatal("PoolingEnabled after SetPooling(false)")
	}
	h0, m0, p0 := PoolStats()
	d := GetDense(8, 8)
	PutDense(d)
	h1, m1, p1 := PoolStats()
	if h1 != h0 || m1 != m0 || p1 != p0 {
		t.Fatal("pool counters moved while pooling disabled")
	}
}

// TestPoolConcurrent exercises concurrent Get/Put traffic; run with -race it
// proves vended buffers are never shared between goroutines.
func TestPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				r, c := 1+rng.Intn(20), 1+rng.Intn(20)
				m := GetDense(r, c)
				for j := range m.Data() {
					m.Data()[j] = float64(seed)
				}
				for _, v := range m.Data() {
					if v != float64(seed) {
						t.Errorf("buffer shared across goroutines: %v", v)
						return
					}
				}
				PutDense(m)
			}
		}(int64(g))
	}
	wg.Wait()
}
