package mat

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fedomd/internal/telemetry"
)

// Persistent worker pool: the dense and sparse kernels above the parallel
// threshold used to spawn a goroutine per shard per call, paying goroutine +
// WaitGroup setup on every MatMulInto at GCN layer widths. ParallelFor
// replaces that with a fixed set of long-lived workers (GOMAXPROCS-1 of them;
// the caller is always the extra participant) and a work-stealing range
// scheduler: the index space [0, n) is pre-split into one contiguous span per
// participant, each participant drains its own span front-to-back in
// grain-sized chunks, and participants that run dry steal chunks from the
// back of other spans. Claims are lock-free (a packed lo/hi pair advanced by
// CAS), so load imbalance — ragged sparse rows, one slow core — evens out
// without a central queue.
//
// Determinism contract: ParallelFor guarantees each index is processed
// exactly once, but chunk boundaries and execution order depend on the worker
// count and scheduling. Kernels built on it therefore keep bit-identical
// outputs by construction: every output element is computed entirely within
// one body invocation with a loop structure that does not depend on the
// chunk the element landed in (see matmul.go). The kernel determinism tests
// pin this across worker counts 1, 2, NumCPU and NumCPU+3.

// Process-global telemetry: parallel jobs dispatched and chunks stolen from
// a foreign span (a steal is the signal that the static split was uneven).
var (
	workerJobs   = telemetry.NewCounter("mat/workers_jobs")
	workerSteals = telemetry.NewCounter("mat/workers_steals")
)

// maxSpans caps the number of statically split spans per job; more
// participants than this only steal.
const maxSpans = 64

// span is a contiguous index range [lo, hi) packed into one atomic word so
// both ends can be claimed by CAS without locks.
type span struct{ v atomic.Uint64 }

func packSpan(lo, hi int) uint64 { return uint64(lo)<<32 | uint64(hi) }

// claimFront claims up to g indices from the front of the span (the owner's
// side).
func (s *span) claimFront(g int) (lo, hi int, ok bool) {
	for {
		cur := s.v.Load()
		l, h := int(cur>>32), int(cur&0xffffffff)
		if l >= h {
			return 0, 0, false
		}
		t := l + g
		if t > h {
			t = h
		}
		if s.v.CompareAndSwap(cur, packSpan(t, h)) {
			return l, t, true
		}
	}
}

// claimBack claims up to g indices from the back of the span (the thief's
// side, so steals collide with the owner only on the final chunk).
func (s *span) claimBack(g int) (lo, hi int, ok bool) {
	for {
		cur := s.v.Load()
		l, h := int(cur>>32), int(cur&0xffffffff)
		if l >= h {
			return 0, 0, false
		}
		t := h - g
		if t < l {
			t = l
		}
		if s.v.CompareAndSwap(cur, packSpan(l, t)) {
			return t, h, true
		}
	}
}

// parJob is one ParallelFor invocation in flight. Background workers receive
// the job pointer over the pool channel; a worker that arrives after the work
// is drained claims nothing and moves on, so completed jobs need no
// synchronization beyond the remaining counter.
type parJob struct {
	body      func(lo, hi int)
	grain     int
	nspans    int
	next      atomic.Int32 // span self-assignment cursor
	remaining atomic.Int64 // indices not yet completed; 0 fires wg
	wg        sync.WaitGroup
	spans     [maxSpans]span
}

func (j *parJob) exec(lo, hi int) {
	j.body(lo, hi)
	if j.remaining.Add(int64(lo-hi)) == 0 {
		j.wg.Done()
	}
}

// run makes the calling goroutine a participant: drain an owned span, then
// steal from the others until no work is left anywhere.
func (j *parJob) run() {
	s := int(j.next.Add(1)) - 1
	if s < j.nspans {
		for {
			lo, hi, ok := j.spans[s].claimFront(j.grain)
			if !ok {
				break
			}
			j.exec(lo, hi)
		}
	} else {
		s = 0
	}
	for k := 1; k <= j.nspans; k++ {
		v := (s + k) % j.nspans
		if v == s {
			continue
		}
		stole := false
		for {
			lo, hi, ok := j.spans[v].claimBack(j.grain)
			if !ok {
				break
			}
			stole = true
			j.exec(lo, hi)
		}
		if stole {
			workerSteals.Add(1)
		}
	}
}

// workerState guards the background-worker set. The RWMutex is only
// contended when SetWorkers reconfigures the pool (tests and ablations);
// steady-state dispatch takes an uncontended read lock.
var workerState = struct {
	sync.RWMutex
	jobs    chan *parJob // nil until the first parallel dispatch
	width   int          // participants per job, including the caller
	spawned bool
}{width: runtime.GOMAXPROCS(0)}

// Workers reports how many participants (caller included) a parallel kernel
// dispatch uses. It defaults to GOMAXPROCS at process start.
func Workers() int {
	workerState.RLock()
	defer workerState.RUnlock()
	return workerState.width
}

// SetWorkers fixes the participant count for parallel kernels: n-1 persistent
// background workers plus the calling goroutine. n < 1 resets to GOMAXPROCS.
// Existing background workers are retired (they finish the job they hold
// first); kernel outputs are bit-identical for every n by construction, so
// this is a performance and test knob, never a correctness one.
func SetWorkers(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	workerState.Lock()
	defer workerState.Unlock()
	if workerState.jobs != nil {
		close(workerState.jobs) // retire the old workers
		workerState.jobs = nil
		workerState.spawned = false
	}
	workerState.width = n
}

// ensureSpawned starts the background workers if the configured width needs
// them and they are not yet running, and returns the width. Callers must not
// hold the lock.
func ensureSpawned() int {
	workerState.RLock()
	if workerState.spawned || workerState.width == 1 {
		w := workerState.width
		workerState.RUnlock()
		return w
	}
	workerState.RUnlock()
	workerState.Lock()
	defer workerState.Unlock()
	if !workerState.spawned && workerState.width > 1 {
		ch := make(chan *parJob, workerState.width)
		for i := 0; i < workerState.width-1; i++ {
			go func() {
				for j := range ch {
					j.run()
				}
			}()
		}
		workerState.jobs = ch
		workerState.spawned = true
	}
	return workerState.width
}

// wake offers j to up to k background workers. The read lock pins the
// channel against a concurrent SetWorkers close; a full queue just means the
// workers are busy and the caller will cover the work itself.
func wake(j *parJob, k int) {
	workerState.RLock()
	defer workerState.RUnlock()
	if workerState.jobs == nil {
		return
	}
	for i := 0; i < k; i++ {
		select {
		case workerState.jobs <- j:
		default:
			return
		}
	}
}

// ParallelFor runs body over [0, n) using the persistent worker pool, with
// chunks of at least grain indices. It returns when every index has been
// processed. body invocations cover disjoint ranges, may run concurrently,
// and MUST only write state disjoint per index (the kernel contract). With a
// single participant — or n ≤ grain — the body runs inline on the caller,
// making the serial path overhead-free.
func ParallelFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	width := ensureSpawned()
	if width == 1 || n <= grain {
		body(0, n)
		return
	}
	nspans := width
	if nspans > maxSpans {
		nspans = maxSpans
	}
	if m := (n + grain - 1) / grain; nspans > m {
		nspans = m
	}
	j := &parJob{body: body, grain: grain, nspans: nspans}
	j.remaining.Store(int64(n))
	j.wg.Add(1)
	chunk, rem := n/nspans, n%nspans
	lo := 0
	for s := 0; s < nspans; s++ {
		hi := lo + chunk
		if s < rem {
			hi++
		}
		j.spans[s].v.Store(packSpan(lo, hi))
		lo = hi
	}
	workerJobs.Add(1)
	wake(j, nspans-1)
	j.run()
	j.wg.Wait()
}
