package mat

import (
	"errors"
	"math"
)

// QR computes the thin QR decomposition a = Q·R by Householder reflections:
// Q is m×n with orthonormal columns and R is n×n upper triangular. It
// requires m ≥ n. QR provides the alternative weight-orthogonalisation
// (QR retraction) benchmarked against Newton–Schulz in the design ablation.
func QR(a *Dense) (q, r *Dense, err error) {
	m, n := a.Dims()
	if m < n {
		return nil, nil, errors.New("mat: QR requires rows >= cols")
	}
	// Work on a copy; accumulate the Householder vectors in-place below the
	// diagonal and R above.
	work := a.Clone()
	vs := make([][]float64, 0, n)
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k.
		norm := 0.0
		for i := k; i < m; i++ {
			v := work.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			vs = append(vs, nil)
			continue
		}
		alpha := -norm
		if work.At(k, k) < 0 {
			alpha = norm
		}
		v := make([]float64, m-k)
		v[0] = work.At(k, k) - alpha
		for i := k + 1; i < m; i++ {
			v[i-k] = work.At(i, k)
		}
		vnorm := 0.0
		for _, x := range v {
			vnorm += x * x
		}
		if vnorm == 0 {
			vs = append(vs, nil)
			continue
		}
		// Apply H = I − 2vvᵀ/(vᵀv) to the trailing submatrix.
		for j := k; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * work.At(i, j)
			}
			scale := 2 * dot / vnorm
			for i := k; i < m; i++ {
				work.Set(i, j, work.At(i, j)-scale*v[i-k])
			}
		}
		vs = append(vs, v)
	}
	r = New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, work.At(i, j))
		}
	}
	// Q = H_0 H_1 … H_{n-1} applied to the first n columns of I.
	q = New(m, n)
	for j := 0; j < n; j++ {
		q.Set(j, j, 1)
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		var vnorm float64
		for _, x := range v {
			vnorm += x * x
		}
		for j := 0; j < n; j++ {
			var dot float64
			for i := k; i < m; i++ {
				dot += v[i-k] * q.At(i, j)
			}
			scale := 2 * dot / vnorm
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)-scale*v[i-k])
			}
		}
	}
	return q, r, nil
}

// OrthonormalizeQR returns the Q factor of a's QR decomposition with column
// signs fixed so diag(R) ≥ 0 — the canonical orthonormalisation of a's
// column space, an alternative to NewtonSchulz for square weights.
func OrthonormalizeQR(a *Dense) (*Dense, error) {
	q, r, err := QR(a)
	if err != nil {
		return nil, err
	}
	for j := 0; j < r.Cols(); j++ {
		if r.At(j, j) < 0 {
			for i := 0; i < q.Rows(); i++ {
				q.Set(i, j, -q.At(i, j))
			}
		}
	}
	return q, nil
}
