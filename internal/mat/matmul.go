package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the amount of scalar multiply-adds below which MatMul
// stays serial; spawning goroutines for tiny products costs more than it saves.
const parallelThreshold = 1 << 16

// MatMul returns a·b using a cache-blocked, row-sharded parallel kernel.
// It panics if a.Cols() != b.Rows().
func MatMul(a, b *Dense) *Dense {
	out := New(a.rows, b.cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b into caller-owned storage. out must be
// a.Rows()×b.Cols() and must not alias a or b.
func MatMulInto(out, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MatMul inner dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	mustOutShape(out, a.rows, b.cols, "MatMulInto")
	matMulParallel(out, a, b, false)
}

// MatMulAddInto computes out += a·b (fused accumulation, no temporary).
// Shape rules match MatMulInto.
func MatMulAddInto(out, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MatMulAddInto inner dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	mustOutShape(out, a.rows, b.cols, "MatMulAddInto")
	matMulParallel(out, a, b, true)
}

// matMulParallel shards rows of out = (accum ? out : 0) + a·b over workers.
func matMulParallel(out, a, b *Dense, accum bool) {
	work := a.rows * a.cols * b.cols
	nw := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || nw == 1 || a.rows == 1 {
		matMulRange(out, a, b, 0, a.rows, accum)
		return
	}
	if nw > a.rows {
		nw = a.rows
	}
	var wg sync.WaitGroup
	chunk := (a.rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(out, a, b, lo, hi, accum)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange computes rows [lo,hi) of out = a·b with an ikj loop order:
// the inner loop streams over contiguous rows of b and out, which is the
// cache-friendly order for row-major storage. With accum the existing
// contents of out are kept and added to.
func matMulRange(out, a, b *Dense, lo, hi int, accum bool) {
	n, p := a.cols, b.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*n : (i+1)*n]
		orow := out.data[i*p : (i+1)*p]
		if !accum {
			for j := range orow {
				orow[j] = 0
			}
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*p : (k+1)*p]
			axpyRow(orow, av, brow)
		}
	}
}

// axpyRow computes dst += alpha*src with 4-way unrolling.
func axpyRow(dst []float64, alpha float64, src []float64) {
	n := len(dst)
	i := 0
	for ; i+3 < n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// MatMulSerial is the single-goroutine reference kernel, kept exported for
// the parallel-vs-serial ablation benchmark.
func MatMulSerial(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MatMulSerial inner dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	matMulRange(out, a, b, 0, a.rows, false)
	return out
}

// MatMulT1 returns aᵀ·b without materialising the transpose.
func MatMulT1(a, b *Dense) *Dense {
	out := New(a.cols, b.cols)
	MatMulT1AddInto(out, a, b)
	return out
}

// MatMulT1Into computes out = aᵀ·b into caller-owned storage. out must be
// a.Cols()×b.Cols() and must not alias a or b.
func MatMulT1Into(out, a, b *Dense) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MatMulT1Into dimension mismatch %dx%d ᵀ· %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	mustOutShape(out, a.cols, b.cols, "MatMulT1Into")
	out.Zero()
	matMulT1Parallel(out, a, b)
}

// MatMulT1AddInto computes out += aᵀ·b (fused gradient accumulation — the
// ∂L/∂W term of a dense layer lands directly in the gradient buffer).
func MatMulT1AddInto(out, a, b *Dense) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MatMulT1AddInto dimension mismatch %dx%d ᵀ· %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	mustOutShape(out, a.cols, b.cols, "MatMulT1AddInto")
	matMulT1Parallel(out, a, b)
}

// matMulT1Parallel accumulates out += aᵀ·b, sharding over columns of a so
// concurrent writes stay disjoint.
func matMulT1Parallel(out, a, b *Dense) {
	nw := runtime.GOMAXPROCS(0)
	work := a.rows * a.cols * b.cols
	if work < parallelThreshold || nw == 1 {
		matMulT1Range(out, a, b, 0, a.cols)
		return
	}
	if nw > a.cols {
		nw = a.cols
	}
	var wg sync.WaitGroup
	chunk := (a.cols + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.cols)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulT1Range(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func matMulT1Range(out, a, b *Dense, lo, hi int) {
	n, p := a.cols, b.cols
	for k := 0; k < a.rows; k++ {
		arow := a.data[k*n : (k+1)*n]
		brow := b.data[k*p : (k+1)*p]
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			axpyRow(out.data[i*p:(i+1)*p], av, brow)
		}
	}
}

// MatMulT2 returns a·bᵀ without materialising the transpose.
func MatMulT2(a, b *Dense) *Dense {
	out := New(a.rows, b.rows)
	matMulT2Checked(out, a, b, false, "MatMulT2")
	return out
}

// MatMulT2Into computes out = a·bᵀ into caller-owned storage. out must be
// a.Rows()×b.Rows() and must not alias a or b.
func MatMulT2Into(out, a, b *Dense) {
	matMulT2Checked(out, a, b, false, "MatMulT2Into")
}

// MatMulT2AddInto computes out += a·bᵀ (fused gradient accumulation — the
// ∂L/∂X term of a dense layer lands directly in the gradient buffer).
func MatMulT2AddInto(out, a, b *Dense) {
	matMulT2Checked(out, a, b, true, "MatMulT2AddInto")
}

func matMulT2Checked(out, a, b *Dense, accum bool, op string) {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d · %dx%dᵀ", op, a.rows, a.cols, b.rows, b.cols))
	}
	mustOutShape(out, a.rows, b.rows, op)
	nw := runtime.GOMAXPROCS(0)
	work := a.rows * a.cols * b.rows
	if work < parallelThreshold || nw == 1 || a.rows == 1 {
		matMulT2Range(out, a, b, 0, a.rows, accum)
		return
	}
	if nw > a.rows {
		nw = a.rows
	}
	var wg sync.WaitGroup
	chunk := (a.rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulT2Range(out, a, b, lo, hi, accum)
		}(lo, hi)
	}
	wg.Wait()
}

func matMulT2Range(out, a, b *Dense, lo, hi int, accum bool) {
	n := a.cols
	p := b.rows
	for i := lo; i < hi; i++ {
		arow := a.data[i*n : (i+1)*n]
		orow := out.data[i*p : (i+1)*p]
		for j := 0; j < p; j++ {
			brow := b.data[j*n : (j+1)*n]
			var s float64
			k := 0
			for ; k+3 < n; k += 4 {
				s += arow[k]*brow[k] + arow[k+1]*brow[k+1] + arow[k+2]*brow[k+2] + arow[k+3]*brow[k+3]
			}
			for ; k < n; k++ {
				s += arow[k] * brow[k]
			}
			if accum {
				orow[j] += s
			} else {
				orow[j] = s
			}
		}
	}
}

func mustOutShape(out *Dense, r, c int, op string) {
	if out.rows != r || out.cols != c {
		panic(fmt.Sprintf("mat: %s output shape %dx%d, want %dx%d", op, out.rows, out.cols, r, c))
	}
}
