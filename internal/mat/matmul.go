package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the amount of scalar multiply-adds below which MatMul
// stays serial; spawning goroutines for tiny products costs more than it saves.
const parallelThreshold = 1 << 16

// MatMul returns a·b using a cache-blocked, row-sharded parallel kernel.
// It panics if a.Cols() != b.Rows().
func MatMul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MatMul inner dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	matMulInto(out, a, b)
	return out
}

// matMulInto computes out = a·b, overwriting out (which must be pre-shaped).
func matMulInto(out, a, b *Dense) {
	work := a.rows * a.cols * b.cols
	nw := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || nw == 1 || a.rows == 1 {
		matMulRange(out, a, b, 0, a.rows)
		return
	}
	if nw > a.rows {
		nw = a.rows
	}
	var wg sync.WaitGroup
	chunk := (a.rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRange computes rows [lo,hi) of out = a·b with an ikj loop order:
// the inner loop streams over contiguous rows of b and out, which is the
// cache-friendly order for row-major storage.
func matMulRange(out, a, b *Dense, lo, hi int) {
	n, p := a.cols, b.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*n : (i+1)*n]
		orow := out.data[i*p : (i+1)*p]
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*p : (k+1)*p]
			axpyRow(orow, av, brow)
		}
	}
}

// axpyRow computes dst += alpha*src with 4-way unrolling.
func axpyRow(dst []float64, alpha float64, src []float64) {
	n := len(dst)
	i := 0
	for ; i+3 < n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// MatMulSerial is the single-goroutine reference kernel, kept exported for
// the parallel-vs-serial ablation benchmark.
func MatMulSerial(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MatMulSerial inner dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	matMulRange(out, a, b, 0, a.rows)
	return out
}

// MatMulT1 returns aᵀ·b without materialising the transpose.
func MatMulT1(a, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MatMulT1 dimension mismatch %dx%d ᵀ· %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.cols, b.cols)
	// outᵀrows are accumulated across k; shard over columns of a to keep
	// writes disjoint.
	nw := runtime.GOMAXPROCS(0)
	work := a.rows * a.cols * b.cols
	if work < parallelThreshold || nw == 1 {
		matMulT1Range(out, a, b, 0, a.cols)
		return out
	}
	if nw > a.cols {
		nw = a.cols
	}
	var wg sync.WaitGroup
	chunk := (a.cols + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.cols)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulT1Range(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func matMulT1Range(out, a, b *Dense, lo, hi int) {
	n, p := a.cols, b.cols
	for k := 0; k < a.rows; k++ {
		arow := a.data[k*n : (k+1)*n]
		brow := b.data[k*p : (k+1)*p]
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			axpyRow(out.data[i*p:(i+1)*p], av, brow)
		}
	}
}

// MatMulT2 returns a·bᵀ without materialising the transpose.
func MatMulT2(a, b *Dense) *Dense {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: MatMulT2 dimension mismatch %dx%d · %dx%dᵀ", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.rows)
	nw := runtime.GOMAXPROCS(0)
	work := a.rows * a.cols * b.rows
	if work < parallelThreshold || nw == 1 || a.rows == 1 {
		matMulT2Range(out, a, b, 0, a.rows)
		return out
	}
	if nw > a.rows {
		nw = a.rows
	}
	var wg sync.WaitGroup
	chunk := (a.rows + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulT2Range(out, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func matMulT2Range(out, a, b *Dense, lo, hi int) {
	n := a.cols
	p := b.rows
	for i := lo; i < hi; i++ {
		arow := a.data[i*n : (i+1)*n]
		orow := out.data[i*p : (i+1)*p]
		for j := 0; j < p; j++ {
			brow := b.data[j*n : (j+1)*n]
			var s float64
			k := 0
			for ; k+3 < n; k += 4 {
				s += arow[k]*brow[k] + arow[k+1]*brow[k+1] + arow[k+2]*brow[k+2] + arow[k+3]*brow[k+3]
			}
			for ; k < n; k++ {
				s += arow[k] * brow[k]
			}
			orow[j] = s
		}
	}
}
