package mat

import (
	"fmt"
)

// Dense multiplication is built from one cache-blocked, register-tiled kernel
// family. Loops are tiled so the working set of each level fits cache — a
// kcBlock-deep panel of b (kcBlock×jcBlock) stays L2-resident while 4-row
// strips of a stream through L1 — and the innermost loop accumulates a 4×4
// output tile in sixteen locals instead of streaming one row of out per k
// (the seed axpyRow kernel), cutting per-FLOP memory traffic roughly 4×.
// Work above parallelThreshold is sharded over output rows through the
// persistent worker pool (workers.go).
//
// On amd64 with AVX2+FMA (detected at startup, simd_amd64.go) the interior
// tiles run a 4×8 assembly micro-kernel; the pure-Go tile and edge kernels
// cover the remainder and every other platform.
//
// Determinism: every output element is accumulated with the same loop
// structure — ascending k within each fixed-size k-block, blocks folded into
// out in ascending block order — regardless of which chunk or worker
// computed it, and parallel row chunks are always microDim-aligned, so which
// kernel (SIMD vs scalar edge) computes a given cell is a pure function of
// the matrix shape, never of the worker count. Results are therefore
// bit-identical across worker counts; the kernel determinism tests pin 1, 2,
// NumCPU and NumCPU+3 against each other.

// parallelThreshold is the amount of scalar multiply-adds below which the
// dense kernels stay serial; dispatching tiny products costs more than it
// saves.
const parallelThreshold = 1 << 16

// Blocking parameters (see DESIGN.md §12). kcBlock×jcBlock×8 bytes = 512 KiB
// keeps the b panel L2-resident; a 4-row a strip of one k-block is 8 KiB (L1).
const (
	microDim = 4   // scalar register tile edge: 4×4 accumulators in locals
	simdCols = 8   // SIMD tile width: 4×8 AVX2 micro-kernel (two YMMs wide)
	kcBlock  = 256 // k (inner dimension) block depth
	jcBlock  = 256 // j (output column) block width; multiple of simdCols
)

// parGrain picks how many units (microDim-row tiles) one pool chunk should
// cover so a chunk amortises its claim: at least ~parallelThreshold
// multiply-adds per chunk.
func parGrain(unitWork int) int {
	if unitWork <= 0 {
		return 1
	}
	g := (parallelThreshold + unitWork - 1) / unitWork
	if g < 1 {
		g = 1
	}
	return g
}

// parallelTiles shards [0, rows) over the worker pool in microDim-aligned
// row chunks (the determinism contract requires chunk boundaries that are a
// multiple of the tile height) and invokes body on each row range. tileWork
// is the multiply-add count of one microDim-row tile.
func parallelTiles(rows, tileWork int, body func(lo, hi int)) {
	nt := (rows + microDim - 1) / microDim
	ParallelFor(nt, parGrain(tileWork), func(tlo, thi int) {
		lo, hi := tlo*microDim, thi*microDim
		if hi > rows {
			hi = rows
		}
		body(lo, hi)
	})
}

// MatMul returns a·b using the blocked parallel kernel. It panics if
// a.Cols() != b.Rows().
func MatMul(a, b *Dense) *Dense {
	out := New(a.rows, b.cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b into caller-owned storage. out must be
// a.Rows()×b.Cols() and must not alias a or b.
func MatMulInto(out, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MatMul inner dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	mustOutShape(out, a.rows, b.cols, "MatMulInto")
	matMulDispatch(out, a, b, false)
}

// MatMulAddInto computes out += a·b (fused accumulation, no temporary).
// Shape rules match MatMulInto.
func MatMulAddInto(out, a, b *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MatMulAddInto inner dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	mustOutShape(out, a.rows, b.cols, "MatMulAddInto")
	matMulDispatch(out, a, b, true)
}

func matMulDispatch(out, a, b *Dense, accum bool) {
	work := a.rows * a.cols * b.cols
	if work < parallelThreshold {
		matMulBlocked(out, a, b, 0, a.rows, accum)
		return
	}
	parallelTiles(a.rows, 2*microDim*a.cols*b.cols, func(lo, hi int) {
		matMulBlocked(out, a, b, lo, hi, accum)
	})
}

// matMulBlocked computes rows [lo, hi) of out = (accum ? out : 0) + a·b with
// k/j cache blocking and the 4×4 register micro-kernel. The zeroing of out is
// folded into the first k-block (it writes instead of accumulating), so the
// non-accumulating path traverses out no extra time.
func matMulBlocked(out, a, b *Dense, lo, hi int, accum bool) {
	n, p := a.cols, b.cols
	if n == 0 {
		if !accum {
			zeroRows(out, lo, hi)
		}
		return
	}
	od, ad, bd := out.data, a.data, b.data
	for k0 := 0; k0 < n; k0 += kcBlock {
		k1 := min(k0+kcBlock, n)
		acc := accum || k0 > 0
		kl := k1 - k0
		for j0 := 0; j0 < p; j0 += jcBlock {
			j1 := min(j0+jcBlock, p)
			i := lo
			for ; i+microDim <= hi; i += microDim {
				j := j0
				if useAVX {
					for ; j+simdCols <= j1; j += simdCols {
						mmAVX4x8(&od[i*p+j], &ad[i*n+k0], &bd[k0*p+j], p, n, p, kl, acc)
					}
				}
				for ; j+microDim <= j1; j += microDim {
					mm4x4(od, ad, bd, n, p, i, j, k0, k1, acc)
				}
				if j < j1 {
					mmEdge(od, ad, bd, n, p, i, i+microDim, j, j1, k0, k1, acc)
				}
			}
			if i < hi {
				mmEdge(od, ad, bd, n, p, i, hi, j0, j1, k0, k1, acc)
			}
		}
	}
}

// mm4x4 accumulates the 4×4 tile out[i:i+4, j:j+4] (+)= a[i:i+4, k0:k1] ·
// b[k0:k1, j:j+4] in sixteen register-resident locals.
func mm4x4(od, ad, bd []float64, n, p, i, j, k0, k1 int, accum bool) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	a0 := ad[i*n+k0 : i*n+k1]
	a1 := ad[(i+1)*n+k0 : (i+1)*n+k1]
	a2 := ad[(i+2)*n+k0 : (i+2)*n+k1]
	a3 := ad[(i+3)*n+k0 : (i+3)*n+k1]
	bi := k0*p + j
	for t := range a0 {
		bk := bd[bi : bi+4 : bi+4]
		b0, b1, b2, b3 := bk[0], bk[1], bk[2], bk[3]
		av := a0[t]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = a1[t]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = a2[t]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = a3[t]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
		bi += p
	}
	o0 := od[i*p+j : i*p+j+4 : i*p+j+4]
	o1 := od[(i+1)*p+j : (i+1)*p+j+4 : (i+1)*p+j+4]
	o2 := od[(i+2)*p+j : (i+2)*p+j+4 : (i+2)*p+j+4]
	o3 := od[(i+3)*p+j : (i+3)*p+j+4 : (i+3)*p+j+4]
	if accum {
		o0[0] += c00
		o0[1] += c01
		o0[2] += c02
		o0[3] += c03
		o1[0] += c10
		o1[1] += c11
		o1[2] += c12
		o1[3] += c13
		o2[0] += c20
		o2[1] += c21
		o2[2] += c22
		o2[3] += c23
		o3[0] += c30
		o3[1] += c31
		o3[2] += c32
		o3[3] += c33
	} else {
		o0[0] = c00
		o0[1] = c01
		o0[2] = c02
		o0[3] = c03
		o1[0] = c10
		o1[1] = c11
		o1[2] = c12
		o1[3] = c13
		o2[0] = c20
		o2[1] = c21
		o2[2] = c22
		o2[3] = c23
		o3[0] = c30
		o3[1] = c31
		o3[2] = c32
		o3[3] = c33
	}
}

// mmEdge handles the ragged tile remainders with the same per-element k
// order as mm4x4, so an element's value never depends on which kernel
// computed it.
func mmEdge(od, ad, bd []float64, n, p, i0, i1, j0, j1, k0, k1 int, accum bool) {
	for i := i0; i < i1; i++ {
		arow := ad[i*n+k0 : i*n+k1]
		orow := od[i*p : (i+1)*p]
		for j := j0; j < j1; j++ {
			var c float64
			bi := k0*p + j
			for _, av := range arow {
				c += av * bd[bi]
				bi += p
			}
			if accum {
				orow[j] += c
			} else {
				orow[j] = c
			}
		}
	}
}

func zeroRows(out *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j := range row {
			row[j] = 0
		}
	}
}

// SIMDEnabled reports whether the dense kernels run the AVX2+FMA micro
// kernels on this machine (fixed for the process lifetime). Benchmarks
// record it so artefacts from different hosts compare honestly.
func SIMDEnabled() bool { return useAVX }

// MatMulSerial is the seed single-goroutine ikj reference kernel, kept
// exported as the baseline the blocked kernels are benchmarked and tested
// against (cmd/benchkernels reports blocked-vs-seed GFLOP/s from it).
func MatMulSerial(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MatMulSerial inner dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := New(a.rows, b.cols)
	matMulIKJ(out, a, b, 0, a.rows, false)
	return out
}

// matMulIKJ is the seed kernel: one output row at a time, streaming rows of b
// with axpyRow. Kept as the reference implementation and ablation baseline.
func matMulIKJ(out, a, b *Dense, lo, hi int, accum bool) {
	n, p := a.cols, b.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*n : (i+1)*n]
		orow := out.data[i*p : (i+1)*p]
		if !accum {
			for j := range orow {
				orow[j] = 0
			}
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*p : (k+1)*p]
			axpyRow(orow, av, brow)
		}
	}
}

// AXPYRow computes dst += alpha·src over two equal-length slices. dst and
// src must not overlap. It is the building block the sparse SpMM kernels
// share with the dense ops; the AVX path (amd64) is bit-identical to the
// scalar loop by construction, so results never depend on the dispatch.
func AXPYRow(dst []float64, alpha float64, src []float64) {
	axpyRow(dst, alpha, src)
}

// axpyRow computes dst += alpha*src with 4-way unrolling (AVX2 when
// available).
func axpyRow(dst []float64, alpha float64, src []float64) {
	n := len(dst)
	if useAVX && n >= 8 {
		q := n &^ 3
		axpyAVX(&dst[0], &src[0], alpha, q)
		for i := q; i < n; i++ {
			dst[i] += alpha * src[i]
		}
		return
	}
	i := 0
	for ; i+3 < n; i += 4 {
		dst[i] += alpha * src[i]
		dst[i+1] += alpha * src[i+1]
		dst[i+2] += alpha * src[i+2]
		dst[i+3] += alpha * src[i+3]
	}
	for ; i < n; i++ {
		dst[i] += alpha * src[i]
	}
}

// MatMulT1 returns aᵀ·b without materialising the transpose.
func MatMulT1(a, b *Dense) *Dense {
	out := New(a.cols, b.cols)
	MatMulT1AddInto(out, a, b)
	return out
}

// MatMulT1Into computes out = aᵀ·b into caller-owned storage. out must be
// a.Cols()×b.Cols() and must not alias a or b. The zeroing of out is folded
// into the first k-block of the kernel (no separate Zero traversal).
func MatMulT1Into(out, a, b *Dense) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MatMulT1Into dimension mismatch %dx%d ᵀ· %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	mustOutShape(out, a.cols, b.cols, "MatMulT1Into")
	matMulT1Dispatch(out, a, b, false)
}

// MatMulT1AddInto computes out += aᵀ·b (fused gradient accumulation — the
// ∂L/∂W term of a dense layer lands directly in the gradient buffer).
func MatMulT1AddInto(out, a, b *Dense) {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: MatMulT1AddInto dimension mismatch %dx%d ᵀ· %dx%d", a.rows, a.cols, b.rows, b.cols))
	}
	mustOutShape(out, a.cols, b.cols, "MatMulT1AddInto")
	matMulT1Dispatch(out, a, b, true)
}

// matMulT1Dispatch shards out = (accum ? out : 0) + aᵀ·b over columns of a
// (= rows of out), so concurrent writes stay disjoint.
func matMulT1Dispatch(out, a, b *Dense, accum bool) {
	work := a.rows * a.cols * b.cols
	if work < parallelThreshold {
		matMulT1Blocked(out, a, b, 0, a.cols, accum)
		return
	}
	parallelTiles(a.cols, 2*microDim*a.rows*b.cols, func(lo, hi int) {
		matMulT1Blocked(out, a, b, lo, hi, accum)
	})
}

// matMulT1Blocked computes rows [lo, hi) of out (+)= aᵀ·b. The k dimension
// is a's rows; a 4-wide column strip a[k0:k1, i:i+4] is read with unit
// stride inside each k row, so the micro-kernel is mm4x4 with the a index
// transposed.
func matMulT1Blocked(out, a, b *Dense, lo, hi int, accum bool) {
	n, p := a.cols, b.cols
	if a.rows == 0 {
		if !accum {
			zeroRows(out, lo, hi)
		}
		return
	}
	od, ad, bd := out.data, a.data, b.data
	for k0 := 0; k0 < a.rows; k0 += kcBlock {
		k1 := min(k0+kcBlock, a.rows)
		acc := accum || k0 > 0
		kl := k1 - k0
		for j0 := 0; j0 < p; j0 += jcBlock {
			j1 := min(j0+jcBlock, p)
			i := lo
			for ; i+microDim <= hi; i += microDim {
				j := j0
				if useAVX {
					for ; j+simdCols <= j1; j += simdCols {
						mmT1AVX4x8(&od[i*p+j], &ad[k0*n+i], &bd[k0*p+j], p, n, p, kl, acc)
					}
				}
				for ; j+microDim <= j1; j += microDim {
					mmT1x4x4(od, ad, bd, n, p, i, j, k0, k1, acc)
				}
				if j < j1 {
					mmT1Edge(od, ad, bd, n, p, i, i+microDim, j, j1, k0, k1, acc)
				}
			}
			if i < hi {
				mmT1Edge(od, ad, bd, n, p, i, hi, j0, j1, k0, k1, acc)
			}
		}
	}
}

// mmT1x4x4 accumulates out[i:i+4, j:j+4] (+)= a[k0:k1, i:i+4]ᵀ · b[k0:k1,
// j:j+4]: per k it loads four contiguous a values and four contiguous b
// values into sixteen accumulators.
func mmT1x4x4(od, ad, bd []float64, n, p, i, j, k0, k1 int, accum bool) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	ai := k0*n + i
	bi := k0*p + j
	for k := k0; k < k1; k++ {
		ak := ad[ai : ai+4 : ai+4]
		bk := bd[bi : bi+4 : bi+4]
		b0, b1, b2, b3 := bk[0], bk[1], bk[2], bk[3]
		av := ak[0]
		c00 += av * b0
		c01 += av * b1
		c02 += av * b2
		c03 += av * b3
		av = ak[1]
		c10 += av * b0
		c11 += av * b1
		c12 += av * b2
		c13 += av * b3
		av = ak[2]
		c20 += av * b0
		c21 += av * b1
		c22 += av * b2
		c23 += av * b3
		av = ak[3]
		c30 += av * b0
		c31 += av * b1
		c32 += av * b2
		c33 += av * b3
		ai += n
		bi += p
	}
	o0 := od[i*p+j : i*p+j+4 : i*p+j+4]
	o1 := od[(i+1)*p+j : (i+1)*p+j+4 : (i+1)*p+j+4]
	o2 := od[(i+2)*p+j : (i+2)*p+j+4 : (i+2)*p+j+4]
	o3 := od[(i+3)*p+j : (i+3)*p+j+4 : (i+3)*p+j+4]
	if accum {
		o0[0] += c00
		o0[1] += c01
		o0[2] += c02
		o0[3] += c03
		o1[0] += c10
		o1[1] += c11
		o1[2] += c12
		o1[3] += c13
		o2[0] += c20
		o2[1] += c21
		o2[2] += c22
		o2[3] += c23
		o3[0] += c30
		o3[1] += c31
		o3[2] += c32
		o3[3] += c33
	} else {
		o0[0] = c00
		o0[1] = c01
		o0[2] = c02
		o0[3] = c03
		o1[0] = c10
		o1[1] = c11
		o1[2] = c12
		o1[3] = c13
		o2[0] = c20
		o2[1] = c21
		o2[2] = c22
		o2[3] = c23
		o3[0] = c30
		o3[1] = c31
		o3[2] = c32
		o3[3] = c33
	}
}

// mmT1Edge handles ragged T1 tiles with the same per-element k order as
// mmT1x4x4.
func mmT1Edge(od, ad, bd []float64, n, p, i0, i1, j0, j1, k0, k1 int, accum bool) {
	for i := i0; i < i1; i++ {
		orow := od[i*p : (i+1)*p]
		for j := j0; j < j1; j++ {
			var c float64
			ai := k0*n + i
			bi := k0*p + j
			for k := k0; k < k1; k++ {
				c += ad[ai] * bd[bi]
				ai += n
				bi += p
			}
			if accum {
				orow[j] += c
			} else {
				orow[j] = c
			}
		}
	}
}

// MatMulT2 returns a·bᵀ without materialising the transpose.
func MatMulT2(a, b *Dense) *Dense {
	out := New(a.rows, b.rows)
	matMulT2Checked(out, a, b, false, "MatMulT2")
	return out
}

// MatMulT2Into computes out = a·bᵀ into caller-owned storage. out must be
// a.Rows()×b.Rows() and must not alias a or b.
func MatMulT2Into(out, a, b *Dense) {
	matMulT2Checked(out, a, b, false, "MatMulT2Into")
}

// MatMulT2AddInto computes out += a·bᵀ (fused gradient accumulation — the
// ∂L/∂X term of a dense layer lands directly in the gradient buffer).
func MatMulT2AddInto(out, a, b *Dense) {
	matMulT2Checked(out, a, b, true, "MatMulT2AddInto")
}

func matMulT2Checked(out, a, b *Dense, accum bool, op string) {
	if a.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d · %dx%dᵀ", op, a.rows, a.cols, b.rows, b.cols))
	}
	mustOutShape(out, a.rows, b.rows, op)
	work := a.rows * a.cols * b.rows
	if work < parallelThreshold {
		matMulT2Blocked(out, a, b, 0, a.rows, accum)
		return
	}
	parallelTiles(a.rows, 2*microDim*a.cols*b.rows, func(lo, hi int) {
		matMulT2Blocked(out, a, b, lo, hi, accum)
	})
}

// matMulT2Blocked computes rows [lo, hi) of out (+)= a·bᵀ: a 4×4 tile of
// inner products accumulated k-blocked, with both operands read row-major.
func matMulT2Blocked(out, a, b *Dense, lo, hi int, accum bool) {
	n, p := a.cols, b.rows
	if n == 0 {
		if !accum {
			zeroRows(out, lo, hi)
		}
		return
	}
	od, ad, bd := out.data, a.data, b.data
	for k0 := 0; k0 < n; k0 += kcBlock {
		k1 := min(k0+kcBlock, n)
		acc := accum || k0 > 0
		kl := k1 - k0
		i := lo
		for ; i+microDim <= hi; i += microDim {
			j := 0
			if useAVX {
				for ; j+microDim <= p; j += microDim {
					mmT2AVX2x4(&od[i*p+j], &ad[i*n+k0], &bd[j*n+k0], p, n, n, kl, acc)
					mmT2AVX2x4(&od[(i+2)*p+j], &ad[(i+2)*n+k0], &bd[j*n+k0], p, n, n, kl, acc)
				}
			}
			for ; j+microDim <= p; j += microDim {
				mmT2x4x4(od, ad, bd, n, p, i, j, k0, k1, acc)
			}
			if j < p {
				mmT2Edge(od, ad, bd, n, p, i, i+microDim, j, p, k0, k1, acc)
			}
		}
		if i < hi {
			mmT2Edge(od, ad, bd, n, p, i, hi, 0, p, k0, k1, acc)
		}
	}
}

// mmT2x4x4 accumulates out[i:i+4, j:j+4] (+)= a[i:i+4, k0:k1] · b[j:j+4,
// k0:k1]ᵀ — sixteen simultaneous dot products over row-major operands.
func mmT2x4x4(od, ad, bd []float64, n, p, i, j, k0, k1 int, accum bool) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	a0 := ad[i*n+k0 : i*n+k1]
	a1 := ad[(i+1)*n+k0 : (i+1)*n+k1]
	a2 := ad[(i+2)*n+k0 : (i+2)*n+k1]
	a3 := ad[(i+3)*n+k0 : (i+3)*n+k1]
	b0 := bd[j*n+k0 : j*n+k1]
	b1 := bd[(j+1)*n+k0 : (j+1)*n+k1]
	b2 := bd[(j+2)*n+k0 : (j+2)*n+k1]
	b3 := bd[(j+3)*n+k0 : (j+3)*n+k1]
	for t := range a0 {
		bv0, bv1, bv2, bv3 := b0[t], b1[t], b2[t], b3[t]
		av := a0[t]
		c00 += av * bv0
		c01 += av * bv1
		c02 += av * bv2
		c03 += av * bv3
		av = a1[t]
		c10 += av * bv0
		c11 += av * bv1
		c12 += av * bv2
		c13 += av * bv3
		av = a2[t]
		c20 += av * bv0
		c21 += av * bv1
		c22 += av * bv2
		c23 += av * bv3
		av = a3[t]
		c30 += av * bv0
		c31 += av * bv1
		c32 += av * bv2
		c33 += av * bv3
	}
	o0 := od[i*p+j : i*p+j+4 : i*p+j+4]
	o1 := od[(i+1)*p+j : (i+1)*p+j+4 : (i+1)*p+j+4]
	o2 := od[(i+2)*p+j : (i+2)*p+j+4 : (i+2)*p+j+4]
	o3 := od[(i+3)*p+j : (i+3)*p+j+4 : (i+3)*p+j+4]
	if accum {
		o0[0] += c00
		o0[1] += c01
		o0[2] += c02
		o0[3] += c03
		o1[0] += c10
		o1[1] += c11
		o1[2] += c12
		o1[3] += c13
		o2[0] += c20
		o2[1] += c21
		o2[2] += c22
		o2[3] += c23
		o3[0] += c30
		o3[1] += c31
		o3[2] += c32
		o3[3] += c33
	} else {
		o0[0] = c00
		o0[1] = c01
		o0[2] = c02
		o0[3] = c03
		o1[0] = c10
		o1[1] = c11
		o1[2] = c12
		o1[3] = c13
		o2[0] = c20
		o2[1] = c21
		o2[2] = c22
		o2[3] = c23
		o3[0] = c30
		o3[1] = c31
		o3[2] = c32
		o3[3] = c33
	}
}

// mmT2Edge handles ragged T2 tiles with the same per-element k order as
// mmT2x4x4.
func mmT2Edge(od, ad, bd []float64, n, p, i0, i1, j0, j1, k0, k1 int, accum bool) {
	for i := i0; i < i1; i++ {
		arow := ad[i*n+k0 : i*n+k1]
		orow := od[i*p : (i+1)*p]
		for j := j0; j < j1; j++ {
			brow := bd[j*n+k0 : j*n+k1]
			var c float64
			for t, av := range arow {
				c += av * brow[t]
			}
			if accum {
				orow[j] += c
			} else {
				orow[j] = c
			}
		}
	}
}

func mustOutShape(out *Dense, r, c int, op string) {
	if out.rows != r || out.cols != c {
		panic(fmt.Sprintf("mat: %s output shape %dx%d, want %dx%d", op, out.rows, out.cols, r, c))
	}
}
