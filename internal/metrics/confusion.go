package metrics

import (
	"fmt"
	"io"
)

// Confusion is a square confusion matrix: Counts[t][p] is the number of
// samples with true class t predicted as p.
type Confusion struct {
	Counts [][]int
}

// NewConfusion returns an empty k-class confusion matrix.
func NewConfusion(k int) *Confusion {
	c := &Confusion{Counts: make([][]int, k)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, k)
	}
	return c
}

// Observe records predictions against truths over a mask of indices; truths
// and preds are full-length, mask selects the evaluated rows.
func (c *Confusion) Observe(truths, preds, mask []int) error {
	k := len(c.Counts)
	for _, i := range mask {
		if i < 0 || i >= len(truths) || i >= len(preds) {
			return fmt.Errorf("metrics: mask index %d out of range", i)
		}
		t, p := truths[i], preds[i]
		if t < 0 || t >= k || p < 0 || p >= k {
			return fmt.Errorf("metrics: class out of range: true=%d pred=%d k=%d", t, p, k)
		}
		c.Counts[t][p]++
	}
	return nil
}

// Merge adds another confusion matrix (e.g. another party's) into c.
func (c *Confusion) Merge(other *Confusion) error {
	if len(other.Counts) != len(c.Counts) {
		return fmt.Errorf("metrics: merging %d-class into %d-class confusion", len(other.Counts), len(c.Counts))
	}
	for t := range c.Counts {
		for p := range c.Counts[t] {
			c.Counts[t][p] += other.Counts[t][p]
		}
	}
	return nil
}

// Total returns the number of observed samples.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the trace over the total (0 for an empty matrix).
func (c *Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	correct := 0
	for i := range c.Counts {
		correct += c.Counts[i][i]
	}
	return float64(correct) / float64(n)
}

// PerClass returns precision, recall and F1 for class k (zeros when the
// denominators are empty).
func (c *Confusion) PerClass(k int) (precision, recall, f1 float64) {
	tp := c.Counts[k][k]
	var predK, trueK int
	for t := range c.Counts {
		predK += c.Counts[t][k]
	}
	for p := range c.Counts[k] {
		trueK += c.Counts[k][p]
	}
	if predK > 0 {
		precision = float64(tp) / float64(predK)
	}
	if trueK > 0 {
		recall = float64(tp) / float64(trueK)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}

// MacroF1 averages F1 over classes that appear in the data, the standard
// imbalance-robust summary for the skewed per-party label distributions of
// Figure 4.
func (c *Confusion) MacroF1() float64 {
	var sum float64
	classes := 0
	for k := range c.Counts {
		trueK := 0
		for p := range c.Counts[k] {
			trueK += c.Counts[k][p]
		}
		if trueK == 0 {
			continue
		}
		_, _, f1 := c.PerClass(k)
		sum += f1
		classes++
	}
	if classes == 0 {
		return 0
	}
	return sum / float64(classes)
}

// Render writes the matrix with per-class recall annotations.
func (c *Confusion) Render(w io.Writer) error {
	header := []string{"true \\ pred"}
	for k := range c.Counts {
		header = append(header, fmt.Sprintf("C%d", k))
	}
	header = append(header, "recall")
	tbl := NewTable(header...)
	for t, row := range c.Counts {
		cells := []string{fmt.Sprintf("C%d", t)}
		for _, v := range row {
			cells = append(cells, fmt.Sprint(v))
		}
		_, recall, _ := c.PerClass(t)
		cells = append(cells, fmt.Sprintf("%.2f", recall))
		tbl.AddRow(cells...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "accuracy %.3f, macro-F1 %.3f\n", c.Accuracy(), c.MacroF1())
	return err
}
