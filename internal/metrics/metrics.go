// Package metrics provides the accuracy aggregation and table formatting the
// experiment drivers share: mean ± std over seeds, and fixed-width text
// tables mirroring the layout of the paper's result tables.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Cell aggregates one table cell's repeated measurements.
type Cell struct {
	Runs []float64
}

// Add appends a measurement.
func (c *Cell) Add(v float64) { c.Runs = append(c.Runs, v) }

// Mean returns the sample mean (0 for an empty cell).
func (c Cell) Mean() float64 {
	if len(c.Runs) == 0 {
		return 0
	}
	var s float64
	for _, v := range c.Runs {
		s += v
	}
	return s / float64(len(c.Runs))
}

// Std returns the population standard deviation (0 for < 2 runs).
func (c Cell) Std() float64 {
	if len(c.Runs) < 2 {
		return 0
	}
	m := c.Mean()
	var s float64
	for _, v := range c.Runs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(c.Runs)))
}

// String renders "mean (±std)" as percentages, the paper's cell format.
func (c Cell) String() string {
	return fmt.Sprintf("%.2f (±%.2f)", 100*c.Mean(), 100*c.Std())
}

// Table is a simple fixed-width text table writer.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; missing cells render empty.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// Render writes the table to w with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, wd := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", wd+2, c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}
