package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestConfusionBasics(t *testing.T) {
	c := NewConfusion(2)
	truths := []int{0, 0, 1, 1, 1}
	preds := []int{0, 1, 1, 1, 0}
	if err := c.Observe(truths, preds, []int{0, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 5 {
		t.Fatalf("total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
	// Class 0: tp=1, predicted-0 = 2, true-0 = 2 → P=0.5 R=0.5 F1=0.5.
	p, r, f1 := c.PerClass(0)
	if p != 0.5 || r != 0.5 || f1 != 0.5 {
		t.Fatalf("class 0: %v %v %v", p, r, f1)
	}
	// Class 1: tp=2, predicted-1 = 3, true-1 = 3 → P=R=F1=2/3.
	_, _, f11 := c.PerClass(1)
	if math.Abs(f11-2.0/3) > 1e-12 {
		t.Fatalf("class 1 f1 = %v", f11)
	}
	if got := c.MacroF1(); math.Abs(got-(0.5+2.0/3)/2) > 1e-12 {
		t.Fatalf("macro f1 = %v", got)
	}
}

func TestConfusionValidation(t *testing.T) {
	c := NewConfusion(2)
	if err := c.Observe([]int{0}, []int{0}, []int{5}); err == nil {
		t.Fatal("out-of-range mask accepted")
	}
	if err := c.Observe([]int{7}, []int{0}, []int{0}); err == nil {
		t.Fatal("out-of-range class accepted")
	}
}

func TestConfusionMerge(t *testing.T) {
	a := NewConfusion(2)
	b := NewConfusion(2)
	if err := a.Observe([]int{0}, []int{0}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := b.Observe([]int{1}, []int{0}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 2 || a.Counts[1][0] != 1 {
		t.Fatal("merge wrong")
	}
	if err := a.Merge(NewConfusion(3)); err == nil {
		t.Fatal("class-count mismatch accepted")
	}
}

func TestConfusionEmptyClassExcludedFromMacroF1(t *testing.T) {
	c := NewConfusion(3)
	// Only classes 0 and 1 appear; class 2 must not dilute the macro F1.
	if err := c.Observe([]int{0, 1}, []int{0, 1}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if got := c.MacroF1(); got != 1 {
		t.Fatalf("macro f1 = %v want 1", got)
	}
	if NewConfusion(2).MacroF1() != 0 || NewConfusion(2).Accuracy() != 0 {
		t.Fatal("empty confusion not zero")
	}
}

func TestConfusionRender(t *testing.T) {
	c := NewConfusion(2)
	if err := c.Observe([]int{0, 1}, []int{0, 0}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "macro-F1") || !strings.Contains(out, "recall") {
		t.Fatalf("render missing summary:\n%s", out)
	}
}
