package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCellMeanStd(t *testing.T) {
	var c Cell
	if c.Mean() != 0 || c.Std() != 0 {
		t.Fatal("empty cell not zero")
	}
	c.Add(0.4)
	if c.Std() != 0 {
		t.Fatal("single-run std not zero")
	}
	c.Add(0.6)
	if math.Abs(c.Mean()-0.5) > 1e-12 {
		t.Fatalf("mean = %v", c.Mean())
	}
	if math.Abs(c.Std()-0.1) > 1e-12 {
		t.Fatalf("std = %v", c.Std())
	}
	if got := c.String(); got != "50.00 (±10.00)" {
		t.Fatalf("String = %q", got)
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("Model", "M=3", "M=5")
	tbl.AddRow("FedOMD", "54.35", "50.10")
	tbl.AddRow("FedGCN", "47.12")
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Model") || !strings.Contains(lines[0], "M=5") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "FedOMD") || !strings.Contains(lines[3], "FedGCN") {
		t.Fatal("rows missing")
	}
	// Column alignment: "M=3" column starts at the same offset in all rows.
	col := strings.Index(lines[0], "M=3")
	if strings.Index(lines[2], "54.35") != col {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}
