package fed

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"fedomd/internal/mat"
	"fedomd/internal/moments"
	"fedomd/internal/nn"
)

// faultySite is a full-capability client (Client + Moment + Aux) that fails
// exactly one protocol site: "broadcast", "means", "moments", "train",
// "aux" (download), or "upload" (NaN-poisoned parameters). An empty site is
// a healthy client.
type faultySite struct {
	*fakeClient
	site string
	data *mat.Dense
}

func newFaultySite(name, site string, trainVal float64) *faultySite {
	d, _ := mat.NewFromRows([][]float64{{1}, {3}})
	f := newFakeClient(name, 1, 0)
	f.trainVal = trainVal
	return &faultySite{fakeClient: f, site: site, data: d}
}

func (f *faultySite) SetParams(g *nn.Params) error {
	if f.site == "broadcast" {
		return errors.New("injected broadcast failure")
	}
	return f.fakeClient.SetParams(g)
}

func (f *faultySite) TrainLocal(round int) (float64, error) {
	if f.site == "train" {
		return 0, errors.New("injected train failure")
	}
	return f.fakeClient.TrainLocal(round)
}

func (f *faultySite) Params() *nn.Params {
	if f.site == "upload" {
		p := f.fakeClient.Params().Clone()
		p.Get("w").Set(0, 0, math.NaN())
		return p
	}
	return f.fakeClient.Params()
}

func (f *faultySite) LocalMeans() ([]*mat.Dense, int, error) {
	if f.site == "means" {
		return nil, 0, errors.New("injected means failure")
	}
	return []*mat.Dense{mat.MeanRows(f.data)}, f.data.Rows(), nil
}

func (f *faultySite) CentralAroundGlobal(gm []*mat.Dense) ([][]*mat.Dense, int, error) {
	if f.site == "moments" {
		return nil, 0, errors.New("injected moment failure")
	}
	return [][]*mat.Dense{moments.CentralAround(f.data, gm[0], 5)}, f.data.Rows(), nil
}

func (f *faultySite) SetGlobalStats([]*mat.Dense, [][]*mat.Dense) {}

func (f *faultySite) UploadAux() *nn.Params {
	p := nn.NewParams()
	m := mat.New(1, 1)
	m.Set(0, 0, 2)
	p.Add("c", m)
	return p
}

func (f *faultySite) DownloadAux(*nn.Params) error {
	if f.site == "aux" {
		return errors.New("injected aux failure")
	}
	return nil
}

// failureSites pairs each injection site with the error prefix FailFast must
// surface for it.
var failureSites = []struct{ site, wantSub string }{
	{"broadcast", "fed: broadcast to a"},
	{"means", "fed: means from a"},
	{"moments", "fed: moments from a"},
	{"train", "fed: client a round 0"},
	{"aux", "fed: aux download to a"},
	{"upload", "fed: upload from a"},
}

// faultyFleet builds two healthy parties and one failing at the given site.
// The faulty party trains to 100 so any leakage into the aggregate is loud.
func faultyFleet(site string) []Client {
	return []Client{
		newFaultySite("b", "", 1),
		newFaultySite("c", "", 1),
		newFaultySite("a", site, 100),
	}
}

func TestFailFastAbortsAtEverySite(t *testing.T) {
	for _, tc := range failureSites {
		t.Run(tc.site, func(t *testing.T) {
			_, err := Run(Config{Rounds: 1, Sequential: true}, faultyFleet(tc.site))
			if err == nil {
				t.Fatalf("site %s: failure swallowed", tc.site)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("site %s: error %q lacks %q", tc.site, err, tc.wantSub)
			}
			if tc.site == "upload" && !errors.Is(err, ErrNonFinite) {
				t.Fatalf("NaN upload error %q does not wrap ErrNonFinite", err)
			}
		})
	}
}

func TestDropRoundExcludesFailingParty(t *testing.T) {
	for _, tc := range failureSites {
		t.Run(tc.site, func(t *testing.T) {
			res, err := Run(Config{Rounds: 1, Policy: DropRound}, faultyFleet(tc.site))
			if err != nil {
				t.Fatalf("site %s: DropRound aborted: %v", tc.site, err)
			}
			// The survivors both train to 1; any other aggregate means the
			// failing party (trained to 100) leaked in.
			if got := res.FinalParams.Get("w").At(0, 0); got != 1 {
				t.Fatalf("site %s: aggregate = %v want 1", tc.site, got)
			}
			if res.ClientFailures["a"] != 1 {
				t.Fatalf("site %s: failures = %v want a:1", tc.site, res.ClientFailures)
			}
			h := res.History[0]
			if h.Dropped != 1 || !h.Degraded {
				t.Fatalf("site %s: round stats %+v want Dropped=1 Degraded", tc.site, h)
			}
		})
	}
}

func TestDropRoundReadmitsNextRound(t *testing.T) {
	// The train site fails every round, but DropRound must still retry the
	// party each round (no benching without Quarantine).
	res, err := Run(Config{Rounds: 3, Policy: DropRound, Sequential: true}, faultyFleet("train"))
	if err != nil {
		t.Fatal(err)
	}
	if res.ClientFailures["a"] != 3 {
		t.Fatalf("failures = %v want a:3 (retried every round)", res.ClientFailures)
	}
}

func TestQuorumAbort(t *testing.T) {
	a := newFaultySite("a", "broadcast", 1)
	b := newFaultySite("b", "", 1)
	_, err := Run(Config{Rounds: 2, Policy: DropRound, MinClients: 2}, []Client{a, b})
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("err = %v want ErrQuorumLost", err)
	}
}

func TestQuorumSkipKeepsPreviousGlobal(t *testing.T) {
	a := newFaultySite("a", "broadcast", 7)
	b := newFaultySite("b", "", 7)
	res, err := Run(Config{
		Rounds: 2, Policy: DropRound, MinClients: 2, QuorumPolicy: QuorumSkip,
	}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 2 {
		t.Fatalf("history rows = %d want 2", len(res.History))
	}
	for _, h := range res.History {
		if !h.Degraded {
			t.Fatalf("round %d not marked degraded", h.Round)
		}
	}
	// Quorum was lost before training both rounds, so the initial global
	// model (0) survives unchanged and the healthy party never trained.
	if got := res.FinalParams.Get("w").At(0, 0); got != 0 {
		t.Fatalf("global = %v want untouched 0", got)
	}
	if b.trainCalls != 0 {
		t.Fatalf("trained %d times during skipped rounds", b.trainCalls)
	}
	// The final scoring pass still evaluates the (initial) model on the
	// parties that can hold it.
	if res.BestRound != 2 || res.FinalValAcc == 0 {
		t.Fatalf("final scoring missing: best round %d, final val %v", res.BestRound, res.FinalValAcc)
	}
}

// flakyTrainer fails TrainLocal on the configured rounds and records every
// round it was asked to train — the quarantine schedule made observable.
type flakyTrainer struct {
	*fakeClient
	failRounds map[int]bool
	calls      []int
}

func (f *flakyTrainer) TrainLocal(round int) (float64, error) {
	f.calls = append(f.calls, round)
	if f.failRounds[round] {
		return 0, errors.New("injected train failure")
	}
	return f.fakeClient.TrainLocal(round)
}

func TestQuarantineBenchesAndReadmits(t *testing.T) {
	a := &flakyTrainer{fakeClient: newFakeClient("a", 1, 0), failRounds: map[int]bool{0: true, 1: true}}
	b := newFakeClient("b", 1, 0)
	res, err := Run(Config{
		Rounds: 5, Policy: Quarantine, MaxStrikes: 2, Sequential: true,
	}, []Client{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// Strikes after rounds 0 and 1 reach MaxStrikes: round 2 is benched,
	// round 3 is the successful re-admission probe, round 4 is normal again.
	if want := []int{0, 1, 3, 4}; !reflect.DeepEqual(a.calls, want) {
		t.Fatalf("train rounds = %v want %v", a.calls, want)
	}
	if res.History[1].Quarantined != 1 {
		t.Fatalf("round 1 quarantined = %d want 1", res.History[1].Quarantined)
	}
	if res.History[2].Dropped != 0 || res.History[2].Degraded {
		t.Fatalf("benched round should be clean: %+v", res.History[2])
	}
	if res.ClientFailures["a"] != 2 {
		t.Fatalf("failures = %v want a:2", res.ClientFailures)
	}
}

// sleepyClient hangs in TrainLocal.
type sleepyClient struct {
	*fakeClient
	sleep time.Duration
}

func (s *sleepyClient) TrainLocal(round int) (float64, error) {
	time.Sleep(s.sleep)
	return s.fakeClient.TrainLocal(round)
}

func TestClientTimeoutBoundsStraggler(t *testing.T) {
	a := newFakeClient("a", 1, 0)
	a.trainVal = 1
	b := &sleepyClient{fakeClient: newFakeClient("b", 1, 0), sleep: 2 * time.Second}
	start := time.Now()
	res, err := Run(Config{
		Rounds: 2, Policy: DropRound, ClientTimeout: 50 * time.Millisecond,
	}, []Client{a, b})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed >= time.Second {
		t.Fatalf("straggler stalled the run for %v", elapsed)
	}
	// Round 0 drops b on timeout; round 1 drops it again because its
	// timed-out call is still running (the busy guard keeps the runtime from
	// driving one client concurrently with itself).
	if res.History[0].Dropped != 1 || res.History[1].Dropped != 1 {
		t.Fatalf("dropped per round = %d/%d want 1/1",
			res.History[0].Dropped, res.History[1].Dropped)
	}
	if res.ClientFailures["b"] != 2 {
		t.Fatalf("failures = %v want b:2", res.ClientFailures)
	}
	if got := res.FinalParams.Get("w").At(0, 0); got != 1 {
		t.Fatalf("aggregate = %v want survivor's 1", got)
	}
}

func TestFailFastExplicitMatchesDefault(t *testing.T) {
	mk := func() []Client {
		a := newFakeClient("a", 2, 0)
		a.trainVal = 1
		b := newFakeClient("b", 3, 0)
		b.trainVal = 4
		return []Client{a, b}
	}
	def, err := Run(Config{Rounds: 3}, mk())
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Run(Config{Rounds: 3, Policy: FailFast}, mk())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripTimes(def.History), stripTimes(exp.History)) {
		t.Fatal("explicit FailFast diverges from the zero-value default")
	}
	if d, _ := def.FinalParams.L2Distance(exp.FinalParams); d != 0 {
		t.Fatalf("final params differ by %v", d)
	}
}

func TestParseFailurePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FailurePolicy
	}{
		{"failfast", FailFast}, {"Fail-Fast", FailFast},
		{"droparound", DropRound}, {"drop-round", DropRound}, {"drop", DropRound},
		{"QUARANTINE", Quarantine}, {"drop_round", DropRound},
	} {
		got, err := ParseFailurePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFailurePolicy(%q) = %v, %v want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseFailurePolicy("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

// progressClient's validation accuracy tracks its parameter value, so the
// best model is always the latest aggregate — the shape of run where
// skipping the final scoring pass loses the best result.
type progressClient struct{ *fakeClient }

func (p *progressClient) TrainLocal(round int) (float64, error) {
	p.params.Get("w").Set(0, 0, float64(round+1))
	return 0, nil
}

func (p *progressClient) EvalVal() (int, int) { return int(p.params.Get("w").At(0, 0)), 10 }

func TestFinalAggregateIsScored(t *testing.T) {
	a := &progressClient{newFakeClient("a", 1, 0)}
	res, err := Run(Config{Rounds: 2}, []Client{a})
	if err != nil {
		t.Fatal(err)
	}
	// In-loop evals see the round-0 broadcast (w=0 → 0.0) and the round-0
	// aggregate (w=1 → 0.1); only the closing pass scores the round-1
	// aggregate (w=2 → 0.2).
	if res.FinalValAcc != 0.2 {
		t.Fatalf("final val acc = %v want 0.2", res.FinalValAcc)
	}
	if res.BestValAcc != 0.2 || res.BestRound != 2 {
		t.Fatalf("best = %v at round %d want 0.2 at 2 (the final aggregate)", res.BestValAcc, res.BestRound)
	}
}
