package fed

import (
	"math"
	"math/rand"
	"testing"

	"fedomd/internal/mat"
)

func TestDPConfigValidate(t *testing.T) {
	good := DPConfig{Epsilon: 1, Delta: 1e-5, Clip: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []DPConfig{
		{Epsilon: 0, Delta: 1e-5, Clip: 1},
		{Epsilon: 1, Delta: 0, Clip: 1},
		{Epsilon: 1, Delta: 1, Clip: 1},
		{Epsilon: 1, Delta: 1e-5, Clip: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := WithDP(nil, bad[0], nil); err == nil {
		t.Fatal("WithDP accepted invalid config")
	}
}

func TestNoiseSigmaFormula(t *testing.T) {
	c := DPConfig{Epsilon: 2, Delta: 1e-5, Clip: 3}
	want := 3 * math.Sqrt(2*math.Log(1.25/1e-5)) / 2
	if got := c.NoiseSigma(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("sigma = %v want %v", got, want)
	}
	// Tighter epsilon ⇒ more noise.
	tight := DPConfig{Epsilon: 0.5, Delta: 1e-5, Clip: 3}
	if tight.NoiseSigma() <= c.NoiseSigma() {
		t.Fatal("sigma not monotone in epsilon")
	}
}

func TestDPUploadsAreClippedAndNoised(t *testing.T) {
	big, _ := mat.NewFromRows([][]float64{{100, 100, 100, 100}})
	inner := &momentFake{fakeClient: newFakeClient("a", 1, 0), data: big}
	cfg := DPConfig{Epsilon: 1, Delta: 1e-5, Clip: 1}
	dp, err := WithDP(inner, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	means, n, err := dp.LocalMeans()
	if err != nil || n != 1 {
		t.Fatalf("LocalMeans: %v n=%d", err, n)
	}
	// Raw mean has norm 200; after clipping to 1 plus noise of ~sigma per
	// coordinate, the result must be nowhere near the raw value.
	if norm := mat.FrobNorm(means[0]); norm > 1+8*cfg.NoiseSigma() {
		t.Fatalf("upload norm %v not clipped", norm)
	}
	raw, _, _ := inner.LocalMeans()
	if means[0].EqualApprox(raw[0], 1e-9) {
		t.Fatal("upload not noised")
	}
	// Moments path too.
	moms, _, err := dp.CentralAroundGlobal(raw)
	if err != nil {
		t.Fatal(err)
	}
	rawMoms, _, _ := inner.CentralAroundGlobal(raw)
	if moms[0][0].EqualApprox(rawMoms[0][0], 1e-9) {
		t.Fatal("moment upload not noised")
	}
}

func TestDPNoiseAveragesOut(t *testing.T) {
	// Unbiasedness of the mechanism on an in-ball vector: the mean of many
	// privatised uploads converges to the true vector.
	v, _ := mat.NewFromRows([][]float64{{0.3, -0.2}})
	inner := &momentFake{fakeClient: newFakeClient("a", 1, 0), data: v}
	dp, err := WithDP(inner, DPConfig{Epsilon: 1, Delta: 1e-3, Clip: 1}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	acc := mat.New(1, 2)
	const trials = 3000
	for i := 0; i < trials; i++ {
		means, _, err := dp.LocalMeans()
		if err != nil {
			t.Fatal(err)
		}
		acc.AddInPlace(means[0])
	}
	acc.ScaleInPlace(1.0 / trials)
	truth := mat.MeanRows(v)
	if !acc.EqualApprox(truth, 0.5) {
		t.Fatalf("privatised mean of means %v far from %v", acc, truth)
	}
}

func TestDPClientRunsInFederation(t *testing.T) {
	d1, _ := mat.NewFromRows([][]float64{{0}, {2}})
	d2, _ := mat.NewFromRows([][]float64{{10}, {12}})
	a := &momentFake{fakeClient: newFakeClient("a", 2, 0), data: d1}
	b := &momentFake{fakeClient: newFakeClient("b", 2, 0), data: d2}
	dpa, err := WithDP(a, DPConfig{Epsilon: 1, Delta: 1e-5, Clip: 5}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	dpb, err := WithDP(b, DPConfig{Epsilon: 1, Delta: 1e-5, Clip: 5}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{Rounds: 2}, []Client{dpa, dpb}); err != nil {
		t.Fatal(err)
	}
	// Both inner clients must have received (noisy) global stats.
	if a.gotMeans == nil || b.gotMeans == nil {
		t.Fatal("DP wrapper broke the exchange")
	}
}
