package fed

import (
	"testing"

	"fedomd/internal/mat"
	"fedomd/internal/telemetry"
)

// TestRunRecordsTelemetry checks the runtime's phase spans, per-client train
// histograms and comms counters line up with the run's actual shape.
func TestRunRecordsTelemetry(t *testing.T) {
	const rounds, m = 4, 3
	agg := telemetry.NewAggregator()
	clients := make([]Client, m)
	for i := range clients {
		clients[i] = newFakeClient(string(rune('a'+i)), 1, 0)
	}
	res, err := Run(Config{Rounds: rounds, Recorder: agg}, clients)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		MetricRoundSeconds, MetricBroadcastSeconds, MetricEvalSeconds,
		MetricTrainSeconds, MetricAuxSeconds, MetricAggregateSeconds,
	} {
		s, ok := agg.Histogram(name)
		if !ok || s.Count != rounds {
			t.Fatalf("%s count = %d (present=%v) want %d", name, s.Count, ok, rounds)
		}
	}
	if s, _ := agg.Histogram(MetricClientTrainSecs); s.Count != rounds*m {
		t.Fatalf("client train samples = %d want %d", s.Count, rounds*m)
	}
	// Plain clients: no moment exchange, so no moments span.
	if _, ok := agg.Histogram(MetricMomentsSeconds); ok {
		t.Fatal("moments span recorded without moment clients")
	}
	if got := agg.Counter(MetricRounds); got != rounds {
		t.Fatalf("rounds counter = %d want %d", got, rounds)
	}
	if got := agg.Counter(MetricActiveClients); got != rounds*m {
		t.Fatalf("active clients counter = %d want %d", got, rounds*m)
	}
	if got := agg.Counter(MetricBytesUp); got != res.TotalBytesUp {
		t.Fatalf("bytes up counter = %d, result says %d", got, res.TotalBytesUp)
	}
	if got := agg.Counter(MetricBytesDown); got != res.TotalBytesDown {
		t.Fatalf("bytes down counter = %d, result says %d", got, res.TotalBytesDown)
	}
	if v, ok := agg.GaugeValue(MetricValAcc); !ok || v != res.History[rounds-1].ValAcc {
		t.Fatalf("val acc gauge = %v,%v want %v", v, ok, res.History[rounds-1].ValAcc)
	}
}

// TestRunNilRecorderIsFree ensures a nil Recorder runs through the no-op
// path (no panic, identical results to an instrumented run).
func TestRunNilRecorderIsFree(t *testing.T) {
	mk := func(rec telemetry.Recorder) *Result {
		a := newFakeClient("a", 3, 0)
		a.trainVal = 1
		b := newFakeClient("b", 1, 0)
		b.trainVal = 5
		res, err := Run(Config{Rounds: 2, Recorder: rec}, []Client{a, b})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := mk(nil)
	instrumented := mk(telemetry.NewAggregator())
	if plain.FinalParams.Get("w").At(0, 0) != instrumented.FinalParams.Get("w").At(0, 0) {
		t.Fatal("telemetry changed the training result")
	}
}

// TestMomentExchangeSpanRecorded covers the moments phase with moment
// clients present.
func TestMomentExchangeSpanRecorded(t *testing.T) {
	agg := telemetry.NewAggregator()
	d1, _ := mat.NewFromRows([][]float64{{0}, {2}})
	d2, _ := mat.NewFromRows([][]float64{{10}, {12}})
	a := &momentFake{fakeClient: newFakeClient("a", 2, 0), data: d1}
	b := &momentFake{fakeClient: newFakeClient("b", 2, 0), data: d2}
	if _, err := Run(Config{Rounds: 2, Recorder: agg}, []Client{a, b}); err != nil {
		t.Fatal(err)
	}
	if s, ok := agg.Histogram(MetricMomentsSeconds); !ok || s.Count != 2 {
		t.Fatalf("moments span count = %d (present=%v) want 2", s.Count, ok)
	}
}
